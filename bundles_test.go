package leaplist

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// collectPairs reads m's full contents through the requested scan path.
func collectPairs(m *Map[uint64], viaIterator bool) []KV[uint64] {
	if viaIterator {
		it := m.Iter(0, MaxKey)
		return it.Collect()
	}
	return m.Collect(0, MaxKey)
}

func samePairs(a, b []KV[uint64]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBundlesOnOffParity drives two maps — one with versioned links, one
// without — through an identical single-threaded op sequence per variant
// and requires every observation (op results, periodic full scans,
// iterator output) to match. The timestamped read path and the legacy
// retry path must be indistinguishable in the absence of concurrency.
func TestBundlesOnOffParity(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		gOn := NewGroup[uint64](WithVariant(v), WithNodeSize(4), WithMaxLevel(5), WithBundles(true))
		gOff := NewGroup[uint64](WithVariant(v), WithNodeSize(4), WithMaxLevel(5), WithBundles(false))
		mOn, mOff := gOn.NewMap(), gOff.NewMap()

		rng := rand.New(rand.NewPCG(42, 1+uint64(v)))
		const steps = 600
		for i := 0; i < steps; i++ {
			k := rng.Uint64N(200)
			switch rng.Uint64N(10) {
			case 0, 1, 2, 3, 4, 5:
				if err := mOn.Set(k, uint64(i)); err != nil {
					t.Fatalf("Set(on): %v", err)
				}
				if err := mOff.Set(k, uint64(i)); err != nil {
					t.Fatalf("Set(off): %v", err)
				}
			case 6, 7:
				d1, err1 := mOn.Delete(k)
				d2, err2 := mOff.Delete(k)
				if err1 != nil || err2 != nil {
					t.Fatalf("Delete: %v / %v", err1, err2)
				}
				if d1 != d2 {
					t.Fatalf("step %d: Delete(%d) = %v vs %v", i, k, d1, d2)
				}
			case 8:
				lo, hi := k, k+rng.Uint64N(40)
				tx1, tx2 := gOn.Txn(), gOff.Txn()
				dr1 := tx1.DeleteRange(mOn, lo, hi)
				dr2 := tx2.DeleteRange(mOff, lo, hi)
				tx1.Set(mOn, lo, uint64(i))
				tx2.Set(mOff, lo, uint64(i))
				if err := tx1.Commit(); err != nil {
					t.Fatalf("Commit(on): %v", err)
				}
				if err := tx2.Commit(); err != nil {
					t.Fatalf("Commit(off): %v", err)
				}
				if dr1.Count() != dr2.Count() {
					t.Fatalf("step %d: DeleteRange[%d,%d] removed %d vs %d",
						i, lo, hi, dr1.Count(), dr2.Count())
				}
				tx1.Release()
				tx2.Release()
			case 9:
				lo, hi := k, k+rng.Uint64N(60)
				tx1, tx2 := gOn.Txn(), gOff.Txn()
				r1 := tx1.GetRange(mOn, lo, hi)
				r2 := tx2.GetRange(mOff, lo, hi)
				if err := tx1.Commit(); err != nil {
					t.Fatalf("Commit(on): %v", err)
				}
				if err := tx2.Commit(); err != nil {
					t.Fatalf("Commit(off): %v", err)
				}
				if !samePairs(r1.Pairs(), r2.Pairs()) {
					t.Fatalf("step %d: GetRange[%d,%d] diverged", i, lo, hi)
				}
				tx1.Release()
				tx2.Release()
			}
			if i%97 == 0 {
				if !samePairs(collectPairs(mOn, false), collectPairs(mOff, false)) {
					t.Fatalf("step %d: full Collect diverged", i)
				}
			}
		}
		if !samePairs(collectPairs(mOn, false), collectPairs(mOff, false)) {
			t.Fatal("final Collect diverged")
		}
		if !samePairs(collectPairs(mOn, true), collectPairs(mOff, true)) {
			t.Fatal("final Iterator output diverged")
		}
		if mOn.Len() != mOff.Len() {
			t.Fatalf("Len diverged: %d vs %d", mOn.Len(), mOff.Len())
		}
	})
}

// TestSnapshotFrozenCutUnderChurn is the snapshot-vs-churn oracle.
// Writers flip disjoint key stripes between two halves with one atomic
// batch per flip — each commit deletes the stripe's old half (a
// DeleteRange spanning many nodes, forcing splits and merges at
// NodeSize 4) and fills the other half with the round number. A
// timestamped whole-structure scan must therefore observe, per stripe,
// either nothing (before the first flip) or exactly one complete half
// whose 64 values are identical and whose placement matches the round's
// parity. Any torn read — a mix of rounds, a partially applied
// DeleteRange, a half-visible fill — fails the oracle.
func TestSnapshotFrozenCutUnderChurn(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[uint64](WithVariant(v), WithNodeSize(4), WithMaxLevel(6))
		m := g.NewMap()

		const (
			stripes    = 2
			stripeBase = uint64(1) << 20
			half       = uint64(64)
		)
		rounds := 120
		if testing.Short() {
			rounds = 30
		}

		validate := func(pairs []KV[uint64]) {
			var byStripe [stripes][]KV[uint64]
			for _, kv := range pairs {
				s := kv.Key / stripeBase
				if s >= stripes {
					t.Errorf("scan surfaced foreign key %d", kv.Key)
					return
				}
				byStripe[s] = append(byStripe[s], kv)
			}
			for s, sp := range byStripe {
				if len(sp) == 0 {
					continue // stripe not yet populated
				}
				r := sp[0].Value
				off := (r % 2) * half
				lo := uint64(s)*stripeBase + off
				if len(sp) != int(half) {
					t.Errorf("stripe %d: torn cut with %d pairs at round %d, want %d", s, len(sp), r, half)
					return
				}
				for i, kv := range sp {
					if kv.Value != r || kv.Key != lo+uint64(i) {
						t.Errorf("stripe %d: mixed rounds in one cut: pair (%d,%d), round %d",
							s, kv.Key, kv.Value, r)
						return
					}
				}
			}
		}

		var writers sync.WaitGroup
		var done atomic.Bool
		for s := 0; s < stripes; s++ {
			writers.Add(1)
			go func(s int) {
				defer writers.Done()
				lo := uint64(s) * stripeBase
				for r := 1; r <= rounds; r++ {
					tx := g.Txn()
					tx.DeleteRange(m, lo, lo+2*half-1)
					off := (uint64(r) % 2) * half
					for k := uint64(0); k < half; k++ {
						tx.Set(m, lo+off+k, uint64(r))
					}
					if err := tx.Commit(); err != nil {
						t.Errorf("flip Commit: %v", err)
						return
					}
					tx.Release()
				}
			}(s)
		}

		var readers sync.WaitGroup
		for i := 0; i < 2; i++ {
			readers.Add(1)
			go func(viaIterator bool) {
				defer readers.Done()
				for !done.Load() {
					validate(collectPairs(m, viaIterator))
				}
			}(i == 0)
		}

		writers.Wait()
		done.Store(true)
		readers.Wait()
		validate(collectPairs(m, false))
		validate(collectPairs(m, true))
	})
}

// TestSnapshotFrozenCutUnderRunUnlink is the frozen-cut oracle aimed
// squarely at the O(boundary) DeleteRange splice: each flip deletes a
// 512-key stripe whose refill lands entirely in one half, so the other
// half — hundreds of keys across ~128 NodeSize-4 nodes with no staged
// point op inside — is unlinked as one spliced run per flip. With
// bundles on, a concurrent timestamped scan must still observe, per
// stripe, either nothing or exactly one complete half from a single
// round: a reader that crosses a half-swung splice, meets a run node
// whose folded death words are torn, or loses part of the run's frozen
// chain mid-walk breaks that oracle. With bundles off the lock-free
// scan has no frozen-cut guarantee — it may legitimately mix rounds —
// so the off arm asserts the weaker structural oracle instead: every
// observed pair is individually plausible (its key sits in the half
// its round's parity dictates) and keys ascend strictly, which a
// reader stranded on a recycled or half-spliced run chain would break.
func TestSnapshotFrozenCutUnderRunUnlink(t *testing.T) {
	for _, bundles := range []bool{true, false} {
		name := "bundles-on"
		if !bundles {
			name = "bundles-off"
		}
		t.Run(name, func(t *testing.T) {
			forEachTxVariant(t, func(t *testing.T, v Variant) {
				g := NewGroup[uint64](WithVariant(v), WithNodeSize(4), WithMaxLevel(8), WithBundles(bundles))
				m := g.NewMap()

				const (
					stripes    = 2
					stripeBase = uint64(1) << 20
					half       = uint64(256)
				)
				rounds := 40
				if testing.Short() {
					rounds = 10
				}

				validate := func(pairs []KV[uint64]) {
					var byStripe [stripes][]KV[uint64]
					prev := uint64(0)
					for j, kv := range pairs {
						s := kv.Key / stripeBase
						if s >= stripes {
							t.Errorf("scan surfaced foreign key %d", kv.Key)
							return
						}
						if j > 0 && kv.Key <= prev {
							t.Errorf("scan keys not strictly ascending: %d after %d", kv.Key, prev)
							return
						}
						prev = kv.Key
						byStripe[s] = append(byStripe[s], kv)
					}
					for s, sp := range byStripe {
						if len(sp) == 0 {
							continue // stripe not yet populated
						}
						if !bundles {
							// No frozen cut without bundles: check each pair
							// stands on its own — placement matches its
							// round's parity and the round is real.
							for _, kv := range sp {
								r := kv.Value
								off := (r % 2) * half
								lo := uint64(s)*stripeBase + off
								if r < 1 || r > uint64(rounds) || kv.Key < lo || kv.Key >= lo+half {
									t.Errorf("stripe %d: implausible pair (%d,%d)", s, kv.Key, kv.Value)
									return
								}
							}
							continue
						}
						r := sp[0].Value
						off := (r % 2) * half
						lo := uint64(s)*stripeBase + off
						if len(sp) != int(half) {
							t.Errorf("stripe %d: torn cut with %d pairs at round %d, want %d", s, len(sp), r, half)
							return
						}
						for i, kv := range sp {
							if kv.Value != r || kv.Key != lo+uint64(i) {
								t.Errorf("stripe %d: mixed rounds in one cut: pair (%d,%d), round %d",
									s, kv.Key, kv.Value, r)
								return
							}
						}
					}
				}

				var writers sync.WaitGroup
				var done atomic.Bool
				for s := 0; s < stripes; s++ {
					writers.Add(1)
					go func(s int) {
						defer writers.Done()
						lo := uint64(s) * stripeBase
						for r := 1; r <= rounds; r++ {
							tx := g.Txn()
							tx.DeleteRange(m, lo, lo+2*half-1)
							off := (uint64(r) % 2) * half
							for k := uint64(0); k < half; k++ {
								tx.Set(m, lo+off+k, uint64(r))
							}
							if err := tx.Commit(); err != nil {
								t.Errorf("flip Commit: %v", err)
								return
							}
							tx.Release()
						}
					}(s)
				}

				var readers sync.WaitGroup
				for i := 0; i < 2; i++ {
					readers.Add(1)
					go func(viaIterator bool) {
						defer readers.Done()
						for !done.Load() {
							validate(collectPairs(m, viaIterator))
						}
					}(i == 0)
				}

				writers.Wait()
				done.Store(true)
				readers.Wait()
				validate(collectPairs(m, false))
				validate(collectPairs(m, true))
			})
		})
	}
}

// TestShardedReadOnlyTxnNoSTMActivity checks the wait-free claim of the
// sharded read-only fast path: with bundles on, a cross-shard all-read
// transaction never starts an STM transaction at all — no prepare, no
// read-lock acquisition, nothing to abort. Phase one runs such readers
// against concurrent cross-shard writers (every commit must succeed and
// observe conservation); phase two re-runs them in quiescence and
// requires the STM counters not to move by a single start.
func TestShardedReadOnlyTxnNoSTMActivity(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		const (
			shards  = 4
			perRow  = 4
			initBal = 1000
		)
		s := NewSharded[uint64](shards, WithVariant(v), WithNodeSize(8), WithSTMStats(true))
		key := func(shard, row int) uint64 {
			lo, _ := s.ShardRange(shard)
			return lo + uint64(row)
		}
		for sh := 0; sh < shards; sh++ {
			for row := 0; row < perRow; row++ {
				if err := s.Set(key(sh, row), initBal); err != nil {
					t.Fatalf("Set: %v", err)
				}
			}
		}
		total := uint64(shards * perRow * initBal)

		readOnce := func() {
			tx := s.Txn()
			snap := tx.GetRange(0, MaxKey)
			g0 := tx.Get(key(0, 0))
			if err := tx.Commit(); err != nil {
				t.Errorf("read-only Commit: %v", err)
				return
			}
			var sum uint64
			pairs := snap.Pairs()
			for _, kv := range pairs {
				sum += kv.Value
			}
			if _, ok := g0.Value(); !ok {
				t.Error("read-only Get lost a seeded key")
			}
			tx.Release()
			if len(pairs) != shards*perRow || sum != total {
				t.Errorf("torn read-only snapshot: %d pairs summing to %d, want %d/%d",
					len(pairs), sum, shards*perRow, total)
			}
		}

		// Phase one: readers under live cross-shard writers.
		iters := 200
		if testing.Short() {
			iters = 40
		}
		var writers, roReaders sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < perRow; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				r := rand.New(rand.NewPCG(uint64(w+1), 7))
				for i := 0; i < iters; i++ {
					from := r.IntN(shards)
					to := (from + 1 + r.IntN(shards-1)) % shards
					fk, tk := key(from, w), key(to, w)
					fv, _ := s.Get(fk)
					if fv == 0 {
						continue
					}
					tv, _ := s.Get(tk)
					tx := s.Txn()
					tx.Set(fk, fv-1).Set(tk, tv+1)
					if err := tx.Commit(); err != nil {
						t.Errorf("transfer Commit: %v", err)
						return
					}
					tx.Release()
				}
			}(w)
		}
		for o := 0; o < 2; o++ {
			roReaders.Add(1)
			go func() {
				defer roReaders.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					readOnce()
				}
			}()
		}
		writers.Wait()
		close(stop)
		roReaders.Wait()

		// Phase two: in quiescence, read-only transactions alone must
		// leave every STM counter untouched — zero starts means zero
		// lock acquisitions and zero aborts, under writers or not.
		before := s.STMStats()
		for i := 0; i < 100; i++ {
			readOnce()
		}
		after := s.STMStats()
		if after != before {
			t.Fatalf("read-only transactions moved STM counters: before %+v, after %+v", before, after)
		}
		if before.Aborts != before.Starts-before.Commits-before.Extensions {
			// Sanity on the aggregate identity, not a bundles property.
			t.Logf("stats identity: %+v", before)
		}
	})
}
