package leaplist

import "leaplist/internal/core"

// Iterator walks a key interval in ascending order in bounded-size
// chunks. With bundles on (the default) the whole iteration is ONE
// consistent snapshot: the iterator pins the map's epoch and draws one
// timestamp when created, and every refill resolves the next chunk
// against that frozen instant through the timestamped read path — no
// retries under churn, no re-pinning per refill, and keys that move
// concurrently neither vanish from nor appear in the iteration. The
// price is that the pin delays memory reclamation for the whole map
// while the iterator is live, so iterate promptly and call Close if
// you abandon an unexhausted iterator (exhausting it releases the pin
// automatically).
//
// With WithBundles(false) each chunk is an independent snapshot and the
// iteration is fuzzy in the usual sense of concurrent ordered-map
// iterators: keys inserted behind the cursor are not revisited, keys
// inserted ahead may or may not appear. No pin is held across chunks.
//
// A zero chunk size defaults to twice the map's node capacity, so each
// refill costs roughly two node visits.
type Iterator[V any] struct {
	m       *Map[V]
	hi      uint64
	nextKey uint64
	chunk   int
	buf     []KV[V]
	pos     int
	done    bool

	// Timestamped iteration state (bundles on): one pin and one snapshot
	// timestamp for the iterator's whole life. The pin's finger remembers
	// the node the previous refill stopped in, so each refill anchors in
	// O(1) and the iteration walks the frozen chain exactly once.
	pinned bool
	pin    core.ReadPin[V]
	s      uint64
}

// Iter returns an iterator over [lo, hi].
func (m *Map[V]) Iter(lo, hi uint64) *Iterator[V] {
	chunk := 2 * m.group.inner.Config().NodeSize
	if chunk <= 0 {
		chunk = 64
	}
	it := &Iterator[V]{m: m, hi: hi, nextKey: lo, chunk: chunk}
	if lo > hi || lo > MaxKey {
		it.done = true
		return it
	}
	if g := m.group.inner; g.Bundles() {
		// Pin before timestamp: the pin keeps every record the frozen
		// cut needs alive until the iteration (or Close) releases it.
		it.pin = g.PinReads()
		it.s = g.Now()
		it.pinned = true
	}
	return it
}

// Next returns the next pair; ok is false when the interval is exhausted.
func (it *Iterator[V]) Next() (kv KV[V], ok bool) {
	for {
		if it.pos < len(it.buf) {
			kv = it.buf[it.pos]
			it.pos++
			return kv, true
		}
		if it.done {
			return KV[V]{}, false
		}
		it.refill()
	}
}

// Close releases the iterator's epoch pin (bundles on) without draining
// it. Safe to call at any time, more than once, and on an exhausted
// iterator; the iterator yields no further pairs afterwards.
func (it *Iterator[V]) Close() {
	it.done = true
	// Drop the buffered tail so a closed iterator does not keep its
	// values live, mirroring refill's clear-before-truncate.
	clear(it.buf)
	it.buf = it.buf[:0]
	it.pos = 0
	it.unpin()
}

func (it *Iterator[V]) unpin() {
	if it.pinned {
		it.pinned = false
		it.pin.Unpin()
		it.pin = core.ReadPin[V]{}
	}
}

// refill takes the next chunk starting at nextKey.
func (it *Iterator[V]) refill() {
	// Zero the previous chunk before truncating: a bare buf[:0] would
	// leave its KVs (including pointerful values) live in the slice
	// capacity for the iterator's lifetime.
	clear(it.buf)
	it.buf = it.buf[:0]
	it.pos = 0
	if it.pinned {
		var more bool
		it.buf, it.nextKey, more = it.pin.CollectChunkAsOf(
			it.m.list, it.nextKey, it.hi, it.s, it.chunk, it.buf)
		if !more {
			it.done = true
			it.unpin()
		}
		return
	}
	it.m.Range(it.nextKey, it.hi, func(k uint64, v V) bool {
		it.buf = append(it.buf, KV[V]{Key: k, Value: v})
		return len(it.buf) < it.chunk
	})
	if len(it.buf) == 0 {
		it.done = true
		return
	}
	last := it.buf[len(it.buf)-1].Key
	if last >= it.hi || last == MaxKey {
		it.done = true
		return
	}
	it.nextKey = last + 1
}

// Collect drains the iterator into a slice.
func (it *Iterator[V]) Collect() []KV[V] {
	var out []KV[V]
	for {
		kv, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, kv)
	}
}
