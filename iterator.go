package leaplist

// Iterator walks a key interval in ascending order by taking consecutive
// range-query snapshots of bounded size. Each chunk is internally
// consistent (a linearizable snapshot, like Range); across chunk
// boundaries the iteration is fuzzy in the usual sense of concurrent
// ordered-map iterators: keys inserted behind the cursor are not
// revisited, keys inserted ahead may or may not appear. Unlike holding a
// lock or one giant transaction, iteration cost to writers is zero.
//
// A zero chunk size defaults to twice the map's node capacity, so each
// refill costs roughly two node visits.
type Iterator[V any] struct {
	m       *Map[V]
	hi      uint64
	nextKey uint64
	chunk   int
	buf     []KV[V]
	pos     int
	done    bool
}

// Iter returns an iterator over [lo, hi].
func (m *Map[V]) Iter(lo, hi uint64) *Iterator[V] {
	chunk := 2 * m.group.inner.Config().NodeSize
	if chunk <= 0 {
		chunk = 64
	}
	it := &Iterator[V]{m: m, hi: hi, nextKey: lo, chunk: chunk}
	if lo > hi || lo > MaxKey {
		it.done = true
	}
	return it
}

// Next returns the next pair; ok is false when the interval is exhausted.
func (it *Iterator[V]) Next() (kv KV[V], ok bool) {
	for {
		if it.pos < len(it.buf) {
			kv = it.buf[it.pos]
			it.pos++
			return kv, true
		}
		if it.done {
			return KV[V]{}, false
		}
		it.refill()
	}
}

// refill takes the next snapshot chunk starting at nextKey.
func (it *Iterator[V]) refill() {
	// Zero the previous chunk before truncating: a bare buf[:0] would
	// leave its KVs (including pointerful values) live in the slice
	// capacity for the iterator's lifetime.
	clear(it.buf)
	it.buf = it.buf[:0]
	it.pos = 0
	it.m.Range(it.nextKey, it.hi, func(k uint64, v V) bool {
		it.buf = append(it.buf, KV[V]{Key: k, Value: v})
		return len(it.buf) < it.chunk
	})
	if len(it.buf) == 0 {
		it.done = true
		return
	}
	last := it.buf[len(it.buf)-1].Key
	if last >= it.hi || last == MaxKey {
		it.done = true
		return
	}
	it.nextKey = last + 1
}

// Collect drains the iterator into a slice.
func (it *Iterator[V]) Collect() []KV[V] {
	var out []KV[V]
	for {
		kv, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, kv)
	}
}
