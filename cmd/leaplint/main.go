// Command leaplint runs the leaplist-specific static analyzers: epochpin,
// atomicmix, poolhygiene, phaseorder, eraguard, bundleproto, and failsite. See the analyzer docs
// in internal/rules and the "Invariants and static enforcement" section of
// internal/core/doc.go for the invariant each one enforces.
//
// Standalone usage (from anywhere inside the module):
//
//	go run ./cmd/leaplint ./...
//	go run ./cmd/leaplint ./internal/core
//
// As a go vet tool:
//
//	go build -o /tmp/leaplint ./cmd/leaplint
//	go vet -vettool=/tmp/leaplint ./...
//
// Findings are suppressed with a //lint:allow directive naming the
// analyzer and a reason:
//
//	//lint:allow epochpin pin ownership transfers to the PreparedOps
//
// Exit status: 0 with no findings, 1 on findings, 2 on operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"leaplist/cmd/leaplint/internal/lintkit"
	"leaplist/cmd/leaplint/internal/rules"
)

func main() {
	args := os.Args[1:]

	// go vet protocol: the go command probes the tool's identity and
	// flags before feeding it per-package .cfg files.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool-specific flags
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}

	os.Exit(runStandalone(args))
}

// runStandalone loads package patterns from source and reports findings.
func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "leaplint:", err)
		return 2
	}
	loader, err := lintkit.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leaplint:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leaplint:", err)
		return 2
	}
	analyzers := rules.All()
	exit := 0
	for _, pkg := range pkgs {
		diags, err := lintkit.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leaplint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			exit = 1
		}
	}
	return exit
}

// printVersion answers go vet's -V=full identity probe: the output is
// hashed into the build cache key, so it must change when the tool does.
func printVersion() {
	name := filepath.Base(os.Args[0])
	self, err := os.Executable()
	var sum [32]byte
	if err == nil {
		if data, rerr := os.ReadFile(self); rerr == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, sum[:16])
}

// vetConfig is the JSON unit description go vet hands to analysis tools.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package unit described by a go vet .cfg file.
func runVet(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leaplint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "leaplint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The facts file must exist even though leaplint computes no
	// cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "leaplint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leaplint:", err)
			return 2
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "leaplint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &lintkit.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags, err := lintkit.Run(pkg, rules.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "leaplint:", err)
		return 2
	}
	// go vet feeds the test variant of each package; leaplint enforces
	// production protocol discipline, and tests legitimately probe half
	// protocols (an Abort-only path, a white-box node walk), so findings
	// in test files are dropped — matching the standalone loader, which
	// never parses them.
	n := 0
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		n++
	}
	if n > 0 {
		return 2 // any nonzero status makes go vet report failure
	}
	return 0
}
