package lintkit

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads packages of the enclosing module from source, resolving
// module-internal imports by loading them recursively and everything
// else (the standard library) through the compiler-independent source
// importer. It needs no network, no module cache, and no export data.
type Loader struct {
	ModulePath string
	ModuleDir  string
	Fset       *token.FileSet

	ctx    build.Context
	std    types.Importer
	loaded map[string]*Package // keyed by import path
}

// NewLoader locates the enclosing module by walking up from dir to the
// nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			mod := modulePath(data)
			if mod == "" {
				return nil, fmt.Errorf("no module directive in %s/go.mod", root)
			}
			fset := token.NewFileSet()
			l := &Loader{
				ModulePath: mod,
				ModuleDir:  root,
				Fset:       fset,
				ctx:        build.Default,
				std:        importer.ForCompiler(fset, "source", nil),
				loaded:     make(map[string]*Package),
			}
			return l, nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer: module-internal paths load from
// source within the module; all other paths are delegated to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads a module-internal package by import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	return l.loadDir(dir, path)
}

// LoadDir loads the package in dir (which must be inside the module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module %s", dir, l.ModulePath)
	}
	path := l.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.loadDir(abs, path)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg, nil
	}
	l.loaded[path] = nil // cycle guard

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var files []*ast.File
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// LoadPatterns expands go-style package patterns ("./...", "./internal/core",
// import paths) into loaded packages. Directories named testdata, vendor,
// or starting with "." or "_" are skipped during ... expansion, as are
// directories with no buildable Go files.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*Package
	seen := make(map[string]bool)
	add := func(pkg *Package) {
		if !seen[pkg.PkgPath] {
			seen[pkg.PkgPath] = true
			pkgs = append(pkgs, pkg)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/...") || pat == "...":
			base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if base == "" || base == "." {
				base = "."
			}
			root := base
			if !filepath.IsAbs(root) {
				root = filepath.Join(l.ModuleDir, base)
			}
			dirs, err := walkGoDirs(root)
			if err != nil {
				return nil, err
			}
			for _, dir := range dirs {
				pkg, err := l.LoadDir(dir)
				if err != nil {
					if isNoGoError(err) {
						continue
					}
					return nil, err
				}
				add(pkg)
			}
		case strings.HasPrefix(pat, l.ModulePath):
			pkg, err := l.loadPath(pat)
			if err != nil {
				return nil, err
			}
			add(pkg)
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.ModuleDir, pat)
			}
			pkg, err := l.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			add(pkg)
		}
	}
	return pkgs, nil
}

// walkGoDirs returns every directory under root that contains .go files,
// skipping testdata, vendor, hidden, and underscore-prefixed directories.
func walkGoDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isNoGoError(err error) bool {
	var noGo *build.NoGoError
	if e, ok := err.(interface{ Unwrap() error }); ok {
		if as, ok := e.Unwrap().(*build.NoGoError); ok {
			noGo = as
		}
	}
	if noGo != nil {
		return true
	}
	return strings.Contains(err.Error(), "no buildable Go source files")
}
