// Package lintkit is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer/Pass/Diagnostic
// vocabulary, a module-aware source loader, and the //lint:allow
// suppression directive shared by every leaplint analyzer.
//
// It exists because this repository carries no third-party dependencies:
// the analyzers are written against the same shape as go/analysis (a Run
// function receiving a Pass with files, type info and a Report sink), so
// porting them onto the real framework is a mechanical change of import
// path, but they build and run with the standard library alone.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Name is the identifier used in
// //lint:allow directives; Doc is a one-paragraph description of the
// invariant the analyzer enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies every analyzer to pkg and returns the surviving findings:
// diagnostics suppressed by a //lint:allow directive are dropped, and
// malformed directives (no reason) are themselves reported under the
// pseudo-analyzer "lint". Findings are sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	idx := buildAllowIndex(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !idx.allows(d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, idx.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
