package lintkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //lint:allow directive suppresses findings of one analyzer:
//
//	//lint:allow epochpin pin ownership transfers to the PreparedOps
//
// A directive covers, in order of precedence:
//
//   - the line it sits on (trailing comment),
//   - the line immediately below it (a comment on its own line),
//   - the whole function body, when the directive appears in the doc
//     comment of a function declaration.
//
// A directive with no reason text is malformed and is itself reported.
type allowDirective struct {
	analyzer string
	file     string
	// line-scoped: the covered line. Range-scoped: [fromLine, toLine].
	fromLine, toLine int
}

type allowIndex struct {
	directives []allowDirective
	malformed  []Diagnostic
}

// buildAllowIndex scans every comment of every file for //lint:allow
// directives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{}
	for _, f := range files {
		// Map function declarations by doc comment so doc-scoped
		// directives cover the whole body.
		docRange := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			from := fset.Position(fd.Pos()).Line
			to := fset.Position(fd.End()).Line
			docRange[fd.Doc] = [2]int{from, to}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      pos,
						Message:  "malformed //lint:allow directive: want \"//lint:allow <analyzer> <reason>\"",
						Analyzer: "lint",
					})
					continue
				}
				d := allowDirective{analyzer: fields[0], file: pos.Filename}
				if r, ok := docRange[cg]; ok {
					d.fromLine, d.toLine = r[0], r[1]
				} else {
					// Cover the directive's own line and the next: a
					// trailing comment suppresses its statement, a
					// stand-alone comment suppresses the line below.
					d.fromLine, d.toLine = pos.Line, pos.Line+1
				}
				idx.directives = append(idx.directives, d)
			}
		}
	}
	return idx
}

// allows reports whether a finding of the named analyzer at pos is
// covered by a directive.
func (idx *allowIndex) allows(analyzer string, pos token.Position) bool {
	for _, d := range idx.directives {
		if d.analyzer == analyzer && d.file == pos.Filename &&
			pos.Line >= d.fromLine && pos.Line <= d.toLine {
			return true
		}
	}
	return false
}
