// Package linttest is an analysistest-style harness for lintkit
// analyzers: testdata packages annotate expected findings with
//
//	// want "regexp"
//
// comments, and Run checks that the analyzer reports exactly the
// expected diagnostics — after //lint:allow suppression, so testdata can
// also prove that suppression works.
package linttest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"leaplist/cmd/leaplint/internal/lintkit"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the package in dir and applies the analyzers, comparing
// findings against the package's // want annotations.
func Run(t testing.TB, dir string, analyzers ...*lintkit.Analyzer) {
	t.Helper()
	loader, err := lintkit.NewLoader(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("linttest: load %s: %v", dir, err)
	}
	diags, err := lintkit.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("linttest: run: %v", err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches.
func claim(wants []*expectation, d lintkit.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the // want "..." annotations of every file. A
// single comment may carry several quoted patterns.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t testing.TB, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment: %s", pos, c.Text)
					continue
				}
				for _, m := range ms {
					pat, err := unquotePattern(m[1])
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, m[1], err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// unquotePattern undoes the minimal escaping inside a want string:
// \" and \\ only, so regexp metacharacters pass through untouched.
func unquotePattern(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
