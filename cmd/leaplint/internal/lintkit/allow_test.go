package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func buildIndex(t *testing.T, src string) (*token.FileSet, *allowIndex) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_input.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, buildAllowIndex(fset, []*ast.File{f})
}

func TestAllowDirectiveScopes(t *testing.T) {
	src := `package p

//lint:allow epochpin doc-scoped reason
func covered() {
	x := 1
	_ = x
}

func uncovered() {
	y := 2 //lint:allow poolhygiene trailing reason
	z := 3
	_, _ = y, z
}
`
	_, idx := buildIndex(t, src)
	if len(idx.malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", idx.malformed)
	}
	pos := func(line int) token.Position {
		return token.Position{Filename: "allow_input.go", Line: line}
	}
	// Doc-scoped directive covers the whole body of covered (lines 4-7).
	if !idx.allows("epochpin", pos(5)) || !idx.allows("epochpin", pos(7)) {
		t.Error("doc-scoped directive should cover the whole function body")
	}
	if idx.allows("epochpin", pos(10)) {
		t.Error("doc-scoped directive must not leak into the next function")
	}
	// A trailing directive covers its own line (and the one below).
	if !idx.allows("poolhygiene", pos(10)) {
		t.Error("trailing directive should cover its own line")
	}
	if idx.allows("poolhygiene", pos(12)) {
		t.Error("trailing directive must not cover two lines down")
	}
	// The analyzer name must match.
	if idx.allows("eraguard", pos(10)) {
		t.Error("directive for poolhygiene must not suppress eraguard")
	}
}

func TestAllowDirectiveMalformed(t *testing.T) {
	src := `package p

//lint:allow epochpin
func f() {}
`
	_, idx := buildIndex(t, src)
	if len(idx.malformed) != 1 {
		t.Fatalf("want 1 malformed directive, got %d", len(idx.malformed))
	}
	d := idx.malformed[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "malformed") {
		t.Errorf("unexpected malformed diagnostic: %v", d)
	}
	if d.Pos.Line != 3 {
		t.Errorf("malformed directive reported at line %d, want 3", d.Pos.Line)
	}
}
