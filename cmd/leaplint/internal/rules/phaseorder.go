package rules

import (
	"go/ast"
	"strings"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// Phaseorder enforces the two-phase commit shape around the committer
// interface and the prepared-transaction descriptors:
//
//  1. a function that calls a committer's prepare — or a coordinator
//     helper named prepare* (prepareShards) — must check prepare's
//     result (never discard it) and must drive the protocol onward — a
//     publish/abort call (exact, or a prefix-named helper such as
//     publishShards/abortPrepared), or returning the prepared state to
//     the caller who will; this is what keeps every Commit/CommitContext
//     path funnelled into exactly one of abort-or-publish;
//  2. a function that obtains a PreparedOps/PreparedTx (PrepareOps /
//     PrepareOnce) must contain both a Publish and an Abort call, or
//     hand the descriptor outward by returning it or parking it in a
//     longer-lived carrier (x.f = p, or x.f = append(x.f, p)) — a
//     prepared transaction must reach exactly one of the two outcomes;
//  3. a prepare method that can fail must release its plan on the error
//     path: any prepare method returning a non-nil error must also call
//     releasePlan or abort somewhere, else locked entries leak.
var Phaseorder = &lintkit.Analyzer{
	Name: "phaseorder",
	Doc:  "every successful prepare must be followed by exactly one publish-or-abort, and every prepare error path must release the plan",
	Run:  runPhaseorder,
}

func runPhaseorder(pass *lintkit.Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		checkPrepareCaller(pass, fd)
		checkPreparedObtainer(pass, fd)
		checkPrepareErrorPath(pass, fd)
	}
	return nil
}

// containsCallNamed reports whether fd's body calls a function/method
// with one of the names.
func containsCallNamed(fd *ast.FuncDecl, names ...string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		got := calleeName(call)
		for _, name := range names {
			if got == name {
				found = true
			}
		}
		return true
	})
	return found
}

// checkPrepareCaller enforces rule 1 over calls to methods named
// "prepare" (the committer interface's first phase) and prefix-named
// coordinator helpers (prepareShards).
func checkPrepareCaller(pass *lintkit.Pass, fd *ast.FuncDecl) {
	if strings.HasPrefix(fd.Name.Name, "prepare") {
		return // a prepare implementation or phase-one helper: the
		// publish/abort obligation lands on its caller
	}
	if strings.HasPrefix(fd.Name.Name, "Prepare") {
		// A Prepare* API is itself phase one: its contract hands the
		// publish/abort obligation to the caller.
		return
	}
	var prepares []*ast.CallExpr
	discarded := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isPrepareCall(call) {
				discarded[call] = true
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPrepareCall(call) {
					continue
				}
				if len(st.Rhs) == len(st.Lhs) && i < len(st.Lhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						discarded[call] = true
					}
				}
			}
		case *ast.CallExpr:
			if isPrepareCall(st) {
				prepares = append(prepares, st)
			}
		}
		return true
	})
	if len(prepares) == 0 {
		return
	}
	for _, call := range prepares {
		if discarded[call] {
			pass.Reportf(call.Pos(),
				"prepare result discarded in %s: a failed prepare must be observed so the plan is released and publish is skipped", fd.Name.Name)
		}
	}
	if !containsCallPrefixed(fd, "publish", "abort", "Publish", "Abort") {
		pass.Reportf(prepares[0].Pos(),
			"%s calls prepare but never publish or abort: a successful prepare must reach exactly one of the two", fd.Name.Name)
	}
}

// containsCallPrefixed reports whether fd's body calls a function or
// method whose name starts with one of the prefixes. This is how the
// coordinator's composed legs (publishShards, abortPrepared) satisfy
// rule 1's drive-onward obligation for commit/CommitContext.
func containsCallPrefixed(fd *ast.FuncDecl, prefixes ...string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		got := calleeName(call)
		for _, p := range prefixes {
			if strings.HasPrefix(got, p) {
				found = true
			}
		}
		return true
	})
	return found
}

// isPrepareCall matches method calls named "prepare" or prefixed with
// it — the unexported committer phase and coordinator phase-one helpers
// like prepareShards (PrepareOps/PrepareOnce are rule 2's).
func isPrepareCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && strings.HasPrefix(sel.Sel.Name, "prepare")
}

// checkPreparedObtainer enforces rule 2 over PrepareOps/PrepareOnce
// callers.
func checkPreparedObtainer(pass *lintkit.Pass, fd *ast.FuncDecl) {
	var obtain *ast.CallExpr
	var bound []string // idents the prepared descriptor is assigned to
	fieldStored := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if ok {
			for i, rhs := range as.Rhs {
				call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
				if !isCall {
					continue
				}
				name := calleeName(call)
				if name != "PrepareOps" && name != "PrepareOnce" {
					continue
				}
				if obtain == nil {
					obtain = call
				}
				if len(as.Lhs) > i {
					switch lhs := ast.Unparen(as.Lhs[i]).(type) {
					case *ast.Ident:
						bound = append(bound, lhs.Name)
					case *ast.SelectorExpr:
						// b.prep = s.PrepareOnce(...): the descriptor is
						// carried by a longer-lived state object to the
						// publish/abort phase — ownership transfer.
						fieldStored = true
					}
				}
			}
		}
		if ret, isRet := n.(*ast.ReturnStmt); isRet {
			// return d.PrepareOps(...) hands the descriptor straight to
			// the caller — ownership transfer.
			for _, res := range ret.Results {
				if call, isCall := ast.Unparen(res).(*ast.CallExpr); isCall {
					if name := calleeName(call); name == "PrepareOps" || name == "PrepareOnce" {
						fieldStored = true
					}
				}
			}
		}
		if call, isCall := n.(*ast.CallExpr); isCall && obtain == nil {
			name := calleeName(call)
			if name == "PrepareOps" || name == "PrepareOnce" {
				obtain = call
			}
		}
		return true
	})
	if obtain == nil || fieldStored {
		return
	}
	for _, name := range bound {
		if returnsName(fd, name) {
			return // descriptor handed outward; the caller drives it
		}
		if storedIntoField(fd, name) {
			return // parked in a longer-lived carrier (b.prep = p)
		}
	}
	hasPublish := containsCallNamed(fd, "Publish")
	hasAbort := containsCallNamed(fd, "Abort")
	if hasPublish && hasAbort {
		return
	}
	missing := "Publish and Abort"
	if hasPublish {
		missing = "Abort"
	} else if hasAbort {
		missing = "Publish"
	}
	pass.Reportf(obtain.Pos(),
		"%s obtains a prepared transaction but has no %s path: a prepared transaction must reach exactly one of publish or abort", fd.Name.Name, missing)
}

// returnsName reports whether fd has a return statement mentioning the
// named ident anywhere in its results.
func returnsName(fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return true
			})
		}
		return true
	})
	return found
}

// storedIntoField reports whether fd assigns the named ident into a
// selector, either directly (x.f = name) or by appending it into a
// field-held slice (x.f = append(x.f, name)) — the shape a multi-shard
// coordinator uses to carry the prepared prefix to publish/abort.
func storedIntoField(fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				continue
			}
			if _, isSel := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr); !isSel {
				continue
			}
			switch r := ast.Unparen(rhs).(type) {
			case *ast.Ident:
				if r.Name == name {
					found = true
				}
			case *ast.CallExpr:
				if calleeName(r) != "append" {
					continue
				}
				for _, arg := range r.Args {
					if id, isID := ast.Unparen(arg).(*ast.Ident); isID && id.Name == name {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// checkPrepareErrorPath enforces rule 3 over methods named "prepare".
func checkPrepareErrorPath(pass *lintkit.Pass, fd *ast.FuncDecl) {
	if fd.Name.Name != "prepare" || fd.Recv == nil {
		return
	}
	// Does any return statement return something other than plain nil in
	// an error-typed-looking position? (The committer prepare signature
	// returns error last.)
	hasErrReturn := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		last := ast.Unparen(ret.Results[len(ret.Results)-1])
		if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
			return true
		}
		hasErrReturn = true
		return true
	})
	if !hasErrReturn {
		return
	}
	if containsCallNamed(fd, "releasePlan", "abort", "Abort") {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"prepare method %s.prepare has error returns but never calls releasePlan/abort: failed prepares leak their plan", receiverTypeName(fd))
}
