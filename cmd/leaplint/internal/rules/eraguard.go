package rules

import (
	"go/ast"
	"go/token"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// Eraguard protects the saved-finger protocol: a finger cached across
// operations (readScratch.finger, txState.fpa/fList) points into node
// memory that may have been reclaimed since it was saved, so it may only
// be consumed through the helpers that validate the participant's era
// first (fingerSeek*, seedAt, the seeded searches) or managed by the
// scratch lifecycle functions that stamp and invalidate it. Any other
// dereference is a latent use-after-reclaim.
//
// The same discipline covers the hash index's slot entries (idxSlot):
// the stored (node, era) pair is a third-party hint into possibly
// reclaimed node memory, so only the slot protocol helpers (idxPut,
// idxDel, idxPeek, idxGrow) may touch the fields — every consumer must
// go through idxProbe, whose fresh-epoch comparison is the era guard.
var Eraguard = &lintkit.Analyzer{
	Name: "eraguard",
	Doc:  "saved fingers may only be consumed through the era-validating fingerSeek*/seedAt helpers, never dereferenced directly; hash-index slot entries only through the idxPeek/idxProbe protocol",
	Run:  runEraguard,
}

// fingerFields are the saved-finger fields of the two scratch types.
var fingerFields = map[string]bool{"finger": true, "fpa": true, "fList": true}

// fingerHolderTypes are the scratch types that carry saved fingers.
var fingerHolderTypes = map[string]bool{"readScratch": true, "txState": true}

// eraSafeFuncs are the lifecycle functions allowed to touch finger
// fields directly: they stamp, validate, or invalidate the era.
var eraSafeFuncs = map[string]bool{
	"getRead": true, "putRead": true, "saveFinger": true,
	"getBatch": true, "putBatch": true, "saveBatchFinger": true,
	"planGroups": true,
}

// eraSafeCallees are the helpers that perform era validation before
// following a finger; passing a finger field to them is the sanctioned
// consumption path. asOfSeed is the timestamped read path's validator:
// getRead's era guard plus hintAsOf's list/born/range checks stand in
// for the live path's fEra comparison.
var eraSafeCallees = map[string]bool{
	"fingerSeekNaked": true, "fingerSeekTx": true, "fingerSeekRW": true,
	"seedAt": true, "searchNakedSeeded": true, "searchRWSeeded": true,
	"searchTxSeeded": true, "saveFinger": true, "fingerUsable": true,
	"saveBatchFinger": true, "asOfSeed": true,
}

// idxEntryFields are the hint-carrying fields of a hash-index slot: the
// remembered node and the era it was stamped under. (key and ver are
// protocol words, not hints, and stay unrestricted.)
var idxEntryFields = map[string]bool{"node": true, "era": true}

// idxHolderTypes are the types whose node/era fields the index
// discipline covers.
var idxHolderTypes = map[string]bool{"idxSlot": true}

// idxSafeFuncs are the slot-protocol functions allowed to touch entry
// fields directly: the seqlock writers, the raw seqlock reader (whose
// only caller is the era-validating idxProbe), and table migration.
var idxSafeFuncs = map[string]bool{
	"idxPut": true, "idxDel": true, "idxPeek": true, "idxGrow": true,
}

func runEraguard(pass *lintkit.Pass) error {
	if !declaresType(pass.Pkg, "readScratch") && !declaresType(pass.Pkg, "txState") &&
		!declaresType(pass.Pkg, "idxSlot") {
		return nil
	}
	checkIdx := declaresType(pass.Pkg, "idxSlot")
	for _, fd := range funcDecls(pass.Files) {
		if checkIdx && !idxSafeFuncs[fd.Name.Name] {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !idxEntryFields[sel.Sel.Name] {
					return true
				}
				if !idxHolderTypes[exprTypeName(pass, sel.X)] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s touches hash-index entry %s directly; entries must go through the slot protocol (idxPut/idxDel/idxPeek) and be consumed via idxProbe's era guard",
					fd.Name.Name, exprString(sel))
				return true
			})
		}
		if eraSafeFuncs[fd.Name.Name] {
			continue
		}
		// Selector expressions that appear as direct arguments to an
		// era-validating helper are sanctioned.
		sanctioned := make(map[ast.Expr]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !eraSafeCallees[calleeName(call)] {
				return true
			}
			for _, a := range call.Args {
				a = ast.Unparen(a)
				sanctioned[a] = true
				if un, ok := a.(*ast.UnaryExpr); ok && un.Op == token.AND {
					sanctioned[ast.Unparen(un.X)] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !fingerFields[sel.Sel.Name] {
				return true
			}
			if !fingerHolderTypes[exprTypeName(pass, sel.X)] {
				return true
			}
			if sanctioned[sel] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s consumes saved finger %s directly; fingers must go through an era-validating helper (fingerSeek*/seedAt/saveBatchFinger)",
				fd.Name.Name, exprString(sel))
			return true
		})
	}
	return nil
}
