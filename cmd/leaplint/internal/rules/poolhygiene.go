package rules

import (
	"go/ast"
	"go/types"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// Poolhygiene enforces the recycling discipline around sync.Pool and
// pooled slices:
//
//  1. reset before Put — a value handed to sync.Pool.Put must have been
//     reset in the same function (field/element assignment, clear,
//     reslice, or a method/helper call on the value) so a later Get
//     cannot observe — or pin — the previous op's state;
//  2. clear before truncate — a pointerful slice must be cleared (clear
//     or element nil-stores) somewhere in the function that truncates it
//     with s = s[:0]; a bare truncation leaves the old elements live in
//     the capacity, the PR 3 iterator-pinning bug generalized;
//  3. no pooled escape — a value obtained from sync.Pool.Get must not be
//     stored into a field of a longer-lived object unless the function
//     also Puts it back or returns it (ownership transfer).
var Poolhygiene = &lintkit.Analyzer{
	Name: "poolhygiene",
	Doc:  "pooled values must be reset before Put, pointerful slices cleared before truncation, and Get results must not leak into longer-lived fields",
	Run:  runPoolhygiene,
}

func runPoolhygiene(pass *lintkit.Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		checkResetBeforePut(pass, fd)
		checkClearBeforeTruncate(pass, fd)
		checkPooledEscape(pass, fd)
	}
	return nil
}

// isPoolMethodCall reports whether call is pool.<method>() on a
// sync.Pool-typed receiver.
func isPoolMethodCall(pass *lintkit.Pass, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// checkResetBeforePut enforces rule 1.
func checkResetBeforePut(pass *lintkit.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolMethodCall(pass, call, "Put") || len(call.Args) != 1 {
			return true
		}
		v := ast.Unparen(call.Args[0])
		vs := exprString(v)
		switch v.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true // untrackable argument (call result, composite, ...)
		}
		if hasResetEvidence(fd, call, vs) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s is handed to Pool.Put without being reset in %s (no field assignment, clear, or reset call on it)", vs, fd.Name.Name)
		return true
	})
}

// hasResetEvidence scans fd for any reset-shaped operation on the value
// named vs, other than the Put call itself: an assignment to vs or into
// vs (vs.f = ..., vs[i] = ..., vs = vs[:0]), clear(vs...), a method call
// on vs, or vs passed to another function (a reset helper).
func hasResetEvidence(fd *ast.FuncDecl, put *ast.CallExpr, vs string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if hasPrefix(exprString(lhs), vs) {
					found = true
				}
			}
		case *ast.CallExpr:
			if st == put {
				return true
			}
			if name := calleeName(st); name == "clear" && len(st.Args) == 1 &&
				hasPrefix(exprString(st.Args[0]), vs) {
				found = true
				return true
			}
			// Method call on the value: vs.reset(), vs.Release(), ...
			if recv := calleeRecv(st); recv != nil && hasPrefix(exprString(recv), vs) {
				found = true
				return true
			}
			// vs passed to another function: a reset helper owns the work.
			for _, a := range st.Args {
				if exprString(ast.Unparen(a)) == vs {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkClearBeforeTruncate enforces rule 2 over s = s[:0] assignments.
func checkClearBeforeTruncate(pass *lintkit.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
		if !ok || sl.Low != nil || sl.High == nil || sl.Max != nil {
			return true
		}
		if lit, ok := ast.Unparen(sl.High).(*ast.BasicLit); !ok || lit.Value != "0" {
			return true
		}
		ls, rs := exprString(as.Lhs[0]), exprString(sl.X)
		if ls != rs {
			return true
		}
		// Only pointerful element types pin memory past the truncation.
		tv, ok := pass.TypesInfo.Types[sl.X]
		if !ok {
			return true
		}
		slice, ok := types.Unalias(tv.Type).Underlying().(*types.Slice)
		if !ok || !typeHasPointers(slice.Elem()) {
			return true
		}
		if hasClearEvidence(fd, ls) {
			return true
		}
		pass.Reportf(as.Pos(),
			"%s is truncated with [:0] but its pointerful elements are never cleared in %s; stale pointers stay live in the capacity (clear it first)", ls, fd.Name.Name)
		return true
	})
}

// hasClearEvidence scans fd for clear(s) or an element store s[i] = ...
// on the slice named ls.
func hasClearEvidence(fd *ast.FuncDecl, ls string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if calleeName(st) == "clear" && len(st.Args) == 1 {
				if as := exprString(ast.Unparen(st.Args[0])); as == ls || hasPrefix(as, ls) {
					found = true
				}
			}
		case *ast.AssignStmt:
			// Element stores count, whether whole (s[i] = zero) or
			// per-field (s[i].ptr = nil): both are the manual clearing
			// loop idiom.
			for _, lhs := range st.Lhs {
				ast.Inspect(lhs, func(m ast.Node) bool {
					if ix, ok := m.(*ast.IndexExpr); ok && exprString(ix.X) == ls {
						found = true
					}
					return true
				})
			}
		}
		return true
	})
	return found
}

// checkPooledEscape enforces rule 3.
func checkPooledEscape(pass *lintkit.Pass, fd *ast.FuncDecl) {
	// Idents bound to a Pool.Get result (through a type assertion or not).
	got := make(map[string]ast.Node)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isGetResult(pass, rhs) || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				got[id.Name] = as
			}
		}
		return true
	})
	if len(got) == 0 {
		return
	}
	for name := range got {
		if identIsPut(pass, fd, name) || returnsNameDirect(fd, name) {
			delete(got, name)
		}
	}
	// Remaining Get results must not be stored into fields of other
	// objects (assignment or composite literal).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || got[id.Name] == nil || i >= len(st.Lhs) {
					continue
				}
				sel, ok := ast.Unparen(st.Lhs[i]).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if base := baseIdent(sel.X); base != nil && base.Name == id.Name {
					continue // v.next = v is self-linking, not escape
				}
				pass.Reportf(st.Pos(),
					"pooled %s (from Pool.Get) is stored into %s, which outlives this op, without a matching Put or return", id.Name, exprString(st.Lhs[i]))
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok && got[id.Name] != nil {
					pass.Reportf(kv.Pos(),
						"pooled %s (from Pool.Get) is stored into a %s literal, which outlives this op, without a matching Put or return", id.Name, exprString(st.Type))
				}
			}
		}
		return true
	})
}

// isGetResult reports whether e is pool.Get() or pool.Get().(T).
func isGetResult(pass *lintkit.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	return ok && isPoolMethodCall(pass, call, "Get")
}

// identIsPut reports whether fd contains Pool.Put(name) or passes name to
// a put-style helper (putRead(r), g.putBatch(b), ...).
func identIsPut(pass *lintkit.Pass, fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isPut := isPoolMethodCall(pass, call, "Put")
		callee := calleeName(call)
		isHelper := len(callee) >= 3 && callee[:3] == "put"
		if !isPut && !isHelper {
			return true
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}

// returnsNameDirect reports whether fd returns the named ident as a
// result value itself (return s). Returning a literal or struct that
// merely embeds the value is NOT a transfer — that is rule 3's escape.
func returnsNameDirect(fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}
