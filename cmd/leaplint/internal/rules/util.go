// Package rules holds the seven leaplint analyzers. Each one is keyed to
// the names and shapes of the leaplist protocol (node, Participant,
// readScratch/txState, the committer methods, the pools), so the same
// analyzers run unchanged over the real tree and over the self-contained
// testdata packages that seed violations.
package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// All returns every leaplint analyzer, in reporting order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		Epochpin,
		Atomicmix,
		Poolhygiene,
		Phaseorder,
		Eraguard,
		Bundleproto,
		Failsite,
	}
}

// namedTypeName returns the bare name of the named (or pointer-to-named,
// possibly instantiated) type of t, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = types.Unalias(u.Elem())
		case *types.Named:
			return u.Obj().Name()
		default:
			return ""
		}
	}
}

// exprTypeName names the (deref'd) type of e under pass, or "".
func exprTypeName(pass *lintkit.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return ""
	}
	return namedTypeName(tv.Type)
}

// calleeName returns the bare name of a call's callee: the method name
// for x.m(...), the function name for f(...), "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// calleeRecv returns the receiver expression of a method call, or nil.
func calleeRecv(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// funcDecls yields every function declaration with a body.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declaresType reports whether the package declares a (possibly generic)
// named type with the given bare name — the scoping test the
// core-specific analyzers use to stay quiet in unrelated packages.
func declaresType(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	obj := pkg.Scope().Lookup(name)
	_, ok := obj.(*types.TypeName)
	return ok
}

// typeHasPointers reports whether values of t can hold pointers —
// the static mirror of core's runtime typeHasPointers. Type parameters
// and interfaces count as pointerful (the conservative direction).
func typeHasPointers(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		t = types.Unalias(t)
		if seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Kind() == types.String || u.Kind() == types.UnsafePointer
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
			*types.Signature, *types.Interface:
			return true
		case *types.Array:
			return walk(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
			return false
		default:
			// *types.TypeParam underlies to its constraint interface and
			// is caught above; anything unknown is treated as pointerful.
			return true
		}
	}
	return walk(t)
}

// receiverTypeName returns the bare receiver type name of fd, or "".
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}

// baseIdent returns the root identifier of a selector/index chain
// (x in x.a.b[i].c), or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch u := ast.Unparen(e).(type) {
		case *ast.Ident:
			return u
		case *ast.SelectorExpr:
			e = u.X
		case *ast.IndexExpr:
			e = u.X
		case *ast.StarExpr:
			e = u.X
		default:
			return nil
		}
	}
}

// exprString renders e compactly for identity comparisons.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// hasPrefixExpr reports whether the rendering of e extends base
// (base itself, base.f, base[i]...).
func hasPrefixExpr(e ast.Expr, base string) bool {
	s := exprString(e)
	return s == base || strings.HasPrefix(s, base+".") || strings.HasPrefix(s, base+"[")
}
