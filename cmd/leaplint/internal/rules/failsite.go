package rules

import (
	"go/ast"
	"strconv"
	"strings"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// Failsite confines fault injection to the build-tag-gated shim files.
// The failpoint framework (internal/failpoint) is wired into production
// code exclusively through per-package fpEval/fpHit shims that exist in
// a tagged/untagged file pair (//go:build failpoint and !failpoint), so
// the normal build never links, imports, or pays for the registry. A
// file that imports internal/failpoint without carrying a failpoint
// build constraint would leak the framework into the normal build —
// exactly the zero-cost guarantee the shims exist to protect.
//
// The rule: any file importing a path ending in "internal/failpoint"
// must carry a //go:build (or legacy // +build) constraint mentioning
// the failpoint tag, positively or negatively. The failpoint package
// itself is exempt, as are _test.go files (chaos suites import the
// registry directly and are already excluded from normal builds by
// their own //go:build failpoint constraint, which the suites carry for
// the tagged test binary).
var Failsite = &lintkit.Analyzer{
	Name: "failsite",
	Doc:  "files importing internal/failpoint must be gated by a failpoint build constraint",
	Run:  runFailsite,
}

func runFailsite(pass *lintkit.Pass) error {
	if pass.Pkg != nil && strings.HasSuffix(pass.Pkg.Path(), "internal/failpoint") {
		return nil // the framework itself
	}
	for _, f := range pass.Files {
		spec := failpointImport(f)
		if spec == nil {
			continue
		}
		name := pass.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if hasFailpointConstraint(f) {
			continue
		}
		pass.Reportf(spec.Pos(),
			"file imports internal/failpoint without a failpoint build constraint: injection shims must live in //go:build failpoint / !failpoint file pairs so the normal build stays zero-cost")
	}
	return nil
}

// failpointImport returns f's import of the failpoint framework, if any.
func failpointImport(f *ast.File) *ast.ImportSpec {
	for _, spec := range f.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		if strings.HasSuffix(path, "internal/failpoint") {
			return spec
		}
	}
	return nil
}

// hasFailpointConstraint reports whether f carries a build constraint
// mentioning the failpoint tag before its package clause.
func hasFailpointConstraint(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints precede the package clause
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build ") || strings.HasPrefix(text, "// +build ") {
				if strings.Contains(text, "failpoint") {
					return true
				}
			}
		}
	}
	return false
}
