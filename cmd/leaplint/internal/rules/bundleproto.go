package rules

import (
	"go/ast"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// Bundleproto protects the versioned-link ("bundle") protocol of the
// timestamped read path. A bundle record's words (ts, to, older,
// supersededEra) encode a link's history under a strict publish
// discipline: records are prepended PENDING and filled with the batch
// timestamp inside the commit pipeline's publish phase, while the
// affected links are still marked or locked, and readers resolve them
// only through the timestamp-validating helpers (bunNextAsOf,
// bunRecoverAsOf), which spin through pending records and compare
// against the reader's snapshot instant. Any other read can observe a
// half-published record or prefer a superseded one; any other write
// breaks the per-link newest-first ordering the whole reader proof
// rests on. The rule enforces five facets:
//
//   - record fields may be touched only by the bundle protocol
//     functions themselves (and the recyclers, whose grace periods
//     prove quiescence);
//   - a node's bundle head (node.bun) and its inline record pair
//     (node.inl/node.inlUsed) are owned by the same functions;
//   - the stamping entry points (bunPublishStart, bunPrepend, bunBirth,
//     bunFillAll, bunInit, bunTruncate) may be called only from
//     publish-phase code (or list construction, for bunInit), and a
//     node's born field is stored only by the fill pass and the shell
//     recycler;
//   - the folded death words are stamped only by the publish phase that
//     swings the node's predecessor: node.repl is stored only by phase
//     A (bunPublishStart) and the node lifecycle, node.died only by the
//     fill pass and the node lifecycle.
var Bundleproto = &lintkit.Analyzer{
	Name: "bundleproto",
	Doc:  "bundle records are read only through the timestamp-validating bunNextAsOf/bunRecoverAsOf helpers and stamped only inside the commit pipeline's publish phase",
	Run:  runBundleproto,
}

// recFields are the protocol words of a bundle record.
var recFields = map[string]bool{
	"ts": true, "to": true, "older": true, "supersededEra": true, "inline": true,
}

// recHolderTypes scope the field check to the record type.
var recHolderTypes = map[string]bool{"bundleRec": true}

// bunProtoFuncs are the bundle protocol functions: the only code allowed
// to touch record fields or a node's bundle head directly. recycleNode
// and recycleBundleRec ride along because their grace periods prove no
// reader can still observe the chain they dismantle; newNode constructs
// the inline pair before the node is shared.
var bunProtoFuncs = map[string]bool{
	"recycleBundleRec": true, "recycleBundleChain": true, "bunInit": true,
	"bunPrepend": true, "bunFillAll": true, "bunTruncate": true,
	"bunNextAsOf": true, "bunRecoverAsOf": true, "recycleNode": true,
	"bunSlot": true, "bunBirth": true, "newNode": true,
}

// bunStampCallees are the stamping entry points of the protocol; calling
// one outside a publish phase would create records with no serialization
// against the links' marks/locks.
var bunStampCallees = map[string]bool{
	"bunPublishStart": true, "bunPrepend": true, "bunBirth": true,
	"bunFillAll": true, "bunInit": true, "bunTruncate": true,
}

// replStampFuncs are the functions allowed to store a node's repl word
// (the folded death record's replacement pointer): publish phase A —
// the phase that swings the node's predecessor under the same marks or
// locks — and the node lifecycle, which parks it at nil.
var replStampFuncs = map[string]bool{
	"bunPublishStart": true, "recycleNode": true,
}

// diedStampFuncs are the functions allowed to store a node's died word:
// the publish fill pass (the only place a real timestamp is known) and
// the node lifecycle, which parks it at the pending sentinel.
var diedStampFuncs = map[string]bool{
	"bunFillAll": true, "recycleNode": true, "newNode": true, "newShell": true,
}

// inlOwnerFuncs are the functions allowed to touch a node's inline
// record pair (inl, inlUsed): slot hand-out, the birth installers, the
// fill pass's inline timestamp stamp, and the node lifecycle.
var inlOwnerFuncs = map[string]bool{
	"bunSlot": true, "bunInit": true, "bunBirth": true, "bunFillAll": true,
	"recycleNode": true, "newNode": true,
}

// bunPublishPhaseFuncs are the sanctioned callers of the stamping entry
// points: the four committers' publish halves, the swing helpers that
// wire birth records at piece-publication time, the coordinated publish
// split, the protocol's own internals, and list construction (bunInit
// before the list is shared).
var bunPublishPhaseFuncs = map[string]bool{
	"publish": true, "publishAt": true, "install": true,
	// finish is the RW committer's post-unlock tail of publish (fill
	// pass + index update) — still the publish phase, just past the
	// rw-lock critical section, like LT's fill after mark release.
	"finish":       true,
	"releaseEntry": true, "applyEntryTx": true, "PublishStart": true,
	"bunPublishStart": true, "bunFillAll": true,
	"NewList": true, "BulkLoad": true,
}

// bornStampFuncs are the functions allowed to store a node's born field:
// the publish fill pass (the only place a real timestamp is known) and
// the shell lifecycle, which parks born at the pending sentinel.
var bornStampFuncs = map[string]bool{
	"bunFillAll": true, "recycleNode": true, "newShell": true,
}

func runBundleproto(pass *lintkit.Pass) error {
	if !declaresType(pass.Pkg, "bundleRec") {
		return nil
	}
	for _, fd := range funcDecls(pass.Files) {
		name := fd.Name.Name
		proto := bunProtoFuncs[name]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callee := calleeName(call)
				if bunStampCallees[callee] && !bunPublishPhaseFuncs[name] {
					pass.Reportf(call.Pos(),
						"%s calls %s outside a publish phase; bundle records are prepended and filled only inside the commit pipeline's publish (or list construction, for bunInit)",
						name, callee)
				}
				if callee == "Store" {
					if sel, ok := calleeRecv(call).(*ast.SelectorExpr); ok &&
						exprTypeName(pass, sel.X) == "node" {
						switch {
						case sel.Sel.Name == "born" && !bornStampFuncs[name]:
							pass.Reportf(call.Pos(),
								"%s stamps %s outside the publish fill pass; born is written only by bunFillAll and the shell recycler",
								name, exprString(sel))
						case sel.Sel.Name == "repl" && !replStampFuncs[name]:
							pass.Reportf(call.Pos(),
								"%s stores %s outside publish phase A; the folded replacement pointer is written only by bunPublishStart (under the predecessor's marks/locks) and the node recycler",
								name, exprString(sel))
						case sel.Sel.Name == "died" && !diedStampFuncs[name]:
							pass.Reportf(call.Pos(),
								"%s stores %s outside the publish fill pass; the folded death timestamp is written only by bunFillAll and the node lifecycle",
								name, exprString(sel))
						}
					}
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if (sel.Sel.Name == "inl" || sel.Sel.Name == "inlUsed") &&
				exprTypeName(pass, sel.X) == "node" && !inlOwnerFuncs[name] {
				pass.Reportf(sel.Pos(),
					"%s touches inline record pair %s directly; a node's inline bundle slots are owned by the protocol (bunSlot/bunInit/bunBirth/bunFillAll) and the node lifecycle",
					name, exprString(sel))
			}
			if proto {
				return true
			}
			if recFields[sel.Sel.Name] && recHolderTypes[exprTypeName(pass, sel.X)] {
				pass.Reportf(sel.Pos(),
					"%s touches bundle record field %s directly; records are resolved only through the timestamp-validating bunNextAsOf/bunRecoverAsOf helpers or mutated by the publish-phase protocol",
					name, exprString(sel))
			}
			if sel.Sel.Name == "bun" && exprTypeName(pass, sel.X) == "node" {
				pass.Reportf(sel.Pos(),
					"%s touches bundle link %s directly; the link head is owned by the bundle protocol (bunPrepend/bunTruncate/bunNextAsOf/bunRecoverAsOf)",
					name, exprString(sel))
			}
			return true
		})
	}
	return nil
}
