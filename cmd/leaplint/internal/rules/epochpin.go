package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// Epochpin enforces the epoch-reclamation protocol around *node memory:
//
//  1. pin balance — a function that acquires an epoch pin (Participant.Pin
//     or pooled scratch acquisition via getRead/getBatch) must release it
//     (Unpin/putRead/putBatch) on every return path, by defer or by an
//     explicit release before each return; returning the acquired scratch
//     transfers ownership and satisfies the obligation;
//  2. no naked node access — a function in a node-declaring package that
//     dereferences node memory must hold a pin, receive the node (or a
//     pinned scratch) from its caller, or be working on nodes it just
//     constructed;
//  3. no use after Retire — a value passed to Retire/retireNode must not
//     be used again afterwards in the same function.
var Epochpin = &lintkit.Analyzer{
	Name: "epochpin",
	Doc:  "node memory must be reached under an epoch pin, released on every path, and never touched after Retire",
	Run:  runEpochpin,
}

// Names that acquire a pin (directly or via pooled scratch) and names
// that release one.
var (
	pinAcquires = map[string]bool{"getRead": true, "getBatch": true}
	pinReleases = map[string]bool{"putRead": true, "putBatch": true}

	// Types whose presence as a parameter or receiver means the caller
	// already holds the pin that protects the node memory being touched.
	// ReadPin wraps a pinned scratch by construction (PinReads/Unpin are
	// its lifecycle), so its methods run under the pin it carries.
	pinnedCarrierTypes = map[string]bool{
		"node": true, "readScratch": true, "txState": true, "txEntry": true,
		"Tx": true, "PreparedOps": true, "PreparedTx": true, "Op": true,
		"ReadPin": true,
	}

	// Constructors whose results are private until published.
	nodeConstructors = map[string]bool{"newNode": true, "newShell": true}
)

func runEpochpin(pass *lintkit.Pass) error {
	nodeScoped := declaresType(pass.Pkg, "node") && usesEpoch(pass.Pkg)
	for _, fd := range funcDecls(pass.Files) {
		if pinAcquires[fd.Name.Name] || pinReleases[fd.Name.Name] {
			// The scratch lifecycle functions ARE the acquire/release
			// protocol; the balance and access rules apply to their
			// callers.
			continue
		}
		checkPinBalance(pass, fd)
		if nodeScoped && !nodeConstructors[fd.Name.Name] {
			checkNodeAccess(pass, fd)
		}
		checkUseAfterRetire(pass, fd)
	}
	return nil
}

// usesEpoch reports whether the package is epoch-managed: it imports the
// epoch package or declares a Participant itself (the testdata shape).
// The baseline structures (btree, trie, skiplist) have their own node
// types but no reclamation protocol, so epochpin stays quiet there.
func usesEpoch(pkg *types.Package) bool {
	if declaresType(pkg, "Participant") {
		return true
	}
	for _, imp := range pkg.Imports() {
		if imp.Name() == "epoch" {
			return true
		}
	}
	return false
}

// pinEvent is one acquire or release site within a function.
type pinEvent struct {
	pos      token.Pos
	deferred bool
	result   *ast.Ident // acquire only: the ident bound to the scratch
}

// scanPins collects pin acquire/release sites of fd, flagging acquisition
// inside defer/closures conservatively as non-deferred top-level events.
func scanPins(pass *lintkit.Pass, fd *ast.FuncDecl) (acquires, releases []pinEvent) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if isPinRelease(pass, st.Call) {
				releases = append(releases, pinEvent{pos: st.Pos(), deferred: true})
			}
			// Look inside deferred closures too.
			if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isPinRelease(pass, c) {
						releases = append(releases, pinEvent{pos: st.Pos(), deferred: true})
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if isPinAcquire(pass, st) {
				acquires = append(acquires, pinEvent{pos: st.Pos(), result: acquireResult(fd, st)})
			} else if isPinRelease(pass, st) {
				releases = append(releases, pinEvent{pos: st.Pos()})
			}
		}
		return true
	})
	return acquires, releases
}

// isPinAcquire recognizes p.Pin() on a Participant and getRead/getBatch
// calls.
func isPinAcquire(pass *lintkit.Pass, call *ast.CallExpr) bool {
	name := calleeName(call)
	if pinAcquires[name] {
		return true
	}
	if name == "Pin" {
		if recv := calleeRecv(call); recv != nil {
			return exprTypeName(pass, recv) == "Participant"
		}
	}
	return false
}

func isPinRelease(pass *lintkit.Pass, call *ast.CallExpr) bool {
	name := calleeName(call)
	if pinReleases[name] {
		return true
	}
	if name == "Unpin" {
		if recv := calleeRecv(call); recv != nil {
			return exprTypeName(pass, recv) == "Participant"
		}
	}
	return false
}

// acquireResult finds the ident an acquire call's result is assigned to
// (b := g.getBatch(...)), so ownership transfer via return can be seen.
func acquireResult(fd *ast.FuncDecl, call *ast.CallExpr) *ast.Ident {
	var out *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		if ast.Unparen(as.Rhs[0]) == call {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				out = id
			}
		}
		return true
	})
	return out
}

// checkPinBalance enforces rule 1 on fd.
func checkPinBalance(pass *lintkit.Pass, fd *ast.FuncDecl) {
	acquires, releases := scanPins(pass, fd)
	if len(acquires) == 0 {
		return
	}
	// Ownership transfer: the acquired scratch is returned to the caller.
	for _, a := range acquires {
		if a.result != nil && returnsIdent(fd, a.result) {
			return
		}
	}
	for _, r := range releases {
		if r.deferred {
			return // a deferred release covers every return path
		}
	}
	if len(releases) == 0 {
		pass.Reportf(acquires[0].pos,
			"%s acquires an epoch pin but never releases it (missing Unpin/putRead/putBatch)", fd.Name.Name)
		return
	}
	// Non-deferred releases: every return after the first acquire must be
	// preceded (in source order) by some release.
	first := acquires[0].pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside closures are not fd's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < first {
			return true
		}
		covered := false
		for _, r := range releases {
			if r.pos > first && r.pos < ret.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(ret.Pos(),
				"return leaves %s without releasing the epoch pin acquired earlier (missing Unpin/putRead/putBatch)", fd.Name.Name)
		}
		return true
	})
	// A function that falls off the end is covered by the len(releases)>0
	// check above.
}

// returnsIdent reports whether fd has a return statement whose results
// mention id's object.
func returnsIdent(fd *ast.FuncDecl, id *ast.Ident) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if rid, ok := m.(*ast.Ident); ok && rid.Name == id.Name {
					found = true
				}
				return true
			})
		}
		return true
	})
	return found
}

// checkNodeAccess enforces rule 2: flag selector access to node-typed
// expressions in functions with no pin and no pinned-carrier parameter.
func checkNodeAccess(pass *lintkit.Pass, fd *ast.FuncDecl) {
	if isPinExempt(pass, fd) {
		return
	}
	// Track idents bound to freshly constructed nodes: those are private.
	fresh := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !nodeConstructors[calleeName(call)] {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					fresh[id.Name] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if exprTypeName(pass, sel.X) != "node" {
			return true
		}
		if id := baseIdent(sel.X); id != nil && fresh[id.Name] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s dereferences node memory without an epoch pin (no Pin/getRead/getBatch, and no pinned scratch or node parameter)", fd.Name.Name)
		return true
	})
}

// isPinExempt reports whether fd may touch node memory without pinning
// itself: it is a node method, receives a pinned carrier, or acquires a
// pin somewhere in its body.
func isPinExempt(pass *lintkit.Pass, fd *ast.FuncDecl) bool {
	if pinnedCarrierTypes[receiverTypeName(fd)] {
		return true
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if fieldTypeNamesCarrier(p.Type) {
				return true
			}
		}
	}
	exempt := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPinAcquire(pass, call) {
			exempt = true
		}
		return !exempt
	})
	return exempt
}

// fieldTypeNamesCarrier reports whether a parameter type references a
// pinned-carrier type (node, scratch, ...), through pointers, slices,
// arrays and generic instantiation.
func fieldTypeNamesCarrier(t ast.Expr) bool {
	switch u := t.(type) {
	case *ast.Ident:
		return pinnedCarrierTypes[u.Name]
	case *ast.StarExpr:
		return fieldTypeNamesCarrier(u.X)
	case *ast.ArrayType:
		return fieldTypeNamesCarrier(u.Elt)
	case *ast.IndexExpr:
		return fieldTypeNamesCarrier(u.X)
	case *ast.IndexListExpr:
		return fieldTypeNamesCarrier(u.X)
	case *ast.SelectorExpr:
		return pinnedCarrierTypes[u.Sel.Name]
	case *ast.Ellipsis:
		return fieldTypeNamesCarrier(u.Elt)
	}
	return false
}

// checkUseAfterRetire enforces rule 3: after retireNode(x) or
// part.Retire(x, fn), the expression x must not be used again (until its
// base is reassigned).
func checkUseAfterRetire(pass *lintkit.Pass, fd *ast.FuncDecl) {
	type retirement struct {
		expr string
		pos  token.Pos
		end  token.Pos
	}
	var retired []retirement
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		var victim ast.Expr
		switch {
		case name == "retireNode" && len(call.Args) >= 1:
			// retireNode(n) as a method, or retireNode(b, n) as a helper:
			// the victim is the last node-typed argument.
			for _, a := range call.Args {
				if exprTypeName(pass, a) == "node" {
					victim = a
				}
			}
			if victim == nil {
				victim = call.Args[len(call.Args)-1]
			}
		case name == "Retire" && len(call.Args) >= 1:
			if recv := calleeRecv(call); recv != nil && exprTypeName(pass, recv) == "Participant" {
				victim = call.Args[0]
			}
		}
		if victim != nil {
			retired = append(retired, retirement{expr: exprString(victim), pos: call.Pos(), end: call.End()})
		}
		return true
	})
	if len(retired) == 0 {
		return
	}
	// Reassignment of the retired expression's base between the Retire
	// and the use cancels tracking (the name now holds a live value).
	reassigned := func(r retirement, usePos token.Pos) bool {
		ok := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, isAssign := n.(*ast.AssignStmt)
			if !isAssign || as.Pos() <= r.end || as.Pos() >= usePos {
				return true
			}
			for _, lhs := range as.Lhs {
				if id := baseIdent(lhs); id != nil && hasPrefix(r.expr, id.Name) {
					ok = true
				}
			}
			return true
		})
		return ok
	}
	// A bare ident on an assignment's left side is a rebinding, not a use.
	rebinds := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					rebinds[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && rebinds[id] {
			return true
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		s := exprString(e)
		for _, r := range retired {
			if s != r.expr || e.Pos() <= r.end {
				continue
			}
			if reassigned(r, e.Pos()) {
				continue
			}
			pass.Reportf(e.Pos(), "use of %s after it was passed to Retire", s)
			return false // one report per expression tree
		}
		return true
	})
}

func hasPrefix(s, base string) bool {
	if s == base {
		return true
	}
	return len(s) > len(base) && s[:len(base)] == base && (s[len(base)] == '.' || s[len(base)] == '[')
}
