package rules

import (
	"go/ast"
	"go/types"

	"leaplist/cmd/leaplint/internal/lintkit"
)

// Atomicmix flags mixed atomic/plain access: once a variable or field is
// accessed through a sync/atomic function (atomic.LoadUint64(&x.f), ...),
// every other access to the same variable must also be atomic. A plain
// read can observe a torn or stale value; a plain write can be lost —
// the bug class behind subtle lent/live-flag races.
//
// Fields declared with the atomic.* wrapper types (atomic.Uint64,
// atomic.Bool, ...) are safe by construction — their only access path is
// method calls — so the analyzer tracks only function-style atomics.
var Atomicmix = &lintkit.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed through sync/atomic must never be read or written with a plain load/store",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *lintkit.Pass) error {
	// Pass 1: collect objects accessed atomically, and the exact ident
	// nodes inside those atomic arguments (which are, by definition,
	// sanctioned uses).
	atomicObjs := make(map[types.Object]bool)
	sanctioned := make(map[*ast.Ident]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				target := ast.Unparen(un.X)
				if obj := referencedObject(pass, target); obj != nil {
					atomicObjs[obj] = true
				}
				// Every ident inside the &... argument is sanctioned.
				ast.Inspect(un, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						sanctioned[id] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	// Pass 2: every other mention of those objects is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed atomically elsewhere; use sync/atomic for every access", id.Name)
			return true
		})
	}
	return nil
}

// isSyncAtomicCall reports whether call invokes a function of the
// sync/atomic package (atomic.LoadUint64, atomic.CompareAndSwapPointer, ...).
func isSyncAtomicCall(pass *lintkit.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// referencedObject resolves the variable or field object an lvalue
// expression names: x, x.f, x[i].f ... (the innermost selected object).
func referencedObject(pass *lintkit.Pass, e ast.Expr) types.Object {
	switch u := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[u]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[u.Sel]
	case *ast.IndexExpr:
		// &arr[i]: atomic access to an element; track the backing
		// variable or field instead.
		return referencedObject(pass, u.X)
	}
	return nil
}
