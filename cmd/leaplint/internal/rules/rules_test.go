package rules_test

import (
	"path/filepath"
	"testing"

	"leaplist/cmd/leaplint/internal/lintkit/linttest"
	"leaplist/cmd/leaplint/internal/rules"
)

// testdataDir resolves cmd/leaplint/testdata/src/<name> relative to this
// package's directory.
func testdataDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestEpochpin(t *testing.T) {
	linttest.Run(t, testdataDir(t, "epochpin"), rules.Epochpin)
}

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, testdataDir(t, "atomicmix"), rules.Atomicmix)
}

func TestPoolhygiene(t *testing.T) {
	linttest.Run(t, testdataDir(t, "poolhygiene"), rules.Poolhygiene)
}

func TestPhaseorder(t *testing.T) {
	linttest.Run(t, testdataDir(t, "phaseorder"), rules.Phaseorder)
}

func TestEraguard(t *testing.T) {
	linttest.Run(t, testdataDir(t, "eraguard"), rules.Eraguard)
}

func TestBundleproto(t *testing.T) {
	linttest.Run(t, testdataDir(t, "bundleproto"), rules.Bundleproto)
}

func TestFailsite(t *testing.T) {
	linttest.Run(t, testdataDir(t, "failsite"), rules.Failsite)
}

// failRecorder wraps a real testing.TB but swallows Errorf, recording
// only that a failure happened.
type failRecorder struct {
	testing.TB
	failed bool
}

func (r *failRecorder) Errorf(string, ...any) { r.failed = true }

// TestHarnessFailsOnMissedViolation proves the want machinery is live:
// when an analyzer fails to report a seeded violation (here simulated by
// running the wrong analyzer over a testdata package), the unmatched
// want annotations must fail the test.
func TestHarnessFailsOnMissedViolation(t *testing.T) {
	rec := &failRecorder{TB: t}
	linttest.Run(rec, testdataDir(t, "epochpin"), rules.Eraguard)
	if !rec.failed {
		t.Fatal("harness did not fail when seeded violations went unreported")
	}
}
