// Package atomicmix is testdata for the atomicmix analyzer: fields and
// package variables accessed through sync/atomic in one place and with
// plain loads/stores in another.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   uint64 // accessed atomically: every access must be atomic
	misses uint64 // never accessed atomically: plain access is fine
}

func recordHit(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

func readHitsAtomicOK(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func readHitsPlain(c *counters) uint64 {
	return c.hits // want "plain access to hits"
}

func resetHitsPlain(c *counters) {
	c.hits = 0 // want "plain access to hits"
}

func readMissesOK(c *counters) uint64 {
	return c.misses
}

var shutdown uint32

func requestShutdown() {
	atomic.StoreUint32(&shutdown, 1)
}

func pollShutdownPlain() bool {
	return shutdown == 1 // want "plain access to shutdown"
}

//lint:allow atomicmix single-threaded initialization before any goroutine starts
func initCounters(c *counters) {
	c.hits = 0
}
