// Package phaseorder is testdata for the phaseorder analyzer: the
// committer prepare/publish/abort shape and the PrepareOps/PrepareOnce
// prepared-descriptor shape, with seeded violations of each sub-rule.
package phaseorder

import "errors"

var errConflict = errors.New("conflict")

var oracle func() bool

type group struct{}
type batch struct{ planned bool }

func (g *group) releasePlan(b *batch) { b.planned = false }

// --- rule 3: prepare error paths must release the plan ---

type goodCommitter struct{}

func (c *goodCommitter) prepare(g *group, b *batch) error {
	if oracle() {
		g.releasePlan(b)
		return errConflict
	}
	return nil
}
func (c *goodCommitter) publish(g *group, b *batch) {}
func (c *goodCommitter) abort(g *group, b *batch)   {}

type leakyCommitter struct{}

func (c *leakyCommitter) prepare(g *group, b *batch) error { // want "error returns but never calls releasePlan"
	if oracle() {
		return errConflict
	}
	return nil
}
func (c *leakyCommitter) publish(g *group, b *batch) {}
func (c *leakyCommitter) abort(g *group, b *batch)   {}

// --- rule 1: prepare callers must observe the result and drive on ---

func commitOK(c *goodCommitter, g *group, b *batch) error {
	if err := c.prepare(g, b); err != nil {
		return err
	}
	c.publish(g, b)
	return nil
}

func commitDiscards(c *goodCommitter, g *group, b *batch) {
	c.prepare(g, b) // want "prepare result discarded"
	c.publish(g, b)
}

func commitNoOutcome(c *goodCommitter, g *group, b *batch) error {
	return c.prepare(g, b) // want "calls prepare but never publish or abort"
}

//lint:allow phaseorder the outcome is driven by the caller through the batch
func commitDeferred(c *goodCommitter, g *group, b *batch) error {
	return c.prepare(g, b)
}

// --- rule 2: a prepared descriptor must reach publish or abort ---

type prepared struct{}

func (p *prepared) Publish() {}
func (p *prepared) Abort()   {}

type domain struct{}

func (d *domain) PrepareOps(ops []int) (*prepared, error) {
	if oracle() {
		return nil, errConflict
	}
	return &prepared{}, nil
}

func twoPhaseOK(d *domain) error {
	p, err := d.PrepareOps(nil)
	if err != nil {
		return err
	}
	if oracle() {
		p.Abort()
		return errConflict
	}
	p.Publish()
	return nil
}

func publishOnly(d *domain) error {
	p, err := d.PrepareOps(nil) // want "no Abort path"
	if err != nil {
		return err
	}
	p.Publish()
	return nil
}

func abortOnly(d *domain) error {
	p, err := d.PrepareOps(nil) // want "no Publish path"
	if err != nil {
		return err
	}
	p.Abort()
	return nil
}

func handOffOK(d *domain) (*prepared, error) {
	return d.PrepareOps(nil) // descriptor goes straight to the caller
}

func returnBoundOK(d *domain) (*prepared, error) {
	p, err := d.PrepareOps(nil)
	return p, err
}

type carrier struct{ prep *prepared }

func fieldCarryOK(d *domain, c *carrier) error {
	p, err := d.PrepareOps(nil)
	if err != nil {
		return err
	}
	c.prep = p
	return nil
}

// Appending into a field-held slice is the multi-shard coordinator's
// carry shape: the prepared prefix lives in the carrier until a later
// publish/abort pass walks it.
type multiCarrier struct{ preps []*prepared }

func appendCarryOK(d *domain, c *multiCarrier) error {
	p, err := d.PrepareOps(nil)
	if err != nil {
		return err
	}
	c.preps = append(c.preps, p)
	return nil
}

func appendLocalLeaks(d *domain) error {
	var preps []*prepared
	p, err := d.PrepareOps(nil) // want "no Publish and Abort path"
	if err != nil {
		return err
	}
	preps = append(preps, p)
	_ = preps
	return nil
}

// --- rule 1 over prefix-named coordinator helpers ---

type coordinator struct{ preps []*prepared }

func (c *coordinator) prepareShards(d *domain) error {
	p, err := d.PrepareOps(nil)
	if err != nil {
		return err
	}
	c.preps = append(c.preps, p)
	return nil
}
func (c *coordinator) publishShards() {}
func (c *coordinator) abortPrepared() {}

func (c *coordinator) commit(d *domain) error {
	if err := c.prepareShards(d); err != nil {
		c.abortPrepared()
		return err
	}
	c.publishShards()
	return nil
}

func (c *coordinator) commitNoOutcome(d *domain) error {
	return c.prepareShards(d) // want "calls prepare but never publish or abort"
}

func (c *coordinator) commitDiscards(d *domain) {
	c.prepareShards(d) // want "prepare result discarded"
	c.publishShards()
}
