// Package poolhygiene is testdata for the poolhygiene analyzer: pooled
// values Put without reset, pointerful slices truncated without clearing,
// and Pool.Get results escaping into longer-lived fields.
package poolhygiene

import "sync"

type scratch struct {
	nodes []*int
	n     int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// --- rule 1: reset before Put ---

func putNoReset(s *scratch) {
	pool.Put(s) // want "handed to Pool.Put without being reset"
}

func putResetOK(s *scratch) {
	clear(s.nodes)
	s.nodes = s.nodes[:0]
	s.n = 0
	pool.Put(s)
}

func reset(s *scratch) {
	clear(s.nodes)
	s.nodes = s.nodes[:0]
	s.n = 0
}

func putViaHelperOK(s *scratch) {
	reset(s)
	pool.Put(s)
}

//lint:allow poolhygiene the value is reset at reuse, not at release
func putResetAtReuse(s *scratch) {
	pool.Put(s)
}

// --- rule 2: clear before truncate ---

func truncateNoClear(s *scratch) {
	s.nodes = s.nodes[:0] // want "truncated with \\[:0\\] but its pointerful elements are never cleared"
}

func truncateWithClearOK(s *scratch) {
	clear(s.nodes)
	s.nodes = s.nodes[:0]
}

func truncateWithLoopOK(s *scratch) {
	for i := range s.nodes {
		s.nodes[i] = nil
	}
	s.nodes = s.nodes[:0]
}

func truncatePointerFreeOK(counts []int) []int {
	return append(counts[:0], 1) // not a self-truncation; and ints pin nothing
}

func truncateIntsOK(s *scratch, counts []int) []int {
	counts = counts[:0]
	return counts
}

// --- rule 3: no pooled escape ---

type server struct {
	cached *scratch
}

func escapeIntoField(sv *server) {
	s := pool.Get().(*scratch)
	sv.cached = s // want "stored into sv.cached"
}

func escapeIntoLiteral() *server {
	s := pool.Get().(*scratch)
	return &server{cached: s} // want "stored into a server literal"
}

func borrowOK() int {
	s := pool.Get().(*scratch)
	n := s.n
	s.n = 0
	pool.Put(s)
	return n
}

func transferOK() *scratch {
	return pool.Get().(*scratch)
}
