// Package bundleproto is testdata for the bundleproto analyzer: bundle
// record words touched outside the protocol functions, the stamping
// entry points called outside a publish phase, and born stores outside
// the fill pass.
package bundleproto

import "sync/atomic"

type node struct {
	high uint64
	born atomic.Uint64
	bun  atomic.Pointer[bundleRec]
}

type bundleRec struct {
	ts            atomic.Uint64
	death         bool
	to            *node
	older         atomic.Pointer[bundleRec]
	supersededEra atomic.Uint64
}

type txState struct {
	fills []*bundleRec
}

// --- the protocol functions (shape only): sanctioned direct access ---

func bunInit(n, to *node) {
	rec := &bundleRec{to: to}
	rec.ts.Store(0)
	n.bun.Store(rec)
}

func bunPrepend(b *txState, n, to *node, death bool) {
	rec := &bundleRec{death: death, to: to}
	rec.ts.Store(^uint64(0))
	rec.older.Store(n.bun.Load())
	n.bun.Store(rec)
	b.fills = append(b.fills, rec)
}

func bunFillAll(b *txState, n *node, ts uint64) {
	n.born.Store(ts)
	for _, rec := range b.fills {
		rec.ts.Store(ts)
	}
	bunTruncate(n, 3)
}

func bunTruncate(n *node, nowEra uint64) {
	prev := n.bun.Load()
	for prev != nil {
		rec := prev.older.Load()
		if rec != nil && rec.supersededEra.Load()+2 <= nowEra {
			prev.older.Store(nil)
			return
		}
		prev = rec
	}
}

func bunNextAsOf(n *node, s uint64) *node {
	for rec := n.bun.Load(); rec != nil; rec = rec.older.Load() {
		if rec.ts.Load() <= s {
			return rec.to
		}
	}
	return nil
}

func bunRecoverAsOf(n *node, s uint64) *node {
	for {
		rec := n.bun.Load()
		if rec == nil || !rec.death || rec.ts.Load() > s {
			return n
		}
		n = rec.to
	}
}

func recycleNode(n *node) {
	for rec := n.bun.Load(); rec != nil; {
		next := rec.older.Load()
		rec.older.Store(nil)
		rec = next
	}
	n.bun.Store(nil)
	n.born.Store(^uint64(0))
}

func newShell() *node {
	n := &node{}
	n.born.Store(^uint64(0))
	return n
}

// --- publish-phase callers: sanctioned stamping ---

func bunPublishStart(b *txState, n *node) {
	bunPrepend(b, n, nil, true)
}

func publish(b *txState, n *node) {
	bunPublishStart(b, n)
	bunFillAll(b, n, 7)
}

func publishAt(b *txState, n *node, ts uint64) {
	bunFillAll(b, n, ts)
}

func releaseEntry(b *txState, p *node) {
	bunPrepend(b, p, nil, false)
}

func applyEntryTx(b *txState, p *node) {
	bunPrepend(b, p, nil, false)
}

func NewList() *node {
	head, tail := &node{}, &node{high: ^uint64(0)}
	bunInit(head, tail)
	return head
}

// --- sanctioned reads: timestamp-validating helpers only ---

func seekOK(n *node, s uint64) *node {
	n = bunRecoverAsOf(n, s)
	for n.high < s {
		n = bunNextAsOf(n, s)
	}
	return n
}

func anchorOK(n *node, s uint64) bool {
	return n.born.Load() <= s // born reads are free; only stores are gated
}

// --- violations: raw record reads ---

func peekTimestamp(n *node) uint64 {
	rec := n.bun.Load() // want "peekTimestamp touches bundle link n.bun directly"
	return rec.ts.Load() // want "peekTimestamp touches bundle record field rec.ts directly"
}

func chaseRaw(rec *bundleRec, s uint64) *node {
	for rec != nil {
		if !rec.death { // want "chaseRaw touches bundle record field rec.death directly"
			return rec.to // want "chaseRaw touches bundle record field rec.to directly"
		}
		rec = rec.older.Load() // want "chaseRaw touches bundle record field rec.older directly"
	}
	return nil
}

func expireEarly(rec *bundleRec, era uint64) {
	rec.supersededEra.Store(era) // want "expireEarly touches bundle record field rec.supersededEra directly"
}

// --- violations: stamping outside a publish phase ---

func seekAndPatch(b *txState, n *node) {
	bunPrepend(b, n, nil, false) // want "seekAndPatch calls bunPrepend outside a publish phase"
}

func refreshDuringRead(b *txState, n *node) {
	bunFillAll(b, n, 9) // want "refreshDuringRead calls bunFillAll outside a publish phase"
}

func compactInline(n *node) {
	bunTruncate(n, 5) // want "compactInline calls bunTruncate outside a publish phase"
}

func adoptBorn(n *node, ts uint64) {
	n.born.Store(ts) // want "adoptBorn stamps n.born outside the publish fill pass"
}

// --- suppression: a deliberate white-box escape hatch ---

//lint:allow bundleproto test-only inspection of a quiesced chain
func dumpChain(n *node) int {
	count := 0
	for rec := n.bun.Load(); rec != nil; rec = rec.older.Load() {
		count++
	}
	return count
}
