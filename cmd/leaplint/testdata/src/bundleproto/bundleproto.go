// Package bundleproto is testdata for the bundleproto analyzer: bundle
// record words touched outside the protocol functions, the stamping
// entry points called outside a publish phase, born/repl/died stores
// outside their owning phases, and the inline record pair touched
// outside the protocol.
package bundleproto

import "sync/atomic"

type node struct {
	high    uint64
	born    atomic.Uint64
	bun     atomic.Pointer[bundleRec]
	inl     [2]bundleRec
	inlUsed uint8
	repl    atomic.Pointer[node]
	died    atomic.Uint64
}

type bundleRec struct {
	ts            atomic.Uint64
	to            *node
	older         atomic.Pointer[bundleRec]
	supersededEra atomic.Uint64
	inline        bool
}

type txState struct {
	fills []*bundleRec
}

// --- the protocol functions (shape only): sanctioned direct access ---

func newNode() *node {
	n := &node{}
	n.inl[0].inline = true
	n.inl[1].inline = true
	n.died.Store(^uint64(0))
	return n
}

func bunSlot(n *node) *bundleRec {
	if n.inlUsed < 2 {
		rec := &n.inl[n.inlUsed]
		n.inlUsed++
		return rec
	}
	return &bundleRec{}
}

func bunInit(n, to *node) {
	rec := &n.inl[0]
	rec.to = to
	rec.ts.Store(0)
	n.bun.Store(rec)
	n.inlUsed = 1
}

func bunBirth(p, to *node) {
	rec := &p.inl[0]
	rec.ts.Store(^uint64(0))
	rec.to = to
	p.bun.Store(rec)
	p.inlUsed = 1
}

func bunPrepend(b *txState, n, to *node) {
	rec := bunSlot(n)
	rec.to = to
	rec.ts.Store(^uint64(0))
	rec.older.Store(n.bun.Load())
	n.bun.Store(rec)
	b.fills = append(b.fills, rec)
}

func bunFillAll(b *txState, n *node, ts uint64) {
	n.born.Store(ts)
	n.inl[0].ts.Store(ts)
	n.died.Store(ts)
	for _, rec := range b.fills {
		rec.ts.Store(ts)
	}
	bunTruncate(n, 3)
}

func bunTruncate(n *node, nowEra uint64) {
	prev := n.bun.Load()
	for prev != nil {
		rec := prev.older.Load()
		if rec != nil && rec.supersededEra.Load()+2 <= nowEra {
			prev.older.Store(nil)
			return
		}
		prev = rec
	}
}

func bunNextAsOf(n *node, s uint64) *node {
	for rec := n.bun.Load(); rec != nil; rec = rec.older.Load() {
		if rec.ts.Load() <= s {
			return rec.to
		}
	}
	return nil
}

func bunRecoverAsOf(n *node, s uint64) *node {
	for {
		r := n.repl.Load()
		if r == nil || n.died.Load() > s {
			return n
		}
		n = r
	}
}

func recycleNode(n *node) {
	for rec := n.bun.Load(); rec != nil && !rec.inline; {
		next := rec.older.Load()
		rec.older.Store(nil)
		rec = next
	}
	n.bun.Store(nil)
	n.inlUsed = 0
	n.repl.Store(nil)
	n.died.Store(^uint64(0))
	n.born.Store(^uint64(0))
}

func newShell() *node {
	n := &node{}
	n.born.Store(^uint64(0))
	return n
}

// --- publish-phase callers: sanctioned stamping ---

func bunPublishStart(b *txState, n, succ *node) {
	bunPrepend(b, n, succ)
	n.repl.Store(succ)
}

func publish(b *txState, n *node) {
	bunPublishStart(b, n, nil)
	bunFillAll(b, n, 7)
}

func publishAt(b *txState, n *node, ts uint64) {
	bunFillAll(b, n, ts)
}

func releaseEntry(b *txState, p *node) {
	bunBirth(p, nil)
}

func applyEntryTx(b *txState, p *node) {
	bunBirth(p, nil)
}

func NewList() *node {
	head, tail := &node{}, &node{high: ^uint64(0)}
	bunInit(head, tail)
	return head
}

// --- sanctioned reads: timestamp-validating helpers only ---

func seekOK(n *node, s uint64) *node {
	n = bunRecoverAsOf(n, s)
	for n.high < s {
		n = bunNextAsOf(n, s)
	}
	return n
}

func anchorOK(n *node, s uint64) bool {
	// born/repl/died loads are free; only stores are gated.
	return n.born.Load() <= s && n.repl.Load() == nil && n.died.Load() > s
}

// --- violations: raw record reads ---

func peekTimestamp(n *node) uint64 {
	rec := n.bun.Load() // want "peekTimestamp touches bundle link n.bun directly"
	return rec.ts.Load() // want "peekTimestamp touches bundle record field rec.ts directly"
}

func chaseRaw(rec *bundleRec, s uint64) *node {
	for rec != nil {
		if rec.ts.Load() <= s { // want "chaseRaw touches bundle record field rec.ts directly"
			return rec.to // want "chaseRaw touches bundle record field rec.to directly"
		}
		rec = rec.older.Load() // want "chaseRaw touches bundle record field rec.older directly"
	}
	return nil
}

func expireEarly(rec *bundleRec, era uint64) {
	rec.supersededEra.Store(era) // want "expireEarly touches bundle record field rec.supersededEra directly"
}

func stealPooled(rec *bundleRec) bool {
	return rec.inline // want "stealPooled touches bundle record field rec.inline directly"
}

// --- violations: stamping outside a publish phase ---

func seekAndPatch(b *txState, n *node) {
	bunPrepend(b, n, nil) // want "seekAndPatch calls bunPrepend outside a publish phase"
}

func birthLate(p *node) {
	bunBirth(p, nil) // want "birthLate calls bunBirth outside a publish phase"
}

func refreshDuringRead(b *txState, n *node) {
	bunFillAll(b, n, 9) // want "refreshDuringRead calls bunFillAll outside a publish phase"
}

func compactInline(n *node) {
	bunTruncate(n, 5) // want "compactInline calls bunTruncate outside a publish phase"
}

func adoptBorn(n *node, ts uint64) {
	n.born.Store(ts) // want "adoptBorn stamps n.born outside the publish fill pass"
}

// --- violations: folded death words stamped outside their phases ---

func reviveManually(n *node) {
	n.repl.Store(nil) // want "reviveManually stores n.repl outside publish phase A"
}

func killEarly(n *node, succ *node, ts uint64) {
	n.repl.Store(succ) // want "killEarly stores n.repl outside publish phase A"
	n.died.Store(ts)   // want "killEarly stores n.died outside the publish fill pass"
}

// --- violations: inline pair touched outside the protocol ---

func pilferSlot(n *node) *bundleRec {
	n.inlUsed = 1    // want "pilferSlot touches inline record pair n.inlUsed directly"
	return &n.inl[1] // want "pilferSlot touches inline record pair n.inl directly"
}

// --- suppression: a deliberate white-box escape hatch ---

//lint:allow bundleproto test-only inspection of a quiesced chain
func dumpChain(n *node) int {
	count := 0
	for rec := n.bun.Load(); rec != nil; rec = rec.older.Load() {
		count++
	}
	return count
}
