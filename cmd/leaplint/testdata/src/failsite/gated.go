//go:build !failpoint

// Package failsite is testdata for the failsite analyzer: importing
// internal/failpoint is legal only in files gated by a failpoint build
// constraint (either polarity).
package failsite

import "leaplist/internal/failpoint"

// fpEval is the canonical shim shape: this file is the !failpoint half
// of the pair, so the import is properly gated.
func fpEval(site string) error { return failpoint.Eval(site) }
