package failsite

import "leaplist/internal/failpoint" // want "imports internal/failpoint without a failpoint build constraint"

// fpHit leaks the framework into the normal build: no constraint gates
// this file, so every build links the registry.
func fpHit(site string) { _ = failpoint.Eval(site) }
