// Package epochpin is testdata for the epochpin analyzer: a miniature of
// the core package's epoch protocol (Participant, node, pooled scratch)
// with seeded violations of each sub-rule.
package epochpin

// Participant mirrors epoch.Participant's acquire/release/retire shape.
type Participant struct{ pinned bool }

func (p *Participant) Pin()                        { p.pinned = true }
func (p *Participant) Unpin()                      { p.pinned = false }
func (p *Participant) Retire(v *node, f func(any)) {}

type node struct {
	high uint64
	next *node
}

type list struct {
	head *node
	part *Participant
}

type readScratch struct {
	part  *Participant
	nodes []*node
}

// getRead/putRead are the designated scratch lifecycle functions: exempt
// by name, they ARE the acquire/release protocol.
func getRead(p *Participant) *readScratch {
	p.Pin()
	return &readScratch{part: p}
}

func putRead(r *readScratch) {
	r.part.Unpin()
}

func newNode(high uint64) *node { return &node{high: high} }

// --- rule 1: pin balance ---

func leakyPin(p *Participant, n *node) uint64 {
	p.Pin() // want "acquires an epoch pin but never releases it"
	return n.high
}

func earlyReturnLeak(p *Participant, n *node, fail bool) uint64 {
	p.Pin()
	if fail {
		return 0 // want "without releasing the epoch pin"
	}
	p.Unpin()
	return n.high
}

func deferredBalanceOK(p *Participant, n *node, fail bool) uint64 {
	p.Pin()
	defer p.Unpin()
	if fail {
		return 0
	}
	return n.high
}

func scratchTransferOK(p *Participant) *readScratch {
	r := getRead(p)
	return r // ownership moves to the caller: no release needed here
}

// --- rule 2: node access requires a pin ---

func (l *list) lenNaked() int {
	n := 0
	for p := l.head; p != nil; p = p.next { // want "dereferences node memory without an epoch pin"
		n++
	}
	return n
}

func (l *list) lenPinned() int {
	l.part.Pin()
	defer l.part.Unpin()
	n := 0
	for p := l.head; p != nil; p = p.next {
		n++
	}
	return n
}

func (l *list) buildFreshOK() {
	n := newNode(7)
	n.next = l.head // a just-constructed node is private: no pin needed
	l.head = n
}

//lint:allow epochpin pre-publication construction, the list is not shared yet
func (l *list) bulkSeed(highs []uint64) {
	cur := l.head
	for _, h := range highs {
		cur.next = &node{high: h}
		cur = cur.next
	}
}

// --- rule 3: no use after Retire ---

func retireThenUse(p *Participant, n *node) uint64 {
	p.Pin()
	defer p.Unpin()
	p.Retire(n, nil)
	return n.high // want "use of n after it was passed to Retire"
}

func retireThenReassignOK(p *Participant, n *node) uint64 {
	p.Pin()
	defer p.Unpin()
	p.Retire(n, nil)
	n = newNode(1)
	return n.high
}
