// Package eraguard is testdata for the eraguard analyzer: saved fingers
// on the scratch types consumed directly instead of through the
// era-validating helpers.
package eraguard

type node struct {
	high uint64
	next *node
}

type readScratch struct {
	finger []*node
	fEra   uint64
}

type txState struct {
	fpa     []*node
	fList   *node
	fEra    uint64
	fSeedOK bool
}

// The era-validating consumption helpers (shape only).
func fingerSeekNaked(lo uint64, finger []*node) *node { return nil }
func seedAt(pa []*node, n *node)                      {}
func fingerUsable(era uint64, finger []*node) bool    { return false }

// The lifecycle functions may manage finger fields directly.
func getRead() *readScratch {
	r := &readScratch{}
	r.finger = nil
	return r
}

func putRead(r *readScratch) {
	clear(r.finger)
	r.finger = r.finger[:0]
}

func saveBatchFinger(b *txState, pa []*node) {
	b.fpa = pa
	b.fEra = 1
}

// --- sanctioned consumption ---

func lookupOK(r *readScratch, lo uint64) *node {
	return fingerSeekNaked(lo, r.finger)
}

func usableOK(r *readScratch) bool {
	return fingerUsable(r.fEra, r.finger)
}

// --- violations ---

func lookupNaked(r *readScratch, lo uint64) *node {
	f := r.finger // want "consumes saved finger r.finger directly"
	if len(f) > 0 && f[0].high >= lo {
		return f[0]
	}
	return nil
}

func planNaked(b *txState) *node {
	if b.fSeedOK && len(b.fpa) > 0 { // want "consumes saved finger b.fpa directly"
		return b.fpa[0] // want "consumes saved finger b.fpa directly"
	}
	return nil
}

func chaseListNaked(b *txState) uint64 {
	if b.fList != nil { // want "consumes saved finger b.fList directly"
		return b.fList.high // want "consumes saved finger b.fList directly"
	}
	return 0
}

//lint:allow eraguard the scratch is thread-private while the batch seeds it
func seedPrivately(b *txState, n *node) {
	b.fList = n
}

// --- hash-index slot entries ---

// idxSlot mirrors the core slot shape: (node, era) is a stored hint into
// possibly reclaimed node memory.
type idxSlot struct {
	key  uint64
	ver  uint64
	era  uint64
	node *node
}

type idxTable struct {
	slots []idxSlot
}

// The slot-protocol functions may touch entry fields directly.
func idxPut(t *idxTable, ik uint64, n *node, era uint64) {
	s := &t.slots[0]
	s.node = n
	s.era = era
}

func idxPeek(t *idxTable, ik uint64) (*node, uint64) {
	s := &t.slots[0]
	return s.node, s.era
}

func idxGrow(t *idxTable, nt *idxTable) {
	for i := range t.slots {
		nt.slots[i].node = t.slots[i].node
		nt.slots[i].era = t.slots[i].era
	}
}

// --- violations ---

func probeNaked(t *idxTable, ik uint64) *node {
	s := &t.slots[0]
	return s.node // want "touches hash-index entry s.node directly"
}

func eraNaked(t *idxTable) uint64 {
	return t.slots[0].era // want "touches hash-index entry t.slots\\[0\\].era directly"
}

//lint:allow eraguard table is private to this test helper, never shared
func drainPrivately(t *idxTable) {
	for i := range t.slots {
		t.slots[i].node = nil
	}
}
