// Command leapbench regenerates the Leap-List paper's evaluation figures
// (Figures 14-17) and this repository's ablations on the local machine.
//
// Usage:
//
//	leapbench -list
//	leapbench -exp fig14a [-duration 2s] [-reps 3] [-threads 1,2,4,8] [-csv out.csv]
//	leapbench -all -quick -duration 500ms
//
// Each experiment prints one table: rows are x-axis points (threads,
// elements, or mix percentage) and columns are algorithms, in operations
// per second — the paper's metric. Shapes, not absolute numbers, are the
// reproduction target; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"leaplist/internal/core"
	"leaplist/internal/harness"
	"leaplist/internal/latency"
	"leaplist/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leapbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID    = flag.String("exp", "", "experiment id (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		duration = flag.Duration("duration", time.Second, "measured duration per cell (paper: 10s)")
		reps     = flag.Int("reps", 1, "repetitions per cell, averaged (paper: 3)")
		threads  = flag.String("threads", "", "comma-separated thread counts (default: paper's 1..80 sweep)")
		quick    = flag.Bool("quick", false, "shrink the largest initializations for a fast pass")
		stats    = flag.Bool("stats", false, "collect STM counters per cell (aborts, prepare conflicts, timeout aborts, retry high-water)")
		csvPath  = flag.String("csv", "", "append CSV rows to this file")
		lat      = flag.String("lat", "", "latency profile one target: lt|cop|tm|rw|skip-cas|skip-tm|btree-lock|btree-lookup")
		plot     = flag.Bool("plot", false, "also render each table as an ASCII chart")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *lat != "" {
		return latProfile(*lat, *duration, *threads)
	}

	params := harness.Params{
		Duration: *duration,
		Reps:     *reps,
		Quick:    *quick,
		Stats:    *stats,
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -threads element %q", part)
			}
			params.Threads = append(params.Threads, n)
		}
	}

	var exps []harness.Experiment
	switch {
	case *all:
		exps = harness.Experiments()
	case *expID != "":
		e, ok := harness.FindExperiment(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *expID)
		}
		exps = []harness.Experiment{e}
	default:
		return fmt.Errorf("nothing to do: pass -exp <id>, -all, or -list")
	}

	fmt.Printf("# GOMAXPROCS=%d NumCPU=%d duration=%s reps=%d quick=%v\n\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), *duration, *reps, *quick)

	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		csv = f
	}

	for _, e := range exps {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		table, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := table.WriteText(os.Stdout); err != nil {
			return err
		}
		if *stats {
			if err := table.WriteStats(os.Stdout); err != nil {
				return err
			}
		}
		if *plot {
			if err := table.WritePlot(os.Stdout, 16); err != nil {
				return err
			}
		}
		fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond))
		if csv != nil {
			if err := table.WriteCSV(csv); err != nil {
				return err
			}
		}
	}
	return nil
}

// latProfile runs the paper's mixed workload against one target with
// per-operation latency tracking and prints the percentile table — the
// mechanism view behind the throughput figures (e.g. Leap-LT lookups have
// no transactional tail; Leap-tm updates do).
func latProfile(name string, duration time.Duration, threads string) error {
	workers := 8
	if threads != "" {
		n, err := strconv.Atoi(strings.TrimSpace(strings.Split(threads, ",")[0]))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -threads %q", threads)
		}
		workers = n
	}
	var tgt harness.Target
	switch name {
	case "lt":
		tgt = harness.NewLeapTarget(harness.LeapOptions{Variant: core.VariantLT, Lists: harness.PaperLists, NodeSize: harness.PaperNodeSize, MaxLevel: harness.PaperMaxLevel})
	case "cop":
		tgt = harness.NewLeapTarget(harness.LeapOptions{Variant: core.VariantCOP, Lists: harness.PaperLists, NodeSize: harness.PaperNodeSize, MaxLevel: harness.PaperMaxLevel})
	case "tm":
		tgt = harness.NewLeapTarget(harness.LeapOptions{Variant: core.VariantTM, Lists: harness.PaperLists, NodeSize: harness.PaperNodeSize, MaxLevel: harness.PaperMaxLevel})
	case "rw":
		tgt = harness.NewLeapTarget(harness.LeapOptions{Variant: core.VariantRW, Lists: harness.PaperLists, NodeSize: harness.PaperNodeSize, MaxLevel: harness.PaperMaxLevel})
	case "skip-cas":
		tgt = harness.NewSkipCASTarget(16)
	case "skip-tm":
		tgt = harness.NewSkipTMTarget(16, false)
	case "btree-lock":
		tgt = harness.NewBTreeTarget(harness.PaperNodeSize, true)
	case "btree-lookup":
		tgt = harness.NewBTreeTarget(harness.PaperNodeSize, false)
	default:
		return fmt.Errorf("unknown -lat target %q", name)
	}
	res, err := harness.Run(harness.Config{
		Workers:      workers,
		Duration:     duration,
		KeySpace:     harness.PaperKeySpace,
		Init:         harness.PaperInit,
		RangeMin:     harness.PaperRangeMin,
		RangeMax:     harness.PaperRangeMax,
		Mix:          workload.Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20},
		TrackLatency: true,
	}, tgt)
	if err != nil {
		return err
	}
	fmt.Printf("# %s — 40/40/20 mix, %d workers, %d elements, %.0f ops/s\n",
		res.Target, workers, harness.PaperInit, res.OpsPerS)
	fmt.Print(latency.Format(res.Latencies))
	return nil
}
