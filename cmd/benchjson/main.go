// Command benchjson runs a benchmark set and emits a machine-readable
// JSON perf record — the repository's bench trajectory files
// (BENCH_<n>.json), so successive PRs can diff ns/op and allocs/op
// without re-parsing `go test -bench` text.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_5.json \
//	    -bench 'Fig14a|TxMixed|Locality' -benchtime 20000x -count 1 .
//
// The trailing argument is the package to benchmark (default "."). The
// tool shells out to `go test` (with -run '^$' -benchmem), parses the
// standard benchmark output lines, and writes one JSON object per
// benchmark with every reported metric (ns/op, B/op, allocs/op, plus
// custom metrics like ops/s). Pass -in to parse an existing benchmark
// log from a file ("-" for stdin) instead of running anything.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed record.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"` // unit → value (ns/op, allocs/op, ops/s, ...)
}

// File is the emitted document.
type File struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version,omitempty"`
	Command     string   `json:"command,omitempty"`
	Results     []Result `json:"results"`
}

// benchLine matches "BenchmarkName-8   123   456.7 ns/op   8 B/op ..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "", "output JSON file (default stdout)")
	in := flag.String("in", "", "parse this benchmark log instead of running go test (\"-\" for stdin)")
	bench := flag.String("bench", ".", "-bench regexp passed to go test")
	benchtime := flag.String("benchtime", "1x", "-benchtime passed to go test")
	count := flag.Int("count", 1, "-count passed to go test")
	timeout := flag.String("timeout", "30m", "-timeout passed to go test")
	flag.Parse()

	pkg := "."
	if flag.NArg() > 0 {
		pkg = flag.Arg(0)
	}

	doc := File{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}

	var r io.Reader
	switch {
	case *in == "-":
		r = os.Stdin
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	default:
		args := []string{"test", "-run", "^$", "-bench", *bench,
			"-benchtime", *benchtime, "-benchmem",
			"-count", strconv.Itoa(*count), "-timeout", *timeout, pkg}
		doc.Command = "go " + strings.Join(args, " ")
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("go test: %w\n%s", err, outBytes))
		}
		r = strings.NewReader(string(outBytes))
	}
	if gv, err := exec.Command("go", "env", "GOVERSION").Output(); err == nil {
		doc.GoVersion = strings.TrimSpace(string(gv))
	}

	results, err := parse(r)
	if err != nil {
		fatal(err)
	}
	doc.Results = results

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parse extracts benchmark result lines from a `go test -bench` log.
// Repeated names (-count > 1) stay as separate entries; downstream
// tooling can aggregate however it likes.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iters: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = val
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
