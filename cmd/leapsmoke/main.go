// Command leapsmoke is a fast correctness and liveness check for every
// synchronization variant: it hammers each one with a concurrent mixed
// workload, cross-checks final contents against a model, and prints a
// one-line verdict per variant. Intended as a pre-benchmark sanity gate on
// a new machine (the paper's experiments assume a stable implementation;
// this is the check the authors describe doing by hand for their
// fine-grained prototype, automated).
package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"time"

	"leaplist/internal/core"
	"leaplist/internal/stm"
)

const (
	workers  = 8
	keySpace = 4096
	opsEach  = 20_000
	lists    = 4
)

func main() {
	fmt.Printf("leapsmoke: %d workers x %d ops, %d lists, keyspace %d, GOMAXPROCS=%d\n",
		workers, opsEach, lists, keySpace, runtime.GOMAXPROCS(0))
	failed := false
	for _, v := range []core.Variant{core.VariantLT, core.VariantTM, core.VariantCOP, core.VariantRW} {
		if err := smoke(v); err != nil {
			fmt.Printf("FAIL %-12s %v\n", v, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func smoke(v core.Variant) error {
	g := core.NewGroup[uint64](core.Config{
		NodeSize: 64,
		MaxLevel: 8,
		Variant:  v,
	}, stm.New(stm.WithStats(true)))
	ls := make([]*core.List[uint64], lists)
	for i := range ls {
		ls[i] = g.NewList()
	}

	start := time.Now()
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, 2027))
			ks := make([]uint64, lists)
			vs := make([]uint64, lists)
			for i := 0; i < opsEach; i++ {
				switch r.IntN(10) {
				case 0, 1, 2:
					for j := range ks {
						ks[j] = r.Uint64N(keySpace)
						vs[j] = ks[j] * 3
					}
					if err := g.Update(ls, ks, vs); err != nil {
						fail(err)
						return
					}
				case 3, 4:
					for j := range ks {
						ks[j] = r.Uint64N(keySpace)
					}
					if err := g.Remove(ls, ks, nil); err != nil {
						fail(err)
						return
					}
				case 5, 6, 7:
					k := r.Uint64N(keySpace)
					if val, ok := ls[r.IntN(lists)].Lookup(k); ok && val != k*3 {
						fail(fmt.Errorf("lookup(%d) = %d, want %d", k, val, k*3))
						return
					}
				default:
					lo := r.Uint64N(keySpace)
					ls[r.IntN(lists)].RangeQuery(lo, lo+256, func(k, val uint64) bool {
						if val != k*3 {
							fail(fmt.Errorf("range value for %d = %d", k, val))
							return false
						}
						return true
					})
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for i, l := range ls {
		if err := l.CheckInvariants(); err != nil {
			return fmt.Errorf("list %d invariants: %w", i, err)
		}
	}
	st := g.STM().Stats()
	fmt.Printf("PASS %-12s %7.0f ops/ms, %d keys/list avg, aborts %.1f%%, %s\n",
		v,
		float64(workers*opsEach)/float64(time.Since(start).Milliseconds()),
		avgLen(ls),
		100*st.AbortRate(),
		time.Since(start).Round(time.Millisecond))
	return nil
}

func avgLen(ls []*core.List[uint64]) int {
	total := 0
	for _, l := range ls {
		total += l.Len()
	}
	return total / len(ls)
}
