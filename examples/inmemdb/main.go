// Inmemdb: the paper's future-work application (§4) — an in-memory
// database whose indexes are Leap-Lists instead of B-trees.
//
// An orders table maintains a primary index plus secondary indexes on
// price and timestamp. Every mutation maintains ALL indexes with ONE
// general Leap-List transaction (core.CommitOps, the mixed-op
// generalization of the paper's multi-list Update/Remove): an upsert that
// re-prices an order evicts the stale price-index entry AND publishes the
// new one AND writes the row in the same atomic batch — mixed deletes and
// sets, addressing one index list twice. Concurrent range scans over any
// index are linearizable snapshots, and a re-indexed row is never
// invisible: before the transaction API, evict and publish were two
// batches with a window between them.
//
// The workload: order-entry threads insert and cancel orders while a
// reporting thread runs price-band queries ("all orders priced 400-600")
// and a time-window query, printing a consistent report each round.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"leaplist/internal/core"
	"leaplist/internal/imdb"
)

const (
	colPrice = 0
	colQty   = 1
	colTS    = 2

	writers   = 4
	opsEach   = 10_000
	idSpace   = 5_000
	priceCap  = 1_000
	reportLen = 5
)

func main() {
	table, err := imdb.NewTable(imdb.Config{
		Schema:       imdb.Schema{Columns: []string{"price", "qty", "ts"}},
		IndexColumns: []int{colPrice, colTS},
		Variant:      core.VariantLT,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inmemdb: orders table with price and timestamp indexes (Leap-List backed)")

	var clock atomic.Uint64 // logical timestamp source
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed uint64) {
			defer writerWG.Done()
			r := rand.New(rand.NewPCG(seed, 1234))
			for i := 0; i < opsEach; i++ {
				id := r.Uint64N(idSpace)
				if r.IntN(10) < 7 {
					row := imdb.Row{r.Uint64N(priceCap), 1 + r.Uint64N(99), clock.Add(1)}
					if err := table.Put(id, row); err != nil {
						log.Fatal(err)
					}
				} else {
					if _, err := table.Delete(id); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(uint64(w + 1))
	}

	// Reporter: consistent range scans while the writers run.
	stop := make(chan struct{})
	var reportWG sync.WaitGroup
	reportWG.Add(1)
	go func() {
		defer reportWG.Done()
		round := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			lo := uint64(round%5) * 200
			entries, err := table.SelectRange(colPrice, lo, lo+199)
			if err != nil {
				log.Fatal(err)
			}
			// The snapshot is ordered by (price, rowID); verify.
			for i := 1; i < len(entries); i++ {
				a, b := entries[i-1], entries[i]
				if a.Value > b.Value || (a.Value == b.Value && a.RowID >= b.RowID) {
					log.Fatalf("index snapshot out of order: %+v before %+v", a, b)
				}
			}
			if round%500 == 0 {
				fmt.Printf("  report %4d: %5d orders priced [%d,%d]\n",
					round, len(entries), lo, lo+199)
			}
			round++
		}
	}()

	writerWG.Wait()
	close(stop)
	reportWG.Wait()

	// Quiescent audit: indexes and primary must agree exactly.
	if err := table.CheckIndexes(); err != nil {
		log.Fatal(err)
	}

	// Final report: top price band and most recent orders.
	expensive, err := table.SelectRows(colPrice, priceCap-200, priceCap)
	if err != nil {
		log.Fatal(err)
	}
	now := clock.Load()
	var recent []imdb.IndexEntry
	if now > 0 {
		lo := uint64(0)
		if now > 100 {
			lo = now - 100
		}
		recent, err = table.SelectRange(colTS, lo, now)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("done: %d live orders; %d in top price band; %d written in the last 100 ticks\n",
		table.Len(), len(expensive), len(recent))
	n := reportLen
	if len(expensive) < n {
		n = len(expensive)
	}
	for _, row := range expensive[:n] {
		fmt.Printf("  price=%d qty=%d ts=%d\n", row[colPrice], row[colQty], row[colTS])
	}
	fmt.Println("indexes consistent: true")
}
