// Analytics: range-query-heavy time-series workload — the access pattern
// the Leap-List is built for (paper §1: "useful for various database
// applications, in particular in-memory databases").
//
// Writers append sensor readings keyed by a logical timestamp while
// analysts compute sliding-window aggregates with Range. Because every
// Range is one linearizable snapshot, two invariants are checkable live:
//
//   - value integrity: every reading in a window decodes consistently
//     (value = key * 7 here), so a window never mixes a key with another
//     write's value;
//   - prefix visibility: timestamps are appended in ascending order per
//     sensor, so a window over the committed region is gapless — the
//     failure mode of non-linearizable scans (the paper's Skip-cas) is a
//     hole in the middle of a window.
//
// The demo also shows key-space design for time series: (sensor, time)
// packs into one uint64 so each sensor owns a contiguous key region and a
// window scan is a single range query.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"leaplist"
)

const (
	sensors    = 8
	samples    = 20_000 // per sensor
	sensorBits = 8
	window     = 512
)

func key(sensor, t uint64) uint64 {
	return sensor<<(64-sensorBits) | t
}

func main() {
	m := leaplist.New[uint64]() // paper-default node size 300: fat nodes amortize window scans
	fmt.Printf("analytics: %d sensors x %d samples, window %d\n", sensors, samples, window)

	var produced [sensors]atomic.Uint64
	var wg sync.WaitGroup

	// Writers: one per sensor, appending in timestamp order.
	for s := uint64(0); s < sensors; s++ {
		wg.Add(1)
		go func(s uint64) {
			defer wg.Done()
			for t := uint64(0); t < samples; t++ {
				if err := m.Set(key(s, t), key(s, t)*7); err != nil {
					log.Fatal(err)
				}
				produced[s].Store(t + 1)
			}
		}(s)
	}

	// Analysts: sliding-window aggregates over random sensors.
	stop := make(chan struct{})
	var analystWG sync.WaitGroup
	var windowsScanned, readingsScanned atomic.Uint64
	for a := 0; a < 2; a++ {
		analystWG.Add(1)
		go func(a int) {
			defer analystWG.Done()
			for round := uint64(0); ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				s := (round + uint64(a)) % sensors
				// Only the region this sensor had committed before the
				// scan started is asserted gapless.
				committed := produced[s].Load()
				if committed == 0 {
					continue
				}
				lo := uint64(0)
				if committed > window {
					lo = committed - window
				}
				var count uint64
				var sum uint64
				expected := key(s, lo)
				ok := true
				m.Range(key(s, lo), key(s, committed-1), func(k uint64, v uint64) bool {
					if v != k*7 {
						log.Fatalf("value integrity: key %d holds %d, want %d", k, v, k*7)
					}
					if k != expected {
						ok = false
						return false
					}
					expected = k + 1
					count++
					sum += v
					return true
				})
				if !ok {
					log.Fatalf("window gap: sensor %d expected key %d", s, expected)
				}
				if count < committed-lo {
					// The snapshot may be OLDER than `committed` read
					// above only if the scan linearized first — in that
					// case it is still a prefix, checked above. Count can
					// exceed, never undershoot, once gapless.
					log.Fatalf("window undershoot: sensor %d saw %d of %d", s, count, committed-lo)
				}
				windowsScanned.Add(1)
				readingsScanned.Add(count)
			}
		}(a)
	}

	wg.Wait()
	close(stop)
	analystWG.Wait()

	// Final verification pass: every sensor's full series, one snapshot.
	for s := uint64(0); s < sensors; s++ {
		n := m.Count(key(s, 0), key(s, samples-1))
		if n != samples {
			log.Fatalf("sensor %d has %d samples, want %d", s, n, samples)
		}
	}

	// Retention: one transaction per sensor evicts everything older than
	// the last window AND aggregates the survivors. Tx.DeleteRange and
	// Tx.GetRange resolve at the same commit linearization point, so the
	// aggregate can never observe a half-evicted series — the classic bug
	// of running a scan and a trim as two separate operations.
	g := m.Group()
	var retained, evicted uint64
	for s := uint64(0); s < sensors; s++ {
		cutoff := uint64(samples - window)
		tx := g.Txn()
		dropped := tx.DeleteRange(m, key(s, 0), key(s, cutoff-1))
		kept := tx.GetRange(m, key(s, cutoff), key(s, samples-1))
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		if n := dropped.Count(); uint64(n) != cutoff {
			log.Fatalf("sensor %d evicted %d readings, want %d", s, n, cutoff)
		}
		if n := kept.Count(); n != window {
			log.Fatalf("sensor %d retained %d readings, want %d", s, n, window)
		}
		for _, kv := range kept.Pairs() {
			if kv.Value != kv.Key*7 {
				log.Fatalf("retention integrity: key %d holds %d, want %d", kv.Key, kv.Value, kv.Key*7)
			}
		}
		retained += uint64(kept.Count())
		evicted += uint64(dropped.Count())
		tx.Release()
	}

	fmt.Printf("done: %d readings ingested, %d windows scanned (%d readings aggregated), all snapshots consistent\n",
		sensors*samples, windowsScanned.Load(), readingsScanned.Load())
	fmt.Printf("retention: %d readings evicted, %d retained, atomically per sensor\n", evicted, retained)
}
