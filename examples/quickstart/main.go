// Quickstart: the Leap-List public API in one minute — create a map, point
// operations, and the headline feature: linearizable range queries.
package main

import (
	"fmt"
	"log"

	"leaplist"
)

func main() {
	// A Map is a concurrent ordered dictionary: uint64 keys, any value
	// type. The default configuration is the paper's (node size 300,
	// max level 10, Leap-LT synchronization).
	m := leaplist.New[string]()

	// Point writes and reads.
	for i, name := range []string{"ada", "grace", "edsger", "barbara", "tony"} {
		if err := m.Set(uint64(i*10), name); err != nil {
			log.Fatal(err)
		}
	}
	if v, ok := m.Get(20); ok {
		fmt.Println("key 20 ->", v)
	}

	// Overwrite and delete.
	if err := m.Set(20, "edsger w."); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Delete(40); err != nil {
		log.Fatal(err)
	}

	// The headline operation: a range query returning one consistent
	// snapshot of every pair in [10, 30], in key order. Concurrent writers
	// can never make this observe a half-applied state.
	fmt.Println("range [10, 30]:")
	m.Range(10, 30, func(k uint64, v string) bool {
		fmt.Printf("  %d -> %s\n", k, v)
		return true // keep going
	})

	// Collect materializes a snapshot; Count sizes one.
	snapshot := m.Collect(0, leaplist.MaxKey)
	fmt.Printf("whole map: %d entries, first = %d/%s\n",
		m.Count(0, leaplist.MaxKey), snapshot[0].Key, snapshot[0].Value)

	// Variants: the same API runs over the paper's four synchronization
	// protocols; Leap-LT is the default and the fastest.
	tm := leaplist.New[int](leaplist.WithVariant(leaplist.TM), leaplist.WithNodeSize(64))
	if err := tm.Set(1, 100); err != nil {
		log.Fatal(err)
	}
	v, _ := tm.Get(1)
	fmt.Println("TM variant says:", v)
}
