// Bank: composed multi-map atomicity under fire.
//
// Four maps hold account balances for four branches. Transfer operations
// move money between branches using SetMany — the paper's composed update
// across L Leap-Lists — while auditors continuously sum every branch with
// linearizable range queries. The demo proves two properties at once:
//
//  1. SetMany batches are all-or-nothing: the grand total is conserved by
//     every transfer even though it touches two maps.
//  2. Range queries are consistent snapshots: each auditor's per-branch
//     sum is taken at one linearization instant, so a torn read inside a
//     branch would be detected immediately.
//
// Note the scope of the guarantee, also the paper's: atomicity spans the
// maps of one batch; the auditor's sum ACROSS branches interleaves with
// transfers, so only the quiescent grand total is asserted exactly, while
// per-branch snapshots are internally consistent at all times.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"

	"leaplist"
)

const (
	branches     = 4
	accounts     = 1_000 // per branch
	initialFunds = 100
	transfers    = 30_000
	workers      = 4
)

func main() {
	g := leaplist.NewGroup[uint64](leaplist.WithNodeSize(64), leaplist.WithSTMStats(true))
	maps := make([]*leaplist.Map[uint64], branches)
	for b := range maps {
		maps[b] = g.NewMap()
		for a := uint64(0); a < accounts; a++ {
			if err := maps[b].Set(a, initialFunds); err != nil {
				log.Fatal(err)
			}
		}
	}
	grandTotal := uint64(branches * accounts * initialFunds)
	fmt.Printf("bank: %d branches x %d accounts, grand total %d\n",
		branches, accounts, grandTotal)

	var transferWG, auditWG sync.WaitGroup
	stop := make(chan struct{})

	// Auditor: continuously snapshots whole branches.
	audits := 0
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			b := audits % branches
			var sum uint64
			maps[b].Range(0, accounts-1, func(_ uint64, v uint64) bool {
				sum += v
				return true
			})
			// A branch's money moves, so per-branch sums vary — but a torn
			// snapshot could produce a sum exceeding all money in the bank.
			if sum > grandTotal {
				log.Fatalf("torn snapshot: branch %d sums to %d > bank total %d", b, sum, grandTotal)
			}
			audits++
		}
	}()

	// Transfer workers: move 1 unit between random (branch, account)
	// pairs. The read-modify-write per account pair is made atomic by
	// keying the transfer on the CURRENT balances read back right before
	// writing under a per-pair ordering lock (kept simple here: one global
	// transfer mutex per worker-pair region would be overkill for a demo,
	// so workers own disjoint account ranges and need no locks at all).
	perWorker := accounts / workers
	for w := 0; w < workers; w++ {
		transferWG.Add(1)
		go func(w int) {
			defer transferWG.Done()
			r := rand.New(rand.NewPCG(uint64(w+1), 42))
			loA, hiA := uint64(w*perWorker), uint64((w+1)*perWorker-1)
			for i := 0; i < transfers/workers; i++ {
				from := r.IntN(branches)
				to := (from + 1 + r.IntN(branches-1)) % branches
				acct := loA + r.Uint64N(hiA-loA+1)

				fv, _ := maps[from].Get(acct)
				tv, _ := maps[to].Get(acct)
				if fv == 0 {
					continue
				}
				// One atomic batch debits and credits.
				err := g.SetMany(
					[]*leaplist.Map[uint64]{maps[from], maps[to]},
					[]uint64{acct, acct},
					[]uint64{fv - 1, tv + 1},
				)
				if err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}

	// Wait for the transfer workers, then stop the auditor.
	transferWG.Wait()
	close(stop)
	auditWG.Wait()

	// Quiescent grand total must be conserved exactly.
	var total uint64
	for b := range maps {
		maps[b].Range(0, accounts-1, func(_ uint64, v uint64) bool {
			total += v
			return true
		})
	}
	st := g.STMStats()
	fmt.Printf("done: %d transfers, %d audits, final grand total %d (conserved: %v)\n",
		transfers, audits, total, total == grandTotal)
	fmt.Printf("stm: %d commits, %d aborts (%.2f%%)\n",
		st.Commits, st.Aborts, 100*st.AbortRate())
	if total != grandTotal {
		log.Fatal("MONEY WAS CREATED OR DESTROYED")
	}
}
