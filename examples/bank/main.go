// Bank: multi-key transactional atomicity under fire.
//
// Four maps hold account balances for four branches. Transfer operations
// move money with Group.Txn transactions — the general form of the
// paper's composed update across L Leap-Lists — while auditors
// continuously sum every branch with linearizable range queries. Two
// transfer shapes run concurrently:
//
//   - cross-branch: debit (branch A, account) and credit (branch B,
//     account) — two maps, one key each, the shape the legacy SetMany
//     could already express;
//   - intra-branch: debit one account and credit ANOTHER account of the
//     SAME branch map — two keys in one map, impossible under the old
//     one-key-per-map batch surface.
//
// Each transaction also stages a Get of the debited account to
// demonstrate read-your-own-writes: the value it reports is the balance
// after the staged debit, observed atomically at the commit's
// linearization point.
//
// The demo proves two properties at once:
//
//  1. Transactions are all-or-nothing: the grand total is conserved by
//     every transfer, and each branch's quiescent sum equals its initial
//     funds plus its cross-branch net — intra-branch transfers must
//     conserve it exactly.
//  2. Range queries are consistent snapshots: each auditor's per-branch
//     sum is taken at one linearization instant, so a torn read inside a
//     branch would be detected immediately.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"leaplist"
)

const (
	branches     = 4
	accounts     = 1_000 // per branch
	initialFunds = 100
	transfers    = 30_000
	workers      = 4
)

func main() {
	g := leaplist.NewGroup[uint64](leaplist.WithNodeSize(64), leaplist.WithSTMStats(true))
	maps := make([]*leaplist.Map[uint64], branches)
	for b := range maps {
		maps[b] = g.NewMap()
		for a := uint64(0); a < accounts; a++ {
			if err := maps[b].Set(a, initialFunds); err != nil {
				log.Fatal(err)
			}
		}
	}
	branchTotal := uint64(accounts * initialFunds)
	grandTotal := uint64(branches) * branchTotal
	fmt.Printf("bank: %d branches x %d accounts, grand total %d\n",
		branches, accounts, grandTotal)

	var transferWG, auditWG sync.WaitGroup
	stop := make(chan struct{})

	// Net cross-branch flow per branch, for the quiescent audit:
	// intra-branch transfers never change a branch's sum, so at the end
	// each branch must hold exactly initial + crossNet.
	var crossNet [branches]atomic.Int64

	// Auditor: continuously snapshots whole branches.
	audits := 0
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			b := audits % branches
			var sum uint64
			maps[b].Range(0, accounts-1, func(_ uint64, v uint64) bool {
				sum += v
				return true
			})
			// Money only moves between branches one unit at a time, so a
			// branch sum beyond all money in the bank proves a torn
			// snapshot of a transfer.
			if sum > grandTotal {
				log.Fatalf("torn snapshot: branch %d sums to %d > bank total %d", b, sum, grandTotal)
			}
			audits++
		}
	}()

	// Transfer workers own disjoint account ranges, so their
	// read-modify-write cycles need no extra locking; the transaction is
	// what makes the multi-key write (and its staged read-back) atomic
	// against the auditors.
	perWorker := accounts / workers
	failures := make(chan error, workers)
	for w := 0; w < workers; w++ {
		transferWG.Add(1)
		go func(w int) {
			defer transferWG.Done()
			r := rand.New(rand.NewPCG(uint64(w+1), 42))
			loA, hiA := uint64(w*perWorker), uint64((w+1)*perWorker-1)
			for i := 0; i < transfers/workers; i++ {
				from := r.IntN(branches)
				acct := loA + r.Uint64N(hiA-loA+1)
				fv, _ := maps[from].Get(acct)
				if fv == 0 {
					continue
				}

				tx := g.Txn()
				var readBack leaplist.TxGet[uint64]
				if i%2 == 0 {
					// Cross-branch: same account, two maps.
					to := (from + 1 + r.IntN(branches-1)) % branches
					tv, _ := maps[to].Get(acct)
					tx.Set(maps[from], acct, fv-1)
					tx.Set(maps[to], acct, tv+1)
					readBack = tx.Get(maps[from], acct)
					crossNet[from].Add(-1)
					crossNet[to].Add(1)
				} else {
					// Intra-branch: two accounts, ONE map — the batch shape
					// the fixed SetMany surface could not express.
					toAcct := loA + r.Uint64N(hiA-loA+1)
					if toAcct == acct {
						continue
					}
					tv, _ := maps[from].Get(toAcct)
					tx.Set(maps[from], acct, fv-1)
					tx.Set(maps[from], toAcct, tv+1)
					readBack = tx.Get(maps[from], acct)
				}
				if err := tx.Commit(); err != nil {
					failures <- err
					return
				}
				// Read-your-own-writes: the staged Get saw the debit.
				got, ok := readBack.Value()
				tx.Release() // handles read; recycle the builder
				if !ok || got != fv-1 {
					failures <- fmt.Errorf("staged Get = (%d, %v), want (%d, true)", got, ok, fv-1)
					return
				}
			}
		}(w)
	}

	transferWG.Wait()
	close(stop)
	auditWG.Wait()
	select {
	case err := <-failures:
		log.Fatal(err)
	default:
	}

	// Quiescent audit: per-branch conservation and the exact grand total.
	var total uint64
	for b := range maps {
		var sum uint64
		maps[b].Range(0, accounts-1, func(_ uint64, v uint64) bool {
			sum += v
			return true
		})
		want := int64(branchTotal) + crossNet[b].Load()
		if int64(sum) != want {
			log.Fatalf("branch %d sums to %d, want %d (intra-branch transfers must conserve it)", b, sum, want)
		}
		total += sum
	}
	st := g.STMStats()
	fmt.Printf("done: %d transfers, %d audits, final grand total %d (conserved: %v)\n",
		transfers, audits, total, total == grandTotal)
	fmt.Printf("stm: %d commits, %d aborts (%.2f%%)\n",
		st.Commits, st.Aborts, 100*st.AbortRate())
	if total != grandTotal {
		log.Fatal("MONEY WAS CREATED OR DESTROYED")
	}
}
