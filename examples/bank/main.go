// Bank: cross-shard transactional atomicity under fire.
//
// One Sharded store with four shards holds account balances for four
// branches, each branch's key range owned by a different shard — four
// independent STM domains. Transfer operations move money with
// Sharded.Txn cross-shard transactions (the two-phase commit built on
// the commit pipeline's prepare/publish split), while auditors
// continuously snapshot THE WHOLE BANK in one transaction. Two transfer
// shapes run concurrently:
//
//   - cross-branch: debit (branch A, account) and credit (branch B,
//     account) — two shards, so the commit is a genuine two-phase
//     prepare-all-then-publish-all across two STM domains;
//   - intra-branch: debit one account and credit another account of the
//     SAME branch — one shard, taking the coordination-free fast path.
//
// Cross-branch transfers run bounded: CommitContext with a short
// deadline. A coordinated commit that cannot win every shard in time is
// cleanly abandoned (ErrTxTimeout — nothing held, nothing published)
// and the worker degrades gracefully, shedding the transfer to the
// single-branch fast path instead. Money is conserved either way; the
// shed count and the STM timeout counter are reported at the end.
//
// Each transaction also stages a Get of the debited account to
// demonstrate read-your-own-writes across the 2PC: the value it reports
// is the balance after the staged debit, observed atomically at the
// transaction's atomicity point.
//
// The demo proves the two-phase commit's headline property live: every
// auditor snapshot is one atomic cross-shard GetRange, so its grand
// total must equal the bank's total EXACTLY, every time — a transfer
// published on one shard but not yet the other would be caught
// immediately. (The old single-group version of this example could only
// audit one branch at a time and noted that cross-branch sums were not
// atomic; the Sharded two-phase commit removes that caveat.)
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"leaplist"
)

const (
	branches     = 4
	accounts     = 1_000 // per branch
	initialFunds = 100
	transfers    = 30_000
	workers      = 4
	// crossDeadline bounds each cross-branch (two-shard) commit; a miss
	// sheds the transfer to the single-branch fast path.
	crossDeadline = 2 * time.Millisecond
)

func main() {
	bank := leaplist.NewSharded[uint64](branches,
		leaplist.WithNodeSize(64), leaplist.WithSTMStats(true))

	// Branch b's accounts live at the base of shard b's key range, so
	// every branch is owned by a different shard (asserted below).
	acctKey := func(branch int, acct uint64) uint64 {
		lo, _ := bank.ShardRange(branch)
		return lo + acct
	}
	for b := 0; b < branches; b++ {
		if bank.ShardOf(acctKey(b, 0)) != b {
			log.Fatalf("branch %d not on its own shard", b)
		}
		for a := uint64(0); a < accounts; a++ {
			if err := bank.Set(acctKey(b, a), initialFunds); err != nil {
				log.Fatal(err)
			}
		}
	}
	grandTotal := uint64(branches) * accounts * initialFunds
	fmt.Printf("bank: %d branches x %d accounts on %d shards, grand total %d\n",
		branches, accounts, bank.Shards(), grandTotal)

	var transferWG, auditWG sync.WaitGroup
	stop := make(chan struct{})

	// Auditor: one atomic snapshot of every branch per audit. Because
	// the snapshot is a single cross-shard transaction, conservation
	// must hold exactly — not just per branch, but across the bank.
	audits := 0
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := bank.Txn()
			snap := tx.GetRange(0, leaplist.MaxKey)
			if err := tx.Commit(); err != nil {
				log.Fatalf("audit commit: %v", err)
			}
			var sum uint64
			for _, kv := range snap.Pairs() {
				sum += kv.Value
			}
			tx.Release()
			if sum != grandTotal {
				log.Fatalf("torn cross-shard snapshot: bank sums to %d, want %d", sum, grandTotal)
			}
			audits++
		}
	}()

	// Transfer workers own disjoint account ranges, so their
	// read-modify-write cycles need no extra locking; the transaction is
	// what makes the multi-shard write (and its staged read-back) atomic
	// against the auditors.
	perWorker := accounts / workers
	failures := make(chan error, workers)
	var sheds atomic.Uint64
	for w := 0; w < workers; w++ {
		transferWG.Add(1)
		go func(w int) {
			defer transferWG.Done()
			r := rand.New(rand.NewPCG(uint64(w+1), 42))
			loA, hiA := uint64(w*perWorker), uint64((w+1)*perWorker-1)
			for i := 0; i < transfers/workers; i++ {
				from := r.IntN(branches)
				acct := loA + r.Uint64N(hiA-loA+1)
				fromKey := acctKey(from, acct)
				fv, _ := bank.Get(fromKey)
				if fv == 0 {
					continue
				}

				// Pick the credited keys before building the transaction
				// so a same-account collision never abandons a builder.
				// The intra-branch key doubles as the shed target when a
				// cross-branch commit misses its deadline.
				toAcct := loA + r.Uint64N(hiA-loA+1)
				if toAcct == acct {
					continue
				}
				intraKey := acctKey(from, toAcct)
				cross := i%2 == 0
				toKey := intraKey
				if cross {
					// Cross-branch: same account, two branches — two
					// shards, a genuine two-phase commit.
					to := (from + 1 + r.IntN(branches-1)) % branches
					toKey = acctKey(to, acct)
				}
				tv, _ := bank.Get(toKey)
				tx := bank.Txn()
				tx.Set(fromKey, fv-1)
				tx.Set(toKey, tv+1)
				readBack := tx.Get(fromKey)
				var err error
				if cross {
					// Bounded two-phase commit: if the coordinated path
					// cannot win both shards within crossDeadline it is
					// cleanly abandoned — every prepared shard aborted,
					// balances untouched.
					ctx, cancel := context.WithTimeout(context.Background(), crossDeadline)
					err = tx.CommitContext(ctx)
					cancel()
					if errors.Is(err, leaplist.ErrTxTimeout) {
						// Graceful degradation: shed the transfer to the
						// single-branch fast path. Balances may have moved
						// while we waited, so re-read both sides.
						tx.Release()
						sheds.Add(1)
						if fv, _ = bank.Get(fromKey); fv == 0 {
							continue
						}
						tv, _ = bank.Get(intraKey)
						tx = bank.Txn()
						tx.Set(fromKey, fv-1)
						tx.Set(intraKey, tv+1)
						readBack = tx.Get(fromKey)
						err = tx.Commit()
					}
				} else {
					// Intra-branch: two accounts, one branch — single
					// shard, the coordination-free fast path.
					err = tx.Commit()
				}
				if err != nil {
					failures <- err
					return
				}
				// Read-your-own-writes: the staged Get saw the debit.
				got, ok := readBack.Value()
				tx.Release() // handles read; recycle the builder
				if !ok || got != fv-1 {
					failures <- fmt.Errorf("staged Get = (%d, %v), want (%d, true)", got, ok, fv-1)
					return
				}
			}
		}(w)
	}

	transferWG.Wait()
	close(stop)
	auditWG.Wait()
	select {
	case err := <-failures:
		log.Fatal(err)
	default:
	}

	// Quiescent audit: the exact grand total, stitched shard by shard.
	var total uint64
	for _, kv := range bank.Collect(0, leaplist.MaxKey) {
		total += kv.Value
	}
	st := bank.STMStats()
	fmt.Printf("done: %d transfers, %d atomic cross-shard audits, final grand total %d (conserved: %v)\n",
		transfers, audits, total, total == grandTotal)
	fmt.Printf("stm (all shards): %d commits, %d aborts (%.2f%%)\n",
		st.Commits, st.Aborts, 100*st.AbortRate())
	fmt.Printf("bounded commits: %d cross-branch transfers shed to single-branch (deadline %s), %d timeout aborts counted\n",
		sheds.Load(), crossDeadline, st.TimeoutAborts)
	if total != grandTotal {
		log.Fatal("MONEY WAS CREATED OR DESTROYED")
	}
}
