//go:build failpoint

package leaplist

import "leaplist/internal/failpoint"

// fpEval evaluates a failpoint site whose injected error the caller
// propagates (the 2PC prepare legs).
func fpEval(site string) error { return failpoint.Eval(site) }

// fpHit evaluates a failpoint site on a path with no error return
// (publish/abort legs); armed errors are swallowed.
func fpHit(site string) { _ = failpoint.Eval(site) }
