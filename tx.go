package leaplist

import (
	"errors"

	"leaplist/internal/core"
)

// ErrTxCommitted is returned (or recorded) when a Tx is used after Commit.
var ErrTxCommitted = errors.New("leaplist: transaction already committed")

// Tx is a declarative transaction builder: stage any mix of Set, Delete
// and Get operations across any maps of one group — including multiple
// keys in the same map — then Commit them as a single atomic,
// linearizable operation under every synchronization variant.
//
// Semantics:
//
//   - Ops on the same (map, key) apply in staging order: later writes win
//     ("last-write-wins"), and a staged Get observes exactly the writes
//     staged before it (read-your-own-writes) on top of the map state at
//     the commit's linearization point.
//   - Keys landing in the same fat node coalesce into one node
//     replacement, so a Tx touching k adjacent keys of one map costs one
//     node copy, not k.
//   - An empty Tx commits successfully as a no-op.
//
// A Tx is not safe for concurrent use and must be committed at most once.
// Staging errors (foreign map, out-of-range key) are sticky: the first
// one is reported by Commit and later stages are ignored.
//
//	tx := g.Txn()
//	tx.Set(byID, id, v).Set(byTime, ts, v)
//	del := tx.Delete(byID, oldID)
//	if err := tx.Commit(); err != nil { ... }
//	evicted := del.Present()
//
// Hot callers that do not hold Get/Delete handles past the commit can
// recycle the builder with Release, making transaction construction
// allocation-free in steady state.
type Tx[V any] struct {
	g    *Group[V]
	ops  []core.Op[V]
	err  error
	done bool
}

// Txn starts an empty transaction against the group, reusing a released
// builder when one is pooled.
func (g *Group[V]) Txn() *Tx[V] {
	if t, _ := g.txPool.Get().(*Tx[V]); t != nil {
		t.g = g
		return t
	}
	return &Tx[V]{g: g}
}

// Release returns the Tx to the group's builder pool for reuse by a later
// Txn. It may be called whether or not the Tx was committed. After
// Release the Tx and every TxGet/TxDelete handle obtained from it are
// invalid and must not be used — the builder (including its staged-op
// storage, where handle results live) is handed to the next Txn caller.
// Releasing is optional: an un-Released Tx is simply garbage-collected.
// A second Release of the same Tx is a no-op (but a Release while any
// other use of the Tx is still possible remains the caller's bug).
func (t *Tx[V]) Release() {
	g := t.g
	if g == nil {
		return // already released
	}
	clear(t.ops) // drop map pointers and values before pooling
	// Shrink-before-pooling, as core's scratch pools do: a one-off giant
	// batch must not pin its op array for the rest of the process.
	const keepCap = 1 << 12
	if cap(t.ops) > keepCap {
		t.ops = nil
	} else {
		t.ops = t.ops[:0]
	}
	t.g, t.err, t.done = nil, nil, false
	g.txPool.Put(t)
}

// stage appends one op, recording the first staging error.
func (t *Tx[V]) stage(m *Map[V], kind core.OpKind, k uint64, v V) int {
	if t.err != nil {
		return -1
	}
	if t.done {
		t.err = ErrTxCommitted
		return -1
	}
	if m == nil || m.group != t.g {
		t.err = ErrForeignMap
		return -1
	}
	if k > MaxKey {
		t.err = ErrKeyRange
		return -1
	}
	t.ops = append(t.ops, core.Op[V]{List: m.list, Kind: kind, Key: k, Val: v})
	return len(t.ops) - 1
}

// Set stages m[k] = v, returning the Tx for chaining.
func (t *Tx[V]) Set(m *Map[V], k uint64, v V) *Tx[V] {
	t.stage(m, core.OpSet, k, v)
	return t
}

// Delete stages the removal of k from m. The returned handle reports,
// after a successful Commit, whether the key was present (as observed by
// this op: a key Set earlier in the same Tx counts as present).
func (t *Tx[V]) Delete(m *Map[V], k uint64) TxDelete[V] {
	var zero V
	return TxDelete[V]{t: t, i: t.stage(m, core.OpDelete, k, zero)}
}

// Get stages an atomic read of m[k] at the Tx's linearization point,
// observing writes staged earlier in the same Tx. The returned handle
// yields the value after a successful Commit.
func (t *Tx[V]) Get(m *Map[V], k uint64) TxGet[V] {
	var zero V
	return TxGet[V]{t: t, i: t.stage(m, core.OpGet, k, zero)}
}

// Len returns the number of staged operations.
func (t *Tx[V]) Len() int {
	return len(t.ops)
}

// Err returns the first staging error, if any, without committing.
func (t *Tx[V]) Err() error {
	return t.err
}

// Commit applies every staged operation as one atomic, linearizable
// batch: concurrent readers — lookups and range queries on any involved
// map — observe either none or all of the Tx's effects.
//
// Commit returns nil on success (including for an empty Tx). It returns
// ErrForeignMap or ErrKeyRange if a stage call was invalid, and
// ErrTxCommitted if the Tx was already committed. There are no
// conflict-flavored errors: contention is resolved internally by retry.
func (t *Tx[V]) Commit() error {
	if t.err != nil {
		return t.err
	}
	if t.done {
		return ErrTxCommitted
	}
	t.done = true
	if len(t.ops) == 0 {
		return nil
	}
	return t.g.inner.CommitOps(t.ops)
}

// TxGet is the handle of a staged Get; valid after its Tx commits.
type TxGet[V any] struct {
	t *Tx[V]
	i int
}

// Value returns the read result. Before a successful Commit (or when the
// stage itself failed) it returns the zero value and false.
func (h TxGet[V]) Value() (V, bool) {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		var zero V
		return zero, false
	}
	op := &h.t.ops[h.i]
	return op.Out, op.Found
}

// TxDelete is the handle of a staged Delete; valid after its Tx commits.
type TxDelete[V any] struct {
	t *Tx[V]
	i int
}

// Present reports whether the key was present when the delete applied.
// Before a successful Commit (or when the stage itself failed) it
// returns false.
func (h TxDelete[V]) Present() bool {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		return false
	}
	return h.t.ops[h.i].Found
}
