package leaplist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"leaplist/internal/core"
)

// ErrTxCommitted is returned (or recorded) when a Tx is used after Commit.
var ErrTxCommitted = errors.New("leaplist: transaction already committed")

// ErrTxTimeout is returned (wrapped, with the cause) when a bounded
// commit — CommitContext with an expiring context, WithCommitDeadline,
// or WithCommitAttempts — gives up before winning. The transaction had
// no effect: every lock taken by the attempt was released and every
// prepared shard cleanly aborted, so the maps are exactly as if the
// commit was never tried. The error is a load signal, not a corruption
// signal — the caller may retry, shed the transaction, or degrade (see
// examples/bank for a shed-to-single-shard fallback). Test with
// errors.Is(err, ErrTxTimeout).
var ErrTxTimeout = errors.New("leaplist: transaction commit deadline exceeded")

// Tx is a declarative transaction builder: stage any mix of Set, SetIf,
// SetNX, Delete, Get, GetRange and DeleteRange operations across any
// maps of one group —
// including multiple keys in the same map — then Commit them as a single
// atomic, linearizable operation under every synchronization variant.
//
// Semantics:
//
//   - Ops on the same (map, key) apply in staging order: later writes win
//     ("last-write-wins"), and a staged Get observes exactly the writes
//     staged before it (read-your-own-writes) on top of the map state at
//     the commit's linearization point.
//   - Range ops follow the same rule per covered key: a GetRange snapshot
//     reflects the point writes (and range deletes) staged before it, a
//     Set staged after a DeleteRange survives it, and the snapshot of a
//     GetRange is taken at the same linearization instant as every point
//     result of the Tx.
//   - Keys landing in the same fat node coalesce into one node
//     replacement, so a Tx touching k adjacent keys of one map costs one
//     node copy, not k. A range spanning several adjacent nodes costs one
//     replacement per node it modifies.
//   - An empty Tx commits successfully as a no-op.
//
// A Tx is not safe for concurrent use and must be committed at most once.
// Staging errors (foreign map, out-of-range key) are sticky: the first
// one is reported by Commit and later stages are ignored.
//
//	tx := g.Txn()
//	tx.Set(byID, id, v).Set(byTime, ts, v)
//	del := tx.Delete(byID, oldID)
//	if err := tx.Commit(); err != nil { ... }
//	evicted := del.Present()
//
// Hot callers that do not hold Get/Delete handles past the commit can
// recycle the builder with Release, making transaction construction
// allocation-free in steady state.
type Tx[V any] struct {
	g    *Group[V]
	ops  []core.Op[V]
	err  error
	done bool
}

// Txn starts an empty transaction against the group, reusing a released
// builder when one is pooled.
func (g *Group[V]) Txn() *Tx[V] {
	if t, _ := g.txPool.Get().(*Tx[V]); t != nil {
		t.g = g
		return t
	}
	return &Tx[V]{g: g}
}

// Release returns the Tx to the group's builder pool for reuse by a later
// Txn. It may be called whether or not the Tx was committed. After
// Release the Tx and every handle obtained from it — TxGet, TxDelete,
// TxCond, TxRange (including slices returned by Pairs) and TxDeleteRange — are
// invalid and must not be used — the builder (including its staged-op
// storage, where handle results live) is handed to the next Txn caller.
// Releasing is optional: an un-Released Tx is simply garbage-collected.
// A second Release of the same Tx is a no-op (but a Release while any
// other use of the Tx is still possible remains the caller's bug).
func (t *Tx[V]) Release() {
	g := t.g
	if g == nil {
		return // already released
	}
	clear(t.ops) // drop map pointers and values before pooling
	// Shrink-before-pooling, as core's scratch pools do: a one-off giant
	// batch must not pin its op array for the rest of the process.
	const keepCap = 1 << 12
	if cap(t.ops) > keepCap {
		t.ops = nil
	} else {
		t.ops = t.ops[:0]
	}
	t.g, t.err, t.done = nil, nil, false
	g.txPool.Put(t)
}

// stage appends one op, recording the first staging error.
func (t *Tx[V]) stage(m *Map[V], kind core.OpKind, k uint64, v V) int {
	if t.err != nil {
		return -1
	}
	if t.done {
		t.err = ErrTxCommitted
		return -1
	}
	if m == nil || m.group != t.g {
		t.err = ErrForeignMap
		return -1
	}
	if k > MaxKey {
		t.err = ErrKeyRange
		return -1
	}
	t.ops = append(t.ops, core.Op[V]{List: m.list, Kind: kind, Key: k, Val: v})
	return len(t.ops) - 1
}

// Set stages m[k] = v, returning the Tx for chaining.
func (t *Tx[V]) Set(m *Map[V], k uint64, v V) *Tx[V] {
	t.stage(m, core.OpSet, k, v)
	return t
}

// Delete stages the removal of k from m. The returned handle reports,
// after a successful Commit, whether the key was present (as observed by
// this op: a key Set earlier in the same Tx counts as present).
func (t *Tx[V]) Delete(m *Map[V], k uint64) TxDelete[V] {
	var zero V
	return TxDelete[V]{t: t, i: t.stage(m, core.OpDelete, k, zero)}
}

// Get stages an atomic read of m[k] at the Tx's linearization point,
// observing writes staged earlier in the same Tx. The returned handle
// yields the value after a successful Commit.
func (t *Tx[V]) Get(m *Map[V], k uint64) TxGet[V] {
	var zero V
	return TxGet[V]{t: t, i: t.stage(m, core.OpGet, k, zero)}
}

// SetIf stages a compare-and-set: m[k] = v applies only when the key is
// present and its value (as observed by this op — a value Set earlier
// in the same Tx counts) equals expect. The comparison uses Go's ==
// through an interface conversion, so it panics at commit time if V's
// dynamic type is not comparable (a slice-valued map, say) — exactly
// the values Go's == itself rejects. The returned handle reports, after
// a successful Commit, whether the write applied. The decision is made
// atomically at the Tx's linearization point: no concurrent writer can
// change the value between the comparison and the store.
func (t *Tx[V]) SetIf(m *Map[V], k uint64, expect, v V) TxCond[V] {
	i := t.stage(m, core.OpSetIf, k, v)
	if i >= 0 {
		t.ops[i].If = func(cur V, found bool) bool {
			return found && any(cur) == any(expect)
		}
	}
	return TxCond[V]{t: t, i: i}
}

// SetNX stages a set-if-absent: m[k] = v applies only when the key is
// absent (as observed by this op — a key Set earlier in the same Tx
// counts as present, a key deleted earlier as absent). The returned
// handle reports, after a successful Commit, whether the write applied.
func (t *Tx[V]) SetNX(m *Map[V], k uint64, v V) TxCond[V] {
	i := t.stage(m, core.OpSetIf, k, v)
	if i >= 0 {
		t.ops[i].If = func(cur V, found bool) bool { return !found }
	}
	return TxCond[V]{t: t, i: i}
}

// stageRange appends one interval op, normalizing the bounds the way
// Map.Range does: hi is clamped to MaxKey, and an empty interval
// (lo > hi, including lo beyond MaxKey) stages nothing — the handle then
// reports an empty result rather than an error.
func (t *Tx[V]) stageRange(m *Map[V], kind core.OpKind, lo, hi uint64) int {
	if t.err != nil {
		return -1
	}
	if t.done {
		t.err = ErrTxCommitted
		return -1
	}
	if m == nil || m.group != t.g {
		t.err = ErrForeignMap
		return -1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	if lo > hi {
		return -1 // empty interval: a staged no-op
	}
	t.ops = append(t.ops, core.Op[V]{List: m.list, Kind: kind, Key: lo, KeyHi: hi})
	return len(t.ops) - 1
}

// GetRange stages an atomic read of every pair of m with key in [lo, hi].
// The returned handle yields, after a successful Commit, one consistent
// snapshot taken at the Tx's linearization point — the same instant as
// every other result of the Tx — in ascending key order, reflecting the
// writes staged earlier in the same Tx (a key Set before the GetRange
// appears with its staged value; a key deleted before it does not
// appear). Like Map.Range, an inverted interval is empty and hi is
// clamped to MaxKey.
func (t *Tx[V]) GetRange(m *Map[V], lo, hi uint64) TxRange[V] {
	return TxRange[V]{t: t, i: t.stageRange(m, core.OpGetRange, lo, hi)}
}

// DeleteRange stages the atomic removal of every pair of m with key in
// [lo, hi]. The returned handle reports, after a successful Commit, how
// many pairs the removal observed at its staged position (a key Set
// earlier in the same Tx counts; a key Set later survives the removal).
// Like Map.Range, an inverted interval is empty and hi is clamped to
// MaxKey. Commit cost is O(levels + boundary) in the interval's extent:
// nodes fully inside [lo, hi] are spliced out as a run with one pointer
// swing per level rather than rebuilt per node, so arbitrarily wide
// deletes stay cheap (see BenchmarkDeleteRange).
func (t *Tx[V]) DeleteRange(m *Map[V], lo, hi uint64) TxDeleteRange[V] {
	return TxDeleteRange[V]{t: t, i: t.stageRange(m, core.OpDeleteRange, lo, hi)}
}

// Len returns the number of staged operations.
func (t *Tx[V]) Len() int {
	return len(t.ops)
}

// Err returns the first staging or commit error, if any, without
// committing.
func (t *Tx[V]) Err() error {
	return t.err
}

// Commit applies every staged operation as one atomic, linearizable
// batch: concurrent readers — lookups and range queries on any involved
// map — observe either none or all of the Tx's effects.
//
// Commit returns nil on success (including for an empty Tx). It returns
// ErrForeignMap or ErrKeyRange if a stage call was invalid, and
// ErrTxCommitted if the Tx was already committed. There are no
// conflict-flavored errors: contention is resolved internally by retry.
//
// A commit failure is recorded in the Tx: Err reports it, every handle
// keeps returning its zero result, and a repeat Commit returns the same
// error rather than ErrTxCommitted.
func (t *Tx[V]) Commit() error {
	return t.commit(core.PrepareOpts{}, nil)
}

// CommitContext is Commit bounded by ctx: if the context is canceled or
// its deadline passes before the commit wins its prepare, the attempt
// is cleanly abandoned (nothing held, nothing published) and
// CommitContext returns an error wrapping ErrTxTimeout and ctx's cause.
// A group deadline from WithCommitDeadline applies in addition, as an
// upper bound relative to the CommitContext call. Like a commit error,
// the timeout is recorded in the Tx (the staged ops keep zero results);
// unlike other errors the caller may build a fresh Tx and retry, or
// degrade — the structure is untouched.
//
// Under the RW variant prepare blocks on per-map locks rather than
// retrying, so cancellation is observed only between lock convoys; the
// bound can overshoot by one competitor's (short) publish.
func (t *Tx[V]) CommitContext(ctx context.Context) error {
	opt := core.PrepareOpts{Done: ctx.Done()}
	if d, ok := ctx.Deadline(); ok {
		opt.Deadline = d
	}
	return t.commit(opt, ctx)
}

func (t *Tx[V]) commit(opt core.PrepareOpts, ctx context.Context) error {
	if t.err != nil {
		return t.err
	}
	if t.done {
		return ErrTxCommitted
	}
	t.done = true
	if len(t.ops) == 0 {
		return nil
	}
	if d := t.g.commitDeadline; d > 0 {
		if dl := time.Now().Add(d); opt.Deadline.IsZero() || dl.Before(opt.Deadline) {
			opt.Deadline = dl
		}
	}
	if err := t.g.inner.CommitOpsOpt(t.ops, opt); err != nil {
		if errors.Is(err, core.ErrCanceled) {
			err = txTimeoutErr(ctx)
		}
		t.err = err
		return err
	}
	return nil
}

// txTimeoutErr wraps ErrTxTimeout with the cancellation cause.
func txTimeoutErr(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return fmt.Errorf("%w: %v", ErrTxTimeout, ctx.Err())
	}
	return fmt.Errorf("%w (WithCommitDeadline)", ErrTxTimeout)
}

// TxGet is the handle of a staged Get; valid after its Tx commits.
type TxGet[V any] struct {
	t *Tx[V]
	i int
}

// Value returns the read result. Before a successful Commit (or when the
// stage itself failed) it returns the zero value and false.
func (h TxGet[V]) Value() (V, bool) {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		var zero V
		return zero, false
	}
	op := &h.t.ops[h.i]
	return op.Out, op.Found
}

// TxDelete is the handle of a staged Delete; valid after its Tx commits.
type TxDelete[V any] struct {
	t *Tx[V]
	i int
}

// Present reports whether the key was present when the delete applied.
// Before a successful Commit (or when the stage itself failed) it
// returns false.
func (h TxDelete[V]) Present() bool {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		return false
	}
	return h.t.ops[h.i].Found
}

// TxCond is the handle of a staged SetIf or SetNX; valid after its Tx
// commits.
type TxCond[V any] struct {
	t *Tx[V]
	i int
}

// Applied reports whether the conditional write landed. Before a
// successful Commit (or when the stage itself failed) it returns false.
func (h TxCond[V]) Applied() bool {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		return false
	}
	return h.t.ops[h.i].Found
}

// TxRange is the handle of a staged GetRange; valid after its Tx commits.
type TxRange[V any] struct {
	t *Tx[V]
	i int
}

// Pairs returns the snapshot: every pair in [lo, hi] at the Tx's
// linearization point (staged earlier writes included), ascending by
// key. Before a successful Commit it returns nil; an empty interval
// yields an empty snapshot. The slice is owned by the Tx — it is valid
// until the Tx is Released and must not be appended to.
func (h TxRange[V]) Pairs() []KV[V] {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		return nil
	}
	return h.t.ops[h.i].Range
}

// Count returns the number of pairs in the snapshot (0 before a
// successful Commit).
func (h TxRange[V]) Count() int {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		return 0
	}
	return h.t.ops[h.i].N
}

// TxDeleteRange is the handle of a staged DeleteRange; valid after its
// Tx commits.
type TxDeleteRange[V any] struct {
	t *Tx[V]
	i int
}

// Count returns how many pairs the removal deleted (0 before a
// successful Commit).
func (h TxDeleteRange[V]) Count() int {
	if h.t == nil || h.i < 0 || !h.t.done || h.t.err != nil {
		return 0
	}
	return h.t.ops[h.i].N
}
