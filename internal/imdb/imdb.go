// Package imdb is a small in-memory database built on Leap-Lists,
// realizing the paper's §4 outlook: "to test the Leap-List in an In-Memory
// Data-Base implementation, to replace the B-trees for indexes".
//
// A Table stores fixed-arity rows of uint64 columns under a uint64 primary
// key, plus any number of secondary indexes. Every index — primary and
// secondary — is one Leap-List in a single group, and every row mutation
// maintains all of them with ONE composed Leap-List batch, so index
// consistency needs no table-level locking: a SelectRange over any index
// observes a linearizable snapshot of that index, and index entries never
// point at rows that were inserted by half-applied writes.
//
// Secondary index keys pack (column value, row id) into one uint64 —
// valueBits high bits of value, the rest row id — which makes equal column
// values order by row id and lets range scans over a value interval run as
// one Leap-List range query.
//
// Row-level read-modify-write atomicity (delete needs the old row to
// unindex it) uses striped row locks; the composed Leap-List batch is what
// keeps the indexes mutually consistent, the stripe only serializes
// writers of the same row id.
package imdb

import (
	"errors"
	"fmt"
	"sync"

	"leaplist/internal/core"
)

// Errors returned by Table operations.
var (
	ErrArity       = errors.New("imdb: row arity does not match schema")
	ErrNoSuchCol   = errors.New("imdb: no index on that column")
	ErrValueRange  = errors.New("imdb: column value exceeds index width")
	ErrRowIDRange  = errors.New("imdb: row id exceeds index width")
	ErrDuplicateIx = errors.New("imdb: duplicate index column")
)

// valueBits is the width of the column value in a packed secondary-index
// key; the remaining bits hold the row id.
const valueBits = 40

const (
	rowIDBits = 64 - valueBits
	maxValue  = (uint64(1) << valueBits) - 1
	maxRowID  = (uint64(1) << rowIDBits) - 1
)

func packIndexKey(value, rowID uint64) uint64 {
	return value<<rowIDBits | rowID
}

func unpackIndexKey(k uint64) (value, rowID uint64) {
	return k >> rowIDBits, k & maxRowID
}

// Row is one tuple; element i is column i.
type Row []uint64

// clone guards the immutability of stored rows.
func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Schema names the columns of a table. Column names are positional
// documentation; operations address columns by index.
type Schema struct {
	Columns []string
}

// Table is a concurrent table with Leap-List-backed indexes.
type Table struct {
	schema  Schema
	group   *core.Group[Row]
	primary *core.List[Row]

	ixCols  []int // indexed column positions, in creation order
	ixLists []*core.List[Row]

	locks [64]stripedLock
}

// stripedLock pads each stripe to its own cache line region.
type stripedLock struct {
	mu sync.Mutex
	_  [48]byte
}

// Config parameterizes a table.
type Config struct {
	Schema Schema
	// IndexColumns lists the column positions to maintain secondary
	// indexes for; values in those columns must fit in 40 bits.
	IndexColumns []int
	// Variant selects the Leap-List synchronization protocol (default LT).
	Variant core.Variant
	// NodeSize / MaxLevel tune the underlying lists (defaults: paper's).
	NodeSize int
	MaxLevel int
}

// NewTable builds an empty table.
func NewTable(cfg Config) (*Table, error) {
	if len(cfg.Schema.Columns) == 0 {
		return nil, fmt.Errorf("imdb: empty schema")
	}
	seen := map[int]bool{}
	for _, c := range cfg.IndexColumns {
		if c < 0 || c >= len(cfg.Schema.Columns) {
			return nil, fmt.Errorf("imdb: index column %d outside schema", c)
		}
		if seen[c] {
			return nil, ErrDuplicateIx
		}
		seen[c] = true
	}
	g := core.NewGroup[Row](core.Config{
		NodeSize: cfg.NodeSize,
		MaxLevel: cfg.MaxLevel,
		Variant:  cfg.Variant,
	}, nil)
	t := &Table{
		schema:  cfg.Schema,
		group:   g,
		primary: g.NewList(),
		ixCols:  append([]int(nil), cfg.IndexColumns...),
	}
	// All lists — primary and secondary indexes — must live in one group,
	// because composed batches are atomic only within a group. The index
	// lists therefore share the primary's Row value type and store nil:
	// membership is the information, the packed key carries (value, id).
	for range t.ixCols {
		t.ixLists = append(t.ixLists, g.NewList())
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

func (t *Table) stripe(rowID uint64) *sync.Mutex {
	return &t.locks[rowID%uint64(len(t.locks))].mu
}

// validate checks a row against schema and index width limits.
func (t *Table) validate(rowID uint64, row Row) error {
	if len(row) != len(t.schema.Columns) {
		return ErrArity
	}
	if rowID > maxRowID {
		return ErrRowIDRange
	}
	for _, c := range t.ixCols {
		if row[c] > maxValue {
			return ErrValueRange
		}
	}
	return nil
}

// Put inserts or replaces the row stored under rowID. The whole upsert —
// retiring stale index entries, publishing new ones, and writing the
// primary row — is ONE atomic mixed Leap-List batch (core.CommitOps with
// deletes and sets, addressing the same index list twice when an indexed
// value changes), so a scan on any index observes either the old row's
// entries or the new row's, never a gap. Before the general transaction
// API this required two batches and left a window where a re-indexed row
// was invisible.
func (t *Table) Put(rowID uint64, row Row) error {
	if err := t.validate(rowID, row); err != nil {
		return err
	}
	row = row.clone()
	mu := t.stripe(rowID)
	mu.Lock()
	defer mu.Unlock()

	old, hadOld := t.primary.Lookup(rowID)

	ops := make([]core.Op[Row], 0, 1+2*len(t.ixCols))
	// Retire index entries whose packed key changes. (Within the row
	// stripe, no other writer touches this row's entries.)
	if hadOld {
		for i, c := range t.ixCols {
			if old[c] != row[c] {
				ops = append(ops, core.Op[Row]{
					List: t.ixLists[i], Kind: core.OpDelete,
					Key: packIndexKey(old[c], rowID),
				})
			}
		}
	}
	ops = append(ops, core.Op[Row]{List: t.primary, Kind: core.OpSet, Key: rowID, Val: row})
	for i, c := range t.ixCols {
		ops = append(ops, core.Op[Row]{
			List: t.ixLists[i], Kind: core.OpSet,
			Key: packIndexKey(row[c], rowID),
			// membership only; the key carries the id
		})
	}
	return t.group.CommitOps(ops)
}

// Delete removes the row under rowID and all its index entries in one
// atomic batch, reporting whether the row existed.
func (t *Table) Delete(rowID uint64) (bool, error) {
	if rowID > maxRowID {
		return false, ErrRowIDRange
	}
	mu := t.stripe(rowID)
	mu.Lock()
	defer mu.Unlock()

	old, ok := t.primary.Lookup(rowID)
	if !ok {
		return false, nil
	}
	ops := make([]core.Op[Row], 0, 1+len(t.ixCols))
	ops = append(ops, core.Op[Row]{List: t.primary, Kind: core.OpDelete, Key: rowID})
	for i, c := range t.ixCols {
		ops = append(ops, core.Op[Row]{
			List: t.ixLists[i], Kind: core.OpDelete,
			Key: packIndexKey(old[c], rowID),
		})
	}
	return true, t.group.CommitOps(ops)
}

// Get returns a copy of the row under rowID.
func (t *Table) Get(rowID uint64) (Row, bool) {
	row, ok := t.primary.Lookup(rowID)
	if !ok {
		return nil, false
	}
	return row.clone(), true
}

// Len returns the number of rows.
func (t *Table) Len() int {
	return t.primary.Len()
}

// IndexEntry is one secondary-index hit.
type IndexEntry struct {
	Value uint64
	RowID uint64
}

// SelectRange returns, from the index on column col, every (value, rowID)
// with value in [lo, hi], ordered by (value, rowID). The entries are one
// linearizable snapshot of the index — the Leap-List range query is what
// makes this a single atomic read.
func (t *Table) SelectRange(col int, lo, hi uint64) ([]IndexEntry, error) {
	ix := -1
	for i, c := range t.ixCols {
		if c == col {
			ix = i
			break
		}
	}
	if ix < 0 {
		return nil, ErrNoSuchCol
	}
	if lo > maxValue {
		return nil, ErrValueRange
	}
	if hi > maxValue {
		hi = maxValue
	}
	var out []IndexEntry
	t.ixLists[ix].RangeQuery(packIndexKey(lo, 0), packIndexKey(hi, maxRowID), func(k uint64, _ Row) bool {
		v, id := unpackIndexKey(k)
		out = append(out, IndexEntry{Value: v, RowID: id})
		return true
	})
	return out, nil
}

// SelectRows resolves a SelectRange to rows. Row fetches happen after the
// index snapshot; a row deleted in between is skipped, so the result is
// index-consistent but not a two-structure atomic join (documented
// limitation, as in the paper's single-list read operations).
func (t *Table) SelectRows(col int, lo, hi uint64) ([]Row, error) {
	entries, err := t.SelectRange(col, lo, hi)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(entries))
	for _, e := range entries {
		if row, ok := t.Get(e.RowID); ok {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CheckIndexes verifies, at quiescence, that every secondary index agrees
// exactly with the primary: every row is indexed once per index, and every
// index entry resolves to a row with the matching column value.
func (t *Table) CheckIndexes() error {
	type rowInfo struct{ row Row }
	rows := map[uint64]rowInfo{}
	t.primary.RangeQuery(0, core.MaxKey, func(k uint64, v Row) bool {
		rows[k] = rowInfo{row: v}
		return true
	})
	for i, c := range t.ixCols {
		count := 0
		var fail error
		t.ixLists[i].RangeQuery(0, core.MaxKey, func(k uint64, _ Row) bool {
			count++
			val, id := unpackIndexKey(k)
			info, ok := rows[id]
			if !ok {
				fail = fmt.Errorf("imdb: index col %d entry (%d,%d) has no row", c, val, id)
				return false // stop scanning: the index is already broken
			}
			if info.row[c] != val {
				fail = fmt.Errorf("imdb: index col %d entry (%d,%d) mismatches row value %d", c, val, id, info.row[c])
				return false
			}
			return true
		})
		if fail != nil {
			return fail
		}
		if count != len(rows) {
			return fmt.Errorf("imdb: index col %d has %d entries for %d rows", c, count, len(rows))
		}
	}
	return nil
}
