package imdb

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"leaplist/internal/core"
)

func ordersTable(t *testing.T, v core.Variant) *Table {
	t.Helper()
	tbl, err := NewTable(Config{
		Schema:       Schema{Columns: []string{"price", "qty", "ts"}},
		IndexColumns: []int{0, 2}, // price and timestamp
		Variant:      v,
		NodeSize:     16,
		MaxLevel:     6,
	})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(Config{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewTable(Config{
		Schema:       Schema{Columns: []string{"a"}},
		IndexColumns: []int{1},
	}); err == nil {
		t.Fatal("out-of-schema index accepted")
	}
	if _, err := NewTable(Config{
		Schema:       Schema{Columns: []string{"a", "b"}},
		IndexColumns: []int{0, 0},
	}); !errors.Is(err, ErrDuplicateIx) {
		t.Fatal("duplicate index accepted")
	}
}

func TestPutGetDelete(t *testing.T) {
	tbl := ordersTable(t, core.VariantLT)
	if err := tbl.Put(1, Row{100, 5, 1111}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	row, ok := tbl.Get(1)
	if !ok || row[0] != 100 || row[1] != 5 || row[2] != 1111 {
		t.Fatalf("Get = (%v, %v)", row, ok)
	}
	// Returned rows are copies; mutating them must not affect the table.
	row[0] = 999
	if again, _ := tbl.Get(1); again[0] != 100 {
		t.Fatal("stored row was mutated through the returned copy")
	}
	deleted, err := tbl.Delete(1)
	if err != nil || !deleted {
		t.Fatalf("Delete = (%v, %v)", deleted, err)
	}
	if _, ok := tbl.Get(1); ok {
		t.Fatal("row survived delete")
	}
	if deleted, _ := tbl.Delete(1); deleted {
		t.Fatal("second delete reported deletion")
	}
	if err := tbl.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}

func TestPutValidation(t *testing.T) {
	tbl := ordersTable(t, core.VariantLT)
	if err := tbl.Put(1, Row{1, 2}); !errors.Is(err, ErrArity) {
		t.Fatalf("arity = %v", err)
	}
	if err := tbl.Put(1, Row{1 << 41, 2, 3}); !errors.Is(err, ErrValueRange) {
		t.Fatalf("value range = %v", err)
	}
	if err := tbl.Put(1<<25, Row{1, 2, 3}); !errors.Is(err, ErrRowIDRange) {
		t.Fatalf("row id range = %v", err)
	}
}

func TestSelectRange(t *testing.T) {
	tbl := ordersTable(t, core.VariantLT)
	// Rows with prices 10, 20, ..., 100.
	for i := uint64(1); i <= 10; i++ {
		if err := tbl.Put(i, Row{i * 10, i, 1000 + i}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	entries, err := tbl.SelectRange(0, 25, 65)
	if err != nil {
		t.Fatalf("SelectRange: %v", err)
	}
	wantPrices := []uint64{30, 40, 50, 60}
	if len(entries) != len(wantPrices) {
		t.Fatalf("entries = %v", entries)
	}
	for i, e := range entries {
		if e.Value != wantPrices[i] || e.RowID != wantPrices[i]/10 {
			t.Fatalf("entries[%d] = %+v", i, e)
		}
	}
	rows, err := tbl.SelectRows(2, 1003, 1005) // timestamp index
	if err != nil {
		t.Fatalf("SelectRows: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if _, err := tbl.SelectRange(1, 0, 10); !errors.Is(err, ErrNoSuchCol) {
		t.Fatalf("unindexed column = %v", err)
	}
}

func TestEqualValuesOrderByRowID(t *testing.T) {
	tbl := ordersTable(t, core.VariantLT)
	for _, id := range []uint64{5, 1, 9, 3} {
		if err := tbl.Put(id, Row{777, id, id}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	entries, err := tbl.SelectRange(0, 777, 777)
	if err != nil {
		t.Fatalf("SelectRange: %v", err)
	}
	wantIDs := []uint64{1, 3, 5, 9}
	if len(entries) != len(wantIDs) {
		t.Fatalf("entries = %v", entries)
	}
	for i, e := range entries {
		if e.RowID != wantIDs[i] {
			t.Fatalf("entries[%d].RowID = %d, want %d", i, e.RowID, wantIDs[i])
		}
	}
}

func TestValueChangeMovesIndexEntry(t *testing.T) {
	tbl := ordersTable(t, core.VariantLT)
	if err := tbl.Put(1, Row{100, 1, 50}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tbl.Put(1, Row{200, 1, 50}); err != nil {
		t.Fatalf("Put update: %v", err)
	}
	if entries, _ := tbl.SelectRange(0, 100, 100); len(entries) != 0 {
		t.Fatalf("stale price entry survives: %v", entries)
	}
	if entries, _ := tbl.SelectRange(0, 200, 200); len(entries) != 1 {
		t.Fatalf("new price entry missing: %v", entries)
	}
	// Timestamp unchanged: entry must not have been churned.
	if entries, _ := tbl.SelectRange(2, 50, 50); len(entries) != 1 {
		t.Fatalf("timestamp entry lost: %v", entries)
	}
	if err := tbl.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritersKeepIndexesConsistent(t *testing.T) {
	for _, v := range []core.Variant{core.VariantLT, core.VariantTM, core.VariantCOP, core.VariantRW} {
		t.Run(v.String(), func(t *testing.T) {
			tbl := ordersTable(t, v)
			const workers = 6
			iters := 1500
			if testing.Short() {
				iters = 200
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rand.New(rand.NewPCG(seed, 17))
					for i := 0; i < iters; i++ {
						id := r.Uint64N(128)
						switch r.IntN(10) {
						case 0, 1, 2, 3, 4:
							row := Row{r.Uint64N(1000), r.Uint64N(10), r.Uint64N(5000)}
							if err := tbl.Put(id, row); err != nil {
								t.Errorf("Put: %v", err)
								return
							}
						case 5, 6:
							if _, err := tbl.Delete(id); err != nil {
								t.Errorf("Delete: %v", err)
								return
							}
						case 7:
							tbl.Get(id)
						default:
							lo := r.Uint64N(1000)
							if _, err := tbl.SelectRange(0, lo, lo+100); err != nil {
								t.Errorf("SelectRange: %v", err)
								return
							}
						}
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			if err := tbl.CheckIndexes(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScansSeeAtomicInsertions(t *testing.T) {
	// Inserted rows appear in the price index and primary atomically: a
	// scanner that finds the index entry after writer quiescence must be
	// able to resolve the row.
	tbl := ordersTable(t, core.VariantLT)
	const rows = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < rows; i++ {
			if err := tbl.Put(i, Row{i, 1, i}); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 200; n++ {
			entries, err := tbl.SelectRange(0, 0, rows)
			if err != nil {
				t.Errorf("SelectRange: %v", err)
				return
			}
			// Ascending insertion + linearizable index snapshot = gapless
			// prefix of row ids.
			for i, e := range entries {
				if e.RowID != uint64(i) {
					t.Errorf("scan gap at %d: %+v", i, e)
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := tbl.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, tc := range []struct{ v, id uint64 }{
		{0, 0}, {1, 1}, {maxValue, maxRowID}, {12345, 678},
	} {
		k := packIndexKey(tc.v, tc.id)
		v, id := unpackIndexKey(k)
		if v != tc.v || id != tc.id {
			t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", tc.v, tc.id, k, v, id)
		}
	}
}
