package trie

import (
	"math/rand/v2"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := Build(nil)
	if got := tr.Lookup(5); got != NotFound {
		t.Fatalf("Lookup on empty = %d, want NotFound", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.Depth() != 0 {
		t.Fatalf("Depth = %d, want 0", tr.Depth())
	}
}

func TestZeroValueTrie(t *testing.T) {
	var tr Trie
	if got := tr.Lookup(0); got != NotFound {
		t.Fatalf("Lookup on zero-value trie = %d, want NotFound", got)
	}
}

func TestSingleKey(t *testing.T) {
	tr := Build([]uint64{42})
	if got := tr.Lookup(42); got != 0 {
		t.Fatalf("Lookup(42) = %d, want 0", got)
	}
	// Absent keys still return the lone candidate; caller verifies.
	if got := tr.Lookup(7); got != 0 {
		t.Fatalf("Lookup(7) = %d, want candidate 0", got)
	}
	if tr.Depth() != 0 {
		t.Fatalf("Depth = %d, want 0", tr.Depth())
	}
}

func TestKnownKeySets(t *testing.T) {
	tests := []struct {
		name string
		keys []uint64
	}{
		{"dense small", []uint64{0, 1, 2, 3, 4, 5, 6, 7}},
		{"sparse", []uint64{3, 4, 7, 9, 11, 22, 30, 50}}, // the paper's Figure 1 keys
		{"powers of two", []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}},
		{"adjacent high bits", []uint64{1 << 62, 1<<62 + 1, 1 << 63, 1<<63 + 1}},
		{"extremes", []uint64{0, 1, 1<<64 - 2, 1<<64 - 1}},
		{"two keys differing in LSB", []uint64{10, 11}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr := Build(tc.keys)
			if tr.Len() != len(tc.keys) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(tc.keys))
			}
			for i, k := range tc.keys {
				if got := tr.Lookup(k); got != i {
					t.Errorf("Lookup(%d) = %d, want %d", k, got, i)
				}
			}
		})
	}
}

func TestAbsentKeysReturnInRangeCandidate(t *testing.T) {
	keys := []uint64{10, 20, 30, 40, 50}
	tr := Build(keys)
	for probe := uint64(0); probe < 64; probe++ {
		idx := tr.Lookup(probe)
		if idx < 0 || idx >= len(keys) {
			t.Fatalf("Lookup(%d) = %d, out of range", probe, idx)
		}
		if slices.Contains(keys, probe) && keys[idx] != probe {
			t.Fatalf("Lookup(%d) = index %d (key %d), want exact match", probe, idx, keys[idx])
		}
	}
}

func TestBuildPanicsOnUnsorted(t *testing.T) {
	for _, keys := range [][]uint64{{2, 1}, {1, 1}, {5, 3, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Build(%v) did not panic", keys)
				}
			}()
			Build(keys)
		}()
	}
}

func TestDepthIsMinimal(t *testing.T) {
	// Keys differing only in one bit need exactly one level regardless of
	// their magnitude — the "minimal number of levels" property.
	tr := Build([]uint64{1 << 40, 1<<40 | 1})
	if got := tr.Depth(); got != 1 {
		t.Fatalf("Depth = %d, want 1", got)
	}
	// 2^d dense keys need exactly d levels.
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
	}
	tr = Build(keys)
	if got := tr.Depth(); got != 4 {
		t.Fatalf("Depth = %d, want 4", got)
	}
}

func TestLargeNodeSize(t *testing.T) {
	// The paper's node size is 300; verify a trie of that size exactly.
	keys := make([]uint64, 300)
	r := rand.New(rand.NewPCG(1, 2))
	seen := map[uint64]bool{}
	for i := 0; i < len(keys); {
		k := r.Uint64N(1_000_000)
		if !seen[k] {
			seen[k] = true
			keys[i] = k
			i++
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	tr := Build(keys)
	for i, k := range keys {
		if got := tr.Lookup(k); got != i {
			t.Fatalf("Lookup(%d) = %d, want %d", k, got, i)
		}
	}
}

// TestQuickAgainstBinarySearch is the property-based oracle test: for any
// random key set, trie lookup of a present key equals its sorted index, and
// lookup of any probe returns an index whose verification correctly decides
// membership.
func TestQuickAgainstBinarySearch(t *testing.T) {
	f := func(raw []uint64, probes []uint64) bool {
		slices.Sort(raw)
		keys := slices.Compact(raw)
		tr := Build(keys)
		for _, k := range keys {
			want, _ := slices.BinarySearch(keys, k)
			if tr.Lookup(k) != want {
				return false
			}
		}
		for _, p := range probes {
			idx := tr.Lookup(p)
			_, present := slices.BinarySearch(keys, p)
			if len(keys) == 0 {
				if idx != NotFound {
					return false
				}
				continue
			}
			if idx < 0 || idx >= len(keys) {
				return false
			}
			if present != (keys[idx] == p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieLookup300(b *testing.B) {
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i) * 337
	}
	tr := Build(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkBinarySearch300(b *testing.B) {
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i) * 337
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = slices.BinarySearch(keys, keys[i%len(keys)])
	}
}
