// Package trie implements the immutable bitwise trie embedded in every
// Leap-List node, after the String B-tree of Ferragina and Grossi: given a
// node's sorted array of up to K keys, the trie maps a key to its index in
// that array in O(number of distinguishing bits) without binary search.
//
// The trie is a path-compressed binary (crit-bit) trie over the big-endian
// bits of the uint64 keys, using the minimal number of levels needed to
// separate the keys present — the paper's "minimal number of levels to
// represent all the keys in the node". Because skipped bits are not
// re-checked during descent, a lookup for an absent key can land on an
// arbitrary leaf; callers must confirm the key at the returned index, which
// the Leap-List does against its keys array (the paper's NOT_FOUND check).
//
// A built Trie is immutable and safe for concurrent readers, matching the
// immutability of the node it is embedded in.
package trie

import "math/bits"

// NotFound is returned by Lookup when the trie is empty. For non-empty
// tries Lookup always returns some candidate index; absence is detected by
// the caller's key comparison.
const NotFound = -1

// node is one internal trie node in the flattened pool. Children encode
// leaves as ^index (negative values), internal nodes as pool offsets.
type node struct {
	bit         uint8 // bit position tested, 63 = MSB ... 0 = LSB
	left, right int32
}

// Trie is an immutable crit-bit trie from uint64 keys to array indexes.
// The zero value is an empty trie.
type Trie struct {
	nodes []node
	root  int32
	n     int
}

// Build constructs a trie over keys, which must be sorted ascending and
// duplicate-free; index i of the trie refers to keys[i]. Build panics if
// the keys are not strictly increasing, because the Leap-List node
// constructor guarantees that invariant and silently mis-built tries would
// corrupt lookups.
func Build(keys []uint64) *Trie {
	return BuildInto(nil, keys)
}

// BuildInto is Build recycling a retired trie's storage: the internal node
// pool of t (which must no longer be shared — the caller guarantees no
// concurrent reader, typically via an epoch grace period) is reused if its
// capacity suffices. A nil t allocates as Build does. The returned trie is
// t when t was non-nil.
func BuildInto(t *Trie, keys []uint64) *Trie {
	if t == nil {
		t = &Trie{}
	}
	t.n = len(keys)
	t.nodes = t.nodes[:0]
	if len(keys) == 0 {
		t.root = int32(NotFound)
		return t
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			panic("trie: keys must be strictly increasing")
		}
	}
	if cap(t.nodes) < len(keys)-1 {
		t.nodes = make([]node, 0, len(keys)-1)
	}
	t.root = t.build(keys, 0, len(keys), 63)
	return t
}

// build recursively splits keys[lo:hi) (all sharing the bits above topBit)
// on the highest bit position at or below topBit that distinguishes them.
func (t *Trie) build(keys []uint64, lo, hi, topBit int) int32 {
	if hi-lo == 1 {
		return int32(^lo) // leaf: complement of the index
	}
	// All keys in [lo, hi) share a prefix above their highest differing
	// bit; since the slice is sorted, first and last differ maximally.
	diff := keys[lo] ^ keys[hi-1]
	bit := 63 - bits.LeadingZeros64(diff)
	_ = topBit
	// Partition point: first key with the bit set. Binary search keeps
	// construction O(K log K) even for adversarial key sets.
	cut := lo + 1
	{
		lo2, hi2 := lo, hi
		mask := uint64(1) << uint(bit)
		for lo2 < hi2 {
			mid := int(uint(lo2+hi2) >> 1)
			if keys[mid]&mask == 0 {
				lo2 = mid + 1
			} else {
				hi2 = mid
			}
		}
		cut = lo2
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{bit: uint8(bit)})
	left := t.build(keys, lo, cut, bit-1)
	right := t.build(keys, cut, hi, bit-1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// Lookup returns the candidate index for key: the index of the only key in
// the backing array that can equal it. The caller must verify
// keys[idx] == key. Returns NotFound for an empty trie.
func (t *Trie) Lookup(key uint64) int {
	cur := t.root
	if t.n == 0 {
		return NotFound
	}
	for cur >= 0 {
		nd := &t.nodes[cur]
		if key&(1<<uint(nd.bit)) == 0 {
			cur = nd.left
		} else {
			cur = nd.right
		}
	}
	return int(^cur)
}

// Len returns the number of keys the trie was built over.
func (t *Trie) Len() int {
	return t.n
}

// Depth returns the maximum number of bit tests any lookup performs —
// the paper's "number of levels". Zero for empty and single-key tries.
func (t *Trie) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.depth(t.root)
}

func (t *Trie) depth(cur int32) int {
	if cur < 0 {
		return 0
	}
	nd := &t.nodes[cur]
	return 1 + max(t.depth(nd.left), t.depth(nd.right))
}
