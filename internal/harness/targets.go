package harness

import (
	"leaplist/internal/core"
	"leaplist/internal/skiplist"
	"leaplist/internal/stm"
)

// LeapTarget adapts a group of Leap-Lists (any variant) to the harness.
type LeapTarget struct {
	name  string
	group *core.Group[uint64]
	lists []*core.List[uint64]
}

// LeapOptions configures a Leap-List target.
type LeapOptions struct {
	Variant  core.Variant
	Lists    int
	NodeSize int
	MaxLevel int
	Stats    bool
	// Extension toggles STM timestamp extension (abl-ext ablation).
	ExtensionOff bool
	// NoBundles disables the versioned level-0 links (abl-bundles
	// ablation: the write-path cost of bundle stamping on Fig14a).
	NoBundles bool
}

// NewLeapTarget builds a fresh Leap-List group for one experiment cell.
func NewLeapTarget(opts LeapOptions) *LeapTarget {
	if opts.Lists <= 0 {
		opts.Lists = 1
	}
	var stmOpts []stm.Option
	if opts.Stats {
		stmOpts = append(stmOpts, stm.WithStats(true))
	}
	if opts.ExtensionOff {
		stmOpts = append(stmOpts, stm.WithTimestampExtension(false))
	}
	domain := stm.New(stmOpts...)
	g := core.NewGroup[uint64](core.Config{
		NodeSize:  opts.NodeSize,
		MaxLevel:  opts.MaxLevel,
		Variant:   opts.Variant,
		NoBundles: opts.NoBundles,
	}, domain)
	ls := make([]*core.List[uint64], opts.Lists)
	for i := range ls {
		ls[i] = g.NewList()
	}
	return &LeapTarget{name: opts.Variant.String(), group: g, lists: ls}
}

// Name implements Target.
func (t *LeapTarget) Name() string { return t.name }

// Lists implements Target.
func (t *LeapTarget) Lists() int { return len(t.lists) }

// Lookup implements Target.
func (t *LeapTarget) Lookup(hint int, k uint64) bool {
	_, ok := t.lists[hint%len(t.lists)].Lookup(k)
	return ok
}

// RangeCount implements Target.
func (t *LeapTarget) RangeCount(hint int, lo, hi uint64) int {
	return t.lists[hint%len(t.lists)].RangeQuery(lo, hi, nil)
}

// UpdateBatch implements Target.
func (t *LeapTarget) UpdateBatch(ks, vs []uint64) {
	if err := t.group.Update(t.lists, ks, vs); err != nil {
		panic("harness: leap update: " + err.Error())
	}
}

// RemoveBatch implements Target.
func (t *LeapTarget) RemoveBatch(ks []uint64) {
	if err := t.group.Remove(t.lists, ks, nil); err != nil {
		panic("harness: leap remove: " + err.Error())
	}
}

// Init implements Target: successive elements, as in the paper's setup.
func (t *LeapTarget) Init(n int) {
	if n == 0 {
		return
	}
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = uint64(i)
	}
	for _, l := range t.lists {
		if err := l.BulkLoad(keys, vals); err != nil {
			panic("harness: leap init: " + err.Error())
		}
	}
}

// STMStats implements Target.
func (t *LeapTarget) STMStats() stm.StatsSnapshot {
	return t.group.STM().Stats()
}

// SkipTMTarget adapts the Skip-tm baseline (single list).
type SkipTMTarget struct {
	s  *stm.STM
	sl *skiplist.TM[uint64]
}

// NewSkipTMTarget builds a fresh Skip-tm list.
func NewSkipTMTarget(maxLevel int, stats bool) *SkipTMTarget {
	var opts []stm.Option
	if stats {
		opts = append(opts, stm.WithStats(true))
	}
	domain := stm.New(opts...)
	return &SkipTMTarget{s: domain, sl: skiplist.NewTM[uint64](domain, maxLevel)}
}

// Name implements Target.
func (t *SkipTMTarget) Name() string { return "Skiplist-tm" }

// Lists implements Target.
func (t *SkipTMTarget) Lists() int { return 1 }

// Lookup implements Target.
func (t *SkipTMTarget) Lookup(_ int, k uint64) bool {
	_, ok := t.sl.Lookup(k)
	return ok
}

// RangeCount implements Target.
func (t *SkipTMTarget) RangeCount(_ int, lo, hi uint64) int {
	return t.sl.RangeQuery(lo, hi, nil)
}

// UpdateBatch implements Target.
func (t *SkipTMTarget) UpdateBatch(ks, vs []uint64) {
	if err := t.sl.Update(ks[0], vs[0]); err != nil {
		panic("harness: skip-tm update: " + err.Error())
	}
}

// RemoveBatch implements Target.
func (t *SkipTMTarget) RemoveBatch(ks []uint64) {
	if _, err := t.sl.Remove(ks[0]); err != nil {
		panic("harness: skip-tm remove: " + err.Error())
	}
}

// Init implements Target.
func (t *SkipTMTarget) Init(n int) {
	for i := 0; i < n; i++ {
		if err := t.sl.Update(uint64(i), uint64(i)); err != nil {
			panic("harness: skip-tm init: " + err.Error())
		}
	}
}

// STMStats implements Target.
func (t *SkipTMTarget) STMStats() stm.StatsSnapshot { return t.s.Stats() }

// SkipCASTarget adapts the Skip-cas baseline (single list).
type SkipCASTarget struct {
	sl *skiplist.CAS[uint64]
}

// NewSkipCASTarget builds a fresh Skip-cas list.
func NewSkipCASTarget(maxLevel int) *SkipCASTarget {
	return &SkipCASTarget{sl: skiplist.NewCAS[uint64](maxLevel)}
}

// Name implements Target.
func (t *SkipCASTarget) Name() string { return "Skiplist-cas" }

// Lists implements Target.
func (t *SkipCASTarget) Lists() int { return 1 }

// Lookup implements Target.
func (t *SkipCASTarget) Lookup(_ int, k uint64) bool {
	_, ok := t.sl.Lookup(k)
	return ok
}

// RangeCount implements Target.
func (t *SkipCASTarget) RangeCount(_ int, lo, hi uint64) int {
	return t.sl.RangeQuery(lo, hi, nil)
}

// UpdateBatch implements Target.
func (t *SkipCASTarget) UpdateBatch(ks, vs []uint64) {
	if err := t.sl.Update(ks[0], vs[0]); err != nil {
		panic("harness: skip-cas update: " + err.Error())
	}
}

// RemoveBatch implements Target.
func (t *SkipCASTarget) RemoveBatch(ks []uint64) {
	if _, err := t.sl.Remove(ks[0]); err != nil {
		panic("harness: skip-cas remove: " + err.Error())
	}
}

// Init implements Target.
func (t *SkipCASTarget) Init(n int) {
	for i := 0; i < n; i++ {
		if err := t.sl.Update(uint64(i), uint64(i)); err != nil {
			panic("harness: skip-cas init: " + err.Error())
		}
	}
}

// STMStats implements Target.
func (t *SkipCASTarget) STMStats() stm.StatsSnapshot { return stm.StatsSnapshot{} }
