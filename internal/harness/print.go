package harness

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders the table as an aligned text grid, one row per
// x-position and one column per series, values in ops/sec — the layout of
// the paper's figure data.
func (t *Table) WriteText(w io.Writer) error {
	if len(t.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: no data\n", t.ID)
		return err
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cols := make([]string, 0, len(t.Series)+1)
	cols = append(cols, t.XAxis)
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = max(len(c), 12)
	}
	var b strings.Builder
	for i, c := range cols {
		fmt.Fprintf(&b, "%-*s ", widths[i], c)
	}
	b.WriteByte('\n')
	for row := 0; row < len(t.Series[0].Points); row++ {
		fmt.Fprintf(&b, "%-*s ", widths[0], t.Series[0].Points[row].XLabel)
		for si, s := range t.Series {
			if row < len(s.Points) {
				fmt.Fprintf(&b, "%-*.0f ", widths[si+1], s.Points[row].OpsPerS)
			} else {
				fmt.Fprintf(&b, "%-*s ", widths[si+1], "-")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV:
// xaxis,series,x,ops_per_sec,aborts,prepare_conflicts,timeout_aborts,max_retry.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "experiment,series,%s,ops_per_sec,aborts,prepare_conflicts,timeout_aborts,max_retry\n", t.XAxis); err != nil {
		return err
	}
	for _, s := range t.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%.0f,%d,%d,%d,%d\n",
				t.ID, s.Name, p.XLabel, p.OpsPerS, p.Aborts,
				p.PrepareConflicts, p.TimeoutAborts, p.MaxRetry); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteStats renders the STM counter view of the table — aborts,
// bounded-prepare conflicts, deadline aborts and the retry high-water
// mark summed (MaxRetry: maximized) per series over the sweep. A
// no-op unless some counter is nonzero (they are collected only with
// Params.Stats / leapbench -stats).
func (t *Table) WriteStats(w io.Writer) error {
	any := false
	for _, s := range t.Series {
		for _, p := range s.Points {
			if p.Aborts|p.PrepareConflicts|p.TimeoutAborts|p.MaxRetry != 0 {
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — STM counters per series (summed over %s sweep)\n", t.ID, t.XAxis)
	fmt.Fprintf(&b, "%-14s %-12s %-18s %-14s %-10s\n",
		"series", "aborts", "prepare_conflicts", "timeout_aborts", "max_retry")
	for _, s := range t.Series {
		var aborts, conflicts, timeouts, maxRetry uint64
		for _, p := range s.Points {
			aborts += p.Aborts
			conflicts += p.PrepareConflicts
			timeouts += p.TimeoutAborts
			maxRetry = max(maxRetry, p.MaxRetry)
		}
		fmt.Fprintf(&b, "%-14s %-12d %-18d %-14d %-10d\n",
			s.Name, aborts, conflicts, timeouts, maxRetry)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePlot renders the table as an ASCII chart in the shape of the
// paper's figures: x-positions along the bottom, ops/sec on the y-axis,
// one letter per series. Intended for eyeballing curve shapes without
// leaving the terminal.
func (t *Table) WritePlot(w io.Writer, height int) error {
	if len(t.Series) == 0 || len(t.Series[0].Points) == 0 {
		_, err := fmt.Fprintf(w, "%s: no data\n", t.ID)
		return err
	}
	if height < 4 {
		height = 4
	}
	maxY := 0.0
	cols := len(t.Series[0].Points)
	for _, s := range t.Series {
		for _, p := range s.Points {
			if p.OpsPerS > maxY {
				maxY = p.OpsPerS
			}
		}
		if len(s.Points) > cols {
			cols = len(s.Points)
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	const colWidth = 6
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	for si, s := range t.Series {
		mark := byte('A' + si%26)
		for pi, p := range s.Points {
			row := int(p.OpsPerS / maxY * float64(height-1))
			if row > height-1 {
				row = height - 1
			}
			col := pi*colWidth + colWidth/2
			cell := &grid[height-1-row][col]
			if *cell == ' ' {
				*cell = mark
			} else {
				*cell = '*' // overlapping series
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (y: ops/s, max %.0f)\n", t.ID, t.Title, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", cols*colWidth))
	b.WriteByte('\n')
	b.WriteString(" ")
	for pi := 0; pi < cols; pi++ {
		label := ""
		if pi < len(t.Series[0].Points) {
			label = t.Series[0].Points[pi].XLabel
		}
		fmt.Fprintf(&b, "%-*s", colWidth, label)
	}
	fmt.Fprintf(&b, "  (%s)\n", t.XAxis)
	for si, s := range t.Series {
		fmt.Fprintf(&b, "  %c = %s\n", 'A'+si%26, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SpeedupOver returns, per x-position, how much faster series a is than
// series b (a/b), used by EXPERIMENTS.md to report the paper's ratios.
func (t *Table) SpeedupOver(a, b string) ([]Point, error) {
	var sa, sb *Series
	for i := range t.Series {
		switch t.Series[i].Name {
		case a:
			sa = &t.Series[i]
		case b:
			sb = &t.Series[i]
		}
	}
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("harness: series %q or %q not in table %s", a, b, t.ID)
	}
	n := min(len(sa.Points), len(sb.Points))
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		ratio := 0.0
		if sb.Points[i].OpsPerS > 0 {
			ratio = sa.Points[i].OpsPerS / sb.Points[i].OpsPerS
		}
		out = append(out, Point{
			X:       sa.Points[i].X,
			XLabel:  sa.Points[i].XLabel,
			OpsPerS: ratio,
		})
	}
	return out, nil
}
