package harness

import (
	"leaplist/internal/btree"
	"leaplist/internal/stm"
)

// BTreeTarget adapts the blocking B+-tree baseline (single index). Mode
// selects its range-query strategy — the two §1.1 strawmen the Leap-List
// replaces: a long-held read lock, or per-key successive lookups.
type BTreeTarget struct {
	tr         *btree.Tree[uint64]
	lockedScan bool
}

// NewBTreeTarget builds a fresh B+-tree of the given order. lockedScan
// selects RangeLocked (consistent, writer-starving) over RangeLookups
// (lock-free-ish, inconsistent, one descent per key).
func NewBTreeTarget(order int, lockedScan bool) *BTreeTarget {
	return &BTreeTarget{tr: btree.New[uint64](order), lockedScan: lockedScan}
}

// Name implements Target.
func (t *BTreeTarget) Name() string {
	if t.lockedScan {
		return "BTree-lockscan"
	}
	return "BTree-lookups"
}

// Lists implements Target.
func (t *BTreeTarget) Lists() int { return 1 }

// Lookup implements Target.
func (t *BTreeTarget) Lookup(_ int, k uint64) bool {
	_, ok := t.tr.Get(k)
	return ok
}

// RangeCount implements Target.
func (t *BTreeTarget) RangeCount(_ int, lo, hi uint64) int {
	if t.lockedScan {
		return t.tr.RangeLocked(lo, hi, nil)
	}
	return t.tr.RangeLookups(lo, hi, nil)
}

// UpdateBatch implements Target.
func (t *BTreeTarget) UpdateBatch(ks, vs []uint64) {
	if err := t.tr.Set(ks[0], vs[0]); err != nil {
		panic("harness: btree set: " + err.Error())
	}
}

// RemoveBatch implements Target.
func (t *BTreeTarget) RemoveBatch(ks []uint64) {
	if _, err := t.tr.Delete(ks[0]); err != nil {
		panic("harness: btree delete: " + err.Error())
	}
}

// Init implements Target.
func (t *BTreeTarget) Init(n int) {
	for i := 0; i < n; i++ {
		if err := t.tr.Set(uint64(i), uint64(i)); err != nil {
			panic("harness: btree init: " + err.Error())
		}
	}
}

// STMStats implements Target.
func (t *BTreeTarget) STMStats() stm.StatsSnapshot { return stm.StatsSnapshot{} }
