// Package harness runs the paper's fixed-duration throughput experiments:
// it drives a Target with worker goroutines executing a workload mix and
// reports operations per second, the paper's metric in Figures 14-17.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leaplist/internal/latency"
	"leaplist/internal/stm"
	"leaplist/internal/workload"
)

// Target abstracts the structure under test. UpdateBatch and RemoveBatch
// receive one key per list (len = Lists()); single-list structures take
// batches of length 1. Lookup and RangeCount address one list chosen by the
// target (the harness passes a rotation hint).
type Target interface {
	Name() string
	Lists() int
	Lookup(listHint int, k uint64) bool
	RangeCount(listHint int, lo, hi uint64) int
	UpdateBatch(ks, vs []uint64)
	RemoveBatch(ks []uint64)
	// Init loads n successive elements (keys 0..n-1) into every list.
	Init(n int)
	// STMStats returns the underlying STM snapshot, or zero if none.
	STMStats() stm.StatsSnapshot
}

// Config parameterizes one experiment cell.
type Config struct {
	Workers  int
	Duration time.Duration
	KeySpace uint64
	Init     int // successive elements preloaded per list
	RangeMin uint64
	RangeMax uint64
	Mix      workload.Mix
	Seed     uint64
	// TrackLatency records per-operation-type latency histograms; costs
	// two clock reads per operation, so it is off for throughput cells.
	TrackLatency bool
}

// Result is one measured cell.
type Result struct {
	Target  string
	Workers int
	Ops     uint64
	Elapsed time.Duration
	OpsPerS float64
	Aborts  uint64 // STM aborts during the measured window
	Commits uint64
	// PrepareConflicts / TimeoutAborts / MaxRetry mirror the bounded-
	// commit counters (see stm.StatsSnapshot): prepares that exhausted a
	// retry budget, commits abandoned at a deadline, and the largest
	// per-commit retry count seen. MaxRetry is a high-water gauge over
	// the target's lifetime, not a windowed delta.
	PrepareConflicts uint64
	TimeoutAborts    uint64
	MaxRetry         uint64
	RangeSum         uint64 // pairs returned by range queries (keeps them un-elided)
	// Latencies holds per-operation-type summaries when
	// Config.TrackLatency was set; keys are workload.Op strings.
	Latencies map[string]latency.Summary
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-12s workers=%-3d ops=%-10d ops/s=%-12.0f aborts=%d",
		r.Target, r.Workers, r.Ops, r.OpsPerS, r.Aborts)
}

// Run executes one experiment cell: Init the target, then hammer it from
// cfg.Workers goroutines for cfg.Duration and count completed operations.
func Run(cfg Config, t Target) (Result, error) {
	if cfg.Workers <= 0 {
		return Result{}, fmt.Errorf("harness: workers must be positive")
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = uint64(cfg.Init)
	}
	if cfg.KeySpace == 0 {
		return Result{}, fmt.Errorf("harness: zero key space and no init")
	}
	t.Init(cfg.Init)
	statsBefore := t.STMStats()

	var stop atomic.Bool
	var totalOps, totalRange atomic.Uint64
	var hists [4]latency.Histogram // indexed by workload.Op
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen, err := workload.NewGenerator(workload.Config{
				Mix:      cfg.Mix,
				KeySpace: cfg.KeySpace,
				RangeMin: cfg.RangeMin,
				RangeMax: cfg.RangeMax,
				Seed:     cfg.Seed + uint64(id)*0x1000193,
			})
			if err != nil {
				panic("harness: " + err.Error())
			}
			lists := t.Lists()
			ks := make([]uint64, lists)
			vs := make([]uint64, lists)
			ops := uint64(0)
			ranges := uint64(0)
			hint := id
			for !stop.Load() {
				op, key, val, lo, hi := gen.Next()
				var opStart time.Time
				if cfg.TrackLatency {
					opStart = time.Now()
				}
				switch op {
				case workload.OpLookup:
					t.Lookup(hint, key)
				case workload.OpRange:
					ranges += uint64(t.RangeCount(hint, lo, hi))
				case workload.OpUpdate:
					ks[0], vs[0] = key, val
					for j := 1; j < lists; j++ {
						ks[j], vs[j] = gen.Key(), gen.Value()
					}
					t.UpdateBatch(ks, vs)
				case workload.OpRemove:
					ks[0] = key
					for j := 1; j < lists; j++ {
						ks[j] = gen.Key()
					}
					t.RemoveBatch(ks)
				}
				if cfg.TrackLatency {
					hists[op].Record(time.Since(opStart))
				}
				ops++
				hint++
			}
			totalOps.Add(ops)
			totalRange.Add(ranges)
		}(w)
	}
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	statsAfter := t.STMStats()

	runtime.GC() // keep allocation pressure from leaking across cells

	ops := totalOps.Load()
	res := Result{
		Target:           t.Name(),
		Workers:          cfg.Workers,
		Ops:              ops,
		Elapsed:          elapsed,
		OpsPerS:          float64(ops) / elapsed.Seconds(),
		Aborts:           statsAfter.Aborts - statsBefore.Aborts,
		Commits:          statsAfter.Commits - statsBefore.Commits,
		PrepareConflicts: statsAfter.PrepareConflicts - statsBefore.PrepareConflicts,
		TimeoutAborts:    statsAfter.TimeoutAborts - statsBefore.TimeoutAborts,
		MaxRetry:         statsAfter.MaxRetry,
		RangeSum:         totalRange.Load(),
	}
	if cfg.TrackLatency {
		res.Latencies = make(map[string]latency.Summary, 4)
		for op := workload.OpLookup; op <= workload.OpRemove; op++ {
			if hists[op].Count() > 0 {
				res.Latencies[op.String()] = hists[op].Summarize()
			}
		}
	}
	return res, nil
}
