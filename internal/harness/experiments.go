package harness

import (
	"fmt"
	"sort"
	"time"

	"leaplist/internal/core"
	"leaplist/internal/workload"
)

// Paper experimental constants (§3 "Settings").
const (
	PaperNodeSize  = 300
	PaperMaxLevel  = 10
	PaperLists     = 4
	PaperKeySpace  = 100_000
	PaperInit      = 100_000
	PaperRangeMin  = 1_000
	PaperRangeMax  = 2_000
	PaperFig17Init = 1_000_000
)

// DefaultThreads is the paper's thread sweep.
var DefaultThreads = []int{1, 2, 4, 8, 16, 32, 40, 64, 80}

// Params tunes an experiment run without changing its identity.
type Params struct {
	Duration time.Duration // per cell; the paper used 10s
	Reps     int           // repetitions averaged; the paper used 3
	Threads  []int         // thread sweep override (nil = paper's)
	Quick    bool          // shrink the largest element counts for smoke runs
	Stats    bool          // collect STM counters per cell (aborts, bounded-commit stats)
}

func (p Params) normalize() Params {
	if p.Duration <= 0 {
		p.Duration = time.Second
	}
	if p.Reps <= 0 {
		p.Reps = 1
	}
	if len(p.Threads) == 0 {
		p.Threads = DefaultThreads
	}
	return p
}

// Point is one measured x-position of one series.
type Point struct {
	X       float64
	XLabel  string
	OpsPerS float64
	Aborts  uint64
	// Bounded-commit counters (collected with Params.Stats, averaged
	// over reps like Aborts; MaxRetry aggregates by maximum): prepares
	// that exhausted a retry budget, commits abandoned at a deadline,
	// and the largest per-commit retry count observed.
	PrepareConflicts uint64
	TimeoutAborts    uint64
	MaxRetry         uint64
}

// Series is one algorithm's curve.
type Series struct {
	Name   string
	Points []Point
}

// Table is one reproduced figure panel.
type Table struct {
	ID     string
	Title  string
	XAxis  string
	Series []Series
}

// Experiment is a runnable figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) (Table, error)
}

// Experiments returns the registry of every reproducible panel, in paper
// order. IDs match DESIGN.md's per-experiment index.
func Experiments() []Experiment {
	return []Experiment{
		{"fig14a", "Fig 14(a): 4 lists, 100K elements, 100% modify, threads sweep", fig14(workload.Mix{ModifyPct: 100}, "fig14a")},
		{"fig14b", "Fig 14(b): 4 lists, 100K elements, 40/40/20 lookup/range/modify, threads sweep", fig14(workload.Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20}, "fig14b")},
		{"fig15a", "Fig 15(a): 4 lists, 80 threads, elements sweep, 100% modify", fig15(workload.Mix{ModifyPct: 100}, "fig15a")},
		{"fig15b", "Fig 15(b): 4 lists, 80 threads, elements sweep, 100% lookup", fig15(workload.Mix{LookupPct: 100}, "fig15b")},
		{"fig16a", "Fig 16(a): 80 threads, 100K elements, lookup% sweep (no range-query)", fig16(false)},
		{"fig16b", "Fig 16(b): 80 threads, 100K elements, range-query% sweep (no lookup)", fig16(true)},
		{"fig17a", "Fig 17(a): single list vs skip-lists, 1M elements, 100% modify", fig17(workload.Mix{ModifyPct: 100}, "fig17a")},
		{"fig17b", "Fig 17(b): single list vs skip-lists, 1M elements, 40/40/20", fig17(workload.Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20}, "fig17b")},
		{"fig17c", "Fig 17(c): single list vs skip-lists, 1M elements, 100% lookup", fig17(workload.Mix{LookupPct: 100}, "fig17c")},
		{"fig17d", "Fig 17(d): single list vs skip-lists, 1M elements, 100% range-query", fig17(workload.Mix{RangePct: 100}, "fig17d")},
		{"abl-ext", "Ablation: STM timestamp extension on/off (range-query heavy)", ablExtension},
		{"abl-lists", "Ablation: composed batch width L in {1,2,4,8}", ablLists},
		{"abl-btree", "Ablation: Leap-LT vs blocking B+-tree range strategies (paper §1.1/§4)", ablBTree},
	}
}

// FindExperiment resolves an experiment by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// leapVariants are the four Leap-List series of Figures 14-16, in the
// paper's legend order.
var leapVariants = []core.Variant{core.VariantTM, core.VariantRW, core.VariantCOP, core.VariantLT}

// runCell builds a fresh target, runs reps, and returns one Point with
// ops/s and the STM counters averaged over the reps (MaxRetry by
// maximum — it is a high-water gauge). The caller fills X and XLabel.
func runCell(cfg Config, reps int, build func() Target) (Point, error) {
	var pt Point
	var sum float64
	var aborts, conflicts, timeouts uint64
	for r := 0; r < reps; r++ {
		cfg.Seed = uint64(r+1) * 0x5851f42d
		res, err := Run(cfg, build())
		if err != nil {
			return Point{}, err
		}
		sum += res.OpsPerS
		aborts += res.Aborts
		conflicts += res.PrepareConflicts
		timeouts += res.TimeoutAborts
		pt.MaxRetry = max(pt.MaxRetry, res.MaxRetry)
	}
	pt.OpsPerS = sum / float64(reps)
	pt.Aborts = aborts / uint64(reps)
	pt.PrepareConflicts = conflicts / uint64(reps)
	pt.TimeoutAborts = timeouts / uint64(reps)
	return pt, nil
}

func fig14(mix workload.Mix, id string) func(Params) (Table, error) {
	return func(p Params) (Table, error) {
		p = p.normalize()
		table := Table{ID: id, Title: mix.String(), XAxis: "threads"}
		for _, v := range leapVariants {
			v := v
			series := Series{Name: v.String()}
			for _, th := range p.Threads {
				cfg := Config{
					Workers:  th,
					Duration: p.Duration,
					KeySpace: PaperKeySpace,
					Init:     PaperInit,
					RangeMin: PaperRangeMin,
					RangeMax: PaperRangeMax,
					Mix:      mix,
				}
				pt, err := runCell(cfg, p.Reps, func() Target {
					return NewLeapTarget(LeapOptions{
						Variant: v, Lists: PaperLists,
						NodeSize: PaperNodeSize, MaxLevel: PaperMaxLevel,
						Stats: p.Stats,
					})
				})
				if err != nil {
					return table, err
				}
				pt.X, pt.XLabel = float64(th), fmt.Sprint(th)
				series.Points = append(series.Points, pt)
			}
			table.Series = append(table.Series, series)
		}
		return table, nil
	}
}

func fig15(mix workload.Mix, id string) func(Params) (Table, error) {
	return func(p Params) (Table, error) {
		p = p.normalize()
		elements := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
		if p.Quick {
			elements = []int{1_000, 10_000, 100_000}
		}
		workers := 80
		table := Table{ID: id, Title: mix.String() + ", 80 threads", XAxis: "elements"}
		for _, v := range leapVariants {
			v := v
			series := Series{Name: v.String()}
			for _, n := range elements {
				// The paper states keys in [0, 100000); that cannot hold
				// >= 10^6 distinct elements, so the key space scales with
				// the element count (documented in DESIGN.md).
				keySpace := uint64(n)
				if keySpace < PaperKeySpace {
					keySpace = PaperKeySpace
				}
				cfg := Config{
					Workers:  workers,
					Duration: p.Duration,
					KeySpace: keySpace,
					Init:     n,
					RangeMin: PaperRangeMin,
					RangeMax: PaperRangeMax,
					Mix:      mix,
				}
				pt, err := runCell(cfg, p.Reps, func() Target {
					return NewLeapTarget(LeapOptions{
						Variant: v, Lists: PaperLists,
						NodeSize: PaperNodeSize, MaxLevel: PaperMaxLevel,
						Stats: p.Stats,
					})
				})
				if err != nil {
					return table, err
				}
				pt.X, pt.XLabel = float64(n), fmt.Sprint(n)
				series.Points = append(series.Points, pt)
			}
			table.Series = append(table.Series, series)
		}
		return table, nil
	}
}

func fig16(rangeSweep bool) func(Params) (Table, error) {
	id := "fig16a"
	if rangeSweep {
		id = "fig16b"
	}
	return func(p Params) (Table, error) {
		p = p.normalize()
		workers := 80
		xName := "lookup%"
		if rangeSweep {
			xName = "range-query%"
		}
		table := Table{ID: id, Title: "80 threads, 100K elements", XAxis: xName}
		for _, v := range leapVariants {
			v := v
			series := Series{Name: v.String()}
			for pct := 0; pct <= 90; pct += 10 {
				mix := workload.Mix{LookupPct: pct, ModifyPct: 100 - pct}
				if rangeSweep {
					mix = workload.Mix{RangePct: pct, ModifyPct: 100 - pct}
				}
				cfg := Config{
					Workers:  workers,
					Duration: p.Duration,
					KeySpace: PaperKeySpace,
					Init:     PaperInit,
					RangeMin: PaperRangeMin,
					RangeMax: PaperRangeMax,
					Mix:      mix,
				}
				pt, err := runCell(cfg, p.Reps, func() Target {
					return NewLeapTarget(LeapOptions{
						Variant: v, Lists: PaperLists,
						NodeSize: PaperNodeSize, MaxLevel: PaperMaxLevel,
						Stats: p.Stats,
					})
				})
				if err != nil {
					return table, err
				}
				pt.X, pt.XLabel = float64(pct), fmt.Sprint(pct)
				series.Points = append(series.Points, pt)
			}
			table.Series = append(table.Series, series)
		}
		return table, nil
	}
}

func fig17(mix workload.Mix, id string) func(Params) (Table, error) {
	return func(p Params) (Table, error) {
		p = p.normalize()
		initN := PaperFig17Init
		if p.Quick {
			initN = 100_000
		}
		builders := []struct {
			name  string
			build func() Target
		}{
			{"Skiplist-tm", func() Target { return NewSkipTMTarget(20, p.Stats) }},
			{"Skiplist-cas", func() Target { return NewSkipCASTarget(20) }},
			{"Leap-LT", func() Target {
				return NewLeapTarget(LeapOptions{
					Variant: core.VariantLT, Lists: 1,
					NodeSize: PaperNodeSize, MaxLevel: PaperMaxLevel,
					Stats: p.Stats,
				})
			}},
		}
		table := Table{ID: id, Title: mix.String() + ", 1M elements, single list", XAxis: "threads"}
		for _, bld := range builders {
			bld := bld
			series := Series{Name: bld.name}
			for _, th := range p.Threads {
				cfg := Config{
					Workers:  th,
					Duration: p.Duration,
					KeySpace: uint64(initN),
					Init:     initN,
					RangeMin: PaperRangeMin,
					RangeMax: PaperRangeMax,
					Mix:      mix,
				}
				pt, err := runCell(cfg, p.Reps, bld.build)
				if err != nil {
					return table, err
				}
				pt.X, pt.XLabel = float64(th), fmt.Sprint(th)
				series.Points = append(series.Points, pt)
			}
			table.Series = append(table.Series, series)
		}
		return table, nil
	}
}

// ablExtension compares Leap-LT with and without STM timestamp extension
// under the range-query-heavy mix, where long read-only transactions are
// the ones extension saves.
func ablExtension(p Params) (Table, error) {
	p = p.normalize()
	table := Table{ID: "abl-ext", Title: "timestamp extension, 40/40/20 mix", XAxis: "threads"}
	mix := workload.Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20}
	for _, off := range []bool{false, true} {
		off := off
		name := "extension-on"
		if off {
			name = "extension-off"
		}
		series := Series{Name: name}
		for _, th := range p.Threads {
			cfg := Config{
				Workers:  th,
				Duration: p.Duration,
				KeySpace: PaperKeySpace,
				Init:     PaperInit,
				RangeMin: PaperRangeMin,
				RangeMax: PaperRangeMax,
				Mix:      mix,
			}
			pt, err := runCell(cfg, p.Reps, func() Target {
				return NewLeapTarget(LeapOptions{
					Variant: core.VariantLT, Lists: PaperLists,
					NodeSize: PaperNodeSize, MaxLevel: PaperMaxLevel,
					Stats: p.Stats, ExtensionOff: off,
				})
			})
			if err != nil {
				return table, err
			}
			pt.X, pt.XLabel = float64(th), fmt.Sprint(th)
			series.Points = append(series.Points, pt)
		}
		table.Series = append(table.Series, series)
	}
	return table, nil
}

// ablLists sweeps the composition width L, quantifying the cost of the
// paper's multi-list atomicity.
func ablLists(p Params) (Table, error) {
	p = p.normalize()
	table := Table{ID: "abl-lists", Title: "batch width sweep, 100% modify, 16 threads", XAxis: "lists"}
	for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
		v := v
		series := Series{Name: v.String()}
		for _, lists := range []int{1, 2, 4, 8} {
			cfg := Config{
				Workers:  16,
				Duration: p.Duration,
				KeySpace: PaperKeySpace,
				Init:     PaperInit,
				RangeMin: PaperRangeMin,
				RangeMax: PaperRangeMax,
				Mix:      workload.Mix{ModifyPct: 100},
			}
			pt, err := runCell(cfg, p.Reps, func() Target {
				return NewLeapTarget(LeapOptions{
					Variant: v, Lists: lists,
					NodeSize: PaperNodeSize, MaxLevel: PaperMaxLevel,
					Stats: p.Stats,
				})
			})
			if err != nil {
				return table, err
			}
			pt.X, pt.XLabel = float64(lists), fmt.Sprint(lists)
			series.Points = append(series.Points, pt)
		}
		table.Series = append(table.Series, series)
	}
	return table, nil
}

// ablBTree pits Leap-LT against the blocking B+-tree under the paper's
// mixed read workload. The B+-tree has no leaf chaining (§1.1), so its
// range queries either hold the tree lock for the whole scan or pay one
// descent per key — the two alternatives the Leap-List was built to beat,
// and the structure §4 proposes replacing inside in-memory databases.
func ablBTree(p Params) (Table, error) {
	p = p.normalize()
	builders := []struct {
		name  string
		build func() Target
	}{
		{"Leap-LT", func() Target {
			return NewLeapTarget(LeapOptions{
				Variant: core.VariantLT, Lists: 1,
				NodeSize: PaperNodeSize, MaxLevel: PaperMaxLevel,
				Stats: p.Stats,
			})
		}},
		{"BTree-lockscan", func() Target { return NewBTreeTarget(PaperNodeSize, true) }},
		{"BTree-lookups", func() Target { return NewBTreeTarget(PaperNodeSize, false) }},
	}
	mix := workload.Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20}
	table := Table{ID: "abl-btree", Title: mix.String() + ", 100K elements, single index", XAxis: "threads"}
	for _, bld := range builders {
		bld := bld
		series := Series{Name: bld.name}
		for _, th := range p.Threads {
			cfg := Config{
				Workers:  th,
				Duration: p.Duration,
				KeySpace: PaperKeySpace,
				Init:     PaperInit,
				RangeMin: PaperRangeMin,
				RangeMax: PaperRangeMax,
				Mix:      mix,
			}
			pt, err := runCell(cfg, p.Reps, bld.build)
			if err != nil {
				return table, err
			}
			pt.X, pt.XLabel = float64(th), fmt.Sprint(th)
			series.Points = append(series.Points, pt)
		}
		table.Series = append(table.Series, series)
	}
	return table, nil
}

// SortSeries orders the table's series by name for stable output.
func (t *Table) SortSeries() {
	sort.Slice(t.Series, func(i, j int) bool { return t.Series[i].Name < t.Series[j].Name })
}
