package harness

import (
	"strings"
	"testing"
	"time"

	"leaplist/internal/core"
	"leaplist/internal/workload"
)

func shortCfg(workers int, mix workload.Mix) Config {
	return Config{
		Workers:  workers,
		Duration: 50 * time.Millisecond,
		KeySpace: 2_000,
		Init:     2_000,
		RangeMin: 50,
		RangeMax: 100,
		Mix:      mix,
		Seed:     1,
	}
}

func smallLeap(v core.Variant, lists int) *LeapTarget {
	return NewLeapTarget(LeapOptions{
		Variant: v, Lists: lists, NodeSize: 32, MaxLevel: 8, Stats: true,
	})
}

func TestRunAllLeapVariants(t *testing.T) {
	mix := workload.Mix{LookupPct: 30, RangePct: 30, ModifyPct: 40}
	for _, v := range []core.Variant{core.VariantLT, core.VariantTM, core.VariantCOP, core.VariantRW} {
		t.Run(v.String(), func(t *testing.T) {
			res, err := Run(shortCfg(4, mix), smallLeap(v, 4))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.OpsPerS <= 0 {
				t.Fatalf("OpsPerS = %f", res.OpsPerS)
			}
			if res.Target != v.String() {
				t.Fatalf("Target = %q", res.Target)
			}
		})
	}
}

func TestRunSkipTargets(t *testing.T) {
	mix := workload.Mix{LookupPct: 40, RangePct: 20, ModifyPct: 40}
	for _, tgt := range []Target{
		NewSkipTMTarget(12, true),
		NewSkipCASTarget(12),
		NewBTreeTarget(32, true),
		NewBTreeTarget(32, false),
	} {
		t.Run(tgt.Name(), func(t *testing.T) {
			res, err := Run(shortCfg(4, mix), tgt)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
		})
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Workers: 0}, smallLeap(core.VariantLT, 1)); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := Run(Config{Workers: 1, Duration: time.Millisecond}, smallLeap(core.VariantLT, 1)); err == nil {
		t.Fatal("zero key space with no init accepted")
	}
}

func TestRangeQueriesReturnData(t *testing.T) {
	res, err := Run(shortCfg(2, workload.Mix{RangePct: 100}), smallLeap(core.VariantLT, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RangeSum == 0 {
		t.Fatal("range queries returned no pairs over a dense preload")
	}
}

func TestLatencyTracking(t *testing.T) {
	cfg := shortCfg(2, workload.Mix{LookupPct: 50, RangePct: 10, ModifyPct: 40})
	cfg.TrackLatency = true
	res, err := Run(cfg, smallLeap(core.VariantLT, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Latencies) == 0 {
		t.Fatal("no latency summaries collected")
	}
	lk, ok := res.Latencies[workload.OpLookup.String()]
	if !ok || lk.Count == 0 || lk.P50 == 0 {
		t.Fatalf("lookup summary = %+v", lk)
	}
	// Without tracking, the map must stay nil.
	cfg.TrackLatency = false
	res, err = Run(cfg, smallLeap(core.VariantLT, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Latencies != nil {
		t.Fatal("latencies collected without TrackLatency")
	}
}

func TestStatsDeltaCollected(t *testing.T) {
	res, err := Run(shortCfg(4, workload.Mix{ModifyPct: 100}), smallLeap(core.VariantTM, 4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits recorded with stats enabled")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	wantIDs := []string{
		"fig14a", "fig14b", "fig15a", "fig15b", "fig16a", "fig16b",
		"fig17a", "fig17b", "fig17c", "fig17d", "abl-ext", "abl-lists",
		"abl-btree",
	}
	if len(exps) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exps[i].ID != id {
			t.Fatalf("experiment %d = %q, want %q", i, exps[i].ID, id)
		}
		if _, ok := FindExperiment(id); !ok {
			t.Fatalf("FindExperiment(%q) missed", id)
		}
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Fatal("FindExperiment accepted unknown id")
	}
}

// TestFig14aSmoke runs a miniature fig14a end to end: tiny durations, two
// thread counts, verifying the table shape.
func TestFig14aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped in -short")
	}
	exp, _ := FindExperiment("fig14a")
	table, err := exp.Run(Params{
		Duration: 30 * time.Millisecond,
		Reps:     1,
		Threads:  []int{1, 2},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(table.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(table.Series))
	}
	for _, s := range table.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points, want 2", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.OpsPerS <= 0 {
				t.Fatalf("series %s point %s has no throughput", s.Name, p.XLabel)
			}
		}
	}
	var text, csv strings.Builder
	if err := table.WriteText(&text); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := table.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(text.String(), "Leap-LT") || !strings.Contains(csv.String(), "fig14a,Leap-LT") {
		t.Fatalf("renders missing series:\n%s\n%s", text.String(), csv.String())
	}
	ratios, err := table.SpeedupOver("Leap-LT", "Leap-tm")
	if err != nil {
		t.Fatalf("SpeedupOver: %v", err)
	}
	if len(ratios) != 2 {
		t.Fatalf("ratios = %d, want 2", len(ratios))
	}
}

// TestMoreExperimentsSmoke runs the element-sweep and ablation
// experiments end to end in miniature, verifying table shapes. fig16a/b
// (10 x-points each over 100K-element structures) are covered by the
// leapbench CLI and the fig14 smoke; running them here would dominate the
// package's test time.
func TestMoreExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped in -short")
	}
	params := Params{
		Duration: 20 * time.Millisecond,
		Reps:     1,
		Threads:  []int{2},
		Quick:    true,
	}
	tests := []struct {
		id         string
		wantSeries int
		wantPoints int
	}{
		{"fig15a", 4, 3}, // quick: 3 element sizes
		{"fig15b", 4, 3},
		{"abl-ext", 2, 1},
		{"abl-lists", 4, 4}, // L in {1,2,4,8}
		{"abl-btree", 3, 1},
	}
	for _, tc := range tests {
		t.Run(tc.id, func(t *testing.T) {
			exp, ok := FindExperiment(tc.id)
			if !ok {
				t.Fatalf("FindExperiment(%q) missed", tc.id)
			}
			table, err := exp.Run(params)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(table.Series) != tc.wantSeries {
				t.Fatalf("series = %d, want %d", len(table.Series), tc.wantSeries)
			}
			for _, s := range table.Series {
				if len(s.Points) != tc.wantPoints {
					t.Fatalf("series %s has %d points, want %d", s.Name, len(s.Points), tc.wantPoints)
				}
				for _, p := range s.Points {
					if p.OpsPerS <= 0 {
						t.Fatalf("series %s point %s has no throughput", s.Name, p.XLabel)
					}
				}
			}
			table.SortSeries()
			for i := 1; i < len(table.Series); i++ {
				if table.Series[i-1].Name > table.Series[i].Name {
					t.Fatal("SortSeries did not sort")
				}
			}
		})
	}
}

// TestFig17dSmoke exercises the skip-list comparison path.
func TestFig17dSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped in -short")
	}
	exp, _ := FindExperiment("fig17d")
	table, err := exp.Run(Params{
		Duration: 30 * time.Millisecond,
		Reps:     1,
		Threads:  []int{2},
		Quick:    true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	names := map[string]bool{}
	for _, s := range table.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"Leap-LT", "Skiplist-tm", "Skiplist-cas"} {
		if !names[want] {
			t.Fatalf("missing series %q in %v", want, names)
		}
	}
}

func TestSpeedupOverMissingSeries(t *testing.T) {
	table := Table{ID: "x", Series: []Series{{Name: "a"}}}
	if _, err := table.SpeedupOver("a", "b"); err == nil {
		t.Fatal("missing series accepted")
	}
}

func TestWritePlot(t *testing.T) {
	table := Table{
		ID: "demo", Title: "t", XAxis: "threads",
		Series: []Series{
			{Name: "fast", Points: []Point{{XLabel: "1", OpsPerS: 100}, {XLabel: "2", OpsPerS: 200}}},
			{Name: "slow", Points: []Point{{XLabel: "1", OpsPerS: 10}, {XLabel: "2", OpsPerS: 20}}},
		},
	}
	var b strings.Builder
	if err := table.WritePlot(&b, 8); err != nil {
		t.Fatalf("WritePlot: %v", err)
	}
	out := b.String()
	for _, want := range []string{"A = fast", "B = slow", "(threads)", "max 200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	empty := Table{ID: "e"}
	if err := empty.WritePlot(&b, 8); err != nil {
		t.Fatalf("empty WritePlot: %v", err)
	}
}
