// Package epoch implements epoch-based reclamation (EBR) in the style of
// Fraser's "Practical lock-freedom" (the paper's reference [7], whose
// linearizable allocation manager the Leap-List evaluation uses).
//
// Under Go's garbage collector, reclamation is not needed for memory
// safety: a naked traversal holding a pointer to a replaced node keeps the
// node alive automatically, which is precisely the guarantee the paper
// obtains from Fraser's allocator. What the collector contributes here is
// the lifecycle accounting of the original system: retired nodes are held
// until every thread that might still observe them has passed through a
// grace period, at which point their deferred destructors run and the
// reclamation counters advance. The Leap-List routes its "Deallocate
// unneeded nodes" steps (paper Figures 6 and 7) through a Collector, making
// allocation behaviour observable in benchmarks and letting tests assert
// that replaced nodes are retired exactly once.
package epoch

import (
	"sync"
	"sync/atomic"
)

// epochs rotate through three buckets: retirees from epoch e may be
// reclaimed once the global epoch reaches e+2.
const buckets = 3

// Collector tracks a global epoch and the garbage retired under it.
type Collector struct {
	epoch atomic.Uint64

	mu    sync.Mutex
	parts []*Participant

	garbage [buckets]garbageBucket

	retired   atomic.Uint64
	reclaimed atomic.Uint64
}

type garbageBucket struct {
	mu  sync.Mutex
	fns []func()
}

// NewCollector returns an empty collector at epoch 1 (epoch 0 is reserved
// as the "not pinned" marker in participant words).
func NewCollector() *Collector {
	c := &Collector{}
	c.epoch.Store(1)
	return c
}

// Participant is one thread's (goroutine's) registration with a collector.
// A Participant must not be shared between goroutines.
type Participant struct {
	c *Collector
	// word holds 0 when not pinned, otherwise the epoch observed at Pin.
	word atomic.Uint64
}

// Register adds a participant. Participants are expected to be long-lived
// (one per worker goroutine); Unregister removes one.
func (c *Collector) Register() *Participant {
	p := &Participant{c: c}
	c.mu.Lock()
	c.parts = append(c.parts, p)
	c.mu.Unlock()
	return p
}

// Unregister removes a participant. The participant must be unpinned.
func (c *Collector) Unregister(p *Participant) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.parts {
		if c.parts[i] == p {
			c.parts = append(c.parts[:i], c.parts[i+1:]...)
			return
		}
	}
}

// Pin enters a critical section: retirees of the current epoch will not be
// reclaimed until this participant unpins. Pin/Unpin pairs are cheap (two
// atomic stores) and wrap each data-structure operation.
func (p *Participant) Pin() {
	p.word.Store(p.c.epoch.Load())
}

// Unpin leaves the critical section.
func (p *Participant) Unpin() {
	p.word.Store(0)
}

// Retire schedules fn to run once two epochs have passed, guaranteeing no
// pinned participant can still observe the retired object. fn may be nil
// when only the accounting is wanted.
func (c *Collector) Retire(fn func()) {
	e := c.epoch.Load()
	b := &c.garbage[e%buckets]
	b.mu.Lock()
	if fn != nil {
		b.fns = append(b.fns, fn)
	}
	b.mu.Unlock()
	c.retired.Add(1)
	c.tryAdvance()
}

// tryAdvance advances the epoch if every pinned participant has observed
// the current one, then reclaims the bucket that is now two epochs old.
func (c *Collector) tryAdvance() {
	e := c.epoch.Load()
	c.mu.Lock()
	for _, p := range c.parts {
		w := p.word.Load()
		if w != 0 && w != e {
			c.mu.Unlock()
			return
		}
	}
	advanced := c.epoch.CompareAndSwap(e, e+1)
	c.mu.Unlock()
	if !advanced {
		return
	}
	// Epoch is now e+1; bucket (e+2)%buckets holds retirees from e-1,
	// which no pinned participant can still observe.
	b := &c.garbage[(e+2)%buckets]
	b.mu.Lock()
	fns := b.fns
	b.fns = nil
	b.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
	if len(fns) > 0 {
		c.reclaimed.Add(uint64(len(fns)))
	}
}

// Flush forces reclamation of every pending retiree; callable only when no
// participant is pinned (for example at shutdown or between test phases).
func (c *Collector) Flush() {
	for i := 0; i < buckets; i++ {
		c.tryAdvance()
	}
}

// Epoch returns the current global epoch.
func (c *Collector) Epoch() uint64 {
	return c.epoch.Load()
}

// Counters returns (retired, reclaimed) totals. Retired counts every Retire
// call including nil destructors; reclaimed counts executed destructors.
func (c *Collector) Counters() (retired, reclaimed uint64) {
	return c.retired.Load(), c.reclaimed.Load()
}
