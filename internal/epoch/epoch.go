// Package epoch implements epoch-based reclamation (EBR) in the style of
// Fraser's "Practical lock-freedom" (the paper's reference [7], whose
// linearizable allocation manager the Leap-List evaluation uses).
//
// Under Go's garbage collector, reclamation is not needed for memory
// safety: a naked traversal holding a pointer to a replaced node keeps the
// node alive automatically, which is precisely the guarantee the paper
// obtains from Fraser's allocator. What the collector contributes is the
// lifecycle accounting of the original system — and, since the write-path
// overhaul, the safety argument for *reuse*: retired nodes donate their
// backing arrays and shells to allocation pools, and the grace period is
// what guarantees no concurrent naked reader can still observe a buffer
// when it is handed to a new node. Every Leap-List operation (lookup,
// range query, commit) runs pinned to a Participant; an object retired at
// epoch e is recycled only once the global epoch reaches e+2, by which
// time every operation that could have held a reference has unpinned.
//
// Two retirement paths exist:
//
//   - Participant.Retire(obj, fn): the hot path. The retiree is parked in
//     the participant's own epoch-tagged bucket with no locking at all;
//     epoch advancement is attempted only every few retirements, and each
//     participant runs the destructors of its own expired buckets. fn is
//     a static function (typically one per pool), so a retirement performs
//     zero allocations.
//   - Collector.Retire(fn): the legacy accounting path (global buckets,
//     one mutex round per call), kept for tests and coarse callers.
package epoch

import (
	"sync"
	"sync/atomic"
)

// epochs rotate through three buckets: retirees from epoch e may be
// reclaimed once the global epoch reaches e+2.
const buckets = 3

// advanceEvery rate-limits how often a retiring participant attempts the
// (mutex-protected, participant-scanning) epoch advance.
const advanceEvery = 8

// Collector tracks a global epoch and the garbage retired under it.
type Collector struct {
	// The epoch word is bumped by every successful advance and read by
	// every Pin; keep it off the cache line of the mutex-protected
	// registration fields below.
	epoch atomic.Uint64
	_     [56]byte

	mu    sync.Mutex
	parts []*Participant
	free  []*Participant // released participants available for Acquire

	garbage [buckets]garbageBucket

	retired   atomic.Uint64
	reclaimed atomic.Uint64
}

type garbageBucket struct {
	mu  sync.Mutex
	fns []func()
}

// retiree is one deferred (object, destructor) pair on the participant-
// local path.
type retiree struct {
	obj any
	fn  func(any)
}

// NewCollector returns an empty collector at epoch 1 (epoch 0 is reserved
// as the "not pinned" marker in participant words).
func NewCollector() *Collector {
	c := &Collector{}
	c.epoch.Store(1)
	return c
}

// Participant is one thread's (goroutine's) registration with a collector.
// A Participant must not be shared between goroutines. Participants are
// expected to be long-lived; callers that hand them around through object
// pools should Release rather than Unregister, so the registration (and
// any garbage still parked locally) is recycled instead of leaked.
type Participant struct {
	c *Collector
	// word holds 0 when not pinned, otherwise the epoch observed at Pin.
	word atomic.Uint64

	// Participant-local deferred garbage, indexed by retirement epoch mod
	// buckets. Only the owning goroutine touches these (Flush excepted,
	// under its quiescence precondition).
	local      [buckets][]retiree
	localEpoch [buckets]uint64
	pending    int
	sinceTry   int
}

// Register adds a new participant.
func (c *Collector) Register() *Participant {
	p := &Participant{c: c}
	c.mu.Lock()
	c.parts = append(c.parts, p)
	c.mu.Unlock()
	return p
}

// Acquire returns a released participant if one is available, registering
// a fresh one otherwise. Pair with Release.
func (c *Collector) Acquire() *Participant {
	c.mu.Lock()
	if n := len(c.free); n > 0 {
		p := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		c.mu.Unlock()
		return p
	}
	p := &Participant{c: c}
	c.parts = append(c.parts, p)
	c.mu.Unlock()
	return p
}

// Release returns an unpinned participant to the collector's free list;
// it stays registered (unpinned participants never block advancement) and
// keeps whatever local garbage it has parked until it is acquired and
// retires again.
func (c *Collector) Release(p *Participant) {
	c.mu.Lock()
	c.free = append(c.free, p)
	c.mu.Unlock()
}

// Unregister removes a participant. The participant must be unpinned.
// Any garbage still parked locally is abandoned to the Go collector
// (memory-safe; the reclaimed counter simply never sees it).
func (c *Collector) Unregister(p *Participant) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.parts {
		if c.parts[i] == p {
			c.parts = append(c.parts[:i], c.parts[i+1:]...)
			return
		}
	}
}

// Pin enters a critical section: retirees of the current epoch will not be
// reclaimed until this participant unpins. Pin/Unpin pairs are cheap (two
// atomic operations) and wrap each data-structure operation. Pin also
// opportunistically runs the destructors of this participant's own
// expired buckets, so recycled memory flows back on the path that
// produced it.
func (p *Participant) Pin() {
	e := p.c.epoch.Load()
	p.word.Store(e)
	if p.pending > 0 {
		p.collect(e)
	}
}

// Unpin leaves the critical section.
func (p *Participant) Unpin() {
	p.word.Store(0)
}

// Era returns the epoch this participant is pinned at (0 when unpinned).
// It is the conservative floor for anything observed during the pin: an
// object live at any point during it is retired at an epoch >= Era(),
// so its memory cannot be reclaimed before the global epoch reaches
// Era()+2. The Leap-List's cross-operation search fingers record this
// floor when saving a remembered node.
//
// Note that Era() alone cannot prove the global epoch has NOT moved: Pin
// loads the epoch before publishing the word, and in that window the
// still-unpinned participant does not block advancement, so the stored
// word may lag the global epoch by two or more. A later operation that
// wants to re-read memory remembered under an earlier era must instead
// compare the saved floor against a fresh Collector.Epoch() read taken
// after its own Pin: equality proves, by monotonicity, that the epoch
// never reached floor+2 (nothing retired at or after the save is
// reclaimed yet), and the newly pinned word — published before that
// read, hence <= it — blocks any future advance past floor+1 for the
// pin's duration.
func (p *Participant) Era() uint64 {
	return p.word.Load()
}

// Retire parks (obj, fn) in the participant's bucket for the current
// epoch; fn(obj) runs once two epochs have passed, guaranteeing no pinned
// participant can still observe obj. No locks are taken and nothing is
// allocated beyond bucket growth; every advanceEvery calls the global
// epoch advance is attempted. fn must not be nil (use Collector.Retire
// for accounting-only retirement).
func (p *Participant) Retire(obj any, fn func(any)) {
	fpHit(fpRetire)
	e := p.c.epoch.Load()
	b := int(e % buckets)
	if p.localEpoch[b] != e {
		// Whatever is parked here was retired at an epoch <= e-3, which
		// is already older than the grace period requires.
		p.reclaimBucket(b)
		p.localEpoch[b] = e
	}
	p.local[b] = append(p.local[b], retiree{obj: obj, fn: fn})
	p.pending++
	p.c.retired.Add(1)
	p.sinceTry++
	if p.sinceTry >= advanceEvery {
		p.sinceTry = 0
		p.c.tryAdvance()
		p.collect(p.c.epoch.Load())
	}
}

// collect runs the destructors of every local bucket whose epoch is at
// least two behind e.
func (p *Participant) collect(e uint64) {
	for b := 0; b < buckets; b++ {
		if len(p.local[b]) > 0 && p.localEpoch[b]+2 <= e {
			p.reclaimBucket(b)
		}
	}
}

// reclaimBucket runs and clears one local bucket.
func (p *Participant) reclaimBucket(b int) {
	rs := p.local[b]
	if len(rs) == 0 {
		return
	}
	for i := range rs {
		rs[i].fn(rs[i].obj)
		rs[i] = retiree{}
	}
	p.c.reclaimed.Add(uint64(len(rs)))
	p.pending -= len(rs)
	p.local[b] = rs[:0]
}

// Retire schedules fn to run once two epochs have passed, guaranteeing no
// pinned participant can still observe the retired object. fn may be nil
// when only the accounting is wanted. This is the legacy global-bucket
// path; hot callers should retire through a Participant.
func (c *Collector) Retire(fn func()) {
	e := c.epoch.Load()
	b := &c.garbage[e%buckets]
	b.mu.Lock()
	if fn != nil {
		b.fns = append(b.fns, fn)
	}
	b.mu.Unlock()
	c.retired.Add(1)
	c.tryAdvance()
}

// tryAdvance advances the epoch if every pinned participant has observed
// the current one, then reclaims the global bucket that is now two epochs
// old (participant-local buckets are reclaimed by their owners).
// Advancement is best-effort: if another goroutine holds the registration
// lock (likely attempting the same advance), give up immediately rather
// than serialize the hot retirement path behind a mutex convoy.
func (c *Collector) tryAdvance() {
	fpHit(fpAdvance)
	if !c.mu.TryLock() {
		return
	}
	e := c.epoch.Load()
	for _, p := range c.parts {
		w := p.word.Load()
		if w != 0 && w != e {
			c.mu.Unlock()
			return
		}
	}
	advanced := c.epoch.CompareAndSwap(e, e+1)
	c.mu.Unlock()
	if !advanced {
		return
	}
	// Epoch is now e+1; bucket (e+2)%buckets holds retirees from e-1,
	// which no pinned participant can still observe.
	b := &c.garbage[(e+2)%buckets]
	b.mu.Lock()
	fns := b.fns
	b.fns = nil
	b.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
	if len(fns) > 0 {
		c.reclaimed.Add(uint64(len(fns)))
	}
}

// Flush forces reclamation of every pending retiree whose grace period can
// be satisfied; callable only when no operation is in flight (for example
// at shutdown or between test phases) — it reads participant-local state
// that is otherwise owner-private. Participants still pinned keep blocking
// both advancement and their garbage, preserving Retire's guarantee.
func (c *Collector) Flush() {
	for i := 0; i < buckets; i++ {
		c.tryAdvance()
	}
	e := c.epoch.Load()
	c.mu.Lock()
	parts := make([]*Participant, len(c.parts))
	copy(parts, c.parts)
	c.mu.Unlock()
	for _, p := range parts {
		if p.pending > 0 {
			p.collect(e)
		}
	}
}

// Epoch returns the current global epoch.
func (c *Collector) Epoch() uint64 {
	return c.epoch.Load()
}

// Counters returns (retired, reclaimed) totals. Retired counts every Retire
// call including nil destructors; reclaimed counts executed destructors.
func (c *Collector) Counters() (retired, reclaimed uint64) {
	return c.retired.Load(), c.reclaimed.Load()
}
