package epoch

// Failpoint site names for the reclamation layer. Armed by the chaos
// suite under -tags failpoint; no-ops otherwise (see internal/failpoint).
const (
	// fpAdvance fires at Collector.tryAdvance entry, before the TryLock:
	// yields here widen the window where retirement outpaces the scan.
	fpAdvance = "epoch/advance"
	// fpRetire fires at Participant.Retire entry: yields here interleave
	// retirement with concurrent pin/unpin and advancement.
	fpRetire = "epoch/retire"
)
