package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireRunsAfterGracePeriod(t *testing.T) {
	c := NewCollector()
	var ran atomic.Int32
	c.Retire(func() { ran.Add(1) })
	// With no participants, epochs advance freely on subsequent activity.
	c.Flush()
	if got := ran.Load(); got != 1 {
		t.Fatalf("destructor ran %d times, want 1", got)
	}
	retired, reclaimed := c.Counters()
	if retired != 1 || reclaimed != 1 {
		t.Fatalf("counters = (%d, %d), want (1, 1)", retired, reclaimed)
	}
}

func TestPinnedParticipantBlocksReclamation(t *testing.T) {
	c := NewCollector()
	p := c.Register()
	defer c.Unregister(p)

	p.Pin()
	var ran atomic.Int32
	c.Retire(func() { ran.Add(1) })
	// The pinned participant observed the current epoch, so one advance is
	// allowed, but the bucket with our retiree needs two advances and the
	// second is blocked once the participant lags.
	start := c.Epoch()
	c.Flush()
	if e := c.Epoch(); e > start+1 {
		t.Fatalf("epoch advanced to %d while participant pinned at %d", e, start)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("destructor ran while participant pinned")
	}
	p.Unpin()
	c.Flush()
	if got := ran.Load(); got != 1 {
		t.Fatalf("destructor ran %d times after unpin, want 1", got)
	}
}

func TestNilDestructorCountsRetired(t *testing.T) {
	c := NewCollector()
	c.Retire(nil)
	c.Flush()
	retired, reclaimed := c.Counters()
	if retired != 1 {
		t.Fatalf("retired = %d, want 1", retired)
	}
	if reclaimed != 0 {
		t.Fatalf("reclaimed = %d, want 0 (nil destructors are accounting-only)", reclaimed)
	}
}

func TestConcurrentPinRetire(t *testing.T) {
	c := NewCollector()
	const workers = 8
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := c.Register()
			defer c.Unregister(p)
			for i := 0; i < iters; i++ {
				p.Pin()
				c.Retire(func() { ran.Add(1) })
				p.Unpin()
			}
		}()
	}
	wg.Wait()
	c.Flush()
	if got := ran.Load(); got != workers*int64(iters) {
		t.Fatalf("destructors ran %d times, want %d", got, workers*int64(iters))
	}
	retired, reclaimed := c.Counters()
	if retired != reclaimed || retired != uint64(workers*iters) {
		t.Fatalf("counters = (%d, %d), want both %d", retired, reclaimed, workers*iters)
	}
}

func TestUnregisterUnknownParticipantIsNoop(t *testing.T) {
	c := NewCollector()
	other := NewCollector()
	p := other.Register()
	c.Unregister(p) // must not panic or corrupt state
	c.Retire(nil)
	c.Flush()
	if retired, _ := c.Counters(); retired != 1 {
		t.Fatalf("retired = %d, want 1", retired)
	}
}
