//go:build !failpoint

package epoch

// Normal-build failpoint shim: inlines to nothing.
func fpHit(string) {}
