//go:build failpoint

package epoch

import "leaplist/internal/failpoint"

// fpHit evaluates a failpoint site on a path with no error return;
// armed errors are swallowed (pause/panic/yield still apply).
func fpHit(site string) { _ = failpoint.Eval(site) }
