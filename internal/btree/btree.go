// Package btree implements a concurrent blocking B+-tree, the "industry
// standard" index the Leap-List paper positions itself against (§1.1,
// citing Rodeh's shadowing B-trees and Braginsky-Petrank's lock-free
// B+-tree) and proposes to replace for in-memory database indexes (§4).
//
// Faithful to the paper's critique, this B+-tree has NO leaf chaining:
// "Both algorithms do not have leaf-chaining, forcing one to perform a
// sequence of lookups to collect the desired range." Consequently it
// offers exactly the two range-query strategies the paper dismisses:
//
//   - RangeLocked: hold the tree's read lock for the whole collection —
//     consistent, but "would imply holding a lock on the root for a long
//     time", starving writers;
//   - RangeLookups: a sequence of independent successor lookups — no
//     long-held lock, but not linearizable ("it seems difficult to get a
//     linearizable result"), and one full root-to-leaf descent per key.
//
// The tree itself is a textbook order-m B+-tree guarded by one
// sync.RWMutex, with proper delete rebalancing (borrow/merge). It backs
// the imdb comparison benchmarks and the abl-btree experiment.
package btree

import (
	"errors"
	"fmt"
	"sync"
)

// MaxKey aligns the key domain with the Leap-List core.
const MaxKey = ^uint64(0) - 1

// ErrKeyRange rejects the reserved key.
var ErrKeyRange = errors.New("btree: key out of range (2^64-1 is reserved)")

// DefaultOrder is the default maximum number of keys per node.
const DefaultOrder = 64

type node[V any] struct {
	leaf     bool
	keys     []uint64
	vals     []V        // leaves only; parallel to keys
	children []*node[V] // internal only; len = len(keys)+1
}

// Tree is a blocking concurrent B+-tree.
type Tree[V any] struct {
	mu    sync.RWMutex
	root  *node[V]
	order int
	size  int
}

// New creates an empty tree of the given order (max keys per node); order
// < 4 is raised to 4.
func New[V any](order int) *Tree[V] {
	if order < 4 {
		order = 4
	}
	return &Tree[V]{
		root:  &node[V]{leaf: true},
		order: order,
	}
}

// search returns the index of the first key >= k in keys.
func search(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value under k.
func (t *Tree[V]) Get(k uint64) (V, bool) {
	var zero V
	if k > MaxKey {
		return zero, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++ // separator equal to key: key lives in the right subtree
		}
		n = n.children[i]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	return zero, false
}

// Set inserts or overwrites k.
func (t *Tree[V]) Set(k uint64, v V) error {
	if k > MaxKey {
		return ErrKeyRange
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	inserted, midKey, right := t.insert(t.root, k, v)
	if inserted {
		t.size++
	}
	if right != nil {
		t.root = &node[V]{
			keys:     []uint64{midKey},
			children: []*node[V]{t.root, right},
		}
	}
	return nil
}

// insert adds (k, v) under n; on split it returns the separator key and
// the new right sibling.
func (t *Tree[V]) insert(n *node[V], k uint64, v V) (inserted bool, midKey uint64, right *node[V]) {
	if n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			return false, 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		if len(n.keys) > t.order {
			midKey, right = t.splitLeaf(n)
			return true, midKey, right
		}
		return true, 0, nil
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	inserted, childMid, childRight := t.insert(n.children[i], k, v)
	if childRight != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = childMid
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = childRight
		if len(n.keys) > t.order {
			midKey, right = t.splitInternal(n)
			return inserted, midKey, right
		}
	}
	return inserted, 0, nil
}

func (t *Tree[V]) splitLeaf(n *node[V]) (uint64, *node[V]) {
	mid := len(n.keys) / 2
	right := &node[V]{
		leaf: true,
		keys: append([]uint64(nil), n.keys[mid:]...),
		vals: append([]V(nil), n.vals[mid:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	// Separator = first key of the right leaf; keys >= separator go right.
	return right.keys[0], right
}

func (t *Tree[V]) splitInternal(n *node[V]) (uint64, *node[V]) {
	mid := len(n.keys) / 2
	midKey := n.keys[mid]
	right := &node[V]{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node[V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return midKey, right
}

// Delete removes k, reporting whether it was present.
func (t *Tree[V]) Delete(k uint64) (bool, error) {
	if k > MaxKey {
		return false, ErrKeyRange
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	deleted := t.remove(t.root, k)
	if deleted {
		t.size--
	}
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	return deleted, nil
}

func (t *Tree[V]) minKeys() int { return t.order / 2 }

// remove deletes k under n, rebalancing children that underflow.
func (t *Tree[V]) remove(n *node[V], k uint64) bool {
	if n.leaf {
		i := search(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	deleted := t.remove(n.children[i], k)
	if len(n.children[i].keys) < t.minKeys() {
		t.rebalance(n, i)
	}
	return deleted
}

// rebalance fixes an underflowing child i of n by borrowing from a
// sibling or merging with one.
func (t *Tree[V]) rebalance(n *node[V], i int) {
	child := n.children[i]
	// Borrow from the left sibling.
	if i > 0 {
		left := n.children[i-1]
		if len(left.keys) > t.minKeys() {
			if child.leaf {
				last := len(left.keys) - 1
				child.keys = append([]uint64{left.keys[last]}, child.keys...)
				child.vals = append([]V{left.vals[last]}, child.vals...)
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[i-1] = child.keys[0]
			} else {
				lastK := len(left.keys) - 1
				child.keys = append([]uint64{n.keys[i-1]}, child.keys...)
				child.children = append([]*node[V]{left.children[lastK+1]}, child.children...)
				n.keys[i-1] = left.keys[lastK]
				left.keys = left.keys[:lastK]
				left.children = left.children[:lastK+1]
			}
			return
		}
	}
	// Borrow from the right sibling.
	if i < len(n.children)-1 {
		right := n.children[i+1]
		if len(right.keys) > t.minKeys() {
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				n.keys[i] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[i])
				child.children = append(child.children, right.children[0])
				n.keys[i] = right.keys[0]
				right.keys = right.keys[1:]
				right.children = right.children[1:]
			}
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		t.merge(n, i-1)
	} else {
		t.merge(n, i)
	}
}

// merge folds child i+1 of n into child i.
func (t *Tree[V]) merge(n *node[V], i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Len returns the number of keys.
func (t *Tree[V]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// RangeLocked collects [lo, hi] under the tree's read lock: a consistent
// snapshot at the price of blocking every writer for the whole walk —
// the paper's "holding a lock on the root for a long time".
func (t *Tree[V]) RangeLocked(lo, hi uint64, emit func(k uint64, v V)) int {
	if lo > hi || lo > MaxKey {
		return 0
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.walk(t.root, lo, hi, emit)
}

func (t *Tree[V]) walk(n *node[V], lo, hi uint64, emit func(k uint64, v V)) int {
	count := 0
	if n.leaf {
		for i := search(n.keys, lo); i < len(n.keys) && n.keys[i] <= hi; i++ {
			if emit != nil {
				emit(n.keys[i], n.vals[i])
			}
			count++
		}
		return count
	}
	start := search(n.keys, lo)
	for i := start; i <= len(n.keys); i++ {
		count += t.walk(n.children[i], lo, hi, emit)
		if i < len(n.keys) && n.keys[i] > hi {
			break
		}
	}
	return count
}

// NextAbove returns the smallest key >= k and its value; the building
// block of lookup-at-a-time range collection.
func (t *Tree[V]) NextAbove(k uint64) (uint64, V, bool) {
	var zero V
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	// Stack of (node, child index) would let us backtrack; since keys
	// bound subtrees, descending toward k and falling back to the leftmost
	// key of the next subtree is equivalent to a straight descent that
	// tracks the best candidate seen so far.
	var bestKey uint64
	var bestVal V
	haveBest := false
	for {
		i := search(n.keys, k)
		if n.leaf {
			if i < len(n.keys) {
				return n.keys[i], n.vals[i], true
			}
			if haveBest {
				return bestKey, bestVal, true
			}
			return 0, zero, false
		}
		if i < len(n.keys) && n.keys[i] == k {
			i++
		}
		// Separator n.keys[i] (if any) is a key >= k that lives in the
		// subtree right of it; remember the leftmost key of that subtree
		// as a fallback by recording the separator's subtree descent.
		if i < len(n.keys) {
			lm := leftmostLeaf(n.children[i+1])
			if len(lm.keys) > 0 && (!haveBest || lm.keys[0] < bestKey) {
				bestKey, bestVal, haveBest = lm.keys[0], lm.vals[0], true
			}
		}
		n = n.children[i]
	}
}

func leftmostLeaf[V any](n *node[V]) *node[V] {
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// RangeLookups collects [lo, hi] as a sequence of independent NextAbove
// calls — the no-leaf-chaining strategy the paper criticizes: each key
// costs a full descent, and the result is NOT a consistent snapshot
// (writers may interleave between lookups).
func (t *Tree[V]) RangeLookups(lo, hi uint64, emit func(k uint64, v V)) int {
	if lo > hi || lo > MaxKey {
		return 0
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	count := 0
	k := lo
	for {
		key, val, ok := t.NextAbove(k)
		if !ok || key > hi {
			return count
		}
		if emit != nil {
			emit(key, val)
		}
		count++
		if key == ^uint64(0) {
			return count
		}
		k = key + 1
	}
}

// CheckInvariants validates the structural invariants of a quiescent
// tree: key ordering within and across nodes, child counts, uniform leaf
// depth, and occupancy bounds (root excepted).
func (t *Tree[V]) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	depth := -1
	count := 0
	err := t.check(t.root, 0, ^uint64(0), 0, true, &depth, &count)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d keys reachable", t.size, count)
	}
	return nil
}

func (t *Tree[V]) check(n *node[V], lo, hi uint64, depth int, isRoot bool, leafDepth, count *int) error {
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return fmt.Errorf("btree: keys out of order at depth %d", depth)
		}
	}
	if len(n.keys) > t.order {
		return fmt.Errorf("btree: node overflow (%d > %d)", len(n.keys), t.order)
	}
	if !isRoot && len(n.keys) < t.minKeys() {
		return fmt.Errorf("btree: node underflow (%d < %d) at depth %d", len(n.keys), t.minKeys(), depth)
	}
	if n.leaf {
		if *leafDepth == -1 {
			*leafDepth = depth
		} else if *leafDepth != depth {
			return fmt.Errorf("btree: leaves at depths %d and %d", *leafDepth, depth)
		}
		for _, k := range n.keys {
			if k < lo || k >= hi {
				return fmt.Errorf("btree: leaf key %d outside [%d,%d)", k, lo, hi)
			}
		}
		*count += len(n.keys)
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: %d children for %d keys", len(n.children), len(n.keys))
	}
	childLo := lo
	for i, c := range n.children {
		childHi := hi
		if i < len(n.keys) {
			childHi = n.keys[i]
		}
		if err := t.check(c, childLo, childHi, depth+1, false, leafDepth, count); err != nil {
			return err
		}
		childLo = childHi
	}
	return nil
}
