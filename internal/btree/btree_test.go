package btree

import (
	"errors"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New[uint64](8)
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty returned ok")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if deleted, err := tr.Delete(5); err != nil || deleted {
		t.Fatalf("Delete = (%v, %v)", deleted, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetDelete(t *testing.T) {
	tr := New[uint64](4) // tiny order maximizes splits/merges
	const n = 500
	for i := uint64(0); i < n; i++ {
		k := (i * 37) % 1000 // scrambled order
		if err := tr.Set(k, k*2); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		k := (i * 37) % 1000
		v, ok := tr.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
	}
	for i := uint64(0); i < n; i += 2 {
		k := (i * 37) % 1000
		deleted, err := tr.Delete(k)
		if err != nil || !deleted {
			t.Fatalf("Delete(%d) = (%v, %v)", k, deleted, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Delete(%d): %v", k, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		k := (i * 37) % 1000
		_, ok := tr.Get(k)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", k, ok, want)
		}
	}
}

func TestOverwrite(t *testing.T) {
	tr := New[string](4)
	for _, v := range []string{"a", "b", "c"} {
		if err := tr.Set(7, v); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if v, ok := tr.Get(7); !ok || v != "c" {
		t.Fatalf("Get = (%q, %v)", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestKeyRange(t *testing.T) {
	tr := New[int](8)
	if err := tr.Set(^uint64(0), 1); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("Set = %v", err)
	}
	if _, err := tr.Delete(^uint64(0)); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("Delete = %v", err)
	}
	if err := tr.Set(MaxKey, 42); err != nil {
		t.Fatalf("Set(MaxKey): %v", err)
	}
	if v, ok := tr.Get(MaxKey); !ok || v != 42 {
		t.Fatalf("Get(MaxKey) = (%d, %v)", v, ok)
	}
}

func TestRangeStrategiesSequentialEquivalence(t *testing.T) {
	tr := New[uint64](8)
	for i := uint64(0); i < 200; i += 2 {
		if err := tr.Set(i, i+1); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	for _, bounds := range [][2]uint64{{0, 199}, {10, 20}, {9, 21}, {50, 50}, {51, 51}, {300, 400}, {20, 10}} {
		lo, hi := bounds[0], bounds[1]
		var locked, lookups []uint64
		nLocked := tr.RangeLocked(lo, hi, func(k, v uint64) { locked = append(locked, k) })
		nLookups := tr.RangeLookups(lo, hi, func(k, v uint64) { lookups = append(lookups, k) })
		if nLocked != nLookups || len(locked) != len(lookups) {
			t.Fatalf("[%d,%d]: locked %v vs lookups %v", lo, hi, locked, lookups)
		}
		for i := range locked {
			if locked[i] != lookups[i] {
				t.Fatalf("[%d,%d]: locked %v vs lookups %v", lo, hi, locked, lookups)
			}
		}
	}
}

func TestNextAbove(t *testing.T) {
	tr := New[uint64](4)
	keys := []uint64{5, 10, 17, 23, 99, 1000}
	for _, k := range keys {
		if err := tr.Set(k, k); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	tests := []struct {
		probe  uint64
		want   uint64
		wantOK bool
	}{
		{0, 5, true}, {5, 5, true}, {6, 10, true}, {11, 17, true},
		{23, 23, true}, {24, 99, true}, {100, 1000, true}, {1001, 0, false},
	}
	for _, tc := range tests {
		k, _, ok := tr.NextAbove(tc.probe)
		if ok != tc.wantOK || (ok && k != tc.want) {
			t.Fatalf("NextAbove(%d) = (%d, %v), want (%d, %v)", tc.probe, k, ok, tc.want, tc.wantOK)
		}
	}
}

func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, order8 bool) bool {
		order := 4
		if order8 {
			order = 8
		}
		tr := New[uint64](order)
		model := map[uint64]uint64{}
		for _, raw := range ops {
			k := uint64(raw % 128)
			switch raw % 3 {
			case 0:
				if err := tr.Set(k, uint64(raw)); err != nil {
					return false
				}
				model[k] = uint64(raw)
			case 1:
				deleted, err := tr.Delete(k)
				if err != nil {
					return false
				}
				if _, has := model[k]; has != deleted {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := tr.Get(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
		}
		if tr.CheckInvariants() != nil || tr.Len() != len(model) {
			return false
		}
		var got []uint64
		tr.RangeLocked(0, MaxKey, func(k, v uint64) { got = append(got, k) })
		want := make([]uint64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 25
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	tr := New[uint64](32)
	const workers = 8
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, 31))
			for i := 0; i < iters; i++ {
				k := r.Uint64N(512)
				switch r.IntN(10) {
				case 0, 1, 2, 3:
					if err := tr.Set(k, k*3); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
				case 4, 5:
					if _, err := tr.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				case 6, 7:
					if v, ok := tr.Get(k); ok && v != k*3 {
						t.Errorf("Get(%d) = %d", k, v)
						return
					}
				case 8:
					tr.RangeLocked(k, k+64, func(k, v uint64) {
						if v != k*3 {
							t.Errorf("locked range value for %d = %d", k, v)
						}
					})
				default:
					tr.RangeLookups(k, k+64, func(k, v uint64) {
						if v != k*3 {
							t.Errorf("lookup range value for %d = %d", k, v)
						}
					})
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendingDescendingBulk(t *testing.T) {
	for _, desc := range []bool{false, true} {
		tr := New[uint64](6)
		const n = 2000
		for i := 0; i < n; i++ {
			k := uint64(i)
			if desc {
				k = uint64(n - 1 - i)
			}
			if err := tr.Set(k, k); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("desc=%v: %v", desc, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d", tr.Len())
		}
		for i := 0; i < n; i++ {
			if deleted, _ := tr.Delete(uint64(i)); !deleted {
				t.Fatalf("Delete(%d) missed", i)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after drain desc=%v: %v", desc, err)
		}
	}
}
