//go:build !failpoint

package failpoint

// Enabled reports whether this build links the live registry.
const Enabled = false

// Eval is a no-op in normal builds; the compiler inlines it (and the
// per-package fpEval/fpHit shims around it) to nothing, so instrumented
// sites cost zero on the hot path.
func Eval(string) error { return nil }

// The rest of the API is stubbed so tooling that references it (chaos
// harness helpers, scripts) compiles in both modes.

func Arm(string, Spec)    {}
func Disarm(string)       {}
func Release(string)      {}
func Reset()              {}
func Hits(string) uint64  { return 0 }
func PausedAt(string) int { return 0 }
func Sites() []string     { return nil }
func Script(string) error { return nil }
