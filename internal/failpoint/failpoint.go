//go:build failpoint

package failpoint

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Enabled reports whether this build links the live registry. Tests use
// it to skip suites that need injection when built without the tag.
const Enabled = true

// site is one named injection point's registry entry.
type site struct {
	hits    uint64 // total Eval calls, armed or not
	armed   bool
	spec    Spec
	seen    uint64        // Eval calls since Arm (for Spec.After)
	fired   uint64        // action firings since Arm (for Spec.Count)
	pause   chan struct{} // ActPause: Eval blocks until closed
	waiting int           // goroutines currently blocked in pause
}

var (
	mu    sync.Mutex
	sites = map[string]*site{}
)

func get(name string) *site {
	s := sites[name]
	if s == nil {
		s = &site{}
		sites[name] = s
	}
	return s
}

// Eval is the per-site hook the pipeline shims call. It always counts
// the hit; if the site is armed and its After/Count window admits this
// evaluation, the armed action fires. The returned error is non-nil
// only for ActError.
func Eval(name string) error {
	mu.Lock()
	s := get(name)
	s.hits++
	if !s.armed {
		mu.Unlock()
		return nil
	}
	s.seen++
	if s.seen <= s.spec.After ||
		(s.spec.Count > 0 && s.fired >= s.spec.Count) {
		mu.Unlock()
		return nil
	}
	s.fired++
	spec := s.spec
	pause := s.pause
	if spec.Action == ActPause {
		s.waiting++
	}
	mu.Unlock()

	switch spec.Action {
	case ActError:
		if spec.Err != nil {
			return spec.Err
		}
		return ErrInjected
	case ActPanic:
		panic("failpoint: " + name)
	case ActPause:
		<-pause
		mu.Lock()
		s.waiting--
		mu.Unlock()
	case ActYield:
		n := spec.Yield
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			runtime.Gosched()
		}
	}
	return nil
}

// Arm installs spec at the named site, resetting its After/Count window
// (but not its lifetime hit counter). Arming over a paused site releases
// the old waiters first.
func Arm(name string, spec Spec) {
	mu.Lock()
	s := get(name)
	if s.pause != nil {
		close(s.pause)
		s.pause = nil
	}
	s.armed = spec.Action != ActOff
	s.spec = spec
	s.seen, s.fired = 0, 0
	if spec.Action == ActPause {
		s.pause = make(chan struct{})
	}
	mu.Unlock()
}

// Disarm turns the named site back into a counting no-op, releasing any
// paused goroutines.
func Disarm(name string) { Arm(name, Spec{}) }

// Release unblocks every goroutine currently paused at the named site
// and re-arms the pause for later arrivals (subject to the remaining
// Count window).
func Release(name string) {
	mu.Lock()
	s := get(name)
	if s.pause != nil {
		close(s.pause)
		s.pause = make(chan struct{})
	}
	mu.Unlock()
}

// Reset disarms every site and zeroes all counters. Chaos tests call it
// between scenarios so coverage assertions see only their own hits.
func Reset() {
	mu.Lock()
	for _, s := range sites {
		if s.pause != nil {
			close(s.pause)
		}
	}
	sites = map[string]*site{}
	mu.Unlock()
}

// Hits returns the lifetime evaluation count of the named site (armed
// or not) since the last Reset.
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.hits
	}
	return 0
}

// PausedAt returns how many goroutines are currently blocked at the
// named ActPause site. Tests poll it to rendezvous with a stalled
// publish before probing the frozen state.
func PausedAt(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.waiting
	}
	return 0
}

// Sites returns the names of every site evaluated or armed since the
// last Reset, sorted.
func Sites() []string {
	mu.Lock()
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	mu.Unlock()
	sort.Strings(names)
	return names
}

// Script arms sites from a deterministic one-line description:
//
//	site=action;site=action(k:v,k:v);...
//
// where action is off|error|panic|pause|yield and the optional keys are
// after:<n>, count:<n>, yield:<n>. Example:
//
//	core/lt/prepare=error(count:1);shard/2pc/abort-leg=yield(yield:8)
//
// Script exists so a chaos scenario — or a future env-var hook — can be
// stated as data and replayed exactly.
func Script(script string) error {
	for _, term := range strings.Split(script, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, rest, ok := strings.Cut(term, "=")
		if !ok || name == "" {
			return fmt.Errorf("failpoint: bad term %q (want site=action)", term)
		}
		spec, err := parseSpec(rest)
		if err != nil {
			return fmt.Errorf("failpoint: site %q: %w", name, err)
		}
		Arm(name, spec)
	}
	return nil
}

func parseSpec(s string) (Spec, error) {
	var spec Spec
	action := s
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return spec, fmt.Errorf("unbalanced args in %q", s)
		}
		action = s[:i]
		for _, kv := range strings.Split(s[i+1:len(s)-1], ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), ":")
			if !ok {
				return spec, fmt.Errorf("bad arg %q (want k:v)", kv)
			}
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad arg %q: %v", kv, err)
			}
			switch strings.TrimSpace(k) {
			case "after":
				spec.After = n
			case "count":
				spec.Count = n
			case "yield":
				spec.Yield = int(n)
			default:
				return spec, fmt.Errorf("unknown arg key %q", k)
			}
		}
	}
	switch action {
	case "off":
		spec.Action = ActOff
	case "error":
		spec.Action = ActError
	case "panic":
		spec.Action = ActPanic
	case "pause":
		spec.Action = ActPause
	case "yield":
		spec.Action = ActYield
	default:
		return spec, fmt.Errorf("unknown action %q", action)
	}
	return spec, nil
}
