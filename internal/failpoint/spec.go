// Package failpoint is a build-tag-gated fault injection framework for
// the commit pipeline. Normal builds compile every site to a no-op: the
// per-package shims (fpEval/fpHit) call the stub Eval below, which the
// compiler inlines to nothing, so the pipeline pays zero cost. Under
// `go test -tags failpoint` the real registry (failpoint.go) is linked
// instead and each named site can be armed to return an error, panic,
// pause until released, or yield the scheduler N times — with per-site
// hit counters so a chaos suite can assert coverage, and a script
// parser (Script) for arming many sites deterministically.
//
// Sites are plain string names, declared as constants next to the code
// they instrument (see failpoints.go in internal/core and the root
// package). The convention is <layer>/<variant-or-subsystem>/<phase>,
// e.g. "core/lt/prepare" or "shard/2pc/abort-leg".
//
// This file is untagged: the Action/Spec vocabulary and ErrInjected are
// shared by both builds so tests and tools can reference them without
// caring which registry is linked.
package failpoint

import "errors"

// ErrInjected is the default error returned by a site armed with
// ActError and no explicit Err.
var ErrInjected = errors.New("failpoint: injected error")

// Action is what an armed site does when evaluated.
type Action int

const (
	// ActOff leaves the site disarmed (hit counting only).
	ActOff Action = iota
	// ActError makes Eval return Spec.Err (or ErrInjected).
	ActError
	// ActPanic makes Eval panic with "failpoint: <site>".
	ActPanic
	// ActPause blocks Eval until Release(site) / Disarm / Reset.
	ActPause
	// ActYield calls runtime.Gosched() Spec.Yield times (min 1),
	// widening race windows without changing control flow.
	ActYield
)

// String names the action for logs and script round-trips.
func (a Action) String() string {
	switch a {
	case ActOff:
		return "off"
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActPause:
		return "pause"
	case ActYield:
		return "yield"
	}
	return "unknown"
}

// Spec configures an armed site.
type Spec struct {
	Action Action
	// Err is returned by ActError; nil means ErrInjected.
	Err error
	// After skips the first After evaluations before the action fires.
	After uint64
	// Count limits how many evaluations fire the action (0 = unlimited).
	// After the Count-th firing the site keeps counting hits but acts
	// as ActOff.
	Count uint64
	// Yield is the Gosched repetition for ActYield (min 1).
	Yield int
}
