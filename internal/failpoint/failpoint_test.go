//go:build failpoint

package failpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestEvalDisarmedCountsHits(t *testing.T) {
	Reset()
	for i := 0; i < 3; i++ {
		if err := Eval("x"); err != nil {
			t.Fatalf("disarmed Eval: %v", err)
		}
	}
	if got := Hits("x"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestErrorAfterCount(t *testing.T) {
	Reset()
	want := errors.New("boom")
	Arm("x", Spec{Action: ActError, Err: want, After: 2, Count: 1})
	for i := 0; i < 2; i++ {
		if err := Eval("x"); err != nil {
			t.Fatalf("eval %d inside After window: %v", i, err)
		}
	}
	if err := Eval("x"); err != want {
		t.Fatalf("eval 3 = %v, want %v", err, want)
	}
	// Count:1 exhausted — back to no-op, hits keep counting.
	if err := Eval("x"); err != nil {
		t.Fatalf("eval past Count: %v", err)
	}
	if got := Hits("x"); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
}

func TestDefaultErrIsErrInjected(t *testing.T) {
	Reset()
	Arm("x", Spec{Action: ActError})
	if err := Eval("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval = %v, want ErrInjected", err)
	}
}

func TestPanic(t *testing.T) {
	Reset()
	Arm("x", Spec{Action: ActPanic})
	defer func() {
		if r := recover(); r != "failpoint: x" {
			t.Fatalf("recover = %v", r)
		}
	}()
	Eval("x")
	t.Fatal("no panic")
}

func TestPauseAndRelease(t *testing.T) {
	Reset()
	Arm("x", Spec{Action: ActPause, Count: 1})
	done := make(chan struct{})
	go func() {
		Eval("x")
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for PausedAt("x") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("goroutine never paused")
		}
		time.Sleep(time.Millisecond)
	}
	Release("x")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not unblock")
	}
	// Count:1 used up — later arrivals sail through.
	if err := Eval("x"); err != nil {
		t.Fatalf("post-Count Eval: %v", err)
	}
}

func TestDisarmReleasesPaused(t *testing.T) {
	Reset()
	Arm("x", Spec{Action: ActPause})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Eval("x")
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for PausedAt("x") != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("paused = %d, want 3", PausedAt("x"))
		}
		time.Sleep(time.Millisecond)
	}
	Disarm("x")
	wg.Wait()
}

func TestYieldKeepsControlFlow(t *testing.T) {
	Reset()
	Arm("x", Spec{Action: ActYield, Yield: 4})
	if err := Eval("x"); err != nil {
		t.Fatalf("yield Eval: %v", err)
	}
}

func TestScript(t *testing.T) {
	Reset()
	err := Script("a=error(count:2); b=yield(yield:3); c=pause(after:1); d=off")
	if err != nil {
		t.Fatal(err)
	}
	if err := Eval("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a: %v", err)
	}
	if err := Eval("c"); err != nil { // After:1 — first eval passes
		t.Fatalf("c: %v", err)
	}
	if err := Eval("d"); err != nil {
		t.Fatalf("d: %v", err)
	}
	got := Sites()
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Sites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"=error", "a=explode", "a=error(count)", "a=error(count:1"} {
		if err := Script(bad); err == nil {
			t.Fatalf("Script(%q) accepted", bad)
		}
	}
}
