// Package latency provides a lock-free log-linear histogram for recording
// operation latencies in the benchmark harness. Throughput (ops/sec) is
// the paper's headline metric, but per-operation-type latency percentiles
// are what expose the mechanisms behind it — e.g. that a Leap-LT lookup
// has a short flat tail (no transactions to retry) while a Leap-tm update
// under contention has a long one (abort storms).
//
// The histogram covers [1ns, ~17s] with 64 buckets per power of two
// (≤1.6% relative error), using atomic counters so recorders never
// contend on anything but their own cache traffic.
package latency

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

const (
	// subBits buckets per octave: 2^6 = 64 sub-buckets.
	subBits = 6
	// octaves of nanoseconds covered: 2^34 ns ≈ 17 s.
	octaves = 34
	buckets = octaves << subBits
)

// Histogram records durations; the zero value is ready to use.
type Histogram struct {
	counts [buckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds; saturating in practice (uint64)
	max    atomic.Uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	exp := 63 - bits.LeadingZeros64(ns)
	if exp >= octaves {
		return buckets - 1
	}
	var sub uint64
	if exp > subBits {
		sub = (ns >> (uint(exp) - subBits)) & ((1 << subBits) - 1)
	} else {
		sub = (ns << (subBits - uint(exp))) & ((1 << subBits) - 1)
	}
	return exp<<subBits | int(sub)
}

// lowerBound returns the smallest duration mapped to bucket i.
func lowerBound(i int) time.Duration {
	exp := i >> subBits
	sub := uint64(i & ((1 << subBits) - 1))
	base := uint64(1) << uint(exp)
	var off uint64
	if exp > subBits {
		off = sub << (uint(exp) - subBits)
	} else {
		off = sub >> (subBits - uint(exp))
	}
	return time.Duration(base + off)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sum.Add(uint64(d.Nanoseconds()))
	for {
		cur := h.max.Load()
		if uint64(d) <= cur || h.max.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	return h.total.Load()
}

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load())
}

// Quantile returns the q-quantile (0 < q <= 1) as the lower bound of the
// bucket containing it; q outside (0,1] returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q <= 0 || q > 1 {
		return 0
	}
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < buckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return lowerBound(i)
		}
	}
	return h.Max()
}

// Merge adds other's observations into h. Not atomic with respect to
// concurrent recording into other; merge at quiescence.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < buckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	for {
		cur, om := h.max.Load(), other.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Reset zeroes the histogram. Not safe against concurrent Record.
func (h *Histogram) Reset() {
	for i := 0; i < buckets; i++ {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Summary is a fixed set of percentiles for reporting.
type Summary struct {
	Count         uint64
	Mean          time.Duration
	P50, P90, P99 time.Duration
	P999          time.Duration
	Max           time.Duration
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s p99.9=%s max=%s",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}

// Format renders a named set of summaries as an aligned table.
func Format(rows map[string]Summary) string {
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s %10s %10s\n",
		"op", "count", "mean", "p50", "p99", "p99.9", "max")
	for _, name := range names {
		s := rows[name]
		fmt.Fprintf(&b, "%-14s %10d %10s %10s %10s %10s %10s\n",
			name, s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
	}
	return b.String()
}
