package latency

import (
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketMonotonicity(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{
		1, 2, 3, 63, 64, 65, 100, 1000, 4096, 65535,
		time.Millisecond, time.Second, 10 * time.Second,
	} {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf(%v) = %d < previous %d", d, b, prev)
		}
		if lb := lowerBound(b); lb > d {
			t.Fatalf("lowerBound(%d) = %v > recorded %v", b, lb, d)
		}
		prev = b
	}
}

func TestBucketRelativeError(t *testing.T) {
	// For durations >= 64ns the bucket lower bound must be within ~1.6%.
	for _, ns := range []int64{64, 100, 999, 12345, 1_000_000, 123_456_789} {
		d := time.Duration(ns)
		lb := lowerBound(bucketOf(d))
		err := float64(d-lb) / float64(d)
		if err < 0 || err > 0.017 {
			t.Fatalf("relative error for %v: %f (lb=%v)", d, err, lb)
		}
	}
}

func TestZeroAndHuge(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(100 * time.Second) // beyond the last octave: clamps
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 100*time.Second {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.9, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		errRel := float64(got-tc.want) / float64(tc.want)
		if errRel < -0.03 || errRel > 0.03 {
			t.Fatalf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if h.Quantile(0) != 0 || h.Quantile(1.5) != 0 {
		t.Fatal("out-of-range quantiles must return 0")
	}
	if m := h.Mean(); m < 480*time.Microsecond || m > 520*time.Microsecond {
		t.Fatalf("Mean = %v", m)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("Count after merge = %d", a.Count())
	}
	if a.Max() != 3*time.Millisecond {
		t.Fatalf("Max after merge = %v", a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers = 8
	const each = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, 9))
			for i := 0; i < each; i++ {
				h.Record(time.Duration(1 + r.Uint64N(uint64(time.Millisecond))))
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*each)
	}
	if h.Quantile(0.5) == 0 {
		t.Fatal("median is zero after recording")
	}
}

func TestSummaryAndFormat(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i+1) * time.Microsecond)
	}
	s := h.Summarize()
	if s.Count != 100 || s.P50 == 0 || s.Max != 100*time.Microsecond {
		t.Fatalf("Summary = %+v", s)
	}
	out := Format(map[string]Summary{"lookup": s, "update": s})
	if !strings.Contains(out, "lookup") || !strings.Contains(out, "update") || !strings.Contains(out, "p99") {
		t.Fatalf("Format output missing fields:\n%s", out)
	}
}
