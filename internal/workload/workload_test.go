package workload

import (
	"math"
	"testing"
)

func TestMixValidate(t *testing.T) {
	tests := []struct {
		name    string
		mix     Mix
		wantErr bool
	}{
		{"all modify", Mix{ModifyPct: 100}, false},
		{"paper read mix", Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20}, false},
		{"sums low", Mix{LookupPct: 50}, true},
		{"sums high", Mix{LookupPct: 60, RangePct: 60}, true},
		{"negative", Mix{LookupPct: -10, ModifyPct: 110}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.mix.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%+v) = %v, wantErr=%v", tc.mix, err, tc.wantErr)
			}
		})
	}
}

func TestGeneratorRejectsBadConfig(t *testing.T) {
	if _, err := NewGenerator(Config{Mix: Mix{ModifyPct: 100}}); err == nil {
		t.Fatal("zero key space accepted")
	}
	if _, err := NewGenerator(Config{Mix: Mix{ModifyPct: 90}, KeySpace: 10}); err == nil {
		t.Fatal("invalid mix accepted")
	}
	if _, err := NewGenerator(Config{Mix: Mix{ModifyPct: 100}, KeySpace: 10, RangeMin: 5, RangeMax: 1}); err == nil {
		t.Fatal("inverted span accepted")
	}
}

func TestGeneratorDistribution(t *testing.T) {
	mix := Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20}
	g, err := NewGenerator(Config{Mix: mix, KeySpace: 100_000, RangeMin: 1000, RangeMax: 2000, Seed: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	const n = 100_000
	counts := map[Op]int{}
	for i := 0; i < n; i++ {
		op, key, _, lo, hi := g.Next()
		counts[op]++
		switch op {
		case OpRange:
			span := hi - lo
			if span < 1000 || span > 2000 {
				t.Fatalf("range span %d outside [1000,2000]", span)
			}
			if lo >= 100_000 {
				t.Fatalf("range lo %d outside key space", lo)
			}
		default:
			if key >= 100_000 {
				t.Fatalf("key %d outside key space", key)
			}
		}
	}
	check := func(op Op, wantPct float64) {
		got := 100 * float64(counts[op]) / n
		if math.Abs(got-wantPct) > 1.5 {
			t.Errorf("%v: %.1f%%, want ~%.0f%%", op, got, wantPct)
		}
	}
	check(OpLookup, 40)
	check(OpRange, 40)
	check(OpUpdate, 10)
	check(OpRemove, 10)
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := Config{Mix: Mix{LookupPct: 50, ModifyPct: 50}, KeySpace: 1000, RangeMin: 1, RangeMax: 2, Seed: 42}
	g1, _ := NewGenerator(cfg)
	g2, _ := NewGenerator(cfg)
	for i := 0; i < 1000; i++ {
		op1, k1, v1, lo1, hi1 := g1.Next()
		op2, k2, v2, lo2, hi2 := g2.Next()
		if op1 != op2 || k1 != k2 || v1 != v2 || lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpLookup: "lookup", OpRange: "range-query",
		OpUpdate: "update", OpRemove: "remove", Op(9): "Op(9)",
	} {
		if got := op.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestLocalGeneratorLocality(t *testing.T) {
	g, err := NewLocalGenerator(LocalConfig{
		KeySpace: 1 << 20, Window: 256, Stride: 4, ZipfS: 1.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := g.Next()
	near := 0
	const draws = 10_000
	for i := 1; i < draws; i++ {
		k := g.Next()
		d := k - prev
		if prev > k {
			d = prev - k
		}
		if d <= 512 {
			near++
		}
		prev = k
	}
	// The stream is locality-skewed by construction: nearly every key is
	// within two windows of its predecessor (the rare far jump is the
	// key-space wrap).
	if near < draws*9/10 {
		t.Fatalf("only %d/%d consecutive draws were near each other", near, draws)
	}
}

func TestLocalGeneratorAscendingStride(t *testing.T) {
	g, err := NewLocalGenerator(LocalConfig{KeySpace: 1 << 30, Stride: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got, want := g.Next(), uint64(i*3); got != want {
			t.Fatalf("draw %d = %d, want %d (pure ascending stride)", i, got, want)
		}
	}
}

func TestLocalGeneratorDeterminismAndBatch(t *testing.T) {
	cfg := LocalConfig{KeySpace: 1 << 16, Window: 64, Stride: 2, ZipfS: 0.9, Seed: 5}
	g1, _ := NewLocalGenerator(cfg)
	g2, _ := NewLocalGenerator(cfg)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	ks := make([]uint64, 8)
	g1.Batch(ks)
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] && ks[i-1] < cfg.KeySpace-cfg.Stride*8 {
			t.Fatalf("batch not ascending at %d: %v", i, ks)
		}
	}
	if _, err := NewLocalGenerator(LocalConfig{}); err == nil {
		t.Fatal("zero key space accepted")
	}
	if _, err := NewLocalGenerator(LocalConfig{KeySpace: 1, ZipfS: -1}); err == nil {
		t.Fatal("negative Zipf exponent accepted")
	}
}

func TestScanHeavyGenerator(t *testing.T) {
	const keySpace = 1 << 16
	g, err := NewScanHeavyGenerator(keySpace, 7)
	if err != nil {
		t.Fatalf("NewScanHeavyGenerator: %v", err)
	}
	counts := make(map[Op]int)
	for i := 0; i < 20_000; i++ {
		op, _, _, lo, hi := g.Next()
		counts[op]++
		if op == OpRange {
			if span := hi - lo; span < keySpace/4 || span > keySpace/2 {
				t.Fatalf("range span %d outside [KeySpace/4, KeySpace/2]", span)
			}
		}
	}
	if counts[OpRange] < 12_000 {
		t.Fatalf("scan-heavy stream produced only %d range ops of 20000", counts[OpRange])
	}
	if counts[OpUpdate]+counts[OpRemove] == 0 {
		t.Fatal("scan-heavy stream produced no modify churn")
	}
}
