// Package workload generates the operation streams of the paper's
// evaluation (§3): mixes of lookups, range queries and modifications
// (updates and removes in equal parts) over a uniform key space, with
// range-query spans drawn uniformly from [1000, 2000].
//
// Beyond the paper's uniform streams, LocalGenerator produces
// locality-skewed key streams (Zipf over a striding window, degenerating
// to pure ascending strides) — the access patterns the finger-search
// acceleration exists for, used by BenchmarkLocality for its fingers
// on/off A/B comparison.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Op is one generated operation kind.
type Op int

const (
	OpLookup Op = iota
	OpRange
	OpUpdate
	OpRemove
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpRange:
		return "range-query"
	case OpUpdate:
		return "update"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Mix is an operation mixture in percent. Modify is split evenly between
// updates and removes, following the paper's "modifications (updates and
// removes)" convention.
type Mix struct {
	LookupPct int
	RangePct  int
	ModifyPct int
}

// Validate checks the mix sums to 100 with no negative parts.
func (m Mix) Validate() error {
	if m.LookupPct < 0 || m.RangePct < 0 || m.ModifyPct < 0 {
		return fmt.Errorf("workload: negative percentage in mix %+v", m)
	}
	if sum := m.LookupPct + m.RangePct + m.ModifyPct; sum != 100 {
		return fmt.Errorf("workload: mix sums to %d, want 100", sum)
	}
	return nil
}

// String renders the mix as the paper captions do.
func (m Mix) String() string {
	return fmt.Sprintf("%d%% lookup, %d%% range-query, %d%% modify",
		m.LookupPct, m.RangePct, m.ModifyPct)
}

// Config parameterizes a generator.
type Config struct {
	Mix      Mix
	KeySpace uint64 // keys are uniform in [0, KeySpace)
	RangeMin uint64 // minimum range-query span (paper: 1000)
	RangeMax uint64 // maximum range-query span (paper: 2000)
	Seed     uint64
}

// Generator produces a deterministic operation stream for one worker.
// Not safe for concurrent use; give each worker its own.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator validates cfg and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if cfg.KeySpace == 0 {
		return nil, fmt.Errorf("workload: zero key space")
	}
	if cfg.RangeMin > cfg.RangeMax {
		return nil, fmt.Errorf("workload: range span [%d,%d] inverted", cfg.RangeMin, cfg.RangeMax)
	}
	return &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
	}, nil
}

// Next draws one operation. For OpLookup/OpUpdate/OpRemove, key and val are
// set; for OpRange, lo/hi bound the query.
func (g *Generator) Next() (op Op, key, val, lo, hi uint64) {
	p := g.rng.IntN(100)
	switch {
	case p < g.cfg.Mix.LookupPct:
		op = OpLookup
		key = g.rng.Uint64N(g.cfg.KeySpace)
	case p < g.cfg.Mix.LookupPct+g.cfg.Mix.RangePct:
		op = OpRange
		span := g.cfg.RangeMin
		if g.cfg.RangeMax > g.cfg.RangeMin {
			span += g.rng.Uint64N(g.cfg.RangeMax - g.cfg.RangeMin + 1)
		}
		lo = g.rng.Uint64N(g.cfg.KeySpace)
		hi = lo + span
	default:
		// Modifications split evenly between update and remove.
		if g.rng.IntN(2) == 0 {
			op = OpUpdate
			key = g.rng.Uint64N(g.cfg.KeySpace)
			val = g.rng.Uint64()
		} else {
			op = OpRemove
			key = g.rng.Uint64N(g.cfg.KeySpace)
		}
	}
	return op, key, val, lo, hi
}

// Key draws a uniform key; exposed for batch filling.
func (g *Generator) Key() uint64 {
	return g.rng.Uint64N(g.cfg.KeySpace)
}

// Value draws a value.
func (g *Generator) Value() uint64 {
	return g.rng.Uint64()
}

// NewScanHeavyGenerator builds the stream of the snapshot-scan
// evaluation: almost two thirds of the operations are long range scans —
// spans drawn from [KeySpace/4, KeySpace/2] instead of the paper's
// [1000, 2000] — and most of the rest is modify churn, so every scan
// runs against continuous structural turnover (splits, merges, node
// replacements). BenchmarkSnapshotScan drives this mix for its bundles
// on/off A/B: with versioned links a scan traverses one frozen cut and
// never retries; without them each structural change it races restarts
// the snapshot run.
func NewScanHeavyGenerator(keySpace, seed uint64) (*Generator, error) {
	return NewGenerator(Config{
		Mix:      Mix{LookupPct: 5, RangePct: 65, ModifyPct: 30},
		KeySpace: keySpace,
		RangeMin: keySpace / 4,
		RangeMax: keySpace / 2,
		Seed:     seed,
	})
}

// LocalConfig parameterizes a locality-skewed key stream: an anchor
// strides upward through the key space, and each key is the anchor plus
// a Zipf-skewed offset inside a small window, so consecutive keys are
// usually close together (the access pattern finger caches pay off on —
// cursors, time-ordered ingest, hot working sets). Window = 1 (or
// ZipfS = 0 with Window = 1) degenerates to a pure ascending stride.
type LocalConfig struct {
	KeySpace uint64 // keys wrap modulo KeySpace
	Window   uint64 // offsets are drawn from [0, Window); 0 means 1
	Stride   uint64 // anchor advance per draw batch; 0 means 1
	// AdvanceEvery is the number of draws between anchor advances; 0
	// means every draw (a strict stride with windowed jitter).
	AdvanceEvery int
	// ZipfS is the Zipf skew exponent over the window (offset rank r
	// weighted 1/(r+1)^s): 0 draws offsets uniformly; ~1.1 concentrates
	// most draws on the first few offsets past the anchor.
	ZipfS float64
	Seed  uint64
}

// LocalGenerator produces a deterministic locality-skewed key stream for
// one worker. Not safe for concurrent use; give each worker its own.
type LocalGenerator struct {
	cfg    LocalConfig
	rng    *rand.Rand
	anchor uint64
	since  int
	// cdf is the precomputed cumulative Zipf weight over window offsets;
	// empty means uniform. math/rand/v2 has no Zipf sampler, so draws
	// invert this table by binary search — the window is small, so the
	// table is a few KB at most.
	cdf []float64
}

// NewLocalGenerator validates cfg and builds a generator.
func NewLocalGenerator(cfg LocalConfig) (*LocalGenerator, error) {
	if cfg.KeySpace == 0 {
		return nil, fmt.Errorf("workload: zero key space")
	}
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	if cfg.Window > cfg.KeySpace {
		cfg.Window = cfg.KeySpace
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	if cfg.ZipfS < 0 {
		return nil, fmt.Errorf("workload: negative Zipf exponent %v", cfg.ZipfS)
	}
	g := &LocalGenerator{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
	}
	if cfg.ZipfS > 0 && cfg.Window > 1 {
		g.cdf = make([]float64, cfg.Window)
		sum := 0.0
		for r := uint64(0); r < cfg.Window; r++ {
			sum += 1 / math.Pow(float64(r+1), cfg.ZipfS)
			g.cdf[r] = sum
		}
	}
	return g, nil
}

// Next draws the next key: the current anchor plus a window offset,
// wrapped into the key space, then advances the anchor on schedule.
func (g *LocalGenerator) Next() uint64 {
	var off uint64
	switch {
	case len(g.cdf) > 0:
		u := g.rng.Float64() * g.cdf[len(g.cdf)-1]
		lo, hi := 0, len(g.cdf)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if g.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		off = uint64(lo)
	case g.cfg.Window > 1:
		off = g.rng.Uint64N(g.cfg.Window)
	}
	k := (g.anchor + off) % g.cfg.KeySpace
	g.since++
	if g.cfg.AdvanceEvery <= 0 || g.since >= g.cfg.AdvanceEvery {
		g.since = 0
		g.anchor = (g.anchor + g.cfg.Stride) % g.cfg.KeySpace
	}
	return k
}

// Batch fills ks with len(ks) consecutive draws in ascending order from
// one anchor neighbourhood — the shape of a sorted multi-key transaction
// (planGroups visits keys ascending, so this is the stream that
// exercises sorted-batch predecessor reuse). Duplicate offsets are
// nudged apart so the batch stages distinct keys.
func (g *LocalGenerator) Batch(ks []uint64) {
	if len(ks) == 0 {
		return
	}
	base := g.anchor
	for i := range ks {
		ks[i] = base
		base = (base + 1 + g.rng.Uint64N(g.cfg.Stride+1)) % g.cfg.KeySpace
	}
	g.since = 0
	g.anchor = (g.anchor + g.cfg.Stride*uint64(len(ks))) % g.cfg.KeySpace
}

// Value draws a value.
func (g *LocalGenerator) Value() uint64 {
	return g.rng.Uint64()
}
