// Package workload generates the operation streams of the paper's
// evaluation (§3): mixes of lookups, range queries and modifications
// (updates and removes in equal parts) over a uniform key space, with
// range-query spans drawn uniformly from [1000, 2000].
package workload

import (
	"fmt"
	"math/rand/v2"
)

// Op is one generated operation kind.
type Op int

const (
	OpLookup Op = iota
	OpRange
	OpUpdate
	OpRemove
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpRange:
		return "range-query"
	case OpUpdate:
		return "update"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Mix is an operation mixture in percent. Modify is split evenly between
// updates and removes, following the paper's "modifications (updates and
// removes)" convention.
type Mix struct {
	LookupPct int
	RangePct  int
	ModifyPct int
}

// Validate checks the mix sums to 100 with no negative parts.
func (m Mix) Validate() error {
	if m.LookupPct < 0 || m.RangePct < 0 || m.ModifyPct < 0 {
		return fmt.Errorf("workload: negative percentage in mix %+v", m)
	}
	if sum := m.LookupPct + m.RangePct + m.ModifyPct; sum != 100 {
		return fmt.Errorf("workload: mix sums to %d, want 100", sum)
	}
	return nil
}

// String renders the mix as the paper captions do.
func (m Mix) String() string {
	return fmt.Sprintf("%d%% lookup, %d%% range-query, %d%% modify",
		m.LookupPct, m.RangePct, m.ModifyPct)
}

// Config parameterizes a generator.
type Config struct {
	Mix      Mix
	KeySpace uint64 // keys are uniform in [0, KeySpace)
	RangeMin uint64 // minimum range-query span (paper: 1000)
	RangeMax uint64 // maximum range-query span (paper: 2000)
	Seed     uint64
}

// Generator produces a deterministic operation stream for one worker.
// Not safe for concurrent use; give each worker its own.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator validates cfg and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if cfg.KeySpace == 0 {
		return nil, fmt.Errorf("workload: zero key space")
	}
	if cfg.RangeMin > cfg.RangeMax {
		return nil, fmt.Errorf("workload: range span [%d,%d] inverted", cfg.RangeMin, cfg.RangeMax)
	}
	return &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
	}, nil
}

// Next draws one operation. For OpLookup/OpUpdate/OpRemove, key and val are
// set; for OpRange, lo/hi bound the query.
func (g *Generator) Next() (op Op, key, val, lo, hi uint64) {
	p := g.rng.IntN(100)
	switch {
	case p < g.cfg.Mix.LookupPct:
		op = OpLookup
		key = g.rng.Uint64N(g.cfg.KeySpace)
	case p < g.cfg.Mix.LookupPct+g.cfg.Mix.RangePct:
		op = OpRange
		span := g.cfg.RangeMin
		if g.cfg.RangeMax > g.cfg.RangeMin {
			span += g.rng.Uint64N(g.cfg.RangeMax - g.cfg.RangeMin + 1)
		}
		lo = g.rng.Uint64N(g.cfg.KeySpace)
		hi = lo + span
	default:
		// Modifications split evenly between update and remove.
		if g.rng.IntN(2) == 0 {
			op = OpUpdate
			key = g.rng.Uint64N(g.cfg.KeySpace)
			val = g.rng.Uint64()
		} else {
			op = OpRemove
			key = g.rng.Uint64N(g.cfg.KeySpace)
		}
	}
	return op, key, val, lo, hi
}

// Key draws a uniform key; exposed for batch filling.
func (g *Generator) Key() uint64 {
	return g.rng.Uint64N(g.cfg.KeySpace)
}

// Value draws a value.
func (g *Generator) Value() uint64 {
	return g.rng.Uint64()
}
