package stm

import "sync/atomic"

// TaggedPtr is a transactional (pointer, tag) pair versioned as a single
// unit. It reproduces, under a garbage collector that forbids stealing
// pointer bits, the paper's single memory word holding a pointer with an
// embedded mark: transactional stores replace the pair atomically and bump
// one shared version, so a commit-time validation of the pair subsumes
// validation of both halves.
//
// The Leap-List uses the tag as the mark bit on each next-pointer slot: the
// Locking Transaction marks a slot by transactionally storing (same pointer,
// TagMarked); the release postfix then writes the new pointer and clears the
// tag with direct stores, which is safe because every competing transaction
// must first read the slot unmarked and revalidate it at commit, and every
// marking bumps the version.
//
// The zero value holds (nil, 0) at version 0.
type TaggedPtr[T any] struct {
	l vlock
	p atomic.Pointer[T]
	t atomic.Uint64
}

// Tag values used by the Leap-List. The tag space is a full uint64; these
// are just the two values the marking protocol needs.
const (
	TagNone   uint64 = 0
	TagMarked uint64 = 1
)

// Init sets the pair without synchronization or version bump. It may only
// be used before the cell is reachable by other goroutines.
func (tp *TaggedPtr[T]) Init(p *T, tag uint64) {
	tp.p.Store(p)
	tp.t.Store(tag)
}

// pendingTagged is the buffered write record for a TaggedPtr.
type pendingTagged[T any] struct {
	tp  *TaggedPtr[T]
	p   *T
	tag uint64
}

func (pw *pendingTagged[T]) apply() {
	pw.tp.p.Store(pw.p)
	pw.tp.t.Store(pw.tag)
}

func (pw *pendingTagged[T]) reset() {
	pw.tp, pw.p, pw.tag = nil, nil, 0
}

// Load returns the pair inside tx, recording the read for commit
// validation.
func (tp *TaggedPtr[T]) Load(tx *Tx) (p *T, tag uint64, err error) {
	if err := tx.usable(); err != nil {
		return nil, 0, err
	}
	if i := tx.findWrite(&tp.l); i >= 0 {
		pw := tx.writes[i].obj.(*pendingTagged[T])
		return pw.p, pw.tag, nil
	}
	if _, err := tx.readVersioned(&tp.l, func() {
		p = tp.p.Load()
		tag = tp.t.Load()
	}); err != nil {
		return nil, 0, err
	}
	return p, tag, nil
}

// Store buffers a write of the pair (p, tag); it becomes visible only if tx
// commits.
func (tp *TaggedPtr[T]) Store(tx *Tx, p *T, tag uint64) error {
	if err := tx.usable(); err != nil {
		return err
	}
	if i := tx.findWrite(&tp.l); i >= 0 {
		pw := tx.writes[i].obj.(*pendingTagged[T])
		pw.p, pw.tag = p, tag
		return nil
	}
	// Reuse a recycled write record when the descriptor has one of the
	// right element type; the common transaction then buffers pointer
	// stores without allocating.
	var pw *pendingTagged[T]
	if rec := tx.getRec(); rec != nil {
		if cand, ok := rec.(*pendingTagged[T]); ok {
			pw = cand
		} else {
			tx.putRec(rec)
		}
	}
	if pw == nil {
		pw = &pendingTagged[T]{}
	}
	pw.tp, pw.p, pw.tag = tp, p, tag
	tx.writes = append(tx.writes, writeEntry{l: &tp.l, obj: pw})
	return nil
}

// Peek returns the latest committed pair without joining a transaction. The
// two halves are read with separate atomic loads (tag first); during a
// release postfix a reader can observe (new pointer, TagMarked), which the
// Leap-List traversal protocol treats as "retry", never as a usable pair.
// Callers needing a consistent pair must read inside a transaction.
func (tp *TaggedPtr[T]) Peek() (p *T, tag uint64) {
	tag = tp.t.Load()
	p = tp.p.Load()
	return p, tag
}

// PeekPtr returns only the pointer half.
func (tp *TaggedPtr[T]) PeekPtr() *T {
	return tp.p.Load()
}

// PeekTag returns only the tag half.
func (tp *TaggedPtr[T]) PeekTag() uint64 {
	return tp.t.Load()
}

// DirectStore writes the pair without a transaction and without a version
// bump; see Word.DirectStore for the safety contract. The pointer is
// published before the tag so that a concurrent Peek never observes the old
// pointer with the new (cleared) tag.
func (tp *TaggedPtr[T]) DirectStore(p *T, tag uint64) {
	tp.p.Store(p)
	tp.t.Store(tag)
}

// DirectStorePtr writes only the pointer half, leaving the tag in place.
func (tp *TaggedPtr[T]) DirectStorePtr(p *T) {
	tp.p.Store(p)
}

// DirectStoreTag writes only the tag half, leaving the pointer in place.
func (tp *TaggedPtr[T]) DirectStoreTag(tag uint64) {
	tp.t.Store(tag)
}

// Version returns the cell's current version and lock state; used by tests
// and invariant checkers.
func (tp *TaggedPtr[T]) Version() (ver uint64, locked bool) {
	return tp.l.sample()
}
