package stm

import (
	"sync/atomic"
	"unsafe"
)

// TaggedPtr is a transactional (pointer, tag) pair versioned as a single
// unit. It reproduces, under a garbage collector that forbids stealing
// pointer bits, the paper's single memory word holding a pointer with an
// embedded mark: transactional stores replace the pair atomically and bump
// one shared version, so a commit-time validation of the pair subsumes
// validation of both halves.
//
// The Leap-List uses the tag as the mark bit on each next-pointer slot: the
// Locking Transaction marks a slot by transactionally storing (same pointer,
// TagMarked); the release postfix then writes the new pointer and clears the
// tag with direct stores, which is safe because every competing transaction
// must first read the slot unmarked and revalidate it at commit, and every
// marking bumps the version.
//
// The zero value holds (nil, 0) at version 0.
type TaggedPtr[T any] struct {
	b taggedBase
}

// taggedBase is the type-erased core of a TaggedPtr: the vlock and the
// (pointer, tag) pair with the pointer half held as an unsafe.Pointer
// (still precisely traced by the collector; accessed through the legacy
// sync/atomic pointer functions). Buffered writes reference the base,
// not the generic wrapper, so a write record is three plain words
// inlined into the transaction's writeEntry — no per-store boxed
// record, which is what keeps wide write sets (a DeleteRange run splice
// marking hundreds of slots) allocation-free. Only the generic methods
// of TaggedPtr convert between *T and unsafe.Pointer, so the type-erased
// representation never escapes this file and tx.go's apply switch.
type taggedBase struct {
	l vlock
	p unsafe.Pointer // atomic; LoadPointer/StorePointer only
	t atomic.Uint64
}

// load and store are the atomic accessors of the pointer half.
func (b *taggedBase) load() unsafe.Pointer   { return atomic.LoadPointer(&b.p) }
func (b *taggedBase) store(p unsafe.Pointer) { atomic.StorePointer(&b.p, p) }

// Tag values used by the Leap-List. The tag space is a full uint64; these
// are just the two values the marking protocol needs.
const (
	TagNone   uint64 = 0
	TagMarked uint64 = 1
)

// Init sets the pair without synchronization or version bump. It may only
// be used before the cell is reachable by other goroutines.
func (tp *TaggedPtr[T]) Init(p *T, tag uint64) {
	tp.b.store(unsafe.Pointer(p))
	tp.b.t.Store(tag)
}

// Load returns the pair inside tx, recording the read for commit
// validation.
func (tp *TaggedPtr[T]) Load(tx *Tx) (p *T, tag uint64, err error) {
	if err := tx.usable(); err != nil {
		return nil, 0, err
	}
	if i := tx.findWrite(&tp.b.l); i >= 0 {
		e := &tx.writes[i]
		return (*T)(e.pval), e.val, nil
	}
	if _, err := tx.readVersioned(&tp.b.l, func() {
		p = (*T)(tp.b.load())
		tag = tp.b.t.Load()
	}); err != nil {
		return nil, 0, err
	}
	return p, tag, nil
}

// Store buffers a write of the pair (p, tag); it becomes visible only if tx
// commits. The buffered pair lives inline in the transaction's write
// entry, so storing never allocates.
func (tp *TaggedPtr[T]) Store(tx *Tx, p *T, tag uint64) error {
	if err := tx.usable(); err != nil {
		return err
	}
	if i := tx.findWrite(&tp.b.l); i >= 0 {
		e := &tx.writes[i]
		e.pval, e.val = unsafe.Pointer(p), tag
		return nil
	}
	tx.recordWrite(writeEntry{l: &tp.b.l, tagged: &tp.b, pval: unsafe.Pointer(p), val: tag})
	return nil
}

// Peek returns the latest committed pair without joining a transaction. The
// two halves are read with separate atomic loads (tag first); during a
// release postfix a reader can observe (new pointer, TagMarked), which the
// Leap-List traversal protocol treats as "retry", never as a usable pair.
// Callers needing a consistent pair must read inside a transaction.
func (tp *TaggedPtr[T]) Peek() (p *T, tag uint64) {
	tag = tp.b.t.Load()
	p = (*T)(tp.b.load())
	return p, tag
}

// PeekPtr returns only the pointer half.
func (tp *TaggedPtr[T]) PeekPtr() *T {
	return (*T)(tp.b.load())
}

// PeekTag returns only the tag half.
func (tp *TaggedPtr[T]) PeekTag() uint64 {
	return tp.b.t.Load()
}

// DirectStore writes the pair without a transaction and without a version
// bump; see Word.DirectStore for the safety contract. The pointer is
// published before the tag so that a concurrent Peek never observes the old
// pointer with the new (cleared) tag.
func (tp *TaggedPtr[T]) DirectStore(p *T, tag uint64) {
	tp.b.store(unsafe.Pointer(p))
	tp.b.t.Store(tag)
}

// DirectStorePtr writes only the pointer half, leaving the tag in place.
func (tp *TaggedPtr[T]) DirectStorePtr(p *T) {
	tp.b.store(unsafe.Pointer(p))
}

// DirectStoreTag writes only the tag half, leaving the pointer in place.
func (tp *TaggedPtr[T]) DirectStoreTag(tag uint64) {
	tp.b.t.Store(tag)
}

// Version returns the cell's current version and lock state; used by tests
// and invariant checkers.
func (tp *TaggedPtr[T]) Version() (ver uint64, locked bool) {
	return tp.b.l.sample()
}
