package stm

// This file splits the TL2 commit into an explicit two-phase protocol:
// PrepareOnce runs a transaction function and performs commit phase one
// (acquire every write lock, validate the read set — and, on request,
// lock the read set too), leaving a PreparedTx that the caller later
// drives to Publish (commit phase two: clock bump, write-back, lock
// release) or Abort (release everything, discard the buffered writes).
//
// A prepared transaction's write locks exclude every competitor that
// reads or writes its write set, so the transaction's serialization
// point is the prepare-time validation: anything committing between
// Prepare and Publish either conflicts (and retries past Publish) or
// serializes after the prepared transaction. That is exactly the fused
// commit's argument with a longer lock hold, and is what lets a caller
// compose several domains: prepare a sub-transaction per domain, then
// publish them all (the two-phase commit of the Sharded facade).
//
// lockReads additionally acquires the versioned lock of every read-set
// cell. A prepared transaction without read locks stays publishable, but
// its *reads* can go stale before Publish — fine for a single-domain
// prepare-then-publish, not for a participant in a multi-domain commit,
// where a competitor sneaking a commit into one domain between two
// prepare points would let observers see a partial cross-domain state.
// Read locks pin the whole footprint until Publish; concurrent readers
// of those cells conflict and retry, so the option is meant for the
// occasional cross-domain transaction, not the hot path.

// preparedRead is one read-set cell locked for read stability, with the
// version to restore on release (read locks never bump versions).
type preparedRead struct {
	l   *vlock
	ver uint64
}

// PreparedTx is a transaction that has passed commit phase one and now
// holds its write locks (and, with lockReads, its read locks) until
// Publish or Abort. The zero value is empty and reusable: PrepareOnce
// fills it, Publish/Abort empty it again, so callers can embed one in
// pooled scratch and prepare through it repeatedly without allocating.
// A PreparedTx is not safe for concurrent use.
type PreparedTx struct {
	tx        *Tx
	readLocks []preparedRead

	// readLockSet is the dedup spill for wide read sets (a cross-shard
	// range snapshot can read thousands of cells): past
	// readLocksLinearMax the linear holdsReadLock scan switches to this
	// map so lockReads stays linear in the read-set size.
	readLockSet map[*vlock]struct{}
}

// Prepared reports whether p currently holds a prepared transaction.
func (p *PreparedTx) Prepared() bool {
	return p.tx != nil
}

// PrepareOnce executes fn inside a transaction and, instead of
// committing, leaves the transaction prepared in p: every write lock
// acquired, the read set validated (unconditionally — Publish may be
// arbitrarily later, so the fused commit's "no intervening commit"
// shortcut cannot apply), and with lockReads every distinct read-set
// cell locked as well. On success the caller MUST eventually call
// p.Publish or p.Abort — the locks are held until then. A conflict —
// from a transactional read, from fn, or from phase one itself —
// surfaces as an error wrapping ErrConflict with nothing held and p
// left empty, exactly AtomicallyOnce's single-attempt contract.
func (s *STM) PrepareOnce(p *PreparedTx, lockReads bool, fn func(tx *Tx) error) error {
	if p.tx != nil {
		panic("stm: PrepareOnce on an already prepared PreparedTx")
	}
	tx := s.txPool.Get().(*Tx)
	tx.begin()
	err := fn(tx)
	if err == nil {
		err = tx.prepare(p, lockReads)
	} else {
		tx.abort(err)
	}
	if err != nil {
		tx.finish()
		s.txPool.Put(tx)
		return err
	}
	p.tx = tx
	return nil
}

// prepare is commit phase one: acquire the write locks with bounded
// spinning, then validate the read set and (with lockReads) lock it.
// On failure everything acquired is released and the version words are
// exactly as before.
func (tx *Tx) prepare(p *PreparedTx, lockReads bool) error {
	if tx.err != nil {
		tx.abort(tx.err)
		return tx.err
	}
	tx.done = true

	if err := tx.acquireWriteLocks(); err != nil {
		return err
	}

	// Defensive reset through the clearing helper: a bare [:0] would keep
	// any stale lock pointers alive in the slice capacity.
	p.clearReadLocks()
	fail := func(err error) error {
		for i := range p.readLocks {
			p.readLocks[i].l.unlockRestore(p.readLocks[i].ver)
		}
		p.clearReadLocks()
		tx.releaseLocked(len(tx.writes)) // acquireWriteLocks took them all
		tx.abortWith(err)
		return err
	}
	for i := range tx.reads {
		r := &tx.reads[i]
		ver, locked := r.l.sample()
		if ver != r.ver {
			return fail(errCommitVerify)
		}
		if locked && tx.findWrite(r.l) < 0 && !p.holdsReadLock(r.l) {
			return fail(errCommitVerify)
		}
		if lockReads && tx.findWrite(r.l) < 0 && !p.holdsReadLock(r.l) {
			// tryLock at the recorded version re-validates the read as a
			// side effect of acquiring it.
			if !r.l.tryLock(r.ver) {
				return fail(errCommitVerify)
			}
			p.addReadLock(preparedRead{l: r.l, ver: r.ver})
		}
	}
	return nil
}

// readLocksLinearMax bounds the linear dedup scan of holdsReadLock; a
// wider prepared read set (a cross-shard range snapshot reads one cell
// per run node, easily thousands) spills into readLockSet so lockReads
// stays linear in the read-set size instead of quadratic.
const readLocksLinearMax = 24

// holdsReadLock reports whether p already read-locked the cell guarded
// by l (the read set records every read, so one cell can appear several
// times).
func (p *PreparedTx) holdsReadLock(l *vlock) bool {
	if p.readLockSet != nil {
		_, ok := p.readLockSet[l]
		return ok
	}
	for i := range p.readLocks {
		if p.readLocks[i].l == l {
			return true
		}
	}
	return false
}

// addReadLock records an acquired read lock, spilling the dedup scan
// into a map once the set outgrows the linear threshold.
func (p *PreparedTx) addReadLock(r preparedRead) {
	p.readLocks = append(p.readLocks, r)
	if p.readLockSet != nil {
		p.readLockSet[r.l] = struct{}{}
	} else if len(p.readLocks) > readLocksLinearMax {
		p.readLockSet = make(map[*vlock]struct{}, 2*len(p.readLocks))
		for i := range p.readLocks {
			p.readLockSet[p.readLocks[i].l] = struct{}{}
		}
	}
}

// Publish is commit phase two: take the write version from the clock,
// apply the buffered writes, release the write locks at the new version
// and the read locks at their original versions. It must be called
// exactly once on a prepared descriptor; p is empty afterwards.
//
// Publish returns the write version the buffered writes were released
// at — the transaction's position on the global clock, which the
// Leap-List's bundled read path uses as the batch's snapshot timestamp.
// A transaction with no buffered writes bumps nothing and returns the
// current clock value instead.
func (p *PreparedTx) Publish() uint64 {
	tx := p.tx
	if tx == nil {
		panic("stm: Publish of an unprepared transaction")
	}
	wv := tx.s.clock.Now()
	if len(tx.writes) > 0 {
		wv = tx.s.clock.Tick()
	}
	p.publishAt(wv)
	return wv
}

// PublishAt is Publish with a caller-supplied write version instead of a
// fresh clock tick: the fan-in of a multi-domain commit. A coordinator
// holding several prepared sub-transactions (every write and read lock
// of every domain still held) draws ONE tick from the domains' shared
// clock and publishes every sub-transaction at it, so the combined
// commit occupies a single position on that clock. wv must come from a
// Tick on the domain's clock taken after every sub-transaction
// prepared: ticking while all locks are held keeps wv strictly above
// every version a competitor could have published on these cells (a
// competitor's tick on the shared clock either preceded ours or its
// write-back waits for our locks), which is all TL2's validation needs.
func (p *PreparedTx) PublishAt(wv uint64) {
	if p.tx == nil {
		panic("stm: PublishAt of an unprepared transaction")
	}
	p.publishAt(wv)
}

// publishAt is commit phase two at a fixed write version: apply the
// buffered writes, release the write locks at wv and the read locks at
// their original versions, and empty the descriptor.
func (p *PreparedTx) publishAt(wv uint64) {
	tx := p.tx
	s := tx.s
	if len(tx.writes) > 0 {
		for i := range tx.writes {
			applyWrite(&tx.writes[i])
		}
		for i := range tx.writes {
			tx.writes[i].l.unlockTo(wv)
		}
	}
	for i := range p.readLocks {
		p.readLocks[i].l.unlockRestore(p.readLocks[i].ver)
	}
	if st := s.stats; st != nil {
		st.Commits.Add(1)
	}
	p.clearReadLocks()
	p.tx = nil
	tx.finish()
	s.txPool.Put(tx)
}

// Abort releases every lock at its pre-prepare version and discards the
// buffered writes; the domain is exactly as if the transaction never
// ran (modulo version bumps from the reads' sampling — none). It must
// be called exactly once on a prepared descriptor; p is empty after.
func (p *PreparedTx) Abort() {
	tx := p.tx
	if tx == nil {
		panic("stm: Abort of an unprepared transaction")
	}
	s := tx.s
	tx.releaseLocked(len(tx.writes))
	for i := range p.readLocks {
		p.readLocks[i].l.unlockRestore(p.readLocks[i].ver)
	}
	if st := s.stats; st != nil {
		st.Aborts.Add(1)
	}
	p.clearReadLocks()
	p.tx = nil
	tx.finish()
	s.txPool.Put(tx)
}

// clearReadLocks drops the vlock references (pooled descriptors must not
// pin the nodes embedding those cells) and shrinks an outsized slice,
// matching the descriptor pool's discipline in finish.
func (p *PreparedTx) clearReadLocks() {
	for i := range p.readLocks {
		p.readLocks[i] = preparedRead{}
	}
	const keepCap = 1 << 12
	if cap(p.readLocks) > keepCap {
		p.readLocks = nil
	} else {
		p.readLocks = p.readLocks[:0]
	}
	p.readLockSet = nil
}
