package stm

import "sync/atomic"

// Word is a transactional 64-bit unsigned integer cell. The zero value holds
// 0 at version 0 and is ready to use. The Leap-List stores each node's live
// flag in a Word.
//
// The trailing pad rounds the cell to a full cache line: a Word is written
// on every commit that touches it (the Leap-List live flag is cleared by
// every node replacement) while the fields packed around it in the
// embedding struct are typically read-hot and immutable; without the pad,
// those reads share a line with the writes and every commit invalidates
// every concurrent reader's cached copy of the neighbouring fields.
type Word struct {
	l vlock
	v atomic.Uint64
	_ [48]byte
}

// Init sets the cell's value without synchronization or version bump. It
// may only be used before the cell is reachable by other goroutines.
func (w *Word) Init(v uint64) {
	w.v.Store(v)
}

// Load returns the cell's value inside tx, recording the read for commit
// validation. The returned error wraps ErrConflict when a concurrent commit
// interferes; the caller must abandon the transaction.
func (w *Word) Load(tx *Tx) (uint64, error) {
	if err := tx.usable(); err != nil {
		return 0, err
	}
	if i := tx.findWrite(&w.l); i >= 0 {
		return tx.writes[i].val, nil
	}
	var val uint64
	if _, err := tx.readVersioned(&w.l, func() { val = w.v.Load() }); err != nil {
		return 0, err
	}
	return val, nil
}

// Store buffers a write of v into the cell; the write becomes visible only
// if tx commits.
func (w *Word) Store(tx *Tx, v uint64) error {
	if err := tx.usable(); err != nil {
		return err
	}
	if i := tx.findWrite(&w.l); i >= 0 {
		tx.writes[i].val = v
		return nil
	}
	tx.recordWrite(writeEntry{l: &w.l, word: w, val: v})
	return nil
}

// Peek returns the latest committed value without joining any transaction.
// This STM buffers writes until commit, so the cell never holds tentative
// data and a single atomic load is a linearizable read of the cell.
func (w *Word) Peek() uint64 {
	return w.v.Load()
}

// DirectStore writes v without a transaction and without bumping the cell's
// version. It is only correct under an external protocol that excludes
// concurrent transactional writes to this cell — in this repository, the
// Leap-LT release postfix writing cells whose enclosing node it has marked
// or not yet published. See the package documentation.
func (w *Word) DirectStore(v uint64) {
	w.v.Store(v)
}

// Version returns the cell's current version and lock state; used by tests
// and invariant checkers.
func (w *Word) Version() (ver uint64, locked bool) {
	return w.l.sample()
}
