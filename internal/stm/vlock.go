package stm

import "sync/atomic"

// lockedBit is the low bit of a versioned lock word. The remaining 63 bits
// hold the version of the last committed write to the cell.
const lockedBit uint64 = 1

// vlock is a TL2 versioned lock: version<<1 | lockedBit. The zero value is
// version 0, unlocked, which is a valid initial state (the global clock also
// starts at 0, so version-0 cells validate against any transaction).
type vlock struct {
	w atomic.Uint64
}

// sample returns the current version and whether the lock is held.
func (l *vlock) sample() (ver uint64, locked bool) {
	w := l.w.Load()
	return w >> 1, w&lockedBit != 0
}

// tryLock attempts to acquire the lock given the version observed by a prior
// sample. It preserves the version bits so that readers validating against
// the recorded version still match while the lock is held.
func (l *vlock) tryLock(ver uint64) bool {
	return l.w.CompareAndSwap(ver<<1, ver<<1|lockedBit)
}

// unlockTo releases the lock, publishing newVer as the cell's version.
func (l *vlock) unlockTo(newVer uint64) {
	l.w.Store(newVer << 1)
}

// unlockRestore releases the lock without changing the version, used when a
// commit aborts after acquiring some of its write locks.
func (l *vlock) unlockRestore(ver uint64) {
	l.w.Store(ver << 1)
}
