package stm

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"time"
)

// Default tuning values; see the corresponding options.
const (
	defaultLockSpin   = 64
	defaultMaxBackoff = 1 << 12 // iterations of the backoff loop, not time
)

// STM is an isolated transactional memory domain: a global version clock
// plus configuration and statistics. Transactional variables themselves are
// domain-agnostic cells; correctness requires that every variable is only
// ever accessed through transactions of a single STM (the usual arrangement:
// one STM per data-structure group, as in the Leap-List groups that compose
// updates across L lists).
type STM struct {
	// The global version clock is bumped by every read-write commit and
	// read by every transaction begin — the hottest word in the system.
	// It lives in its own padded Clock allocation (see clock.go) so clock
	// bumps do not invalidate the (read-mostly) configuration fields or
	// the pool state below, and so several domains can share one clock
	// (WithClock). Per-cell vlocks are deliberately not padded: they are
	// embedded by the thousand inside data-structure nodes, where a
	// 64-byte footprint per slot would multiply node memory; the clock is
	// the one globally shared line worth isolating.
	clock *Clock

	extension bool
	lockSpin  int
	stats     *Stats

	txPool sync.Pool
}

// Option configures an STM.
type Option func(*STM)

// WithTimestampExtension enables or disables TinySTM-style read timestamp
// extension. Extension lets long transactions (the Leap-List range query)
// survive concurrent commits to cells outside their read set. Enabled by
// default; the abl-ext ablation benchmark disables it.
func WithTimestampExtension(enabled bool) Option {
	return func(s *STM) { s.extension = enabled }
}

// WithLockSpin sets how many times commit re-samples a busy write lock
// before declaring a conflict. Values below 1 are treated as 1.
func WithLockSpin(n int) Option {
	return func(s *STM) {
		if n < 1 {
			n = 1
		}
		s.lockSpin = n
	}
}

// WithClock runs the domain on a caller-supplied version clock instead of
// a private one, letting several domains (the shards of a Sharded map)
// share one version/timestamp space. Sharing is TL2-safe — a foreign bump
// only makes versions skip ahead — and makes one snapshot timestamp drawn
// from the clock valid against every sharing domain at once.
func WithClock(c *Clock) Option {
	return func(s *STM) {
		if c != nil {
			s.clock = c
		}
	}
}

// WithStats enables statistics collection. Disabled by default: the
// counters are updated once or twice per transaction, which is measurable
// on the benchmark fast path.
func WithStats(enabled bool) Option {
	return func(s *STM) {
		if enabled {
			s.stats = &Stats{}
		} else {
			s.stats = nil
		}
	}
}

// New returns an STM domain with its version clock at zero.
func New(opts ...Option) *STM {
	s := &STM{
		extension: true,
		lockSpin:  defaultLockSpin,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.clock == nil {
		s.clock = NewClock()
	}
	s.txPool.New = func() any { return newTx(s) }
	return s
}

// Stats returns a snapshot of the domain's counters. It returns a zero
// snapshot when statistics are disabled.
func (s *STM) Stats() StatsSnapshot {
	if s.stats == nil {
		return StatsSnapshot{}
	}
	return s.stats.snapshot()
}

// NotePrepareConflict counts a bounded prepare giving up its conflict
// budget. No-op when statistics are disabled.
func (s *STM) NotePrepareConflict() {
	if s.stats != nil {
		s.stats.PrepareConflicts.Add(1)
	}
}

// NoteTimeoutAbort counts a commit abandoned on deadline/cancel or a
// retry ceiling, after a clean abort. No-op when statistics are disabled.
func (s *STM) NoteTimeoutAbort() {
	if s.stats != nil {
		s.stats.TimeoutAborts.Add(1)
	}
}

// NoteRetries raises the MaxRetry high-water gauge to n if n exceeds
// it. No-op when statistics are disabled.
func (s *STM) NoteRetries(n uint64) {
	if s.stats == nil {
		return
	}
	for {
		cur := s.stats.MaxRetry.Load()
		if n <= cur || s.stats.MaxRetry.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Now returns the current value of the global version clock. Exposed for
// tests and diagnostics.
func (s *STM) Now() uint64 {
	return s.clock.Now()
}

// Clock returns the domain's version clock — private unless the domain
// was built with WithClock. The Leap-List's timestamped read path reads
// snapshot timestamps from it, and its lock-based variants tick it at
// their publish linearization point.
func (s *STM) Clock() *Clock {
	return s.clock
}

// Atomically executes fn inside a transaction, retrying with randomized
// backoff for as long as fn or commit reports a conflict. Errors that do not
// wrap ErrConflict abort the transaction and are returned as-is. fn must not
// retain the Tx after returning and must be safe to re-execute.
func (s *STM) Atomically(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		err := s.AtomicallyOnce(fn)
		if err == nil || !IsConflict(err) {
			return err
		}
		backoff(attempt)
	}
}

// AtomicallyOnce executes fn inside a transaction with a single attempt. A
// conflict — from a transactional read, from commit, or returned by fn
// itself — surfaces as an error wrapping ErrConflict, leaving retry policy
// to the caller. The Leap-LT and Leap-COP operations use this: their retry
// loop must re-run the non-transactional setup phase, not just fn.
func (s *STM) AtomicallyOnce(fn func(tx *Tx) error) error {
	tx := s.txPool.Get().(*Tx)
	tx.begin()
	err := fn(tx)
	if err == nil {
		err = tx.commit()
	} else {
		tx.abort(err)
	}
	tx.finish()
	s.txPool.Put(tx)
	return err
}

// Backoff yields the processor and burns a short randomized number of
// iterations, growing with the attempt count. On heavily oversubscribed
// hosts (more workers than cores) the Gosched is what matters; the spin
// component only separates contenders when cores are plentiful. Exposed so
// protocols that retry outside a transaction (Leap-LT restarting from its
// setup phase) share the STM's contention behaviour.
func Backoff(attempt int) {
	backoff(attempt)
}

func backoff(attempt int) {
	runtime.Gosched()
	if attempt == 0 {
		return
	}
	limit := uint64(1) << min(attempt, 12)
	if limit > defaultMaxBackoff {
		limit = defaultMaxBackoff
	}
	iters := rand.Uint64N(limit + 1)
	for i := uint64(0); i < iters; i++ {
		cpuRelax()
	}
}

// restartSleepCap bounds the sleep tier of RestartBackoff: long enough to
// drain a prepared-but-unpublished window, short enough that a waiter
// resumes promptly once it clears.
const restartSleepCap = 100 * time.Microsecond

// RestartBackoff paces the n-th consecutive restart of a protocol-level
// busy loop — a naked search restarting behind a held mark, or the
// sharded two-phase commit retrying a conflicted prepare — with an
// escalating spin → yield → brief-sleep schedule. The first restarts
// stay hot: the common cause is a mark held by a bounded release
// postfix, which clears in nanoseconds, so yielding the processor there
// (as the old flat spins%8 schedule did) only adds scheduler latency to
// the single-restart case. Sustained restarts mean the holder is a
// prepared-but-unpublished two-phase window (unbounded by this thread),
// so the schedule escalates through Gosched to short sleeps instead of
// burning a core against it.
func RestartBackoff(n int) {
	switch {
	case n <= 3:
		// Hot spin, growing: covers the bounded-postfix case without
		// touching the scheduler.
		iters := rand.Uint64N(uint64(16 << n))
		for i := uint64(0); i < iters; i++ {
			cpuRelax()
		}
	case n <= 16:
		// Yield plus the randomized growing spin shared with
		// transactional conflict retries.
		backoff(n - 3)
	default:
		runtime.Gosched()
		d := time.Duration(n-16) * 2 * time.Microsecond
		if d > restartSleepCap {
			d = restartSleepCap
		}
		time.Sleep(d)
	}
}

// cpuRelax is a portable stand-in for a PAUSE instruction. The noinline
// pragma keeps calls (and the loops around them) from being optimized
// away; unlike an atomic add on a shared sink, the delay touches no
// shared cache line, so backing-off contenders do not create the very
// coherence traffic the backoff exists to avoid.
//
//go:noinline
func cpuRelax() {
}
