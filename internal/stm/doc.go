// Package stm implements a word-based software transactional memory in the
// TL2 family (Dice, Shalev, Shavit 2006) with optional TinySTM-style
// timestamp extension.
//
// It is the substrate this repository substitutes for GCC-TM 4.7, the
// compiler-integrated STM used by the Leap-List paper (Avni, Shavit, Suissa,
// PODC 2013). Like GCC-TM's default algorithm it is word-based and uses
// optimistic reads with commit-time locking; unlike GCC-TM it is
// lazy-versioning (writes are buffered and applied at commit), so memory
// never holds uncommitted ("tentative") data and non-transactional reads are
// always safe. The paper calls that property strong isolation and had to
// engineer around its absence; this package provides it natively via Peek.
//
// # Transactional variables
//
// Two cell types are provided:
//
//   - Word: a 64-bit unsigned integer cell.
//   - TaggedPtr[T]: a (pointer, 64-bit tag) pair versioned as a unit. The
//     Leap-List uses the tag as the paper's pointer mark bit; versioning the
//     pair jointly reproduces the paper's stolen-bit-in-the-pointer-word
//     semantics, which Go's garbage collector otherwise forbids.
//
// Both support three access modes:
//
//   - Transactional Load/Store through a *Tx, with full conflict detection.
//   - Peek: a non-transactional atomic read of the latest committed value.
//   - Direct stores: non-transactional writes that deliberately do not bump
//     the cell's version. These exist for exactly two protocol situations:
//     initializing a cell before it is published, and the Leap-LT "release"
//     postfix, which writes under the protection of a transactionally
//     acquired mark. Using them outside such a protocol breaks opacity.
//
// # Transactions
//
// STM.Atomically runs a function inside a transaction and retries it until
// it commits. A function observes a conflict either implicitly (a Load
// returns an error wrapping ErrConflict) or explicitly (it returns
// ErrConflict itself, the analogue of the paper's tx_abort). Any other error
// aborts the transaction without retrying and is returned to the caller.
// STM.AtomicallyOnce performs a single attempt, which callers such as the
// Leap-LT update path use to restart their whole operation (including the
// non-transactional setup phase) on conflict.
//
// # Algorithm
//
// Each cell carries a versioned lock word (version<<1 | lockedBit). A
// transaction samples the global version clock at start (rv). A
// transactional read samples the cell's lock, reads the value, re-samples,
// and fails on a locked or changed lock word; if the observed version
// exceeds rv the transaction attempts timestamp extension (revalidate the
// read set against the current clock and adopt it as the new rv). Writes are
// buffered. Commit acquires the write set's locks with bounded spinning,
// increments the clock to obtain the write version, revalidates the read
// set (skipped when no other transaction committed in between), applies the
// buffered writes, and releases the locks at the new version.
package stm
