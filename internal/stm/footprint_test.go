package stm

import "testing"

// TestFinishClearsPooledFootprint asserts that finish leaves no live
// pointers behind the truncated read and write sets: a pooled descriptor
// must not pin dead node shells (through writeEntry.l / readEntry.l) or
// cells (through writeEntry.word/obj) until the next transaction of the
// same size happens to overwrite the entries.
func TestFinishClearsPooledFootprint(t *testing.T) {
	s := New()
	var words [8]Word
	var tp TaggedPtr[int]
	v := 7
	tp.Init(&v, 1)

	err := s.AtomicallyOnce(func(tx *Tx) error {
		for i := range words {
			if _, err := words[i].Load(tx); err != nil {
				return err
			}
			if err := words[i].Store(tx, uint64(i)); err != nil {
				return err
			}
		}
		if _, _, err := tp.Load(tx); err != nil {
			return err
		}
		return tp.Store(tx, &v, 2)
	})
	if err != nil {
		t.Fatalf("AtomicallyOnce: %v", err)
	}

	// Single goroutine, no intervening Put: Get returns the descriptor
	// the transaction above just parked.
	tx := s.txPool.Get().(*Tx)
	defer s.txPool.Put(tx)
	if len(tx.reads) != 0 || len(tx.writes) != 0 {
		t.Fatalf("pooled Tx not truncated: len(reads)=%d len(writes)=%d", len(tx.reads), len(tx.writes))
	}
	for i, r := range tx.reads[:cap(tx.reads)] {
		if r.l != nil {
			t.Errorf("reads[%d].l still set beyond len: pooled Tx pins a vlock", i)
		}
	}
	for i, w := range tx.writes[:cap(tx.writes)] {
		if w.l != nil || w.word != nil || w.tagged != nil || w.pval != nil {
			t.Errorf("writes[%d] still populated beyond len (l=%p word=%p tagged=%p pval=%p): pooled Tx pins dead cells", i, w.l, w.word, w.tagged, w.pval)
		}
	}
}
