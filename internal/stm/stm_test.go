package stm

import (
	"errors"
	"sync"
	"testing"
)

func TestWordZeroValue(t *testing.T) {
	var w Word
	if got := w.Peek(); got != 0 {
		t.Fatalf("Peek() = %d, want 0", got)
	}
	ver, locked := w.Version()
	if ver != 0 || locked {
		t.Fatalf("Version() = (%d, %v), want (0, false)", ver, locked)
	}
}

func TestAtomicallyCommitsWrite(t *testing.T) {
	s := New()
	var w Word
	err := s.Atomically(func(tx *Tx) error {
		return w.Store(tx, 42)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if got := w.Peek(); got != 42 {
		t.Fatalf("Peek() = %d, want 42", got)
	}
	ver, locked := w.Version()
	if ver == 0 || locked {
		t.Fatalf("Version() = (%d, %v), want bumped and unlocked", ver, locked)
	}
}

func TestReadOwnWrites(t *testing.T) {
	s := New()
	var w Word
	w.Init(1)
	err := s.Atomically(func(tx *Tx) error {
		if err := w.Store(tx, 7); err != nil {
			return err
		}
		got, err := w.Load(tx)
		if err != nil {
			return err
		}
		if got != 7 {
			t.Errorf("Load after Store = %d, want 7", got)
		}
		// Second store to the same cell must overwrite, not duplicate.
		if err := w.Store(tx, 9); err != nil {
			return err
		}
		got, err = w.Load(tx)
		if err != nil {
			return err
		}
		if got != 9 {
			t.Errorf("Load after second Store = %d, want 9", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if got := w.Peek(); got != 9 {
		t.Fatalf("Peek() = %d, want 9", got)
	}
}

func TestAbortedTxLeavesNoTrace(t *testing.T) {
	s := New()
	var w Word
	w.Init(5)
	wantErr := errors.New("user abort")
	err := s.Atomically(func(tx *Tx) error {
		if err := w.Store(tx, 100); err != nil {
			return err
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Atomically = %v, want %v", err, wantErr)
	}
	if got := w.Peek(); got != 5 {
		t.Fatalf("Peek() after abort = %d, want 5", got)
	}
	ver, locked := w.Version()
	if ver != 0 || locked {
		t.Fatalf("Version() after abort = (%d, %v), want (0, false)", ver, locked)
	}
}

func TestUserConflictRetries(t *testing.T) {
	s := New()
	attempts := 0
	err := s.Atomically(func(tx *Tx) error {
		attempts++
		if attempts < 3 {
			return ErrConflict
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestAtomicallyOnceDoesNotRetry(t *testing.T) {
	s := New()
	attempts := 0
	err := s.AtomicallyOnce(func(tx *Tx) error {
		attempts++
		return ErrConflict
	})
	if !IsConflict(err) {
		t.Fatalf("AtomicallyOnce = %v, want conflict", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

func TestConflictDetectedOnInterveningCommit(t *testing.T) {
	s := New()
	var a, b Word
	a.Init(1)
	b.Init(1)

	attempts := 0
	err := s.Atomically(func(tx *Tx) error {
		attempts++
		v, err := a.Load(tx)
		if err != nil {
			return err
		}
		if attempts == 1 {
			// Interfere from "another thread": commit a write to a so the
			// outer read set is stale at commit time. The outer tx also
			// writes b so it cannot take the read-only fast path.
			if err := s.Atomically(func(tx2 *Tx) error {
				return a.Store(tx2, 99)
			}); err != nil {
				return err
			}
		}
		return b.Store(tx, v+1)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (first must abort)", attempts)
	}
	if got := b.Peek(); got != 100 {
		t.Fatalf("b = %d, want 100 (written from re-read a=99)", got)
	}
}

func TestPoisonedTxFailsFast(t *testing.T) {
	s := New()
	var a, b Word
	err := s.AtomicallyOnce(func(tx *Tx) error {
		_ = tx.poison(errReadVersion)
		if _, err := a.Load(tx); !IsConflict(err) {
			t.Errorf("Load on poisoned tx = %v, want conflict", err)
		}
		if err := b.Store(tx, 1); !IsConflict(err) {
			t.Errorf("Store on poisoned tx = %v, want conflict", err)
		}
		return tx.err
	})
	if !IsConflict(err) {
		t.Fatalf("AtomicallyOnce = %v, want conflict", err)
	}
	if got := b.Peek(); got != 0 {
		t.Fatalf("b = %d, want 0 (poisoned tx must not commit)", got)
	}
}

func TestTaggedPtrRoundTrip(t *testing.T) {
	s := New()
	type nodeT struct{ id int }
	var tp TaggedPtr[nodeT]
	n1 := &nodeT{id: 1}
	n2 := &nodeT{id: 2}
	tp.Init(n1, TagNone)

	err := s.Atomically(func(tx *Tx) error {
		p, tag, err := tp.Load(tx)
		if err != nil {
			return err
		}
		if p != n1 || tag != TagNone {
			t.Errorf("Load = (%v, %d), want (n1, TagNone)", p, tag)
		}
		if err := tp.Store(tx, n1, TagMarked); err != nil {
			return err
		}
		// Read-own-write of the pair.
		p, tag, err = tp.Load(tx)
		if err != nil {
			return err
		}
		if p != n1 || tag != TagMarked {
			t.Errorf("Load after Store = (%v, %d), want (n1, TagMarked)", p, tag)
		}
		return tp.Store(tx, n2, TagNone)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	p, tag := tp.Peek()
	if p != n2 || tag != TagNone {
		t.Fatalf("Peek = (%v, %d), want (n2, TagNone)", p, tag)
	}
}

func TestTaggedPtrDirectStores(t *testing.T) {
	type nodeT struct{ id int }
	var tp TaggedPtr[nodeT]
	n := &nodeT{id: 1}
	tp.DirectStore(n, TagMarked)
	if got := tp.PeekTag(); got != TagMarked {
		t.Fatalf("PeekTag = %d, want TagMarked", got)
	}
	tp.DirectStoreTag(TagNone)
	if p, tag := tp.Peek(); p != n || tag != TagNone {
		t.Fatalf("Peek = (%v, %d), want (n, TagNone)", p, tag)
	}
	ver, locked := tp.Version()
	if ver != 0 || locked {
		t.Fatalf("direct stores must not bump version: (%d, %v)", ver, locked)
	}
}

func TestReadOfLockedCellConflicts(t *testing.T) {
	s := New()
	var w Word
	// Manually hold the lock, as a concurrent committer would.
	if !w.l.tryLock(0) {
		t.Fatal("tryLock failed on fresh cell")
	}
	err := s.AtomicallyOnce(func(tx *Tx) error {
		_, err := w.Load(tx)
		return err
	})
	if !IsConflict(err) {
		t.Fatalf("AtomicallyOnce = %v, want conflict", err)
	}
	w.l.unlockRestore(0)
}

func TestCommitLockBusyConflicts(t *testing.T) {
	s := New(WithLockSpin(2))
	var w Word
	if !w.l.tryLock(0) {
		t.Fatal("tryLock failed on fresh cell")
	}
	err := s.AtomicallyOnce(func(tx *Tx) error {
		return w.Store(tx, 1)
	})
	if !errors.Is(err, errCommitLock) {
		t.Fatalf("AtomicallyOnce = %v, want commit-lock conflict", err)
	}
	w.l.unlockRestore(0)
	if got := w.Peek(); got != 0 {
		t.Fatalf("w = %d, want 0", got)
	}
}

func TestTimestampExtensionAllowsLateRead(t *testing.T) {
	s := New(WithTimestampExtension(true), WithStats(true))
	var a, b Word

	err := s.AtomicallyOnce(func(tx *Tx) error {
		if _, err := a.Load(tx); err != nil {
			return err
		}
		// A foreign commit bumps b's version past our rv.
		if err := s.Atomically(func(tx2 *Tx) error {
			return b.Store(tx2, 7)
		}); err != nil {
			return err
		}
		// Reading b now observes version > rv; extension must save us
		// because a is untouched.
		v, err := b.Load(tx)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("b = %d, want 7", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("AtomicallyOnce: %v", err)
	}
	if got := s.Stats().Extensions; got != 1 {
		t.Fatalf("Extensions = %d, want 1", got)
	}
}

func TestTimestampExtensionDisabledAborts(t *testing.T) {
	s := New(WithTimestampExtension(false))
	var a, b Word

	err := s.AtomicallyOnce(func(tx *Tx) error {
		if _, err := a.Load(tx); err != nil {
			return err
		}
		if err := s.Atomically(func(tx2 *Tx) error {
			return b.Store(tx2, 7)
		}); err != nil {
			return err
		}
		_, err := b.Load(tx)
		return err
	})
	if !IsConflict(err) {
		t.Fatalf("AtomicallyOnce = %v, want conflict with extension disabled", err)
	}
}

func TestExtensionFailsWhenReadSetStale(t *testing.T) {
	s := New(WithTimestampExtension(true))
	var a, b Word

	err := s.AtomicallyOnce(func(tx *Tx) error {
		if _, err := a.Load(tx); err != nil {
			return err
		}
		// Foreign commit writes BOTH a (in our read set) and b.
		if err := s.Atomically(func(tx2 *Tx) error {
			if err := a.Store(tx2, 1); err != nil {
				return err
			}
			return b.Store(tx2, 7)
		}); err != nil {
			return err
		}
		_, err := b.Load(tx)
		return err
	})
	if !IsConflict(err) {
		t.Fatalf("AtomicallyOnce = %v, want conflict (read set stale)", err)
	}
}

func TestStatsCounting(t *testing.T) {
	s := New(WithStats(true))
	var w Word
	if err := s.Atomically(func(tx *Tx) error { return w.Store(tx, 1) }); err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	_ = s.AtomicallyOnce(func(tx *Tx) error { return ErrConflict })
	st := s.Stats()
	if st.Starts != 2 || st.Commits != 1 || st.Aborts != 1 {
		t.Fatalf("stats = %+v, want starts=2 commits=1 aborts=1", st)
	}
	if got := st.AbortRate(); got != 0.5 {
		t.Fatalf("AbortRate = %v, want 0.5", got)
	}
}

func TestStatsDisabledSnapshotZero(t *testing.T) {
	s := New()
	if err := s.Atomically(func(tx *Tx) error { return nil }); err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if st := s.Stats(); st != (StatsSnapshot{}) {
		t.Fatalf("Stats = %+v, want zero", st)
	}
}

func TestClockAdvancesOnlyOnWriteCommit(t *testing.T) {
	s := New()
	var w Word
	before := s.Now()
	if err := s.Atomically(func(tx *Tx) error {
		_, err := w.Load(tx)
		return err
	}); err != nil {
		t.Fatalf("read-only tx: %v", err)
	}
	if s.Now() != before {
		t.Fatal("read-only commit must not advance the clock")
	}
	if err := s.Atomically(func(tx *Tx) error { return w.Store(tx, 1) }); err != nil {
		t.Fatalf("write tx: %v", err)
	}
	if s.Now() != before+1 {
		t.Fatalf("clock = %d, want %d", s.Now(), before+1)
	}
}

func TestOptionsNormalization(t *testing.T) {
	s := New(WithLockSpin(0))
	if s.lockSpin != 1 {
		t.Fatalf("lockSpin = %d, want clamp to 1", s.lockSpin)
	}
	s = New(WithStats(true), WithStats(false))
	if s.stats != nil {
		t.Fatal("WithStats(false) did not clear stats")
	}
}

func TestTxPoolReuseIsClean(t *testing.T) {
	s := New()
	var w Word
	// Poison a transaction, then ensure the next pooled transaction starts
	// clean.
	_ = s.AtomicallyOnce(func(tx *Tx) error {
		_ = w.Store(tx, 1)
		return ErrConflict
	})
	err := s.Atomically(func(tx *Tx) error {
		if tx.err != nil || len(tx.writes) != 0 || len(tx.reads) != 0 {
			t.Errorf("pooled tx not reset: err=%v reads=%d writes=%d", tx.err, len(tx.reads), len(tx.writes))
		}
		return w.Store(tx, 2)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if got := w.Peek(); got != 2 {
		t.Fatalf("w = %d, want 2", got)
	}
}

func TestBackoffTerminates(t *testing.T) {
	// Smoke: large attempts must not hang or panic.
	for _, attempt := range []int{0, 1, 5, 13, 100} {
		Backoff(attempt)
	}
}

// TestConcurrentCounter checks atomicity of increments under contention:
// every committed Atomically adds exactly 1.
func TestConcurrentCounter(t *testing.T) {
	s := New()
	var w Word
	const workers = 8
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := s.Atomically(func(tx *Tx) error {
					v, err := w.Load(tx)
					if err != nil {
						return err
					}
					return w.Store(tx, v+1)
				})
				if err != nil {
					t.Errorf("Atomically: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := w.Peek(), uint64(workers*iters); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

// TestBankTransferInvariant moves money among accounts concurrently; the
// total must be conserved at every observation point (serializability).
func TestBankTransferInvariant(t *testing.T) {
	s := New()
	const accounts = 16
	const initial = 1000
	cells := make([]Word, accounts)
	for i := range cells {
		cells[i].Init(initial)
	}

	readTotal := func() uint64 {
		var total uint64
		err := s.Atomically(func(tx *Tx) error {
			total = 0
			for i := range cells {
				v, err := cells[i].Load(tx)
				if err != nil {
					return err
				}
				total += v
			}
			return nil
		})
		if err != nil {
			t.Errorf("total read: %v", err)
		}
		return total
	}

	const workers = 6
	iters := 3000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			from, to := seed%accounts, (seed+7)%accounts
			for i := 0; i < iters; i++ {
				from = (from + 5) % accounts
				to = (to + 3) % accounts
				if from == to {
					continue
				}
				err := s.Atomically(func(tx *Tx) error {
					fv, err := cells[from].Load(tx)
					if err != nil {
						return err
					}
					tv, err := cells[to].Load(tx)
					if err != nil {
						return err
					}
					if fv == 0 {
						return nil
					}
					if err := cells[from].Store(tx, fv-1); err != nil {
						return err
					}
					return cells[to].Store(tx, tv+1)
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
				if i%64 == 0 {
					if total := readTotal(); total != accounts*initial {
						t.Errorf("total = %d, want %d", total, accounts*initial)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if total := readTotal(); total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}
}

// TestPeekNeverSeesTentativeData hammers one cell with transactional
// writers that only ever commit even values, while peekers assert they
// never observe an odd (would-be tentative) value.
func TestPeekNeverSeesTentativeData(t *testing.T) {
	s := New()
	var w Word
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if v := w.Peek(); v%2 != 0 {
				t.Errorf("Peek observed odd value %d", v)
				return
			}
		}
	}()
	iters := 5000
	if testing.Short() {
		iters = 500
	}
	for i := 0; i < iters; i++ {
		err := s.Atomically(func(tx *Tx) error {
			v, err := w.Load(tx)
			if err != nil {
				return err
			}
			// Buffered write of an odd intermediate; never visible.
			if err := w.Store(tx, v+1); err != nil {
				return err
			}
			return w.Store(tx, v+2)
		})
		if err != nil {
			t.Fatalf("Atomically: %v", err)
		}
	}
	close(done)
	wg.Wait()
}
