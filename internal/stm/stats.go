package stm

import "sync/atomic"

// Stats holds the domain's live counters. Fields are updated atomically;
// read them through STM.Stats.
type Stats struct {
	Starts     atomic.Uint64
	Commits    atomic.Uint64
	Aborts     atomic.Uint64
	Extensions atomic.Uint64
	// PrepareConflicts counts bounded prepares that exhausted their
	// conflict budget (core.ErrPrepareConflict) — each one is a 2PC leg
	// giving way so a prefix abort can release its shards.
	PrepareConflicts atomic.Uint64
	// TimeoutAborts counts commits abandoned because a deadline or
	// cancellation fired (core.ErrCanceled → leaplist.ErrTxTimeout) or a
	// retry ceiling was hit; each one performed a clean prefix abort.
	TimeoutAborts atomic.Uint64
	// MaxRetry is a high-water gauge, not a counter: the largest number
	// of whole-commit retries any single transaction was observed to
	// need. A rising value under load is the overload signal bounded
	// commits exist to surface.
	MaxRetry atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the counters. It is a racy
// aggregate: the fields are loaded one at a time while transactions keep
// running, so the snapshot never corresponds to one global instant.
// The loads are ordered so the snapshot is still internally consistent
// for rate math — outcomes (Commits, Aborts) are read before Starts, and
// every counted outcome had its start counted earlier, so a snapshot
// always satisfies Commits+Aborts <= Starts even mid-flight.
type StatsSnapshot struct {
	Starts     uint64
	Commits    uint64
	Aborts     uint64
	Extensions uint64
	// See the matching Stats fields. MaxRetry aggregates by maximum in
	// Add (it is a gauge); the others sum.
	PrepareConflicts uint64
	TimeoutAborts    uint64
	MaxRetry         uint64
}

func (s *Stats) snapshot() StatsSnapshot {
	// Outcome counters first, Starts last (see StatsSnapshot): a
	// transaction bumps Starts at begin and an outcome counter at the
	// end, so loading outcomes first can only undercount outcomes
	// relative to the Starts value loaded after them — never the
	// inversion (AbortRate > 1, Commits+Aborts > Starts) that the old
	// Starts-first order allowed.
	snap := StatsSnapshot{
		Commits:          s.Commits.Load(),
		Aborts:           s.Aborts.Load(),
		Extensions:       s.Extensions.Load(),
		PrepareConflicts: s.PrepareConflicts.Load(),
		TimeoutAborts:    s.TimeoutAborts.Load(),
		MaxRetry:         s.MaxRetry.Load(),
	}
	snap.Starts = s.Starts.Load()
	return snap
}

// Add returns the field-wise sum of s and o, for aggregating the
// domains of several shards into one figure. The sum inherits each
// addend's raciness but keeps the Commits+Aborts <= Starts invariant,
// since every addend satisfies it.
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:           s.Starts + o.Starts,
		Commits:          s.Commits + o.Commits,
		Aborts:           s.Aborts + o.Aborts,
		Extensions:       s.Extensions + o.Extensions,
		PrepareConflicts: s.PrepareConflicts + o.PrepareConflicts,
		TimeoutAborts:    s.TimeoutAborts + o.TimeoutAborts,
		MaxRetry:         max(s.MaxRetry, o.MaxRetry),
	}
}

// AbortRate returns aborts / starts, or 0 when no transaction has started.
func (s StatsSnapshot) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}
