package stm

import "sync/atomic"

// Stats holds the domain's live counters. Fields are updated atomically;
// read them through STM.Stats.
type Stats struct {
	Starts     atomic.Uint64
	Commits    atomic.Uint64
	Aborts     atomic.Uint64
	Extensions atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Starts     uint64
	Commits    uint64
	Aborts     uint64
	Extensions uint64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:     s.Starts.Load(),
		Commits:    s.Commits.Load(),
		Aborts:     s.Aborts.Load(),
		Extensions: s.Extensions.Load(),
	}
}

// AbortRate returns aborts / starts, or 0 when no transaction has started.
func (s StatsSnapshot) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}
