package stm

import (
	"sync/atomic"
	"testing"
)

// The paper's cost model rests on transaction overhead: Leap-LT exists
// because full transactions are expensive and lock-acquisition-only
// transactions are cheap. These micro-benchmarks quantify that ladder on
// the local machine.

func BenchmarkPeek(b *testing.B) {
	var w Word
	w.Init(42)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += w.Peek()
	}
	sinkWord.Store(sink)
}

var sinkWord atomic.Uint64

func BenchmarkReadOnlyTx1Word(b *testing.B) {
	s := New()
	var w Word
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Tx) error {
			_, err := w.Load(tx)
			return err
		})
	}
}

func BenchmarkReadOnlyTx16Words(b *testing.B) {
	s := New()
	words := make([]Word, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Tx) error {
			for j := range words {
				if _, err := words[j].Load(tx); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func BenchmarkWriteTx1Word(b *testing.B) {
	s := New()
	var w Word
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Tx) error {
			return w.Store(tx, uint64(i))
		})
	}
}

// BenchmarkWriteTx8Words models a Leap-LT locking transaction: ~8 marked
// slots plus validation reads.
func BenchmarkWriteTx8Words(b *testing.B) {
	s := New()
	words := make([]Word, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Tx) error {
			for j := range words {
				v, err := words[j].Load(tx)
				if err != nil {
					return err
				}
				if err := words[j].Store(tx, v+1); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func BenchmarkTaggedPtrLoadTx(b *testing.B) {
	type nodeT struct{ _ int }
	s := New()
	var tp TaggedPtr[nodeT]
	tp.Init(&nodeT{}, TagNone)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Tx) error {
			_, _, err := tp.Load(tx)
			return err
		})
	}
}

func BenchmarkContendedCounter(b *testing.B) {
	s := New()
	var w Word
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = s.Atomically(func(tx *Tx) error {
				v, err := w.Load(tx)
				if err != nil {
					return err
				}
				return w.Store(tx, v+1)
			})
		}
	})
}
