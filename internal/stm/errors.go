package stm

import (
	"errors"
	"fmt"
)

// ErrConflict is the retryable transaction failure. Transactional reads
// return an error wrapping ErrConflict when they observe a locked or
// concurrently modified cell, and commit returns one when lock acquisition
// or read-set validation fails. User code may also return ErrConflict from
// the transaction function to request an abort-and-retry, mirroring the
// paper's tx_abort.
var ErrConflict = errors.New("stm: transaction conflict")

// ErrTxDone is returned when a transactional variable is accessed through a
// transaction that has already finished or been poisoned by an earlier
// conflict. It wraps ErrConflict because the only way a live transaction
// function can hold a poisoned Tx is an unhandled earlier conflict.
var ErrTxDone = fmt.Errorf("%w: transaction no longer usable", ErrConflict)

// Conflict causes, used for statistics and wrapped error text. Each is a
// distinct wrapped sentinel so tests can assert on the precise failure mode
// while callers only ever need errors.Is(err, ErrConflict).
var (
	errReadLocked   = fmt.Errorf("%w: read observed locked cell", ErrConflict)
	errReadVersion  = fmt.Errorf("%w: read observed concurrent update", ErrConflict)
	errCommitLock   = fmt.Errorf("%w: commit could not acquire write locks", ErrConflict)
	errCommitVerify = fmt.Errorf("%w: commit read-set validation failed", ErrConflict)
)

// IsConflict reports whether err denotes a retryable transactional conflict.
func IsConflict(err error) bool {
	return errors.Is(err, ErrConflict)
}
