package stm

// readEntry records one transactional read: the cell's lock and the version
// the value was read at.
type readEntry struct {
	l   *vlock
	ver uint64
}

// pendingPtr is implemented by the typed buffered-write records of generic
// cells (TaggedPtr[T]); apply publishes the buffered value into the cell's
// backing storage during commit write-back, and reset drops the record's
// references so it can sit in a transaction's free list without pinning
// anything.
type pendingPtr interface {
	apply()
	reset()
}

// writeEntry is one buffered write. Word writes are stored inline (word,
// val) to avoid an allocation; TaggedPtr writes carry their typed record in
// obj. Exactly one of word and obj is set.
type writeEntry struct {
	l    *vlock
	prev uint64 // version restored if the commit aborts after locking

	word *Word
	val  uint64

	obj pendingPtr
}

// Tx is a transaction descriptor. A Tx is only valid inside the function
// passed to Atomically/AtomicallyOnce and must not be shared between
// goroutines or retained.
type Tx struct {
	s      *STM
	rv     uint64
	reads  []readEntry
	writes []writeEntry
	err    error // poisoned by the first conflict; sticky until finish
	done   bool

	// freeRecs recycles the typed buffered-write records of TaggedPtr
	// stores across the transactions served by this (pooled) descriptor,
	// so the common commit allocates no write records at all. Records are
	// reset before parking here and therefore pin nothing.
	freeRecs []pendingPtr
}

func newTx(s *STM) *Tx {
	return &Tx{
		s:      s,
		reads:  make([]readEntry, 0, 64),
		writes: make([]writeEntry, 0, 16),
	}
}

func (tx *Tx) begin() {
	tx.rv = tx.s.clock.Now()
	// reads/writes are already empty: finish cleared and truncated them
	// on every prior path, and a fresh descriptor starts at length zero.
	tx.err = nil
	tx.done = false
	if st := tx.s.stats; st != nil {
		st.Starts.Add(1)
	}
}

func (tx *Tx) abort(cause error) {
	tx.done = true
	if st := tx.s.stats; st != nil && IsConflict(cause) {
		st.Aborts.Add(1)
	}
}

// maxFreeRecs bounds the per-descriptor write-record free list; a batch
// that marked more slots than this donates only the first maxFreeRecs
// records back.
const maxFreeRecs = 64

func (tx *Tx) finish() {
	tx.done = true
	// Recycle buffered write records into the free list (reset first so
	// the pooled Tx does not pin cells or values through them).
	for i := range tx.writes {
		if obj := tx.writes[i].obj; obj != nil {
			obj.reset()
			if len(tx.freeRecs) < maxFreeRecs {
				tx.freeRecs = append(tx.freeRecs, obj)
			}
			tx.writes[i].obj = nil
		}
		tx.writes[i].word = nil
		// The lock pointer reaches into a node shell's vlock; a pooled
		// descriptor holding it would pin the dead shell until the next
		// transaction of this size happens to overwrite the entry.
		tx.writes[i].l = nil
	}
	// Same for the read set, whose entries are nothing but lock pointers.
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	// Oversized sets are not returned to the pool at their grown capacity;
	// shrinking keeps pooled descriptors cheap for the common small tx.
	const keepCap = 1 << 12
	if cap(tx.reads) > keepCap {
		tx.reads = make([]readEntry, 0, 64)
	}
	if cap(tx.writes) > keepCap {
		tx.writes = make([]writeEntry, 0, 16)
	}
}

// getRec pops a recycled write record if the top of the free list has the
// caller's concrete type (checked by the caller's type assertion); it
// returns nil when the list is empty. Domains that interleave TaggedPtr
// element types simply fall back to allocation on a type mismatch.
func (tx *Tx) getRec() pendingPtr {
	n := len(tx.freeRecs)
	if n == 0 {
		return nil
	}
	rec := tx.freeRecs[n-1]
	tx.freeRecs[n-1] = nil
	tx.freeRecs = tx.freeRecs[:n-1]
	return rec
}

// putRec pushes back a record getRec handed out but the caller could not
// use (wrong concrete type).
func (tx *Tx) putRec(rec pendingPtr) {
	tx.freeRecs = append(tx.freeRecs, rec)
}

// usable reports whether the transaction can accept further operations,
// returning the poisoning error otherwise.
func (tx *Tx) usable() error {
	if tx.done {
		return ErrTxDone
	}
	return tx.err
}

// poison records the first conflict so that subsequent accesses fail fast.
func (tx *Tx) poison(err error) error {
	if tx.err == nil {
		tx.err = err
	}
	return err
}

// recordRead appends a validated read to the read set.
func (tx *Tx) recordRead(l *vlock, ver uint64) {
	tx.reads = append(tx.reads, readEntry{l: l, ver: ver})
}

// findWrite returns the index of the buffered write to the cell guarded by
// l, or -1. Write sets in this codebase are small (the Leap-LT transaction
// writes a handful of marks and a live flag per list), so a linear scan
// beats any map.
func (tx *Tx) findWrite(l *vlock) int {
	for i := range tx.writes {
		if tx.writes[i].l == l {
			return i
		}
	}
	return -1
}

// readVersioned performs the TL2 sandwich read protocol around loadVal and
// returns the version the value was consistent at.
func (tx *Tx) readVersioned(l *vlock, loadVal func()) (uint64, error) {
	v1, locked := l.sample()
	if locked {
		return 0, tx.poison(errReadLocked)
	}
	loadVal()
	v2, locked2 := l.sample()
	if locked2 || v2 != v1 {
		return 0, tx.poison(errReadVersion)
	}
	if v1 > tx.rv && !tx.extend() {
		return 0, tx.poison(errReadVersion)
	}
	tx.recordRead(l, v1)
	return v1, nil
}

// extend attempts TinySTM-style timestamp extension: if every read so far is
// still at its recorded version, the transaction may adopt the current
// clock as its new read version.
func (tx *Tx) extend() bool {
	if !tx.s.extension {
		return false
	}
	now := tx.s.clock.Now()
	for i := range tx.reads {
		ver, locked := tx.reads[i].l.sample()
		if locked || ver != tx.reads[i].ver {
			return false
		}
	}
	tx.rv = now
	if st := tx.s.stats; st != nil {
		st.Extensions.Add(1)
	}
	return true
}

// commit runs the TL2 commit protocol: acquire write locks with bounded
// spinning, take a write version from the clock, validate the read set
// (skipped when no other transaction committed since begin), apply buffered
// writes, release locks at the write version.
func (tx *Tx) commit() error {
	if tx.err != nil {
		tx.abort(tx.err)
		return tx.err
	}
	tx.done = true
	if len(tx.writes) == 0 {
		// Read-only transactions were validated incrementally; in TL2 they
		// commit without touching shared state.
		if st := tx.s.stats; st != nil {
			st.Commits.Add(1)
		}
		return nil
	}

	if err := tx.acquireWriteLocks(); err != nil {
		return err
	}

	wv := tx.s.clock.Tick()
	if wv != tx.rv+1 {
		// At least one other commit intervened: validate the read set.
		for i := range tx.reads {
			r := &tx.reads[i]
			ver, locked := r.l.sample()
			if ver != r.ver || (locked && tx.findWrite(r.l) < 0) {
				tx.releaseLocked(len(tx.writes)) // acquireWriteLocks took them all
				tx.abortWith(errCommitVerify)
				return errCommitVerify
			}
		}
	}

	for i := range tx.writes {
		e := &tx.writes[i]
		if e.word != nil {
			e.word.v.Store(e.val)
		} else {
			e.obj.apply()
		}
	}
	for i := range tx.writes {
		tx.writes[i].l.unlockTo(wv)
	}
	if st := tx.s.stats; st != nil {
		st.Commits.Add(1)
	}
	return nil
}

// acquireWriteLocks is the first stage of both the fused commit and the
// split prepare: acquire every write-set lock with bounded spinning,
// recording each cell's prior version for restore-on-abort. On failure
// everything acquired is released and the transaction is aborted with
// errCommitLock. Shared so the two commit paths can never diverge in
// acquisition policy.
func (tx *Tx) acquireWriteLocks() error {
	acquired := 0
	for i := range tx.writes {
		e := &tx.writes[i]
		ok := false
		for spin := 0; spin < tx.s.lockSpin; spin++ {
			ver, locked := e.l.sample()
			if !locked && e.l.tryLock(ver) {
				e.prev = ver
				ok = true
				break
			}
			cpuRelax()
		}
		if !ok {
			tx.releaseLocked(acquired)
			tx.abortWith(errCommitLock)
			return errCommitLock
		}
		acquired++
	}
	return nil
}

// releaseLocked releases the first n acquired write locks at their prior
// versions after a failed commit.
func (tx *Tx) releaseLocked(n int) {
	for i := 0; i < n; i++ {
		tx.writes[i].l.unlockRestore(tx.writes[i].prev)
	}
}

func (tx *Tx) abortWith(err error) {
	if st := tx.s.stats; st != nil {
		st.Aborts.Add(1)
	}
	_ = tx.poison(err)
}

// PooledTxFootprint pulls one descriptor from the domain's pool and
// reports (as a non-empty description) any pointer it retains beyond the
// len of its read/write sets. Pooled descriptors must park with fully
// cleared capacity tails — a populated tail pins dead node shells and
// cells until the pool happens to recycle the entry. Intended for tests
// and diagnostics; returns "" when the footprint is clean.
func PooledTxFootprint(s *STM) string {
	tx := s.txPool.Get().(*Tx)
	defer s.txPool.Put(tx)
	if len(tx.reads) != 0 || len(tx.writes) != 0 {
		return "pooled Tx has non-empty read/write sets"
	}
	for i, r := range tx.reads[:cap(tx.reads)] {
		if r.l != nil {
			return "reads[" + itoa(i) + "].l set beyond len"
		}
	}
	for i, w := range tx.writes[:cap(tx.writes)] {
		if w.l != nil || w.word != nil || w.obj != nil {
			return "writes[" + itoa(i) + "] populated beyond len"
		}
	}
	return ""
}

// itoa is a tiny strconv.Itoa for the diagnostic above (non-negative).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
