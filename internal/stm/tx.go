package stm

import "unsafe"

// readEntry records one transactional read: the cell's lock and the version
// the value was read at.
type readEntry struct {
	l   *vlock
	ver uint64
}

// writeEntry is one buffered write, stored entirely inline so that
// buffering a write never allocates no matter how wide the write set
// grows (a DeleteRange run splice marks hundreds of slots in one
// transaction). Word writes use (word, val); TaggedPtr writes use
// (tagged, pval) with val carrying the buffered tag. Exactly one of word
// and tagged is set.
type writeEntry struct {
	l    *vlock
	prev uint64 // version restored if the commit aborts after locking

	word *Word
	val  uint64 // Word value, or the buffered tag of a TaggedPtr write

	tagged *taggedBase
	pval   unsafe.Pointer // buffered pointer half of a TaggedPtr write
}

// applyWrite publishes one buffered write into its cell's backing storage
// during commit write-back; shared by the fused commit and the split
// prepare/publish path so the two can never diverge.
func applyWrite(e *writeEntry) {
	if e.word != nil {
		e.word.v.Store(e.val)
	} else {
		e.tagged.store(e.pval)
		e.tagged.t.Store(e.val)
	}
}

// Tx is a transaction descriptor. A Tx is only valid inside the function
// passed to Atomically/AtomicallyOnce and must not be shared between
// goroutines or retained.
type Tx struct {
	s      *STM
	rv     uint64
	reads  []readEntry
	writes []writeEntry
	err    error // poisoned by the first conflict; sticky until finish
	done   bool

	// writeIdx indexes the write set by cell once it outgrows the linear
	// scan (see findWrite); nil for the common small transaction. The map
	// is retained (cleared) across the transactions served by this pooled
	// descriptor so wide-batch domains build it once.
	writeIdx map[*vlock]int
}

func newTx(s *STM) *Tx {
	return &Tx{
		s:      s,
		reads:  make([]readEntry, 0, 64),
		writes: make([]writeEntry, 0, 16),
	}
}

func (tx *Tx) begin() {
	tx.rv = tx.s.clock.Now()
	// reads/writes are already empty: finish cleared and truncated them
	// on every prior path, and a fresh descriptor starts at length zero.
	tx.err = nil
	tx.done = false
	if st := tx.s.stats; st != nil {
		st.Starts.Add(1)
	}
}

func (tx *Tx) abort(cause error) {
	tx.done = true
	if st := tx.s.stats; st != nil && IsConflict(cause) {
		st.Aborts.Add(1)
	}
}

func (tx *Tx) finish() {
	tx.done = true
	// Entries hold pointers reaching into node shells (vlocks, buffered
	// pointer halves); a pooled descriptor retaining them would pin dead
	// shells until the next transaction of this size happens to overwrite
	// the entry. The read set's entries are nothing but lock pointers.
	clear(tx.writes)
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	// Oversized sets are not returned to the pool at their grown capacity;
	// shrinking keeps pooled descriptors cheap for the common small tx.
	const keepCap = 1 << 12
	if cap(tx.reads) > keepCap {
		tx.reads = make([]readEntry, 0, 64)
	}
	if cap(tx.writes) > keepCap {
		tx.writes = make([]writeEntry, 0, 16)
	}
	if tx.writeIdx != nil {
		if len(tx.writeIdx) > keepCap {
			tx.writeIdx = nil
		} else {
			clear(tx.writeIdx)
		}
	}
}

// usable reports whether the transaction can accept further operations,
// returning the poisoning error otherwise.
func (tx *Tx) usable() error {
	if tx.done {
		return ErrTxDone
	}
	return tx.err
}

// poison records the first conflict so that subsequent accesses fail fast.
func (tx *Tx) poison(err error) error {
	if tx.err == nil {
		tx.err = err
	}
	return err
}

// recordRead appends a validated read to the read set.
func (tx *Tx) recordRead(l *vlock, ver uint64) {
	tx.reads = append(tx.reads, readEntry{l: l, ver: ver})
}

// writeIdxSpill is the write-set size past which findWrite switches from
// the linear scan to the writeIdx map. The common transaction (a handful
// of marks and a live flag per list) stays under it and never builds the
// map; a run-splice transaction marking hundreds of slots spills once
// and gets O(1) lookups, keeping lock acquisition linear in the number
// of slots instead of quadratic.
const writeIdxSpill = 32

// findWrite returns the index of the buffered write to the cell guarded by
// l, or -1.
func (tx *Tx) findWrite(l *vlock) int {
	if tx.writeIdx != nil && len(tx.writes) > writeIdxSpill {
		i, ok := tx.writeIdx[l]
		if !ok {
			return -1
		}
		return i
	}
	for i := range tx.writes {
		if tx.writes[i].l == l {
			return i
		}
	}
	return -1
}

// recordWrite appends a buffered write, maintaining the spilled index
// when the write set is past the linear-scan bound.
func (tx *Tx) recordWrite(e writeEntry) {
	tx.writes = append(tx.writes, e)
	if len(tx.writes) <= writeIdxSpill {
		return
	}
	if tx.writeIdx == nil {
		tx.writeIdx = make(map[*vlock]int, 2*len(tx.writes))
	}
	if len(tx.writeIdx) == 0 {
		for i := range tx.writes {
			tx.writeIdx[tx.writes[i].l] = i
		}
		return
	}
	tx.writeIdx[e.l] = len(tx.writes) - 1
}

// readVersioned performs the TL2 sandwich read protocol around loadVal and
// returns the version the value was consistent at.
func (tx *Tx) readVersioned(l *vlock, loadVal func()) (uint64, error) {
	v1, locked := l.sample()
	if locked {
		return 0, tx.poison(errReadLocked)
	}
	loadVal()
	v2, locked2 := l.sample()
	if locked2 || v2 != v1 {
		return 0, tx.poison(errReadVersion)
	}
	if v1 > tx.rv && !tx.extend() {
		return 0, tx.poison(errReadVersion)
	}
	tx.recordRead(l, v1)
	return v1, nil
}

// extend attempts TinySTM-style timestamp extension: if every read so far is
// still at its recorded version, the transaction may adopt the current
// clock as its new read version.
func (tx *Tx) extend() bool {
	if !tx.s.extension {
		return false
	}
	now := tx.s.clock.Now()
	for i := range tx.reads {
		ver, locked := tx.reads[i].l.sample()
		if locked || ver != tx.reads[i].ver {
			return false
		}
	}
	tx.rv = now
	if st := tx.s.stats; st != nil {
		st.Extensions.Add(1)
	}
	return true
}

// commit runs the TL2 commit protocol: acquire write locks with bounded
// spinning, take a write version from the clock, validate the read set
// (skipped when no other transaction committed since begin), apply buffered
// writes, release locks at the write version.
func (tx *Tx) commit() error {
	if tx.err != nil {
		tx.abort(tx.err)
		return tx.err
	}
	tx.done = true
	if len(tx.writes) == 0 {
		// Read-only transactions were validated incrementally; in TL2 they
		// commit without touching shared state.
		if st := tx.s.stats; st != nil {
			st.Commits.Add(1)
		}
		return nil
	}

	if err := tx.acquireWriteLocks(); err != nil {
		return err
	}

	wv := tx.s.clock.Tick()
	if wv != tx.rv+1 {
		// At least one other commit intervened: validate the read set.
		for i := range tx.reads {
			r := &tx.reads[i]
			ver, locked := r.l.sample()
			if ver != r.ver || (locked && tx.findWrite(r.l) < 0) {
				tx.releaseLocked(len(tx.writes)) // acquireWriteLocks took them all
				tx.abortWith(errCommitVerify)
				return errCommitVerify
			}
		}
	}

	for i := range tx.writes {
		applyWrite(&tx.writes[i])
	}
	for i := range tx.writes {
		tx.writes[i].l.unlockTo(wv)
	}
	if st := tx.s.stats; st != nil {
		st.Commits.Add(1)
	}
	return nil
}

// acquireWriteLocks is the first stage of both the fused commit and the
// split prepare: acquire every write-set lock with bounded spinning,
// recording each cell's prior version for restore-on-abort. On failure
// everything acquired is released and the transaction is aborted with
// errCommitLock. Shared so the two commit paths can never diverge in
// acquisition policy.
func (tx *Tx) acquireWriteLocks() error {
	acquired := 0
	for i := range tx.writes {
		e := &tx.writes[i]
		ok := false
		for spin := 0; spin < tx.s.lockSpin; spin++ {
			ver, locked := e.l.sample()
			if !locked && e.l.tryLock(ver) {
				e.prev = ver
				ok = true
				break
			}
			cpuRelax()
		}
		if !ok {
			tx.releaseLocked(acquired)
			tx.abortWith(errCommitLock)
			return errCommitLock
		}
		acquired++
	}
	return nil
}

// releaseLocked releases the first n acquired write locks at their prior
// versions after a failed commit.
func (tx *Tx) releaseLocked(n int) {
	for i := 0; i < n; i++ {
		tx.writes[i].l.unlockRestore(tx.writes[i].prev)
	}
}

func (tx *Tx) abortWith(err error) {
	if st := tx.s.stats; st != nil {
		st.Aborts.Add(1)
	}
	_ = tx.poison(err)
}

// PooledTxFootprint pulls one descriptor from the domain's pool and
// reports (as a non-empty description) any pointer it retains beyond the
// len of its read/write sets. Pooled descriptors must park with fully
// cleared capacity tails — a populated tail pins dead node shells and
// cells until the pool happens to recycle the entry. Intended for tests
// and diagnostics; returns "" when the footprint is clean.
func PooledTxFootprint(s *STM) string {
	tx := s.txPool.Get().(*Tx)
	defer s.txPool.Put(tx)
	if len(tx.reads) != 0 || len(tx.writes) != 0 {
		return "pooled Tx has non-empty read/write sets"
	}
	for i, r := range tx.reads[:cap(tx.reads)] {
		if r.l != nil {
			return "reads[" + itoa(i) + "].l set beyond len"
		}
	}
	for i, w := range tx.writes[:cap(tx.writes)] {
		if w.l != nil || w.word != nil || w.tagged != nil || w.pval != nil {
			return "writes[" + itoa(i) + "] populated beyond len"
		}
	}
	return ""
}

// itoa is a tiny strconv.Itoa for the diagnostic above (non-negative).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
