package stm

import (
	"errors"
	"testing"
)

// TestPreparedPublish pins the split commit's visibility contract: a
// prepared write is invisible (Peek and fresh transactions see the old
// value), Publish makes it visible with a version bump, and the
// descriptor is reusable afterwards.
func TestPreparedPublish(t *testing.T) {
	s := New()
	var w Word
	w.Init(1)

	var p PreparedTx
	if err := s.PrepareOnce(&p, false, func(tx *Tx) error {
		v, err := w.Load(tx)
		if err != nil {
			return err
		}
		return w.Store(tx, v+41)
	}); err != nil {
		t.Fatalf("PrepareOnce: %v", err)
	}
	if !p.Prepared() {
		t.Fatal("descriptor not prepared after PrepareOnce")
	}
	if got := w.Peek(); got != 1 {
		t.Fatalf("prepared write already visible: Peek = %d, want 1", got)
	}
	// The write lock must exclude transactional readers of the cell.
	err := s.AtomicallyOnce(func(tx *Tx) error {
		_, err := w.Load(tx)
		return err
	})
	if !IsConflict(err) {
		t.Fatalf("read of prepared cell = %v, want conflict", err)
	}
	before := s.Now()
	p.Publish()
	if p.Prepared() {
		t.Fatal("descriptor still prepared after Publish")
	}
	if got := w.Peek(); got != 42 {
		t.Fatalf("Peek after Publish = %d, want 42", got)
	}
	if s.Now() != before+1 {
		t.Fatalf("Publish bumped clock to %d, want %d", s.Now(), before+1)
	}
	if ver, locked := w.Version(); locked || ver != s.Now() {
		t.Fatalf("cell at (ver=%d, locked=%v), want (%d, false)", ver, locked, s.Now())
	}

	// Reuse the same descriptor.
	if err := s.PrepareOnce(&p, false, func(tx *Tx) error {
		return w.Store(tx, 7)
	}); err != nil {
		t.Fatalf("second PrepareOnce: %v", err)
	}
	p.Publish()
	if got := w.Peek(); got != 7 {
		t.Fatalf("Peek after reuse = %d, want 7", got)
	}
}

// TestPreparedAbort pins the abort contract: every lock released at its
// pre-prepare version, the buffered write discarded, the clock
// untouched.
func TestPreparedAbort(t *testing.T) {
	s := New()
	var w Word
	w.Init(5)
	verBefore, _ := w.Version()
	clockBefore := s.Now()

	var p PreparedTx
	if err := s.PrepareOnce(&p, false, func(tx *Tx) error {
		return w.Store(tx, 99)
	}); err != nil {
		t.Fatalf("PrepareOnce: %v", err)
	}
	p.Abort()
	if p.Prepared() {
		t.Fatal("descriptor still prepared after Abort")
	}
	if got := w.Peek(); got != 5 {
		t.Fatalf("Peek after Abort = %d, want 5", got)
	}
	if ver, locked := w.Version(); locked || ver != verBefore {
		t.Fatalf("cell at (ver=%d, locked=%v) after Abort, want (%d, false)", ver, locked, verBefore)
	}
	if s.Now() != clockBefore {
		t.Fatalf("Abort moved the clock: %d, want %d", s.Now(), clockBefore)
	}
	// The cell is free again: a normal commit must succeed.
	if err := s.Atomically(func(tx *Tx) error { return w.Store(tx, 6) }); err != nil {
		t.Fatalf("commit after Abort: %v", err)
	}
	if got := w.Peek(); got != 6 {
		t.Fatalf("Peek = %d, want 6", got)
	}
}

// TestPreparedLockReads pins the 2PC read-stability contract: with
// lockReads a prepared transaction's read-only cells are locked, so a
// competitor writing them conflicts until Publish/Abort releases them
// at their original versions.
func TestPreparedLockReads(t *testing.T) {
	s := New()
	var readCell, writeCell Word
	readCell.Init(10)
	writeCell.Init(20)
	readVerBefore, _ := readCell.Version()

	var p PreparedTx
	if err := s.PrepareOnce(&p, true, func(tx *Tx) error {
		if _, err := readCell.Load(tx); err != nil {
			return err
		}
		// Load the read cell twice: the dedup path must not self-conflict.
		if _, err := readCell.Load(tx); err != nil {
			return err
		}
		return writeCell.Store(tx, 21)
	}); err != nil {
		t.Fatalf("PrepareOnce: %v", err)
	}
	// A competitor writing the read-locked cell must fail to commit.
	err := s.AtomicallyOnce(func(tx *Tx) error { return readCell.Store(tx, 11) })
	if !IsConflict(err) {
		t.Fatalf("competitor on read-locked cell = %v, want conflict", err)
	}
	if got := readCell.Peek(); got != 10 {
		t.Fatalf("read-locked cell changed: %d, want 10", got)
	}
	p.Publish()
	// The read lock released at the ORIGINAL version: pure reads never
	// invalidate other readers.
	if ver, locked := readCell.Version(); locked || ver != readVerBefore {
		t.Fatalf("read cell at (ver=%d, locked=%v), want (%d, false)", ver, locked, readVerBefore)
	}
	if got := writeCell.Peek(); got != 21 {
		t.Fatalf("write cell = %d, want 21", got)
	}
	// And the competitor now succeeds.
	if err := s.Atomically(func(tx *Tx) error { return readCell.Store(tx, 11) }); err != nil {
		t.Fatalf("commit after Publish: %v", err)
	}
}

// TestPreparedConflicts pins the failure modes of phase one: a write
// lock held by another prepared transaction, and a read invalidated
// between its load and the prepare.
func TestPreparedConflicts(t *testing.T) {
	s := New()
	var w Word
	w.Init(0)

	var p1, p2 PreparedTx
	if err := s.PrepareOnce(&p1, false, func(tx *Tx) error {
		return w.Store(tx, 1)
	}); err != nil {
		t.Fatalf("first PrepareOnce: %v", err)
	}
	err := s.PrepareOnce(&p2, false, func(tx *Tx) error {
		return w.Store(tx, 2)
	})
	if !IsConflict(err) {
		t.Fatalf("second prepare of locked cell = %v, want conflict", err)
	}
	if p2.Prepared() {
		t.Fatal("failed prepare left the descriptor prepared")
	}
	p1.Abort()

	// Read invalidation: load w, then have a competitor commit to it
	// before this transaction prepares.
	err = s.PrepareOnce(&p2, false, func(tx *Tx) error {
		if _, err := w.Load(tx); err != nil {
			return err
		}
		if err := s.Atomically(func(tx2 *Tx) error { return w.Store(tx2, 3) }); err != nil {
			t.Fatalf("competitor commit: %v", err)
		}
		return nil
	})
	if !IsConflict(err) {
		t.Fatalf("prepare with stale read = %v, want conflict", err)
	}
	if errors.Is(err, ErrTxDone) {
		t.Fatalf("stale read surfaced as ErrTxDone: %v", err)
	}
}
