package stm

import "sync/atomic"

// Clock is a shareable global version clock: a monotone counter bumped by
// every read-write commit of the domains running on it and — since the
// bundled-reference read path — by every batch publish, so one counter
// orders both the TL2 version space and the snapshot timestamps of the
// versioned level-0 links. A Clock may be shared by several STM domains
// (stm.WithClock): TL2 stays correct because sharing only makes versions
// skip ahead, which every validation path already tolerates, and sharing
// is what makes one snapshot timestamp valid across every shard of a
// Sharded map.
type Clock struct {
	// The counter is the hottest globally shared word in the system; the
	// padding keeps it alone on its cache line so bumps do not invalidate
	// whatever the Clock is allocated next to.
	v atomic.Uint64
	_ [56]byte
}

// NewClock returns a clock at zero.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current clock value.
func (c *Clock) Now() uint64 {
	return c.v.Load()
}

// Tick advances the clock and returns the new value. Committing
// transactions tick through their domain; the Leap-List's lock-based
// variants tick directly at their publish linearization point.
func (c *Clock) Tick() uint64 {
	return c.v.Add(1)
}
