package stm

import (
	"sync"
	"testing"
	"testing/quick"
)

// TestQuickSequentialWordSemantics: any sequence of transactional stores
// and loads over a vector of Words behaves like a plain array.
func TestQuickSequentialWordSemantics(t *testing.T) {
	s := New()
	f := func(ops []struct {
		Idx uint8
		Val uint64
	}) bool {
		const cells = 16
		words := make([]Word, cells)
		model := make([]uint64, cells)
		for _, op := range ops {
			i := int(op.Idx) % cells
			err := s.Atomically(func(tx *Tx) error {
				cur, err := words[i].Load(tx)
				if err != nil {
					return err
				}
				if cur != model[i] {
					t.Errorf("cell %d = %d, model %d", i, cur, model[i])
				}
				return words[i].Store(tx, op.Val)
			})
			if err != nil {
				return false
			}
			model[i] = op.Val
		}
		for i := range words {
			if words[i].Peek() != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTxAllOrNothing: a transaction writing a random subset of cells
// either applies every write (commit) or none (user abort), regardless of
// which cells it touched.
func TestQuickTxAllOrNothing(t *testing.T) {
	s := New()
	f := func(writes []uint8, abort bool) bool {
		const cells = 8
		words := make([]Word, cells)
		for i := range words {
			words[i].Init(uint64(i) + 100)
		}
		err := s.AtomicallyOnce(func(tx *Tx) error {
			for _, w := range writes {
				if err := words[int(w)%cells].Store(tx, 555); err != nil {
					return err
				}
			}
			if abort {
				return ErrTxDone // any conflict-class error aborts
			}
			return nil
		})
		if abort != (err != nil) {
			return false
		}
		touched := map[int]bool{}
		for _, w := range writes {
			touched[int(w)%cells] = true
		}
		for i := range words {
			got := words[i].Peek()
			want := uint64(i) + 100
			if !abort && touched[i] {
				want = 555
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentDisjointWritersNeverConflictForever: writers touching
// disjoint cells must all complete (no cross-talk between unrelated cells).
func TestQuickConcurrentDisjointWritersNeverConflictForever(t *testing.T) {
	s := New()
	f := func(seed uint8) bool {
		const workers = 4
		const perWorker = 8
		words := make([]Word, workers*perWorker)
		var wg sync.WaitGroup
		okAll := true
		var mu sync.Mutex
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := w * perWorker
				for i := 0; i < 50; i++ {
					err := s.Atomically(func(tx *Tx) error {
						for c := 0; c < perWorker; c++ {
							v, err := words[base+c].Load(tx)
							if err != nil {
								return err
							}
							if err := words[base+c].Store(tx, v+1); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						mu.Lock()
						okAll = false
						mu.Unlock()
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if !okAll {
			return false
		}
		for i := range words {
			if words[i].Peek() != 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTaggedPtrPairAtomicity: transactional readers of a TaggedPtr
// always see matched (pointer, tag) pairs written together.
func TestQuickTaggedPtrPairAtomicity(t *testing.T) {
	type box struct{ id uint64 }
	s := New()
	var tp TaggedPtr[box]
	boxes := make([]*box, 16)
	for i := range boxes {
		boxes[i] = &box{id: uint64(i)}
	}
	tp.Init(boxes[0], 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var violated sync.Once
	bad := false
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := s.Atomically(func(tx *Tx) error {
					p, tag, err := tp.Load(tx)
					if err != nil {
						return err
					}
					if p.id != tag {
						violated.Do(func() { bad = true })
					}
					return nil
				})
				if err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		b := boxes[i%len(boxes)]
		if err := s.Atomically(func(tx *Tx) error {
			return tp.Store(tx, b, b.id)
		}); err != nil {
			t.Fatalf("Store: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if bad {
		t.Fatal("reader observed torn (pointer, tag) pair")
	}
}
