package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"leaplist/internal/stm"
)

// These tests pin the pooled-scratch clearing invariant the leaplint
// poolhygiene analyzer enforces statically: every [:0] truncation of a
// pointerful slice is preceded by a clear, so the len-bounded cleanup in
// putRead/putBatch leaves no live pointer beyond len. A violation does
// not corrupt data — it silently pins retired nodes (and their values)
// for the pooled scratch's lifetime.

// tailNil fails the test if any element of s beyond len(s) is non-nil.
func tailNil[T any](t *testing.T, name string, s []*T) {
	t.Helper()
	for i, p := range s[len(s):cap(s)] {
		if p != nil {
			t.Errorf("%s[%d] still set beyond len: pooled scratch pins a dead object", name, len(s)+i)
		}
	}
}

// TestSnapshotRunShrinkClearsNodes reruns snapshotRun on the same
// scratch with a narrower range. The second run truncates r.nodes below
// the first run's length; the clear-before-truncate in snapshotRun is
// what keeps the stranded tail nil (putRead's loop only ranges over the
// final len).
func TestSnapshotRunShrinkClearsNodes(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for i := uint64(0); i < 64; i++ {
			if err := l.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		r := g.getRead()
		defer g.putRead(r)
		l.snapshotRun(r, toInternal(0), toInternal(63)) // wide: many nodes
		if len(r.nodes) < 2 {
			t.Fatalf("wide snapshot collected %d nodes, want >= 2", len(r.nodes))
		}
		l.snapshotRun(r, toInternal(0), toInternal(0)) // narrow: one node
		tailNil(t, "r.nodes", r.nodes)
	})
}

// TestReplanClearsEntryPieces drives nextEntry the way a batch replan
// does — hand out an entry, grow its pieces, rewind nEnt, hand the same
// entry out again with fewer pieces — and checks the stale tail was
// cleared rather than stranded beyond len.
func TestReplanClearsEntryPieces(t *testing.T) {
	g := newTestGroup(t, VariantLT)
	b := g.getBatch()
	defer g.putBatch(b)

	e := b.nextEntry(g.cfg.MaxLevel)
	e.pieces = append(e.pieces, &node[uint64]{}, &node[uint64]{}, &node[uint64]{})

	b.nEnt = 0 // replan: the next attempt reuses the same pooled entry
	e = b.nextEntry(g.cfg.MaxLevel)
	e.pieces = append(e.pieces, &node[uint64]{})
	tailNil(t, "e.pieces", e.pieces)
}

// TestPutBatchClearsPooledTails commits a real multi-list, multi-op
// batch (populating marked, lists, and entry pieces), then pulls the
// scratch back out of the pool and checks every pointerful slice is nil
// across its full capacity, not just up to len.
func TestPutBatchClearsPooledTails(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l1, l2 := g.NewList(), g.NewList()
		for i := uint64(0); i < 32; i++ {
			if err := l1.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		ops := []Op[uint64]{
			{List: l1, Kind: OpSet, Key: 3, Val: 30},
			{List: l1, Kind: OpDelete, Key: 9},
			{List: l1, Kind: OpDeleteRange, Key: 12, KeyHi: 20},
			{List: l2, Kind: OpSet, Key: 5, Val: 50},
			{List: l1, Kind: OpSet, Key: 40, Val: 400},
		}
		// Single goroutine, no intervening Put: the pool hands back the
		// scratch the commit just parked. A GC between Put and Get can
		// empty the pool, so retry the commit a few times before giving
		// up.
		var b *txState[uint64]
		for attempt := 0; attempt < 5 && b == nil; attempt++ {
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("CommitOps: %v", err)
			}
			b, _ = g.pool.Get().(*txState[uint64])
		}
		if b == nil {
			t.Skip("pool drained by GC on every attempt")
		}
		defer g.pool.Put(b)
		tailNil(t, "b.marked", b.marked)
		tailNil(t, "b.lists", b.lists)
		for i, e := range b.entries {
			if e == nil {
				continue
			}
			tailNil(t, "entry.pieces", e.pieces)
			for j, p := range e.pieces {
				if p != nil {
					t.Errorf("entries[%d].pieces[%d] still set after putBatch", i, j)
				}
			}
		}
	})
}

// TestFinishedTxLeavesNoSTMFootprint checks the same invariant one layer
// down: after a committed batch, the STM descriptor parked in the shared
// domain's pool must not retain vlock/cell pointers beyond len.
func TestFinishedTxLeavesNoSTMFootprint(t *testing.T) {
	s := stm.New()
	g := NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: VariantLT}, s)
	l := g.NewList()
	for i := uint64(0); i < 16; i++ {
		if err := l.Set(i, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if leaked := stm.PooledTxFootprint(s); leaked != "" {
		t.Fatalf("pooled Tx retains pointers: %s", leaked)
	}
}

// TestCheckInvariantsConcurrent churns writers (whose deletes retire and
// recycle nodes) against CheckInvariants walkers. The walker pins an
// epoch participant; without the pin its naked node reads race node
// recycling — run under -race to see the original failure.
func TestCheckInvariantsConcurrent(t *testing.T) {
	for _, v := range []Variant{VariantLT, VariantCOP} {
		t.Run(v.String(), func(t *testing.T) {
			g := newTestGroup(t, v)
			l := g.NewList()
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					k := seed
					for !stop.Load() {
						if err := l.Set(k%128, k); err != nil {
							t.Errorf("Set: %v", err)
							return
						}
						if _, err := l.Delete((k + 7) % 128); err != nil {
							t.Errorf("Delete: %v", err)
							return
						}
						k += 13
					}
				}(uint64(w) * 1000)
			}
			for i := 0; i < 400; i++ {
				// Transient violations are expected mid-flight; the test
				// is that the walk itself is race-free.
				_ = l.CheckInvariants()
			}
			stop.Store(true)
			wg.Wait()
			mustCheck(t, l)
		})
	}
}
