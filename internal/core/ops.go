package core

// CommitOps atomically applies a batch of staged operations — any mix of
// OpSet, OpDelete, OpGet, OpGetRange and OpDeleteRange over any member
// lists, including several keys in one list — as a single linearizable
// operation (the generalization of the paper's composed Update/Remove
// over L lists). Results (Get values, Delete presence, GetRange
// snapshots, DeleteRange counts) are written back into the ops slice.
//
// Ops are applied in slice order per (list, key): later writes win and a
// Get observes the writes staged before it; a range op participates per
// covered key at its staged position. Keys landing in the same fat node
// are coalesced into one node replacement; a range op spanning several
// adjacent nodes plans one group per node of its run. The linearization
// point is the commit of the batch's single validation transaction (LT,
// COP, TM) or the span of the write locks (RWLock) — a GetRange snapshot
// and every point result of the batch share that single instant.
func (g *Group[V]) CommitOps(ops []Op[V]) error {
	if err := g.checkOps(ops); err != nil {
		return err
	}
	b := g.getBatch()
	defer g.putBatch(b)
	b.sortOps(ops)
	switch g.cfg.Variant {
	case VariantLT:
		g.commitLT(ops, b)
	case VariantCOP:
		g.commitCOP(ops, b)
	case VariantTM:
		g.commitTM(ops, b)
	case VariantRW:
		g.commitRW(ops, b)
	default:
		panic("core: unknown variant")
	}
	return nil
}

// Update atomically applies, for every j, "set ks[j] to vs[j]" in list
// ls[j] — inserting the key if absent, replacing its value otherwise (the
// paper's Update(ll, k, v, s)). It is the legacy fixed-shape form of
// CommitOps and keeps its historical contract: distinct lists, one key
// per list.
func (g *Group[V]) Update(ls []*List[V], ks []uint64, vs []V) error {
	if err := g.checkBatch(ls, ks, len(vs)); err != nil {
		return err
	}
	ops := g.getOps(len(ls))
	for j := range ls {
		ops[j] = Op[V]{List: ls[j], Kind: OpSet, Key: ks[j], Val: vs[j]}
	}
	err := g.CommitOps(ops)
	g.putOps(ops)
	return err
}

// Remove atomically removes, for every j, key ks[j] from list ls[j] (the
// paper's Remove(ll, k, s)). changed[j] reports whether the key was
// present. changed may be nil; when non-nil its length must match. Like
// Update it is the legacy fixed-shape form of CommitOps.
func (g *Group[V]) Remove(ls []*List[V], ks []uint64, changed []bool) error {
	if err := g.checkBatch(ls, ks, -1); err != nil {
		return err
	}
	if changed != nil && len(changed) != len(ls) {
		return ErrBatchMismatch
	}
	ops := g.getOps(len(ls))
	for j := range ls {
		ops[j] = Op[V]{List: ls[j], Kind: OpDelete, Key: ks[j]}
	}
	err := g.CommitOps(ops)
	if err == nil && changed != nil {
		for j := range ops {
			changed[j] = ops[j].Found
		}
	}
	g.putOps(ops)
	return err
}

// getOps returns a pooled op slice of length n for the legacy wrappers.
// Slices circulate boxed in kvBox husks so neither direction allocates a
// slice-header box (the old `Put(&ops)` pattern cost one allocation per
// call — one sixth of the remaining steady-state update allocations).
func (g *Group[V]) getOps(n int) []Op[V] {
	if b, _ := g.opsPool.Get().(*kvBox[Op[V]]); b != nil {
		s := b.s
		b.s = nil
		g.opsBoxPool.Put(b)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]Op[V], n)
}

func (g *Group[V]) putOps(ops []Op[V]) {
	clear(ops) // drop list pointers and values
	b, _ := g.opsBoxPool.Get().(*kvBox[Op[V]])
	if b == nil {
		b = &kvBox[Op[V]]{}
	}
	b.s = ops
	g.opsPool.Put(b)
}

// Set is the single-list convenience form of Update.
func (l *List[V]) Set(k uint64, v V) error {
	ls := [1]*List[V]{l}
	ks := [1]uint64{k}
	vs := [1]V{v}
	return l.g.Update(ls[:], ks[:], vs[:])
}

// Delete is the single-list convenience form of Remove.
func (l *List[V]) Delete(k uint64) (bool, error) {
	ls := [1]*List[V]{l}
	ks := [1]uint64{k}
	var changed [1]bool
	err := l.g.Remove(ls[:], ks[:], changed[:])
	return changed[0], err
}
