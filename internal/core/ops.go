package core

import (
	"errors"
	"time"
)

// ErrPrepareConflict reports that a bounded Prepare (PrepareOpts.
// MaxAttempts > 0) exhausted its conflict-retry budget without getting
// the batch prepared. The batch had no effect; the caller may retry.
// Two-phase coordinators use this to abort an already-prepared prefix
// instead of spinning against a competitor that holds later shards.
var ErrPrepareConflict = errors.New("core: prepare exhausted its conflict budget")

// ErrCanceled reports that a prepare observed its PrepareOpts.Done
// channel closed or its Deadline passed before succeeding. Like
// ErrPrepareConflict, nothing is held and the batch had no effect; the
// root facade maps it to leaplist.ErrTxTimeout.
var ErrCanceled = errors.New("core: prepare canceled")

// ErrNoBundles reports a timestamped read against a group built with
// NoBundles: without versioned links there is no as-of chain to resolve.
var ErrNoBundles = errors.New("core: group has versioned links disabled")

// ErrNotReadOnly reports a ReadOps batch containing a mutating op; the
// timestamped fast path resolves pure reads only.
var ErrNotReadOnly = errors.New("core: batch is not read-only")

// PrepareOpts tunes the prepare phase of a commit.
type PrepareOpts struct {
	// LockReads holds the batch's read validity until Publish: every
	// node a read-only group resolved against stays pinned (marked under
	// LT, its liveness cell locked under COP/TM, the list read-locked
	// under RW) so no competitor can replace it between Prepare and
	// Publish. A single-group CommitOps never needs this — it publishes
	// immediately — but a two-phase commit spanning several groups does:
	// without it, a competitor sneaking a commit between two shards'
	// prepare points would let the transaction observe a partial
	// cross-shard state.
	LockReads bool
	// MaxAttempts bounds the prepare phase's conflict retries; 0 retries
	// until success. When the budget runs out Prepare fails with
	// ErrPrepareConflict and nothing is held. VariantRW prepares by
	// blocking on list locks in a global acquisition order rather than
	// by optimistic retry, so the bound does not apply to it.
	MaxAttempts int
	// Done, when non-nil, cancels the prepare: each conflict-retry
	// iteration checks it (closed ⇒ ErrCanceled, nothing held). Wire a
	// context's Done() here for bounded-time commits. VariantRW checks
	// only on entry — once it starts blocking on the list locks in
	// acquisition order there is no safe preemption point.
	Done <-chan struct{}
	// Deadline, when nonzero, is an absolute wall-clock bound checked
	// alongside Done; past it prepare fails with ErrCanceled.
	Deadline time.Time
}

// bounded reports whether this prepare may give up (and so should run
// with a bounded naked-search spin budget rather than spinning forever
// against a stalled competitor).
func (o *PrepareOpts) bounded() bool {
	return o.MaxAttempts > 0 || o.Done != nil || !o.Deadline.IsZero()
}

// cancelErr returns ErrCanceled once the opts' Done channel is closed
// or the Deadline has passed, nil otherwise.
func (o *PrepareOpts) cancelErr() error {
	if o.Done != nil {
		select {
		case <-o.Done:
			return ErrCanceled
		default:
		}
	}
	if !o.Deadline.IsZero() && !time.Now().Before(o.Deadline) {
		return ErrCanceled
	}
	return nil
}

// committer is the three-phase commit state machine every variant
// implements behind CommitOps and PrepareOps:
//
//   - prepare: search, plan, build the replacement pieces, and
//     acquire/validate — locks taken (LT marks, COP/TM write locks, RW
//     list locks), every search re-validated at one instant. After a
//     successful prepare the batch is guaranteed publishable and its
//     footprint is protected from competitors.
//   - publish: swing the pointers — the batch's linearization point —
//     and retire the replaced nodes. Publish cannot fail.
//   - abort: release every lock, restoring the pre-prepare structure
//     exactly, and hand the never-published pieces back to the recycler
//     via releasePlan. Abort cannot fail.
//
// One of publish/abort must follow every successful prepare, on the
// same goroutine-owned txState.
//
// publishAt is the coordinated form of publish, split for the bundled
// two-phase commit: the caller has already run bundle phase A
// (bunPublishStart) on every participating batch and drawn one shared
// timestamp ts from the common clock; publishAt performs the swings and
// the fill pass at that timestamp. ts == 0 means "draw your own" (only
// legal when the batch pended no records — a read-only leg or bundles
// off). publish is exactly bunPublishStart + tick + publishAt.
type committer[V any] interface {
	prepare(ops []Op[V], b *txState[V], opt PrepareOpts) error
	publish(ops []Op[V], b *txState[V])
	publishAt(ops []Op[V], b *txState[V], ts uint64)
	abort(ops []Op[V], b *txState[V])
}

// CommitOps atomically applies a batch of staged operations — any mix of
// OpSet, OpDelete, OpGet, OpGetRange and OpDeleteRange over any member
// lists, including several keys in one list — as a single linearizable
// operation (the generalization of the paper's composed Update/Remove
// over L lists). Results (Get values, Delete presence, GetRange
// snapshots, DeleteRange counts) are written back into the ops slice.
//
// Ops are applied in slice order per (list, key): later writes win and a
// Get observes the writes staged before it; a range op participates per
// covered key at its staged position. Keys landing in the same fat node
// are coalesced into one node replacement; a range op spanning several
// adjacent nodes plans one group per node of its run. The linearization
// point is the publish phase of the variant's committer (see doc.go);
// a GetRange snapshot and every point result of the batch share that
// single instant.
//
// CommitOps is exactly Prepare followed by Publish with no gap: the
// trivial composition of the three-phase pipeline PrepareOps exposes.
func (g *Group[V]) CommitOps(ops []Op[V]) error {
	return g.CommitOpsOpt(ops, PrepareOpts{})
}

// CommitOpsOpt is CommitOps with explicit prepare options: a bounded or
// cancelable single-group commit. With a Done channel or Deadline set,
// a prepare that cannot win before the bound fails with ErrCanceled
// (with MaxAttempts, ErrPrepareConflict) and the batch had no effect —
// the structure is exactly as before the call. LockReads is pointless
// here (publish follows prepare immediately) but harmless.
func (g *Group[V]) CommitOpsOpt(ops []Op[V], opt PrepareOpts) error {
	if err := g.checkOps(ops); err != nil {
		return err
	}
	if g.bundles() && readOnlyOps(ops) {
		// Pure reads resolve against the as-of chain at one clock instant
		// — no prepare, no locks, no aborts (see asof.go). Pin first,
		// then draw the timestamp: the pin is what keeps every record the
		// chosen instant needs from being truncated mid-read.
		r := g.getRead()
		g.readOps(r, ops, g.stm.Clock().Now())
		g.putRead(r)
		return nil
	}
	b := g.getBatch()
	defer g.putBatch(b)
	b.sortOps(ops)
	if err := g.commit.prepare(ops, b, opt); err != nil {
		// Reachable only under a bounded/cancelable opt (ErrPrepareConflict,
		// ErrCanceled) or an armed failpoint; with the zero opt of
		// CommitOps, prepare retries until success and this branch exists
		// so a future bug surfaces as an error, not a corrupted structure.
		return err
	}
	g.commit.publish(ops, b)
	g.saveBatchFinger(b)
	return nil
}

// PreparedOps is a batch that passed the prepare phase and now holds its
// locks: planned, validated, replacement pieces built, nothing yet
// visible to readers. Exactly one of Publish or Abort must follow — the
// footprint stays locked (and the epoch participant pinned) until then,
// so a prepared batch should be resolved promptly. A PreparedOps is not
// safe for concurrent use and is invalid after Publish/Abort returns.
type PreparedOps[V any] struct {
	g   *Group[V]
	ops []Op[V]
	b   *txState[V]

	// started marks a PublishStart without its PublishAt yet: pending
	// bundle records are out on the live structure, so only PublishAt is
	// legal — an abort would strand them and deadlock timestamped readers.
	started bool
}

// PrepareOps runs the prepare phase of the three-phase commit pipeline
// on a batch and returns the prepared descriptor. On any error — a
// validation error from checkOps, or ErrPrepareConflict when a bounded
// prepare ran out of attempts — nothing is held and the batch had no
// effect.
//
// This is the participant half of a two-phase commit: a coordinator
// prepares one batch per group (in a deterministic group order, to
// exclude deadlock), then publishes them all — every batch's results
// then share one cross-group atomicity point — or aborts the prepared
// prefix when a later prepare fails. The Sharded facade in the root
// package is the canonical coordinator.
func (g *Group[V]) PrepareOps(ops []Op[V], opt PrepareOpts) (*PreparedOps[V], error) {
	if err := g.checkOps(ops); err != nil {
		return nil, err
	}
	b := g.getBatch()
	b.sortOps(ops)
	if err := g.commit.prepare(ops, b, opt); err != nil {
		g.putBatch(b)
		return nil, err
	}
	p, _ := g.preparedPool.Get().(*PreparedOps[V])
	if p == nil {
		p = &PreparedOps[V]{}
	}
	p.g, p.ops, p.b = g, ops, b
	return p, nil
}

// Publish swings the prepared batch's pointers — its linearization
// point — releases every lock, and retires the replaced nodes. The
// results of the batch's ops are valid once Publish returns.
func (p *PreparedOps[V]) Publish() {
	g := p.g
	if g == nil {
		panic("core: Publish of a completed PreparedOps")
	}
	if p.started {
		panic("core: Publish after PublishStart (use PublishAt)")
	}
	g.commit.publish(p.ops, p.b)
	g.saveBatchFinger(p.b)
	g.putBatch(p.b)
	p.g, p.ops, p.b = nil, nil, nil
	g.preparedPool.Put(p)
}

// PublishStart begins the publish phase without making anything
// visible: with bundles on it prepends the batch's PENDING records on
// every level-0 link the batch will change. From that point a
// timestamped reader whose snapshot is at or after the batch's eventual
// timestamp blocks on those links instead of reading past the batch, so
// a coordinator spanning several groups calls PublishStart on every
// prepared batch, draws ONE timestamp from the shared clock, and then
// finishes each batch with PublishAt — the combined publish is then
// atomic to timestamped readers: no reader holding the coordinator's
// timestamp can cross any affected link of any group until that group's
// PublishAt fills it, and every group fills with the same timestamp.
// With bundles off PublishStart is a no-op and PublishAt(0) degenerates
// to Publish.
//
// After PublishStart only PublishAt may follow (the pended records are
// already on the live structure; an abort would strand them forever).
func (p *PreparedOps[V]) PublishStart() {
	g := p.g
	if g == nil {
		panic("core: PublishStart of a completed PreparedOps")
	}
	if p.started {
		panic("core: PublishStart called twice")
	}
	if g.bundles() {
		g.bunPublishStart(p.b)
	}
	p.started = true
}

// PublishAt completes a publish begun by PublishStart, swinging the
// pointers and filling the pended records with the coordinator's shared
// timestamp ts (a Tick on the groups' common clock drawn after every
// participating batch's PublishStart, while every batch still holds its
// prepare-phase locks). See PublishStart for the coordination contract.
func (p *PreparedOps[V]) PublishAt(ts uint64) {
	g := p.g
	if g == nil {
		panic("core: PublishAt of a completed PreparedOps")
	}
	if !p.started {
		panic("core: PublishAt without PublishStart")
	}
	g.commit.publishAt(p.ops, p.b, ts)
	g.saveBatchFinger(p.b)
	g.putBatch(p.b)
	p.g, p.ops, p.b, p.started = nil, nil, nil, false
	g.preparedPool.Put(p)
}

// Abort releases every lock, restoring the pre-prepare structure
// exactly, and returns the never-published replacement pieces to the
// group's recycler (no grace period needed — no reader ever saw them).
func (p *PreparedOps[V]) Abort() {
	g := p.g
	if g == nil {
		panic("core: Abort of a completed PreparedOps")
	}
	if p.started {
		panic("core: Abort after PublishStart (the pended bundle records are live; only PublishAt may follow)")
	}
	g.commit.abort(p.ops, p.b)
	g.putBatch(p.b)
	p.g, p.ops, p.b = nil, nil, nil
	g.preparedPool.Put(p)
}

// Update atomically applies, for every j, "set ks[j] to vs[j]" in list
// ls[j] — inserting the key if absent, replacing its value otherwise (the
// paper's Update(ll, k, v, s)). It is the legacy fixed-shape form of
// CommitOps and keeps its historical contract: distinct lists, one key
// per list.
func (g *Group[V]) Update(ls []*List[V], ks []uint64, vs []V) error {
	if err := g.checkBatch(ls, ks, len(vs)); err != nil {
		return err
	}
	ops := g.getOps(len(ls))
	for j := range ls {
		ops[j] = Op[V]{List: ls[j], Kind: OpSet, Key: ks[j], Val: vs[j]}
	}
	err := g.CommitOps(ops)
	g.putOps(ops)
	return err
}

// Remove atomically removes, for every j, key ks[j] from list ls[j] (the
// paper's Remove(ll, k, s)). changed[j] reports whether the key was
// present. changed may be nil; when non-nil its length must match. Like
// Update it is the legacy fixed-shape form of CommitOps.
func (g *Group[V]) Remove(ls []*List[V], ks []uint64, changed []bool) error {
	if err := g.checkBatch(ls, ks, -1); err != nil {
		return err
	}
	if changed != nil && len(changed) != len(ls) {
		return ErrBatchMismatch
	}
	ops := g.getOps(len(ls))
	for j := range ls {
		ops[j] = Op[V]{List: ls[j], Kind: OpDelete, Key: ks[j]}
	}
	err := g.CommitOps(ops)
	if err == nil && changed != nil {
		for j := range ops {
			changed[j] = ops[j].Found
		}
	}
	g.putOps(ops)
	return err
}

// getOps returns a pooled op slice of length n for the legacy wrappers.
// Slices circulate boxed in kvBox husks so neither direction allocates a
// slice-header box (the old `Put(&ops)` pattern cost one allocation per
// call — one sixth of the remaining steady-state update allocations).
func (g *Group[V]) getOps(n int) []Op[V] {
	if b, _ := g.opsPool.Get().(*kvBox[Op[V]]); b != nil {
		s := b.s
		b.s = nil
		g.opsBoxPool.Put(b)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]Op[V], n)
}

func (g *Group[V]) putOps(ops []Op[V]) {
	clear(ops) // drop list pointers and values
	b, _ := g.opsBoxPool.Get().(*kvBox[Op[V]])
	if b == nil {
		b = &kvBox[Op[V]]{}
	}
	b.s = ops
	g.opsPool.Put(b)
}

// Set is the single-list convenience form of Update.
func (l *List[V]) Set(k uint64, v V) error {
	ls := [1]*List[V]{l}
	ks := [1]uint64{k}
	vs := [1]V{v}
	return l.g.Update(ls[:], ks[:], vs[:])
}

// Delete is the single-list convenience form of Remove.
func (l *List[V]) Delete(k uint64) (bool, error) {
	ls := [1]*List[V]{l}
	ks := [1]uint64{k}
	var changed [1]bool
	err := l.g.Remove(ls[:], ks[:], changed[:])
	return changed[0], err
}
