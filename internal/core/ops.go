package core

// Update atomically applies, for every j, "set ks[j] to vs[j]" in list
// ls[j] — inserting the key if absent, replacing its value otherwise (the
// paper's Update(ll, k, v, s)). The batch is one linearizable operation
// across all its lists. Lists must be distinct members of this group.
func (g *Group[V]) Update(ls []*List[V], ks []uint64, vs []V) error {
	if err := g.checkBatch(ls, ks, len(vs)); err != nil {
		return err
	}
	switch g.cfg.Variant {
	case VariantLT:
		g.updateLT(ls, ks, vs)
	case VariantCOP:
		g.updateCOP(ls, ks, vs)
	case VariantTM:
		g.updateTM(ls, ks, vs)
	case VariantRW:
		g.updateRW(ls, ks, vs)
	default:
		panic("core: unknown variant")
	}
	return nil
}

// Remove atomically removes, for every j, key ks[j] from list ls[j] (the
// paper's Remove(ll, k, s)). changed[j] reports whether the key was
// present. changed may be nil; when non-nil its length must match.
func (g *Group[V]) Remove(ls []*List[V], ks []uint64, changed []bool) error {
	if err := g.checkBatch(ls, ks, -1); err != nil {
		return err
	}
	if changed == nil {
		changed = make([]bool, len(ls))
	} else if len(changed) != len(ls) {
		return ErrBatchMismatch
	}
	switch g.cfg.Variant {
	case VariantLT:
		g.removeLT(ls, ks, changed)
	case VariantCOP:
		g.removeCOP(ls, ks, changed)
	case VariantTM:
		g.removeTM(ls, ks, changed)
	case VariantRW:
		g.removeRW(ls, ks, changed)
	default:
		panic("core: unknown variant")
	}
	return nil
}

// Set is the single-list convenience form of Update.
func (l *List[V]) Set(k uint64, v V) error {
	ls := [1]*List[V]{l}
	ks := [1]uint64{k}
	vs := [1]V{v}
	return l.g.Update(ls[:], ks[:], vs[:])
}

// Delete is the single-list convenience form of Remove.
func (l *List[V]) Delete(k uint64) (bool, error) {
	ls := [1]*List[V]{l}
	ks := [1]uint64{k}
	var changed [1]bool
	err := l.g.Remove(ls[:], ks[:], changed[:])
	return changed[0], err
}
