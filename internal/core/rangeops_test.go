package core

import (
	"errors"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

// TestCommitOpsRangeValidation pins the interval ops' input contract.
func TestCommitOpsRangeValidation(t *testing.T) {
	g := newTestGroup(t, VariantLT)
	l := g.NewList()

	if err := g.CommitOps([]Op[uint64]{{List: l, Kind: OpGetRange, Key: 5, KeyHi: 4}}); !errors.Is(err, ErrRangeBounds) {
		t.Fatalf("inverted = %v, want ErrRangeBounds", err)
	}
	if err := g.CommitOps([]Op[uint64]{{List: l, Kind: OpDeleteRange, Key: 0, KeyHi: ^uint64(0)}}); !errors.Is(err, ErrRangeBounds) {
		t.Fatalf("hi beyond MaxKey = %v, want ErrRangeBounds", err)
	}
	if err := g.CommitOps([]Op[uint64]{{List: l, Kind: OpGetRange, Key: 7, KeyHi: 7}}); err != nil {
		t.Fatalf("single-key interval = %v, want nil", err)
	}
}

// applyRangeModel replays ops in staging order against a model map and
// returns, per op, the expected (Found, Out, N, Range) results.
type rangeExpect struct {
	found bool
	out   uint64
	n     int
	pairs []KV[uint64]
}

func applyRangeModel(model map[uint64]uint64, ops []Op[uint64]) []rangeExpect {
	exps := make([]rangeExpect, len(ops))
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpSet:
			model[op.Key] = op.Val
		case OpDelete:
			_, exps[i].found = model[op.Key]
			delete(model, op.Key)
		case OpGet:
			exps[i].out, exps[i].found = model[op.Key], false
			_, exps[i].found = model[op.Key]
		case OpGetRange, OpDeleteRange:
			var ks []uint64
			for k := range model {
				if k >= op.Key && k <= op.KeyHi {
					ks = append(ks, k)
				}
			}
			sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
			exps[i].n = len(ks)
			if op.Kind == OpGetRange {
				for _, k := range ks {
					exps[i].pairs = append(exps[i].pairs, KV[uint64]{Key: k, Value: model[k]})
				}
			} else {
				for _, k := range ks {
					delete(model, k)
				}
			}
		}
	}
	return exps
}

func checkRangeResults(t *testing.T, round int, ops []Op[uint64], exps []rangeExpect) {
	t.Helper()
	for i := range ops {
		op, exp := &ops[i], &exps[i]
		switch op.Kind {
		case OpDelete, OpGet:
			if op.Found != exp.found || (op.Kind == OpGet && exp.found && op.Out != exp.out) {
				t.Fatalf("round %d op %d %v(%d) = (%d, %v), want (%d, %v)",
					round, i, op.Kind, op.Key, op.Out, op.Found, exp.out, exp.found)
			}
		case OpDeleteRange:
			if op.N != exp.n {
				t.Fatalf("round %d op %d DeleteRange[%d,%d].N = %d, want %d",
					round, i, op.Key, op.KeyHi, op.N, exp.n)
			}
		case OpGetRange:
			if op.N != exp.n || len(op.Range) != len(exp.pairs) {
				t.Fatalf("round %d op %d GetRange[%d,%d] yielded %d pairs (N=%d), want %d",
					round, i, op.Key, op.KeyHi, len(op.Range), op.N, len(exp.pairs))
			}
			for j, kv := range op.Range {
				if kv != exp.pairs[j] {
					t.Fatalf("round %d op %d GetRange pair %d = %+v, want %+v",
						round, i, j, kv, exp.pairs[j])
				}
			}
		}
	}
}

// TestCommitOpsDeleteRangeSpansNodes drives a deterministic interval
// removal across many adjacent nodes — including a fully covered
// interior node (emptied in place), the partially covered boundary
// nodes, and interleaved point ops — for every variant.
func TestCommitOpsDeleteRangeSpansNodes(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		model := map[uint64]uint64{}
		for i := uint64(0); i < 64; i++ {
			if err := l.Set(i, i*3); err != nil {
				t.Fatalf("Set: %v", err)
			}
			model[i] = i * 3
		}
		ops := []Op[uint64]{
			{List: l, Kind: OpSet, Key: 70, Val: 700},          // insert beyond the interval
			{List: l, Kind: OpSet, Key: 20, Val: 999},          // overwrite inside, before the delete
			{List: l, Kind: OpGetRange, Key: 10, KeyHi: 50},    // sees the 999 overwrite
			{List: l, Kind: OpDeleteRange, Key: 10, KeyHi: 50}, // drops 41 keys incl. the overwrite
			{List: l, Kind: OpSet, Key: 30, Val: 300},          // staged after: survives the removal
			{List: l, Kind: OpGet, Key: 20},                    // gone
			{List: l, Kind: OpGetRange, Key: 0, KeyHi: MaxKey},
		}
		exps := applyRangeModel(model, ops)
		if err := g.CommitOps(ops); err != nil {
			t.Fatalf("CommitOps: %v", err)
		}
		checkRangeResults(t, 0, ops, exps)
		mustCheck(t, l)
		if got, want := l.Len(), len(model); got != want {
			t.Fatalf("Len = %d, want %d", got, want)
		}
		for _, kv := range l.CollectRange(0, MaxKey) {
			if mv, ok := model[kv.Key]; !ok || mv != kv.Value {
				t.Fatalf("key %d = %d, model (%d, %v)", kv.Key, kv.Value, mv, ok)
			}
		}
		// A second interval removal over the already-thinned region (runs
		// over emptied nodes) must also hold.
		ops2 := []Op[uint64]{
			{List: l, Kind: OpDeleteRange, Key: 0, KeyHi: MaxKey},
			{List: l, Kind: OpGetRange, Key: 0, KeyHi: MaxKey},
		}
		exps2 := applyRangeModel(model, ops2)
		if err := g.CommitOps(ops2); err != nil {
			t.Fatalf("CommitOps: %v", err)
		}
		checkRangeResults(t, 1, ops2, exps2)
		mustCheck(t, l)
		if l.Len() != 0 {
			t.Fatalf("Len = %d after full-range delete, want 0", l.Len())
		}
	})
}

// TestCommitOpsRangeAtMaxKey pins the +inf boundary: intervals ending at
// MaxKey cover the terminal node without wrapping.
func TestCommitOpsRangeAtMaxKey(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for _, k := range []uint64{0, 5, MaxKey - 1, MaxKey} {
			if err := l.Set(k, k); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		ops := []Op[uint64]{
			{List: l, Kind: OpGetRange, Key: MaxKey - 1, KeyHi: MaxKey},
			{List: l, Kind: OpDeleteRange, Key: MaxKey, KeyHi: MaxKey},
		}
		if err := g.CommitOps(ops); err != nil {
			t.Fatalf("CommitOps: %v", err)
		}
		if ops[0].N != 2 || ops[0].Range[1].Key != MaxKey {
			t.Fatalf("GetRange at MaxKey = %+v (N=%d)", ops[0].Range, ops[0].N)
		}
		if ops[1].N != 1 {
			t.Fatalf("DeleteRange(MaxKey).N = %d, want 1", ops[1].N)
		}
		if _, ok := l.Lookup(MaxKey); ok {
			t.Fatal("MaxKey survived its deletion")
		}
		mustCheck(t, l)
	})
}

// TestCommitOpsRangeOracle drives random batches mixing point and
// interval ops over two lists against a per-list model, for every
// variant. Node size 4 keeps intervals spanning several nodes.
func TestCommitOpsRangeOracle(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		const keySpace = 64
		l1, l2 := g.NewList(), g.NewList()
		lists := []*List[uint64]{l1, l2}
		models := []map[uint64]uint64{{}, {}}
		r := rand.New(rand.NewPCG(31, uint64(g.cfg.Variant)))
		for li, l := range lists {
			for i := uint64(0); i < keySpace; i += 2 {
				if err := l.Set(i, i); err != nil {
					t.Fatalf("Set: %v", err)
				}
				models[li][i] = i
			}
		}
		rounds := 300
		if testing.Short() {
			rounds = 60
		}
		for round := 0; round < rounds; round++ {
			nops := 1 + r.IntN(7)
			ops := make([]Op[uint64], 0, nops)
			for o := 0; o < nops; o++ {
				li := r.IntN(2)
				k := r.Uint64N(keySpace)
				switch r.IntN(6) {
				case 0, 1:
					ops = append(ops, Op[uint64]{List: lists[li], Kind: OpSet, Key: k, Val: r.Uint64()})
				case 2:
					ops = append(ops, Op[uint64]{List: lists[li], Kind: OpDelete, Key: k})
				case 3:
					ops = append(ops, Op[uint64]{List: lists[li], Kind: OpGet, Key: k})
				case 4:
					ops = append(ops, Op[uint64]{List: lists[li], Kind: OpGetRange, Key: k, KeyHi: k + r.Uint64N(keySpace/2)})
				default:
					ops = append(ops, Op[uint64]{List: lists[li], Kind: OpDeleteRange, Key: k, KeyHi: k + r.Uint64N(keySpace/4)})
				}
			}
			// Split the expectation replay per list but keep global staging
			// order: feed each op to its own list's model in slice order.
			exps := make([]rangeExpect, len(ops))
			for li := range lists {
				var sub []Op[uint64]
				var idx []int
				for i := range ops {
					if ops[i].List == lists[li] {
						sub = append(sub, ops[i])
						idx = append(idx, i)
					}
				}
				subExps := applyRangeModel(models[li], sub)
				for j, i := range idx {
					exps[i] = subExps[j]
				}
			}
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("round %d CommitOps: %v", round, err)
			}
			checkRangeResults(t, round, ops, exps)
			if round%25 == 0 {
				mustCheck(t, l1)
				mustCheck(t, l2)
			}
		}
		for li, l := range lists {
			mustCheck(t, l)
			if l.Len() != len(models[li]) {
				t.Fatalf("list %d Len = %d, model %d", li, l.Len(), len(models[li]))
			}
			for _, kv := range l.CollectRange(0, MaxKey) {
				if mv, ok := models[li][kv.Key]; !ok || mv != kv.Value {
					t.Fatalf("list %d key %d = %d, model (%d, %v)", li, kv.Key, kv.Value, mv, ok)
				}
			}
		}
	})
}

// TestRangeValueOnlySharing pins that a GetRange riding along with an
// overwrite-only Set in the same node keeps PR 2's structure sharing:
// the replacement borrows the old node's keys array and trie instead of
// rebuilding them, and the snapshot still observes staging order.
func TestRangeValueOnlySharing(t *testing.T) {
	g := newTestGroup(t, VariantLT)
	l := g.NewList()
	for i := uint64(0); i < 4; i++ { // NodeSize 4: one node (the terminal)
		if err := l.Set(i, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	n0 := l.head.next[0].PeekPtr()
	keys0 := &n0.keys[0]
	ops := []Op[uint64]{
		{List: l, Kind: OpGetRange, Key: 0, KeyHi: 10}, // staged before the Set
		{List: l, Kind: OpSet, Key: 2, Val: 22},        // overwrite of a present key
	}
	if err := g.CommitOps(ops); err != nil {
		t.Fatalf("CommitOps: %v", err)
	}
	if ops[0].N != 4 || ops[0].Range[2].Value != 2 {
		t.Fatalf("GetRange = %+v (N=%d), want pre-Set values", ops[0].Range, ops[0].N)
	}
	n1 := l.head.next[0].PeekPtr()
	if n1 == n0 {
		t.Fatal("node was not replaced")
	}
	if n1.ownsKV {
		t.Fatal("replacement owns its keys: value-only sharing was not taken")
	}
	if &n1.keys[0] != keys0 || n1.tr != n0.tr {
		t.Fatal("replacement did not borrow the old node's keys and trie")
	}
	if !n0.lent.Load() {
		t.Fatal("lender not marked lent")
	}
	if v, ok := l.Lookup(2); !ok || v != 22 {
		t.Fatalf("Lookup(2) = (%d, %v), want (22, true)", v, ok)
	}
	mustCheck(t, l)
}

// TestStalePlanReleasesPieces is the white-box regression for the
// "unpublished-piece reclamation on retry" leak: a plan built by
// planNaked and then abandoned (as the LT/COP stale and conflict paths
// do) must donate every replacement shell back to the group's recycler,
// leaving the live structure untouched.
func TestStalePlanReleasesPieces(t *testing.T) {
	g := newTestGroup(t, VariantLT)
	l := g.NewList()
	for i := uint64(0); i < 16; i++ {
		if err := l.Set(i, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	// A structural batch (inserts force fresh pieces, an interval delete
	// forces a multi-node run) plus a value-only overwrite (its piece
	// borrows the old node's keys and trie).
	ops := []Op[uint64]{
		{List: l, Kind: OpSet, Key: 100, Val: 1},
		{List: l, Kind: OpSet, Key: 101, Val: 2},
		{List: l, Kind: OpDeleteRange, Key: 4, KeyHi: 11},
		{List: l, Kind: OpSet, Key: 0, Val: 42}, // overwrite: value-only piece
	}
	b := g.getBatch()
	b.sortOps(ops)
	if !g.planNaked(ops, b) {
		t.Fatal("planNaked went stale with no contention")
	}
	donated := map[*node[uint64]]bool{}
	for _, e := range b.entries[:b.nEnt] {
		for _, p := range e.pieces {
			donated[p] = true
		}
	}
	if len(donated) == 0 {
		t.Fatal("plan built no pieces")
	}
	g.releasePlan(b)
	for _, e := range b.entries[:b.nEnt] {
		if len(e.pieces) != 0 {
			t.Fatal("releasePlan left pieces on an entry")
		}
	}
	// Every piece must now be in the shell pool (released on this P, so
	// Gets from the same goroutine drain them deterministically). Under
	// the race detector sync.Pool deliberately drops a random fraction of
	// Puts, so the exact count only holds in a normal build.
	if !raceEnabled {
		found := 0
		for i := 0; i < 2*len(donated); i++ {
			n, _ := g.shellPool.Get().(*node[uint64])
			if n == nil {
				break
			}
			if donated[n] {
				found++
			}
		}
		if found != len(donated) {
			t.Fatalf("recycler holds %d of %d released shells", found, len(donated))
		}
	}
	g.putBatch(b)
	// The abandoned plan must not have perturbed the live list.
	mustCheck(t, l)
	for i := uint64(0); i < 16; i++ {
		if v, ok := l.Lookup(i); !ok || v != i {
			t.Fatalf("Lookup(%d) = (%d, %v) after released plan", i, v, ok)
		}
	}
	// And the same batch still commits cleanly afterwards.
	if err := g.CommitOps(ops); err != nil {
		t.Fatalf("CommitOps after release: %v", err)
	}
	mustCheck(t, l)
}

// TestRangeOpsContention hammers interval ops against point churn and
// range readers under every variant: tiny nodes force constant
// split/merge/empty-node churn, and on LT/COP the contention constantly
// drives the stale-plan release path (a double donation there would
// surface as shared backing arrays, i.e. invariant or value-integrity
// failures). Runs race-clean.
func TestRangeOpsContention(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const keySpace = 64
		const workers = 6
		iters := stressIters(800)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 77))
				for i := 0; i < iters; i++ {
					lo := r.Uint64N(keySpace)
					hi := lo + r.Uint64N(16)
					switch r.IntN(4) {
					case 0:
						ops := []Op[uint64]{{List: l, Kind: OpDeleteRange, Key: lo, KeyHi: hi}}
						if err := g.CommitOps(ops); err != nil {
							t.Errorf("DeleteRange: %v", err)
							return
						}
					case 1:
						ops := []Op[uint64]{
							{List: l, Kind: OpGetRange, Key: lo, KeyHi: hi},
							{List: l, Kind: OpSet, Key: lo, Val: lo * 2},
						}
						if err := g.CommitOps(ops); err != nil {
							t.Errorf("GetRange+Set: %v", err)
							return
						}
						for _, kv := range ops[0].Range {
							if kv.Value != kv.Key*2 {
								t.Errorf("GetRange integrity: key %d holds %d", kv.Key, kv.Value)
								return
							}
						}
					case 2:
						ops := make([]Op[uint64], 0, 4)
						for j := uint64(0); j < 4; j++ {
							ops = append(ops, Op[uint64]{List: l, Kind: OpSet, Key: (lo + j) % keySpace, Val: ((lo + j) % keySpace) * 2})
						}
						if err := g.CommitOps(ops); err != nil {
							t.Errorf("Sets: %v", err)
							return
						}
					default:
						l.RangeQuery(lo, hi, func(k, v uint64) bool {
							if v != k*2 {
								t.Errorf("Range integrity: key %d holds %d", k, v)
								return false
							}
							return true
						})
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		mustCheck(t, l)
		for _, kv := range l.CollectRange(0, MaxKey) {
			if kv.Value != kv.Key*2 {
				t.Fatalf("key %d holds %d, want %d", kv.Key, kv.Value, kv.Key*2)
			}
		}
	})
}
