package core

import (
	"leaplist/internal/stm"
)

// Finger search.
//
// Two acceleration mechanisms share the validation story documented in
// doc.go ("Finger search and descent validation"):
//
//   - Read-path fingers (fingerSeek*): a remembered node from the last
//     read on the same scratch. When the finger is live, belongs to the
//     target list, and sits at-or-below the target key, the search walks
//     forward from it using only the finger's own levels — the upper
//     descent from the head is skipped entirely. Read paths consume only
//     na[0], so the skipped upper predecessors are never missed.
//   - Seeded descents (search*Seeded): a full-height head descent whose
//     per-level start may jump forward to a seed predecessor — the
//     previous group's pa of the same batch (planGroups visits keys in
//     ascending order), or the previous batch's saved finger
//     predecessors (txState.fpa). Every level is still positioned, so
//     the result is a complete pa/na usable by the write paths.
//
// A seed or finger is only ever a hint: each use re-validates it (live,
// owning-list id, tall enough for the level, strictly below the key, at
// or ahead of the current position) and any anomaly falls back to the
// plain head descent, so a stale finger can cost a fallback but never an
// incorrect result. Memory safety across operations — the remembered
// node's shell may otherwise be concurrently recycled — is guaranteed by
// the epoch-era guard in getRead/getBatch: fingers are dropped unless
// the new operation pins at the same epoch the finger was saved under.

// fingerHopBudget caps the forward hops a read-path finger walk may take
// before giving up and falling back to a head descent: with key
// locality the walk is a handful of hops; without it, the bound keeps
// the failed probe cheaper than the descent it tried to avoid.
const fingerHopBudget = 32

// seedAt reports whether candidate c can serve as the level-i start of a
// descent for internal key k currently standing at x: it must be a node
// of list lid, tall enough to have a level-i slot, strictly below k, and
// at-or-ahead of x (live nodes' high bounds strictly increase along the
// list, so comparing highs orders positions). Liveness is checked by the
// caller in its mode's idiom. The immutable fields read here are safe
// because the caller either observed c during the current pinned
// operation or passed the epoch-era guard.
func seedAt[V any](c, x *node[V], lid uint64, i int, k uint64) bool {
	return c != nil && c != x && c.lid == lid && c.level > i &&
		c.high < k && c.high >= x.high
}

// searchNaked is the paper's Search Predecessors (Figure 3) executed
// without any transactional instrumentation — the COP read phase shared by
// the LT and COP variants. For internal key k it fills pa and na (each of
// length MaxLevel) such that at every level i, pa[i] is the last node with
// high < k and na[i] = pa[i].next[i] is the first node with high >= k;
// na[0] is the node whose range contains k.
//
// The traversal restarts from the head whenever it observes a marked slot
// or a dead node (paper line 17), so it only ever walks committed, live
// nodes. It cannot block: marks are cleared by a bounded postfix, and dead
// nodes are already unlinked, so a retry makes progress.
func searchNaked[V any](l *List[V], k uint64, pa, na []*node[V]) {
	searchNakedBudget(l, k, pa, na, 0)
}

// searchNakedBudget is searchNaked with a restart budget: when budget > 0
// and the traversal has restarted that many times without completing, it
// gives up and reports false. A prepared-but-unpublished competitor (the
// two-phase commit's prepare window) holds its marks until the
// coordinator publishes — not a bounded postfix — so a bounded prepare
// must be able to stop waiting behind one and abort its own prefix
// instead. budget <= 0 never gives up (plain searchNaked).
func searchNakedBudget[V any](l *List[V], k uint64, pa, na []*node[V], budget int) bool {
	return searchNakedSeeded(l, k, pa, na, nil, 0, budget)
}

// searchNakedSeeded is searchNakedBudget with an optional per-level seed:
// at each level i the start may jump forward to seed[i] when it validates
// as a live predecessor of k in list lid (seedAt). Any restart — a marked
// slot or dead node, whether reached through a seed or not — falls back
// to a pure head descent, restoring exactly the unseeded protocol, so a
// stale seed costs one wasted prefix and nothing else. Restarts are paced
// by the escalating stm.RestartBackoff (the first restarts stay hot for
// the bounded-postfix case; a pile-up behind a prepared-but-unpublished
// window escalates to yields and brief sleeps).
func searchNakedSeeded[V any](l *List[V], k uint64, pa, na []*node[V], seed []*node[V], lid uint64, budget int) bool {
	maxLevel := l.g.cfg.MaxLevel
	spins := 0
	useSeed := seed != nil
retry:
	x := l.head
	for i := maxLevel - 1; i >= 0; i-- {
		if useSeed {
			if c := seed[i]; seedAt(c, x, lid, i, k) && c.live.Peek() == 1 {
				x = c
			}
		}
		for {
			xn, tag := x.next[i].Peek()
			if tag == stm.TagMarked || xn == nil || xn.live.Peek() == 0 {
				spins++
				if budget > 0 && spins >= budget {
					return false
				}
				useSeed = false
				stm.RestartBackoff(spins)
				goto retry
			}
			if xn.high >= k {
				pa[i] = x
				na[i] = xn
				break
			}
			x = xn
		}
	}
	return true
}

// searchRW is the Figure 3 traversal for the reader-writer-lock variant:
// the caller holds the list lock, so no mark or liveness checks are needed.
func searchRW[V any](l *List[V], k uint64, pa, na []*node[V]) {
	searchRWSeeded(l, k, pa, na, nil, 0)
}

// searchRWSeeded is searchRW with the optional per-level seed of
// searchNakedSeeded. The list lock makes the walk itself check-free, but
// a seed node must still prove it is live: a node replaced by an earlier
// batch keeps its frozen forward pointers, and walking a stale chain
// under the lock would position pa/na on dead nodes with no validation
// phase to catch it. Under the lock the liveness peek is exact, so a
// live seed is a current node and the jump is sound.
func searchRWSeeded[V any](l *List[V], k uint64, pa, na []*node[V], seed []*node[V], lid uint64) {
	x := l.head
	for i := l.g.cfg.MaxLevel - 1; i >= 0; i-- {
		if seed != nil {
			if c := seed[i]; seedAt(c, x, lid, i, k) && c.live.Peek() == 1 {
				x = c
			}
		}
		for {
			xn := x.next[i].PeekPtr()
			if xn.high >= k {
				pa[i] = x
				na[i] = xn
				break
			}
			x = xn
		}
	}
}

// searchTx is the Figure 3 traversal with every pointer read instrumented,
// used by the fully transactional variant. The transaction's read-set
// validation subsumes the mark/liveness checks of the naked search: the TM
// variant never marks slots, and node replacement is detected as a version
// conflict on the slots read.
func searchTx[V any](tx *stm.Tx, l *List[V], k uint64, pa, na []*node[V]) error {
	return searchTxSeeded(tx, l, k, pa, na, nil, 0)
}

// searchTxSeeded is searchTx with the optional per-level seed of
// searchNakedSeeded. A seed's liveness is read through the transaction,
// so the jump is validated by the normal read set: if the seed node dies
// before commit, the transaction conflicts exactly as if the descent had
// traversed it. A seed that is already dead is simply skipped — the
// descent continues from the current position, not an abort, since the
// batch never depended on it.
func searchTxSeeded[V any](tx *stm.Tx, l *List[V], k uint64, pa, na []*node[V], seed []*node[V], lid uint64) error {
	x := l.head
	for i := l.g.cfg.MaxLevel - 1; i >= 0; i-- {
		if seed != nil {
			if c := seed[i]; seedAt(c, x, lid, i, k) {
				lv, err := c.live.Load(tx)
				if err != nil {
					return err
				}
				if lv == 1 {
					x = c
				}
			}
		}
		for {
			xn, _, err := x.next[i].Load(tx)
			if err != nil {
				return err
			}
			if xn.high >= k {
				pa[i] = x
				na[i] = xn
				break
			}
			x = xn
		}
	}
	return nil
}

// fingerUsable performs the shared immutable-field validation of a
// read-path finger f against list l and internal key k. It returns:
//
//	hit  — k provably lies in f's own range (f.keys[0] <= k <= f.high),
//	       so f is the answer with no walk at all;
//	walk — f sits strictly below k and the level-(f.level-1)..0 walk may
//	       start from it.
//
// Both false means the finger cannot help (wrong list, key behind the
// finger, or k possibly in the unprovable gap below f's first key) and
// the caller must fall back to a head descent. Liveness is checked by
// the caller in its variant's idiom, after this.
func fingerUsable[V any](l *List[V], k uint64, f *node[V]) (hit, walk bool) {
	if f == nil || f.lid != l.id {
		return false, false
	}
	if f.high < k {
		return false, true
	}
	// A node owns (prev.high, high]; prev.high is not stored, but keys[0]
	// is inside the range, so keys[0] <= k <= high proves ownership.
	if len(f.keys) > 0 && f.keys[0] <= k {
		return true, false
	}
	return false, false
}

// fingerSeekNaked resolves the node owning internal key k by walking
// forward from finger f — the naked read paths' (LT, COP) finger search.
// It returns nil when the finger cannot be used: dead, wrong list, key
// behind it, a marked slot or dead node crossed (the exact conditions
// that restart a head descent), or the hop budget exhausted. The caller
// then falls back to searchNaked; the result node carries the same
// guarantee as a head descent's na[0] — observed live, owning a range
// that contains k.
func fingerSeekNaked[V any](l *List[V], k uint64, f *node[V]) *node[V] {
	hit, walk := fingerUsable(l, k, f)
	if !hit && !walk {
		return nil
	}
	if f.live.Peek() == 0 {
		return nil
	}
	if hit {
		return f
	}
	hops := 0
	x := f
	for i := f.level - 1; i >= 0; i-- {
		for {
			xn, tag := x.next[i].Peek()
			if tag == stm.TagMarked || xn == nil || xn.live.Peek() == 0 {
				return nil
			}
			if xn.high >= k {
				if i == 0 {
					return xn
				}
				break
			}
			x = xn
			if hops++; hops > fingerHopBudget {
				return nil
			}
		}
	}
	return nil // unreachable: the i == 0 arm always returns
}

// fingerSeekTx is fingerSeekNaked for the fully transactional variant:
// the finger's liveness and every traversed slot are read through tx, so
// the finger start is validated by the normal read-set validation at
// commit. A nil result with nil error means "fall back to searchTx"; an
// error aborts the transaction as usual.
func fingerSeekTx[V any](tx *stm.Tx, l *List[V], k uint64, f *node[V]) (*node[V], error) {
	hit, walk := fingerUsable(l, k, f)
	if !hit && !walk {
		return nil, nil
	}
	lv, err := f.live.Load(tx)
	if err != nil {
		return nil, err
	}
	if lv == 0 {
		return nil, nil
	}
	if hit {
		return f, nil
	}
	hops := 0
	x := f
	for i := f.level - 1; i >= 0; i-- {
		for {
			xn, _, err := x.next[i].Load(tx)
			if err != nil {
				return nil, err
			}
			if xn == nil {
				return nil, nil
			}
			if xn.high >= k {
				if i == 0 {
					return xn, nil
				}
				break
			}
			x = xn
			if hops++; hops > fingerHopBudget {
				return nil, nil
			}
		}
	}
	return nil, nil
}

// fingerSeekRW is fingerSeekNaked under the list's read lock: the
// structure is quiescent, so a live finger is a current node and the
// walk needs no mark or liveness checks past the start.
func fingerSeekRW[V any](l *List[V], k uint64, f *node[V]) *node[V] {
	hit, walk := fingerUsable(l, k, f)
	if !hit && !walk {
		return nil
	}
	if f.live.Peek() == 0 {
		return nil
	}
	if hit {
		return f
	}
	hops := 0
	x := f
	for i := f.level - 1; i >= 0; i-- {
		for {
			xn := x.next[i].PeekPtr()
			if xn == nil {
				return nil
			}
			if xn.high >= k {
				if i == 0 {
					return xn
				}
				break
			}
			x = xn
			if hops++; hops > fingerHopBudget {
				return nil
			}
		}
	}
	return nil
}
