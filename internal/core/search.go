package core

import (
	"runtime"

	"leaplist/internal/stm"
)

// searchNaked is the paper's Search Predecessors (Figure 3) executed
// without any transactional instrumentation — the COP read phase shared by
// the LT and COP variants. For internal key k it fills pa and na (each of
// length MaxLevel) such that at every level i, pa[i] is the last node with
// high < k and na[i] = pa[i].next[i] is the first node with high >= k;
// na[0] is the node whose range contains k.
//
// The traversal restarts from the head whenever it observes a marked slot
// or a dead node (paper line 17), so it only ever walks committed, live
// nodes. It cannot block: marks are cleared by a bounded postfix, and dead
// nodes are already unlinked, so a retry makes progress.
func searchNaked[V any](l *List[V], k uint64, pa, na []*node[V]) {
	searchNakedBudget(l, k, pa, na, 0)
}

// searchNakedBudget is searchNaked with a restart budget: when budget > 0
// and the traversal has restarted that many times without completing, it
// gives up and reports false. A prepared-but-unpublished competitor (the
// two-phase commit's prepare window) holds its marks until the
// coordinator publishes — not a bounded postfix — so a bounded prepare
// must be able to stop waiting behind one and abort its own prefix
// instead. budget <= 0 never gives up (plain searchNaked).
func searchNakedBudget[V any](l *List[V], k uint64, pa, na []*node[V], budget int) bool {
	maxLevel := l.g.cfg.MaxLevel
	spins := 0
retry:
	x := l.head
	for i := maxLevel - 1; i >= 0; i-- {
		for {
			xn, tag := x.next[i].Peek()
			if tag == stm.TagMarked || xn == nil || xn.live.Peek() == 0 {
				spins++
				if budget > 0 && spins >= budget {
					return false
				}
				if spins%8 == 0 {
					runtime.Gosched()
				}
				goto retry
			}
			if xn.high >= k {
				pa[i] = x
				na[i] = xn
				break
			}
			x = xn
		}
	}
	return true
}

// searchRW is the Figure 3 traversal for the reader-writer-lock variant:
// the caller holds the list lock, so no mark or liveness checks are needed.
func searchRW[V any](l *List[V], k uint64, pa, na []*node[V]) {
	x := l.head
	for i := l.g.cfg.MaxLevel - 1; i >= 0; i-- {
		for {
			xn := x.next[i].PeekPtr()
			if xn.high >= k {
				pa[i] = x
				na[i] = xn
				break
			}
			x = xn
		}
	}
}

// searchTx is the Figure 3 traversal with every pointer read instrumented,
// used by the fully transactional variant. The transaction's read-set
// validation subsumes the mark/liveness checks of the naked search: the TM
// variant never marks slots, and node replacement is detected as a version
// conflict on the slots read.
func searchTx[V any](tx *stm.Tx, l *List[V], k uint64, pa, na []*node[V]) error {
	x := l.head
	for i := l.g.cfg.MaxLevel - 1; i >= 0; i-- {
		for {
			xn, _, err := x.next[i].Load(tx)
			if err != nil {
				return err
			}
			if xn.high >= k {
				pa[i] = x
				na[i] = xn
				break
			}
			x = xn
		}
	}
	return nil
}
