package core

// Timestamped ("as-of") traversal: the read half of the versioned-link
// protocol in bundle.go. A reader pins an epoch, draws one snapshot
// timestamp S from the group's clock, and resolves every hop through the
// newest bundle record at or before S — it observes exactly the state
// the structure had at instant S, never validates liveness, and never
// restarts on structural churn. The only waiting it ever does is the
// bounded spin on a pending record inside a concurrent publish postfix;
// writers never wait for readers at all.
//
// Chain membership is inductive: the head sentinel (born 0) is in every
// as-of-S chain; an in-chain node's newest record with ts <= S names its
// successor at instant S, which is in-chain too (had that successor died
// at some ts' <= S, the node would carry a newer record with ts' <= S —
// the replacing batch prepends one on every surviving predecessor — or
// be dead itself). Arbitrary hints (search fingers, hash-index probes,
// descent results) are promoted into the chain by bunRecoverAsOf's
// death-record chase, so the hint source never needs to be consistent.
//
// Reclamation safety: every node an as-of traversal touches is readable
// under the reader's pin. Hints are reached through the live graph during
// the pin (the standard epoch grace argument); a death record's target
// was live when the record was stamped, which happened no earlier than
// one epoch before the dead node's own reclaim horizon; and an in-chain
// hop's target is alive as of S >= the reader's pin instant, so if it
// dies at all it is retired after the pin began.
//
// Pin before timestamp — the one ordering rule every as-of reader must
// observe: S is drawn from the clock AFTER the reader's epoch pin is in
// place (for a multi-list or multi-group read, after every involved
// pin). Bundle truncation cuts a superseded record only once the global
// epoch has advanced twice past the superseding fill, which a pin taken
// before S blocks: while the reader stays pinned the epoch cannot reach
// the record's cut horizon, and any record superseded after the pin
// began was displaced by a fill the pinned reader's S already covers.
// An S drawn before the pin can be arbitrarily stale by the time the
// pin lands, and the records it needs may be gone — that is exactly
// what ReadPin exists to prevent for coordinated cross-group reads.

// bunMustNext is bunNextAsOf with the protocol invariant enforced: an
// in-chain node always has a record at or before its chain's timestamp
// (its own birth record if nothing newer), so nil is a protocol bug, not
// a recoverable condition.
func bunMustNext[V any](n *node[V], s uint64) *node[V] {
	nxt := bunNextAsOf(n, s)
	if nxt == nil {
		panic("core: bundle protocol violation: node without a record at or before its snapshot timestamp")
	}
	return nxt
}

// hintAsOf reports whether hint h can seed an as-of-s seek toward
// internal key ik: h must belong to l, have been published at or before
// s, and its range must begin at or before ik — h.high < ik proves that
// outright, and otherwise h's first key bounds the (immutable) left
// boundary from above. A usable hint, after death-record recovery, is an
// in-chain node from which forward hops reach ik's owner.
func hintAsOf[V any](h *node[V], l *List[V], ik, s uint64) bool {
	return h != nil && h.lid == l.id && h.born.Load() <= s &&
		(h.high < ik || (len(h.keys) > 0 && h.keys[0] <= ik))
}

// asOfSeed is the sanctioned consumer of a saved finger on the
// timestamped path (listed in leaplint eraguard's era-validating
// helpers): getRead's era guard already dropped any finger saved under
// an older epoch, so h — when non-nil — points at unreclaimed memory,
// and hintAsOf's list/born/range checks reject recycled or unusable
// nodes before recovery lifts the hint into the as-of-s chain. nil
// means the seek must descend from the head.
func asOfSeed[V any](h *node[V], l *List[V], ik, s uint64) *node[V] {
	if !hintAsOf(h, l, ik, s) {
		return nil
	}
	return bunRecoverAsOf(h, s)
}

// anchorAsOf returns a node of l's as-of-s chain whose range begins at
// or before internal key ik. The scratch finger is tried first; otherwise
// a naked descent over the live index levels collects the rightmost node
// with born <= s and high < ik. The descent never restarts: it reads
// through marks (the pointer half is the last committed value) and
// through dead nodes (frozen slots still point rightward at readable
// nodes, and high strictly increases along every level), and nodes the
// snapshot must not see — born > s, or born still pending inside a
// publish — are simply not promoted to anchor. Recovery then lifts the
// anchor into the chain.
func (l *List[V]) anchorAsOf(r *readScratch[V], ik, s uint64) *node[V] {
	if !l.g.cfg.NoFingers {
		if n := asOfSeed(r.finger, l, ik, s); n != nil {
			return n
		}
	}
	anchor := l.head
	x := l.head
	for i := x.level - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].PeekPtr()
			if nxt == nil || nxt.high >= ik {
				break
			}
			x = nxt
			if x.born.Load() <= s {
				anchor = x
			}
		}
	}
	return bunRecoverAsOf(anchor, s)
}

// seekAsOf returns the node owning internal key ik in l's as-of-s chain.
// The hash index may supply the start hint (a node that once contained
// ik has a left boundary at or before it, recovery included).
func (l *List[V]) seekAsOf(r *readScratch[V], ik, s uint64) *node[V] {
	var n *node[V]
	if l.g.hashIndex() {
		n = asOfSeed(l.idxProbe(ik), l, ik, s)
	}
	if n == nil {
		n = l.anchorAsOf(r, ik, s)
	}
	for n.high < ik {
		n = bunMustNext(n, s)
	}
	r.saveFinger(l.g, n)
	return n
}

// snapshotRunAsOf fills r.nodes with the run of as-of-s chain nodes
// covering [ilo, ihi] in internal key space: the timestamped counterpart
// of snapshotRun, with no transaction, no liveness checks and no
// retries. The collected nodes are immutable and pinned by r's epoch
// participant, so extraction afterwards is unhurried, exactly as for the
// transactional run.
func (l *List[V]) snapshotRunAsOf(r *readScratch[V], ilo, ihi, s uint64) {
	n := l.anchorAsOf(r, ilo, s)
	// clear before truncating, as in snapshotRun: a shorter run on a
	// reused scratch must not strand node pointers in the capacity.
	clear(r.nodes)
	r.nodes = r.nodes[:0]
	for {
		if n.high >= ilo {
			r.nodes = append(r.nodes, n)
			if n.high >= ihi {
				break
			}
		}
		n = bunMustNext(n, s)
	}
	r.saveFinger(l.g, r.nodes[len(r.nodes)-1])
	noteLingeringEmpties(l, r.nodes)
}

// appendRun appends the pairs of a collected node run clipped to
// [ilo, ihi] (internal keys) to buf: the extraction half shared by
// CollectRangeInto, CollectRangeIntoAsOf and the read-only batch fast
// path. Only the first and last node can hold out-of-range keys, so the
// interior emits compare-free (see emitRange).
func appendRun[V any](nodes []*node[V], ilo, ihi uint64, buf []KV[V]) []KV[V] {
	last := len(nodes) - 1
	for ni, n := range nodes {
		keys, vals := n.keys, n.vals
		if ni == 0 || ni == last {
			klo, khi := negInf, posInf
			if ni == 0 {
				klo = ilo
			}
			if ni == last {
				khi = ihi
			}
			keys, vals = clipRange(keys, vals, klo, khi)
		}
		for i, k := range keys {
			buf = append(buf, KV[V]{Key: toPublic(k), Value: vals[i]})
		}
	}
	return buf
}

// ReadPin is an epoch pin held open across a coordinated as-of read. A
// coordinator spanning several groups (the Sharded facade) pins every
// involved group FIRST, then draws one snapshot timestamp from the
// shared clock, then resolves each group's reads through its pin: the
// pin-before-timestamp rule (see the package comment above) is what
// keeps every record the frozen cut needs alive until the last read
// finishes. The zero value is invalid; obtain one from PinReads and
// release it with Unpin exactly once. A ReadPin is single-goroutine,
// like the scratch it wraps.
type ReadPin[V any] struct {
	g *Group[V]
	r *readScratch[V]
}

// PinReads acquires a read scratch — pinning the group's epoch — for a
// coordinated as-of read. Reclamation of everything currently reachable
// in the group is deferred until Unpin, so a pin should span one read,
// not be cached.
func (g *Group[V]) PinReads() ReadPin[V] {
	r := g.getRead()
	return ReadPin[V]{g: g, r: r}
}

// Unpin releases the pin (and its finger scratch back to the pool).
func (p ReadPin[V]) Unpin() {
	p.g.putRead(p.r)
}

// RangeQueryAsOf is RangeQuery resolved against l's as-of-s chain: the
// emitted pairs are the list's state at clock instant s. s must have
// been drawn from the group's clock after this pin was acquired (for a
// cross-group read, after every involved group's pin); several lists or
// groups read at the same s form one consistent snapshot with no
// further coordination. l must belong to the pinned group, which must
// have bundles enabled.
func (p ReadPin[V]) RangeQueryAsOf(l *List[V], lo, hi, s uint64, emit func(k uint64, v V) bool) int {
	if lo > hi || lo > MaxKey {
		return 0
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	ilo, ihi := toInternal(lo), toInternal(hi)
	l.snapshotRunAsOf(p.r, ilo, ihi, s)
	return emitRange(p.r.nodes, ilo, ihi, emit)
}

// CollectRangeIntoAsOf is CollectRangeInto resolved against l's as-of-s
// chain; see RangeQueryAsOf for the timestamp contract.
func (p ReadPin[V]) CollectRangeIntoAsOf(l *List[V], lo, hi, s uint64, buf []KV[V]) []KV[V] {
	if lo > hi || lo > MaxKey {
		return buf
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	ilo, ihi := toInternal(lo), toInternal(hi)
	l.snapshotRunAsOf(p.r, ilo, ihi, s)
	return appendRun(p.r.nodes, ilo, ihi, buf)
}

// CollectChunkAsOf appends to buf the pairs of [lo, hi] (public keys)
// in l's as-of-s chain, stopping after the node that brings the chunk
// to at least max pairs. It returns the extended slice, the public key
// to resume from, and whether anything remains: the refill primitive of
// a snapshot iterator. Successive calls with the returned resume key
// (same pin, same s) walk the chain exactly once in total — the pin's
// finger remembers the last visited node, so each refill anchors in
// O(1) and hops only the nodes it emits — and together observe the
// single frozen cut at s, because the chain at a fixed timestamp never
// changes. The timestamp contract is RangeQueryAsOf's: s drawn after
// this pin was acquired, and the pin held across every refill (its pin
// is what keeps the cut's records from being truncated mid-iteration).
func (p ReadPin[V]) CollectChunkAsOf(l *List[V], lo, hi, s uint64, max int, buf []KV[V]) ([]KV[V], uint64, bool) {
	if lo > hi || lo > MaxKey {
		return buf, 0, false
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	r := p.r
	ilo, ihi := toInternal(lo), toInternal(hi)
	n := l.anchorAsOf(r, ilo, s)
	for n.high < ilo {
		n = bunMustNext(n, s)
	}
	base := len(buf)
	for {
		keys, vals := clipRange(n.keys, n.vals, ilo, ihi)
		for i, k := range keys {
			buf = append(buf, KV[V]{Key: toPublic(k), Value: vals[i]})
		}
		if n.high >= ihi {
			r.saveFinger(l.g, n)
			return buf, 0, false
		}
		if len(buf)-base >= max {
			r.saveFinger(l.g, n)
			// n.high is n's public high plus one: the first public key
			// owned by the chain's next node.
			return buf, n.high, true
		}
		n = bunMustNext(n, s)
	}
}

// Now returns the current value of the group's global clock: a snapshot
// timestamp under which as-of reads observe everything published at or
// before this instant. Groups created with a shared STM clock (the
// Sharded facade) return the same clock's value. A timestamp intended
// for an as-of read must be drawn after the read's pin is in place (pin
// before timestamp; see the package comment).
func (g *Group[V]) Now() uint64 {
	return g.stm.Clock().Now()
}

// readOnlyOps reports whether every op of the batch is a pure read —
// eligible for the timestamped fast path, which resolves the whole batch
// at one clock instant with no prepare phase at all.
func readOnlyOps[V any](ops []Op[V]) bool {
	for i := range ops {
		if ops[i].Kind != OpGet && ops[i].Kind != OpGetRange {
			return false
		}
	}
	return true
}

// readOps resolves a batch of pure reads as of clock instant s, writing
// results into the ops exactly as CommitOps would: every OpGet and
// OpGetRange across every list shares the single instant s, which is the
// batch's linearization point — atomicity needs no sorting, grouping,
// locks or validation, because nothing traversed can disagree with the
// frozen cut. Caller guarantees checkOps passed, bundles are on, and s
// was drawn after r's pin (pin before timestamp).
func (g *Group[V]) readOps(r *readScratch[V], ops []Op[V], s uint64) {
	for i := range ops {
		op := &ops[i]
		l := op.List
		switch op.Kind {
		case OpGet:
			ik := toInternal(op.Key)
			n := l.seekAsOf(r, ik, s)
			var zero V
			op.Out, op.Found = zero, false
			if j := n.find(ik); j >= 0 {
				op.Out, op.Found = n.vals[j], true
			}
		case OpGetRange:
			// Reset results exactly as sortOps does for the planned path:
			// clear before truncating so pairs from an earlier commit of a
			// reused ops slice do not stay live in the slice capacity.
			clear(op.Range)
			op.Range = op.Range[:0]
			op.N = 0
			if op.Key > op.KeyHi {
				continue
			}
			ilo, ihi := toInternal(op.Key), toInternal(op.KeyHi)
			l.snapshotRunAsOf(r, ilo, ihi, s)
			op.Range = appendRun(r.nodes, ilo, ihi, op.Range)
			op.N = len(op.Range)
		}
	}
}

// ReadOps resolves a batch of pure reads (OpGet, OpGetRange) as one
// linearizable snapshot taken at clock instant s, with no prepare phase,
// no locks and no aborts — the cross-group half of the timestamped read
// path. A coordinator spanning several groups that share one clock (the
// Sharded facade) acquires a pin per involved group, picks s once from
// the shared clock, and calls ReadOps on each pin: every group then
// resolves against the same frozen cut, so the combined result is a
// single consistent snapshot without two-phase commit. The pinned group
// must have bundles enabled and s must have been drawn after every
// involved pin was acquired (pin before timestamp — an earlier s may
// need records the groups have already reclaimed).
func (p ReadPin[V]) ReadOps(ops []Op[V], s uint64) error {
	g := p.g
	if err := g.checkOps(ops); err != nil {
		return err
	}
	if !g.bundles() {
		return ErrNoBundles
	}
	if !readOnlyOps(ops) {
		return ErrNotReadOnly
	}
	g.readOps(p.r, ops, s)
	return nil
}
