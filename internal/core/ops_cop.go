package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Leap-COP variant over the generalized
// batch plan as the three-phase committer: a consistency-oblivious
// search prefix (no instrumentation), then one STM transaction that
// re-validates the prefix for every group and performs every structural
// write transactionally — but prepared, not committed: the prepare
// phase leaves the transaction holding its write locks with the read
// set validated (stm.PreparedTx), and the publish phase is the STM
// write-back, whose single clock bump is the batch's linearization
// point. Unlike LT there are no marks and no postfix — the pointer
// swings themselves are buffered STM writes published at write-back,
// which is safe for concurrent naked searches because this STM is
// lazy-versioning (naked reads never observe tentative data).
//
// Between prepare and publish the held write locks exclude every
// competitor whose footprint overlaps (their validation reads some cell
// this batch writes — a predecessor slot or a liveness flag — and
// conflicts); with PrepareOpts.LockReads the read set's cells are
// locked too, so even a batch that only reads a node pins it until
// publish. Abort releases the locks at their old versions and discards
// the buffered writes: nothing was ever visible.
//
// Validation runs for all groups before any writes, so every check reads
// the committed pre-state; the write pass then walks groups right-to-left
// within each list, so a group whose predecessor is itself being replaced
// buffers its swing into the dying node's slot first and the dying node's
// replacement reads it back through the transaction's own write set.
//
// The validate and apply halves are shared with the TM variant, which
// runs them after an instrumented search inside the same transaction.

// copCommitter drives the generalized batch under COP.
type copCommitter[V any] struct{ g *Group[V] }

func (c copCommitter[V]) prepare(ops []Op[V], b *txState[V], opt PrepareOpts) error {
	g := c.g
	b.spinBudget = 0
	if opt.bounded() {
		b.spinBudget = boundedSpinBudget
	}
	for attempt := 0; ; attempt++ {
		// Loop top holds nothing: every exit here (cancel, budget, armed
		// failpoint) leaves the structure untouched by this attempt.
		if err := opt.cancelErr(); err != nil {
			g.stm.NoteTimeoutAbort()
			return err
		}
		if opt.MaxAttempts > 0 && attempt >= opt.MaxAttempts {
			g.stm.NotePrepareConflict()
			return ErrPrepareConflict
		}
		if err := fpEval(fpCOPPrepare); err != nil {
			return err
		}
		if !g.planNaked(ops, b) {
			g.releasePlan(b) // recycle the pieces the dead plan already built
			b.fSeedOK = false
			stmBackoff(attempt)
			continue
		}
		err := g.stm.PrepareOnce(&b.prep, opt.LockReads, func(tx *stm.Tx) error {
			for t := 0; t < b.nEnt; t++ {
				if err := g.validateEntryTx(tx, b, t); err != nil {
					return err
				}
			}
			for t := b.nEnt - 1; t >= 0; t-- {
				if b.entries[t].write {
					if err := g.applyEntryTx(tx, b, t); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err == nil {
			if attempt > 0 {
				g.stm.NoteRetries(uint64(attempt))
			}
			return nil
		}
		// The failed prepare published nothing and holds nothing: recycle
		// the stale plan's pieces before rebuilding.
		g.releasePlan(b)
		b.fSeedOK = false
		stmBackoff(attempt)
	}
}

func (c copCommitter[V]) publish(ops []Op[V], b *txState[V]) {
	g := c.g
	// Last point where the batch is still invisible (the prepared write
	// locks are held but nothing is published).
	fpHit(fpCOPPublish)
	if g.bundles() {
		// Bundle phase A under the prepared write locks: any competitor
		// touching these links conflicts on the locked slots (or the dying
		// nodes' locked liveness) until Publish releases them, so prepend
		// order and write-version order agree per link.
		g.bunPublishStart(b)
	}
	c.publishAt(ops, b, 0)
}

// publishAt is the post-phase-A half of publish. ts == 0 draws the
// batch's own write version from prep.Publish — that clock bump is the
// batch's linearization point and, with bundles on, the timestamp
// stamped into every record prepended in phase A and into the birth
// records applyEntryTx staged at prepare time. A nonzero ts is the
// coordinated two-phase form: one shared tick drawn by the coordinator
// after every participating batch's phase A, while all write locks are
// still held, published through prep.PublishAt.
func (c copCommitter[V]) publishAt(ops []Op[V], b *txState[V], ts uint64) {
	g := c.g
	if ts == 0 {
		ts = b.prep.Publish()
	} else {
		b.prep.PublishAt(ts)
	}
	if g.bundles() {
		g.bunFillAll(b, ts)
	}
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if e.write {
			if e.runEnd != nil {
				g.retireRun(b, e.n, e.runEnd)
				continue
			}
			g.retireNode(b, e.n)
			if e.merge {
				g.retireNode(b, e.old1)
			}
		}
	}
	g.indexPublish(ops, b)
}

func (c copCommitter[V]) abort(ops []Op[V], b *txState[V]) {
	fpHit(fpCOPAbort)
	b.prep.Abort()
	c.g.releasePlan(b)
}

// validateEntryTx re-validates one group's naked search results inside
// tx, reading only committed state (it must run before any group of the
// batch writes). For a read-only group (staged Gets, deletes of absent
// keys) the node's liveness alone pins the group's view to the commit
// instant: node contents and bounds are immutable, so a live node is the
// unique owner of its key range.
func (g *Group[V]) validateEntryTx(tx *stm.Tx, b *txState[V], t int) error {
	e := b.entries[t]
	n := e.n
	if lv, err := n.live.Load(tx); err != nil {
		return err
	} else if lv == 0 {
		return stm.ErrConflict
	}
	if !e.write {
		return nil
	}
	pa, na := e.pa, e.na

	if e.runEnd != nil {
		// Splice-run entry: the planned chain [n, runEnd] must still be
		// exactly a run of live, consecutive nodes with the planned pair
		// count and max level (any drift — a concurrent split, merge or
		// delete inside the interval — re-plans), the predecessors must
		// still point at their search successors and be live, and the
		// plan-time per-level successors must still be the first nodes
		// past the run (the re-walk also pins the run-internal links in
		// the read set until commit).
		cnt, maxH := 0, 0
		for x := n; ; {
			if lv, err := x.live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
			cnt += x.count()
			if x.level > maxH {
				maxH = x.level
			}
			if x == e.runEnd {
				break
			}
			nx, _, err := x.next[0].Load(tx)
			if err != nil {
				return err
			}
			if nx == nil || nx.high > e.runEnd.high {
				return stm.ErrConflict
			}
			x = nx
		}
		if cnt != e.runCnt || maxH != e.maxH {
			return stm.ErrConflict
		}
		for i := 0; i < e.maxH; i++ {
			p, _, err := pa[i].next[i].Load(tx)
			if err != nil {
				return err
			}
			if p != na[i] {
				return stm.ErrConflict
			}
			if lv, err := pa[i].live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
			y := na[i]
			for y != nil && y.high <= e.runEnd.high {
				ny, _, err := y.next[i].Load(tx)
				if err != nil {
					return err
				}
				y = ny
			}
			if y != e.runSucc[i] {
				return stm.ErrConflict
			}
			if lv, err := y.live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
		}
		return nil
	}

	if e.merge {
		old1 := e.old1
		if lv, err := old1.live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
		// old1 must still immediately follow n.
		succ, _, err := n.next[0].Load(tx)
		if err != nil {
			return err
		}
		if succ != old1 {
			return stm.ErrConflict
		}
		// Predecessors still point at n and are live; n's successors are
		// live (old1's own death is this batch's doing).
		for i := 0; i < n.level; i++ {
			p, _, err := pa[i].next[i].Load(tx)
			if err != nil {
				return err
			}
			if p != n {
				return stm.ErrConflict
			}
			if lv, err := pa[i].live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
			s, _, err := n.next[i].Load(tx)
			if err != nil {
				return err
			}
			if s != nil && s != old1 {
				if lv, err := s.live.Load(tx); err != nil {
					return err
				} else if lv == 0 {
					return stm.ErrConflict
				}
			}
		}
		// old1's successors must be live at every one of its levels, and
		// where old1 is taller than n its predecessors are shared with the
		// replacement.
		for i := 0; i < old1.level; i++ {
			s1, _, err := old1.next[i].Load(tx)
			if err != nil {
				return err
			}
			if s1 != nil {
				if lv, err := s1.live.Load(tx); err != nil {
					return err
				} else if lv == 0 {
					return stm.ErrConflict
				}
			}
		}
		for i := n.level; i < old1.level; i++ {
			p, _, err := pa[i].next[i].Load(tx)
			if err != nil {
				return err
			}
			if p != old1 {
				return stm.ErrConflict
			}
			if lv, err := pa[i].live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
		}
		return nil
	}

	// Update-style entry: predecessors still point at n, n's successors
	// are live, and above n's level the search results still hold for
	// every level a replacement piece will occupy.
	for i := 0; i < n.level; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != n {
			return stm.ErrConflict
		}
		succ, _, err := n.next[i].Load(tx)
		if err != nil {
			return err
		}
		if succ != nil {
			if lv, err := succ.live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
		}
	}
	for i := 0; i < e.maxH; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != na[i] {
			return stm.ErrConflict
		}
		if lv, err := pa[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
		if lv, err := na[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
	}
	return nil
}

// applyEntryTx performs one write entry's structural writes inside tx:
// wire the private replacement pieces from transactionally read
// successors (picking up the batch's own buffered swings from groups
// already applied to the right), publish them by swinging the
// predecessors, and retire the replaced nodes. Shared by COP (after a
// naked search) and TM (after a transactional search).
func (g *Group[V]) applyEntryTx(tx *stm.Tx, b *txState[V], t int) error {
	e := b.entries[t]
	n := e.n

	if e.runEnd != nil {
		// Splice-run entry: no replacement pieces. One predecessor swing
		// per level routes around the whole run (the swing target is the
		// plan-time successor unless a group to the right replaced it),
		// then every run node is killed transactionally. Validation
		// already pinned the run-internal links in the read set, so the
		// interior chain stays frozen exactly as planned until commit.
		for i := 0; i < e.maxH; i++ {
			if err := e.pa[i].next[i].Store(tx, b.succTarget(t, i, e.runSucc[i]), stm.TagNone); err != nil {
				return err
			}
		}
		for x := n; ; {
			if err := x.live.Store(tx, 0); err != nil {
				return err
			}
			if x == e.runEnd {
				return nil
			}
			nx, _, err := x.next[0].Load(tx)
			if err != nil {
				return err
			}
			x = nx
		}
	}

	if e.merge {
		repl, old1 := e.pieces[0], e.old1
		for i := 0; i < repl.level; i++ {
			var s *node[V]
			var err error
			if i < old1.level {
				s, _, err = old1.next[i].Load(tx)
			} else {
				s, _, err = n.next[i].Load(tx)
			}
			if err != nil {
				return err
			}
			repl.next[i].Init(s, stm.TagNone)
		}
	} else {
		for pi, p := range e.pieces {
			for i := 0; i < p.level; i++ {
				s := nextPiece(e.pieces, pi+1, i)
				if s == nil {
					if i < n.level {
						var err error
						s, _, err = n.next[i].Load(tx)
						if err != nil {
							return err
						}
					} else {
						s = b.succAt(t, i)
					}
				}
				p.next[i].Init(s, stm.TagNone)
			}
		}
	}
	for _, p := range e.pieces {
		p.live.Init(1)
	}

	if g.bundles() {
		// Birth records in the still-private pieces' inline slot 0. The
		// wired successors were read through the transaction, so
		// prepare-time validation (and the locks held through Publish)
		// pin them as the links' post-publish values; the records stay
		// pending until the publish fill pass stamps them through the
		// piece walk, and an abort recycles them with the pieces.
		for _, p := range e.pieces {
			bunBirth(p, p.next[0].PeekPtr())
		}
	}

	// Transactional pointer swings; published atomically at commit. A
	// slot shared with a group further left is simply overwritten by that
	// group's later Store in the same write set.
	for i := 0; i < e.maxH; i++ {
		if err := e.pa[i].next[i].Store(tx, nextPiece(e.pieces, 0, i), stm.TagNone); err != nil {
			return err
		}
	}
	if err := n.live.Store(tx, 0); err != nil {
		return err
	}
	if e.merge {
		return e.old1.live.Store(tx, 0)
	}
	return nil
}
