package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Leap-COP variant: consistency-oblivious
// search prefix (no instrumentation), then a single STM transaction that
// re-validates the prefix and performs every structural write
// transactionally. Unlike LT there are no marks and no postfix — the
// pointer swings themselves are buffered STM writes published at commit,
// which is safe for concurrent naked searches because this STM is
// lazy-versioning (naked reads never observe tentative data; the paper's
// GCC-TM was write-through, which is what forced the authors to invent the
// marked-pointer discipline and ultimately LT).

// updateCOP is the composed update across the lists of one batch.
func (g *Group[V]) updateCOP(ls []*List[V], ks []uint64, vs []V) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	for attempt := 0; ; attempt++ {
		// Setup: identical to LT (Figure 8).
		for j := 0; j < s; j++ {
			k := toInternal(ks[j])
			searchNaked(ls[j], k, b.pa[j], b.na[j])
			n := b.na[j][0]
			b.n[j] = n
			if n.count() == g.cfg.NodeSize {
				b.split[j] = true
				b.new1[j] = newNode[V](n.level)
				b.new0[j] = newNode[V](g.pickLevel())
				b.maxH[j] = max(b.new0[j].level, b.new1[j].level)
			} else {
				b.split[j] = false
				b.new0[j] = newNode[V](n.level)
				b.new1[j] = nil
				b.maxH[j] = n.level
			}
			createNewNodes(n, k, vs[j], b.split[j], b.new0[j], b.new1[j])
		}

		// Verification and writes in one transaction.
		err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
			for j := 0; j < s; j++ {
				if err := g.updateTxWrites(tx, b, j); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			for j := 0; j < s; j++ {
				g.retire(b.n[j])
			}
			return
		}
		stmBackoff(attempt)
	}
}

// updateTxWrites validates one list's search results and performs the
// update's structural writes inside tx. Shared by COP (after a naked
// search) and TM (after a transactional search).
func (g *Group[V]) updateTxWrites(tx *stm.Tx, b *batchState[V], j int) error {
	n, new0, new1 := b.n[j], b.new0[j], b.new1[j]
	pa, na := b.pa[j], b.na[j]

	if lv, err := n.live.Load(tx); err != nil {
		return err
	} else if lv == 0 {
		return stm.ErrConflict
	}
	for i := 0; i < n.level; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != n {
			return stm.ErrConflict
		}
	}
	for i := 0; i < b.maxH[j]; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != na[i] {
			return stm.ErrConflict
		}
		if lv, err := pa[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
		if lv, err := na[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
	}

	// Wire the private replacement nodes from transactionally read
	// successors; the read set protects them until commit.
	if b.split[j] {
		if new1.level > new0.level {
			for i := 0; i < new0.level; i++ {
				succ, _, err := n.next[i].Load(tx)
				if err != nil {
					return err
				}
				new0.next[i].Init(new1, stm.TagNone)
				new1.next[i].Init(succ, stm.TagNone)
			}
			for i := new0.level; i < new1.level; i++ {
				succ, _, err := n.next[i].Load(tx)
				if err != nil {
					return err
				}
				new1.next[i].Init(succ, stm.TagNone)
			}
		} else {
			for i := 0; i < new1.level; i++ {
				succ, _, err := n.next[i].Load(tx)
				if err != nil {
					return err
				}
				new0.next[i].Init(new1, stm.TagNone)
				new1.next[i].Init(succ, stm.TagNone)
			}
			for i := new1.level; i < new0.level; i++ {
				if i < n.level {
					succ, _, err := n.next[i].Load(tx)
					if err != nil {
						return err
					}
					new0.next[i].Init(succ, stm.TagNone)
				} else {
					new0.next[i].Init(na[i], stm.TagNone)
				}
			}
		}
	} else {
		for i := 0; i < new0.level; i++ {
			succ, _, err := n.next[i].Load(tx)
			if err != nil {
				return err
			}
			new0.next[i].Init(succ, stm.TagNone)
		}
	}
	new0.live.Init(1)
	if b.split[j] {
		new1.live.Init(1)
	}

	// Transactional pointer swings; published atomically at commit.
	for i := 0; i < new0.level; i++ {
		if err := pa[i].next[i].Store(tx, new0, stm.TagNone); err != nil {
			return err
		}
	}
	if b.split[j] && new1.level > new0.level {
		for i := new0.level; i < new1.level; i++ {
			if err := pa[i].next[i].Store(tx, new1, stm.TagNone); err != nil {
				return err
			}
		}
	}
	return n.live.Store(tx, 0)
}

// removeCOP is the composed remove across the lists of one batch.
func (g *Group[V]) removeCOP(ls []*List[V], ks []uint64, changed []bool) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	for attempt := 0; ; attempt++ {
		for j := 0; j < s; j++ {
			g.removeSetupLT(ls[j], toInternal(ks[j]), b, j)
		}
		err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
			for j := 0; j < s; j++ {
				if !b.changed[j] {
					continue
				}
				if err := g.removeTxWrites(tx, b, j); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			break
		}
		stmBackoff(attempt)
	}
	for j := 0; j < s; j++ {
		changed[j] = b.changed[j]
		if b.changed[j] {
			g.retire(b.n[j])
			if b.merge[j] {
				g.retire(b.old1[j])
			}
		}
	}
}

// removeTxWrites validates one list's remove and performs its structural
// writes inside tx. Shared by COP and TM.
func (g *Group[V]) removeTxWrites(tx *stm.Tx, b *batchState[V], j int) error {
	old0, old1, repl := b.n[j], b.old1[j], b.new0[j]
	pa := b.pa[j]

	if lv, err := old0.live.Load(tx); err != nil {
		return err
	} else if lv == 0 {
		return stm.ErrConflict
	}
	if b.merge[j] {
		if lv, err := old1.live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
		succ, _, err := old0.next[0].Load(tx)
		if err != nil {
			return err
		}
		if succ != old1 {
			return stm.ErrConflict
		}
	}
	for i := 0; i < old0.level; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != old0 {
			return stm.ErrConflict
		}
		if lv, err := pa[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
	}
	if b.merge[j] {
		for i := old0.level; i < old1.level; i++ {
			p, _, err := pa[i].next[i].Load(tx)
			if err != nil {
				return err
			}
			if p != old1 {
				return stm.ErrConflict
			}
			if lv, err := pa[i].live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
		}
	}

	// Wire the replacement from transactionally read successors.
	if b.merge[j] {
		for i := 0; i < old1.level && i < repl.level; i++ {
			succ, _, err := old1.next[i].Load(tx)
			if err != nil {
				return err
			}
			repl.next[i].Init(succ, stm.TagNone)
		}
		for i := old1.level; i < old0.level; i++ {
			succ, _, err := old0.next[i].Load(tx)
			if err != nil {
				return err
			}
			repl.next[i].Init(succ, stm.TagNone)
		}
	} else {
		for i := 0; i < old0.level; i++ {
			succ, _, err := old0.next[i].Load(tx)
			if err != nil {
				return err
			}
			repl.next[i].Init(succ, stm.TagNone)
		}
	}
	repl.live.Init(1)

	for i := 0; i < repl.level; i++ {
		if err := pa[i].next[i].Store(tx, repl, stm.TagNone); err != nil {
			return err
		}
	}
	if err := old0.live.Store(tx, 0); err != nil {
		return err
	}
	if b.merge[j] {
		return old1.live.Store(tx, 0)
	}
	return nil
}
