package core

import (
	"sync/atomic"

	"leaplist/internal/stm"
)

// Versioned level-0 links ("bundles", after Nelson-Slivon et al.'s Bundled
// References). Every node carries a short newest-first list of
// {timestamp, *node} records describing what its level-0 next pointer was
// as of each global-clock instant. Records are prepended PENDING inside
// the publish phase before the batch draws its timestamp from the clock
// and filled after the pointer swings land, so a reader holding snapshot
// timestamp S either finds a filled record and decides by comparison, or
// finds a pending one and spins for the bounded remainder of the writer's
// publish postfix — it never restarts, and writers never wait for it.
//
// The folded record layout (PR 9) cuts the per-write record traffic to
// one prepend per write entry:
//
//   - A node's death is not a chain record at all. It is folded into two
//     per-node words (node.repl, node.died): publish phase A stores the
//     replacement pointer, the fill pass stamps the timestamp — the same
//     PENDING-then-fill discipline a chain record would get, with the
//     same bounded reader spin. The dying node's own chain stays frozen
//     at its pre-death contents, which is exactly what readers with
//     S < death need.
//   - A piece's birth record is not prepended either: the wiring code
//     installs the piece's inline slot 0 (see below) while the piece is
//     still private, and the fill pass stamps it from the batch scratch
//     in the same walk that stamps the piece's born.
//   - What remains on the heap-capable prepend path is one pred-link
//     record per write entry (on the entry's level-0 predecessor, naming
//     the entry's leftmost piece), and even that lands in the
//     predecessor's inline slot 1 the first time around.
//
// Each node embeds a two-record inline pair (node.inl): slot 0 serves
// the node's birth, slot 1 its first pred-link; only after both are
// spent does bunPrepend fall back to pooled heap records. Steady-state
// overwrites — replace a node, link it from a fresh predecessor piece —
// therefore allocate zero bundle records. Inline slots are single-use
// per node lifetime: truncation can cut them off the chain, and the
// chain destructor stops when it reaches one (the immutable inline flag
// identifies it even if the shell was since recycled), leaving the slot
// for recycleNode to reset under the node's own grace period.
//
// Reader protocol (bunNextAsOf / bunRecoverAsOf): a node X in the
// as-of-S chain (born <= S, died > S) has, by construction, a record for
// every change of X.next[0] up to S; the newest record with ts <= S
// therefore names X's successor at instant S, which is itself in the
// as-of-S chain. Any node pointer observed during the current epoch pin
// with born <= S can be promoted into the chain by chasing repl pointers
// of nodes with died <= S: the target either covers the dead node's left
// boundary (ordinary replacement) or sits just past a fully deleted run
// — in both cases every key between is absent at every S >= died, so a
// forward walk from the target resolves the same result set. The chase
// is finite (each hop's died strictly increases toward S) and
// restart-free.
//
// Reclamation: a record superseded by a newer one on the same link is
// stamped with the epoch era of the superseding publish; once the global
// epoch has advanced twice past that era, no pinned reader can still
// prefer it (its S would have to predate the superseding record's
// timestamp, which was filled before the reader could have pinned), so
// the fill pass truncates the tail and retires the cut records through
// the batch's epoch participant, exactly like retired nodes. A dying
// node's whole bundle is recycled by recycleNode after the node's own
// grace period.

// bunPending marks a record (or a node's born/died field) whose timestamp
// has not been filled yet; readers spin through it, anchors reject it.
const bunPending = ^uint64(0)

// bundleRec is one versioned-link record. ts and the reclamation fields
// are atomic; to is immutable once the record is reachable.
type bundleRec[V any] struct {
	ts atomic.Uint64 // clock timestamp; bunPending until the fill pass

	to    *node[V]
	older atomic.Pointer[bundleRec[V]]

	// supersededEra is 0 while the record heads its link's bundle, and the
	// epoch era observed by the publish that displaced it afterwards; the
	// truncation rule cuts it (and everything older) once the global epoch
	// reaches supersededEra+2.
	supersededEra atomic.Uint64

	// inline marks a record embedded in a node's inline pair (node.inl).
	// Set once at shell construction and never cleared — not even across
	// shell recycling — so the chain destructor can recognize a cut-off
	// inline record at any later time and stop instead of pooling it.
	inline bool
}

// bunFill is one deferred fill obligation recorded by a publish phase:
// rec gets the batch timestamp, superseded (the link's previous head)
// gets era-stamped, and link (the bundle's owner) gets a truncation
// attempt. Only pred-link records flow through here; births are stamped
// by the fill pass's entry walk and deaths live in the node words.
type bunFill[V any] struct {
	rec        *bundleRec[V]
	superseded *bundleRec[V]
	link       *node[V]
}

// getBundleRec returns a cleared heap record, recycled when the pool has
// one.
func (g *Group[V]) getBundleRec() *bundleRec[V] {
	rec, _ := g.bunPool.Get().(*bundleRec[V])
	if rec == nil {
		rec = &bundleRec[V]{}
	}
	return rec
}

// bunSlot hands out the next record for a prepend onto n's bundle: the
// node's inline slots while any remain, pooled heap records afterwards.
// Inline slots are handed out oldest-position-first, so a chain is
// always [heap records..., inline records] newest-first — a truncation
// cut never strands a heap record below an inline one. Callable only
// under the publish phase's per-node serialization (inlUsed is plain).
func (g *Group[V]) bunSlot(n *node[V]) *bundleRec[V] {
	if n.inlUsed < 2 {
		rec := &n.inl[n.inlUsed]
		n.inlUsed++
		return rec
	}
	return g.getBundleRec()
}

// recycleBundleRec clears every reference of a quiesced record and
// returns it to the pool; inline records are cleared in place and left
// with their shell (recycleNode resets inlUsed). Called by recycleNode
// (the node's own grace period proves quiescence) and by releasePlan for
// records of never-published pieces.
func (g *Group[V]) recycleBundleRec(obj any) {
	rec := obj.(*bundleRec[V])
	rec.ts.Store(bunPending)
	rec.to = nil
	rec.older.Store(nil)
	rec.supersededEra.Store(0)
	if !rec.inline {
		g.bunPool.Put(rec)
	}
}

// recycleBundleChain is the epoch destructor of a truncated bundle tail:
// the tail stays internally linked by its older pointers, so one
// retirement covers the whole cut — the fill pass pays one Retire per
// truncation instead of one per record. The walk stops at the first
// inline record: a cut-off inline slot belongs to its (possibly still
// live, possibly since-recycled) owner node and is reset only by that
// node's own recycleNode; everything below it in the cut is inline too
// (bunSlot's hand-out order), so stopping strands nothing poolable.
func (g *Group[V]) recycleBundleChain(obj any) {
	rec := obj.(*bundleRec[V])
	for rec != nil && !rec.inline {
		next := rec.older.Load()
		g.recycleBundleRec(rec)
		rec = next
	}
}

// bunInit installs a single filled record {ts: 0, to: to} — the node's
// inline birth slot — as n's entire bundle. Only legal before n is
// shared (list construction, BulkLoad).
func (g *Group[V]) bunInit(n, to *node[V]) {
	rec := &n.inl[0]
	rec.ts.Store(0)
	rec.to = to
	rec.older.Store(nil)
	n.bun.Store(rec)
	n.inlUsed = 1
}

// bunBirth installs p's birth record — its inline slot 0, PENDING —
// naming the level-0 successor the wiring just gave it. Called by the
// publish-phase wiring code while p is still private (no allocation, no
// fill obligation: the fill pass stamps every published piece's birth
// record in the same walk that stamps its born). The record becomes
// newest-first correct automatically: any pred-link record a later
// publish prepends onto p lands above it.
func bunBirth[V any](p, to *node[V]) {
	rec := &p.inl[0]
	rec.ts.Store(bunPending)
	rec.to = to
	rec.older.Store(nil)
	p.bun.Store(rec)
	p.inlUsed = 1
}

// bunPrepend prepends a PENDING pred-link record onto n's bundle and
// records the fill obligation in b — the one heap-capable prepend of the
// protocol. Callable only from a publish phase: the commit protocol's
// marks/locks serialize every writer of n's bundle, so the plain
// load/store pair cannot race another prepend.
func (g *Group[V]) bunPrepend(b *txState[V], n, to *node[V]) {
	rec := g.bunSlot(n)
	rec.ts.Store(bunPending)
	rec.to = to
	old := n.bun.Load()
	rec.older.Store(old)
	n.bun.Store(rec)
	b.bunFills = append(b.bunFills, bunFill[V]{rec: rec, superseded: old, link: n})
}

// bunPublishStart is publish phase A, run before the batch draws its
// timestamp: prepend a PENDING pred-link record on every write entry's
// level-0 predecessor (naming the entry's leftmost piece, the link's
// value once the swings land) and store every dying node's replacement
// pointer — the pointer half of the folded death record; the fill pass
// supplies the timestamp half. A predecessor that itself dies in this
// batch gets no pred-link record: its replacement's birth record carries
// the link instead, and a dead node's chain stays frozen at its
// pre-death contents. A splice-run entry folds the same way: one
// pred-link record on the run's level-0 predecessor, and every run
// node's repl pointing straight at the run's surviving successor.
func (g *Group[V]) bunPublishStart(b *txState[V]) {
	// Pause-safe: nothing is pended yet, so stalling here freezes the
	// batch before any reader can block on its PENDING records.
	fpHit(fpBundlePend)
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if !e.write {
			continue
		}
		if e.runEnd != nil {
			succ := b.succTarget(t, 0, e.runSucc[0])
			if !b.predDying(t) {
				g.bunPrepend(b, e.pa[0], succ)
			}
			for x := e.n; ; x = x.next[0].PeekPtr() {
				x.repl.Store(succ)
				if x == e.runEnd {
					break
				}
			}
			continue
		}
		if !b.predDying(t) {
			g.bunPrepend(b, e.pa[0], e.pieces[0])
		}
		e.n.repl.Store(e.pieces[0])
		if e.merge {
			e.old1.repl.Store(e.pieces[0])
		}
	}
}

// predDying reports whether entry t's level-0 predecessor is replaced by
// this same batch. Entries are ordered by list then key and pa[0] is the
// immediate level-0 predecessor of e.n, so the only batch nodes that can
// occupy it are the previous entry's n, its merge partner, or — when the
// previous entry splices out a run — the run's last node: any earlier
// entry's n lies strictly left of entry t-1's, and an earlier entry's
// merge partner is its immediate successor, which cannot reach past a
// nearer batch node (merges into batch targets are vetoed by buildEntry).
func (b *txState[V]) predDying(t int) bool {
	if t == 0 {
		return false
	}
	e, f := b.entries[t], b.entries[t-1]
	if f.l != e.l || !f.write {
		return false
	}
	if f.runEnd != nil {
		return f.runEnd == e.pa[0]
	}
	return f.n == e.pa[0] || (f.merge && f.old1 == e.pa[0])
}

// bunFillAll is the publish fill pass: stamp every pred-link record this
// batch prepended with the batch timestamp ts, stamp every published
// piece's born and inline birth record, stamp every dying node's died
// word (completing the folded death records phase A pointed), era-mark
// the displaced pred-link heads, and truncate expired tails. Runs after
// the pointer swings of the publish (readers spin on the pending records
// and died words until here) and before the batch's scratch is released.
func (g *Group[V]) bunFillAll(b *txState[V], ts uint64) {
	// Yield/error actions only at this site and the death-fold one below:
	// the batch's PENDING records are already on the live structure here,
	// and timestamped readers spin until the fill stamps them — an
	// ActPause would turn that bounded spin into a deadlock. (Use the
	// publish sites, before phase A, to stall a commit safely.)
	fpHit(fpBundleFill)
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if !e.write {
			continue
		}
		fpHit(fpBundleDeathFold)
		if e.runEnd != nil {
			for x := e.n; ; x = x.next[0].PeekPtr() {
				x.died.Store(ts)
				if x == e.runEnd {
					break
				}
			}
			continue
		}
		for _, p := range e.pieces {
			p.born.Store(ts)
			p.inl[0].ts.Store(ts)
		}
		e.n.died.Store(ts)
		if e.merge {
			e.old1.died.Store(ts)
		}
	}
	if len(b.bunFills) == 0 {
		return
	}
	for i := range b.bunFills {
		b.bunFills[i].rec.ts.Store(ts)
	}
	// Era-stamp displaced heads with a fresh epoch read: the displacement
	// happened earlier in this publish, so the current epoch is a
	// conservative (never-early) stamp for the truncation rule.
	era := g.collector.Epoch()
	for i := range b.bunFills {
		f := &b.bunFills[i]
		if f.superseded != nil {
			f.superseded.supersededEra.Store(era)
		}
		if f.link != nil {
			g.bunTruncate(b, f.link, era)
		}
	}
}

// bunTruncate cuts the expired tail of n's bundle: the first record
// superseded at least two epochs ago — no pinned reader can still prefer
// it or anything older — is unlinked together with its whole tail, and
// the tail is retired through the batch's epoch participant as one
// still-linked chain (recycleBundleChain). The bundle head is never
// superseded, so the cut always keeps at least one record. Serialized
// per node like every bundle write.
func (g *Group[V]) bunTruncate(b *txState[V], n *node[V], nowEra uint64) {
	prev := n.bun.Load()
	if prev == nil {
		return
	}
	for {
		rec := prev.older.Load()
		if rec == nil {
			return
		}
		if e := rec.supersededEra.Load(); e == 0 || e+2 > nowEra {
			prev = rec
			continue
		}
		prev.older.Store(nil)
		b.part.Retire(rec, g.donateBundle)
		return
	}
}

// bunNextAsOf returns n's level-0 successor at clock instant s. n must be
// in the as-of-s chain (born <= s, died after s): then its bundle covers
// every link change through s and the newest record with ts <= s names
// the successor at s — which is in the chain too, so hops compose without
// re-validation. A pending record is the bounded publish window of a
// concurrent writer; the spin escalates like every protocol-level busy
// wait. Returns nil only on a protocol violation (checked by the caller).
func bunNextAsOf[V any](n *node[V], s uint64) *node[V] {
	rec := n.bun.Load()
	spins := 0
	for rec != nil {
		ts := rec.ts.Load()
		for ts == bunPending {
			spins++
			stm.RestartBackoff(spins)
			ts = rec.ts.Load()
		}
		if ts <= s {
			return rec.to
		}
		rec = rec.older.Load()
	}
	return nil
}

// bunRecoverAsOf promotes a hint node — any pointer observed during the
// current epoch pin with born <= s — into the as-of-s chain by chasing
// folded death records: a hint whose died <= s was either replaced by a
// piece covering the same left boundary or spliced out inside a fully
// deleted run whose successor repl names directly; in both cases every
// key between the hint's left boundary and the target is absent at every
// instant >= died, so the chase lands in the chain without skipping any
// live pair. A non-nil repl with a pending died is a concurrent publish
// mid-postfix; the spin is bounded like every pending-record wait. The
// chase is finite (each hop's died strictly increases toward s) and
// restart-free.
func bunRecoverAsOf[V any](n *node[V], s uint64) *node[V] {
	spins := 0
	for {
		r := n.repl.Load()
		if r == nil {
			// repl is stored before died is stamped and never cleared
			// while any reader can hold n; no replacement pointer means
			// the node is alive.
			return n
		}
		ts := n.died.Load()
		for ts == bunPending {
			spins++
			stm.RestartBackoff(spins)
			ts = n.died.Load()
		}
		if ts > s {
			return n // died after s: in the as-of-s chain
		}
		n = r
	}
}
