package core

import (
	"sync/atomic"

	"leaplist/internal/stm"
)

// Versioned level-0 links ("bundles", after Nelson-Slivon et al.'s Bundled
// References). Every node carries a short newest-first list of
// {timestamp, *node} records describing what its level-0 next pointer was
// as of each global-clock instant, plus one death record stamped when the
// node itself is replaced. Records are prepended PENDING inside the
// publish phase before the batch draws its timestamp from the clock and
// filled after the pointer swings land, so a reader holding snapshot
// timestamp S either finds a filled record and decides by comparison, or
// finds a pending one and spins for the bounded remainder of the writer's
// publish postfix — it never restarts, and writers never wait for it.
//
// Reader protocol (bunSeekAsOf / bunRecoverAsOf): a node X in the as-of-S
// chain (born <= S, death timestamp > S) has, by construction, a record
// for every change of X.next[0] up to S; the newest record with ts <= S
// therefore names X's successor at instant S, which is itself in the
// as-of-S chain. Any node pointer observed during the current epoch pin
// with born <= S can be promoted into the chain by chasing death records
// (each names the replacement piece covering the dead node's left
// boundary, which never moves), so a descent over the live structure only
// needs to produce a hint — it never needs to be consistent itself.
//
// Reclamation: a record superseded by a newer one on the same link is
// stamped with the epoch era of the superseding publish; once the global
// epoch has advanced twice past that era, no pinned reader can still
// prefer it (its S would have to predate the superseding record's
// timestamp, which was filled before the reader could have pinned), so
// the fill pass truncates the tail and retires the cut records through
// the batch's epoch participant, exactly like retired nodes. A dying
// node's whole bundle is recycled by recycleNode after the node's own
// grace period.

// bunPending marks a record (or a node's born field) whose timestamp has
// not been filled yet; readers spin through it, anchors reject it.
const bunPending = ^uint64(0)

// bundleRec is one versioned-link record. ts and the reclamation fields
// are atomic; death and to are immutable once the record is reachable.
type bundleRec[V any] struct {
	ts atomic.Uint64 // clock timestamp; bunPending until the fill pass

	// death marks the terminal record of a replaced node: to names the
	// replacement piece whose range starts at the dead node's (immutable)
	// left boundary, not a successor.
	death bool
	to    *node[V]
	older atomic.Pointer[bundleRec[V]]

	// supersededEra is 0 while the record heads its link's bundle, and the
	// epoch era observed by the publish that displaced it afterwards; the
	// truncation rule cuts it (and everything older) once the global epoch
	// reaches supersededEra+2.
	supersededEra atomic.Uint64
}

// bunFill is one deferred fill obligation recorded by a publish phase:
// rec gets the batch timestamp, superseded (the link's previous head, for
// pred-link records) gets era-stamped, and link (the bundle's owner) gets
// a truncation attempt.
type bunFill[V any] struct {
	rec        *bundleRec[V]
	superseded *bundleRec[V]
	link       *node[V]
}

// getBundleRec returns a cleared record, recycled when the pool has one.
func (g *Group[V]) getBundleRec() *bundleRec[V] {
	rec, _ := g.bunPool.Get().(*bundleRec[V])
	if rec == nil {
		rec = &bundleRec[V]{}
	}
	return rec
}

// recycleBundleRec clears every reference of a quiesced record and
// returns it to the pool. Called by recycleNode (the node's own grace
// period proves quiescence), by releasePlan for records of
// never-published pieces, and by the chain destructor below.
func (g *Group[V]) recycleBundleRec(obj any) {
	rec := obj.(*bundleRec[V])
	rec.ts.Store(bunPending)
	rec.death = false
	rec.to = nil
	rec.older.Store(nil)
	rec.supersededEra.Store(0)
	g.bunPool.Put(rec)
}

// recycleBundleChain is the epoch destructor of a truncated bundle tail:
// the tail stays internally linked by its older pointers, so one
// retirement covers the whole cut — the fill pass pays one Retire per
// truncation instead of one per record.
func (g *Group[V]) recycleBundleChain(obj any) {
	rec := obj.(*bundleRec[V])
	for rec != nil {
		next := rec.older.Load()
		g.recycleBundleRec(rec)
		rec = next
	}
}

// bunInit installs a single filled record {ts: 0, to: to} as n's entire
// bundle, dropping any previous chain to the Go collector. Only legal
// before n is shared (list construction, BulkLoad).
func (g *Group[V]) bunInit(n, to *node[V]) {
	rec := g.getBundleRec()
	rec.ts.Store(0)
	rec.to = to
	n.bun.Store(rec)
}

// bunPrepend prepends a PENDING record onto n's bundle and records the
// fill obligation in b. Callable only from a publish phase: the commit
// protocol's marks/locks serialize every writer of n's bundle, so the
// plain load/store pair cannot race another prepend. death selects a
// death record (see bundleRec); pred selects pred-link bookkeeping (era
// stamping of the displaced head and truncation at fill time), which
// death records and birth records — whose bundles die with their node or
// start empty — do not need.
func (g *Group[V]) bunPrepend(b *txState[V], n, to *node[V], death, pred bool) {
	rec := g.getBundleRec()
	rec.ts.Store(bunPending)
	rec.death = death
	rec.to = to
	old := n.bun.Load()
	rec.older.Store(old)
	n.bun.Store(rec)
	f := bunFill[V]{rec: rec}
	if pred {
		f.superseded = old
		f.link = n
	}
	b.bunFills = append(b.bunFills, f)
}

// bunPublishStart is publish phase A, run before the batch draws its
// timestamp: prepend a PENDING pred-link record on every write entry's
// level-0 predecessor (naming the entry's leftmost piece, the link's
// value once the swings land) and a PENDING death record on every dying
// node (naming the piece that inherits its immutable left boundary).
// A predecessor that itself dies in this batch gets no pred-link record:
// its replacement's birth record carries the link instead, and a dead
// node's bundle must end at its death record.
func (g *Group[V]) bunPublishStart(b *txState[V]) {
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if !e.write {
			continue
		}
		if !b.predDying(t) {
			g.bunPrepend(b, e.pa[0], e.pieces[0], false, true)
		}
		g.bunPrepend(b, e.n, e.pieces[0], true, false)
		if e.merge {
			g.bunPrepend(b, e.old1, e.pieces[0], true, false)
		}
	}
}

// predDying reports whether entry t's level-0 predecessor is replaced by
// this same batch. Entries are ordered by list then key and pa[0] is the
// immediate level-0 predecessor of e.n, so the only batch nodes that can
// occupy it are the previous entry's n or its merge partner: any earlier
// entry's n lies strictly left of entry t-1's, and an earlier entry's
// merge partner is its immediate successor, which cannot reach past a
// nearer batch node (merges into batch targets are vetoed by buildEntry).
func (b *txState[V]) predDying(t int) bool {
	if t == 0 {
		return false
	}
	e, f := b.entries[t], b.entries[t-1]
	if f.l != e.l || !f.write {
		return false
	}
	return f.n == e.pa[0] || (f.merge && f.old1 == e.pa[0])
}

// bunFillAll is the publish fill pass: stamp every record this batch
// prepended with the batch timestamp ts, stamp every published piece's
// born, era-mark the displaced pred-link heads, and truncate expired
// tails. Runs after the pointer swings of the publish (readers spin on
// the pending records until here) and before the batch's scratch is
// released.
func (g *Group[V]) bunFillAll(b *txState[V], ts uint64) {
	if len(b.bunFills) == 0 && b.nEnt == 0 {
		return
	}
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if !e.write {
			continue
		}
		for _, p := range e.pieces {
			p.born.Store(ts)
		}
	}
	if len(b.bunFills) == 0 {
		return
	}
	for i := range b.bunFills {
		b.bunFills[i].rec.ts.Store(ts)
	}
	// Era-stamp displaced heads with a fresh epoch read: the displacement
	// happened earlier in this publish, so the current epoch is a
	// conservative (never-early) stamp for the truncation rule.
	era := g.collector.Epoch()
	for i := range b.bunFills {
		f := &b.bunFills[i]
		if f.superseded != nil {
			f.superseded.supersededEra.Store(era)
		}
		if f.link != nil {
			g.bunTruncate(b, f.link, era)
		}
	}
}

// bunTruncate cuts the expired tail of n's bundle: the first record
// superseded at least two epochs ago — no pinned reader can still prefer
// it or anything older — is unlinked together with its whole tail, and
// the tail is retired through the batch's epoch participant as one
// still-linked chain (recycleBundleChain). The bundle head is never
// superseded, so the cut always keeps at least one record. Serialized
// per node like every bundle write.
func (g *Group[V]) bunTruncate(b *txState[V], n *node[V], nowEra uint64) {
	prev := n.bun.Load()
	if prev == nil {
		return
	}
	for {
		rec := prev.older.Load()
		if rec == nil {
			return
		}
		if e := rec.supersededEra.Load(); e == 0 || e+2 > nowEra {
			prev = rec
			continue
		}
		prev.older.Store(nil)
		b.part.Retire(rec, g.donateBundle)
		return
	}
}

// bunNextAsOf returns n's level-0 successor at clock instant s. n must be
// in the as-of-s chain (born <= s, death after s): then its bundle covers
// every link change through s and the newest record with ts <= s names
// the successor at s — which is in the chain too, so hops compose without
// re-validation. A pending record is the bounded publish window of a
// concurrent writer; the spin escalates like every protocol-level busy
// wait. Returns nil only on a protocol violation (checked by the caller).
func bunNextAsOf[V any](n *node[V], s uint64) *node[V] {
	rec := n.bun.Load()
	spins := 0
	for rec != nil {
		ts := rec.ts.Load()
		for ts == bunPending {
			spins++
			stm.RestartBackoff(spins)
			ts = rec.ts.Load()
		}
		if ts <= s {
			return rec.to
		}
		rec = rec.older.Load()
	}
	return nil
}

// bunRecoverAsOf promotes a hint node — any pointer observed during the
// current epoch pin with born <= s — into the as-of-s chain by chasing
// death records: a hint that died at a timestamp <= s was replaced by a
// piece covering the same left boundary, recursively until a node that
// was alive at instant s is reached. The chase is finite (each hop's born
// strictly increases toward s) and restart-free.
func bunRecoverAsOf[V any](n *node[V], s uint64) *node[V] {
	spins := 0
	for {
		rec := n.bun.Load()
		if rec == nil || !rec.death {
			// A node's death record, once stamped, is its newest record
			// forever; no death record at the head means none exists.
			return n
		}
		ts := rec.ts.Load()
		for ts == bunPending {
			spins++
			stm.RestartBackoff(spins)
			ts = rec.ts.Load()
		}
		if ts > s {
			return n // died after s: in the as-of-s chain
		}
		n = rec.to
	}
}
