package core

import (
	"sync"
	"sync/atomic"

	"leaplist/internal/stm"
)

// List is a single Leap-List belonging to a Group. Lookup and RangeQuery
// are single-list linearizable operations; Update and Remove are performed
// through the group so they can compose across lists.
type List[V any] struct {
	g    *Group[V]
	head *node[V]
	id   uint64 // creation order; VariantRW locks batches in id order

	// mu is the whole-list lock of VariantRW; unused by other variants.
	mu sync.RWMutex

	// idx is the list's point-lookup hash index generation (nil until
	// the first publish-path insert or BulkLoad); idxMu serializes table
	// creation and growth. See hashindex.go.
	idx   atomic.Pointer[idxTable[V]]
	idxMu sync.Mutex

	// absorbHint schedules compaction of lingering empty nodes: a
	// snapshot read that walks two or more consecutive empty nodes posts
	// the first one's internal high here (noteLingeringEmpties), and the
	// next write batch planning past that position splices the whole
	// empty run out with one extra entry (planGroups's scheduled-absorb
	// injection). 0 means no hint. Best-effort on both sides: readers
	// overwrite freely, writers consume with a CompareAndSwap, and a
	// dropped hint is simply re-detected by a later snapshot.
	absorbHint atomic.Uint64
}

// NewList creates an empty list: a head sentinel (high = -inf, no keys, at
// the maximum level) pointing at a keyless terminal node with high = +inf,
// also at the maximum level so every per-level list terminates there.
func (g *Group[V]) NewList() *List[V] {
	maxLevel := g.cfg.MaxLevel
	id := g.listIDs.Add(1)
	head := newNode[V](maxLevel)
	head.high = negInf
	head.lid = id
	head.seal()
	head.live.Init(1)

	tail := newNode[V](maxLevel)
	tail.high = posInf
	tail.lid = id
	tail.seal()
	tail.live.Init(1)

	for i := 0; i < maxLevel; i++ {
		head.next[i].Init(tail, stm.TagNone)
	}
	if g.bundles() {
		// Birth record of the head's level-0 link (timestamp 0: the link
		// predates every batch). The tail needs none — no reader ever hops
		// past high = +inf. Both sentinels keep born = 0 from newNode.
		g.bunInit(head, tail)
	}
	return &List[V]{g: g, head: head, id: id}
}

// Group returns the group the list belongs to.
func (l *List[V]) Group() *Group[V] {
	return l.g
}

// BulkLoad populates an empty list with the given pairs, which must be
// sorted by strictly increasing key. It builds half-full nodes directly —
// the steady state that ascending insertion produces (each split leaves a
// half-full left node behind) — so large benchmark initializations do not
// pay the per-update node-copy cost. Only safe before the list is shared.
//
//lint:allow epochpin pre-publication construction: every node touched here is unreachable until this call returns
func (l *List[V]) BulkLoad(keys []uint64, vals []V) error {
	if len(keys) != len(vals) {
		return ErrBatchMismatch
	}
	fill := l.g.cfg.NodeSize / 2
	if fill < 1 {
		fill = 1
	}
	// Per-level rightmost node so far; splicing each new node is O(level).
	last := make([]*node[V], l.g.cfg.MaxLevel)
	for i := range last {
		last[i] = l.head
	}
	for start := 0; start < len(keys); start += fill {
		end := start + fill
		if end > len(keys) {
			end = len(keys)
		}
		lvl := l.g.pickLevel()
		n := newNode[V](lvl)
		n.lid = l.id
		n.keys = make([]uint64, end-start)
		n.vals = make([]V, end-start)
		for i := start; i < end; i++ {
			if keys[i] == ^uint64(0) {
				return ErrKeyRange
			}
			if i > start && keys[i] <= keys[i-1] {
				return ErrBatchMismatch
			}
			n.keys[i-start] = toInternal(keys[i])
			n.vals[i-start] = vals[i]
		}
		n.high = n.keys[len(n.keys)-1]
		n.seal()
		n.live.Init(1)
		for i := 0; i < n.level; i++ {
			n.next[i].Init(last[i].next[i].PeekPtr(), stm.TagNone)
			last[i].next[i].DirectStore(n, stm.TagNone)
			last[i] = n
		}
	}
	if l.g.bundles() {
		// Rebuild the level-0 birth records in one pass: splicing above
		// rewired each node's successor as later nodes arrived, so the
		// records are installed against the final chain. Timestamp 0 and
		// born 0 (from newNode) are right: like the sentinels, BulkLoad
		// nodes predate sharing, hence every possible snapshot timestamp.
		for x := l.head; x.high != posInf; {
			succ := x.next[0].PeekPtr()
			l.g.bunInit(x, succ)
			x = succ
		}
	}
	if l.g.hashIndex() && len(keys) > 0 {
		l.idxBulkLoad(len(keys))
	}
	return nil
}
