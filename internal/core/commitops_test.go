package core

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
)

// TestCommitOpsValidation pins the general batch's input contract.
func TestCommitOpsValidation(t *testing.T) {
	g := newTestGroup(t, VariantLT)
	other := newTestGroup(t, VariantLT)
	l := g.NewList()
	foreign := other.NewList()

	if err := g.CommitOps(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty = %v, want ErrEmptyBatch", err)
	}
	if err := g.CommitOps([]Op[uint64]{{List: foreign, Kind: OpSet, Key: 1}}); !errors.Is(err, ErrForeignList) {
		t.Fatalf("foreign = %v, want ErrForeignList", err)
	}
	if err := g.CommitOps([]Op[uint64]{{List: nil, Kind: OpSet, Key: 1}}); !errors.Is(err, ErrForeignList) {
		t.Fatalf("nil list = %v, want ErrForeignList", err)
	}
	if err := g.CommitOps([]Op[uint64]{{List: l, Kind: OpSet, Key: ^uint64(0)}}); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("key range = %v, want ErrKeyRange", err)
	}
	if err := g.CommitOps([]Op[uint64]{{List: l, Key: 1}}); !errors.Is(err, ErrOpKind) {
		t.Fatalf("bad kind = %v, want ErrOpKind", err)
	}
}

// TestCommitOpsAdjacentNodeGroups drives batches whose keys span several
// ADJACENT nodes of one list — the case where one group's predecessors
// are another group's dying nodes and release order matters — and checks
// contents and invariants after every commit, for every variant.
func TestCommitOpsAdjacentNodeGroups(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		model := map[uint64]uint64{}
		// NodeSize 4: keys 0..31 span ~8+ nodes.
		for i := uint64(0); i < 32; i++ {
			if err := l.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
			model[i] = i
		}
		r := rand.New(rand.NewPCG(9, uint64(g.cfg.Variant)))
		for round := 0; round < 200; round++ {
			nops := 2 + r.IntN(8)
			ops := make([]Op[uint64], 0, nops)
			type expect struct {
				kind  OpKind
				k     uint64
				v     uint64
				found bool
				out   uint64
			}
			var exps []expect
			shadow := map[uint64]*uint64{} // staged overlay for expectations
			overlay := func(k uint64) (uint64, bool) {
				if p, ok := shadow[k]; ok {
					if p == nil {
						return 0, false
					}
					return *p, true
				}
				v, ok := model[k]
				return v, ok
			}
			for o := 0; o < nops; o++ {
				k := r.Uint64N(40) // dense: adjacent nodes, frequent dups
				switch r.IntN(4) {
				case 0, 1:
					v := r.Uint64()
					ops = append(ops, Op[uint64]{List: l, Kind: OpSet, Key: k, Val: v})
					exps = append(exps, expect{kind: OpSet, k: k, v: v})
					vv := v
					shadow[k] = &vv
				case 2:
					ops = append(ops, Op[uint64]{List: l, Kind: OpDelete, Key: k})
					_, present := overlay(k)
					exps = append(exps, expect{kind: OpDelete, k: k, found: present})
					shadow[k] = nil
				default:
					ops = append(ops, Op[uint64]{List: l, Kind: OpGet, Key: k})
					v, present := overlay(k)
					exps = append(exps, expect{kind: OpGet, k: k, found: present, out: v})
				}
			}
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("CommitOps: %v", err)
			}
			for i, e := range exps {
				op := &ops[i]
				switch e.kind {
				case OpDelete:
					if op.Found != e.found {
						t.Fatalf("round %d op %d Delete(%d).Found = %v, want %v", round, i, e.k, op.Found, e.found)
					}
				case OpGet:
					if op.Found != e.found || (e.found && op.Out != e.out) {
						t.Fatalf("round %d op %d Get(%d) = (%d, %v), want (%d, %v)", round, i, e.k, op.Out, op.Found, e.out, e.found)
					}
				}
			}
			// Fold the overlay into the model.
			for k, p := range shadow {
				if p == nil {
					delete(model, k)
				} else {
					model[k] = *p
				}
			}
			if round%20 == 0 {
				mustCheck(t, l)
			}
		}
		mustCheck(t, l)
		if l.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", l.Len(), len(model))
		}
		for _, kv := range l.CollectRange(0, MaxKey) {
			if mv, ok := model[kv.Key]; !ok || mv != kv.Value {
				t.Fatalf("key %d = %d, model (%d, %v)", kv.Key, kv.Value, mv, ok)
			}
		}
	})
}

// TestCommitOpsConcurrentWideBatches hammers every variant with wide
// mixed batches over tiny nodes (so most batches replace several adjacent
// nodes at once) racing with range readers, then verifies invariants.
func TestCommitOpsConcurrentWideBatches(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l1, l2 := g.NewList(), g.NewList()
		const workers = 6
		const keySpace = 96
		iters := stressIters(1200)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 21))
				for i := 0; i < iters; i++ {
					if r.IntN(5) == 0 {
						lo := r.Uint64N(keySpace)
						l1.RangeQuery(lo, lo+24, nil)
						continue
					}
					nops := 2 + r.IntN(6)
					ops := make([]Op[uint64], 0, nops)
					base := r.Uint64N(keySpace)
					for o := 0; o < nops; o++ {
						k := (base + r.Uint64N(12)) % keySpace // clustered: adjacent nodes
						list := l1
						if o == nops-1 {
							list = l2 // every batch also spans a second list
						}
						kind := OpSet
						switch r.IntN(3) {
						case 1:
							kind = OpDelete
						case 2:
							kind = OpGet
						}
						ops = append(ops, Op[uint64]{List: list, Kind: kind, Key: k, Val: k * 2})
					}
					if err := g.CommitOps(ops); err != nil {
						t.Errorf("CommitOps: %v", err)
						return
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		mustCheck(t, l1)
		mustCheck(t, l2)
		// Every surviving value is k*2: torn or misplaced coalesced
		// replacements would surface here.
		for _, l := range []*List[uint64]{l1, l2} {
			for _, kv := range l.CollectRange(0, MaxKey) {
				if kv.Value != kv.Key*2 {
					t.Fatalf("key %d holds %d, want %d", kv.Key, kv.Value, kv.Key*2)
				}
			}
		}
	})
}
