package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotImmutableUnderValueOnlyOverwrites is the sharing-contract
// test of the zero-allocation write path: value-only overwrites replace a
// node by borrowing its keys array and trie, so the test hammers exactly
// that path while checking, two ways, that published snapshot content
// never mutates.
//
//  1. Black-box: writers set the key pair (2i, 2i+1) to one generation
//     value per atomic batch; concurrent range queries with a
//     deliberately slow emit must always observe equal generations within
//     a pair, which fails if a snapshot ever reflected an in-place value
//     write or a recycled buffer.
//  2. White-box: an observer goroutine repeatedly pins an epoch
//     participant (as every real operation does), captures a reachable
//     node's keys/vals arrays plus a copy, yields while the storm runs,
//     and verifies the arrays still hold their original contents — while
//     an observer is pinned, neither the borrowing replacement nor the
//     recycler may touch them.
func TestSnapshotImmutableUnderValueOnlyOverwrites(t *testing.T) {
	const (
		nKeys    = 128
		nodeSize = 16
	)
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			g := NewGroup[uint64](Config{Variant: v, NodeSize: nodeSize}, nil)
			l := g.NewList()
			keys := make([]uint64, nKeys)
			vals := make([]uint64, nKeys)
			for i := range keys {
				keys[i] = uint64(i)
			}
			if err := l.BulkLoad(keys, vals); err != nil {
				t.Fatal(err)
			}

			iters := stressIters(4000)
			var failed atomic.Value // first failure message
			fail := func(format string, args ...any) {
				failed.CompareAndSwap(nil, fmt.Sprintf(format, args...))
			}

			var writerWG, readerWG sync.WaitGroup
			var stop atomic.Bool

			const writers = 4
			for w := 0; w < writers; w++ {
				writerWG.Add(1)
				go func(seed uint64) {
					defer writerWG.Done()
					gen := seed * 1_000_000
					for i := 0; i < iters && failed.Load() == nil; i++ {
						gen++
						base := (seed + uint64(i)) * 2 % nKeys
						ops := []Op[uint64]{
							{List: l, Kind: OpSet, Key: base, Val: gen},
							{List: l, Kind: OpSet, Key: base + 1, Val: gen},
						}
						if err := g.CommitOps(ops); err != nil {
							fail("CommitOps: %v", err)
							return
						}
					}
				}(uint64(w + 1))
			}

			// Readers: pair consistency through slow-emitting range queries.
			for r := 0; r < 2; r++ {
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					for !stop.Load() && failed.Load() == nil {
						var got []uint64
						l.RangeQuery(0, nKeys-1, func(k uint64, v uint64) bool {
							got = append(got, v)
							if k%8 == 0 {
								runtime.Gosched() // stretch the emit window
							}
							return true
						})
						if len(got) != nKeys {
							fail("snapshot has %d keys, want %d", len(got), nKeys)
							return
						}
						for i := 0; i+1 < nKeys; i += 2 {
							if got[i] != got[i+1] {
								fail("pair (%d,%d) split: %d != %d", i, i+1, got[i], got[i+1])
								return
							}
						}
					}
				}()
			}

			// White-box observer: pinned captures of published backing
			// arrays must never change underneath the pin, even while the
			// recycler churns between its pins.
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				part := g.collector.Acquire()
				defer g.collector.Release(part)
				var wantKeys, wantVals []uint64
				for !stop.Load() && failed.Load() == nil {
					part.Pin()
					n := l.head.next[0].PeekPtr()
					for hop := 0; hop < 3 && n != nil && n.high != posInf; hop++ {
						n = n.next[0].PeekPtr()
					}
					if n == nil || n.live.Peek() == 0 {
						part.Unpin()
						continue
					}
					snapKeys, snapVals := n.keys, n.vals
					wantKeys = append(wantKeys[:0], snapKeys...)
					wantVals = append(wantVals[:0], snapVals...)
					for y := 0; y < 4; y++ {
						runtime.Gosched()
					}
					for i := range wantKeys {
						if snapKeys[i] != wantKeys[i] || snapVals[i] != wantVals[i] {
							fail("pinned capture mutated at %d: (%d,%d) != (%d,%d)",
								i, snapKeys[i], snapVals[i], wantKeys[i], wantVals[i])
							break
						}
					}
					part.Unpin()
				}
			}()

			writerWG.Wait()
			stop.Store(true)
			readerWG.Wait()

			if msg := failed.Load(); msg != nil {
				t.Fatal(msg)
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
