package core

// Failpoint site names for the core commit pipeline. Each constant
// marks one fpEval/fpHit call site; the chaos suite (chaos_test.go,
// built with -tags failpoint) arms them by name. Normal builds compile
// every site to nothing — see internal/failpoint.
//
// Naming: core/<variant-or-subsystem>/<phase>.
const (
	// Per-variant phase boundaries. prepare sites sit at the top of the
	// retry loop (nothing held), so an injected error surfaces before
	// any locks/marks are taken on that attempt; publish sites sit
	// before phase A (bunPublishStart), the last point where the batch
	// is still invisible; abort sites sit at abort entry.
	fpLTPrepare = "core/lt/prepare"
	fpLTPublish = "core/lt/publish"
	fpLTAbort   = "core/lt/abort"
	// fpLTAbortSkipRevive is the mutation site: arming it with ActError
	// makes the LT abort skip reviving the live flags it cleared — a
	// deliberately broken undo the chaos suite must catch.
	fpLTAbortSkipRevive = "core/lt/abort-skip-revive"

	fpCOPPrepare = "core/cop/prepare"
	fpCOPPublish = "core/cop/publish"
	fpCOPAbort   = "core/cop/abort"

	fpTMPrepare = "core/tm/prepare"
	fpTMPublish = "core/tm/publish"
	fpTMAbort   = "core/tm/abort"

	fpRWPrepare = "core/rw/prepare"
	fpRWPublish = "core/rw/publish"
	fpRWAbort   = "core/rw/abort"

	// Bundle protocol: the pend→fill window. fpBundlePend fires before
	// phase A prepends the PENDING records; fpBundleFill fires before
	// the fill pass stamps them (Yield/error only — a Pause here would
	// deadlock readers spinning on PENDING, see bunFillAll); and
	// fpBundleDeathFold fires per write entry as its death words fold.
	fpBundlePend      = "core/bundle/pend"
	fpBundleFill      = "core/bundle/fill"
	fpBundleDeathFold = "core/bundle/death-fold"

	// Hash-index maintenance at publish.
	fpIndexPublish = "core/index/publish"
)
