package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Locking-Transaction (LT) protocol,
// generalized from one key per list (Figures 6-13) to arbitrary batches
// of per-node groups, as the three-phase committer:
//
//  1. prepare — naked predecessor searches and construction of the
//     immutable replacement pieces per (list, node) group with no
//     synchronization at all (planNaked), then one short STM transaction
//     that re-validates everything the setup relied on and "locks" the
//     affected state by marking the pointer slots and clearing the old
//     nodes' live flags — the only tentative data a Locking Transaction
//     ever writes are these locks. Validation runs for every group
//     before any group marks, so all checks read the committed
//     pre-state. With PrepareOpts.LockReads, read-only groups mark
//     their node's level-0 slot too: every path that can kill a node
//     must first mark that slot, so the mark pins the read until
//     publish. Naked readers whose level-0 walk crosses a marked slot
//     retry until the coordinator publishes — the same stall any held
//     mark causes — so the window is kept free of user code (prepare
//     all, then publish all, nothing in between).
//  2. publish — a release postfix that installs the replacement pieces
//     with direct (non-transactional) stores under the protection of the
//     marks, then sets the new pieces live. Groups release right-to-left
//     within each list so that a group whose predecessor is itself being
//     replaced writes into the dying node's frozen slots first, and the
//     dying node's own replacement then copies those already-updated
//     pointers. A predecessor slot shared by several groups keeps its
//     mark until the leftmost (last) group's store, which simultaneously
//     publishes the final pointer and releases the lock.
//  3. abort — revive the replaced nodes' live flags and release every
//     mark with direct stores (the marks preserved the pointers, so
//     clearing the tags restores the pre-prepare structure exactly),
//     then hand the never-published pieces back to the recycler.
//
// A conflict anywhere in prepare restarts it from setup, because the
// replacement pieces were built from state that is no longer current.

// ltCommitter drives the generalized batch under Locking Transactions.
type ltCommitter[V any] struct{ g *Group[V] }

// boundedSpinBudget caps the naked wait loops of one bounded prepare
// attempt (search restarts behind held marks, the merge-partner mark
// spin), so MaxAttempts bounds wall time and a two-phase coordinator
// can abort its prefix instead of waiting out another prepare window.
const boundedSpinBudget = 256

func (c ltCommitter[V]) prepare(ops []Op[V], b *txState[V], opt PrepareOpts) error {
	g := c.g
	b.spinBudget = 0
	if opt.bounded() {
		b.spinBudget = boundedSpinBudget
	}
	for attempt := 0; ; attempt++ {
		// Loop top holds nothing: every exit here (cancel, budget, armed
		// failpoint) leaves the structure untouched by this attempt.
		if err := opt.cancelErr(); err != nil {
			g.stm.NoteTimeoutAbort()
			return err
		}
		if opt.MaxAttempts > 0 && attempt >= opt.MaxAttempts {
			g.stm.NotePrepareConflict()
			return ErrPrepareConflict
		}
		if err := fpEval(fpLTPrepare); err != nil {
			return err
		}
		if !g.planNaked(ops, b) {
			g.releasePlan(b) // recycle the pieces the dead plan already built
			b.fSeedOK = false
			stmBackoff(attempt)
			continue
		}
		err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
			// clear before truncating: a retry that marks fewer nodes
			// than the aborted attempt would strand stale TaggedPtr
			// pointers beyond len, past the reach of putBatch's
			// len-bounded cleanup, pinning nodes for the pooled
			// txState's lifetime.
			clear(b.marked)
			b.marked = b.marked[:0]
			clear(b.markedMap)
			for t := 0; t < b.nEnt; t++ {
				if err := g.validateEntryTx(tx, b, t); err != nil {
					return err
				}
			}
			for t := 0; t < b.nEnt; t++ {
				if err := g.lockEntryLT(tx, b, t); err != nil {
					return err
				}
			}
			b.readMarkFrom = len(b.marked)
			if opt.LockReads {
				// Pin every read-only group's node until publish: any
				// competitor that would kill the node must mark its
				// level-0 slot first (lockEntryLT marks every slot of a
				// replaced node and of a merge partner), so holding this
				// one mark blocks them. Naked searches crossing the slot
				// retry until publish, exactly as behind a write mark;
				// transactional readers (RangeQuery's collection walk)
				// read through marks and are unaffected. markOnce dedups
				// against slots the write phase already marked, so only
				// pure read marks land past readMarkFrom.
				for t := 0; t < b.nEnt; t++ {
					e := b.entries[t]
					if e.write {
						continue
					}
					if err := b.markOnce(tx, &e.n.next[0]); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err == nil {
			if attempt > 0 {
				g.stm.NoteRetries(uint64(attempt))
			}
			return nil
		}
		// Only conflicts can surface here; restart from setup, recycling
		// the stale plan's unpublished pieces.
		g.releasePlan(b)
		b.fSeedOK = false
		stmBackoff(attempt)
	}
}

func (c ltCommitter[V]) publish(ops []Op[V], b *txState[V]) {
	g := c.g
	// Last point where the batch is still invisible: an ActPause here
	// freezes a fully prepared, unpublished commit (the stalled-publish
	// chaos scenario); readers are unaffected until phase A pends.
	fpHit(fpLTPublish)
	var ts uint64
	if g.bundles() {
		// Bundle phase A: pending pred-link and death records, prepended
		// while every affected link's mark is still held. The timestamp is
		// drawn before the first swing releases a mark, so on any one link
		// prepend order and timestamp order agree and bundles stay
		// newest-first; readers that meet a pending record spin out the
		// remainder of this postfix.
		g.bunPublishStart(b)
		if len(b.bunFills) > 0 {
			ts = g.stm.Clock().Tick()
		}
	}
	c.publishAt(ops, b, ts)
}

// publishAt is the post-timestamp half of publish: pointer swings, the
// bundle fill pass at ts, and the index update. In the coordinated
// two-phase form the caller ran bunPublishStart on every participating
// batch and drew ts from the shared clock afterwards — still before any
// batch's first swing released a mark, so the per-link ordering
// argument above holds across the whole coordinated publish.
func (c ltCommitter[V]) publishAt(ops []Op[V], b *txState[V], ts uint64) {
	g := c.g
	bundles := g.bundles()
	// Release and update: right-to-left within each list (entries are
	// ordered by list then key, so a global reverse walk does both).
	for t := b.nEnt - 1; t >= 0; t-- {
		e := b.entries[t]
		if !e.write {
			continue
		}
		g.releaseEntry(b, t)
		if e.runEnd != nil {
			g.retireRun(b, e.n, e.runEnd)
			continue
		}
		g.retireNode(b, e.n)
		if e.merge {
			g.retireNode(b, e.old1)
		}
	}
	if bundles {
		// Bundle fill pass: stamp the pending records and the pieces' born
		// fields with the batch timestamp, era-mark displaced heads and
		// truncate expired tails (phase D).
		g.bunFillAll(b, ts)
	}
	// Marks taken purely for read stability are on live, untouched
	// nodes; no postfix store clears them, so release them explicitly
	// (the pointer halves were never changed).
	for _, s := range b.marked[b.readMarkFrom:] {
		s.DirectStoreTag(stm.TagNone)
	}
	g.indexPublish(ops, b)
}

func (c ltCommitter[V]) abort(ops []Op[V], b *txState[V]) {
	g := c.g
	fpHit(fpLTAbort)
	// Revive the nodes the locking transaction killed, then clear every
	// mark. While any mark is held no competitor can lock the footprint,
	// and transactional readers that observed a dead node or a marked
	// slot just retry — so the intermediate states are invisible and the
	// instant the last mark clears, the structure is exactly its
	// pre-prepare self. The direct stores are safe for the same reason
	// the release postfix's are: every cell written is covered by a mark
	// this prepare still holds.
	//
	// The fpEval gate below is the chaos suite's mutation switch: arming
	// core/lt/abort-skip-revive with an error makes this abort skip the
	// revive loop — a deliberately broken undo the suite must detect.
	if fpEval(fpLTAbortSkipRevive) == nil {
		c.abortRevive(b)
	}
	for _, s := range b.marked {
		s.DirectStoreTag(stm.TagNone)
	}
	g.releasePlan(b)
}

// abortRevive restores the live flags the locking transaction cleared.
func (c ltCommitter[V]) abortRevive(b *txState[V]) {
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if !e.write {
			continue
		}
		if e.runEnd != nil {
			// The run's interior links are all marked by this prepare, so
			// the frozen pointer halves are exact.
			for x := e.n; ; x = x.next[0].PeekPtr() {
				x.live.DirectStore(1)
				if x == e.runEnd {
					break
				}
			}
			continue
		}
		e.n.live.DirectStore(1)
		if e.merge {
			e.old1.live.DirectStore(1)
		}
	}
}

// lockEntryLT acquires the locks for one write entry inside the Locking
// Transaction: mark the replaced nodes' slots and the predecessors' slots
// up to the tallest piece, then retire the old nodes transactionally. All
// validation has already run (validateEntryTx), so this phase only
// writes.
func (g *Group[V]) lockEntryLT(tx *stm.Tx, b *txState[V], t int) error {
	e := b.entries[t]
	if !e.write {
		return nil
	}
	n := e.n
	if e.runEnd != nil {
		// Splice-run entry: mark every run node's slots — freezing the
		// interior chain exactly as validated and blocking any competitor
		// whose footprint touches the run — and kill every run node; the
		// only slots the postfix will swing are the predecessors', marked
		// below. The walk reads the level-0 links through the transaction
		// (our own marks read back from the write set).
		for x := n; ; {
			for i := 0; i < x.level; i++ {
				if err := b.markOnce(tx, &x.next[i]); err != nil {
					return err
				}
			}
			if err := x.live.Store(tx, 0); err != nil {
				return err
			}
			if x == e.runEnd {
				break
			}
			nx, _, err := x.next[0].Load(tx)
			if err != nil {
				return err
			}
			x = nx
		}
		for i := 0; i < e.maxH; i++ {
			if err := b.markOnce(tx, &e.pa[i].next[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n.level; i++ {
		if err := b.markOnce(tx, &n.next[i]); err != nil {
			return err
		}
	}
	if e.merge {
		for i := 0; i < e.old1.level; i++ {
			if err := b.markOnce(tx, &e.old1.next[i]); err != nil {
				return err
			}
		}
	}
	for i := 0; i < e.maxH; i++ {
		if err := b.markOnce(tx, &e.pa[i].next[i]); err != nil {
			return err
		}
	}
	if err := n.live.Store(tx, 0); err != nil {
		return err
	}
	if e.merge {
		return e.old1.live.Store(tx, 0)
	}
	return nil
}

// markedLinearMax bounds the linear dedup scan of markOnce; wider
// batches spill into a map so lock acquisition stays linear in the
// number of slots. A spilled map is retained (cleared) by putBatch up
// to markedMapKeepCap entries so steady wide batches reuse it.
const (
	markedLinearMax  = 24
	markedMapKeepCap = 1 << 12
)

// markOnce transactionally sets the mark on a slot, aborting if a
// committed competitor already holds it. Slots shared between groups of
// one batch (a predecessor feeding several replaced nodes) are marked
// only once.
func (b *txState[V]) markOnce(tx *stm.Tx, slot *stm.TaggedPtr[node[V]]) error {
	if b.markedMap != nil {
		if _, dup := b.markedMap[slot]; dup {
			return nil
		}
	} else {
		for _, s := range b.marked {
			if s == slot {
				return nil
			}
		}
	}
	cur, tag, err := slot.Load(tx)
	if err != nil {
		return err
	}
	if tag == stm.TagMarked {
		return stm.ErrConflict
	}
	if err := slot.Store(tx, cur, stm.TagMarked); err != nil {
		return err
	}
	b.marked = append(b.marked, slot)
	if b.markedMap != nil {
		b.markedMap[slot] = struct{}{}
	} else if len(b.marked) > markedLinearMax {
		b.markedMap = make(map[*stm.TaggedPtr[node[V]]]struct{}, 2*len(b.marked))
		for _, s := range b.marked {
			b.markedMap[s] = struct{}{}
		}
	}
	return nil
}

// releaseEntry is the non-transactional postfix for one write entry: wire
// the replacement pieces' forward pointers from the frozen (marked) old
// slots, swing the predecessors to the pieces, and set the pieces live.
// It is shared with the RWLock variant, whose write lock makes the same
// plain reads and direct stores trivially safe.
//
// Entries to the right in the same list have already released, so peeks
// of the old nodes' slots observe their already-installed pieces; above
// the old node's own level the successor is resolved through the batch
// plan (succAt).
func (g *Group[V]) releaseEntry(b *txState[V], t int) {
	e := b.entries[t]
	n := e.n

	if e.runEnd != nil {
		// Splice-run entry: no pieces to wire — one predecessor swing per
		// level routes around the whole run (the target is the plan-time
		// successor unless a group further right replaced it). The run's
		// own slots are never rewritten: they stay frozen in the dead
		// nodes, where bundle chases and as-of snapshot walks still
		// traverse them until reclamation.
		for i := 0; i < e.maxH; i++ {
			tag := stm.TagNone
			for u := t - 1; u >= 0; u-- {
				f := b.entries[u]
				if f.l != e.l {
					break
				}
				if f.write && i < f.maxH && f.pa[i] == e.pa[i] {
					tag = stm.TagMarked
					break
				}
			}
			e.pa[i].next[i].DirectStore(b.succTarget(t, i, e.runSucc[i]), tag)
		}
		return
	}

	if e.merge {
		repl, old1 := e.pieces[0], e.old1
		for i := 0; i < repl.level; i++ {
			var s *node[V]
			if i < old1.level {
				s = old1.next[i].PeekPtr()
			} else {
				s = n.next[i].PeekPtr()
			}
			repl.next[i].Init(s, stm.TagNone)
		}
	} else {
		for pi, p := range e.pieces {
			for i := 0; i < p.level; i++ {
				s := nextPiece(e.pieces, pi+1, i)
				if s == nil {
					if i < n.level {
						s = n.next[i].PeekPtr()
					} else {
						s = b.succAt(t, i)
					}
				}
				p.next[i].Init(s, stm.TagNone)
			}
		}
	}

	if g.bundles() {
		// Birth records in the pieces' inline slot 0, installed before the
		// swings make the pieces reachable: each piece's level-0 link is
		// versioned from its first instant, pending until the batch's fill
		// pass stamps it through the piece walk.
		for _, p := range e.pieces {
			bunBirth(p, p.next[0].PeekPtr())
		}
	}

	// Swing the predecessors. The store of (piece, TagNone) publishes the
	// pointer and releases the lock in one word — unless a group further
	// left in this batch still has to write the same slot, in which case
	// the mark must survive until its (final) store.
	for i := 0; i < e.maxH; i++ {
		tag := stm.TagNone
		for u := t - 1; u >= 0; u-- {
			f := b.entries[u]
			if f.l != e.l {
				break
			}
			if f.write && i < f.maxH && f.pa[i] == e.pa[i] {
				tag = stm.TagMarked
				break
			}
		}
		e.pa[i].next[i].DirectStore(nextPiece(e.pieces, 0, i), tag)
	}
	for _, p := range e.pieces {
		p.live.DirectStore(1)
	}
}

// stmBackoff mirrors the STM's internal backoff for protocol-level
// retries that restart outside a transaction.
func stmBackoff(attempt int) {
	stm.Backoff(attempt)
}
