package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Locking-Transaction (LT) protocol,
// generalized from one key per list (Figures 6-13) to arbitrary batches
// of per-node groups. Each commit has three phases:
//
//  1. setup — naked predecessor searches and construction of the
//     immutable replacement pieces per (list, node) group, no
//     synchronization at all (planNaked);
//  2. one short STM transaction that re-validates everything the setup
//     relied on and "locks" the affected state by marking the pointer
//     slots and clearing the old nodes' live flags — the only tentative
//     data a Locking Transaction ever writes are these locks. Validation
//     runs for every group before any group marks, so all checks read the
//     committed pre-state;
//  3. a release postfix that installs the replacement pieces with direct
//     (non-transactional) stores under the protection of the marks, then
//     sets the new pieces live. Groups release right-to-left within each
//     list so that a group whose predecessor is itself being replaced
//     writes into the dying node's frozen slots first, and the dying
//     node's own replacement then copies those already-updated pointers.
//     A predecessor slot shared by several groups keeps its mark until
//     the leftmost (last) group's store, which simultaneously publishes
//     the final pointer and releases the lock.
//
// A conflict anywhere restarts the whole operation from setup, because
// the replacement pieces were built from state that is no longer current.

// commitLT runs the generalized batch under Locking Transactions.
func (g *Group[V]) commitLT(ops []Op[V], b *txState[V]) {
	for attempt := 0; ; attempt++ {
		if !g.planNaked(ops, b) {
			g.releasePlan(b) // recycle the pieces the dead plan already built
			stmBackoff(attempt)
			continue
		}
		err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
			b.marked = b.marked[:0]
			b.markedMap = nil
			for t := 0; t < b.nEnt; t++ {
				if err := g.validateEntryTx(tx, b, t); err != nil {
					return err
				}
			}
			for t := 0; t < b.nEnt; t++ {
				if err := g.lockEntryLT(tx, b, t); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			break
		}
		// Only conflicts can surface here; restart from setup, recycling
		// the stale plan's unpublished pieces.
		g.releasePlan(b)
		stmBackoff(attempt)
	}

	// Release and update: right-to-left within each list (entries are
	// ordered by list then key, so a global reverse walk does both).
	for t := b.nEnt - 1; t >= 0; t-- {
		e := b.entries[t]
		if !e.write {
			continue
		}
		g.releaseEntry(b, t)
		g.retireNode(b, e.n)
		if e.merge {
			g.retireNode(b, e.old1)
		}
	}
}

// lockEntryLT acquires the locks for one write entry inside the Locking
// Transaction: mark the replaced nodes' slots and the predecessors' slots
// up to the tallest piece, then retire the old nodes transactionally. All
// validation has already run (validateEntryTx), so this phase only
// writes.
func (g *Group[V]) lockEntryLT(tx *stm.Tx, b *txState[V], t int) error {
	e := b.entries[t]
	if !e.write {
		return nil
	}
	n := e.n
	for i := 0; i < n.level; i++ {
		if err := b.markOnce(tx, &n.next[i]); err != nil {
			return err
		}
	}
	if e.merge {
		for i := 0; i < e.old1.level; i++ {
			if err := b.markOnce(tx, &e.old1.next[i]); err != nil {
				return err
			}
		}
	}
	for i := 0; i < e.maxH; i++ {
		if err := b.markOnce(tx, &e.pa[i].next[i]); err != nil {
			return err
		}
	}
	if err := n.live.Store(tx, 0); err != nil {
		return err
	}
	if e.merge {
		return e.old1.live.Store(tx, 0)
	}
	return nil
}

// markedLinearMax bounds the linear dedup scan of markOnce; wider
// batches spill into a map so lock acquisition stays linear in the
// number of slots.
const markedLinearMax = 24

// markOnce transactionally sets the mark on a slot, aborting if a
// committed competitor already holds it. Slots shared between groups of
// one batch (a predecessor feeding several replaced nodes) are marked
// only once.
func (b *txState[V]) markOnce(tx *stm.Tx, slot *stm.TaggedPtr[node[V]]) error {
	if b.markedMap != nil {
		if _, dup := b.markedMap[slot]; dup {
			return nil
		}
	} else {
		for _, s := range b.marked {
			if s == slot {
				return nil
			}
		}
	}
	cur, tag, err := slot.Load(tx)
	if err != nil {
		return err
	}
	if tag == stm.TagMarked {
		return stm.ErrConflict
	}
	if err := slot.Store(tx, cur, stm.TagMarked); err != nil {
		return err
	}
	b.marked = append(b.marked, slot)
	if b.markedMap != nil {
		b.markedMap[slot] = struct{}{}
	} else if len(b.marked) > markedLinearMax {
		b.markedMap = make(map[*stm.TaggedPtr[node[V]]]struct{}, 2*len(b.marked))
		for _, s := range b.marked {
			b.markedMap[s] = struct{}{}
		}
	}
	return nil
}

// releaseEntry is the non-transactional postfix for one write entry: wire
// the replacement pieces' forward pointers from the frozen (marked) old
// slots, swing the predecessors to the pieces, and set the pieces live.
// It is shared with the RWLock variant, whose write lock makes the same
// plain reads and direct stores trivially safe.
//
// Entries to the right in the same list have already released, so peeks
// of the old nodes' slots observe their already-installed pieces; above
// the old node's own level the successor is resolved through the batch
// plan (succAt).
func (g *Group[V]) releaseEntry(b *txState[V], t int) {
	e := b.entries[t]
	n := e.n

	if e.merge {
		repl, old1 := e.pieces[0], e.old1
		for i := 0; i < repl.level; i++ {
			var s *node[V]
			if i < old1.level {
				s = old1.next[i].PeekPtr()
			} else {
				s = n.next[i].PeekPtr()
			}
			repl.next[i].Init(s, stm.TagNone)
		}
	} else {
		for pi, p := range e.pieces {
			for i := 0; i < p.level; i++ {
				s := nextPiece(e.pieces, pi+1, i)
				if s == nil {
					if i < n.level {
						s = n.next[i].PeekPtr()
					} else {
						s = b.succAt(t, i)
					}
				}
				p.next[i].Init(s, stm.TagNone)
			}
		}
	}

	// Swing the predecessors. The store of (piece, TagNone) publishes the
	// pointer and releases the lock in one word — unless a group further
	// left in this batch still has to write the same slot, in which case
	// the mark must survive until its (final) store.
	for i := 0; i < e.maxH; i++ {
		tag := stm.TagNone
		for u := t - 1; u >= 0; u-- {
			f := b.entries[u]
			if f.l != e.l {
				break
			}
			if f.write && i < f.maxH && f.pa[i] == e.pa[i] {
				tag = stm.TagMarked
				break
			}
		}
		e.pa[i].next[i].DirectStore(nextPiece(e.pieces, 0, i), tag)
	}
	for _, p := range e.pieces {
		p.live.DirectStore(1)
	}
}

// stmBackoff mirrors the STM's internal backoff for protocol-level
// retries that restart outside a transaction.
func stmBackoff(attempt int) {
	stm.Backoff(attempt)
}
