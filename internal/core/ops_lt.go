package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Locking-Transaction (LT) protocol: the
// update of Figures 6/8/9/10 and the remove of Figures 7/11/12/13. Each
// operation has three phases:
//
//  1. setup — naked predecessor searches and construction of the immutable
//     replacement nodes, no synchronization at all;
//  2. one short STM transaction that re-validates everything the setup
//     relied on and "locks" the affected state by marking the pointer
//     slots and clearing the old nodes' live flags — the only tentative
//     data a Locking Transaction ever writes are these locks;
//  3. a release postfix that installs the replacement nodes with direct
//     (non-transactional) stores under the protection of the marks, then
//     sets the new nodes live. The direct stores are safe because every
//     competing transaction must read the touched slots unmarked and
//     revalidate them at commit, and every marking bumps their versions.
//
// A conflict anywhere restarts the whole operation from setup, because the
// replacement nodes were built from state that is no longer current.

// updateLT is the composed update across the lists of one batch.
func (g *Group[V]) updateLT(ls []*List[V], ks []uint64, vs []V) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	for attempt := 0; ; attempt++ {
		// --- Setup (Figure 8) ---
		for j := 0; j < s; j++ {
			k := toInternal(ks[j])
			searchNaked(ls[j], k, b.pa[j], b.na[j])
			n := b.na[j][0]
			b.n[j] = n
			if n.count() == g.cfg.NodeSize {
				b.split[j] = true
				b.new1[j] = newNode[V](n.level)
				b.new0[j] = newNode[V](g.pickLevel())
				b.maxH[j] = max(b.new0[j].level, b.new1[j].level)
			} else {
				b.split[j] = false
				b.new0[j] = newNode[V](n.level)
				b.new1[j] = nil
				b.maxH[j] = n.level
			}
			createNewNodes(n, k, vs[j], b.split[j], b.new0[j], b.new1[j])
		}

		// --- Locking Transaction (Figure 9) ---
		err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
			for j := 0; j < s; j++ {
				if err := g.updateLockLT(tx, b, j); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			break
		}
		// Only conflicts can surface here; restart from setup.
		stmBackoff(attempt)
	}

	// --- Release and update (Figure 10) ---
	for j := 0; j < s; j++ {
		g.releaseUpdateLT(b, j)
		g.retire(b.n[j])
	}
}

// updateLockLT validates and locks one list's slice of the batch inside
// the Locking Transaction (Figure 9).
func (g *Group[V]) updateLockLT(tx *stm.Tx, b *batchState[V], j int) error {
	n := b.n[j]
	pa, na := b.pa[j], b.na[j]

	// The node must still be current.
	if lv, err := n.live.Load(tx); err != nil {
		return err
	} else if lv == 0 {
		return stm.ErrConflict
	}
	// Its predecessors must still point at it and its successors must be
	// live (lines 96-99).
	for i := 0; i < n.level; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != n {
			return stm.ErrConflict
		}
		succ, _, err := n.next[i].Load(tx)
		if err != nil {
			return err
		}
		if succ != nil {
			if lv, err := succ.live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
		}
	}
	// Above the node's own level (a split may introduce a taller node),
	// the search results must still hold (lines 100-104).
	for i := 0; i < b.maxH[j]; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != na[i] {
			return stm.ErrConflict
		}
		if lv, err := pa[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
		if lv, err := na[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
	}
	// Acquire the locks: mark the old node's slots (lines 105-108) and the
	// predecessors' slots up to the maximum new height (lines 109-112).
	for i := 0; i < n.level; i++ {
		if err := markSlot(tx, &n.next[i]); err != nil {
			return err
		}
	}
	for i := 0; i < b.maxH[j]; i++ {
		if err := markSlot(tx, &pa[i].next[i]); err != nil {
			return err
		}
	}
	// Retire the node transactionally (line 113).
	return n.live.Store(tx, 0)
}

// markSlot transactionally sets the mark on a slot, aborting if it is
// already marked by a committed competitor.
func markSlot[V any](tx *stm.Tx, slot *stm.TaggedPtr[node[V]]) error {
	cur, tag, err := slot.Load(tx)
	if err != nil {
		return err
	}
	if tag == stm.TagMarked {
		return stm.ErrConflict
	}
	return slot.Store(tx, cur, stm.TagMarked)
}

// releaseUpdateLT is the postfix of Figure 10 for one list: wire the new
// nodes' forward pointers from the frozen (marked) old slots, swing the
// predecessors to the new nodes (which also clears the predecessor marks),
// and finally set the new nodes live.
func (g *Group[V]) releaseUpdateLT(b *batchState[V], j int) {
	n, new0, new1 := b.n[j], b.new0[j], b.new1[j]
	pa, na := b.pa[j], b.na[j]

	if b.split[j] {
		if new1.level > new0.level {
			for i := 0; i < new0.level; i++ {
				new0.next[i].Init(new1, stm.TagNone)
				new1.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
			}
			for i := new0.level; i < new1.level; i++ {
				new1.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
			}
		} else {
			for i := 0; i < new1.level; i++ {
				new0.next[i].Init(new1, stm.TagNone)
				new1.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
			}
			for i := new1.level; i < new0.level; i++ {
				if i < n.level {
					new0.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
				} else {
					// Above the old node's level the successor comes from
					// the search (the marked pa slot keeps it stable).
					new0.next[i].Init(na[i], stm.TagNone)
				}
			}
		}
	} else {
		for i := 0; i < new0.level; i++ {
			new0.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
		}
	}

	// Swing the predecessors; the direct store of (new node, TagNone)
	// simultaneously publishes the pointer and releases the lock, like the
	// paper's single-word unmarking write.
	for i := 0; i < new0.level; i++ {
		pa[i].next[i].DirectStore(new0, stm.TagNone)
	}
	if b.split[j] && new1.level > new0.level {
		for i := new0.level; i < new1.level; i++ {
			pa[i].next[i].DirectStore(new1, stm.TagNone)
		}
	}
	new0.live.DirectStore(1)
	if b.split[j] {
		new1.live.DirectStore(1)
	}
}

// removeLT is the composed remove across the lists of one batch. changed
// reports, per list, whether the key was present.
func (g *Group[V]) removeLT(ls []*List[V], ks []uint64, changed []bool) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	for attempt := 0; ; attempt++ {
		// --- Setup (Figure 11) ---
		for j := 0; j < s; j++ {
			g.removeSetupLT(ls[j], toInternal(ks[j]), b, j)
		}

		// --- Locking Transaction (Figure 12) ---
		err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
			for j := 0; j < s; j++ {
				if !b.changed[j] {
					continue
				}
				if err := g.removeLockLT(tx, b, j); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			break
		}
		stmBackoff(attempt)
	}

	// --- Release and update (Figure 13) ---
	for j := 0; j < s; j++ {
		changed[j] = b.changed[j]
		if !b.changed[j] {
			continue
		}
		g.releaseRemoveLT(b, j)
		g.retire(b.n[j])
		if b.merge[j] {
			g.retire(b.old1[j])
		}
	}
}

// removeSetupLT performs the naked search, merge decision and replacement
// construction for one list (Figure 11).
func (g *Group[V]) removeSetupLT(l *List[V], k uint64, b *batchState[V], j int) {
	for attempt := 0; ; attempt++ {
		b.merge[j] = false
		searchNaked(l, k, b.pa[j], b.na[j])
		old0 := b.na[j][0]
		b.n[j] = old0 // reused as "node being replaced" for retire symmetry
		if old0.find(k) < 0 {
			b.changed[j] = false
			b.old1[j] = nil
			return
		}
		// Read the successor through any in-flight mark (lines 159-162);
		// the postfix holding the mark is bounded, so spin briefly.
		var old1 *node[V]
		stale := false
		for spin := 0; ; spin++ {
			succ, tag := old0.next[0].Peek()
			if tag != stm.TagMarked {
				old1 = succ
				break
			}
			if old0.live.Peek() == 0 {
				stale = true
				break
			}
			stmBackoff(spin)
		}
		if stale {
			stmBackoff(attempt)
			continue
		}
		b.old1[j] = old1
		total := old0.count()
		if old1 != nil {
			total += old1.count()
			if total <= g.cfg.NodeSize {
				b.merge[j] = true
			}
		}
		// Replacement level and bounds (line 168).
		lvl := old0.level
		if b.merge[j] && old1.level > lvl {
			lvl = old1.level
		}
		repl := newNode[V](lvl)
		// Late liveness checks (lines 169-170).
		if old0.live.Peek() == 0 {
			stmBackoff(attempt)
			continue
		}
		if b.merge[j] && old1.live.Peek() == 0 {
			stmBackoff(attempt)
			continue
		}
		b.changed[j] = removeAndMerge(old0, old1, k, b.merge[j], repl)
		b.new0[j] = repl
		return
	}
}

// removeLockLT validates and locks one list's slice of the batch inside
// the Locking Transaction (Figure 12).
func (g *Group[V]) removeLockLT(tx *stm.Tx, b *batchState[V], j int) error {
	old0, old1, repl := b.n[j], b.old1[j], b.new0[j]
	pa := b.pa[j]

	if lv, err := old0.live.Load(tx); err != nil {
		return err
	} else if lv == 0 {
		return stm.ErrConflict
	}
	if b.merge[j] {
		if lv, err := old1.live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
	}
	// Predecessors still point at old0, predecessors are live, successors
	// are live (lines 177-181).
	for i := 0; i < old0.level; i++ {
		p, _, err := pa[i].next[i].Load(tx)
		if err != nil {
			return err
		}
		if p != old0 {
			return stm.ErrConflict
		}
		if lv, err := pa[i].live.Load(tx); err != nil {
			return err
		} else if lv == 0 {
			return stm.ErrConflict
		}
		succ, _, err := old0.next[i].Load(tx)
		if err != nil {
			return err
		}
		if succ != nil && succ != old1 {
			if lv, err := succ.live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
		}
	}
	if b.merge[j] {
		// old1 must still immediately follow old0 (line 183).
		succ, _, err := old0.next[0].Load(tx)
		if err != nil {
			return err
		}
		if succ != old1 {
			return stm.ErrConflict
		}
		// old1's successors must be live at every one of its levels, and
		// where old1 is taller than old0 its predecessors are shared with
		// the replacement (lines 184-197).
		for i := 0; i < old1.level; i++ {
			s1, _, err := old1.next[i].Load(tx)
			if err != nil {
				return err
			}
			if s1 != nil {
				if lv, err := s1.live.Load(tx); err != nil {
					return err
				} else if lv == 0 {
					return stm.ErrConflict
				}
			}
		}
		for i := old0.level; i < old1.level; i++ {
			p, _, err := pa[i].next[i].Load(tx)
			if err != nil {
				return err
			}
			if p != old1 {
				return stm.ErrConflict
			}
			if lv, err := pa[i].live.Load(tx); err != nil {
				return err
			} else if lv == 0 {
				return stm.ErrConflict
			}
		}
		// Mark old1's slots (lines 198-201).
		for i := 0; i < old1.level; i++ {
			if err := markSlot(tx, &old1.next[i]); err != nil {
				return err
			}
		}
	}
	// Mark old0's slots and the predecessors' slots up to the replacement
	// level (lines 203-210).
	for i := 0; i < old0.level; i++ {
		if err := markSlot(tx, &old0.next[i]); err != nil {
			return err
		}
	}
	for i := 0; i < repl.level; i++ {
		if err := markSlot(tx, &pa[i].next[i]); err != nil {
			return err
		}
	}
	// Retire transactionally (lines 211-212).
	if err := old0.live.Store(tx, 0); err != nil {
		return err
	}
	if b.merge[j] {
		return old1.live.Store(tx, 0)
	}
	return nil
}

// releaseRemoveLT is the postfix of Figure 13 for one list.
func (g *Group[V]) releaseRemoveLT(b *batchState[V], j int) {
	old0, old1, repl := b.n[j], b.old1[j], b.new0[j]
	pa := b.pa[j]

	if b.merge[j] {
		for i := 0; i < old1.level && i < repl.level; i++ {
			repl.next[i].Init(old1.next[i].PeekPtr(), stm.TagNone)
		}
		for i := old1.level; i < old0.level; i++ {
			repl.next[i].Init(old0.next[i].PeekPtr(), stm.TagNone)
		}
	} else {
		for i := 0; i < old0.level; i++ {
			repl.next[i].Init(old0.next[i].PeekPtr(), stm.TagNone)
		}
	}
	for i := 0; i < repl.level; i++ {
		pa[i].next[i].DirectStore(repl, stm.TagNone)
	}
	repl.live.DirectStore(1)
}

// stmBackoff mirrors the STM's internal backoff for protocol-level
// retries that restart outside a transaction.
func stmBackoff(attempt int) {
	stm.Backoff(attempt)
}
