package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// loadSixteen fills a fresh list with keys 0..15 (value = key) — several
// nodes at the test groups' NodeSize of 4.
func loadSixteen(t *testing.T, g *Group[uint64]) *List[uint64] {
	t.Helper()
	l := g.NewList()
	for i := uint64(0); i < 16; i++ {
		if err := l.Set(i, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	return l
}

// TestPrepareOpsPublish drives a structural batch through the explicit
// prepare → publish pipeline on every variant and checks it lands
// exactly like CommitOps (which is the same pipeline, fused).
func TestPrepareOpsPublish(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := loadSixteen(t, g)
		ops := []Op[uint64]{
			{List: l, Kind: OpSet, Key: 100, Val: 100}, // insert: structural
			{List: l, Kind: OpDelete, Key: 3},
			{List: l, Kind: OpGet, Key: 5},
			{List: l, Kind: OpGetRange, Key: 0, KeyHi: 15},
		}
		p, err := g.PrepareOps(ops, PrepareOpts{})
		if err != nil {
			t.Fatalf("PrepareOps: %v", err)
		}
		p.Publish()
		if !ops[1].Found {
			t.Fatal("Delete(3).Found = false, want true")
		}
		if !ops[2].Found || ops[2].Out != 5 {
			t.Fatalf("Get(5) = (%d, %v), want (5, true)", ops[2].Out, ops[2].Found)
		}
		if ops[3].N != 15 { // 16 keys - deleted 3 (range staged after the delete)
			t.Fatalf("GetRange N = %d, want 15", ops[3].N)
		}
		if v, ok := l.Lookup(100); !ok || v != 100 {
			t.Fatalf("Lookup(100) = (%d, %v) after publish", v, ok)
		}
		if _, ok := l.Lookup(3); ok {
			t.Fatal("Lookup(3) still present after published delete")
		}
		mustCheck(t, l)
	})
}

// TestPreparedAbortRestoresState proves abort is a perfect undo on every
// variant: a prepared structural batch (splits, merges, a range delete)
// aborts back to exactly the pre-prepare contents and invariants, and
// the same batch still commits cleanly afterwards.
func TestPreparedAbortRestoresState(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := loadSixteen(t, g)
		before := l.CollectRange(0, MaxKey)
		ops := []Op[uint64]{
			{List: l, Kind: OpDeleteRange, Key: 4, KeyHi: 11}, // empties nodes
			{List: l, Kind: OpSet, Key: 200, Val: 200},        // insert far right
			{List: l, Kind: OpSet, Key: 0, Val: 999},          // overwrite
			{List: l, Kind: OpDelete, Key: 15},
		}
		p, err := g.PrepareOps(ops, PrepareOpts{})
		if err != nil {
			t.Fatalf("PrepareOps: %v", err)
		}
		p.Abort()
		mustCheck(t, l)
		after := l.CollectRange(0, MaxKey)
		if len(after) != len(before) {
			t.Fatalf("abort changed pair count: %d, want %d", len(after), len(before))
		}
		for i := range before {
			if after[i] != before[i] {
				t.Fatalf("abort changed pair %d: %+v, want %+v", i, after[i], before[i])
			}
		}
		// The aborted batch's footprint is fully unlocked: the identical
		// batch must prepare and publish cleanly.
		p, err = g.PrepareOps(ops, PrepareOpts{})
		if err != nil {
			t.Fatalf("re-PrepareOps after abort: %v", err)
		}
		p.Publish()
		mustCheck(t, l)
		if _, ok := l.Lookup(7); ok {
			t.Fatal("key 7 survived the published DeleteRange")
		}
		if v, ok := l.Lookup(0); !ok || v != 999 {
			t.Fatalf("Lookup(0) = (%d, %v), want (999, true)", v, ok)
		}
	})
}

// TestPreparedAbortRecyclesPieces is the white-box proof that
// prepared-but-unpublished replacement pieces return to the recycler on
// abort (the releasePlan path of the abort phase): every piece the plan
// built must be drainable from the shell pool afterwards.
func TestPreparedAbortRecyclesPieces(t *testing.T) {
	for _, v := range []Variant{VariantLT, VariantCOP, VariantTM, VariantRW} {
		t.Run(v.String(), func(t *testing.T) {
			g := newTestGroup(t, v)
			l := loadSixteen(t, g)
			ops := []Op[uint64]{
				{List: l, Kind: OpDeleteRange, Key: 4, KeyHi: 11},
				{List: l, Kind: OpSet, Key: 0, Val: 42}, // overwrite: value-only piece
				{List: l, Kind: OpSet, Key: 20, Val: 20},
			}
			p, err := g.PrepareOps(ops, PrepareOpts{})
			if err != nil {
				t.Fatalf("PrepareOps: %v", err)
			}
			donated := map[*node[uint64]]bool{}
			for _, e := range p.b.entries[:p.b.nEnt] {
				for _, piece := range e.pieces {
					donated[piece] = true
				}
			}
			if len(donated) == 0 {
				t.Fatal("prepare built no pieces")
			}
			p.Abort()
			// Every piece must now be in the shell pool (released on this
			// P, so Gets from the same goroutine drain them
			// deterministically). Under the race detector sync.Pool
			// deliberately drops a random fraction of Puts, so the exact
			// count only holds in a normal build.
			if !raceEnabled {
				found := 0
				for i := 0; i < 2*len(donated); i++ {
					n, _ := g.shellPool.Get().(*node[uint64])
					if n == nil {
						break
					}
					if donated[n] {
						found++
					}
				}
				if found != len(donated) {
					t.Fatalf("recycler holds %d of %d aborted pieces", found, len(donated))
				}
			}
			mustCheck(t, l)
			for i := uint64(0); i < 16; i++ {
				if v, ok := l.Lookup(i); !ok || v != i {
					t.Fatalf("Lookup(%d) = (%d, %v) after aborted prepare", i, v, ok)
				}
			}
		})
	}
}

// TestPrepareBounded pins ErrPrepareConflict: while one transaction
// holds a prepared footprint, a bounded prepare of an overlapping batch
// must give up instead of spinning, and the footprint must work again
// after the holder publishes. VariantRW is exempt by contract (its
// prepare blocks on the list lock instead of conflicting).
func TestPrepareBounded(t *testing.T) {
	for _, v := range []Variant{VariantLT, VariantCOP, VariantTM} {
		t.Run(v.String(), func(t *testing.T) {
			g := newTestGroup(t, v)
			l := loadSixteen(t, g)
			hold, err := g.PrepareOps([]Op[uint64]{
				{List: l, Kind: OpSet, Key: 5, Val: 50},
				{List: l, Kind: OpSet, Key: 100, Val: 100},
			}, PrepareOpts{})
			if err != nil {
				t.Fatalf("holder PrepareOps: %v", err)
			}
			_, err = g.PrepareOps([]Op[uint64]{
				{List: l, Kind: OpSet, Key: 5, Val: 51},
			}, PrepareOpts{MaxAttempts: 4})
			if !errors.Is(err, ErrPrepareConflict) {
				t.Fatalf("bounded overlapping prepare = %v, want ErrPrepareConflict", err)
			}
			hold.Publish()
			p, err := g.PrepareOps([]Op[uint64]{
				{List: l, Kind: OpSet, Key: 5, Val: 51},
			}, PrepareOpts{MaxAttempts: 64})
			if err != nil {
				t.Fatalf("prepare after publish: %v", err)
			}
			p.Publish()
			if got, _ := l.Lookup(5); got != 51 {
				t.Fatalf("Lookup(5) = %d, want 51", got)
			}
			mustCheck(t, l)
		})
	}
}

// TestPreparedLockReadsPinsFootprint proves the 2PC read-stability
// option: while a read-only batch is prepared with LockReads, a writer
// to the read key cannot commit; it lands only after Publish. Checked
// on the optimistic variants (RW pins reads through the list lock the
// same way, but a blocked RW writer cannot be polled without a second
// goroutine — the facade's all-or-none tests cover it end to end).
func TestPreparedLockReadsPinsFootprint(t *testing.T) {
	for _, v := range []Variant{VariantLT, VariantCOP, VariantTM} {
		t.Run(v.String(), func(t *testing.T) {
			g := newTestGroup(t, v)
			l := loadSixteen(t, g)
			p, err := g.PrepareOps([]Op[uint64]{
				{List: l, Kind: OpGet, Key: 5},
			}, PrepareOpts{LockReads: true})
			if err != nil {
				t.Fatalf("PrepareOps: %v", err)
			}
			// A bounded writer prepare on the pinned key must conflict.
			_, err = g.PrepareOps([]Op[uint64]{
				{List: l, Kind: OpSet, Key: 5, Val: 55},
			}, PrepareOpts{MaxAttempts: 4})
			if !errors.Is(err, ErrPrepareConflict) {
				t.Fatalf("writer vs pinned read = %v, want ErrPrepareConflict", err)
			}
			if !p.ops[0].Found || p.ops[0].Out != 5 {
				t.Fatalf("pinned Get = (%d, %v), want (5, true)", p.ops[0].Out, p.ops[0].Found)
			}
			p.Publish()
			// Unpinned now: the writer goes through.
			if err := l.Set(5, 55); err != nil {
				t.Fatalf("Set after publish: %v", err)
			}
			if got, _ := l.Lookup(5); got != 55 {
				t.Fatalf("Lookup(5) = %d, want 55", got)
			}
			mustCheck(t, l)
		})
	}
}

// TestPreparedWindowConcurrentReaders holds a prepared write over one
// region while readers hammer a disjoint region (which must stay fully
// available) and the prepared region itself (whose reads must resolve
// to pre-prepare values on LT's naked lookups and, for every variant,
// to post-publish values once the batch publishes). Race-clean.
func TestPreparedWindowConcurrentReaders(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for i := uint64(0); i < 64; i++ {
			if err := l.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		ops := []Op[uint64]{
			{List: l, Kind: OpSet, Key: 4, Val: 1004}, // value-only
			{List: l, Kind: OpSet, Key: 70, Val: 70},  // insert near the right
		}
		p, err := g.PrepareOps(ops, PrepareOpts{})
		if err != nil {
			t.Fatalf("PrepareOps: %v", err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The disjoint region [32, 48) is untouched by the prepared
			// batch: reads there must never block or misread.
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := uint64(32); k < 48; k++ {
					if v, ok := l.Lookup(k); !ok || v != k {
						t.Errorf("Lookup(%d) = (%d, %v) during prepared window", k, v, ok)
						return
					}
				}
			}
		}()
		// Give the reader a real window against the held prepare.
		time.Sleep(10 * time.Millisecond)
		p.Publish()
		close(stop)
		wg.Wait()
		if v, ok := l.Lookup(4); !ok || v != 1004 {
			t.Fatalf("Lookup(4) = (%d, %v) after publish", v, ok)
		}
		if v, ok := l.Lookup(70); !ok || v != 70 {
			t.Fatalf("Lookup(70) = (%d, %v) after publish", v, ok)
		}
		mustCheck(t, l)
	})
}
