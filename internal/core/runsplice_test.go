package core

import "testing"

// TestFoldedWriteRecordBudget is the write-path record-budget white-box
// test for the folded bundle protocol: a steady-state batch of
// overwrites must stage exactly one pred-link record per write entry in
// bunFills (the death record is folded into the dying node's repl/died
// words and the birth record into each piece's inline slot 0), and
// every piece's birth record must live in the inline pair — zero heap
// bundle records for the whole batch.
func TestFoldedWriteRecordBudget(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for k := uint64(0); k < 120; k++ {
			if err := l.Set(k, k); err != nil {
				t.Fatalf("seed Set: %v", err)
			}
		}
		// Overwrites of present keys spread over distinct nodes: the
		// steady-state write shape (value-only replacement per node).
		ops := []Op[uint64]{
			{List: l, Kind: OpSet, Key: 10, Val: 1},
			{List: l, Kind: OpSet, Key: 50, Val: 1},
			{List: l, Kind: OpSet, Key: 90, Val: 1},
		}
		p, err := g.PrepareOps(ops, PrepareOpts{})
		if err != nil {
			t.Fatalf("PrepareOps: %v", err)
		}
		p.PublishStart()
		b := p.b
		writes := 0
		var pieces []*node[uint64]
		for i := 0; i < b.nEnt; i++ {
			if b.entries[i].write {
				writes++
				pieces = append(pieces, b.entries[i].pieces...)
			}
		}
		if writes == 0 {
			t.Fatal("no write entries planned for the overwrite batch")
		}
		// One pred-link per write entry is the whole staged footprint: the
		// death record is folded into node words (never staged) and births
		// are stamped through the piece walk (never staged). The pred-link
		// itself may be a pooled heap record — the predecessors are old
		// nodes whose single-use inline slots were consumed long ago.
		if got := len(b.bunFills); got > writes {
			t.Errorf("bunFills stages %d records for %d write entries; the folded protocol budgets one pred-link per entry", got, writes)
		}
		p.PublishAt(g.stm.Clock().Tick())
		// The pieces are published now; each one's newest record must be
		// its inline birth (slot 0), never a heap allocation.
		for _, piece := range pieces {
			rec := piece.bun.Load()
			if rec == nil {
				t.Fatal("published piece has no birth record")
			}
			if !rec.inline {
				t.Error("piece birth record was heap-allocated; births fold into inline slot 0")
			}
		}
		mustCheck(t, l)
	})
}

// TestDeleteRangeRunBudget is the O(boundary) white-box test for
// interval-delete planning: a DeleteRange spanning dozens of nodes must
// plan a constant number of entries — the boundary nodes plus one
// splice-run entry per maximal fully-covered run — rather than one
// empty replacement per covered node, and the staged bundle records
// stay within one per entry.
func TestDeleteRangeRunBudget(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const n = 300
		for k := uint64(0); k < n; k++ {
			if err := l.Set(k, k); err != nil {
				t.Fatalf("seed Set: %v", err)
			}
		}
		ops := []Op[uint64]{{List: l, Kind: OpDeleteRange, Key: 20, KeyHi: 280}}
		p, err := g.PrepareOps(ops, PrepareOpts{})
		if err != nil {
			t.Fatalf("PrepareOps: %v", err)
		}
		p.PublishStart()
		b := p.b
		splices, runNodes := 0, 0
		for i := 0; i < b.nEnt; i++ {
			e := b.entries[i]
			if e.runEnd == nil {
				continue
			}
			splices++
			for x := e.n; ; x = x.next[0].PeekPtr() {
				runNodes++
				if x == e.runEnd {
					break
				}
			}
		}
		if splices == 0 {
			t.Fatal("wide DeleteRange planned no splice-run entry")
		}
		if b.nEnt > 4 {
			t.Errorf("wide DeleteRange planned %d entries; want boundary nodes plus a splice run (<= 4)", b.nEnt)
		}
		if runNodes < 10 {
			t.Errorf("splice run spans only %d nodes; the interval covers dozens", runNodes)
		}
		if got := len(b.bunFills); got > b.nEnt {
			t.Errorf("bunFills stages %d records for %d entries; a spliced run pends one pred-link for the whole chain", got, b.nEnt)
		}
		p.PublishAt(g.stm.Clock().Tick())
		if ops[0].N != 261 {
			t.Errorf("DeleteRange removed %d pairs, want 261", ops[0].N)
		}
		mustCheck(t, l)
		for _, k := range []uint64{0, 19, 281, n - 1} {
			if _, ok := l.Lookup(k); !ok {
				t.Errorf("surviving key %d missing after splice", k)
			}
		}
		for _, k := range []uint64{20, 150, 280} {
			if _, ok := l.Lookup(k); ok {
				t.Errorf("deleted key %d still present after splice", k)
			}
		}
	})
}

// TestDeleteRangeRunWithNeighbors drives splices in composed batches —
// point writes left and right of the interval, and a second interval in
// the same batch — so the cross-entry resolution (succTarget through a
// run, predDying against a run end) is exercised under every committer.
func TestDeleteRangeRunWithNeighbors(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const n = 400
		for k := uint64(0); k < n; k++ {
			if err := l.Set(k, k); err != nil {
				t.Fatalf("seed Set: %v", err)
			}
		}
		ops := []Op[uint64]{
			{List: l, Kind: OpSet, Key: 10, Val: 1},
			{List: l, Kind: OpDeleteRange, Key: 30, KeyHi: 170},
			{List: l, Kind: OpSet, Key: 180, Val: 2},
			{List: l, Kind: OpDeleteRange, Key: 200, KeyHi: 370},
			{List: l, Kind: OpSet, Key: 390, Val: 3},
		}
		if err := g.CommitOps(ops); err != nil {
			t.Fatalf("CommitOps: %v", err)
		}
		if ops[1].N != 141 || ops[3].N != 171 {
			t.Errorf("DeleteRange counts = %d, %d; want 141, 171", ops[1].N, ops[3].N)
		}
		mustCheck(t, l)
		want := map[uint64]uint64{10: 1, 180: 2, 390: 3, 29: 29, 171: 171, 199: 199, 371: 371}
		for k, v := range want {
			got, ok := l.Lookup(k)
			if !ok || got != v {
				t.Errorf("Lookup(%d) = %d,%v; want %d", k, got, ok, v)
			}
		}
		for _, k := range []uint64{30, 100, 170, 200, 300, 370} {
			if _, ok := l.Lookup(k); ok {
				t.Errorf("deleted key %d still present", k)
			}
		}
		// The structure stays fully usable: refill the holes and check.
		for k := uint64(30); k <= 170; k++ {
			if err := l.Set(k, k+1); err != nil {
				t.Fatalf("refill Set: %v", err)
			}
		}
		mustCheck(t, l)
		if got, ok := l.Lookup(100); !ok || got != 101 {
			t.Errorf("refilled Lookup(100) = %d,%v; want 101", got, ok)
		}
	})
}
