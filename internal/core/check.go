package core

import "fmt"

// checkOps validates a general batch: member lists, in-range keys,
// known op kinds, and ordered interval bounds on range ops.
func (g *Group[V]) checkOps(ops []Op[V]) error {
	if len(ops) == 0 {
		return ErrEmptyBatch
	}
	for i := range ops {
		op := &ops[i]
		if op.List == nil || op.List.g != g {
			return ErrForeignList
		}
		if op.Key > MaxKey {
			return ErrKeyRange
		}
		switch op.Kind {
		case OpSet, OpDelete, OpGet:
		case OpSetIf:
			if op.If == nil {
				return ErrNilPredicate
			}
		case OpGetRange, OpDeleteRange:
			if op.KeyHi > MaxKey || op.KeyHi < op.Key {
				return ErrRangeBounds
			}
		default:
			return ErrOpKind
		}
	}
	return nil
}

// checkBatch validates the legacy fixed-shape batch inputs shared by
// Update and Remove: equal-length slices, member lists, in-range keys,
// and — unlike the general CommitOps path — at most one key per list.
func (g *Group[V]) checkBatch(ls []*List[V], ks []uint64, nvals int) error {
	if len(ls) == 0 {
		return ErrEmptyBatch
	}
	if len(ks) != len(ls) || (nvals >= 0 && nvals != len(ls)) {
		return ErrBatchMismatch
	}
	for j, l := range ls {
		if l == nil || l.g != g {
			return ErrForeignList
		}
		if ks[j] > MaxKey {
			return ErrKeyRange
		}
		for i := 0; i < j; i++ {
			if ls[i] == l {
				return ErrDuplicateList
			}
		}
	}
	return nil
}

// CheckInvariants validates the structural invariants of a quiescent list
// (no concurrent operations may be running). It verifies that:
//
//   - level-0 nodes have strictly increasing high bounds ending at +inf;
//   - every node's keys are sorted, within (prev.high, high], and no node
//     exceeds NodeSize;
//   - every node's trie resolves each of its keys;
//   - all reachable nodes are live and no slot is marked;
//   - the level-i list is exactly the subsequence of level-0 nodes with
//     level > i;
//   - the terminal node has high = +inf and the maximum level.
//
// It returns a descriptive error on the first violation. Tests run it after
// every stress phase.
func (l *List[V]) CheckInvariants() error {
	r := l.g.getRead() // pin: the walk must not race node recycling
	defer l.g.putRead(r)
	maxLevel := l.g.cfg.MaxLevel
	// Walk level 0, collecting the node sequence.
	var seq []*node[V]
	prevHigh := negInf
	n := l.head.next[0].PeekPtr()
	for n != nil {
		if n.live.Peek() != 1 {
			return fmt.Errorf("reachable node (high=%d) is not live", n.high)
		}
		if n.high <= prevHigh && n.high != posInf {
			return fmt.Errorf("node high %d not above predecessor high %d", n.high, prevHigh)
		}
		if n.count() > l.g.cfg.NodeSize {
			return fmt.Errorf("node (high=%d) holds %d > NodeSize=%d keys", n.high, n.count(), l.g.cfg.NodeSize)
		}
		if n.level < 1 || n.level > maxLevel {
			return fmt.Errorf("node (high=%d) has level %d outside [1,%d]", n.high, n.level, maxLevel)
		}
		for i, k := range n.keys {
			if i > 0 && n.keys[i-1] >= k {
				return fmt.Errorf("node (high=%d) keys not strictly increasing at %d", n.high, i)
			}
			if k <= prevHigh || k > n.high {
				return fmt.Errorf("node key %d outside range (%d,%d]", k, prevHigh, n.high)
			}
			if got := n.find(k); got != i {
				return fmt.Errorf("node trie resolves key %d to %d, want %d", k, got, i)
			}
		}
		for i := 0; i < n.level; i++ {
			if n.next[i].PeekTag() != 0 {
				return fmt.Errorf("node (high=%d) slot %d marked at quiescence", n.high, i)
			}
		}
		seq = append(seq, n)
		prevHigh = n.high
		n = n.next[0].PeekPtr()
	}
	if len(seq) == 0 {
		return fmt.Errorf("list has no terminal node")
	}
	last := seq[len(seq)-1]
	if last.high != posInf {
		return fmt.Errorf("terminal node high = %d, want +inf", last.high)
	}
	if last.level != maxLevel {
		return fmt.Errorf("terminal node level = %d, want %d", last.level, maxLevel)
	}
	// Per-level chains must be the filtered level-0 sequence.
	for i := 0; i < maxLevel; i++ {
		want := make([]*node[V], 0, len(seq))
		for _, m := range seq {
			if m.level > i {
				want = append(want, m)
			}
		}
		got := make([]*node[V], 0, len(want))
		for m := l.head.next[i].PeekPtr(); m != nil; m = m.next[i].PeekPtr() {
			got = append(got, m)
			if len(got) > len(seq)+1 {
				return fmt.Errorf("level %d chain longer than node count (cycle?)", i)
			}
		}
		if len(got) != len(want) {
			return fmt.Errorf("level %d chain has %d nodes, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("level %d chain diverges at position %d", i, j)
			}
		}
	}
	return nil
}

// Keys returns every key in the list in ascending order; a quiescent-state
// helper for tests and tools.
func (l *List[V]) Keys() []uint64 {
	r := l.g.getRead() // pin: the walk must not race node recycling
	defer l.g.putRead(r)
	var out []uint64
	for n := l.head.next[0].PeekPtr(); n != nil; n = n.next[0].PeekPtr() {
		for _, k := range n.keys {
			out = append(out, toPublic(k))
		}
	}
	return out
}

// Len returns the number of keys by traversing level 0; O(n/K) node visits.
func (l *List[V]) Len() int {
	r := l.g.getRead() // pin: the walk must not race node recycling
	defer l.g.putRead(r)
	total := 0
	for n := l.head.next[0].PeekPtr(); n != nil; n = n.next[0].PeekPtr() {
		total += n.count()
	}
	return total
}

// NodeCount returns the number of nodes on level 0 (excluding the head);
// exposed for tests and capacity diagnostics.
func (l *List[V]) NodeCount() int {
	r := l.g.getRead() // pin: the walk must not race node recycling
	defer l.g.putRead(r)
	total := 0
	for n := l.head.next[0].PeekPtr(); n != nil; n = n.next[0].PeekPtr() {
		total++
	}
	return total
}
