package core

import "testing"

// TestBundleRecordsReclaimedUnderChurn is the reclamation white-box test
// for the versioned-link protocol: hammering one key funnels a new
// bundle record onto the head's level-0 link at every publish, so if
// truncation ever stopped keeping up the chain would grow linearly with
// the update count. The test also checks the grace-period invariant
// directly — no record superseded two or more epochs ago survives a fill
// of its link ("no record outlives its epoch").
func TestBundleRecordsReclaimedUnderChurn(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const rounds = 300
		for r := 0; r < rounds; r++ {
			ops := []Op[uint64]{{List: l, Kind: OpSet, Key: 5, Val: uint64(r)}}
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("CommitOps: %v", err)
			}
			// Quiescent between commits: Flush advances the epoch, so
			// records superseded this round expire two rounds later.
			g.Collector().Flush()
		}

		// The final publish fills the head's link one more time; that
		// fill must have cut everything whose grace period had elapsed
		// by eraBefore (the fill's own era can only be >= eraBefore).
		eraBefore := g.Collector().Epoch()
		ops := []Op[uint64]{{List: l, Kind: OpSet, Key: 5, Val: 0}}
		if err := g.CommitOps(ops); err != nil {
			t.Fatalf("CommitOps: %v", err)
		}

		seen := 0
		for rec := l.head.bun.Load(); rec != nil; rec = rec.older.Load() {
			seen++
			if e := rec.supersededEra.Load(); e != 0 && e+2 <= eraBefore {
				t.Fatalf("record superseded at era %d still chained at era %d", e, eraBefore)
			}
		}
		if seen == 0 {
			t.Fatal("head carries no bundle records; the bundled write path is not running")
		}
		// Only records superseded within the trailing grace window (plus
		// the live head record) may remain: a small constant, not O(rounds).
		if seen > 8 {
			t.Fatalf("head bundle chain holds %d records after %d updates; truncation is not keeping up", seen, rounds)
		}
	})
}

// TestBundleChainsBoundedWithoutFlush repeats the churn without forced
// epoch advances: the write path's own retirements must still advance
// the epoch often enough that per-link chains stay far below the update
// count.
func TestBundleChainsBoundedWithoutFlush(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const rounds = 400
		for r := 0; r < rounds; r++ {
			ops := []Op[uint64]{{List: l, Kind: OpSet, Key: 5, Val: uint64(r)}}
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("CommitOps: %v", err)
			}
		}
		seen := 0
		for rec := l.head.bun.Load(); rec != nil; rec = rec.older.Load() {
			seen++
		}
		// Epoch advancement is best-effort (tryAdvance is a TryLock), so
		// the steady-state chain length jitters a little from run to run;
		// the invariant is O(grace window), not O(rounds) — without
		// truncation the chain would hold rounds+1 records.
		if seen > rounds/2 {
			t.Fatalf("head bundle chain holds %d records after %d updates; expected self-driven truncation", seen, rounds)
		}
	})
}
