// Package core implements the Leap-List of Avni, Shavit and Suissa
// ("Leaplist: Lessons Learned in Designing TM-Supported Range Queries",
// PODC 2013): a skip-list with fat immutable nodes — each node holds up to
// K key-value pairs from a contiguous key range plus an embedded bitwise
// trie — supporting Lookup, a linearizable Range-Query, and general
// composed batches (CommitOps): any mix of set, delete, get, get-range
// and delete-range operations over any lists of one group, committed as
// a single atomic operation.
// The legacy Update/Remove entry points are fixed-shape wrappers over
// CommitOps.
//
// # The batch (transaction) model
//
// A batch is a slice of Ops. CommitOps sorts them by (list, key, staging
// order) and groups them per (list, node): every key addressed by the
// batch maps to exactly one fat node, and all ops landing in one node
// coalesce into a single node replacement built from the node's pairs
// plus the batch's per-key outcomes (last write wins; staged gets and
// delete-presence flags observe the writes staged before them). A
// replacement that outgrows NodeSize splits into several pieces; a net
// shrink absorbs the successor node exactly like a legacy Remove, unless
// that successor is itself addressed by the batch.
//
// Interval ops (OpGetRange, OpDeleteRange) generalize the grouping: an
// interval expands into the run of adjacent nodes it covers — the same
// level-0 walk RangeQuery performs — planning one group per run node and
// participating in each group's per-key fold at its staged position, so
// an interval observes exactly the point writes staged before it and a
// point Set staged after an OpDeleteRange survives it. A fully covered
// interior node is emptied in place (its replacement keeps the level and
// high bound, so the run's geometry is preserved); the run's last node
// may absorb its successor like any shrinking group, but a merge into a
// node the run continues into is always vetoed. Because every run node
// has an entry, commit-time validation covers the whole interval: node
// contents are immutable and a live node's bounds cannot move, so a pair
// appearing or vanishing inside the interval between plan and commit
// implies some run node died — which validation (liveness of every
// entry's node at the one commit instant) turns into a retry. An
// OpGetRange therefore yields a snapshot at exactly the batch's
// linearization point, shared with every point result of the batch.
//
// An abandoned plan — a stale naked setup or a conflicting validation —
// hands its never-published replacement pieces straight back to the
// recycler (releasePlan): they are unreachable by construction, so no
// grace period is needed, and heavy contention cannot leak the
// recycler's working set to the GC.
//
// # The prepare/publish/abort pipeline
//
// Every variant commits through one three-phase state machine (the
// committer interface):
//
//   - Prepare: search, plan, build the immutable replacement pieces,
//     and acquire/validate — after a successful prepare the batch is
//     guaranteed publishable, its results (staged gets, range
//     snapshots, delete counts) are fully resolved, and its footprint
//     is locked against competitors. A failed or conflicting prepare
//     holds nothing.
//   - Publish: swing the pointers — the batch's linearization point —
//     release every lock and retire the replaced nodes. Cannot fail.
//   - Abort: release every lock, restoring the pre-prepare structure
//     exactly, and hand the never-published pieces straight back to the
//     recycler. Cannot fail, and leaves no observable trace: between
//     prepare and abort, competitors and transactional readers touching
//     the locked footprint only ever retried.
//
// CommitOps is the trivial prepare-then-publish composition;
// PrepareOps/Publish/Abort expose the phases for two-phase commits
// across groups (the root package's Sharded coordinator): prepare one
// batch per group in a deterministic group order — the lock-ordering
// argument that excludes deadlock — then publish them all, or abort the
// prepared prefix when a bounded prepare (PrepareOpts.MaxAttempts)
// fails with ErrPrepareConflict. PrepareOpts.LockReads extends the held
// footprint to the batch's reads, which a 2PC participant needs: a
// prepared read must stay valid until every other group publishes, or
// an observer could see a partial cross-group state.
//
// The per-variant protocols generalize the paper's single-key-per-list
// figures to many groups, including adjacent groups in one list (where
// one group's predecessors are another group's dying nodes):
//
//   - LT and COP prepare against naked searches, then run one
//     transaction that validates every group's search before any group
//     writes (so all checks see the committed pre-state). LT's
//     transaction only marks slots and clears live flags — prepare ends
//     when it commits — and publish installs the pieces in a
//     direct-store postfix that walks groups right-to-left per list;
//     slots shared by several groups stay marked until the leftmost
//     group's final store. LT's abort revives the killed live flags and
//     clears the marks (the marks preserved the pointers), all under
//     marks it still holds. With LockReads, LT additionally marks each
//     read group's node's level-0 slot: every path that kills a node
//     marks that slot first, so the held mark pins the read. A naked
//     search whose level-0 walk crosses any held mark retries until
//     publish (transactional readers read through marks), so the
//     prepare-to-publish window — coordinator-bounded, no user code
//     inside — briefly stalls naked readers of the pinned region,
//     trading read latency under cross-group snapshots for their
//     all-or-none guarantee.
//   - COP buffers the pointer swings themselves, right-to-left, reading
//     chained wiring through the transaction's own write set — but the
//     transaction is left PREPARED (stm.PreparedTx: write locks held,
//     read set validated, and locked under LockReads), so publish is
//     the STM write-back and abort discards the buffered writes with
//     every lock released at its old version.
//   - TM plans, validates and applies groups sequentially inside one
//     fully instrumented transaction, prepared the same way as COP;
//     each group's search traverses the batch's own buffered writes, so
//     no cross-group resolution is needed.
//   - RWLock locks every touched list (write locks, or read locks for
//     an all-read batch) in id order at prepare, plans every group
//     against the quiescent pre-state, and publishes with the same
//     right-to-left direct-store walk as LT's postfix before unlocking —
//     strict two-phase locking, so LockReads is implied and prepare
//     blocks instead of conflicting.
//
// The linearization point of a batch is its publish: the first
// predecessor store of LT's and RW's right-to-left walk makes the batch
// visible to readers (the remaining stores complete it behind marks or
// the list lock), and COP's and TM's publish is the prepared
// transaction's single write-back (one clock bump publishes every
// buffered swing atomically). For the fused CommitOps this instant lies
// inside the same protected window as the prepare-time validation —
// locks are held continuously from validation to publish — which is
// what lets a two-phase coordinator slide the publishes of several
// groups together into one cross-group atomicity point. Staged gets are
// resolved against node contents pinned at prepare: node pairs are
// immutable, so holding liveness (validated, then locked) pins the
// values read through publish.
//
// The package provides all four synchronization variants the paper
// evaluates over one shared node representation:
//
//   - VariantLT — the paper's contribution. Consistency-oblivious (naked)
//     search; a short Locking Transaction that validates the search and
//     transactionally acquires mark "locks" on the affected pointer slots
//     and live flags; a non-transactional release postfix that installs the
//     new nodes and clears the marks. Lookups run no transaction at all;
//     range queries run one instrumented access per K keys.
//   - VariantTM — every operation, traversal included, wrapped in a single
//     STM transaction (the paper's Leap-tm).
//   - VariantCOP — naked search prefix, then one STM transaction that
//     validates the prefix and performs all structural writes
//     transactionally (the paper's Leap-COP).
//   - VariantRW — a per-list reader-writer lock (the paper's Leap-rwlock).
//
// # Finger search and descent validation
//
// Every predecessor search in this package may be accelerated by a
// finger — a remembered position from an earlier search — under one
// contract: a finger is a hint, never an authority. Each use
// re-validates it and falls back to the paper's plain head descent
// (Figure 3), so a stale finger can cost a fallback but never change a
// result. Config.NoFingers disables the whole mechanism for A/B runs.
//
// Two finger forms exist:
//
//   - Read fingers (readScratch.finger): the node a lookup landed on, or
//     the last node of a range snapshot. When a later read's key
//     provably lies in or beyond the finger's range, the search walks
//     forward from the finger using only the finger's own levels; the
//     upper descent is skipped outright. This is sound because read
//     paths consume only the landing node (na[0]): a live node owns its
//     key range exclusively, so walking live nodes forward from any live
//     same-list node below the key reaches the same landing node a head
//     descent would.
//   - Write fingers and seeds (txState.fpa, and within a batch the
//     previous group's pa): write paths need full-height pa/na for
//     validation and pointer swings, so their descents still visit every
//     level but may jump each level's start forward to a seed
//     predecessor. Sorted batches make this cumulative: group t+1 seeds
//     from group t's predecessors, turning an N-key ascending
//     transaction into one descent plus N-1 short walks; consecutive
//     batches chain the same way through the saved finger.
//
// What a finger may skip is bounded by what validation re-checks:
//
//   - LT/COP re-check exactly as the head restart path does — the naked
//     walk restarts (falls back) on any marked slot or dead node, the
//     landing node's liveness is re-verified transactionally (COP
//     lookup, the snapshot walk, and every batch's validateEntryTx),
//     and stale pa entries are caught because validation checks
//     pa[i] liveness at every level a replacement occupies (maxH is
//     always >= the replaced node's level).
//   - TM reads the finger's liveness and every traversed slot through
//     the transaction, so a finger start is validated by the normal
//     read set: if the finger's node dies before commit, the
//     transaction conflicts exactly as if the descent had traversed it.
//   - RW checks the seed's liveness under the list lock (exact, since
//     replacements need the write lock); past that, the quiescent walk
//     needs no checks.
//
// Memory safety across operations is the one place fingers need more
// than validation: between operations the scratch unpins its epoch
// participant, so a remembered node's shell could in principle be
// recycled and rewritten (plain stores in recycleNode/newShell) while a
// later validation reads its immutable fields. The era guard closes
// this: a finger is stamped with the pin-time epoch that saved it
// (epoch.Participant.Era — the floor below which nothing it observed
// can have been retired), and the next operation drops it unless a
// fresh Collector.Epoch() read, taken after its own pin is published,
// still equals that era. Equality proves by monotonicity that the
// epoch never reached era+2 — reclamation requires two advances past
// retirement — and the newly pinned word (published before the read,
// hence no greater) blocks any future advance past era+1, so an
// era-stable finger's memory — dead or alive — cannot have been handed
// to a new owner. The participant's own stale word would not suffice:
// Pin loads the epoch before publishing the word, and in that window
// the epoch can advance freely. Within one pinned
// operation (intra-batch seeds) no guard is needed. Past the guard, the
// per-use checks — liveness, owning-list id (node.lid), level, bounds —
// accept the remembered node only while it is a genuinely valid start
// position (a value-only replacement, split, merge or range delete of
// its region kills it and forces the fallback), which is all a hint
// needs to be.
//
// # Hash index maintenance and validation
//
// Where fingers exploit locality between consecutive operations, the
// per-list hash index (hashindex.go) accelerates the stream fingers
// cannot help with: point operations on uniformly random keys. Each
// list owns an open-addressed table mapping internal key -> the node
// that held it when the entry was written, stamped with the era the
// writer observed. Lookup and planGroups' per-key descent consult it
// when the finger misses; a hit skips the whole descent. Like a finger,
// an entry is a hint, never an authority — Config.NoHashIndex
// (leaplist.WithHashIndex(false)) disables it for A/B runs.
//
// Maintenance rides the commit pipeline's single linearization point:
// every variant's publish phase calls indexPublish after the pointer
// swings, re-pointing exactly the batch's staged keys — a staged key
// now found in a replacement piece maps to that piece, a staged key the
// batch deleted is cleared, and keys covered by an OpDeleteRange are
// dropped from the old nodes' contents. Keys that merely moved because
// a neighbouring node split, merged or was absorbed are NOT re-pointed;
// their entries go stale and are repaired lazily by the read path
// (Lookup falls back to a head descent on a validation failure and
// rewrites the entry in place). Table growth happens only on the
// publish path, so the read path never allocates; retired slot arrays
// go through the epoch collector like node shells.
//
// Validation mirrors the finger contract exactly. Each slot is a
// seqlock (ver odd = writer active; readers retry-free: they simply
// miss on a torn read, and writers skip a contended slot — an index
// write is droppable by design). A probed entry passes through
// idxProbe, the single era-validating gate: the entry is dropped unless
// a fresh Collector.Epoch() read, taken after the reader's own pin is
// published, still equals the entry's stamped era — the same
// monotonicity argument as the finger era guard, proving the
// remembered shell cannot have been recycled. Past the guard the hit
// is validated like any finger (liveness, owning-list id, level-0
// bounds) — in-mode, so TM reads liveness through its transaction and
// a buffered kill is visible. planGroups additionally takes the index
// path only for provably read-only point groups (no staged write at or
// below the hit's bound, no active predecessor chain), because write
// groups need the full-height pa/na a skipped descent cannot supply.
//
// Internal keys occupy [1, 2^64-1] (the public domain shifted by one),
// so slot key 0 is free as the virgin marker; a claimed slot is never
// re-keyed, deletion stores a nil node, and dead slots are purged only
// when growth migrates the table.
//
// # Structure invariants
//
// A list is a singly-forward-linked skip-list of immutable nodes. Node
// ranges partition the key space: node N following node P owns keys in
// (P.high, N.high]. The head sentinel has high = -inf and never holds keys;
// the terminal node has high = +inf and is at the maximum level, so every
// per-level list terminates at it. Keys are stored internally shifted by
// one so that uint64 zero can serve as -inf; the public key domain is
// [0, 2^64-2] and the facade rejects 2^64-1.
//
// Node contents (keys, values, trie, high, level) never change after
// publication; every mutation replaces one node (or two, on split/merge)
// with freshly built nodes, relinking predecessors. Only two mutable fields
// exist, both transactional: the live flag and the (pointer, mark) pairs of
// the next slots.
//
// # Node lifecycle and structure sharing
//
// The write path is engineered so that the common update — overwriting
// the values of keys already present — commits with zero steady-state
// allocations, without weakening the immutability contract above. Three
// mechanisms cooperate:
//
// Structure sharing (value-only replacement). When every write of a node
// group lands as an overwrite of a present key (no insert, no net
// delete), the replacement node has the same keys, bounds, count and
// level as the node it supplants — so it borrows the old node's keys
// array and sealed trie outright and copies only the values
// (buildValueOnly). What is shared: the keys backing array and the *Trie.
// What is copied: the values array (always — a published values array is
// never written). Why immutability still holds: no node ever writes
// through a keys array or trie, whether it owns or borrows them, so a
// reader holding either observes frozen content forever; the old node
// remains fully intact for concurrent snapshot readers until the epoch
// grace period ends. The borrower is marked ownsKV = false and the lender
// lent = true, which together keep shared backing out of the recycler.
//
// Epoch-protected recycling. Every operation (lookup, range query,
// commit) runs pinned to an epoch participant (internal/epoch); every
// replaced node, already unlinked, is retired through the committing
// operation's participant. Only after two epoch advances — when no pinned
// operation can still hold a reference — does recycleNode donate the
// node's shell (struct plus next slot array), its values array (cleared
// first when V holds pointers), and, when owned and never lent, its keys
// array and trie, into per-group pools consumed by newShell, getKeysBuf,
// getValsBuf and buildTrie. Retirement itself is allocation-free:
// participant-local buckets, a static destructor function, pooled boxes
// for the slice headers. The pin is also what makes the naked LT lookup
// and the post-transaction emitRange walk safe: without it, a donated
// buffer could be rewritten mid-read.
//
// Pooled transaction metadata. The STM layer (internal/stm) buffers
// every write — Word value or TaggedPtr (pointer, tag) pair — inline in
// the transaction's write-entry array, so marking slots and swinging
// pointers allocates nothing no matter how wide the write set grows (a
// run splice marks hundreds of slots in one transaction); the legacy
// Update/Remove wrappers and the facade Tx builder recycle their op
// slices the same way.
//
// Versioned-lock state survives recycling unchanged: a recycled cell's
// version can only lag the global clock, which is indistinguishable from
// a fresh cell last written at that version, and the grace period rules
// out ABA (no transaction can span a reuse, because transactions run
// pinned).
//
// # Versioned links and timestamped traversal
//
// With bundles enabled (Config.NoBundles false, the default), every
// level-0 link additionally carries a bundle: a short newest-first list
// of {timestamp, *node} records (bundle.go) headed at node.bun, plus
// three per-node versioning words — the birth instant node.born and the
// folded death pair (node.repl, node.died) naming the node's
// continuation and the instant it left its chain. The folded layout
// (PR 9) spends roughly one record per write entry instead of three:
//
//   - Death is not a chain record. Publish stores the replacement
//     pointer into node.repl with died PENDING; the fill pass stamps
//     died — the same PENDING-then-fill discipline a record would get.
//     The dying node's own chain stays frozen at its pre-death
//     contents, which is exactly what readers with s < died need.
//   - Birth is not a prepend. Each fresh piece's inline slot 0 is
//     installed while the piece is still private, and the fill pass
//     stamps it together with the piece's born in one walk over the
//     batch scratch.
//   - The one real prepend per write entry is the pred-link record on
//     the entry's level-0 predecessor, and it lands in the
//     predecessor's embedded two-record inline pair (node.inl, slot 1)
//     before spilling to pooled heap records — steady-state overwrites
//     allocate zero bundle records.
//   - A run splice (a DeleteRange whose interval fully covers a run of
//     nodes) is one death fold per covered node, all naming the first
//     node past the run, plus the boundary pred-link record — no
//     per-node replacement pieces, no birth records for the covered
//     interior.
//
// Records and folds are created inside the commit pipeline's publish
// phase, bracketing the batch's linearization point:
//
//   - Pend (bunPublishStart, all four variants): before any link
//     swings, a PENDING record (ts = ^0) is prepended on every level-0
//     pred link the batch will rewrite and every dying node's repl/died
//     pair is set PENDING; fresh pieces carry PENDING births as they
//     are wired in. PENDING compares greater than every snapshot
//     timestamp, so a concurrent timestamped reader keeps resolving
//     the pre-batch state until the fill lands.
//   - Timestamp draw: the batch timestamp comes from the group's STM
//     version clock, so bundle timestamps and transaction versions
//     form one order. LT and RW tick the clock between pend and the
//     swings; COP and TM reuse the STM commit's own write-version
//     (PreparedTx.Publish); the coordinated cross-shard publish
//     (PreparedOps.PublishStart + PublishAt) pends on every shard
//     while all prepare locks are held, draws one shared tick, and
//     fills every leg at that instant — one cross-shard cut, no torn
//     transfers.
//   - Fill (bunFillAll): after the swings, every pended record, death
//     fold and fresh piece's born is stamped with the batch timestamp,
//     each superseded head record is era-stamped, and each filled
//     link's expired tail (supersededEra + 2 <= current era) is
//     truncated and retired through the epoch collector.
//
// The reader validation rule: a snapshot read at timestamp s resolves
// each link to its newest record with ts <= s (bunNextAsOf), anchors
// only on nodes with born <= s, and lifts a dead anchor into the chain
// by chasing repl pointers of nodes with died <= s (bunRecoverAsOf) —
// no locks, no retries, regardless of concurrent structural churn. A
// chased target either covers the dead node's left boundary (ordinary
// replacement) or sits just past a fully deleted run, and in both
// cases the forward walk resolves the same result set. Timestamps obey
// the pin-before-timestamp rule (asof.go): s is drawn after the
// reader's epoch pin (for a multi-group read, after every involved
// pin), which is what keeps every record the cut needs alive.
//
// The reclamation argument mirrors the node lifecycle: a record is
// truncated only once the era that superseded it is two advances old,
// a pinned reader blocks the second advance, and a post-pin timestamp
// covers every record superseded since the pin began; a recycled
// node's chain — including its inline pair, which the chain destructor
// never frees past — is severed and reset only after the node's own
// grace period. asof.go carries the chain-membership induction in
// full.
//
// # Invariants and static enforcement
//
// The safety arguments above rest on discipline that the type system
// cannot express, so cmd/leaplint (run in CI, and locally with
//
//	go run ./cmd/leaplint ./...
//
// or go vet -vettool) checks each of them statically:
//
//   - epochpin: every function that dereferences node memory must hold
//     an epoch pin — its own Participant.Pin, or pooled scratch from
//     getRead/getBatch (which pin on acquisition), released on every
//     return path; and no node may be touched again after it was passed
//     to Retire/retireNode. This is the recycling invariant: an unpinned
//     walk races recycleNode rewriting a donated shell mid-read (the bug
//     class CheckInvariants had before it pinned).
//   - atomicmix: a field accessed through sync/atomic anywhere must be
//     accessed through sync/atomic everywhere — one plain load of an
//     atomically-published word is a data race even if it "only" reads.
//   - poolhygiene: pooled objects must be reset before sync.Pool.Put,
//     pointerful slices must be cleared before a [:0] truncation, and a
//     Get result must not escape into longer-lived fields. The clearing
//     rule is load-bearing for the len-bounded cleanup in putRead and
//     putBatch: a retry or replan that shrinks a slice below an earlier
//     attempt's length strands live pointers beyond len, and nothing
//     ever clears them again — the pooled scratch silently pins dead
//     nodes and their values (see poolclear_test.go for the runtime
//     mirrors of this rule).
//   - phaseorder: every successful prepare (committer.prepare,
//     PrepareOps, PrepareOnce) must reach exactly one of publish or
//     abort — held by the caller or handed outward with the descriptor —
//     and every prepare error path must release its plan; a dropped
//     prepared transaction holds versioned-lock marks forever.
//   - eraguard: saved fingers (readScratch.finger, txState.fpa/fList)
//     are only valid under the era-equality guard, so they may be
//     consumed only through the validating helpers (fingerSeek*,
//     seedAt, fingerUsable, asOfSeed) or the scratch lifecycle itself —
//     a naked read of a remembered node can touch recycled memory. The same
//     discipline covers hash-index slot entries (idxSlot.node/.era):
//     only the slot protocol (idxPut, idxDel, idxPeek, idxGrow) may
//     touch them, and every consumer goes through idxProbe's era guard.
//   - bundleproto: bundle record words (ts, to, older, supersededEra,
//     inline), the node.bun link head and the inline pair
//     (node.inl/node.inlUsed) are touched only by the bundle protocol
//     functions; the stamping entry points (bunPublishStart,
//     bunPrepend, bunFillAll, bunInit, bunTruncate) are called only
//     from publish-phase code or list construction; the folded death
//     words are stamped only by the phase that swings the node's
//     predecessor (node.repl by phase A and the lifecycle, node.died by
//     the fill pass); and node.born is stored only by the fill pass and
//     the shell lifecycle. Every other reader goes through the
//     timestamp-validating bunNextAsOf/bunRecoverAsOf helpers.
//   - failsite: any file importing internal/failpoint must carry a
//     failpoint build constraint — injection shims live in paired
//     //go:build failpoint / !failpoint files so the normal build's
//     fpEval/fpHit compile to nothing and pipeline code never imports
//     the registry directly.
//
// Deliberate exceptions are annotated in place with
// "//lint:allow <analyzer> <reason>"; the build gates on zero
// unexplained findings.
//
// # Failure model, deadlines, and fault injection
//
// The commit pipeline's safety story is phrased around one rule: a
// transaction that does not publish must leave the structure exactly as
// it found it. Prepare can fail (conflict, cancellation, injected
// fault) and abort must then restore every mark, revive every
// transactionally-deleted node and recycle every never-published piece;
// publish cannot fail — once the first publish step of a batch runs,
// the only legal continuation is to finish.
//
// Cancellation is a first-class prepare outcome. PrepareOpts carries an
// optional Done channel and Deadline; each variant's prepare checks
// them at the top of its retry loop and gives up with ErrCanceled after
// a clean abort of anything partially acquired (under the RW variant,
// which blocks on locks rather than retrying, the check runs before
// any lock is taken). MaxAttempts likewise bounds the conflict-retry
// loop, surfacing ErrPrepareConflict when exhausted. Both paths are
// counted in the STM stats (TimeoutAborts, PrepareConflicts).
//
// The failpoint build tag (-tags failpoint) compiles in the named
// injection sites threaded through the pipeline — prepare, publish and
// abort of every variant committer, the bundle pend/fill/death-fold
// steps, the hash-index publish hook and the epoch advance/retire paths
// (site names and placement rules are in failpoints.go). In the normal
// build the per-package fpEval/fpHit shims are empty functions the
// compiler erases. chaos_test.go arms the sites to prove the rule
// above: injected prepare errors restore pre-state exactly, a stalled
// publish cannot tear a timestamped snapshot, yield storms at every
// site perturb nothing, and a deliberately broken abort (the
// abort-skip-revive mutation switch) is caught by CheckInvariants.
package core
