// Package core implements the Leap-List of Avni, Shavit and Suissa
// ("Leaplist: Lessons Learned in Designing TM-Supported Range Queries",
// PODC 2013): a skip-list with fat immutable nodes — each node holds up to
// K key-value pairs from a contiguous key range plus an embedded bitwise
// trie — supporting Update, Remove, Lookup and a linearizable Range-Query,
// with Update and Remove composable across L lists in one atomic operation.
//
// The package provides all four synchronization variants the paper
// evaluates over one shared node representation:
//
//   - VariantLT — the paper's contribution. Consistency-oblivious (naked)
//     search; a short Locking Transaction that validates the search and
//     transactionally acquires mark "locks" on the affected pointer slots
//     and live flags; a non-transactional release postfix that installs the
//     new nodes and clears the marks. Lookups run no transaction at all;
//     range queries run one instrumented access per K keys.
//   - VariantTM — every operation, traversal included, wrapped in a single
//     STM transaction (the paper's Leap-tm).
//   - VariantCOP — naked search prefix, then one STM transaction that
//     validates the prefix and performs all structural writes
//     transactionally (the paper's Leap-COP).
//   - VariantRW — a per-list reader-writer lock (the paper's Leap-rwlock).
//
// # Structure invariants
//
// A list is a singly-forward-linked skip-list of immutable nodes. Node
// ranges partition the key space: node N following node P owns keys in
// (P.high, N.high]. The head sentinel has high = -inf and never holds keys;
// the terminal node has high = +inf and is at the maximum level, so every
// per-level list terminates at it. Keys are stored internally shifted by
// one so that uint64 zero can serve as -inf; the public key domain is
// [0, 2^64-2] and the facade rejects 2^64-1.
//
// Node contents (keys, values, trie, high, level) never change after
// publication; every mutation replaces one node (or two, on split/merge)
// with freshly built nodes, relinking predecessors. Only two mutable fields
// exist, both transactional: the live flag and the (pointer, mark) pairs of
// the next slots.
package core
