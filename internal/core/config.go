package core

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"reflect"
	"sync"
	"sync/atomic"

	"leaplist/internal/epoch"
	"leaplist/internal/stm"
	"leaplist/internal/trie"
)

// Variant selects the synchronization protocol of a list group. See the
// package documentation for what each variant does.
type Variant int

const (
	// VariantLT is the paper's Leap-LT: COP search + Locking Transactions.
	VariantLT Variant = iota + 1
	// VariantTM is the paper's Leap-tm: whole operations inside one STM
	// transaction.
	VariantTM
	// VariantCOP is the paper's Leap-COP: naked search prefix, validation
	// and writes inside one STM transaction.
	VariantCOP
	// VariantRW is the paper's Leap-rwlock: per-list reader-writer lock.
	VariantRW
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantLT:
		return "Leap-LT"
	case VariantTM:
		return "Leap-tm"
	case VariantCOP:
		return "Leap-COP"
	case VariantRW:
		return "Leap-rwlock"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Defaults mirror the paper's experimental settings (§3, footnote 2:
// "node of size 300, and with a maximal level of 10").
const (
	DefaultNodeSize = 300
	DefaultMaxLevel = 10
)

// MaxKey is the largest storable key; 2^64-1 is reserved for the internal
// +inf sentinel encoding.
const MaxKey = ^uint64(0) - 1

// Errors returned by group and list operations.
var (
	ErrKeyRange      = errors.New("core: key out of range (2^64-1 is reserved)")
	ErrRangeBounds   = errors.New("core: range op bounds invalid (KeyHi < Key or out of range)")
	ErrBatchMismatch = errors.New("core: batch slice lengths differ")
	ErrForeignList   = errors.New("core: list does not belong to this group")
	ErrEmptyBatch    = errors.New("core: empty batch")
	ErrNilPredicate  = errors.New("core: OpSetIf with nil If predicate")
)

// Config holds the tunables of a list group.
type Config struct {
	// NodeSize is K, the maximum number of key-value pairs per node.
	NodeSize int
	// MaxLevel is the maximum skip-list level.
	MaxLevel int
	// Variant selects the synchronization protocol.
	Variant Variant
	// NoFingers disables the search-acceleration fingers (see doc.go,
	// "Finger search and descent validation"): every predecessor search
	// descends from the head, as the paper's Figure 3 does. The zero
	// value keeps fingers enabled; the knob exists for A/B benchmarking
	// and for bisecting suspected finger bugs.
	NoFingers bool
	// NoHashIndex disables the per-list point-lookup hash index (see
	// doc.go, "Hash index maintenance and validation"): Lookup and the
	// point-op prepare always descend from the head (or a finger), and
	// the publish phase maintains no key->node entries. The zero value
	// keeps the index enabled; the knob exists for A/B benchmarking and
	// for bisecting suspected index bugs.
	NoHashIndex bool
	// NoBundles disables the versioned level-0 links (see doc.go,
	// "Versioned links and timestamped traversal"): publish phases stamp
	// no bundle records, and every snapshot read falls back to the
	// retry-based pre-bundle paths. The zero value keeps bundles enabled;
	// the knob exists for A/B benchmarking and for bisecting suspected
	// bundle bugs. Fixed at construction: lists built without bundles
	// have no records to read, so the group never consults them.
	NoBundles bool
	// Collector, when non-nil, is the epoch domain the group runs on:
	// every operation pins one of its participants and every replaced
	// node is retired through it (the paper's "Deallocate unneeded nodes"
	// step under Fraser's allocator), feeding the group's node recycler
	// after the grace period. When nil the group creates a private
	// collector; supplying one is for sharing a domain across groups or
	// observing reclamation counters.
	Collector *epoch.Collector
	// levelFn overrides random level generation; tests use it for
	// deterministic structure. nil means geometric with p = 1/2.
	levelFn func(maxLevel int) int
}

func (c *Config) normalize() {
	if c.NodeSize <= 0 {
		c.NodeSize = DefaultNodeSize
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = DefaultMaxLevel
	}
	if c.MaxLevel > 62 {
		c.MaxLevel = 62
	}
	if c.Variant == 0 {
		c.Variant = VariantLT
	}
}

// SetLevelFunc overrides random level generation (tests only).
func (c *Config) SetLevelFunc(fn func(maxLevel int) int) {
	c.levelFn = fn
}

// Group is a set of Leap-Lists sharing one STM domain and one
// configuration; Update and Remove compose atomically across the lists of
// one group (the paper's L-Leap-Lists).
type Group[V any] struct {
	cfg Config
	stm *stm.STM

	// commit is the variant's three-phase commit state machine
	// (prepare/publish/abort); bound once at construction so the hot
	// CommitOps path pays one interface dispatch, no boxing.
	commit committer[V]

	pool         sync.Pool     // *txState[V] scratch
	preparedPool sync.Pool     // *PreparedOps[V] descriptors
	opsPool      sync.Pool     // *kvBox[Op[V]] scratch for the legacy wrappers
	opsBoxPool   sync.Pool     // empty *kvBox[Op[V]] husks
	readPool     sync.Pool     // *readScratch[V] scratch
	listIDs      atomic.Uint64 // lock-ordering ids for VariantRW

	// collector is the group's epoch domain: every operation runs pinned
	// to one of its participants, and every replaced node is retired
	// through it so the recycler pools below only ever receive memory no
	// concurrent reader can still observe. Equal to cfg.Collector when
	// the caller supplied one, otherwise private.
	collector     *epoch.Collector
	donateNode    func(any) // static epoch destructor: recycle one *node[V]
	donateIdx     func(any) // static epoch destructor: recycle one *idxTable[V]
	donateBundle  func(any) // static epoch destructor: recycle a *bundleRec[V] chain
	donateRun     func(any) // static epoch destructor: recycle a *runRetire[V] chain
	valsNeedClear bool      // V can hold pointers: clear donated vals arrays

	// Recycler pools fed by donateNode and drained by the write path;
	// see doc.go, "Node lifecycle and structure sharing".
	shellPool   sync.Pool // *node[V] shells (struct + next slot array)
	keysPool    sync.Pool // *kvBox[uint64]: retired keys arrays
	valsPool    sync.Pool // *kvBox[V]: retired value arrays
	keysBoxPool sync.Pool // empty *kvBox[uint64] husks: donation allocates nothing
	valsBoxPool sync.Pool // empty *kvBox[V] husks
	triePool    sync.Pool // *trie.Trie with reusable internal node storage
	idxPool     sync.Pool // *idxBox[V]: retired hash-index slot arrays, cleared
	idxBoxPool  sync.Pool // empty *idxBox[V] husks
	bunPool     sync.Pool // *bundleRec[V]: retired versioned-link records, cleared
}

// kvBox carries a recycled backing array through a sync.Pool without
// allocating a fresh slice-header box per donation: empty husks circulate
// through the group's *BoxPool pools.
type kvBox[T any] struct {
	s []T
}

// NewGroup creates a group. A nil domain allocates a private STM.
func NewGroup[V any](cfg Config, domain *stm.STM) *Group[V] {
	cfg.normalize()
	if domain == nil {
		domain = stm.New()
	}
	g := &Group[V]{cfg: cfg, stm: domain}
	switch cfg.Variant {
	case VariantLT:
		g.commit = ltCommitter[V]{g}
	case VariantCOP:
		g.commit = copCommitter[V]{g}
	case VariantTM:
		g.commit = tmCommitter[V]{g}
	case VariantRW:
		g.commit = rwCommitter[V]{g}
	default:
		panic("core: unknown variant")
	}
	g.collector = cfg.Collector
	if g.collector == nil {
		g.collector = epoch.NewCollector()
	}
	g.donateNode = func(obj any) { g.recycleNode(obj.(*node[V])) }
	g.donateIdx = func(obj any) { g.donateIdxSlots(obj.(*idxTable[V])) }
	g.donateBundle = g.recycleBundleChain
	g.donateRun = func(obj any) {
		r := obj.(*runRetire[V])
		g.recycleRunChain(r.first, r.end)
	}
	var zero V
	g.valsNeedClear = typeHasPointers(reflect.TypeOf(&zero).Elem())
	return g
}

// typeHasPointers reports whether values of t can reference heap memory;
// donated value arrays of pointer-free types skip the clearing pass (they
// can pin nothing).
func typeHasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return typeHasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if typeHasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// Collector returns the group's epoch collector (the configured one, or
// the private collector every group otherwise runs on).
func (g *Group[V]) Collector() *epoch.Collector {
	return g.collector
}

// Config returns the group's normalized configuration.
func (g *Group[V]) Config() Config {
	return g.cfg
}

// STM returns the group's transactional memory domain.
func (g *Group[V]) STM() *stm.STM {
	return g.stm
}

// fingers reports whether the search-acceleration fingers are enabled.
func (g *Group[V]) fingers() bool {
	return !g.cfg.NoFingers
}

// hashIndex reports whether the per-list point-lookup hash index is
// enabled.
func (g *Group[V]) hashIndex() bool {
	return !g.cfg.NoHashIndex
}

// bundles reports whether the versioned level-0 links (and with them the
// timestamped snapshot-read paths) are enabled.
func (g *Group[V]) bundles() bool {
	return !g.cfg.NoBundles
}

// Bundles reports whether the group maintains versioned level-0 links;
// the Sharded facade consults it before taking its timestamped read-only
// commit fast path.
func (g *Group[V]) Bundles() bool {
	return g.bundles()
}

// pickLevel draws a skip-list level in [1, MaxLevel] with the usual
// geometric p = 1/2 distribution.
func (g *Group[V]) pickLevel() int {
	if g.cfg.levelFn != nil {
		return g.cfg.levelFn(g.cfg.MaxLevel)
	}
	// TrailingZeros of a uniform word is geometric(1/2).
	lvl := 1 + bits.TrailingZeros64(rand.Uint64()|1<<uint(g.cfg.MaxLevel-1))
	if lvl > g.cfg.MaxLevel {
		lvl = g.cfg.MaxLevel
	}
	return lvl
}

// retireNode parks a replaced (already unlinked) node in the committing
// operation's epoch participant; after the grace period recycleNode
// donates its shell and unshared backing arrays to the group's pools.
func (g *Group[V]) retireNode(b *txState[V], n *node[V]) {
	if n == nil {
		return
	}
	b.part.Retire(n, g.donateNode)
}

// runRetire carries one spliced-out DeleteRange run [first, end] through
// the epoch collector as a single retirement: the destructor walks the
// run's frozen level-0 chain recycling each node, so unlinking an N-node
// run costs one Retire instead of N.
type runRetire[V any] struct {
	first, end *node[V]
}

// retireRun parks a spliced run in the committing operation's epoch
// participant as one retirement object.
func (g *Group[V]) retireRun(b *txState[V], first, end *node[V]) {
	b.part.Retire(&runRetire[V]{first: first, end: end}, g.donateRun)
}

// recycleRunChain is the body of a runRetire's epoch destructor: it runs
// after the grace period and recycles each run node in chain order. Each
// next pointer is read before recycling its holder (recycleNode scrubs
// the slot array); the run's level-0 chain is frozen — dead nodes' links
// are never rewritten — so PeekPtr is exact.
func (g *Group[V]) recycleRunChain(first, end *node[V]) {
	for x := first; ; {
		nx := x.next[0].PeekPtr()
		g.recycleNode(x)
		if x == end {
			break
		}
		x = nx
	}
}

// recycleNode is the epoch destructor of a retired node: it runs only
// after the grace period, when no pinned operation can still observe the
// node, and donates whatever the node exclusively owns back to the
// recycler pools. Keys and trie are donated only when the node owned them
// (not a borrower) and never lent them to a value-only replacement —
// backing arrays shared across a replacement chain simply stay out of the
// pools and fall to the Go collector once the whole chain dies.
func (g *Group[V]) recycleNode(n *node[V]) {
	if n.ownsKV && !n.lent.Load() {
		if cap(n.keys) > 0 {
			g.putKeysBuf(n.keys)
		}
		if n.tr != nil {
			g.triePool.Put(n.tr)
		}
	}
	if cap(n.vals) > 0 {
		g.putValsBuf(n.vals)
	}
	n.keys, n.vals, n.tr = nil, nil, nil
	// Recycle the node's entire bundle chain directly: the node's own
	// grace period already proves no pinned reader can still be walking
	// its records, so they skip a second epoch round trip. The chain's
	// records are heap records plus the node's own inline slots
	// (recycleBundleRec pools the former and clears the latter in place);
	// inline slots that truncation already cut off the chain are cleared
	// by the unconditional reset below, and the pair becomes reusable
	// only here — single-use per node lifetime.
	for rec := n.bun.Load(); rec != nil; {
		next := rec.older.Load()
		g.recycleBundleRec(rec)
		rec = next
	}
	n.bun.Store(nil)
	g.recycleBundleRec(&n.inl[0])
	g.recycleBundleRec(&n.inl[1])
	n.inlUsed = 0
	// Reset the folded death record: the pair (repl, died) reads as
	// "alive" again for the shell's next life.
	n.repl.Store(nil)
	n.died.Store(bunPending)
	// born resets to pending, not zero: a recycled shell rewired as a new
	// piece must not look ancient to the timestamped read path's anchor
	// check before its publishing batch fills the real timestamp.
	n.born.Store(bunPending)
	// Clear the slot array so the pooled shell pins no nodes. Entries
	// beyond len(next) were cleared by earlier donations (or are zero
	// from allocation), so clearing the live prefix suffices. Versions in
	// the embedded vlocks are deliberately preserved: a version can only
	// lag the global clock, which is a valid state for a fresh cell.
	for i := range n.next {
		n.next[i].Init(nil, stm.TagNone)
	}
	n.live.Init(0)
	n.lent.Store(false)
	n.ownsKV = false
	g.shellPool.Put(n)
}

// newShell returns a node shell for a replacement piece, recycling a
// retired one when the pool has it. The shell arrives with live = 0, no
// backing arrays, and cleared next slots.
func (g *Group[V]) newShell(level int) *node[V] {
	n, _ := g.shellPool.Get().(*node[V])
	if n == nil {
		n = newNode[V](level)
		// A freshly allocated piece shell starts with born pending, like a
		// recycled one: zero would make an unfilled piece look ancient to
		// the timestamped read path's anchor check (see recycleNode).
		n.born.Store(bunPending)
		return n
	}
	n.level = level
	if cap(n.next) < level {
		n.next = make([]stm.TaggedPtr[node[V]], level)
	} else {
		n.next = n.next[:level]
	}
	n.high = 0
	n.lid = 0
	n.ownsKV = true
	return n
}

// getKeysBuf returns a zero-length keys buffer with capacity >= capacity,
// recycled when possible. An undersized pooled buffer is dropped to the
// Go collector rather than cycled back (sync.Pool self-cleans).
func (g *Group[V]) getKeysBuf(capacity int) []uint64 {
	if b, _ := g.keysPool.Get().(*kvBox[uint64]); b != nil {
		s := b.s
		b.s = nil
		g.keysBoxPool.Put(b)
		if cap(s) >= capacity {
			return s[:0]
		}
	}
	if capacity < g.cfg.NodeSize {
		capacity = g.cfg.NodeSize
	}
	return make([]uint64, 0, capacity)
}

// putKeysBuf donates a keys array to the pool.
func (g *Group[V]) putKeysBuf(s []uint64) {
	b, _ := g.keysBoxPool.Get().(*kvBox[uint64])
	if b == nil {
		b = &kvBox[uint64]{}
	}
	b.s = s[:0]
	g.keysPool.Put(b)
}

// getValsBuf returns a zero-length values buffer with capacity >=
// capacity, recycled when possible.
func (g *Group[V]) getValsBuf(capacity int) []V {
	if b, _ := g.valsPool.Get().(*kvBox[V]); b != nil {
		s := b.s
		b.s = nil
		g.valsBoxPool.Put(b)
		if cap(s) >= capacity {
			return s[:0]
		}
	}
	if capacity < g.cfg.NodeSize {
		capacity = g.cfg.NodeSize
	}
	return make([]V, 0, capacity)
}

// putValsBuf donates a values array, first clearing it when V can hold
// pointers (so pooled buffers do not pin the values they once held);
// pointer-free value types skip the pass.
func (g *Group[V]) putValsBuf(s []V) {
	if g.valsNeedClear {
		clear(s)
	}
	b, _ := g.valsBoxPool.Get().(*kvBox[V])
	if b == nil {
		b = &kvBox[V]{}
	}
	b.s = s[:0]
	g.valsPool.Put(b)
}

// buildTrie builds a trie over keys into recycled trie storage when the
// pool has any.
func (g *Group[V]) buildTrie(keys []uint64) *trie.Trie {
	t, _ := g.triePool.Get().(*trie.Trie)
	return trie.BuildInto(t, keys)
}
