package core

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"leaplist/internal/epoch"
	"leaplist/internal/stm"
)

// Variant selects the synchronization protocol of a list group. See the
// package documentation for what each variant does.
type Variant int

const (
	// VariantLT is the paper's Leap-LT: COP search + Locking Transactions.
	VariantLT Variant = iota + 1
	// VariantTM is the paper's Leap-tm: whole operations inside one STM
	// transaction.
	VariantTM
	// VariantCOP is the paper's Leap-COP: naked search prefix, validation
	// and writes inside one STM transaction.
	VariantCOP
	// VariantRW is the paper's Leap-rwlock: per-list reader-writer lock.
	VariantRW
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantLT:
		return "Leap-LT"
	case VariantTM:
		return "Leap-tm"
	case VariantCOP:
		return "Leap-COP"
	case VariantRW:
		return "Leap-rwlock"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Defaults mirror the paper's experimental settings (§3, footnote 2:
// "node of size 300, and with a maximal level of 10").
const (
	DefaultNodeSize = 300
	DefaultMaxLevel = 10
)

// MaxKey is the largest storable key; 2^64-1 is reserved for the internal
// +inf sentinel encoding.
const MaxKey = ^uint64(0) - 1

// Errors returned by group and list operations.
var (
	ErrKeyRange      = errors.New("core: key out of range (2^64-1 is reserved)")
	ErrBatchMismatch = errors.New("core: batch slice lengths differ")
	ErrForeignList   = errors.New("core: list does not belong to this group")
	ErrEmptyBatch    = errors.New("core: empty batch")
)

// Config holds the tunables of a list group.
type Config struct {
	// NodeSize is K, the maximum number of key-value pairs per node.
	NodeSize int
	// MaxLevel is the maximum skip-list level.
	MaxLevel int
	// Variant selects the synchronization protocol.
	Variant Variant
	// Collector, when non-nil, receives a Retire call for every node
	// replaced by an update or remove (the paper's "Deallocate unneeded
	// nodes" step under Fraser's allocator).
	Collector *epoch.Collector
	// levelFn overrides random level generation; tests use it for
	// deterministic structure. nil means geometric with p = 1/2.
	levelFn func(maxLevel int) int
}

func (c *Config) normalize() {
	if c.NodeSize <= 0 {
		c.NodeSize = DefaultNodeSize
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = DefaultMaxLevel
	}
	if c.MaxLevel > 62 {
		c.MaxLevel = 62
	}
	if c.Variant == 0 {
		c.Variant = VariantLT
	}
}

// SetLevelFunc overrides random level generation (tests only).
func (c *Config) SetLevelFunc(fn func(maxLevel int) int) {
	c.levelFn = fn
}

// Group is a set of Leap-Lists sharing one STM domain and one
// configuration; Update and Remove compose atomically across the lists of
// one group (the paper's L-Leap-Lists).
type Group[V any] struct {
	cfg Config
	stm *stm.STM

	pool     sync.Pool     // *txState[V] scratch
	opsPool  sync.Pool     // *[]Op[V] scratch for the legacy wrappers
	readPool sync.Pool     // *readScratch[V] scratch
	listIDs  atomic.Uint64 // lock-ordering ids for VariantRW
}

// NewGroup creates a group. A nil domain allocates a private STM.
func NewGroup[V any](cfg Config, domain *stm.STM) *Group[V] {
	cfg.normalize()
	if domain == nil {
		domain = stm.New()
	}
	return &Group[V]{cfg: cfg, stm: domain}
}

// Config returns the group's normalized configuration.
func (g *Group[V]) Config() Config {
	return g.cfg
}

// STM returns the group's transactional memory domain.
func (g *Group[V]) STM() *stm.STM {
	return g.stm
}

// pickLevel draws a skip-list level in [1, MaxLevel] with the usual
// geometric p = 1/2 distribution.
func (g *Group[V]) pickLevel() int {
	if g.cfg.levelFn != nil {
		return g.cfg.levelFn(g.cfg.MaxLevel)
	}
	// TrailingZeros of a uniform word is geometric(1/2).
	lvl := 1 + bits.TrailingZeros64(rand.Uint64()|1<<uint(g.cfg.MaxLevel-1))
	if lvl > g.cfg.MaxLevel {
		lvl = g.cfg.MaxLevel
	}
	return lvl
}

// retire routes a replaced node to the collector, if configured.
func (g *Group[V]) retire(n *node[V]) {
	if c := g.cfg.Collector; c != nil && n != nil {
		c.Retire(nil)
	}
}
