package core

import (
	"testing"
)

// These tests drive the split and merge linking code through each of its
// level-relationship branches deterministically, using an injected level
// function. The branches correspond to the paper's Figure 10 (update
// release: new0 taller vs new1 taller) and Figure 13 (remove release:
// old0 taller vs old1 taller), whose index arithmetic is the most
// delicate code in the protocol.

// scriptedLevels returns levels from a script, then repeats the last.
func scriptedLevels(script ...int) func(int) int {
	i := 0
	return func(maxLevel int) int {
		lvl := script[min(i, len(script)-1)]
		i++
		if lvl > maxLevel {
			lvl = maxLevel
		}
		return lvl
	}
}

func buildForBranches(t *testing.T, v Variant, levels func(int) int) (*Group[uint64], *List[uint64]) {
	t.Helper()
	cfg := Config{NodeSize: 4, MaxLevel: 6, Variant: v}
	cfg.SetLevelFunc(levels)
	g := NewGroup[uint64](cfg, nil)
	return g, g.NewList()
}

// fillNode inserts keys 0..NodeSize-1 so the first real node is exactly
// full; the next insert into its range must split it.
func fillNode(t *testing.T, l *List[uint64]) {
	t.Helper()
	for i := uint64(0); i < uint64(l.g.cfg.NodeSize); i++ {
		if err := l.Set(i*10, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
}

func TestSplitNewLeftTaller(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			// All pre-split nodes at level 1; the split's new left node
			// gets level 5 (> right's inherited level 1).
			levels := scriptedLevels(1, 1, 1, 1, 5)
			_, l := buildForBranches(t, v, levels)
			fillNode(t, l)
			if err := l.Set(15, 99); err != nil { // forces the split
				t.Fatalf("Set: %v", err)
			}
			mustCheck(t, l)
			for i := uint64(0); i < 4; i++ {
				if got, ok := l.Lookup(i * 10); !ok || got != i {
					t.Fatalf("Lookup(%d) = (%d, %v)", i*10, got, ok)
				}
			}
			if got, ok := l.Lookup(15); !ok || got != 99 {
				t.Fatalf("Lookup(15) = (%d, %v)", got, ok)
			}
		})
	}
}

func TestSplitNewRightTaller(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			// Pre-split inserts produce a level-4 node (the first new node
			// created by the first Set grows the +inf node's replacement at
			// level 4); the split's new left node gets level 1 (< right's
			// inherited 4).
			levels := scriptedLevels(4, 4, 4, 4, 1)
			_, l := buildForBranches(t, v, levels)
			fillNode(t, l)
			if err := l.Set(15, 99); err != nil {
				t.Fatalf("Set: %v", err)
			}
			mustCheck(t, l)
			for i := uint64(0); i < 4; i++ {
				if got, ok := l.Lookup(i * 10); !ok || got != i {
					t.Fatalf("Lookup(%d) = (%d, %v)", i*10, got, ok)
				}
			}
			if got, ok := l.Lookup(15); !ok || got != 99 {
				t.Fatalf("Lookup(15) = (%d, %v)", got, ok)
			}
		})
	}
}

func TestSplitEqualLevels(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			levels := scriptedLevels(2)
			_, l := buildForBranches(t, v, levels)
			fillNode(t, l)
			if err := l.Set(15, 99); err != nil {
				t.Fatalf("Set: %v", err)
			}
			mustCheck(t, l)
			if got := l.Len(); got != 5 {
				t.Fatalf("Len = %d, want 5", got)
			}
		})
	}
}

// TestMergeTallerSuccessor drives the remove-merge branch where old1 is
// taller than old0 (replacement takes old1's level; pa validation spans
// [old0.level, old1.level)).
func TestMergeTallerSuccessor(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			// Build two adjacent sparse nodes: left at level 1, right at
			// level 5, each with few enough keys that removing from the
			// left merges them.
			levels := scriptedLevels(
				5, // replacement of +inf node for first batch of inserts
				1, // split left node -> level 1 (holds low keys)
			)
			_, l := buildForBranches(t, v, levels)
			// Fill one node (level 5 via first replacement), then split so
			// the left half is level 1 and right half level 5.
			fillNode(t, l)
			if err := l.Set(15, 99); err != nil {
				t.Fatalf("Set: %v", err)
			}
			mustCheck(t, l)
			before := l.NodeCount()
			// Drain keys; merges must traverse the taller-successor path
			// at least once given the level layout.
			for _, k := range []uint64{0, 10, 15, 20, 30} {
				if changed, err := l.Delete(k); err != nil || !changed {
					t.Fatalf("Delete(%d) = (%v, %v)", k, changed, err)
				}
				mustCheck(t, l)
			}
			if got := l.Len(); got != 0 {
				t.Fatalf("Len = %d, want 0", got)
			}
			if l.NodeCount() >= before {
				t.Fatalf("no merge happened (nodes %d -> %d)", before, l.NodeCount())
			}
		})
	}
}

// TestMergeTallerPredecessor drives the branch where old0 is taller than
// old1 (replacement keeps old0's level and its upper next pointers).
func TestMergeTallerPredecessor(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			levels := scriptedLevels(
				1, // +inf replacement stays low... but +inf keeps its own level (max);
				5, // split left node -> level 5 (holds low keys)
			)
			_, l := buildForBranches(t, v, levels)
			fillNode(t, l)
			if err := l.Set(15, 99); err != nil {
				t.Fatalf("Set: %v", err)
			}
			mustCheck(t, l)
			for _, k := range []uint64{30, 20, 15, 10, 0} {
				if changed, err := l.Delete(k); err != nil || !changed {
					t.Fatalf("Delete(%d) = (%v, %v)", k, changed, err)
				}
				mustCheck(t, l)
			}
			if got := l.Len(); got != 0 {
				t.Fatalf("Len = %d, want 0", got)
			}
		})
	}
}

// TestUpdateFullNodeExistingKey exercises the paper's eager split: an
// overwrite of a key in a full node still splits (Figure 8 decides on
// count before knowing the key exists).
func TestUpdateFullNodeExistingKey(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			_, l := buildForBranches(t, v, scriptedLevels(2))
			fillNode(t, l)
			mustCheck(t, l)
			if err := l.Set(10, 777); err != nil { // existing key, full node
				t.Fatalf("Set: %v", err)
			}
			mustCheck(t, l)
			if got, ok := l.Lookup(10); !ok || got != 777 {
				t.Fatalf("Lookup(10) = (%d, %v)", got, ok)
			}
			if got := l.Len(); got != 4 {
				t.Fatalf("Len = %d, want 4 (overwrite must not duplicate)", got)
			}
		})
	}
}

// TestRemoveFromEmptyTerminal removes against the keyless +inf node.
func TestRemoveFromEmptyTerminal(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			_, l := buildForBranches(t, v, scriptedLevels(2))
			if changed, err := l.Delete(12345); err != nil || changed {
				t.Fatalf("Delete on empty = (%v, %v)", changed, err)
			}
			mustCheck(t, l)
		})
	}
}

// TestEmptyMiddleNodeRemainsUsable drains a node to zero keys without a
// merge partner small enough, then inserts back into its range.
func TestEmptyMiddleNodeRemainsUsable(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			g := NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: v}, nil)
			l := g.NewList()
			// Three full nodes worth of keys.
			for i := uint64(0); i < 12; i++ {
				if err := l.Set(i, i); err != nil {
					t.Fatalf("Set: %v", err)
				}
			}
			mustCheck(t, l)
			// Drain a middle stretch; merges may leave empty nodes when
			// neighbors are full — either way invariants must hold and
			// the range must stay insertable.
			for i := uint64(4); i < 8; i++ {
				if _, err := l.Delete(i); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				mustCheck(t, l)
			}
			for i := uint64(4); i < 8; i++ {
				if err := l.Set(i, i*2); err != nil {
					t.Fatalf("re-Set: %v", err)
				}
			}
			mustCheck(t, l)
			if got := l.Len(); got != 12 {
				t.Fatalf("Len = %d, want 12", got)
			}
		})
	}
}
