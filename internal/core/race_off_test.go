//go:build !race

package core

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation allocates; allocation-budget tests skip.
const raceEnabled = false
