package core

import "testing"

// findEmptyPair walks l's level-0 chain and returns the highs of the
// first two adjacent empty non-terminal nodes, or ok = false.
func findEmptyPair(l *List[uint64]) (h1, h2 uint64, ok bool) {
	for x := l.head.next[0].PeekPtr(); x != nil && x.high != posInf; x = x.next[0].PeekPtr() {
		if x.count() != 0 {
			continue
		}
		nx := x.next[0].PeekPtr()
		if nx != nil && nx.high != posInf && nx.count() == 0 {
			return x.high, nx.high, true
		}
	}
	return 0, 0, false
}

// countEmpties counts the empty non-terminal nodes of l's level-0 chain.
func countEmpties(l *List[uint64]) int {
	n := 0
	for x := l.head.next[0].PeekPtr(); x != nil && x.high != posInf; x = x.next[0].PeekPtr() {
		if x.count() == 0 {
			n++
		}
	}
	return n
}

// TestAbsorbHintSplicesLingeringEmpties drives the scheduled-absorb
// cycle end to end: two exact-node DeleteRanges leave two adjacent
// empty nodes that no opportunistic absorb reaches, a snapshot read
// detects them and posts the hint, a write batch planning PAST the
// region drops the hint without splicing (the batch re-planned that
// area), a second snapshot re-detects, and a write batch planning
// BEFORE the region consumes the hint and splices the whole empty run
// out with one injected entry. Read-only traffic must leave the hint
// alone throughout.
func TestAbsorbHintSplicesLingeringEmpties(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		// Seed in one batch: the coalesced insert splits into 3-key
		// pieces (3K/4 of NodeSize 4), unlike ascending single Sets
		// whose steady state is 2-key nodes that any absorb could merge.
		const n = 200
		seed := make([]Op[uint64], n)
		for k := uint64(0); k < n; k++ {
			seed[k] = Op[uint64]{List: l, Kind: OpSet, Key: k, Val: k}
		}
		if err := g.CommitOps(seed); err != nil {
			t.Fatalf("seed CommitOps: %v", err)
		}
		// Pick adjacent interior nodes A, B whose neighbor counts veto
		// every merge path (A+B > NodeSize and B+C > NodeSize), so
		// emptying A then B leaves both replacements lingering.
		var a, bn, c *node[uint64]
		for x := l.head.next[0].PeekPtr(); x != nil && x.high != posInf; x = x.next[0].PeekPtr() {
			nx := x.next[0].PeekPtr()
			if nx == nil || nx.high == posInf {
				break
			}
			nnx := nx.next[0].PeekPtr()
			if nnx == nil || nnx.high == posInf {
				break
			}
			if x.count()+nx.count() > g.cfg.NodeSize && nx.count()+nnx.count() > g.cfg.NodeSize &&
				x.keys[0] > 0 {
				a, bn, c = x, nx, nnx
				break
			}
		}
		if a == nil {
			t.Fatalf("no merge-proof adjacent node pair in a %d-key seed", n)
		}
		_ = c
		aHigh, bHigh := a.high, bn.high
		for _, span := range [][2]uint64{
			{toPublic(a.keys[0]), toPublic(a.high)},
			{toPublic(bn.keys[0]), toPublic(bn.high)},
		} {
			ops := []Op[uint64]{{List: l, Kind: OpDeleteRange, Key: span[0], KeyHi: span[1]}}
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("DeleteRange [%d,%d]: %v", span[0], span[1], err)
			}
		}
		if h1, h2, ok := findEmptyPair(l); !ok || h1 != aHigh || h2 != bHigh {
			t.Fatalf("exact-node deletes left empty pair (%d,%d,%v); want (%d,%d,true)",
				h1, h2, ok, aHigh, bHigh)
		}

		// A snapshot read crossing the pair posts the hint.
		if got := l.absorbHint.Load(); got != 0 {
			t.Fatalf("hint set to %d before any snapshot", got)
		}
		l.CollectRange(0, MaxKey)
		if got := l.absorbHint.Load(); got != aHigh {
			t.Fatalf("snapshot posted hint %d, want first empty's high %d", got, aHigh)
		}

		// Read-only batches leave the hint for a real writer.
		rops := []Op[uint64]{{List: l, Kind: OpGet, Key: 0}}
		if err := g.CommitOps(rops); err != nil {
			t.Fatalf("read-only CommitOps: %v", err)
		}
		if got := l.absorbHint.Load(); got != aHigh {
			t.Fatalf("read-only batch moved the hint to %d", got)
		}

		// A write planning past the region drops the hint unconsumed.
		if err := l.Set(n-1, 1); err != nil {
			t.Fatalf("Set past region: %v", err)
		}
		if got := l.absorbHint.Load(); got != 0 {
			t.Fatalf("write past the region left hint %d", got)
		}
		if h1, _, ok := findEmptyPair(l); !ok || h1 != aHigh {
			t.Fatalf("write past the region spliced the empties (pair %d, ok=%v)", h1, ok)
		}

		// Re-detect, then a write planning before the region consumes the
		// hint: the injected entry splices the whole empty run.
		l.CollectRange(0, MaxKey)
		if got := l.absorbHint.Load(); got != aHigh {
			t.Fatalf("second snapshot posted hint %d, want %d", got, aHigh)
		}
		if err := l.Set(0, 1); err != nil {
			t.Fatalf("Set before region: %v", err)
		}
		if got := l.absorbHint.Load(); got != 0 {
			t.Fatalf("consuming write left hint %d", got)
		}
		if got := countEmpties(l); got != 0 {
			t.Fatalf("%d empty nodes linger after the scheduled absorb", got)
		}
		mustCheck(t, l)
		if v, ok := l.Lookup(0); !ok || v != 1 {
			t.Errorf("Lookup(0) = %d,%v after absorb; want 1,true", v, ok)
		}
		if _, ok := l.Lookup(toPublic(aHigh)); ok {
			t.Errorf("deleted key %d reappeared after absorb", toPublic(aHigh))
		}
	})
}
