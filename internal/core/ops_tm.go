package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Leap-tm variant over the generalized
// batch: the entire operation — predecessor searches included — runs
// inside one STM transaction, which the STM re-executes on conflict.
//
// Because every read is instrumented and the transaction reads its own
// buffered writes, groups are planned and applied sequentially: each
// group's search traverses the structure as already modified by the
// groups before it (buffered pointer swings bypass nodes the batch has
// retired), so no cross-group resolution is needed — the per-group
// validate/apply halves are shared with COP and hold trivially against
// the transaction's own consistent view.

// commitTM runs the generalized batch inside one transaction.
func (g *Group[V]) commitTM(ops []Op[V], b *txState[V]) {
	err := g.stm.Atomically(func(tx *stm.Tx) error {
		// Every attempt rebuilds its plan from freshly read state
		// (planGroups resets the entry count). A re-execution first
		// recycles the pieces the aborted attempt built — its buffered
		// writes were discarded, so they were never published.
		g.releasePlan(b)
		return g.planGroups(ops, b, planTxMode, tx,
			func(l *List[V], k uint64, e *txEntry[V]) error {
				return searchTx(tx, l, k, e.pa, e.na)
			},
			func(t int) error {
				if !b.entries[t].write {
					return nil
				}
				if err := g.validateEntryTx(tx, b, t); err != nil {
					return err
				}
				return g.applyEntryTx(tx, b, t)
			})
	})
	if err != nil {
		// Atomically only surfaces non-conflict errors, and the closure
		// produces none besides conflicts.
		panic("core: unreachable commitTM error: " + err.Error())
	}
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if e.write {
			g.retireNode(b, e.n)
			if e.merge {
				g.retireNode(b, e.old1)
			}
		}
	}
}
