package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Leap-tm variant: the entire operation —
// predecessor search included — runs inside one STM transaction, which the
// STM re-executes on conflict. It reuses the transactional write halves of
// the COP variant; the only difference is that the search phase is
// instrumented too, so the per-operation read set covers the whole
// traversal, which is exactly the overhead the paper measures against.

// updateTM is the composed update across the lists of one batch.
func (g *Group[V]) updateTM(ls []*List[V], ks []uint64, vs []V) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	// Atomically re-runs the whole closure on conflict; every attempt
	// rebuilds its replacement nodes from freshly read state.
	err := g.stm.Atomically(func(tx *stm.Tx) error {
		for j := 0; j < s; j++ {
			k := toInternal(ks[j])
			if err := searchTx(tx, ls[j], k, b.pa[j], b.na[j]); err != nil {
				return err
			}
			n := b.na[j][0]
			b.n[j] = n
			if n.count() == g.cfg.NodeSize {
				b.split[j] = true
				b.new1[j] = newNode[V](n.level)
				b.new0[j] = newNode[V](g.pickLevel())
				b.maxH[j] = max(b.new0[j].level, b.new1[j].level)
			} else {
				b.split[j] = false
				b.new0[j] = newNode[V](n.level)
				b.new1[j] = nil
				b.maxH[j] = n.level
			}
			createNewNodes(n, k, vs[j], b.split[j], b.new0[j], b.new1[j])
			if err := g.updateTxWrites(tx, b, j); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		// Atomically only surfaces non-conflict errors, and the closure
		// produces none besides conflicts.
		panic("core: unreachable updateTM error: " + err.Error())
	}
	for j := 0; j < s; j++ {
		g.retire(b.n[j])
	}
}

// removeTM is the composed remove across the lists of one batch.
func (g *Group[V]) removeTM(ls []*List[V], ks []uint64, changed []bool) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	err := g.stm.Atomically(func(tx *stm.Tx) error {
		for j := 0; j < s; j++ {
			k := toInternal(ks[j])
			if err := searchTx(tx, ls[j], k, b.pa[j], b.na[j]); err != nil {
				return err
			}
			old0 := b.na[j][0]
			b.n[j] = old0
			if old0.find(k) < 0 {
				b.changed[j] = false
				b.old1[j] = nil
				continue
			}
			old1, _, err := old0.next[0].Load(tx)
			if err != nil {
				return err
			}
			b.old1[j] = old1
			b.merge[j] = false
			total := old0.count()
			if old1 != nil {
				total += old1.count()
				if total <= g.cfg.NodeSize {
					b.merge[j] = true
				}
			}
			lvl := old0.level
			if b.merge[j] && old1.level > lvl {
				lvl = old1.level
			}
			repl := newNode[V](lvl)
			b.changed[j] = removeAndMerge(old0, old1, k, b.merge[j], repl)
			b.new0[j] = repl
			if err := g.removeTxWrites(tx, b, j); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		panic("core: unreachable removeTM error: " + err.Error())
	}
	for j := 0; j < s; j++ {
		changed[j] = b.changed[j]
		if b.changed[j] {
			g.retire(b.n[j])
			if b.merge[j] {
				g.retire(b.old1[j])
			}
		}
	}
}
