package core

import (
	"leaplist/internal/stm"
)

// This file implements the paper's Leap-tm variant over the generalized
// batch as the three-phase committer: the entire operation — predecessor
// searches included — runs inside one STM transaction, re-executed from
// scratch on conflict. The prepare phase leaves that transaction
// prepared rather than committed (write locks held, read set validated
// — and locked, under PrepareOpts.LockReads); publish is the STM
// write-back, whose clock bump is the linearization point, and abort
// discards the buffered writes with nothing ever visible.
//
// Because every read is instrumented and the transaction reads its own
// buffered writes, groups are planned and applied sequentially: each
// group's search traverses the structure as already modified by the
// groups before it (buffered pointer swings bypass nodes the batch has
// retired), so no cross-group resolution is needed — the per-group
// validate/apply halves are shared with COP and hold trivially against
// the transaction's own consistent view.

// tmCommitter drives the generalized batch inside one transaction.
type tmCommitter[V any] struct{ g *Group[V] }

func (c tmCommitter[V]) prepare(ops []Op[V], b *txState[V], opt PrepareOpts) error {
	g := c.g
	for attempt := 0; ; attempt++ {
		// Exit paths here must first recycle the last failed attempt's
		// pieces, still staged on the entries — exactly like the
		// per-iteration release below.
		if err := opt.cancelErr(); err != nil {
			g.releasePlan(b)
			g.stm.NoteTimeoutAbort()
			return err
		}
		if opt.MaxAttempts > 0 && attempt >= opt.MaxAttempts {
			g.releasePlan(b)
			g.stm.NotePrepareConflict()
			return ErrPrepareConflict
		}
		if err := fpEval(fpTMPrepare); err != nil {
			g.releasePlan(b)
			return err
		}
		// Every attempt rebuilds its plan from freshly read state
		// (planGroups resets the entry count). A retry first recycles the
		// pieces the failed attempt built — its buffered writes were
		// discarded, so they were never published.
		g.releasePlan(b)
		err := g.stm.PrepareOnce(&b.prep, opt.LockReads, func(tx *stm.Tx) error {
			return g.planGroups(ops, b, planTxMode, tx,
				func(l *List[V], k uint64, e *txEntry[V], seed []*node[V]) error {
					return searchTxSeeded(tx, l, k, e.pa, e.na, seed, l.id)
				},
				func(t int) error {
					if !b.entries[t].write {
						return nil
					}
					if err := g.validateEntryTx(tx, b, t); err != nil {
						return err
					}
					return g.applyEntryTx(tx, b, t)
				})
		})
		if err == nil {
			if attempt > 0 {
				g.stm.NoteRetries(uint64(attempt))
			}
			return nil
		}
		if !stm.IsConflict(err) {
			// The closure produces no errors besides conflicts.
			panic("core: unreachable TM prepare error: " + err.Error())
		}
		b.fSeedOK = false
		stmBackoff(attempt)
	}
}

func (c tmCommitter[V]) publish(ops []Op[V], b *txState[V]) {
	g := c.g
	// Last point where the batch is still invisible (write locks held,
	// nothing published).
	fpHit(fpTMPublish)
	if g.bundles() {
		// Bundle phase A under the prepared write locks, as in COP. A TM
		// entry's pa[0] can be an earlier entry's still-private piece (the
		// transactional search walks the batch's own buffered swings); the
		// pred-link record then lands above that piece's birth record with
		// the same timestamp, and newest-first order picks the right one.
		g.bunPublishStart(b)
	}
	c.publishAt(ops, b, 0)
}

// publishAt is the post-phase-A half of publish; ts semantics exactly
// as for copCommitter.publishAt.
func (c tmCommitter[V]) publishAt(ops []Op[V], b *txState[V], ts uint64) {
	g := c.g
	if ts == 0 {
		ts = b.prep.Publish()
	} else {
		b.prep.PublishAt(ts)
	}
	if g.bundles() {
		g.bunFillAll(b, ts)
	}
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if e.write {
			if e.runEnd != nil {
				g.retireRun(b, e.n, e.runEnd)
				continue
			}
			g.retireNode(b, e.n)
			if e.merge {
				g.retireNode(b, e.old1)
			}
		}
	}
	g.indexPublish(ops, b)
}

func (c tmCommitter[V]) abort(ops []Op[V], b *txState[V]) {
	fpHit(fpTMAbort)
	b.prep.Abort()
	c.g.releasePlan(b)
}
