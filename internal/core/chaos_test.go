//go:build failpoint

package core

// Chaos suite for the core commit pipeline, built only with -tags
// failpoint. Each scenario arms named sites (see failpoints.go) and
// proves a pipeline-level invariant holds under the injected fault:
// errors surface without corrupting state, aborts restore the exact
// pre-state and leak no pooled pieces, a stalled publish leaves the
// frozen cut readable, and a deliberately broken abort (the mutation
// switch) is caught — evidence the suite's oracles have teeth.

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leaplist/internal/failpoint"
)

// variantSites returns the prepare/publish/abort site names of v.
func variantSites(v Variant) (prepare, publish, abort string) {
	switch v {
	case VariantLT:
		return fpLTPrepare, fpLTPublish, fpLTAbort
	case VariantCOP:
		return fpCOPPrepare, fpCOPPublish, fpCOPAbort
	case VariantTM:
		return fpTMPrepare, fpTMPublish, fpTMAbort
	case VariantRW:
		return fpRWPrepare, fpRWPublish, fpRWAbort
	}
	panic("unknown variant")
}

// collectAll snapshots a list's full contents for exact-state oracles.
func collectAll(l *List[uint64]) []KV[uint64] {
	return l.CollectRange(0, MaxKey)
}

func sameKVs(a, b []KV[uint64]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitPausedAt polls until n goroutines are blocked at the site.
func waitPausedAt(t *testing.T, site string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for failpoint.PausedAt(site) < n {
		if time.Now().After(deadline) {
			t.Fatalf("no goroutine paused at %s within 5s", site)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosInjectedPrepareError proves an injected prepare failure on
// every variant surfaces to the caller, leaves the list exactly in its
// pre-batch state with the footprint fully unlocked, and that the same
// batch commits cleanly once the site is disarmed.
func TestChaosInjectedPrepareError(t *testing.T) {
	errBoom := errors.New("chaos: injected prepare fault")
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		failpoint.Reset()
		t.Cleanup(failpoint.Reset)
		l := loadSixteen(t, g)
		before := collectAll(l)
		prepare, _, _ := variantSites(g.cfg.Variant)
		failpoint.Arm(prepare, failpoint.Spec{
			Action: failpoint.ActError, Err: errBoom, Count: 1,
		})
		ops := []Op[uint64]{
			{List: l, Kind: OpDeleteRange, Key: 4, KeyHi: 11},
			{List: l, Kind: OpSet, Key: 100, Val: 100},
		}
		if err := g.CommitOps(ops); !errors.Is(err, errBoom) {
			t.Fatalf("CommitOps under injection = %v, want %v", err, errBoom)
		}
		if got := collectAll(l); !sameKVs(got, before) {
			t.Fatalf("injected prepare error changed state: %v, want %v", got, before)
		}
		mustCheck(t, l)
		// The failed prepare held nothing: the identical batch commits.
		failpoint.Disarm(prepare)
		if err := g.CommitOps(ops); err != nil {
			t.Fatalf("CommitOps after disarm: %v", err)
		}
		if _, ok := l.Lookup(7); ok {
			t.Fatal("key 7 survived the re-committed DeleteRange")
		}
		mustCheck(t, l)
	})
}

// TestChaosStalledPublishFrozenCut pauses a commit at the publish
// boundary — prepared, invisible — and proves a snapshot drawn during
// the stall is the exact pre-batch cut, stays that cut after the
// publish completes, and that the new state appears under a fresh
// timestamp. VariantRW is exempt: its paused publish still holds the
// list write locks, so only the timestamped chain (which the paused
// batch has not touched yet) would be readable, and the variant's
// all-or-none behavior is covered by the facade chaos suite.
func TestChaosStalledPublishFrozenCut(t *testing.T) {
	for _, v := range []Variant{VariantLT, VariantCOP, VariantTM} {
		t.Run(v.String(), func(t *testing.T) {
			failpoint.Reset()
			t.Cleanup(failpoint.Reset)
			g := newTestGroup(t, v)
			l := loadSixteen(t, g)
			before := collectAll(l)
			_, publish, _ := variantSites(v)
			failpoint.Arm(publish, failpoint.Spec{
				Action: failpoint.ActPause, Count: 1,
			})
			done := make(chan error, 1)
			go func() {
				done <- g.CommitOps([]Op[uint64]{
					{List: l, Kind: OpSet, Key: 5, Val: 500},
					{List: l, Kind: OpSet, Key: 100, Val: 100},
				})
			}()
			waitPausedAt(t, publish, 1)

			// The batch is prepared but invisible: a snapshot timestamp
			// drawn now must resolve to the exact pre-batch cut.
			pin := g.PinReads()
			s := g.Now()
			frozen := pin.CollectRangeIntoAsOf(l, 0, MaxKey, s, nil)
			if !sameKVs(frozen, before) {
				t.Errorf("frozen cut during stalled publish = %v, want %v", frozen, before)
			}
			// (Naked lookups of replaced nodes legitimately wait out the
			// publish; disjoint-region availability during a held prepare
			// is covered by TestPreparedWindowConcurrentReaders. The
			// timestamped path above never waits: it reads through marks
			// and dead nodes by construction.)

			failpoint.Release(publish)
			if err := <-done; err != nil {
				t.Fatalf("stalled CommitOps: %v", err)
			}
			// The old cut is immutable: re-reading at s under the same pin
			// still yields the pre-batch state, while current reads see
			// the published batch.
			frozen = pin.CollectRangeIntoAsOf(l, 0, MaxKey, s, frozen[:0])
			if !sameKVs(frozen, before) {
				t.Errorf("cut at %d changed after publish: %v, want %v", s, frozen, before)
			}
			pin.Unpin()
			if got, ok := l.Lookup(5); !ok || got != 500 {
				t.Fatalf("Lookup(5) after release = (%d, %v), want (500, true)", got, ok)
			}
			if got, ok := l.Lookup(100); !ok || got != 100 {
				t.Fatalf("Lookup(100) after release = (%d, %v), want (100, true)", got, ok)
			}
			mustCheck(t, l)
		})
	}
}

// TestChaosAbortUnderYieldRestoresAndRecycles aborts a structural batch
// while yield storms stretch the abort and bundle windows, then checks
// the exact-undo and piece-recycling oracles from the untagged suite
// still hold: nothing about scheduling pressure may change what abort
// restores or leaks.
func TestChaosAbortUnderYieldRestoresAndRecycles(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		failpoint.Reset()
		t.Cleanup(failpoint.Reset)
		_, _, abort := variantSites(g.cfg.Variant)
		for _, site := range []string{abort, fpBundlePend, fpBundleFill, fpBundleDeathFold} {
			failpoint.Arm(site, failpoint.Spec{Action: failpoint.ActYield, Yield: 4})
		}
		l := loadSixteen(t, g)
		before := collectAll(l)
		ops := []Op[uint64]{
			{List: l, Kind: OpDeleteRange, Key: 4, KeyHi: 11},
			{List: l, Kind: OpSet, Key: 0, Val: 42},
			{List: l, Kind: OpSet, Key: 20, Val: 20},
		}
		p, err := g.PrepareOps(ops, PrepareOpts{})
		if err != nil {
			t.Fatalf("PrepareOps: %v", err)
		}
		donated := map[*node[uint64]]bool{}
		for _, e := range p.b.entries[:p.b.nEnt] {
			for _, piece := range e.pieces {
				donated[piece] = true
			}
		}
		if len(donated) == 0 {
			t.Fatal("prepare built no pieces")
		}
		p.Abort()
		if failpoint.Hits(abort) == 0 {
			t.Fatalf("abort site %s never evaluated", abort)
		}
		if got := collectAll(l); !sameKVs(got, before) {
			t.Fatalf("abort under yield changed state: %v, want %v", got, before)
		}
		mustCheck(t, l)
		// Under the race detector sync.Pool drops a random fraction of
		// Puts, so the exact recycler count only holds in a normal build.
		if !raceEnabled {
			found := 0
			for i := 0; i < 2*len(donated); i++ {
				n, _ := g.shellPool.Get().(*node[uint64])
				if n == nil {
					break
				}
				if donated[n] {
					found++
				}
			}
			if found != len(donated) {
				t.Fatalf("recycler holds %d of %d aborted pieces", found, len(donated))
			}
		}
	})
}

// TestChaosYieldStormCoverage arms every core pipeline site plus the
// epoch sites with yield storms and drives concurrent mixed load plus
// explicit prepare/abort cycles over every variant, then asserts the
// storm actually evaluated at least 12 distinct sites — the floor that
// keeps the suite honest about exercising the whole pipeline rather
// than a corner of it.
func TestChaosYieldStormCoverage(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	shared := []string{
		fpBundlePend, fpBundleFill, fpBundleDeathFold, fpIndexPublish,
		"epoch/advance", "epoch/retire",
	}
	var tracked []string
	tracked = append(tracked, shared...)
	for _, site := range shared {
		failpoint.Arm(site, failpoint.Spec{Action: failpoint.ActYield, Yield: 2})
	}
	for _, v := range allVariants {
		prepare, publish, abort := variantSites(v)
		tracked = append(tracked, prepare, publish, abort)
		for _, site := range []string{prepare, publish, abort} {
			failpoint.Arm(site, failpoint.Spec{Action: failpoint.ActYield, Yield: 2})
		}
		g := newTestGroup(t, v)
		l := loadSixteen(t, g)
		var wg sync.WaitGroup
		var fails atomic.Uint64
		iters := 120
		if testing.Short() {
			iters = 30
		}
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					k := (seed*131 + uint64(i)*7) % 64
					switch i % 3 {
					case 0:
						if err := g.CommitOps([]Op[uint64]{
							{List: l, Kind: OpSet, Key: k, Val: k + 1},
							{List: l, Kind: OpDelete, Key: (k + 32) % 64},
						}); err != nil {
							fails.Add(1)
						}
					case 1:
						p, err := g.PrepareOps([]Op[uint64]{
							{List: l, Kind: OpSet, Key: k + 100, Val: k},
						}, PrepareOpts{MaxAttempts: 1 << 16})
						if err != nil {
							// A bounded prepare may legitimately conflict
							// under the storm; anything else is a failure.
							if !errors.Is(err, ErrPrepareConflict) {
								fails.Add(1)
							}
							continue
						}
						p.Abort()
					case 2:
						l.Lookup(k)
						l.CollectRange(k, k+8)
					}
				}
			}(uint64(w))
		}
		wg.Wait()
		if n := fails.Load(); n > 0 {
			t.Fatalf("%s: %d operations failed under pure yield injection (no errors were armed)", v, n)
		}
		mustCheck(t, l)
	}
	covered := 0
	for _, site := range tracked {
		if failpoint.Hits(site) > 0 {
			covered++
		} else {
			t.Logf("site %s: no hits", site)
		}
	}
	if covered < 12 {
		t.Fatalf("yield storm evaluated %d distinct sites, want >= 12 (of %d tracked)", covered, len(tracked))
	}
}

// TestChaosMutationBrokenAbortCaught arms the mutation switch that makes
// the LT abort skip its revive pass — a deliberately broken undo — and
// proves the suite's oracle catches the damage: the aborted footprint's
// nodes stay dead, which CheckInvariants must report. If this test ever
// finds the invariant checker silent, the chaos oracles have lost their
// teeth.
func TestChaosMutationBrokenAbortCaught(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	g := newTestGroup(t, VariantLT)
	l := loadSixteen(t, g)
	p, err := g.PrepareOps([]Op[uint64]{
		{List: l, Kind: OpDeleteRange, Key: 4, KeyHi: 11},
		{List: l, Kind: OpDelete, Key: 15},
	}, PrepareOpts{})
	if err != nil {
		t.Fatalf("PrepareOps: %v", err)
	}
	failpoint.Arm(fpLTAbortSkipRevive, failpoint.Spec{
		Action: failpoint.ActError, Count: 1,
	})
	p.Abort()
	if err := l.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants accepted a broken abort (revive pass skipped): the mutation went undetected")
	} else if got := err.Error(); !strings.Contains(got, "not live") {
		t.Fatalf("CheckInvariants = %q, want a dead-node finding", got)
	}
}
