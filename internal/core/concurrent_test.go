package core

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// stressIters scales the concurrent workloads down under -short and -race.
func stressIters(full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

// TestConcurrentMixedOps hammers one list per variant with a mixed
// workload, then verifies structural invariants and key accounting.
func TestConcurrentMixedOps(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const workers = 8
		const keySpace = 256
		iters := stressIters(3000)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 99))
				for i := 0; i < iters; i++ {
					k := r.Uint64N(keySpace)
					switch r.IntN(10) {
					case 0, 1, 2, 3:
						if err := l.Set(k, k*2); err != nil {
							t.Errorf("Set: %v", err)
							return
						}
					case 4, 5, 6:
						if _, err := l.Delete(k); err != nil {
							t.Errorf("Delete: %v", err)
							return
						}
					case 7, 8:
						if v, ok := l.Lookup(k); ok && v != k*2 {
							t.Errorf("Lookup(%d) = %d, want %d", k, v, k*2)
							return
						}
					case 9:
						lo := r.Uint64N(keySpace)
						hi := lo + r.Uint64N(32)
						l.RangeQuery(lo, hi, func(k uint64, v uint64) bool {
							if v != k*2 {
								t.Errorf("range value for %d = %d, want %d", k, v, k*2)
							}
							return true
						})
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		mustCheck(t, l)
	})
}

// TestSnapshotPrefixConsistency checks linearizability of range queries:
// one writer inserts keys in ascending order, so any linearizable full
// snapshot must be a gapless prefix {0, 1, ..., m-1}. A non-atomic scan
// (like the paper's Skip-cas baseline) can violate this by missing a key
// that was present before one it reports.
func TestSnapshotPrefixConsistency(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const total = 600
		n := stressIters(total)
		if n < 50 {
			n = 50
		}

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := l.Set(uint64(i), uint64(i)); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
			}
		}()
		var snapshots atomic.Int64
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var keys []uint64
					l.RangeQuery(0, uint64(n), func(k uint64, v uint64) bool {
						keys = append(keys, k)
						return true
					})
					snapshots.Add(1)
					for i, k := range keys {
						if k != uint64(i) {
							t.Errorf("snapshot gap: position %d holds %d (len %d)", i, k, len(keys))
							return
						}
					}
				}
			}()
		}
		// Wait for the writer to finish by polling the key count.
		for l.Len() < n {
			runtime.Gosched()
		}
		close(stop)
		wg.Wait()
		if snapshots.Load() == 0 {
			t.Fatal("no snapshots taken during insertion")
		}
		mustCheck(t, l)
	})
}

// TestBatchAtomicityAcrossLists verifies composed updates are all-or-
// nothing: workers write the same value to one key in two lists in a
// single batch; at quiescence both lists must agree for every key.
func TestBatchAtomicityAcrossLists(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l1, l2 := g.NewList(), g.NewList()
		ls := []*List[uint64]{l1, l2}
		const workers = 6
		const keySpace = 64
		iters := stressIters(2000)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 7))
				ks := make([]uint64, 2)
				vs := make([]uint64, 2)
				for i := 0; i < iters; i++ {
					k := r.Uint64N(keySpace)
					v := r.Uint64()
					ks[0], ks[1] = k, k
					vs[0], vs[1] = v, v
					if r.IntN(4) == 0 {
						if err := g.Remove(ls, ks, nil); err != nil {
							t.Errorf("Remove: %v", err)
							return
						}
					} else {
						if err := g.Update(ls, ks, vs); err != nil {
							t.Errorf("Update: %v", err)
							return
						}
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		mustCheck(t, l1)
		mustCheck(t, l2)
		for k := uint64(0); k < keySpace; k++ {
			v1, ok1 := l1.Lookup(k)
			v2, ok2 := l2.Lookup(k)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("lists diverge at key %d: (%d,%v) vs (%d,%v)", k, v1, ok1, v2, ok2)
			}
		}
	})
}

// TestConcurrentFourListWorkload runs the paper's experimental shape — L=4
// lists, batches touching all four, mixed with lookups and range queries —
// and validates every list afterwards.
func TestConcurrentFourListWorkload(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		const L = 4
		ls := make([]*List[uint64], L)
		for i := range ls {
			ls[i] = g.NewList()
		}
		const workers = 8
		const keySpace = 512
		iters := stressIters(1500)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 3))
				ks := make([]uint64, L)
				vs := make([]uint64, L)
				for i := 0; i < iters; i++ {
					switch r.IntN(10) {
					case 0, 1, 2:
						for j := range ks {
							ks[j] = r.Uint64N(keySpace)
							vs[j] = r.Uint64()
						}
						if err := g.Update(ls, ks, vs); err != nil {
							t.Errorf("Update: %v", err)
							return
						}
					case 3, 4:
						for j := range ks {
							ks[j] = r.Uint64N(keySpace)
						}
						if err := g.Remove(ls, ks, nil); err != nil {
							t.Errorf("Remove: %v", err)
							return
						}
					case 5, 6, 7:
						ls[r.IntN(L)].Lookup(r.Uint64N(keySpace))
					default:
						lo := r.Uint64N(keySpace)
						ls[r.IntN(L)].RangeQuery(lo, lo+r.Uint64N(64), nil)
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		for i := range ls {
			mustCheck(t, ls[i])
		}
	})
}

// TestConcurrentSameKeyContention focuses every worker on a tiny key space
// to maximize node-level conflicts (splits and merges of the same nodes).
func TestConcurrentSameKeyContention(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const workers = 8
		iters := stressIters(2000)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 11))
				for i := 0; i < iters; i++ {
					k := r.Uint64N(8) // all traffic within one or two nodes
					if r.IntN(2) == 0 {
						if err := l.Set(k, k); err != nil {
							t.Errorf("Set: %v", err)
							return
						}
					} else {
						if _, err := l.Delete(k); err != nil {
							t.Errorf("Delete: %v", err)
							return
						}
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		mustCheck(t, l)
	})
}
