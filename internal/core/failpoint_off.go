//go:build !failpoint

package core

// Normal-build failpoint shims: both inline to nothing, so instrumented
// pipeline sites cost zero. See internal/failpoint.

func fpEval(string) error { return nil }

func fpHit(string) {}
