package core

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// newIdxTestGroups builds an index-on and an index-off group with
// otherwise identical configuration — the A/B pair of the parity oracle.
func newIdxTestGroups(v Variant) (on, off *Group[uint64]) {
	on = NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: v}, nil)
	off = NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: v, NoHashIndex: true}, nil)
	return on, off
}

// TestHashIndexParityOracle drives an identical deterministic operation
// mix against an index-on and an index-off list and requires every
// result — lookups, range collections, delete reports — to agree. The
// index is a pure accelerator: results must be identical either way.
func TestHashIndexParityOracle(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			gOn, gOff := newIdxTestGroups(v)
			lOn, lOff := gOn.NewList(), gOff.NewList()
			r := rand.New(rand.NewPCG(7, 11))
			for i := 0; i < 4000; i++ {
				k := r.Uint64N(256)
				switch r.IntN(5) {
				case 0, 1:
					val := r.Uint64()
					if err := lOn.Set(k, val); err != nil {
						t.Fatalf("Set on: %v", err)
					}
					if err := lOff.Set(k, val); err != nil {
						t.Fatalf("Set off: %v", err)
					}
				case 2:
					cOn, err := lOn.Delete(k)
					if err != nil {
						t.Fatalf("Delete on: %v", err)
					}
					cOff, err := lOff.Delete(k)
					if err != nil {
						t.Fatalf("Delete off: %v", err)
					}
					if cOn != cOff {
						t.Fatalf("Delete(%d) = %v with index, %v without", k, cOn, cOff)
					}
				case 3:
					vOn, okOn := lOn.Lookup(k)
					vOff, okOff := lOff.Lookup(k)
					if okOn != okOff || vOn != vOff {
						t.Fatalf("Lookup(%d) = (%d,%v) with index, (%d,%v) without", k, vOn, okOn, vOff, okOff)
					}
				case 4:
					lo := r.Uint64N(256)
					hi := lo + r.Uint64N(32)
					pOn := lOn.CollectRange(lo, hi)
					pOff := lOff.CollectRange(lo, hi)
					if len(pOn) != len(pOff) {
						t.Fatalf("CollectRange(%d,%d): %d pairs with index, %d without", lo, hi, len(pOn), len(pOff))
					}
					for j := range pOn {
						if pOn[j] != pOff[j] {
							t.Fatalf("CollectRange(%d,%d)[%d] = %v with index, %v without", lo, hi, j, pOn[j], pOff[j])
						}
					}
				}
			}
			mustCheck(t, lOn)
			mustCheck(t, lOff)
		})
	}
}

// seedIndex performs lookups on every given key so the index holds an
// entry for each (either from the publish path or from read repair).
func seedIndex(t *testing.T, l *List[uint64], keys ...uint64) {
	t.Helper()
	for _, k := range keys {
		l.Lookup(k)
	}
}

// TestHashIndexStalenessMatrix walks every structural event that can
// strand a stale index entry — value overwrite, node split, node merge, a
// DeleteRange emptying the node, and a same-key entry from another list —
// and requires lookups to stay correct through each (validation must fail
// the stale entry and the fallback descent must repair it).
func TestHashIndexStalenessMatrix(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			t.Run("overwrite", func(t *testing.T) {
				g := newTestGroup(t, v)
				l := g.NewList()
				if err := l.Set(10, 1); err != nil {
					t.Fatal(err)
				}
				seedIndex(t, l, 10)
				if err := l.Set(10, 2); err != nil {
					t.Fatal(err)
				}
				if val, ok := l.Lookup(10); !ok || val != 2 {
					t.Fatalf("Lookup(10) after overwrite = (%d,%v), want (2,true)", val, ok)
				}
				mustCheck(t, l)
			})

			t.Run("split", func(t *testing.T) {
				g := newTestGroup(t, v) // NodeSize 4: the fifth key splits
				l := g.NewList()
				for k := uint64(0); k < 4; k++ {
					if err := l.Set(k*10, k); err != nil {
						t.Fatal(err)
					}
				}
				seedIndex(t, l, 0, 10, 20, 30)
				if err := l.Set(15, 99); err != nil { // overflows the node
					t.Fatal(err)
				}
				for k := uint64(0); k < 4; k++ {
					if val, ok := l.Lookup(k * 10); !ok || val != k {
						t.Fatalf("Lookup(%d) after split = (%d,%v), want (%d,true)", k*10, val, ok, k)
					}
				}
				if val, ok := l.Lookup(15); !ok || val != 99 {
					t.Fatalf("Lookup(15) after split = (%d,%v), want (99,true)", val, ok)
				}
				mustCheck(t, l)
			})

			t.Run("merge", func(t *testing.T) {
				g := newTestGroup(t, v)
				l := g.NewList()
				for k := uint64(0); k < 12; k++ {
					if err := l.Set(k, k+100); err != nil {
						t.Fatal(err)
					}
				}
				keys := make([]uint64, 12)
				for i := range keys {
					keys[i] = uint64(i)
				}
				seedIndex(t, l, keys...)
				// Deleting most keys shrinks nodes until merges absorb
				// successors; surviving keys' entries point at dead nodes.
				for k := uint64(0); k < 12; k += 2 {
					if _, err := l.Delete(k); err != nil {
						t.Fatal(err)
					}
				}
				for k := uint64(0); k < 12; k++ {
					val, ok := l.Lookup(k)
					if k%2 == 0 {
						if ok {
							t.Fatalf("Lookup(%d) found deleted key", k)
						}
					} else if !ok || val != k+100 {
						t.Fatalf("Lookup(%d) after merges = (%d,%v), want (%d,true)", k, val, ok, k+100)
					}
				}
				mustCheck(t, l)
			})

			t.Run("deleterange-emptied", func(t *testing.T) {
				g := newTestGroup(t, v)
				l := g.NewList()
				for k := uint64(0); k < 16; k++ {
					if err := l.Set(k, k); err != nil {
						t.Fatal(err)
					}
				}
				keys := make([]uint64, 16)
				for i := range keys {
					keys[i] = uint64(i)
				}
				seedIndex(t, l, keys...)
				ops := []Op[uint64]{{List: l, Kind: OpDeleteRange, Key: 2, KeyHi: 13}}
				if err := g.CommitOps(ops); err != nil {
					t.Fatalf("DeleteRange: %v", err)
				}
				if ops[0].N != 12 {
					t.Fatalf("DeleteRange removed %d, want 12", ops[0].N)
				}
				for k := uint64(0); k < 16; k++ {
					val, ok := l.Lookup(k)
					if k >= 2 && k <= 13 {
						if ok {
							t.Fatalf("Lookup(%d) found range-deleted key", k)
						}
					} else if !ok || val != k {
						t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, val, ok, k)
					}
				}
				mustCheck(t, l)
			})

			t.Run("cross-list", func(t *testing.T) {
				// Two lists of one group share keys; each list's index must
				// resolve to its own nodes (the lid check, exactly as for
				// fingers).
				g := newTestGroup(t, v)
				l1, l2 := g.NewList(), g.NewList()
				for k := uint64(0); k < 8; k++ {
					if err := l1.Set(k, k+1000); err != nil {
						t.Fatal(err)
					}
					if err := l2.Set(k, k+2000); err != nil {
						t.Fatal(err)
					}
				}
				for k := uint64(0); k < 8; k++ {
					if val, ok := l1.Lookup(k); !ok || val != k+1000 {
						t.Fatalf("l1.Lookup(%d) = (%d,%v), want (%d,true)", k, val, ok, k+1000)
					}
					if val, ok := l2.Lookup(k); !ok || val != k+2000 {
						t.Fatalf("l2.Lookup(%d) = (%d,%v), want (%d,true)", k, val, ok, k+2000)
					}
				}
				mustCheck(t, l1)
				mustCheck(t, l2)
			})
		})
	}
}

// TestHashIndexGrow drives enough publish-path inserts through one list
// to force several table growths and checks every key still resolves —
// including after deletions leave dead slots for the growth to purge.
func TestHashIndexGrow(t *testing.T) {
	g := NewGroup[uint64](Config{NodeSize: 16, MaxLevel: 8, Variant: VariantLT}, nil)
	l := g.NewList()
	const n = 2000 // far past idxMinSize * 5/8: multiple growths
	for k := uint64(0); k < n; k++ {
		if err := l.Set(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	tb := l.idx.Load()
	if tb == nil {
		t.Fatal("no index table after publish-path inserts")
	}
	if len(tb.slots) <= idxMinSize {
		t.Fatalf("table still %d slots after %d inserts, expected growth", len(tb.slots), n)
	}
	for k := uint64(0); k < n; k++ {
		if val, ok := l.Lookup(k); !ok || val != k*3 {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, val, ok, k*3)
		}
	}
	for k := uint64(0); k < n; k += 2 {
		if _, err := l.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	// Re-inserting grows over the dead slots; the rebuild must purge them.
	for k := uint64(n); k < 2*n; k++ {
		if err := l.Set(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 2*n; k++ {
		val, ok := l.Lookup(k)
		switch {
		case k < n && k%2 == 0:
			if ok {
				t.Fatalf("Lookup(%d) found deleted key", k)
			}
		default:
			if !ok || val != k*3 {
				t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, val, ok, k*3)
			}
		}
	}
	mustCheck(t, l)
}

// TestHashIndexBulkLoad checks that BulkLoad's one-pass index covers the
// loaded keys (no repair descents needed for a warmed table) and stays
// correct through subsequent churn.
func TestHashIndexBulkLoad(t *testing.T) {
	g := NewGroup[uint64](Config{NodeSize: 8, MaxLevel: 6, Variant: VariantLT}, nil)
	l := g.NewList()
	const n = 500
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i], vals[i] = uint64(i*2), uint64(i)
	}
	if err := l.BulkLoad(keys, vals); err != nil {
		t.Fatal(err)
	}
	if l.idx.Load() == nil {
		t.Fatal("BulkLoad built no index")
	}
	for i, k := range keys {
		if val, ok := l.Lookup(k); !ok || val != vals[i] {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, val, ok, vals[i])
		}
	}
	if err := l.Set(999999, 7); err != nil {
		t.Fatal(err)
	}
	if val, ok := l.Lookup(999999); !ok || val != 7 {
		t.Fatalf("Lookup(999999) = (%d,%v), want (7,true)", val, ok)
	}
}

// TestHashIndexDisabled checks the gate: with NoHashIndex no table is
// ever created, by any path.
func TestHashIndexDisabled(t *testing.T) {
	g := NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: VariantLT, NoHashIndex: true}, nil)
	l := g.NewList()
	for k := uint64(0); k < 100; k++ {
		if err := l.Set(k, k); err != nil {
			t.Fatal(err)
		}
		if val, ok := l.Lookup(k); !ok || val != k {
			t.Fatalf("Lookup(%d) = (%d,%v)", k, val, ok)
		}
	}
	if l.idx.Load() != nil {
		t.Fatal("NoHashIndex group built an index table")
	}
	l2 := g.NewList()
	keys := []uint64{1, 2, 3}
	if err := l2.BulkLoad(keys, keys); err != nil {
		t.Fatal(err)
	}
	if l2.idx.Load() != nil {
		t.Fatal("NoHashIndex BulkLoad built an index table")
	}
}

// TestHashIndexConcurrentChurn runs uniform-random readers against churn
// writers that split, merge and range-delete nodes continuously, across
// every variant. Values are a pure function of their key, so a reader can
// verify any hit without coordination; the race detector (race_on builds)
// checks the slot protocol, and the final sweep checks the index against
// a sequential model.
func TestHashIndexConcurrentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test is slow in -short mode")
	}
	const (
		keySpace = 1 << 10
		readers  = 4
		writers  = 2
	)
	valOf := func(k uint64) uint64 { return k*2654435761 + 1 }
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			g := NewGroup[uint64](Config{NodeSize: 8, MaxLevel: 6, Variant: v}, nil)
			l := g.NewList()
			for k := uint64(0); k < keySpace; k += 2 {
				if err := l.Set(k, valOf(k)); err != nil {
					t.Fatal(err)
				}
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, readers+writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rand.New(rand.NewPCG(seed, 99))
					for !stop.Load() {
						k := r.Uint64N(keySpace)
						switch r.IntN(4) {
						case 0, 1:
							if err := l.Set(k, valOf(k)); err != nil {
								errs <- err
								return
							}
						case 2:
							if _, err := l.Delete(k); err != nil {
								errs <- err
								return
							}
						case 3:
							lo := r.Uint64N(keySpace)
							ops := []Op[uint64]{{List: l, Kind: OpDeleteRange, Key: lo, KeyHi: lo + r.Uint64N(64)}}
							if err := g.CommitOps(ops); err != nil {
								errs <- err
								return
							}
						}
					}
				}(uint64(w + 1))
			}
			for rd := 0; rd < readers; rd++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rand.New(rand.NewPCG(seed, 7))
					for !stop.Load() {
						k := r.Uint64N(keySpace)
						if val, ok := l.Lookup(k); ok && val != valOf(k) {
							errs <- errStalePlan // any sentinel: value integrity broke
							return
						}
					}
				}(uint64(rd + 100))
			}
			iters := 30000
			if raceEnabled {
				iters = 2000 // backoff under instrumentation makes churn slow
			}
			// Drive a deterministic churn stream on the main goroutine so
			// the test has a bounded duration on any scheduler.
			r := rand.New(rand.NewPCG(42, 42))
			for i := 0; i < iters; i++ {
				k := r.Uint64N(keySpace)
				if i%2 == 0 {
					if err := l.Set(k, valOf(k)); err != nil {
						t.Fatal(err)
					}
				} else if _, err := l.Delete(k); err != nil {
					t.Fatal(err)
				}
			}
			stop.Store(true)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatalf("worker failed: %v", err)
			default:
			}
			mustCheck(t, l)
			// Quiescent sweep: every present key must read back its value
			// through the (now heavily churned) index.
			for _, k := range l.Keys() {
				if val, ok := l.Lookup(k); !ok || val != valOf(k) {
					t.Fatalf("post-churn Lookup(%d) = (%d,%v), want (%d,true)", k, val, ok, valOf(k))
				}
			}
		})
	}
}

// TestSetIfCore exercises OpSetIf through CommitOps: predicate outcomes,
// Found reporting, staging-order interaction with other writes, and the
// nil-predicate rejection.
func TestSetIfCore(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		if err := l.Set(1, 10); err != nil {
			t.Fatal(err)
		}

		eq := func(want uint64) func(cur uint64, found bool) bool {
			return func(cur uint64, found bool) bool { return found && cur == want }
		}
		absent := func(cur uint64, found bool) bool { return !found }

		// Applied: the pre-state matches.
		ops := []Op[uint64]{{List: l, Kind: OpSetIf, Key: 1, Val: 11, If: eq(10)}}
		if err := g.CommitOps(ops); err != nil {
			t.Fatal(err)
		}
		if !ops[0].Found {
			t.Fatal("SetIf(1, expect 10) did not apply")
		}
		if val, _ := l.Lookup(1); val != 11 {
			t.Fatalf("Lookup(1) = %d, want 11", val)
		}

		// Not applied: wrong expectation leaves the value alone.
		ops = []Op[uint64]{{List: l, Kind: OpSetIf, Key: 1, Val: 99, If: eq(10)}}
		if err := g.CommitOps(ops); err != nil {
			t.Fatal(err)
		}
		if ops[0].Found {
			t.Fatal("SetIf(1, expect 10) applied against value 11")
		}
		if val, _ := l.Lookup(1); val != 11 {
			t.Fatalf("Lookup(1) = %d, want 11 unchanged", val)
		}

		// SetNX semantics: applies only on an absent key.
		ops = []Op[uint64]{
			{List: l, Kind: OpSetIf, Key: 1, Val: 50, If: absent},
			{List: l, Kind: OpSetIf, Key: 2, Val: 20, If: absent},
		}
		if err := g.CommitOps(ops); err != nil {
			t.Fatal(err)
		}
		if ops[0].Found || !ops[1].Found {
			t.Fatalf("SetNX results = (%v,%v), want (false,true)", ops[0].Found, ops[1].Found)
		}
		if val, ok := l.Lookup(2); !ok || val != 20 {
			t.Fatalf("Lookup(2) = (%d,%v), want (20,true)", val, ok)
		}

		// Staging order: the conditional observes earlier staged writes on
		// its key, and later writes win over it.
		ops = []Op[uint64]{
			{List: l, Kind: OpSet, Key: 3, Val: 30},
			{List: l, Kind: OpSetIf, Key: 3, Val: 31, If: eq(30)}, // sees the staged 30
			{List: l, Kind: OpSetIf, Key: 3, Val: 77, If: eq(30)}, // sees 31: not applied
			{List: l, Kind: OpGet, Key: 3},
		}
		if err := g.CommitOps(ops); err != nil {
			t.Fatal(err)
		}
		if !ops[1].Found || ops[2].Found {
			t.Fatalf("staged SetIf results = (%v,%v), want (true,false)", ops[1].Found, ops[2].Found)
		}
		if !ops[3].Found || ops[3].Out != 31 {
			t.Fatalf("staged Get = (%d,%v), want (31,true)", ops[3].Out, ops[3].Found)
		}

		// A conditional covered by an earlier DeleteRange sees the key
		// absent; one staged before the DeleteRange sees it present.
		if err := l.Set(4, 40); err != nil {
			t.Fatal(err)
		}
		ops = []Op[uint64]{
			{List: l, Kind: OpSetIf, Key: 4, Val: 41, If: eq(40)},
			{List: l, Kind: OpDeleteRange, Key: 0, KeyHi: 100},
			{List: l, Kind: OpSetIf, Key: 4, Val: 42, If: absent},
		}
		if err := g.CommitOps(ops); err != nil {
			t.Fatal(err)
		}
		if !ops[0].Found || !ops[2].Found {
			t.Fatalf("SetIf around DeleteRange = (%v,%v), want (true,true)", ops[0].Found, ops[2].Found)
		}
		if val, ok := l.Lookup(4); !ok || val != 42 {
			t.Fatalf("Lookup(4) = (%d,%v), want (42,true)", val, ok)
		}

		// Nil predicate is rejected up front.
		err := g.CommitOps([]Op[uint64]{{List: l, Kind: OpSetIf, Key: 5, Val: 1}})
		if err != ErrNilPredicate {
			t.Fatalf("nil-predicate CommitOps = %v, want ErrNilPredicate", err)
		}
		mustCheck(t, l)
	})
}
