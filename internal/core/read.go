package core

import (
	"runtime"

	"leaplist/internal/epoch"
	"leaplist/internal/stm"
)

// KV is one key-value pair returned by range queries.
type KV[V any] struct {
	Key   uint64
	Value V
}

// readScratch holds the per-goroutine buffers of read operations plus the
// epoch participant the operation runs pinned to: from getRead until
// putRead, no node this reader can observe is recycled, which is what
// makes the naked LT lookup and the post-transaction emitRange walk safe
// against the write path's buffer reuse.
type readScratch[V any] struct {
	pa, na []*node[V]
	nodes  []*node[V] // range-query snapshot
	part   *epoch.Participant

	// finger is the last node this scratch's reads landed on (the lookup
	// hit, or the last node of a range snapshot), kept across operations
	// so a key near the previous one skips the upper descent; fEra is
	// the epoch era it was saved under. getRead drops the finger unless
	// the new pin observes the same era — the guard that makes re-reading
	// the remembered node's fields race-free (see epoch.Participant.Era).
	finger *node[V]
	fEra   uint64
}

func (g *Group[V]) getRead() *readScratch[V] {
	r, _ := g.readPool.Get().(*readScratch[V])
	if r == nil {
		r = &readScratch[V]{part: g.collector.Acquire()}
		col := g.collector
		runtime.SetFinalizer(r, func(dead *readScratch[V]) { col.Release(dead.part) })
	}
	if len(r.pa) < g.cfg.MaxLevel {
		r.pa = make([]*node[V], g.cfg.MaxLevel)
		r.na = make([]*node[V], g.cfg.MaxLevel)
	}
	r.part.Pin()
	// Era guard, validated against a fresh read of the global epoch
	// AFTER the pin store — not the participant's own word: Pin loads
	// the epoch before publishing the word, and in that window the
	// unpinned participant does not block advancement, so the word alone
	// can be stale by two epochs (enough for a remembered node to have
	// been reclaimed). A fresh load equal to the save-time era proves,
	// by monotonicity, that the epoch never reached era+2 — nothing
	// retired at or after the save is reclaimed yet — and the pinned
	// word (<= that value) blocks any future advance past era+1.
	if r.finger != nil && g.collector.Epoch() != r.fEra {
		r.finger = nil
	}
	return r
}

// saveFinger remembers n (when fingers are enabled) for the next read on
// this scratch, stamped with the current pin era.
func (r *readScratch[V]) saveFinger(g *Group[V], n *node[V]) {
	if g.cfg.NoFingers {
		return
	}
	r.finger, r.fEra = n, r.part.Era()
}

func (g *Group[V]) putRead(r *readScratch[V]) {
	for i := range r.pa {
		r.pa[i], r.na[i] = nil, nil
	}
	for i := range r.nodes {
		r.nodes[i] = nil
	}
	r.nodes = r.nodes[:0]
	r.part.Unpin()
	g.readPool.Put(r)
}

// Lookup returns the value stored under key k (paper Figure 4). The cost
// profile is the paper's: Leap-LT runs no transaction at all, Leap-COP runs
// one verification transaction, Leap-tm instruments the whole traversal,
// and Leap-rwlock holds the read lock.
func (l *List[V]) Lookup(k uint64) (V, bool) {
	var zero V
	if k > MaxKey {
		return zero, false
	}
	g := l.g
	ik := toInternal(k)
	r := g.getRead()
	defer g.putRead(r)

	switch g.cfg.Variant {
	case VariantLT:
		n := fingerSeekNaked(l, ik, r.finger)
		if n == nil && g.hashIndex() {
			if c := l.idxProbe(ik); c != nil {
				n = fingerSeekNaked(l, ik, c)
			}
		}
		repair := false
		if n == nil {
			searchNaked(l, ik, r.pa, r.na)
			n = r.na[0]
			repair = g.hashIndex()
		}
		r.saveFinger(g, n)
		if i := n.find(ik); i >= 0 {
			if repair {
				l.idxInsert(ik, n, r.part.Era())
			}
			return n.vals[i], true
		}
		if repair {
			l.idxDelete(ik)
		}
		return zero, false

	case VariantCOP:
		n := fingerSeekNaked(l, ik, r.finger)
		if n == nil && g.hashIndex() {
			if c := l.idxProbe(ik); c != nil {
				n = fingerSeekNaked(l, ik, c)
			}
		}
		repair := false
		for attempt := 0; ; attempt++ {
			if n == nil {
				searchNaked(l, ik, r.pa, r.na)
				n = r.na[0]
				repair = g.hashIndex()
			}
			// COP verification transaction: the node must still be live.
			// A finger-found node failing it falls back to a head search
			// on the retry, exactly like a stale head search would.
			err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
				lv, err := n.live.Load(tx)
				if err != nil {
					return err
				}
				if lv == 0 {
					return stm.ErrConflict
				}
				return nil
			})
			if err == nil {
				r.saveFinger(g, n)
				if i := n.find(ik); i >= 0 {
					if repair {
						l.idxInsert(ik, n, r.part.Era())
					}
					return n.vals[i], true
				}
				if repair {
					l.idxDelete(ik)
				}
				return zero, false
			}
			n = nil
			stmBackoff(attempt)
		}

	case VariantTM:
		var val V
		var ok bool
		var found *node[V]
		var repair bool
		err := g.stm.Atomically(func(tx *stm.Tx) error {
			val, ok = zero, false
			repair = false
			n, err := fingerSeekTx(tx, l, ik, r.finger)
			if err != nil {
				return err
			}
			if n == nil && g.hashIndex() {
				c := l.idxProbe(ik)
				if c != nil {
					n, err = fingerSeekTx(tx, l, ik, c)
					if err != nil {
						return err
					}
				}
			}
			if n == nil {
				if err := searchTx(tx, l, ik, r.pa, r.na); err != nil {
					return err
				}
				n = r.na[0]
				repair = g.hashIndex()
			}
			found = n
			if i := n.find(ik); i >= 0 {
				val, ok = n.vals[i], true
			}
			return nil
		})
		if err != nil {
			panic("core: unreachable Lookup error: " + err.Error())
		}
		r.saveFinger(g, found)
		if repair {
			if ok {
				l.idxInsert(ik, found, r.part.Era())
			} else {
				l.idxDelete(ik)
			}
		}
		return val, ok

	case VariantRW:
		l.mu.RLock()
		defer l.mu.RUnlock()
		n := fingerSeekRW(l, ik, r.finger)
		if n == nil && g.hashIndex() {
			if c := l.idxProbe(ik); c != nil {
				n = fingerSeekRW(l, ik, c)
			}
		}
		repair := false
		if n == nil {
			searchRW(l, ik, r.pa, r.na)
			n = r.na[0]
			repair = g.hashIndex()
		}
		r.saveFinger(g, n)
		if i := n.find(ik); i >= 0 {
			if repair {
				l.idxInsert(ik, n, r.part.Era())
			}
			return n.vals[i], true
		}
		if repair {
			l.idxDelete(ik)
		}
		return zero, false

	default:
		panic("core: unknown variant")
	}
}

// noteLingeringEmpties scans a collected snapshot run for two or more
// consecutive empty non-sentinel nodes and posts the first one's high
// bound as the list's scheduled-absorb hint. A single empty node is
// left alone — the opportunistic absorb of any write touching its left
// neighbor already compacts it — but a run of empties means DeleteRange
// boundaries emptied a region no write has come near since, and every
// future read pays the dead hops until a write batch consumes the hint
// (see planGroups). The nodes may be a timestamped chain's — possibly
// already spliced out — which is harmless: a stale hint fails the
// injection's emptiness walk and is discarded.
func noteLingeringEmpties[V any](l *List[V], nodes []*node[V]) {
	run := 0
	var first *node[V]
	for _, n := range nodes {
		if n.count() == 0 && n.high != posInf && n.high != negInf {
			if run == 0 {
				first = n
			}
			run++
			if run == 2 && l.absorbHint.Load() != first.high {
				l.absorbHint.Store(first.high)
			}
		} else {
			run = 0
		}
	}
}

// snapshotRun fills r.nodes with one consistent (linearizable) run of
// nodes covering [ilo, ihi] in internal key space, per the group's
// variant — the snapshot half shared by RangeQuery, CollectRange and
// CollectRangeInto. The nodes are immutable, so once the run is taken
// the caller may extract pairs at leisure: the epoch pin carried by r
// keeps the backing arrays from being recycled mid-read. For VariantRW
// the read lock is released before returning, so callers may run slow
// or re-entrant extraction without deadlocking against writers.
func (l *List[V]) snapshotRun(r *readScratch[V], ilo, ihi uint64) {
	g := l.g
	if g.bundles() {
		// Timestamped traversal (asof.go): one clock read is the
		// linearization point, the run is the chain as of that instant,
		// and structural churn never forces a retry — for every variant.
		l.snapshotRunAsOf(r, ilo, ihi, g.stm.Clock().Now())
		return
	}
	switch g.cfg.Variant {
	case VariantLT, VariantCOP:
		// Figure 5: naked search to the start node, then one transaction
		// that walks level 0 collecting nodes, aborting on a dead node.
		// Marked pointers are traversed through (line 41): the mark only
		// means an update is in flight elsewhere; the pointer itself is
		// the last committed value, and the read set catches any change.
		// The finger (typically the previous snapshot's last node — the
		// ascending-scan continuation) may supply the start node; its
		// liveness is re-checked by the collection transaction exactly
		// like a head-searched start, and any conflict retries with a
		// full search.
		fstart := fingerSeekNaked(l, ilo, r.finger)
		for attempt := 0; ; attempt++ {
			start := fstart
			fstart = nil
			if start == nil {
				searchNaked(l, ilo, r.pa, r.na)
				start = r.na[0]
			}
			err := g.stm.AtomicallyOnce(func(tx *stm.Tx) error {
				// clear before truncating: a shorter retry would leave
				// stale node pointers beyond len, which putRead's
				// len-bounded loop never reaches — the pooled scratch
				// would pin them indefinitely.
				clear(r.nodes)
				r.nodes = r.nodes[:0]
				n := start
				for {
					lv, err := n.live.Load(tx)
					if err != nil {
						return err
					}
					if lv == 0 {
						return stm.ErrConflict
					}
					r.nodes = append(r.nodes, n)
					if n.high >= ihi {
						return nil
					}
					succ, _, err := n.next[0].Load(tx)
					if err != nil {
						return err
					}
					if succ == nil {
						return nil
					}
					n = succ
				}
			})
			if err == nil {
				if len(r.nodes) > 0 {
					r.saveFinger(g, r.nodes[len(r.nodes)-1])
				}
				noteLingeringEmpties(l, r.nodes)
				return
			}
			stmBackoff(attempt)
		}

	case VariantTM:
		err := g.stm.Atomically(func(tx *stm.Tx) error {
			// clear before truncating (see the LT/COP arm): retry shrink
			// must not strand node pointers in the scratch capacity.
			clear(r.nodes)
			r.nodes = r.nodes[:0]
			n, ferr := fingerSeekTx(tx, l, ilo, r.finger)
			if ferr != nil {
				return ferr
			}
			if n == nil {
				if err := searchTx(tx, l, ilo, r.pa, r.na); err != nil {
					return err
				}
				n = r.na[0]
			}
			for {
				r.nodes = append(r.nodes, n)
				if n.high >= ihi {
					return nil
				}
				succ, _, err := n.next[0].Load(tx)
				if err != nil {
					return err
				}
				if succ == nil {
					return nil
				}
				n = succ
			}
		})
		if err != nil {
			panic("core: unreachable snapshotRun error: " + err.Error())
		}
		if len(r.nodes) > 0 {
			r.saveFinger(g, r.nodes[len(r.nodes)-1])
		}
		noteLingeringEmpties(l, r.nodes)

	case VariantRW:
		l.mu.RLock()
		n := fingerSeekRW(l, ilo, r.finger)
		if n == nil {
			searchRW(l, ilo, r.pa, r.na)
			n = r.na[0]
		}
		// clear before truncating, as in the other arms: a shorter run on
		// a reused scratch must not strand node pointers in the capacity.
		clear(r.nodes)
		r.nodes = r.nodes[:0]
		for {
			r.nodes = append(r.nodes, n)
			if n.high >= ihi {
				break
			}
			succ := n.next[0].PeekPtr()
			if succ == nil {
				break
			}
			n = succ
		}
		if len(r.nodes) > 0 {
			r.saveFinger(g, r.nodes[len(r.nodes)-1])
		}
		noteLingeringEmpties(l, r.nodes)
		// Release before the caller extracts: the snapshot nodes are
		// immutable, and extraction may be arbitrarily slow or call back
		// into the map (a re-entrant write would deadlock against our
		// own read lock).
		l.mu.RUnlock()

	default:
		panic("core: unknown variant")
	}
}

// RangeQuery streams every pair with key in [lo, hi] to emit in ascending
// key order and returns the number of pairs emitted (paper Figure 5). The
// pairs form one linearizable snapshot. emit runs after the snapshot is
// taken, so it may be arbitrarily slow without extending any transaction;
// returning false from emit terminates the scan immediately — no further
// pairs are visited or copied out of the snapshot. A nil emit counts the
// whole interval.
func (l *List[V]) RangeQuery(lo, hi uint64, emit func(k uint64, v V) bool) int {
	if lo > hi {
		return 0
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	if lo > MaxKey {
		return 0
	}
	g := l.g
	ilo, ihi := toInternal(lo), toInternal(hi)
	r := g.getRead()
	defer g.putRead(r)
	l.snapshotRun(r, ilo, ihi)
	return emitRange(r.nodes, ilo, ihi, emit)
}

// emitRange extracts the pairs within [ilo, ihi] (internal keys) from the
// snapshot nodes, stopping as soon as emit returns false. Node ranges
// partition the key space, so only the first node can hold keys below ilo
// and only the last can hold keys above ihi: both are trimmed once by
// clipRange's binary searches and every node then emits compare-free,
// instead of testing k < ilo || k > ihi on every key of every node.
func emitRange[V any](nodes []*node[V], ilo, ihi uint64, emit func(k uint64, v V) bool) int {
	count := 0
	last := len(nodes) - 1
	for ni, n := range nodes {
		keys, vals := n.keys, n.vals
		if ni == 0 || ni == last {
			lo, hi := negInf, posInf
			if ni == 0 {
				lo = ilo
			}
			if ni == last {
				hi = ihi
			}
			keys, vals = clipRange(keys, vals, lo, hi)
		}
		for i, k := range keys {
			if emit != nil && !emit(toPublic(k), vals[i]) {
				return count + 1
			}
			count++
		}
	}
	return count
}

// CollectRange is a convenience wrapper around CollectRangeInto that
// returns the snapshot as a freshly grown slice.
func (l *List[V]) CollectRange(lo, hi uint64) []KV[V] {
	return l.CollectRangeInto(lo, hi, nil)
}

// CollectRangeInto appends one consistent snapshot of every pair with
// key in [lo, hi], ascending, to buf and returns the extended slice —
// the caller-supplied-buffer form of CollectRange. Passing buf[:0] with
// enough capacity makes the whole range read allocation-free in steady
// state (pooled search scratch, pooled read transaction, no emit
// closure), the read-path counterpart of the zero-allocation write
// path; the alloc tests pin that budget. The snapshot is taken at one
// linearization instant, exactly RangeQuery's.
func (l *List[V]) CollectRangeInto(lo, hi uint64, buf []KV[V]) []KV[V] {
	if lo > hi || lo > MaxKey {
		return buf
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	g := l.g
	ilo, ihi := toInternal(lo), toInternal(hi)
	r := g.getRead()
	defer g.putRead(r)
	l.snapshotRun(r, ilo, ihi)
	return appendRun(r.nodes, ilo, ihi, buf)
}
