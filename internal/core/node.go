package core

import (
	"leaplist/internal/stm"
	"leaplist/internal/trie"
)

// Internal key encoding: public keys are shifted by +1 so that 0 can act as
// the head sentinel's -inf high bound, and ^uint64(0) acts as +inf. A node
// owns the keys in (prev.high, high], both bounds in shifted space.
const (
	negInf = uint64(0)
	posInf = ^uint64(0)
)

func toInternal(k uint64) uint64 { return k + 1 }
func toPublic(k uint64) uint64   { return k - 1 }

// node is one fat Leap-List node (paper Figure 2). keys, vals, tr, high and
// level are immutable after publication; live and the next slots are the
// only mutable fields and are transactional cells.
type node[V any] struct {
	high  uint64   // inclusive upper bound of the node's range, shifted space
	level int      // number of forward pointers
	keys  []uint64 // sorted, shifted space; len(keys) is the paper's count
	vals  []V
	tr    *trie.Trie

	live stm.Word // 1 = reachable and current, 0 = replaced or unpublished
	next []stm.TaggedPtr[node[V]]
}

func newNode[V any](level int) *node[V] {
	return &node[V]{
		level: level,
		next:  make([]stm.TaggedPtr[node[V]], level),
	}
}

// count returns the number of key-value pairs in the node.
func (n *node[V]) count() int {
	return len(n.keys)
}

// find returns the index of internal key k, or -1. It consults the
// embedded trie and verifies the candidate against the keys array (the
// paper's NOT_FOUND handling for crit-bit misses).
func (n *node[V]) find(k uint64) int {
	idx := n.tr.Lookup(k)
	if idx < 0 || idx >= len(n.keys) || n.keys[idx] != k {
		return -1
	}
	return idx
}

// seal builds the node's trie from its final keys array. Must be called
// exactly once, before publication.
func (n *node[V]) seal() {
	n.tr = trie.Build(n.keys)
}

// buildUpdated returns the sorted pairs of src with (k, v) inserted or, if
// k is already present, its value replaced. k is in shifted space.
func buildUpdated[V any](src *node[V], k uint64, v V) (keys []uint64, vals []V) {
	if i := src.find(k); i >= 0 {
		keys = make([]uint64, len(src.keys))
		vals = make([]V, len(src.vals))
		copy(keys, src.keys)
		copy(vals, src.vals)
		vals[i] = v
		return keys, vals
	}
	keys = make([]uint64, 0, len(src.keys)+1)
	vals = make([]V, 0, len(src.vals)+1)
	pos := 0
	for pos < len(src.keys) && src.keys[pos] < k {
		pos++
	}
	keys = append(keys, src.keys[:pos]...)
	vals = append(vals, src.vals[:pos]...)
	keys = append(keys, k)
	vals = append(vals, v)
	keys = append(keys, src.keys[pos:]...)
	vals = append(vals, src.vals[pos:]...)
	return keys, vals
}

// createNewNodes fills new0 (and new1 when split) with the pairs of src
// plus the update (k, v), mirroring the paper's CreateNewNodes (Figure 8).
// On split, new0 holds the first half under a new high equal to its largest
// key; new1 holds the second half and inherits src's high. Levels must
// already be set by the caller. The nodes are sealed but not yet live.
func createNewNodes[V any](src *node[V], k uint64, v V, split bool, new0, new1 *node[V]) {
	keys, vals := buildUpdated(src, k, v)
	if !split {
		new0.keys, new0.vals = keys, vals
		new0.high = src.high
		new0.seal()
		return
	}
	mid := len(keys) / 2
	new0.keys, new0.vals = keys[:mid:mid], vals[:mid:mid]
	new0.high = keys[mid-1]
	new1.keys, new1.vals = keys[mid:], vals[mid:]
	new1.high = src.high
	new0.seal()
	new1.seal()
}

// removeAndMerge fills repl with the pairs of old0 (and old1 when merging)
// minus key k, mirroring the paper's RemoveAndMerge (Figure 11). It
// returns false when k is absent from old0 (the list is left unchanged).
// repl's level must already be set; its high is set here.
func removeAndMerge[V any](old0, old1 *node[V], k uint64, merge bool, repl *node[V]) bool {
	idx := old0.find(k)
	if idx < 0 {
		return false
	}
	total := len(old0.keys) - 1
	if merge {
		total += len(old1.keys)
	}
	keys := make([]uint64, 0, total)
	vals := make([]V, 0, total)
	keys = append(keys, old0.keys[:idx]...)
	vals = append(vals, old0.vals[:idx]...)
	keys = append(keys, old0.keys[idx+1:]...)
	vals = append(vals, old0.vals[idx+1:]...)
	if merge {
		keys = append(keys, old1.keys...)
		vals = append(vals, old1.vals...)
	}
	repl.keys, repl.vals = keys, vals
	if merge {
		repl.high = old1.high
	} else {
		repl.high = old0.high
	}
	repl.seal()
	return true
}
