package core

import (
	"sync/atomic"

	"leaplist/internal/stm"
	"leaplist/internal/trie"
)

// Internal key encoding: public keys are shifted by +1 so that 0 can act as
// the head sentinel's -inf high bound, and ^uint64(0) acts as +inf. A node
// owns the keys in (prev.high, high], both bounds in shifted space.
const (
	negInf = uint64(0)
	posInf = ^uint64(0)
)

func toInternal(k uint64) uint64 { return k + 1 }
func toPublic(k uint64) uint64   { return k - 1 }

// node is one fat Leap-List node (paper Figure 2). keys, vals, tr, high and
// level are immutable after publication; live and the next slots are the
// only mutable fields and are transactional cells. See doc.go, "Node
// lifecycle and structure sharing", for who owns the backing arrays and
// when they are recycled.
type node[V any] struct {
	high  uint64   // inclusive upper bound of the node's range, shifted space
	level int      // number of forward pointers
	lid   uint64   // id of the owning list; finger validation (see search.go)
	keys  []uint64 // sorted, shifted space; len(keys) is the paper's count
	vals  []V
	tr    *trie.Trie

	// ownsKV reports whether this node owns its keys array and trie. A
	// value-only replacement borrows both from the node it supplants and
	// has ownsKV = false. Immutable after construction.
	ownsKV bool

	// lent is set when a replacement node has borrowed this node's keys
	// and trie (possibly by a planner whose commit later fails — the flag
	// is conservative). A lent node never donates keys or trie to the
	// recycler. Atomic because a concurrent planner may set it while the
	// node's retirement-time donation check reads it.
	lent atomic.Bool

	// born is the global-clock timestamp at which this node was published
	// (the timestamp of the batch that wired it), bunPending until the
	// publishing batch's fill pass, and 0 for sentinels and BulkLoad
	// nodes, which predate sharing. Together with the invariant that a
	// node's left range boundary never moves while it lives, born <= S
	// proves the node belongs to the as-of-S chain of the timestamped
	// read path (see doc.go, "Versioned links and timestamped traversal").
	born atomic.Uint64

	// bun heads the node's bundle: the newest-first list of
	// {timestamp, successor} records versioning this node's level-0 link.
	// Written only inside publish phases (serialized per node by the
	// commit protocol's marks/locks) and read through the
	// timestamp-validating helpers in bundle.go.
	bun atomic.Pointer[bundleRec[V]]

	// inl is the node's inline record pair, handed out before the bundle
	// spills to heap records: slot 0 is the node's own birth record
	// (installed while the piece is still private), slot 1 the first
	// pred-link record prepended onto the node. Slots are single-use per
	// node lifetime (inlUsed counts hand-outs and only recycleNode resets
	// it); each slot's inline flag is set once at shell construction and
	// never cleared, so a truncation destructor that reaches a cut-off
	// inline record — even one whose shell has since been recycled and
	// reused — can recognize it and stop without touching it.
	inl     [2]bundleRec[V]
	inlUsed uint8

	// repl and died are the folded death record: repl == nil means the
	// node is alive; a non-nil repl names the chain node covering this
	// node's range boundary after its death (the replacement piece
	// inheriting its immutable left boundary, or — for a node spliced out
	// inside a fully deleted run — the run's surviving successor), and
	// died carries the death timestamp, bunPending from repl's store in
	// publish phase A until the fill pass stamps it. Written only by the
	// publish phases (and reset by recycleNode); read through
	// bunRecoverAsOf.
	repl atomic.Pointer[node[V]]
	died atomic.Uint64

	// live and next are the only mutable fields. live is written by every
	// replacement commit while everything above (and the next slice
	// header) is read-hot, so live is isolated on its own cache line: the
	// 48-byte pad below covers the line-start slack for any allocation
	// alignment on the leading side, and stm.Word's internal trailing pad
	// covers the trailing side — no field shares a line with live's hot
	// words.
	next []stm.TaggedPtr[node[V]]
	_    [48]byte
	live stm.Word // 1 = reachable and current, 0 = replaced or unpublished
}

// newNode allocates a fresh node shell. Hot paths obtain shells through
// Group.newShell, which recycles retired ones; newNode remains for list
// construction (head/tail sentinels, BulkLoad), which predates any
// donations.
func newNode[V any](level int) *node[V] {
	n := &node[V]{
		level:  level,
		ownsKV: true,
		next:   make([]stm.TaggedPtr[node[V]], level),
	}
	n.inl[0].inline = true
	n.inl[1].inline = true
	n.died.Store(bunPending)
	return n
}

// count returns the number of key-value pairs in the node.
func (n *node[V]) count() int {
	return len(n.keys)
}

// find returns the index of internal key k, or -1. It consults the
// embedded trie and verifies the candidate against the keys array (the
// paper's NOT_FOUND handling for crit-bit misses).
func (n *node[V]) find(k uint64) int {
	idx := n.tr.Lookup(k)
	if idx < 0 || idx >= len(n.keys) || n.keys[idx] != k {
		return -1
	}
	return idx
}

// clipRange returns the subslices of keys/vals whose internal key lies in
// [ilo, ihi]. Node key arrays are sorted, so both cuts are binary
// searches; when ihi is the maximal internal key no key can exceed it
// (and ihi+1 would wrap). Shared by the snapshot emission of range
// queries (emitRange) and the GetRange resolution of read-only batch
// entries.
func clipRange[V any](keys []uint64, vals []V, ilo, ihi uint64) ([]uint64, []V) {
	lo := lowerBound(keys, 0, ilo)
	hi := len(keys)
	if ihi != posInf {
		hi = lowerBound(keys, lo, ihi+1)
	}
	return keys[lo:hi], vals[lo:hi]
}

// seal builds the node's trie from its final keys array, allocating
// fresh trie storage. Must be called exactly once, before publication.
// Replacement pieces built on the hot path get their tries from the
// group's recycler (buildPieces) instead.
func (n *node[V]) seal() {
	n.tr = trie.Build(n.keys)
}

// Replacement-node construction lives in batch.go (buildEntry and
// buildPieces): the generalized batch protocol merges a node's pairs with
// every staged op that lands in it — the paper's CreateNewNodes (Figure 8)
// and RemoveAndMerge (Figure 11) generalized to per-node op groups.
