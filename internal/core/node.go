package core

import (
	"leaplist/internal/stm"
	"leaplist/internal/trie"
)

// Internal key encoding: public keys are shifted by +1 so that 0 can act as
// the head sentinel's -inf high bound, and ^uint64(0) acts as +inf. A node
// owns the keys in (prev.high, high], both bounds in shifted space.
const (
	negInf = uint64(0)
	posInf = ^uint64(0)
)

func toInternal(k uint64) uint64 { return k + 1 }
func toPublic(k uint64) uint64   { return k - 1 }

// node is one fat Leap-List node (paper Figure 2). keys, vals, tr, high and
// level are immutable after publication; live and the next slots are the
// only mutable fields and are transactional cells.
type node[V any] struct {
	high  uint64   // inclusive upper bound of the node's range, shifted space
	level int      // number of forward pointers
	keys  []uint64 // sorted, shifted space; len(keys) is the paper's count
	vals  []V
	tr    *trie.Trie

	live stm.Word // 1 = reachable and current, 0 = replaced or unpublished
	next []stm.TaggedPtr[node[V]]
}

func newNode[V any](level int) *node[V] {
	return &node[V]{
		level: level,
		next:  make([]stm.TaggedPtr[node[V]], level),
	}
}

// count returns the number of key-value pairs in the node.
func (n *node[V]) count() int {
	return len(n.keys)
}

// find returns the index of internal key k, or -1. It consults the
// embedded trie and verifies the candidate against the keys array (the
// paper's NOT_FOUND handling for crit-bit misses).
func (n *node[V]) find(k uint64) int {
	idx := n.tr.Lookup(k)
	if idx < 0 || idx >= len(n.keys) || n.keys[idx] != k {
		return -1
	}
	return idx
}

// seal builds the node's trie from its final keys array. Must be called
// exactly once, before publication.
func (n *node[V]) seal() {
	n.tr = trie.Build(n.keys)
}

// Replacement-node construction lives in batch.go (buildEntry and
// buildPieces): the generalized batch protocol merges a node's pairs with
// every staged op that lands in it — the paper's CreateNewNodes (Figure 8)
// and RemoveAndMerge (Figure 11) generalized to per-node op groups.
