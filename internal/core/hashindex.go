package core

import (
	"math/bits"
	"sync/atomic"

	"leaplist/internal/epoch"
)

// Per-list point-lookup hash index (the Skip Hash idea adapted to fat
// nodes): an open-addressed table mapping internal key -> the node shell
// last known to own it, maintained by the commit pipeline's publish phase
// and consulted at the top of Lookup and of planGroups' per-key descent.
// See doc.go, "Hash index maintenance and validation", for the full
// protocol; the essentials:
//
//   - An entry is only ever a hint. The reader validates the remembered
//     node exactly like a search finger — epoch-era guard first (the
//     entry's stamped era must equal a fresh Collector.Epoch() read taken
//     after the reader's own pin; see epoch.Participant.Era), then
//     liveness, owning-list id and level-0 bounds in the variant's idiom
//     (fingerSeek*, or validateEntryTx's liveness check for batch plans).
//     Any failure falls back to the head descent, which repairs the entry.
//   - Writers (publish-phase maintenance, read-path repair) never block
//     readers and never wait for each other: each slot is a tiny seqlock
//     (ver odd while a writer rewrites the node/era pair), and a writer
//     that loses the claim race simply skips — freshness is best-effort,
//     the era guard and fallback provide correctness.
//   - A claimed slot is never re-keyed: internal keys span [1, 2^64-1],
//     leaving only 0 as the virgin marker, so deletion parks a nil node
//     in the slot instead of freeing it (re-keying would break linear-
//     probe chains and admit duplicate slots for one key). Dead slots are
//     purged when the table grows.
//   - Tables grow only on the publish path; read-path repair writes into
//     the existing table or drops the entry, so Lookup stays
//     allocation-free. Replaced slot arrays are epoch-retired and then
//     recycled through the group's pool, like node backing arrays.

const (
	// idxMinSize is the initial table size (slots, a power of two).
	idxMinSize = 256
	// idxProbeBound caps the linear probe of every table operation: past
	// it a reader reports a miss and a writer drops the update — both
	// degrade to the head descent, never to an unbounded scan.
	idxProbeBound = 64
	// idxHashMul is the Fibonacci-hashing multiplier (2^64 / phi).
	idxHashMul = 0x9E3779B97F4A7C15
)

// idxSlot is one open-addressed table slot. key is claimed once (0 is the
// virgin marker — no internal key is 0) and never changed afterwards; the
// (node, era) pair is rewritten under the ver seqlock, with node == nil
// marking a deleted entry.
type idxSlot[V any] struct {
	key  atomic.Uint64
	ver  atomic.Uint64 // seqlock: odd while a writer rewrites node/era
	era  atomic.Uint64 // pin era of the op that stored node (era guard)
	node atomic.Pointer[node[V]]
}

// idxTable is one immutable-geometry table generation: the slot array,
// its power-of-two mask/shift, and the count of claimed (live or dead)
// slots that triggers growth. A new generation replaces it wholesale
// (idxGrow); the old slot array is epoch-retired.
type idxTable[V any] struct {
	slots []idxSlot[V]
	mask  uint64
	shift uint
	used  atomic.Int64 // claimed keys, dead entries included
}

// idxBox carries a recycled slot array through a sync.Pool without a
// fresh slice-header box per donation, exactly like kvBox.
type idxBox[V any] struct {
	s []idxSlot[V]
}

// idxNeedGrow reports whether the table's claimed-slot load has reached
// the growth threshold (5/8, low enough that the bounded probe rarely
// drops an update before the publish path grows the table).
func (t *idxTable[V]) idxNeedGrow() bool {
	return t.used.Load()*8 >= int64(len(t.slots))*5
}

// idxPut records ik -> (n, era), claiming a slot on first insert and
// rewriting in place afterwards. Best-effort: a lost claim race to a
// different key continues the probe; a seqlock already held (or the probe
// bound exhausted) drops the update — the entry stays stale and the next
// fallback lookup repairs it. Returns whether the table wants growing;
// the read-path callers ignore it (growth allocates).
func (t *idxTable[V]) idxPut(ik uint64, n *node[V], era uint64) (needGrow bool) {
	h := (ik * idxHashMul) >> t.shift
	for i := uint64(0); i < idxProbeBound; i++ {
		s := &t.slots[(h+i)&t.mask]
		k := s.key.Load()
		if k == 0 {
			if s.key.CompareAndSwap(0, ik) {
				t.used.Add(1)
			} else if s.key.Load() != ik {
				continue // lost the claim to another key's insert
			}
			k = ik
		}
		if k != ik {
			continue
		}
		v := s.ver.Load()
		if v&1 != 0 || !s.ver.CompareAndSwap(v, v+1) {
			break // a concurrent writer owns the slot: skip, not wait
		}
		s.node.Store(n)
		s.era.Store(era)
		s.ver.Store(v + 2)
		break
	}
	return t.idxNeedGrow()
}

// idxDel marks ik's entry deleted (nil node). The slot stays claimed —
// see the no-re-keying rule above — so the probe chain through it remains
// intact; growth purges it.
func (t *idxTable[V]) idxDel(ik uint64) {
	h := (ik * idxHashMul) >> t.shift
	for i := uint64(0); i < idxProbeBound; i++ {
		s := &t.slots[(h+i)&t.mask]
		k := s.key.Load()
		if k == 0 {
			return // virgin slot ends the probe chain: ik was never indexed
		}
		if k != ik {
			continue
		}
		v := s.ver.Load()
		if v&1 != 0 || !s.ver.CompareAndSwap(v, v+1) {
			return // best-effort: the stale entry fails validation anyway
		}
		s.node.Store(nil)
		s.ver.Store(v + 2)
		return
	}
}

// idxPeek reads ik's entry under the slot seqlock, returning the raw
// (node, era) pair. It performs no era validation and must only be called
// by idxProbe (and the table's own migration): every other consumer goes
// through idxProbe so the era guard can never be skipped.
func (t *idxTable[V]) idxPeek(ik uint64) (*node[V], uint64, bool) {
	h := (ik * idxHashMul) >> t.shift
	for i := uint64(0); i < idxProbeBound; i++ {
		s := &t.slots[(h+i)&t.mask]
		k := s.key.Load()
		if k == 0 {
			return nil, 0, false
		}
		if k != ik {
			continue
		}
		v1 := s.ver.Load()
		if v1&1 != 0 {
			return nil, 0, false // writer mid-rewrite: treat as a miss
		}
		n := s.node.Load()
		era := s.era.Load()
		if s.ver.Load() != v1 {
			return nil, 0, false // torn read: miss, not a retry loop
		}
		if n == nil {
			return nil, 0, false // deleted entry
		}
		return n, era, true
	}
	return nil, 0, false
}

// idxProbe returns the index's candidate node for internal key ik, or nil
// on a miss. This is the single era-validating gate onto index entries:
// the caller must be pinned (getRead/getBatch), and the entry is returned
// only when a fresh Collector.Epoch() read — taken here, after that pin —
// still equals the era stamped when the entry was stored. Equality proves
// (see epoch.Participant.Era) that nothing retired at or after the store
// is reclaimed yet and the caller's pin keeps it that way, so the
// candidate's immutable fields may be read; everything else about it
// (liveness, list id, bounds) is still unvalidated and must go through
// the same checks as a search finger (fingerSeek*, or a batch entry's
// transactional liveness validation).
func (l *List[V]) idxProbe(ik uint64) *node[V] {
	t := l.idx.Load()
	if t == nil {
		return nil
	}
	n, era, ok := t.idxPeek(ik)
	if !ok || l.g.collector.Epoch() != era {
		return nil
	}
	return n
}

// idxInsert records ik -> n in the list's index, stamped with the calling
// operation's pin era. Read-path repair entry point: never allocates,
// never grows, and silently does nothing when the list has no table yet
// (only the publish path creates tables).
func (l *List[V]) idxInsert(ik uint64, n *node[V], era uint64) {
	if t := l.idx.Load(); t != nil {
		t.idxPut(ik, n, era)
	}
}

// idxDelete drops ik's entry (read-path repair for a key a fallback
// descent proved absent).
func (l *List[V]) idxDelete(ik uint64) {
	if t := l.idx.Load(); t != nil {
		t.idxDel(ik)
	}
}

// newIdxTable builds a table of the given power-of-two size, recycling a
// pooled slot array (already cleared at donation) when one fits.
func (g *Group[V]) newIdxTable(size int) *idxTable[V] {
	var slots []idxSlot[V]
	if b, _ := g.idxPool.Get().(*idxBox[V]); b != nil {
		s := b.s
		b.s = nil
		g.idxBoxPool.Put(b)
		if cap(s) >= size {
			slots = s[:size]
		}
	}
	if slots == nil {
		slots = make([]idxSlot[V], size)
	}
	return &idxTable[V]{
		slots: slots,
		mask:  uint64(size - 1),
		shift: uint(64 - bits.Len64(uint64(size-1))),
	}
}

// donateIdxSlots is the epoch destructor of a replaced table: it runs
// after the grace period, when no reader can still probe the old slots,
// clears them (plain stores — the same post-grace discipline as
// recycleNode's) and hands the array to the group's pool.
func (g *Group[V]) donateIdxSlots(t *idxTable[V]) {
	clear(t.slots)
	b, _ := g.idxBoxPool.Get().(*idxBox[V])
	if b == nil {
		b = &idxBox[V]{}
	}
	b.s = t.slots[:0]
	g.idxPool.Put(b)
}

// idxInit creates the list's table on first publish-path use.
func (l *List[V]) idxInit() *idxTable[V] {
	l.idxMu.Lock()
	defer l.idxMu.Unlock()
	if t := l.idx.Load(); t != nil {
		return t
	}
	t := l.g.newIdxTable(idxMinSize)
	l.idx.Store(t)
	return t
}

// idxGrow replaces the list's table with one sized for its live entries,
// migrating them (dead and mid-rewrite slots are purged or skipped — a
// skipped entry is repaired by the next fallback lookup) and epoch-
// retiring the old generation through the committing operation's
// participant, so pinned readers can finish probing it.
func (l *List[V]) idxGrow(part *epoch.Participant) {
	g := l.g
	l.idxMu.Lock()
	defer l.idxMu.Unlock()
	old := l.idx.Load()
	if old == nil || !old.idxNeedGrow() {
		return // a competitor already grew this generation
	}
	live := 0
	for i := range old.slots {
		s := &old.slots[i]
		if s.key.Load() != 0 && s.node.Load() != nil {
			live++
		}
	}
	size := len(old.slots)
	for live*2 >= size {
		size *= 2
	}
	nt := g.newIdxTable(size)
	for i := range old.slots {
		s := &old.slots[i]
		k := s.key.Load()
		if k == 0 {
			continue
		}
		v1 := s.ver.Load()
		if v1&1 != 0 {
			continue
		}
		n := s.node.Load()
		era := s.era.Load()
		if s.ver.Load() != v1 || n == nil {
			continue
		}
		nt.idxPut(k, n, era)
	}
	l.idx.Store(nt)
	part.Retire(old, g.donateIdx)
}

// ownerPiece returns the replacement piece whose range contains internal
// key k — pieces are ordered left to right and partition the replaced
// region, so it is the first piece with high >= k. nil when k lies past
// every piece (cannot happen for keys staged into the entry).
func ownerPiece[V any](pieces []*node[V], k uint64) *node[V] {
	for _, p := range pieces {
		if k <= p.high {
			return p
		}
	}
	return nil
}

// indexPublish refreshes the per-list hash index for every write entry of
// a just-published batch. It runs inside the publish phase — after the
// pointer swings, while the batch's participant is still pinned — which
// is the single point where node membership changes, so the (node, era)
// pairs it stores are valid the instant they land.
//
// Maintenance is deliberately partial: only the keys the batch itself
// staged are re-pointed (to the replacement piece now owning them, found
// from the pieces themselves so per-key fold order cannot matter), plus
// the replaced node's keys a DeleteRange covered, which are dropped.
// Unstaged keys that merely moved (a split's right half, a merge's
// absorbed partner, every untouched key of a value-only overwrite) keep
// their now-stale entries: the liveness validation fails them and the
// fallback descent repairs them lazily, which keeps publish cost
// proportional to the staged ops, not the node size.
func (g *Group[V]) indexPublish(ops []Op[V], b *txState[V]) {
	if !g.hashIndex() {
		return
	}
	// The batch is already published (swings done, marks/locks released);
	// yields here interleave index maintenance with probes that must
	// tolerate the not-yet-updated index via lazy repair.
	fpHit(fpIndexPublish)
	era := b.part.Era()
	for t := 0; t < b.nEnt; t++ {
		e := b.entries[t]
		if !e.write {
			continue
		}
		l := e.l
		tb := l.idx.Load()
		if tb == nil {
			tb = l.idxInit()
		}
		if e.runEnd != nil {
			// A spliced-out run deletes every key of every run node, but
			// dropping them here would make the splice O(deleted keys) —
			// the one cost profile the run path exists to avoid. Leave the
			// entries stale instead: each points at a retired node, so the
			// era guard or the liveness check fails the next probe and the
			// fallback descent repairs the entry (idxDelete), exactly the
			// lazy path unstaged moved keys already take. Nothing is lost
			// on the table side either — idxDel keeps the slot claimed, so
			// eager deletion would not have lowered the load factor.
			continue
		}
		needGrow := false
		// Keys of the replaced node that a staged DeleteRange covered are
		// gone; drop their entries. (The replaced node's memory is safe to
		// read: it was only retired, and this operation is pinned.)
		for _, oi := range e.rops {
			op := &ops[oi]
			if op.Kind != OpDeleteRange {
				continue
			}
			ks, _ := clipRange(e.n.keys, e.n.vals, toInternal(op.Key), toInternal(op.KeyHi))
			for _, k := range ks {
				tb.idxDel(k)
			}
		}
		// Staged point keys re-point to their owning piece — or drop, when
		// the key ended the batch absent. The pieces are the published
		// truth, so consulting them handles any interleaving of Set,
		// Delete, SetIf and covering DeleteRange per key.
		for q := e.lo; q < e.hi; {
			k := toInternal(ops[b.order[q]].Key)
			for q < e.hi && toInternal(ops[b.order[q]].Key) == k {
				q++
			}
			if p := ownerPiece(e.pieces, k); p != nil && p.find(k) >= 0 {
				if tb.idxPut(k, p, era) {
					needGrow = true
				}
			} else {
				tb.idxDel(k)
			}
		}
		if needGrow {
			l.idxGrow(b.part)
		}
	}
}

// idxBulkLoad builds the freshly loaded list's index in one pass: an
// exact-size table (load factor <= 1/2, so steady-state lookups never
// grow it) filled by walking the level-0 chain just constructed. Called
// only from BulkLoad, before the list is shared, so plain epoch reads
// suffice: every future retirement of these nodes is ordered after this
// stamp, which is what the era guard needs.
//
//lint:allow epochpin pre-publication construction: every node walked here is unreachable until BulkLoad returns
func (l *List[V]) idxBulkLoad(pairs int) {
	g := l.g
	size := idxMinSize
	for size < 2*pairs {
		size *= 2
	}
	t := g.newIdxTable(size)
	era := g.collector.Epoch()
	for n := l.head.next[0].PeekPtr(); n != nil; n = n.next[0].PeekPtr() {
		for _, k := range n.keys {
			t.idxPut(k, n, era)
		}
	}
	l.idx.Store(t)
}
