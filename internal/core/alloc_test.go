package core

import "testing"

// Allocation budgets of the zero-allocation write path, enforced as
// regression tests. The numbers are steady-state amortized averages over
// warmed pools:
//
//   - LT Lookup: 0 allocs/op — the naked lookup touches only pooled
//     scratch.
//   - LT value-only Update (overwrite of a present key): budget 1.0
//     allocs/op, typically 0.0. The replacement shares the old node's
//     keys array and trie, copies values into a recycled buffer, reuses a
//     recycled shell, and the STM recycles its write records; the
//     non-zero headroom covers epoch-cadence effects (donations return in
//     bursts every few epochs) and sync.Pool behaviour across GCs.
//
// Before this path existed the same update cost 10 allocs/op (keys copy,
// vals copy, trie rebuild ×2, node shell, next slots, STM write records,
// op-slice box).
//   - LT CollectRangeInto with a caller-supplied buffer: 0 allocs/op —
//     the snapshot walk uses pooled read scratch and the pooled read
//     transaction, and extraction appends into the caller's capacity
//     (no emit closure), so hot range-read loops run allocation-free
//     like the write path (ROADMAP "GetRange result pooling").
const (
	lookupAllocBudget          = 0.0
	valueOnlyUpdateAllocBudget = 1.0
	collectIntoAllocBudget     = 0.0
)

func TestAllocsLookupLT(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	l := newLoadedLTList(t)
	var k uint64
	got := testing.AllocsPerRun(2000, func() {
		l.Lookup(k % 10000)
		k++
	})
	if got > lookupAllocBudget {
		t.Fatalf("LT Lookup = %.2f allocs/op, budget %.2f", got, lookupAllocBudget)
	}
}

func TestAllocsValueOnlyUpdateLT(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	l := newLoadedLTList(t)
	var k uint64
	// Warm the recycler and scratch pools: the budget is steady-state.
	for i := 0; i < 3000; i++ {
		if err := l.Set(k%10000, k); err != nil {
			t.Fatal(err)
		}
		k++
	}
	got := testing.AllocsPerRun(2000, func() {
		if err := l.Set(k%10000, k); err != nil {
			t.Fatal(err)
		}
		k++
	})
	if got > valueOnlyUpdateAllocBudget {
		t.Fatalf("LT value-only Update = %.2f allocs/op, budget %.2f", got, valueOnlyUpdateAllocBudget)
	}
}

func TestAllocsCollectIntoLT(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	l := newLoadedLTList(t)
	buf := make([]KV[uint64], 0, 256)
	var k uint64
	got := testing.AllocsPerRun(2000, func() {
		lo := k % 9000
		buf = l.CollectRangeInto(lo, lo+100, buf[:0])
		if len(buf) != 101 {
			t.Fatalf("CollectRangeInto returned %d pairs, want 101", len(buf))
		}
		k++
	})
	if got > collectIntoAllocBudget {
		t.Fatalf("LT CollectRangeInto = %.2f allocs/op, budget %.2f", got, collectIntoAllocBudget)
	}
}

// TestAllocsFingerPathsLT pins the finger machinery's allocation budget:
// a locality stream whose lookups hit the finger fast path and whose
// value-only sets save and seed the cross-batch write finger must stay
// inside the same budgets as the head-descent paths (fingers live in
// already-pooled scratch — saving one costs a slice swap, seeding one
// costs comparisons, neither allocates).
func TestAllocsFingerPathsLT(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	l := newLoadedLTList(t)
	var k uint64
	got := testing.AllocsPerRun(2000, func() {
		// Tight window: consecutive lookups land on the fingered node.
		l.Lookup(k % 64)
		k++
	})
	if got > lookupAllocBudget {
		t.Fatalf("LT finger Lookup = %.2f allocs/op, budget %.2f", got, lookupAllocBudget)
	}
	for i := 0; i < 3000; i++ {
		if err := l.Set(k%64+100, k); err != nil {
			t.Fatal(err)
		}
		k++
	}
	got = testing.AllocsPerRun(2000, func() {
		if err := l.Set(k%64+100, k); err != nil {
			t.Fatal(err)
		}
		k++
	})
	if got > valueOnlyUpdateAllocBudget {
		t.Fatalf("LT finger value-only Update = %.2f allocs/op, budget %.2f", got, valueOnlyUpdateAllocBudget)
	}
}

// TestAllocsHashIndexLookupLT pins the hash-index hit path's allocation
// budget: a large-stride lookup stream defeats the finger (consecutive
// keys land thousands of keys apart), so every hit comes from idxProbe —
// BulkLoad populated the table — and must still cost 0 allocs/op. The
// repair half is covered too: lookups after churn rewrite existing slots
// in place (read-path repair never grows the table).
func TestAllocsHashIndexLookupLT(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	l := newLoadedLTList(t)
	var k uint64
	got := testing.AllocsPerRun(2000, func() {
		l.Lookup(k * 2897 % 10000) // stride: finger misses, index hits
		k++
	})
	if got > lookupAllocBudget {
		t.Fatalf("LT index-hit Lookup = %.2f allocs/op, budget %.2f", got, lookupAllocBudget)
	}
	// Churn half the key space so index entries go stale, then measure the
	// repairing lookups: fallback descent plus in-place slot rewrite.
	for i := uint64(0); i < 5000; i++ {
		if err := l.Set(i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	got = testing.AllocsPerRun(2000, func() {
		l.Lookup(k * 2897 % 10000)
		k++
	})
	if got > lookupAllocBudget {
		t.Fatalf("LT repairing Lookup = %.2f allocs/op, budget %.2f", got, lookupAllocBudget)
	}
}

// newLoadedLTList returns an LT list preloaded with keys 0..9999 (so every
// Set in the tests above is a value-only overwrite).
func newLoadedLTList(t *testing.T) *List[uint64] {
	t.Helper()
	g := NewGroup[uint64](Config{Variant: VariantLT}, nil)
	l := g.NewList()
	keys := make([]uint64, 10000)
	vals := make([]uint64, 10000)
	for i := range keys {
		keys[i], vals[i] = uint64(i), uint64(i)
	}
	if err := l.BulkLoad(keys, vals); err != nil {
		t.Fatal(err)
	}
	return l
}
