package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
)

var allVariants = []Variant{VariantLT, VariantTM, VariantCOP, VariantRW}

// newTestGroup builds a group with a small node size and level cap so the
// tests exercise splits and merges constantly.
func newTestGroup(t *testing.T, v Variant) *Group[uint64] {
	t.Helper()
	return NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: v}, nil)
}

func forEachVariant(t *testing.T, fn func(t *testing.T, g *Group[uint64])) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			fn(t, newTestGroup(t, v))
		})
	}
}

func mustCheck(t *testing.T, l *List[uint64]) {
	t.Helper()
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestEmptyListLookup(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		if _, ok := l.Lookup(7); ok {
			t.Fatal("Lookup on empty list returned ok")
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("Len = %d, want 0", got)
		}
		mustCheck(t, l)
	})
}

func TestSetLookupDelete(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		if err := l.Set(10, 100); err != nil {
			t.Fatalf("Set: %v", err)
		}
		v, ok := l.Lookup(10)
		if !ok || v != 100 {
			t.Fatalf("Lookup(10) = (%d, %v), want (100, true)", v, ok)
		}
		if _, ok := l.Lookup(11); ok {
			t.Fatal("Lookup(11) found absent key")
		}
		changed, err := l.Delete(10)
		if err != nil || !changed {
			t.Fatalf("Delete(10) = (%v, %v), want (true, nil)", changed, err)
		}
		if _, ok := l.Lookup(10); ok {
			t.Fatal("Lookup(10) found deleted key")
		}
		changed, err = l.Delete(10)
		if err != nil || changed {
			t.Fatalf("second Delete(10) = (%v, %v), want (false, nil)", changed, err)
		}
		mustCheck(t, l)
	})
}

func TestOverwriteValue(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for i := uint64(0); i < 3; i++ {
			if err := l.Set(5, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
			v, ok := l.Lookup(5)
			if !ok || v != i {
				t.Fatalf("Lookup(5) = (%d, %v), want (%d, true)", v, ok, i)
			}
		}
		if got := l.Len(); got != 1 {
			t.Fatalf("Len = %d, want 1", got)
		}
		mustCheck(t, l)
	})
}

func TestSplitOnFullNode(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		// NodeSize is 4: the fifth insert must split.
		for i := uint64(0); i < 20; i++ {
			if err := l.Set(i, i*10); err != nil {
				t.Fatalf("Set(%d): %v", i, err)
			}
			mustCheck(t, l)
		}
		if got := l.NodeCount(); got < 2 {
			t.Fatalf("NodeCount = %d, want splits to have occurred", got)
		}
		for i := uint64(0); i < 20; i++ {
			v, ok := l.Lookup(i)
			if !ok || v != i*10 {
				t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", i, v, ok, i*10)
			}
		}
	})
}

func TestMergeOnRemove(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for i := uint64(0); i < 32; i++ {
			if err := l.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		grown := l.NodeCount()
		for i := uint64(0); i < 32; i++ {
			changed, err := l.Delete(i)
			if err != nil || !changed {
				t.Fatalf("Delete(%d) = (%v, %v)", i, changed, err)
			}
			mustCheck(t, l)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("Len = %d, want 0", got)
		}
		if got := l.NodeCount(); got >= grown {
			t.Fatalf("NodeCount = %d, want merges to have shrunk from %d", got, grown)
		}
	})
}

func TestDescendingInsertAscendingRemove(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for i := 31; i >= 0; i-- {
			if err := l.Set(uint64(i), uint64(i)); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		mustCheck(t, l)
		keys := l.Keys()
		if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
			t.Fatal("Keys not sorted")
		}
		for i := 0; i < 32; i++ {
			if changed, err := l.Delete(uint64(i)); err != nil || !changed {
				t.Fatalf("Delete(%d) = (%v, %v)", i, changed, err)
			}
		}
		mustCheck(t, l)
	})
}

func TestBoundaryKeys(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		if err := l.Set(0, 1); err != nil {
			t.Fatalf("Set(0): %v", err)
		}
		if err := l.Set(MaxKey, 2); err != nil {
			t.Fatalf("Set(MaxKey): %v", err)
		}
		if v, ok := l.Lookup(0); !ok || v != 1 {
			t.Fatalf("Lookup(0) = (%d, %v)", v, ok)
		}
		if v, ok := l.Lookup(MaxKey); !ok || v != 2 {
			t.Fatalf("Lookup(MaxKey) = (%d, %v)", v, ok)
		}
		if err := l.Set(MaxKey+1, 3); !errors.Is(err, ErrKeyRange) {
			t.Fatalf("Set(2^64-1) = %v, want ErrKeyRange", err)
		}
		if _, ok := l.Lookup(MaxKey + 1); ok {
			t.Fatal("Lookup(2^64-1) returned ok")
		}
		mustCheck(t, l)
	})
}

func TestRangeQueryBasics(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		for i := uint64(0); i < 50; i += 2 { // even keys 0..48
			if err := l.Set(i, i+1); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		tests := []struct {
			name     string
			lo, hi   uint64
			wantKeys []uint64
		}{
			{"interior exact", 10, 14, []uint64{10, 12, 14}},
			{"bounds absent", 9, 15, []uint64{10, 12, 14}},
			{"single", 20, 20, []uint64{20}},
			{"single absent", 21, 21, nil},
			{"empty inverted", 30, 20, nil},
			{"prefix", 0, 4, []uint64{0, 2, 4}},
			{"suffix", 44, MaxKey, []uint64{44, 46, 48}},
			{"whole", 0, MaxKey, nil}, // filled below
			{"beyond", 100, 200, nil},
		}
		whole := make([]uint64, 0, 25)
		for i := uint64(0); i < 50; i += 2 {
			whole = append(whole, i)
		}
		tests[7].wantKeys = whole

		for _, tc := range tests {
			t.Run(tc.name, func(t *testing.T) {
				var got []uint64
				count := l.RangeQuery(tc.lo, tc.hi, func(k uint64, v uint64) bool {
					if v != k+1 {
						t.Errorf("value for %d = %d, want %d", k, v, k+1)
					}
					got = append(got, k)
					return true
				})
				if count != len(tc.wantKeys) {
					t.Fatalf("count = %d, want %d", count, len(tc.wantKeys))
				}
				if len(got) != len(tc.wantKeys) {
					t.Fatalf("got %v, want %v", got, tc.wantKeys)
				}
				for i := range got {
					if got[i] != tc.wantKeys[i] {
						t.Fatalf("got %v, want %v", got, tc.wantKeys)
					}
				}
			})
		}
	})
}

func TestRangeQuerySpansNodes(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const n = 64 // with NodeSize 4 this spans many nodes
		for i := uint64(0); i < n; i++ {
			if err := l.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		got := l.CollectRange(5, 58)
		if len(got) != 54 {
			t.Fatalf("len = %d, want 54", len(got))
		}
		for i, kv := range got {
			if kv.Key != uint64(5+i) || kv.Value != uint64(5+i) {
				t.Fatalf("got[%d] = %+v", i, kv)
			}
		}
	})
}

func TestBatchUpdateAcrossLists(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		const L = 4
		ls := make([]*List[uint64], L)
		for i := range ls {
			ls[i] = g.NewList()
		}
		ks := []uint64{1, 2, 3, 4}
		vs := []uint64{10, 20, 30, 40}
		if err := g.Update(ls, ks, vs); err != nil {
			t.Fatalf("Update: %v", err)
		}
		for j := range ls {
			v, ok := ls[j].Lookup(ks[j])
			if !ok || v != vs[j] {
				t.Fatalf("list %d Lookup(%d) = (%d, %v), want (%d, true)", j, ks[j], v, ok, vs[j])
			}
			mustCheck(t, ls[j])
		}
		changed := make([]bool, L)
		if err := g.Remove(ls, ks, changed); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		for j := range ls {
			if !changed[j] {
				t.Fatalf("changed[%d] = false, want true", j)
			}
			if _, ok := ls[j].Lookup(ks[j]); ok {
				t.Fatalf("list %d still has key %d", j, ks[j])
			}
		}
		// Removing again reports no change anywhere.
		if err := g.Remove(ls, ks, changed); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		for j := range changed {
			if changed[j] {
				t.Fatalf("changed[%d] = true on absent key", j)
			}
		}
	})
}

func TestBatchValidation(t *testing.T) {
	g := newTestGroup(t, VariantLT)
	other := newTestGroup(t, VariantLT)
	l1, l2 := g.NewList(), g.NewList()
	foreign := other.NewList()

	tests := []struct {
		name       string
		ls         []*List[uint64]
		ks         []uint64
		vs         []uint64
		wantErr    error
		updateOnly bool // Remove takes no values, so vals mismatches do not apply
	}{
		{name: "empty", wantErr: ErrEmptyBatch},
		{name: "len mismatch keys", ls: []*List[uint64]{l1}, ks: []uint64{1, 2}, vs: []uint64{1}, wantErr: ErrBatchMismatch},
		{name: "len mismatch vals", ls: []*List[uint64]{l1}, ks: []uint64{1}, vs: []uint64{1, 2}, wantErr: ErrBatchMismatch, updateOnly: true},
		{name: "duplicate list", ls: []*List[uint64]{l1, l1}, ks: []uint64{1, 2}, vs: []uint64{1, 2}, wantErr: ErrDuplicateList},
		{name: "foreign list", ls: []*List[uint64]{l1, foreign}, ks: []uint64{1, 2}, vs: []uint64{1, 2}, wantErr: ErrForeignList},
		{name: "nil list", ls: []*List[uint64]{l1, nil}, ks: []uint64{1, 2}, vs: []uint64{1, 2}, wantErr: ErrForeignList},
		{name: "key range", ls: []*List[uint64]{l1, l2}, ks: []uint64{1, ^uint64(0)}, vs: []uint64{1, 2}, wantErr: ErrKeyRange},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := g.Update(tc.ls, tc.ks, tc.vs); !errors.Is(err, tc.wantErr) {
				t.Fatalf("Update = %v, want %v", err, tc.wantErr)
			}
			if tc.updateOnly {
				return
			}
			if err := g.Remove(tc.ls, tc.ks, nil); !errors.Is(err, tc.wantErr) {
				t.Fatalf("Remove = %v, want %v", err, tc.wantErr)
			}
		})
	}
	t.Run("changed length mismatch", func(t *testing.T) {
		err := g.Remove([]*List[uint64]{l1}, []uint64{1}, make([]bool, 2))
		if !errors.Is(err, ErrBatchMismatch) {
			t.Fatalf("Remove = %v, want ErrBatchMismatch", err)
		}
	})
}

func TestBulkLoad(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		const n = 100
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i) * 3
			vals[i] = uint64(i)
		}
		if err := l.BulkLoad(keys, vals); err != nil {
			t.Fatalf("BulkLoad: %v", err)
		}
		mustCheck(t, l)
		if got := l.Len(); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
		for i := range keys {
			v, ok := l.Lookup(keys[i])
			if !ok || v != vals[i] {
				t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", keys[i], v, ok, vals[i])
			}
		}
		// The loaded list must remain fully operational.
		if err := l.Set(1, 999); err != nil {
			t.Fatalf("Set after load: %v", err)
		}
		if changed, err := l.Delete(0); err != nil || !changed {
			t.Fatalf("Delete after load = (%v, %v)", changed, err)
		}
		mustCheck(t, l)
	})
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	g := newTestGroup(t, VariantLT)
	l := g.NewList()
	if err := l.BulkLoad([]uint64{1, 2}, []uint64{1}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("mismatch = %v, want ErrBatchMismatch", err)
	}
	if err := l.BulkLoad([]uint64{^uint64(0)}, []uint64{1}); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("range = %v, want ErrKeyRange", err)
	}
	l2 := g.NewList()
	if err := l2.BulkLoad([]uint64{5, 5}, []uint64{1, 2}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("unsorted = %v, want ErrBatchMismatch", err)
	}
}

// TestRandomizedAgainstModel drives each variant through a long random op
// sequence mirrored in a map, verifying lookups, removes and range queries
// against the model and structure invariants throughout.
func TestRandomizedAgainstModel(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		model := make(map[uint64]uint64)
		r := rand.New(rand.NewPCG(42, uint64(g.cfg.Variant)))
		const keySpace = 200
		iters := 4000
		if testing.Short() {
			iters = 800
		}
		for i := 0; i < iters; i++ {
			k := r.Uint64N(keySpace)
			switch r.IntN(10) {
			case 0, 1, 2, 3: // update
				v := r.Uint64()
				if err := l.Set(k, v); err != nil {
					t.Fatalf("Set: %v", err)
				}
				model[k] = v
			case 4, 5, 6: // remove
				changed, err := l.Delete(k)
				if err != nil {
					t.Fatalf("Delete: %v", err)
				}
				_, inModel := model[k]
				if changed != inModel {
					t.Fatalf("Delete(%d) changed=%v, model has=%v", k, changed, inModel)
				}
				delete(model, k)
			case 7, 8: // lookup
				v, ok := l.Lookup(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("Lookup(%d) = (%d, %v), model (%d, %v)", k, v, ok, mv, mok)
				}
			case 9: // range query
				lo := r.Uint64N(keySpace)
				hi := lo + r.Uint64N(keySpace/4)
				got := l.CollectRange(lo, hi)
				want := modelRange(model, lo, hi)
				if len(got) != len(want) {
					t.Fatalf("range [%d,%d]: got %d pairs, want %d", lo, hi, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("range [%d,%d][%d] = %+v, want %+v", lo, hi, j, got[j], want[j])
					}
				}
			}
			if i%500 == 0 {
				mustCheck(t, l)
			}
		}
		mustCheck(t, l)
		if got, want := l.Len(), len(model); got != want {
			t.Fatalf("final Len = %d, want %d", got, want)
		}
	})
}

func modelRange(model map[uint64]uint64, lo, hi uint64) []KV[uint64] {
	var out []KV[uint64]
	for k, v := range model {
		if k >= lo && k <= hi {
			out = append(out, KV[uint64]{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func TestVariantString(t *testing.T) {
	want := map[Variant]string{
		VariantLT:  "Leap-LT",
		VariantTM:  "Leap-tm",
		VariantCOP: "Leap-COP",
		VariantRW:  "Leap-rwlock",
		Variant(0): "Variant(0)",
	}
	for v, s := range want {
		if got := v.String(); got != s {
			t.Fatalf("%d.String() = %q, want %q", int(v), got, s)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	g := NewGroup[uint64](Config{}, nil)
	cfg := g.Config()
	if cfg.NodeSize != DefaultNodeSize || cfg.MaxLevel != DefaultMaxLevel || cfg.Variant != VariantLT {
		t.Fatalf("normalized config = %+v", cfg)
	}
	if g.STM() == nil {
		t.Fatal("group STM is nil")
	}
}

func TestDeterministicLevels(t *testing.T) {
	cfg := Config{NodeSize: 2, MaxLevel: 3, Variant: VariantLT}
	cfg.SetLevelFunc(func(maxLevel int) int { return maxLevel })
	g := NewGroup[uint64](cfg, nil)
	l := g.NewList()
	for i := uint64(0); i < 10; i++ {
		if err := l.Set(i, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	mustCheck(t, l)
}

func ExampleList_RangeQuery() {
	g := NewGroup[string](Config{NodeSize: 4, MaxLevel: 4, Variant: VariantLT}, nil)
	l := g.NewList()
	for i := uint64(0); i < 10; i++ {
		_ = l.Set(i, fmt.Sprintf("v%d", i))
	}
	l.RangeQuery(3, 5, func(k uint64, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 3 v3
	// 4 v4
	// 5 v5
}
