package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestQuickModelEquivalence is the property-based oracle test: any random
// operation sequence leaves every variant's list equal to a map model,
// with structural invariants intact. Node size 2 maximizes split/merge
// churn per operation.
func TestQuickModelEquivalence(t *testing.T) {
	for _, v := range allVariants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := func(seed uint64, opsRaw []uint16) bool {
				g := NewGroup[uint64](Config{NodeSize: 2, MaxLevel: 4, Variant: v}, nil)
				l := g.NewList()
				model := map[uint64]uint64{}
				r := rand.New(rand.NewPCG(seed, 77))
				for _, raw := range opsRaw {
					k := uint64(raw % 64)
					switch raw % 3 {
					case 0:
						val := r.Uint64()
						if err := l.Set(k, val); err != nil {
							return false
						}
						model[k] = val
					case 1:
						changed, err := l.Delete(k)
						if err != nil {
							return false
						}
						if _, has := model[k]; has != changed {
							return false
						}
						delete(model, k)
					case 2:
						val, ok := l.Lookup(k)
						mv, mok := model[k]
						if ok != mok || (ok && val != mv) {
							return false
						}
					}
				}
				if err := l.CheckInvariants(); err != nil {
					t.Logf("invariants: %v", err)
					return false
				}
				if l.Len() != len(model) {
					return false
				}
				// Full-range collection equals the sorted model.
				pairs := l.CollectRange(0, MaxKey)
				if len(pairs) != len(model) {
					return false
				}
				for _, kv := range pairs {
					if model[kv.Key] != kv.Value {
						return false
					}
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 40}
			if testing.Short() {
				cfg.MaxCount = 10
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickRangeMatchesFilter: for any content and any bounds, a range
// query returns exactly the model filter, sorted.
func TestQuickRangeMatchesFilter(t *testing.T) {
	g := NewGroup[uint64](Config{NodeSize: 3, MaxLevel: 4, Variant: VariantLT}, nil)
	l := g.NewList()
	model := map[uint64]uint64{}
	r := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 300; i++ {
		k := r.Uint64N(512)
		if err := l.Set(k, k^0xABCD); err != nil {
			t.Fatalf("Set: %v", err)
		}
		model[k] = k ^ 0xABCD
	}
	f := func(a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		got := l.CollectRange(lo, hi)
		want := modelRange(model, lo, hi)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBatchEquivalence: composed batches across L lists behave like L
// independent sequential maps.
func TestQuickBatchEquivalence(t *testing.T) {
	f := func(seed uint64, steps []uint32) bool {
		const L = 3
		g := NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 4, Variant: VariantLT}, nil)
		ls := make([]*List[uint64], L)
		models := make([]map[uint64]uint64, L)
		for i := range ls {
			ls[i] = g.NewList()
			models[i] = map[uint64]uint64{}
		}
		r := rand.New(rand.NewPCG(seed, 3))
		ks := make([]uint64, L)
		vs := make([]uint64, L)
		changed := make([]bool, L)
		for _, step := range steps {
			for j := range ks {
				ks[j] = uint64(step>>uint(4*j))%32 + uint64(j)*100
				vs[j] = r.Uint64()
			}
			if step%2 == 0 {
				if err := g.Update(ls, ks, vs); err != nil {
					return false
				}
				for j := range ks {
					models[j][ks[j]] = vs[j]
				}
			} else {
				if err := g.Remove(ls, ks, changed); err != nil {
					return false
				}
				for j := range ks {
					if _, has := models[j][ks[j]]; has != changed[j] {
						return false
					}
					delete(models[j], ks[j])
				}
			}
		}
		for j := range ls {
			if ls[j].Len() != len(models[j]) {
				return false
			}
			if err := ls[j].CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
