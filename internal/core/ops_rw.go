package core

// This file implements the paper's Leap-rwlock variant over the
// generalized batch as the three-phase committer: one reader-writer lock
// per list. Lookups and range queries hold the read lock; a batch
// write-locks every list it touches, acquired in list-creation order to
// exclude deadlock (a two-phase coordinator extends that order across
// groups by preparing them in ascending group order). Under the locks
// the structure is quiescent, so prepare plans every group against the
// pre-state with plain reads — no validation, marking or versioning —
// and publish installs the pieces with the same right-to-left direct-
// store walk as the LT postfix, whose cross-group resolution (succAt,
// frozen dying-node slots) the write lock makes trivially safe.
//
// The locks are held from prepare through publish/abort — strict
// two-phase locking — so a prepared RW batch needs nothing extra for
// read stability: PrepareOpts.LockReads is implied by the read lock an
// all-read batch already holds, and prepare never conflicts (it blocks
// on the lock instead), so PrepareOpts.MaxAttempts does not apply.

// rwCommitter drives the generalized batch under the lists' rw-locks.
type rwCommitter[V any] struct{ g *Group[V] }

// prepare blocks on the list locks and cannot fail after acquiring
// them; its only error returns (cancellation, fault injection) fire
// before any lock is taken or plan built, so there is nothing to
// release on those paths.
//
//lint:allow phaseorder error returns precede lock acquisition and planning; no plan exists to release
func (c rwCommitter[V]) prepare(ops []Op[V], b *txState[V], opt PrepareOpts) error {
	g := c.g
	// RW prepares by blocking on the list locks, so cancellation is
	// checked only here at entry (nothing is held yet): once the ordered
	// acquisition starts there is no safe preemption point, and prepare
	// cannot conflict afterwards. A deadline can therefore overshoot by
	// one lock convoy — bounded by competitors' O(swings) hold times.
	if err := opt.cancelErr(); err != nil {
		g.stm.NoteTimeoutAbort()
		return err
	}
	if err := fpEval(fpRWPrepare); err != nil {
		return err
	}
	// An all-read batch (Gets and GetRanges: a linearizable multi-key,
	// multi-interval read) runs under the read locks, so read-only
	// transactions run concurrently with readers.
	readOnly := true
	for i := range ops {
		if ops[i].Kind != OpGet && ops[i].Kind != OpGetRange {
			readOnly = false
			break
		}
	}
	b.collectLists(ops)
	b.rwRead = readOnly
	for _, l := range b.lists { // ascending id order: deadlock-free
		if readOnly {
			l.mu.RLock()
		} else {
			l.mu.Lock()
		}
	}
	// A panic past this point (a plan bug) must not strand the list
	// locks: a caller that recovers would otherwise hang the whole
	// group forever. Unlock, then re-panic.
	defer func() {
		if r := recover(); r != nil {
			c.unlock(b)
			panic(r)
		}
	}()
	// Quiescent plan: under the locks neither search nor buildEntry can
	// fail or go stale, and the whole plan reads the pre-state (the
	// splices land at publish, wired through succAt like LT's).
	if err := g.planGroups(ops, b, planRWMode, nil,
		func(l *List[V], k uint64, e *txEntry[V], seed []*node[V]) error {
			searchRWSeeded(l, k, e.pa, e.na, seed, l.id)
			return nil
		}, nil); err != nil {
		panic("core: unreachable RW plan error: " + err.Error())
	}
	return nil
}

func (c rwCommitter[V]) publish(ops []Op[V], b *txState[V]) {
	g := c.g
	// Last point where the batch is still invisible. An ActPause here
	// stalls the publish with the list write locks held: lock-based
	// readers block (unlike LT/COP/TM, whose readers run on), which is
	// exactly this variant's failure surface.
	fpHit(fpRWPublish)
	// As in prepare: never strand the list locks on a panic.
	unlocked := false
	defer func() {
		if r := recover(); r != nil {
			if !unlocked {
				c.unlock(b)
			}
			panic(r)
		}
	}()
	var ts uint64
	if g.bundles() {
		// Bundle phase A and the batch timestamp, both under the list
		// write locks that serialize every publish touching these links.
		g.bunPublishStart(b)
		if len(b.bunFills) > 0 {
			ts = g.stm.Clock().Tick()
		}
	}
	c.install(b)
	c.unlock(b)
	unlocked = true
	c.finish(ops, b, ts)
}

// publishAt is the coordinated post-phase-A half of publish: the
// coordinator already ran PublishStart (bunPublishStart under this
// list's write lock, which stays held until here) and drew ts from the
// shared clock.
func (c rwCommitter[V]) publishAt(ops []Op[V], b *txState[V], ts uint64) {
	unlocked := false
	defer func() {
		if r := recover(); r != nil {
			if !unlocked {
				c.unlock(b)
			}
			panic(r)
		}
	}()
	c.install(b)
	c.unlock(b)
	unlocked = true
	c.finish(ops, b, ts)
}

// install performs the pointer swings and retirements of a publish,
// under the list write locks (acquired by prepare, released by the
// caller). The bundle fill pass and the index update run after the
// locks drop (finish): both already tolerate competitor publishes — LT
// runs them after its marks are released — and keeping them out of the
// critical section keeps the lock hold time O(swings), which matters
// under write contention (the rw-lock convoy is this variant's
// bottleneck). Readers meeting a still-PENDING record spin for the
// bounded remainder of this goroutine's postfix exactly as under LT,
// and the batch's epoch pin (held until the scratch is returned) keeps
// truncation away from records the unlocked fill still owns.
func (c rwCommitter[V]) finish(ops []Op[V], b *txState[V], ts uint64) {
	g := c.g
	if g.bundles() {
		g.bunFillAll(b, ts)
	}
	g.indexPublish(ops, b)
}

func (c rwCommitter[V]) install(b *txState[V]) {
	g := c.g
	// Install right-to-left within each list, exactly the LT postfix: a
	// group whose predecessor is itself being replaced writes into the
	// dying node's frozen slots first, and the dying node's own
	// replacement then copies those already-updated pointers.
	for t := b.nEnt - 1; t >= 0; t-- {
		e := b.entries[t]
		if !e.write {
			continue
		}
		g.releaseEntry(b, t)
		if e.runEnd != nil {
			// Splice-run entry: the swings above already routed around the
			// run; kill the run nodes (the write lock makes the plain walk
			// and stores safe) and retire the whole chain as one object.
			for x := e.n; ; x = x.next[0].PeekPtr() {
				x.live.DirectStore(0)
				if x == e.runEnd {
					break
				}
			}
			g.retireRun(b, e.n, e.runEnd)
			continue
		}
		e.n.live.DirectStore(0)
		g.retireNode(b, e.n)
		if e.merge {
			e.old1.live.DirectStore(0)
			g.retireNode(b, e.old1)
		}
	}
}

func (c rwCommitter[V]) abort(ops []Op[V], b *txState[V]) {
	fpHit(fpRWAbort)
	// Nothing was installed and the locks excluded every observer:
	// recycling the pieces and unlocking restores the pre-prepare world.
	c.g.releasePlan(b)
	c.unlock(b)
}

func (c rwCommitter[V]) unlock(b *txState[V]) {
	for _, l := range b.lists {
		if b.rwRead {
			l.mu.RUnlock()
		} else {
			l.mu.Unlock()
		}
	}
}
