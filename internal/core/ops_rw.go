package core

// This file implements the paper's Leap-rwlock variant over the
// generalized batch: one reader-writer lock per list. Lookups and range
// queries hold the read lock; a batch write-locks every list it touches,
// acquired in list-creation order to exclude deadlock. Under the locks
// the structure is quiescent, so groups are planned and applied
// sequentially with plain reads and direct stores — each group's search
// observes the splices of the groups before it — and no validation,
// marking or versioning is needed.

// commitRW runs the generalized batch under the lists' write locks — or,
// for an all-read batch (Gets and GetRanges: a linearizable multi-key,
// multi-interval read), under their read locks, so read-only
// transactions run concurrently with readers.
func (g *Group[V]) commitRW(ops []Op[V], b *txState[V]) {
	readOnly := true
	for i := range ops {
		if ops[i].Kind != OpGet && ops[i].Kind != OpGetRange {
			readOnly = false
			break
		}
	}
	b.collectLists(ops)
	for _, l := range b.lists { // ascending id order: deadlock-free
		if readOnly {
			l.mu.RLock()
		} else {
			l.mu.Lock()
		}
	}
	defer func() {
		for _, l := range b.lists {
			if readOnly {
				l.mu.RUnlock()
			} else {
				l.mu.Unlock()
			}
		}
	}()

	// Quiescent plan-and-apply: neither search nor buildEntry can fail or
	// go stale under the write locks.
	_ = g.planGroups(ops, b, planRWMode, nil,
		func(l *List[V], k uint64, e *txEntry[V]) error {
			searchRW(l, k, e.pa, e.na)
			return nil
		},
		func(t int) error {
			e := b.entries[t]
			if !e.write {
				return nil
			}
			g.releaseEntry(b, t)
			e.n.live.DirectStore(0)
			g.retireNode(b, e.n)
			if e.merge {
				e.old1.live.DirectStore(0)
				g.retireNode(b, e.old1)
			}
			return nil
		})
}
