package core

import (
	"sort"

	"leaplist/internal/stm"
)

// This file implements the paper's Leap-rwlock variant: one reader-writer
// lock per list. Lookups and range queries hold the read lock; updates and
// removes hold the write locks of every list in their batch, acquired in
// list-creation order to exclude deadlock. Under the lock the structure is
// quiescent, so all accesses are plain (Peek/Init/DirectStore) and no
// validation, marking or versioning is needed.

// lockAll write-locks the batch's lists in id order.
func lockAll[V any](ls []*List[V]) {
	ordered := make([]*List[V], len(ls))
	copy(ordered, ls)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	for _, l := range ordered {
		l.mu.Lock()
	}
}

func unlockAll[V any](ls []*List[V]) {
	for _, l := range ls {
		l.mu.Unlock()
	}
}

// updateRW is the composed update across the lists of one batch.
func (g *Group[V]) updateRW(ls []*List[V], ks []uint64, vs []V) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	lockAll(ls)
	defer unlockAll(ls)

	for j := 0; j < s; j++ {
		k := toInternal(ks[j])
		searchRW(ls[j], k, b.pa[j], b.na[j])
		n := b.na[j][0]
		b.n[j] = n
		var new0, new1 *node[V]
		split := n.count() == g.cfg.NodeSize
		if split {
			new1 = newNode[V](n.level)
			new0 = newNode[V](g.pickLevel())
		} else {
			new0 = newNode[V](n.level)
		}
		createNewNodes(n, k, vs[j], split, new0, new1)
		b.split[j], b.new0[j], b.new1[j] = split, new0, new1
		b.maxH[j] = new0.level
		if split && new1.level > b.maxH[j] {
			b.maxH[j] = new1.level
		}
		g.spliceRW(b, j)
		g.retire(n)
	}
}

// spliceRW rewires one list under its write lock, mirroring the release
// phase of Figure 10 without marks.
func (g *Group[V]) spliceRW(b *batchState[V], j int) {
	n, new0, new1 := b.n[j], b.new0[j], b.new1[j]
	pa, na := b.pa[j], b.na[j]

	if b.split[j] {
		if new1.level > new0.level {
			for i := 0; i < new0.level; i++ {
				new0.next[i].Init(new1, stm.TagNone)
				new1.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
			}
			for i := new0.level; i < new1.level; i++ {
				new1.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
			}
		} else {
			for i := 0; i < new1.level; i++ {
				new0.next[i].Init(new1, stm.TagNone)
				new1.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
			}
			for i := new1.level; i < new0.level; i++ {
				if i < n.level {
					new0.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
				} else {
					new0.next[i].Init(na[i], stm.TagNone)
				}
			}
		}
	} else {
		for i := 0; i < new0.level; i++ {
			new0.next[i].Init(n.next[i].PeekPtr(), stm.TagNone)
		}
	}
	new0.live.Init(1)
	if b.split[j] {
		new1.live.Init(1)
	}
	for i := 0; i < new0.level; i++ {
		pa[i].next[i].DirectStore(new0, stm.TagNone)
	}
	if b.split[j] && new1.level > new0.level {
		for i := new0.level; i < new1.level; i++ {
			pa[i].next[i].DirectStore(new1, stm.TagNone)
		}
	}
	n.live.DirectStore(0)
}

// removeRW is the composed remove across the lists of one batch.
func (g *Group[V]) removeRW(ls []*List[V], ks []uint64, changed []bool) {
	s := len(ls)
	b := g.getBatch(s)
	defer g.putBatch(b)

	lockAll(ls)
	defer unlockAll(ls)

	for j := 0; j < s; j++ {
		k := toInternal(ks[j])
		searchRW(ls[j], k, b.pa[j], b.na[j])
		old0 := b.na[j][0]
		if old0.find(k) < 0 {
			changed[j] = false
			continue
		}
		old1 := old0.next[0].PeekPtr()
		merge := false
		if old1 != nil && old0.count()+old1.count() <= g.cfg.NodeSize {
			merge = true
		}
		lvl := old0.level
		if merge && old1.level > lvl {
			lvl = old1.level
		}
		repl := newNode[V](lvl)
		changed[j] = removeAndMerge(old0, old1, k, merge, repl)

		if merge {
			for i := 0; i < old1.level && i < repl.level; i++ {
				repl.next[i].Init(old1.next[i].PeekPtr(), stm.TagNone)
			}
			for i := old1.level; i < old0.level; i++ {
				repl.next[i].Init(old0.next[i].PeekPtr(), stm.TagNone)
			}
		} else {
			for i := 0; i < old0.level; i++ {
				repl.next[i].Init(old0.next[i].PeekPtr(), stm.TagNone)
			}
		}
		repl.live.Init(1)
		for i := 0; i < repl.level; i++ {
			b.pa[j][i].next[i].DirectStore(repl, stm.TagNone)
		}
		old0.live.DirectStore(0)
		g.retire(old0)
		if merge {
			old1.live.DirectStore(0)
			g.retire(old1)
		}
	}
}
