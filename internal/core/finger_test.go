package core

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

// The finger tests deliberately hammer the cases where a remembered
// finger goes stale between operations: value-only replacement (the
// fingered node dies but its successor owns the same range), splits and
// merges (the range moves to differently-shaped nodes), DeleteRange
// emptying fully covered nodes in place, and cross-list reuse of pooled
// scratch. A finger is only ever a hint, so every one of these must
// produce a fallback, never a wrong result.

// TestFingerStaleDeterministic drives one goroutine's scratch through
// systematic finger invalidation per variant, checking every read
// against a mirror map. Single-goroutine means the same pooled scratch
// (and so the same finger) is reused by consecutive operations, making
// each staleness scenario deterministic.
func TestFingerStaleDeterministic(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		mirror := map[uint64]uint64{}
		check := func(k uint64) {
			t.Helper()
			got, ok := l.Lookup(k)
			want, wantOK := mirror[k]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Lookup(%d) = (%d,%v), mirror (%d,%v)", k, got, ok, want, wantOK)
			}
		}
		set := func(k, v uint64) {
			t.Helper()
			if err := l.Set(k, v); err != nil {
				t.Fatalf("Set(%d): %v", k, err)
			}
			mirror[k] = v
		}
		del := func(k uint64) {
			t.Helper()
			if _, err := l.Delete(k); err != nil {
				t.Fatalf("Delete(%d): %v", k, err)
			}
			delete(mirror, k)
		}
		delRange := func(lo, hi uint64) {
			t.Helper()
			ops := []Op[uint64]{{List: l, Kind: OpDeleteRange, Key: lo, KeyHi: hi}}
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("DeleteRange(%d,%d): %v", lo, hi, err)
			}
			for k := lo; k <= hi; k++ {
				delete(mirror, k)
			}
		}

		// Seed: keys 0..79 (NodeSize 4 → ~20+ nodes).
		for k := uint64(0); k < 80; k++ {
			set(k, k)
		}

		// 1. Value-only staleness: the lookup warms the finger on the
		// node owning 40; the overwrite replaces that node (structure
		// sharing), so the next lookups reuse a dead finger whose
		// replacement owns the same range.
		check(40)
		set(40, 1000)
		check(40)
		check(41)

		// 2. Split staleness: grow the fingered node past NodeSize so the
		// replacement splits; nearby lookups then cross the new geometry.
		check(50)
		for k := uint64(200); k < 212; k++ {
			set(k, k)
		}
		check(50)
		check(51)
		check(200)

		// 3. Merge staleness: empty the fingered node's neighbourhood so
		// shrinking replacements absorb successors.
		check(20)
		for k := uint64(16); k < 28; k++ {
			del(k)
		}
		check(20)
		check(28)

		// 4. DeleteRange empty-in-place: the finger sits inside a fully
		// covered interior node; the range leaves an empty replacement
		// with the same bounds.
		check(60)
		delRange(56, 72)
		check(60)
		check(73)

		// 5. Range continuation: a snapshot leaves the finger on the
		// run's last node; delete that region and read through it again.
		if got, want := l.RangeQuery(30, 50, nil), countRange(mirror, 30, 50); got != want {
			t.Fatalf("RangeQuery(30,50) = %d, mirror %d", got, want)
		}
		delRange(44, 52)
		if got, want := l.RangeQuery(30, 50, nil), countRange(mirror, 30, 50); got != want {
			t.Fatalf("RangeQuery(30,50) after delete = %d, mirror %d", got, want)
		}
		check(43)

		// 6. Backward movement: finger well past the key (fallback path).
		check(75)
		check(0)

		// 7. Cross-list scratch reuse: the same pooled scratch serves a
		// different list; the finger's list id must disqualify it.
		l2 := g.NewList()
		if err := l2.Set(40, 7); err != nil {
			t.Fatal(err)
		}
		if v, ok := l2.Lookup(40); !ok || v != 7 {
			t.Fatalf("l2.Lookup(40) = (%d,%v), want (7,true)", v, ok)
		}
		check(40)

		mustCheck(t, l)
		mustCheck(t, l2)
	})
}

func countRange(m map[uint64]uint64, lo, hi uint64) int {
	n := 0
	for k := range m {
		if k >= lo && k <= hi {
			n++
		}
	}
	return n
}

// TestFingerBatchSeedReuse drives multi-key ascending batches — the
// sorted-batch predecessor-reuse path — through the same mirror
// discipline, interleaving value-only, splitting, merging and
// range-deleting batches so consecutive groups seed from predecessors
// that the previous group (or batch) has since replaced.
func TestFingerBatchSeedReuse(t *testing.T) {
	forEachVariant(t, func(t *testing.T, g *Group[uint64]) {
		l := g.NewList()
		mirror := map[uint64]uint64{}
		r := rand.New(rand.NewPCG(97, uint64(g.cfg.Variant)))
		const keySpace = 96
		rounds := 400
		if testing.Short() {
			rounds = 80
		}
		for round := 0; round < rounds; round++ {
			base := r.Uint64N(keySpace)
			n := 2 + r.IntN(6)
			ops := make([]Op[uint64], 0, n)
			for j := 0; j < n; j++ {
				k := (base + uint64(j)*uint64(1+r.IntN(4))) % keySpace
				switch r.IntN(5) {
				case 0, 1:
					ops = append(ops, Op[uint64]{List: l, Kind: OpSet, Key: k, Val: r.Uint64()})
				case 2:
					ops = append(ops, Op[uint64]{List: l, Kind: OpDelete, Key: k})
				case 3:
					ops = append(ops, Op[uint64]{List: l, Kind: OpGet, Key: k})
				default:
					ops = append(ops, Op[uint64]{List: l, Kind: OpDeleteRange, Key: k, KeyHi: k + r.Uint64N(8)})
				}
			}
			if err := g.CommitOps(ops); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			// Replay on the mirror in staging order, checking Gets.
			for i := range ops {
				op := &ops[i]
				switch op.Kind {
				case OpSet:
					mirror[op.Key] = op.Val
				case OpDelete:
					delete(mirror, op.Key)
				case OpGet:
					want, wantOK := mirror[op.Key]
					if op.Found != wantOK || (wantOK && op.Out != want) {
						t.Fatalf("round %d: staged Get(%d) = (%d,%v), mirror (%d,%v)",
							round, op.Key, op.Out, op.Found, want, wantOK)
					}
				case OpDeleteRange:
					for k := op.Key; k <= op.KeyHi; k++ {
						delete(mirror, k)
					}
				}
			}
			if round%50 == 0 {
				for k := uint64(0); k < keySpace; k++ {
					got, ok := l.Lookup(k)
					want, wantOK := mirror[k]
					if ok != wantOK || (ok && got != want) {
						t.Fatalf("round %d: Lookup(%d) = (%d,%v), mirror (%d,%v)", round, k, got, ok, want, wantOK)
					}
				}
				mustCheck(t, l)
			}
		}
		mustCheck(t, l)
	})
}

// TestFingerInvalidationOracle is the concurrent randomized oracle:
// workers own disjoint key residues (k % workers == id) of one shared
// list, so every worker's locality-windowed point ops and ascending
// batches constantly split, merge and replace the fat nodes holding the
// other workers' keys — invalidating their fingers — while each worker's
// own reads remain deterministic against its private mirror. A dedicated
// churn worker runs DeleteRange/refill cycles over a private high region
// (unlink/empty invalidation), and every worker's occasional whole-space
// Count parks its read finger inside that churn region. Run with -race
// in CI.
func TestFingerInvalidationOracle(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			g := NewGroup[uint64](Config{NodeSize: 8, MaxLevel: 6, Variant: v}, nil)
			l := g.NewList()
			const (
				workers   = 4
				residues  = workers
				stripeTop = uint64(512) // striped oracle region: [0, stripeTop)
				churnLo   = uint64(600)
				churnHi   = uint64(700)
			)
			iters := stressIters(400)
			var wg sync.WaitGroup
			errs := make(chan error, workers+1)

			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id uint64) {
					defer wg.Done()
					r := rand.New(rand.NewPCG(id+1, uint64(v)))
					mirror := map[uint64]uint64{}
					// Locality window: keys stride upward through the
					// worker's residue class so fingers are hot.
					anchor := uint64(0)
					myKey := func() uint64 {
						off := r.Uint64N(6)
						return ((anchor+off)*residues + id) % stripeTop
					}
					for i := 0; i < iters; i++ {
						anchor = (anchor + 1) % (stripeTop / residues)
						switch r.IntN(10) {
						case 0, 1, 2:
							k := myKey()
							v := r.Uint64()
							if err := l.Set(k, v); err != nil {
								errs <- err
								return
							}
							mirror[k] = v
						case 3:
							k := myKey()
							if _, err := l.Delete(k); err != nil {
								errs <- err
								return
							}
							delete(mirror, k)
						case 4, 5, 6:
							k := myKey()
							got, ok := l.Lookup(k)
							want, wantOK := mirror[k]
							if ok != wantOK || (ok && got != want) {
								errs <- fmt.Errorf("worker %d: Lookup(%d) = (%d,%v), mirror (%d,%v)", id, k, got, ok, want, wantOK)
								return
							}
						case 7, 8:
							// Ascending multi-key batch within the residue:
							// staged Gets assert against the mirror at the
							// batch's own atomic instant, exercising the
							// seeded batch descents.
							n := 2 + r.IntN(4)
							ops := make([]Op[uint64], 0, n)
							base := myKey()
							for j := 0; j < n; j++ {
								k := (base + uint64(j)*residues) % stripeTop
								if k%residues != id {
									k = (k - k%residues + id) % stripeTop
								}
								if r.IntN(3) == 0 {
									ops = append(ops, Op[uint64]{List: l, Kind: OpGet, Key: k})
								} else {
									ops = append(ops, Op[uint64]{List: l, Kind: OpSet, Key: k, Val: r.Uint64()})
								}
							}
							if err := g.CommitOps(ops); err != nil {
								errs <- err
								return
							}
							for j := range ops {
								op := &ops[j]
								if op.Kind == OpGet {
									want, wantOK := mirror[op.Key]
									if op.Found != wantOK || (wantOK && op.Out != want) {
										errs <- fmt.Errorf("worker %d: staged Get(%d) = (%d,%v), mirror (%d,%v)", id, op.Key, op.Out, op.Found, want, wantOK)
										return
									}
								} else {
									mirror[op.Key] = op.Val
								}
							}
						default:
							// Whole-space count: parks the read finger on
							// the churn region's terminal run node, so the
							// next point read validates a finger from a
							// region another goroutine is shredding.
							l.RangeQuery(0, churnHi+50, nil)
						}
					}
					// Final sweep: every owned key must match the mirror.
					for k := id; k < stripeTop; k += residues {
						got, ok := l.Lookup(k)
						want, wantOK := mirror[k]
						if ok != wantOK || (ok && got != want) {
							errs <- fmt.Errorf("worker %d: final Lookup(%d) = (%d,%v), mirror (%d,%v)", id, k, got, ok, want, wantOK)
							return
						}
					}
				}(uint64(w))
			}

			// Churn worker: DeleteRange the private region (fully covering
			// several nodes → empty-in-place replacements), then refill.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters/4; i++ {
					ops := []Op[uint64]{{List: l, Kind: OpDeleteRange, Key: churnLo, KeyHi: churnHi}}
					if err := g.CommitOps(ops); err != nil {
						errs <- err
						return
					}
					for k := churnLo; k <= churnHi; k += 3 {
						if err := l.Set(k, k); err != nil {
							errs <- err
							return
						}
					}
				}
			}()

			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			mustCheck(t, l)
		})
	}
}

// TestFingerDisabledParity replays one deterministic mixed stream on a
// fingers-on and a fingers-off group and requires identical results —
// the Config knob changes cost, never semantics.
func TestFingerDisabledParity(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			gOn := NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: v}, nil)
			gOff := NewGroup[uint64](Config{NodeSize: 4, MaxLevel: 5, Variant: v, NoFingers: true}, nil)
			if gOn.fingers() == gOff.fingers() {
				t.Fatal("NoFingers knob did not change Group.fingers()")
			}
			lOn, lOff := gOn.NewList(), gOff.NewList()
			r := rand.New(rand.NewPCG(11, uint64(v)))
			for i := 0; i < 500; i++ {
				k := r.Uint64N(64)
				switch r.IntN(4) {
				case 0, 1:
					val := r.Uint64()
					if err := lOn.Set(k, val); err != nil {
						t.Fatal(err)
					}
					if err := lOff.Set(k, val); err != nil {
						t.Fatal(err)
					}
				case 2:
					on, err := lOn.Delete(k)
					if err != nil {
						t.Fatal(err)
					}
					off, err := lOff.Delete(k)
					if err != nil {
						t.Fatal(err)
					}
					if on != off {
						t.Fatalf("Delete(%d) presence: fingers on %v, off %v", k, on, off)
					}
				default:
					vOn, okOn := lOn.Lookup(k)
					vOff, okOff := lOff.Lookup(k)
					if okOn != okOff || vOn != vOff {
						t.Fatalf("Lookup(%d): fingers on (%d,%v), off (%d,%v)", k, vOn, okOn, vOff, okOff)
					}
					hi := k + r.Uint64N(32)
					if cOn, cOff := lOn.RangeQuery(k, hi, nil), lOff.RangeQuery(k, hi, nil); cOn != cOff {
						t.Fatalf("RangeQuery(%d,%d): fingers on %d, off %d", k, hi, cOn, cOff)
					}
				}
			}
			mustCheck(t, lOn)
			mustCheck(t, lOff)
		})
	}
}
