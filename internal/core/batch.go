package core

import "errors"

// ErrDuplicateList rejects batches naming the same list twice: two keys of
// one batch landing in the same node would make the operation conflict with
// itself (the paper's batches always address L distinct lists).
var ErrDuplicateList = errors.New("core: duplicate list in batch")

// batchState is the reusable per-operation scratch of the update/remove
// protocols: predecessor/successor arrays per list (the paper's pa and na),
// the target nodes, the replacement nodes, and the per-list flags. Pooled
// per group so steady-state operations allocate only the replacement nodes
// themselves.
type batchState[V any] struct {
	pa, na  [][]*node[V]
	n       []*node[V] // na[j][0], the node being replaced
	old1    []*node[V] // remove: successor merged away, if any
	new0    []*node[V] // replacement (update: left half on split)
	new1    []*node[V] // update: right half on split
	split   []bool
	merge   []bool
	changed []bool
	maxH    []int
}

// getBatch returns scratch sized for s lists of maxLevel levels.
func (g *Group[V]) getBatch(s int) *batchState[V] {
	b, _ := g.pool.Get().(*batchState[V])
	if b == nil {
		b = &batchState[V]{}
	}
	b.ensure(s, g.cfg.MaxLevel)
	return b
}

func (g *Group[V]) putBatch(b *batchState[V]) {
	b.clear()
	g.pool.Put(b)
}

func (b *batchState[V]) ensure(s, maxLevel int) {
	for len(b.pa) < s {
		b.pa = append(b.pa, make([]*node[V], maxLevel))
		b.na = append(b.na, make([]*node[V], maxLevel))
	}
	for j := 0; j < s; j++ {
		if len(b.pa[j]) < maxLevel {
			b.pa[j] = make([]*node[V], maxLevel)
			b.na[j] = make([]*node[V], maxLevel)
		}
	}
	grow := func(sl []*node[V]) []*node[V] {
		for len(sl) < s {
			sl = append(sl, nil)
		}
		return sl
	}
	b.n = grow(b.n)
	b.old1 = grow(b.old1)
	b.new0 = grow(b.new0)
	b.new1 = grow(b.new1)
	for len(b.split) < s {
		b.split = append(b.split, false)
		b.merge = append(b.merge, false)
		b.changed = append(b.changed, false)
		b.maxH = append(b.maxH, 0)
	}
}

// clear drops node references so the pooled state does not pin dead nodes.
func (b *batchState[V]) clear() {
	for j := range b.n {
		b.n[j], b.old1[j], b.new0[j], b.new1[j] = nil, nil, nil, nil
		for i := range b.pa[j] {
			b.pa[j][i], b.na[j][i] = nil, nil
		}
	}
}

// checkBatch validates batch inputs shared by Update and Remove.
func (g *Group[V]) checkBatch(ls []*List[V], ks []uint64, nvals int) error {
	if len(ls) == 0 {
		return ErrEmptyBatch
	}
	if len(ks) != len(ls) || (nvals >= 0 && nvals != len(ls)) {
		return ErrBatchMismatch
	}
	for j, l := range ls {
		if l == nil || l.g != g {
			return ErrForeignList
		}
		if ks[j] > MaxKey {
			return ErrKeyRange
		}
		for i := 0; i < j; i++ {
			if ls[i] == l {
				return ErrDuplicateList
			}
		}
	}
	return nil
}
