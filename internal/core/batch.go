package core

import (
	"errors"
	"runtime"
	"sort"

	"leaplist/internal/epoch"
	"leaplist/internal/stm"
)

// ErrDuplicateList rejects legacy fixed-shape batches (Update/Remove) that
// name the same list twice; the general CommitOps path has no such
// restriction — several keys of one list coalesce into per-node groups.
var ErrDuplicateList = errors.New("core: duplicate list in batch")

// ErrOpKind rejects a staged operation whose Kind field is unset or
// out of range.
var ErrOpKind = errors.New("core: unknown op kind")

// OpKind selects what a staged operation does to its key.
type OpKind uint8

const (
	// OpSet inserts or overwrites Key with Val.
	OpSet OpKind = iota + 1
	// OpDelete removes Key, reporting prior presence in Found.
	OpDelete
	// OpGet reads Key into (Out, Found) at the batch's linearization
	// point, observing writes staged earlier in the same batch.
	OpGet
)

// Op is one staged operation of a composed batch. A batch is a slice of
// ops over any member lists of one group — any mix of kinds, any number
// of keys per list — committed by Group.CommitOps as a single atomic,
// linearizable operation.
//
// Within a batch, ops on the same (list, key) apply in slice order:
// later writes win ("last-write-wins") and a Get observes exactly the
// writes staged before it. Ops landing in the same fat node coalesce
// into one node replacement.
type Op[V any] struct {
	List *List[V]
	Kind OpKind
	Key  uint64
	Val  V // OpSet only

	// Results, written by CommitOps on success.
	Found bool // OpGet: key present; OpDelete: key was present
	Out   V    // OpGet: the value read
}

// txEntry is the per-(list, node) unit of a batch plan: the ops that land
// in one node, the search context around that node, and the replacement
// nodes that will supplant it.
type txEntry[V any] struct {
	l      *List[V]
	n      *node[V]   // the node being read or replaced (na[0])
	old1   *node[V]   // merge partner (successor), when merge is set
	merge  bool       // replacement absorbs old1
	write  bool       // entry changes the structure (false: Gets/no-op deletes only)
	pa, na []*node[V] // per-level predecessors/successors from the search
	pieces []*node[V] // replacement nodes, left to right; empty when !write
	maxH   int        // max level over pieces; pa slots [0, maxH) are swung
	lo, hi int        // this entry's ops: b.order[lo:hi]
}

// txState is the pooled scratch of one CommitOps call: the sorted op
// order, the per-node entries, shared buffers, and the epoch participant
// the whole call runs pinned to.
type txState[V any] struct {
	order   []int // op indexes sorted by (list id, key, staging order)
	entries []*txEntry[V]
	nEnt    int
	used    int        // high-water mark of nEnt since the last putBatch
	lists   []*List[V] // distinct lists in ascending id order

	marked    []*stm.TaggedPtr[node[V]]
	markedMap map[*stm.TaggedPtr[node[V]]]struct{} // spill for wide batches

	// part is the epoch participant this scratch pins for the duration of
	// each CommitOps call (registered once per pooled scratch; released
	// back to the collector by finalizer when the pool drops the scratch).
	part *epoch.Participant

	// ovIdx/ovVal stage the (index, value) overwrites of the value-only
	// fast path, per entry.
	ovIdx []int
	ovVal []V
}

// getBatch returns pooled scratch for a batch, pinned to an epoch
// participant: from here until putBatch, no retired node this operation
// can observe will be recycled.
func (g *Group[V]) getBatch() *txState[V] {
	b, _ := g.pool.Get().(*txState[V])
	if b == nil {
		b = &txState[V]{part: g.collector.Acquire()}
		col := g.collector
		runtime.SetFinalizer(b, func(dead *txState[V]) { col.Release(dead.part) })
	}
	b.part.Pin()
	return b
}

// putBatch unpins and clears node and value references so the pooled
// state does not pin dead nodes or values, then returns it to the pool.
// Only the entries this batch touched (the high-water mark across
// retries) need clearing; the rest were already cleared when their batch
// finished.
func (g *Group[V]) putBatch(b *txState[V]) {
	for _, e := range b.entries[:b.used] {
		e.n, e.old1 = nil, nil
		for i := range e.pa {
			e.pa[i], e.na[i] = nil, nil
		}
		for i := range e.pieces {
			e.pieces[i] = nil
		}
		e.pieces = e.pieces[:0]
		e.l = nil
	}
	for i := range b.lists {
		b.lists[i] = nil
	}
	b.lists = b.lists[:0]
	b.marked = b.marked[:0]
	b.markedMap = nil
	b.nEnt, b.used = 0, 0
	b.ovIdx = b.ovIdx[:0]
	clear(b.ovVal)
	b.ovVal = b.ovVal[:0]
	b.part.Unpin()
	g.pool.Put(b)
}

// nextEntry hands out the next pooled entry, sized for maxLevel.
func (b *txState[V]) nextEntry(maxLevel int) *txEntry[V] {
	if b.nEnt == len(b.entries) {
		b.entries = append(b.entries, &txEntry[V]{})
	}
	e := b.entries[b.nEnt]
	b.nEnt++
	if b.nEnt > b.used {
		b.used = b.nEnt
	}
	if len(e.pa) < maxLevel {
		e.pa = make([]*node[V], maxLevel)
		e.na = make([]*node[V], maxLevel)
	}
	e.n, e.old1 = nil, nil
	e.merge, e.write = false, false
	e.pieces = e.pieces[:0]
	e.maxH = 0
	return e
}

// sortOps fills b.order with op indexes sorted by (list id, key, staging
// order). Stability in staging order is what gives same-key ops their
// last-write-wins and read-your-own-writes semantics.
func (b *txState[V]) sortOps(ops []Op[V]) {
	b.order = b.order[:0]
	for i := range ops {
		b.order = append(b.order, i)
	}
	ord := b.order
	less := func(x, y int) bool {
		ox, oy := &ops[x], &ops[y]
		if ox.List != oy.List {
			return ox.List.id < oy.List.id
		}
		if ox.Key != oy.Key {
			return ox.Key < oy.Key
		}
		return x < y
	}
	if len(ord) <= 24 {
		// Insertion sort: the common batch is a handful of ops and must
		// not allocate.
		for i := 1; i < len(ord); i++ {
			for j := i; j > 0 && less(ord[j], ord[j-1]); j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		return
	}
	sort.Slice(ord, func(i, j int) bool { return less(ord[i], ord[j]) })
}

// collectLists fills b.lists with the batch's distinct lists in ascending
// id order (b.order is already sorted by list id).
func (b *txState[V]) collectLists(ops []Op[V]) {
	b.lists = b.lists[:0]
	var prev *List[V]
	for _, i := range b.order {
		if l := ops[i].List; l != prev {
			b.lists = append(b.lists, l)
			prev = l
		}
	}
}

// nextPiece returns the first piece at index >= from with level > i, or
// nil. Pieces are ordered left to right, so this is the node that heads
// (or continues) the level-i chain through the replacement.
func nextPiece[V any](pieces []*node[V], from, i int) *node[V] {
	for ; from < len(pieces); from++ {
		if pieces[from].level > i {
			return pieces[from]
		}
	}
	return nil
}

// succAt resolves the successor of entry t's pieces at level i >= n.level,
// where the search-time successor na[i] may be preceded (or replaced) by
// pieces of other entries of the same batch between n and na[i]. Entries
// are ordered by position within a list, so the first batch piece tall
// enough to appear at level i before na[i] is the true successor; if
// na[i] itself is replaced (as another entry's node or merge partner),
// its replacement stands in.
func (b *txState[V]) succAt(t, i int) *node[V] {
	e := b.entries[t]
	target := e.na[i]
	for u := t + 1; u < b.nEnt; u++ {
		f := b.entries[u]
		if f.l != e.l {
			break
		}
		if f.n == target {
			if !f.write {
				break // target survives untouched
			}
			return nextPiece(f.pieces, 0, i)
		}
		if f.n.high >= target.high {
			break // past the search successor
		}
		if f.write {
			if p := nextPiece(f.pieces, 0, i); p != nil {
				return p
			}
		}
	}
	return target
}

// checkOps validates a general batch.
func (g *Group[V]) checkOps(ops []Op[V]) error {
	if len(ops) == 0 {
		return ErrEmptyBatch
	}
	for i := range ops {
		op := &ops[i]
		if op.List == nil || op.List.g != g {
			return ErrForeignList
		}
		if op.Key > MaxKey {
			return ErrKeyRange
		}
		switch op.Kind {
		case OpSet, OpDelete, OpGet:
		default:
			return ErrOpKind
		}
	}
	return nil
}

// Plan modes: how buildEntry reads the merge partner and reports
// staleness.
const (
	planNakedMode = iota // LT/COP setup: naked peeks, spin through marks
	planRWMode           // under the list write lock: plain peeks
	planTxMode           // TM: transactional loads inside tx
)

// buildEntry resolves entry e's ops against node n and constructs the
// replacement plan: staged Gets and Delete presence flags are written
// into the ops (observing earlier staged writes on the same key), the
// node's surviving pairs are merged with the batch's final per-key
// values, and the result is cut into replacement pieces (splitting when
// it outgrows NodeSize, absorbing the successor when a net shrink leaves
// room). hasNext/nextKey describe the next op beyond this entry in the
// same list; a merge is vetoed when the successor is itself a batch
// target.
//
// In planNakedMode a false return means the plan went stale (a node died
// mid-read) and the whole attempt must restart. In planTxMode a non-nil
// error aborts the enclosing transaction.
func (g *Group[V]) buildEntry(tx *stm.Tx, mode int, ops []Op[V], b *txState[V], e *txEntry[V], hasNext bool, nextKey uint64) (bool, error) {
	n := e.n

	// Pre-scan: a Get-only entry resolves straight off the immutable node
	// and builds nothing.
	sets := 0
	hasWriteOps := false
	for q := e.lo; q < e.hi; q++ {
		switch ops[b.order[q]].Kind {
		case OpSet:
			sets++
			hasWriteOps = true
		case OpDelete:
			hasWriteOps = true
		}
	}
	if !hasWriteOps {
		for q := e.lo; q < e.hi; q++ {
			op := &ops[b.order[q]]
			var zero V
			op.Found, op.Out = false, zero
			if i := n.find(toInternal(op.Key)); i >= 0 {
				op.Found, op.Out = true, n.vals[i]
			}
		}
		e.write = false
		return true, nil
	}

	// Value-only fast path: when every write lands as an overwrite of a
	// key already present (no insert, no net delete), the replacement has
	// the same keys, bounds and count as n — so it can share n's keys
	// array and sealed trie outright, copying only the values. No trie
	// rebuild, no keys copy, no split, no merge.
	if done, ok := g.buildValueOnly(mode, ops, b, e); done {
		if !ok {
			return false, nil // stale: node died under us
		}
		return true, nil
	}

	// Merge the node's pairs with the batch's per-key outcomes, copying
	// untouched segments wholesale. The buffer becomes the replacement
	// nodes' backing storage (recycled from retired nodes when possible).
	newKeys := g.getKeysBuf(n.count() + sets)
	newVals := g.getValsBuf(n.count() + sets)
	write := false
	src := 0

	run := e.lo
	for run < e.hi {
		k := toInternal(ops[b.order[run]].Key)
		runEnd := run
		for runEnd < e.hi && toInternal(ops[b.order[runEnd]].Key) == k {
			runEnd++
		}
		pos := lowerBound(n.keys, src, k)
		newKeys = append(newKeys, n.keys[src:pos]...)
		newVals = append(newVals, n.vals[src:pos]...)
		src = pos
		basePresent := src < len(n.keys) && n.keys[src] == k
		var baseV V
		if basePresent {
			baseV = n.vals[src]
		}
		cur, curV, sawWrite := foldRun(ops, b.order, run, runEnd, basePresent, baseV)
		if sawWrite {
			if cur {
				newKeys = append(newKeys, k)
				newVals = append(newVals, curV)
				write = true // a Set landed; values always replace
			} else if basePresent {
				write = true // net delete of a present key
			}
			if basePresent {
				src++
			}
		} else if basePresent {
			newKeys = append(newKeys, k)
			newVals = append(newVals, curV)
			src++
		}
		run = runEnd
	}
	newKeys = append(newKeys, n.keys[src:]...)
	newVals = append(newVals, n.vals[src:]...)

	e.write = write
	if !write {
		// The staged buffers never became node backing; hand them back.
		g.putKeysBuf(newKeys)
		g.putValsBuf(newVals)
		return true, nil
	}

	// Merge decision: a net shrink may absorb the successor, exactly the
	// legacy Remove rule (counts before the removal), unless the successor
	// is itself addressed by this batch (the next group replaces it).
	newCount := len(newKeys)
	if newCount < n.count() && n.high != posInf {
		var old1 *node[V]
		switch mode {
		case planNakedMode:
			// Read the successor through any in-flight mark; the postfix
			// holding it is bounded, so spin briefly (paper lines 159-162).
			for spin := 0; ; spin++ {
				succ, tag := n.next[0].Peek()
				if tag != stm.TagMarked {
					old1 = succ
					break
				}
				if n.live.Peek() == 0 {
					return false, nil // stale: node died under us
				}
				stmBackoff(spin)
			}
		case planRWMode:
			old1 = n.next[0].PeekPtr()
		case planTxMode:
			var err error
			old1, _, err = n.next[0].Load(tx)
			if err != nil {
				return false, err
			}
		}
		if old1 != nil && n.count()+old1.count() <= g.cfg.NodeSize &&
			!(hasNext && nextKey <= old1.high) {
			e.merge, e.old1 = true, old1
		}
	}

	if mode == planNakedMode {
		// Late liveness checks cut doomed lock attempts short (the plan is
		// still fully validated transactionally before committing).
		if n.live.Peek() == 0 {
			return false, nil
		}
		if e.merge && e.old1.live.Peek() == 0 {
			return false, nil
		}
	}

	g.buildPieces(b, e, newKeys, newVals)
	return true, nil
}

// buildValueOnly attempts the structure-sharing fast path for entry e:
// it resolves every run against node n without staging a keys buffer and,
// if every write turns out to be an overwrite of a present key (no
// insert, no net delete of a present key), builds the single replacement
// piece by borrowing n's keys array and sealed trie, copying only the
// values. It reports done = false when the entry has a structural outcome
// and the general path must run; when done, ok = false means the plan
// went stale (planNakedMode only). Staged Get and Delete results are
// written as a side effect either way (the general path recomputes them
// identically on a bail-out).
func (g *Group[V]) buildValueOnly(mode int, ops []Op[V], b *txState[V], e *txEntry[V]) (done, ok bool) {
	n := e.n
	b.ovIdx = b.ovIdx[:0]
	clear(b.ovVal)
	b.ovVal = b.ovVal[:0]

	run := e.lo
	for run < e.hi {
		k := toInternal(ops[b.order[run]].Key)
		runEnd := run
		for runEnd < e.hi && toInternal(ops[b.order[runEnd]].Key) == k {
			runEnd++
		}
		i := n.find(k)
		var baseV V
		if i >= 0 {
			baseV = n.vals[i]
		}
		cur, curV, sawWrite := foldRun(ops, b.order, run, runEnd, i >= 0, baseV)
		if sawWrite {
			if cur {
				if i < 0 {
					return false, false // insert of an absent key: structural
				}
				b.ovIdx = append(b.ovIdx, i)
				b.ovVal = append(b.ovVal, curV)
			} else if i >= 0 {
				return false, false // net delete of a present key: structural
			}
		}
		run = runEnd
	}

	if len(b.ovIdx) == 0 {
		// Every write was a no-op (deletes of absent keys); nothing to
		// replace.
		e.write = false
		return true, true
	}

	e.write = true
	if mode == planNakedMode && n.live.Peek() == 0 {
		return true, false
	}

	vals := g.getValsBuf(n.count())
	vals = append(vals, n.vals...)
	for j, i := range b.ovIdx {
		vals[i] = b.ovVal[j]
	}
	p := g.newShell(n.level)
	p.keys, p.vals, p.tr = n.keys, vals, n.tr
	p.high = n.high
	p.ownsKV = false
	n.lent.Store(true)
	e.pieces = append(e.pieces, p)
	e.maxH = p.level
	return true, true
}

// foldRun applies the staged ops of one (list, key) run — ops[order[lo:hi]],
// all on the same key — to the pre-state (present, presentV), writing Get
// results and Delete presence flags into the ops as it goes. It returns
// the key's final state and whether any write (Set or Delete) landed.
// This fold is the single definition of per-run op semantics
// (last-write-wins, read-your-own-writes), shared by the general merge
// loop in buildEntry and the value-only fast path so the two can never
// diverge.
func foldRun[V any](ops []Op[V], order []int, lo, hi int, present bool, presentV V) (cur bool, curV V, sawWrite bool) {
	cur, curV = present, presentV
	for q := lo; q < hi; q++ {
		op := &ops[order[q]]
		switch op.Kind {
		case OpGet:
			op.Found, op.Out = cur, curV
		case OpSet:
			cur, curV = true, op.Val
			sawWrite = true
		case OpDelete:
			op.Found = cur
			var zero V
			cur, curV = false, zero
			sawWrite = true
		}
	}
	return cur, curV, sawWrite
}

// lowerBound returns the first index i >= from with keys[i] >= k.
func lowerBound(keys []uint64, from int, k uint64) int {
	lo, hi := from, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// buildPieces cuts the entry's final content into sealed, not-yet-live
// replacement nodes, taking ownership of the buffers. The rightmost piece
// inherits the replaced region's level and high bound (so the terminal
// node stays terminal and every level the old node occupied stays
// occupied); earlier pieces draw random levels like fresh inserts. Shells
// and trie storage come from the group's recycler.
func (g *Group[V]) buildPieces(b *txState[V], e *txEntry[V], keysBuf []uint64, valsBuf []V) {
	n := e.n

	if e.merge {
		keysBuf = append(keysBuf, e.old1.keys...)
		valsBuf = append(valsBuf, e.old1.vals...)
		repl := g.newShell(max(n.level, e.old1.level))
		repl.keys, repl.vals = keysBuf, valsBuf
		repl.high = e.old1.high
		repl.tr = g.buildTrie(repl.keys)
		e.pieces = append(e.pieces, repl)
		e.maxH = repl.level
		return
	}

	total := len(keysBuf)
	k := g.cfg.NodeSize
	if total <= k {
		p := g.newShell(n.level)
		p.keys, p.vals = keysBuf, valsBuf
		p.high = n.high
		p.tr = g.buildTrie(p.keys)
		e.pieces = append(e.pieces, p)
		e.maxH = p.level
		return
	}
	// Split into pieces of roughly 3K/4 so coalesced bulk inserts leave
	// room to grow; for the classic one-over split (total = K+1) this
	// reproduces the legacy halving exactly. The pieces slice one shared
	// backing pair with non-overlapping three-index sections; each
	// section recycles independently (appends cannot cross its cap).
	target := 3 * k / 4
	if target < 1 {
		target = 1
	}
	m := (total + target - 1) / target
	base, rem := total/m, total%m
	e.maxH = 0
	start := 0
	for pi := 0; pi < m; pi++ {
		size := base
		if pi >= m-rem {
			size++
		}
		end := start + size
		var p *node[V]
		if pi == m-1 {
			p = g.newShell(n.level)
			p.high = n.high
		} else {
			p = g.newShell(g.pickLevel())
			p.high = keysBuf[end-1]
		}
		p.keys = keysBuf[start:end:end]
		p.vals = valsBuf[start:end:end]
		p.tr = g.buildTrie(p.keys)
		e.pieces = append(e.pieces, p)
		if p.level > e.maxH {
			e.maxH = p.level
		}
		start = end
	}
}

// errStalePlan aborts a naked planning pass when a node died mid-read;
// the whole attempt restarts from fresh searches.
var errStalePlan = errors.New("core: stale plan")

// planGroups is the shared grouping walk of every variant: ops are
// visited in sorted order, one search per node group, consecutive keys
// coalescing into the group while they fall under the found node's high
// bound; each group is built (buildEntry) and then handed to emit.
// search positions e.pa/e.na for the group's first key; emit (optional)
// applies the completed entry b.entries[t] — for the sequential variants
// (TM, RW) this happens before the next group's search, so that search
// observes the already-applied splices. Returns errStalePlan in naked
// mode when a node died mid-plan, or the first search/build/emit error.
func (g *Group[V]) planGroups(ops []Op[V], b *txState[V], mode int, tx *stm.Tx,
	search func(l *List[V], k uint64, e *txEntry[V]) error,
	emit func(t int) error) error {
	maxLevel := g.cfg.MaxLevel
	b.nEnt = 0
	i := 0
	for i < len(b.order) {
		l := ops[b.order[i]].List
		j := i
		for j < len(b.order) && ops[b.order[j]].List == l {
			j++
		}
		idx := i
		for idx < j {
			k := toInternal(ops[b.order[idx]].Key)
			e := b.nextEntry(maxLevel)
			t := b.nEnt - 1
			if err := search(l, k, e); err != nil {
				return err
			}
			e.l, e.n = l, e.na[0]
			e.lo = idx
			for idx < j && toInternal(ops[b.order[idx]].Key) <= e.n.high {
				idx++
			}
			e.hi = idx
			hasNext := idx < j
			var nextKey uint64
			if hasNext {
				nextKey = toInternal(ops[b.order[idx]].Key)
			}
			ok, err := g.buildEntry(tx, mode, ops, b, e, hasNext, nextKey)
			if err != nil {
				return err
			}
			if !ok {
				return errStalePlan
			}
			if emit != nil {
				if err := emit(t); err != nil {
					return err
				}
			}
		}
		i = j
	}
	return nil
}

// planNaked builds the full batch plan against naked searches (the COP
// read phase shared by LT and COP). Returns false when a node died
// mid-plan and the attempt must restart.
func (g *Group[V]) planNaked(ops []Op[V], b *txState[V]) bool {
	err := g.planGroups(ops, b, planNakedMode, nil,
		func(l *List[V], k uint64, e *txEntry[V]) error {
			searchNaked(l, k, e.pa, e.na)
			return nil
		}, nil)
	return err == nil
}
