package core

import (
	"errors"
	"runtime"
	"sort"

	"leaplist/internal/epoch"
	"leaplist/internal/stm"
)

// ErrDuplicateList rejects legacy fixed-shape batches (Update/Remove) that
// name the same list twice; the general CommitOps path has no such
// restriction — several keys of one list coalesce into per-node groups.
var ErrDuplicateList = errors.New("core: duplicate list in batch")

// ErrOpKind rejects a staged operation whose Kind field is unset or
// out of range.
var ErrOpKind = errors.New("core: unknown op kind")

// OpKind selects what a staged operation does to its key.
type OpKind uint8

const (
	// OpSet inserts or overwrites Key with Val.
	OpSet OpKind = iota + 1
	// OpDelete removes Key, reporting prior presence in Found.
	OpDelete
	// OpGet reads Key into (Out, Found) at the batch's linearization
	// point, observing writes staged earlier in the same batch.
	OpGet
	// OpGetRange reads every pair with key in [Key, KeyHi] into Range
	// (ascending) at the batch's linearization point, observing writes
	// staged earlier in the same batch.
	OpGetRange
	// OpDeleteRange removes every pair with key in [Key, KeyHi],
	// reporting the number removed in N.
	OpDeleteRange
	// OpSetIf stores Val under Key when If approves the key's pre-state
	// (the value visible to this op after earlier staged writes),
	// reporting in Found whether the write applied. If must be non-nil
	// and pure: the plan may be re-executed on conflict, re-running the
	// predicate against a fresh pre-state each time.
	OpSetIf
)

// isRange reports whether the kind addresses an interval rather than a
// point key.
func (k OpKind) isRange() bool {
	return k == OpGetRange || k == OpDeleteRange
}

// Op is one staged operation of a composed batch. A batch is a slice of
// ops over any member lists of one group — any mix of kinds, any number
// of keys per list — committed by Group.CommitOps as a single atomic,
// linearizable operation.
//
// Within a batch, ops on the same (list, key) apply in slice order:
// later writes win ("last-write-wins") and a Get observes exactly the
// writes staged before it. Range ops participate per covered key at
// their staged position: an OpGetRange observes point writes (and range
// deletes) staged before it on every key it covers, and a later OpSet
// survives an earlier OpDeleteRange. Ops landing in the same fat node
// coalesce into one node replacement; a range spanning several adjacent
// nodes plans one group per node.
type Op[V any] struct {
	List  *List[V]
	Kind  OpKind
	Key   uint64
	Val   V      // OpSet, OpSetIf only
	KeyHi uint64 // OpGetRange, OpDeleteRange: inclusive upper bound

	// If is OpSetIf's predicate over the key's pre-state: cur is the
	// value this op observes (zero when absent), found its presence. The
	// write applies iff If returns true. Must be pure — conflict retries
	// and TM re-execution re-run it, possibly against a different
	// pre-state.
	If func(cur V, found bool) bool

	// Results, written by CommitOps on success.
	Found bool    // OpGet: key present; OpDelete: key was present; OpSetIf: write applied
	Out   V       // OpGet: the value read
	N     int     // OpGetRange: pairs read; OpDeleteRange: pairs removed
	Range []KV[V] // OpGetRange: the snapshot, ascending (reset, then appended)
}

// txEntry is the per-(list, node) unit of a batch plan: the ops that land
// in one node, the search context around that node, and the replacement
// nodes that will supplant it.
type txEntry[V any] struct {
	l      *List[V]
	n      *node[V]   // the node being read or replaced (na[0])
	old1   *node[V]   // merge partner (successor), when merge is set
	merge  bool       // replacement absorbs old1
	write  bool       // entry changes the structure (false: Gets/no-op deletes only)
	pa, na []*node[V] // per-level predecessors/successors from the search
	pieces []*node[V] // replacement nodes, left to right; empty when !write
	maxH   int        // max level over pieces; pa slots [0, maxH) are swung
	lo, hi int        // this entry's point ops: b.order[lo:hi]
	rops   []int      // range ops overlapping this node, ascending op index

	// runEnd marks a splice-run entry: the consecutive level-0 nodes
	// [n, runEnd] are fully covered by a deleting interval (or are all
	// empty, for a scheduled absorb) and are unlinked wholesale — no
	// replacement pieces, one predecessor swing per level. maxH is then
	// the max level over the run's nodes, and runSucc[i] (i < maxH) the
	// plan-time first node past the run at level i, re-resolved through
	// later batch entries at publish (succTarget). nil for ordinary
	// entries.
	runEnd  *node[V]
	runSucc []*node[V]
	runCnt  int // pairs the planned run holds; re-counted at validation
}

// txState is the pooled scratch of one CommitOps call: the sorted op
// order, the per-node entries, shared buffers, and the epoch participant
// the whole call runs pinned to.
type txState[V any] struct {
	order   []int // point-op indexes sorted by (list id, key, staging order)
	rorder  []int // range-op indexes sorted by (list id, lo key, staging order)
	active  []int // range ops whose interval extends past the last planned node
	entries []*txEntry[V]
	nEnt    int
	used    int        // high-water mark of nEnt since the last putBatch
	lists   []*List[V] // distinct lists in ascending id order

	marked    []*stm.TaggedPtr[node[V]]
	markedMap map[*stm.TaggedPtr[node[V]]]struct{} // spill for wide batches

	// readMarkFrom is the index in marked where LT's read-stability
	// marks begin (PrepareOpts.LockReads): slots marked purely so a
	// prepared read-only group cannot be invalidated before Publish.
	// Marks below the index are cleared by the publish postfix's own
	// stores; the suffix must be released explicitly.
	readMarkFrom int

	// prep carries the COP/TM variants' prepared STM descriptor between
	// the prepare and publish/abort phases: write locks held, read set
	// validated (and locked, with LockReads), writes still buffered.
	prep stm.PreparedTx

	// rwRead records, for VariantRW, whether prepare took the lists'
	// read locks (an all-read batch) or their write locks — the
	// publish/abort phase must release the same kind.
	rwRead bool

	// spinBudget bounds the naked phases' wait loops (search restarts,
	// the merge-partner mark spin) for a bounded prepare: a competitor
	// in its own prepare window holds marks until ITS coordinator
	// publishes, so a bounded prepare must stop waiting and report a
	// conflict instead of spinning the attempt counter into
	// irrelevance. 0 (the default, and every fused CommitOps) never
	// gives up.
	spinBudget int

	// part is the epoch participant this scratch pins for the duration of
	// each CommitOps call (registered once per pooled scratch; released
	// back to the collector by finalizer when the pool drops the scratch).
	part *epoch.Participant

	// The cross-batch write finger: fpa holds, per level, the best known
	// predecessor candidates around the last published batch's last
	// entry (its search predecessors, topped by the replacement piece
	// itself), fList the list they belong to, and fEra the pin era they
	// were saved under (saveBatchFinger). getBatch validates the era on
	// the next pin and sets fSeedOK; planGroups then seeds the batch's
	// first descent into fList from fpa, so consecutive batches with key
	// locality skip most of their horizontal walking. The pointers
	// deliberately survive putBatch — they are the only cross-batch
	// state — pinning at most MaxLevel node shells against the GC
	// (their backing arrays are donated by the recycler regardless).
	fpa   []*node[V]
	fList *List[V]
	fEra  uint64
	// fSeedOK gates cross-batch seeding for the current call: the era
	// guard passed at getBatch and no plan attempt has failed yet (a
	// failed attempt disables seeding for its retries out of caution).
	fSeedOK bool

	// ovIdx/ovVal stage the (index, value) overwrites of the value-only
	// fast path, per entry.
	ovIdx []int
	ovVal []V

	// bunFills collects the versioned-link records this batch prepended
	// (pred-link, death, and piece birth records) for the publish fill
	// pass; see bundle.go. Cleared by releasePlan (a failed COP/TM attempt
	// recycles its pieces' birth records) and by putBatch.
	bunFills []bunFill[V]
}

// getBatch returns pooled scratch for a batch, pinned to an epoch
// participant: from here until putBatch, no retired node this operation
// can observe will be recycled.
func (g *Group[V]) getBatch() *txState[V] {
	b, _ := g.pool.Get().(*txState[V])
	if b == nil {
		b = &txState[V]{part: g.collector.Acquire()}
		col := g.collector
		runtime.SetFinalizer(b, func(dead *txState[V]) { col.Release(dead.part) })
	}
	b.part.Pin()
	// The era is validated against a fresh epoch read after the pin
	// store, not the participant word — see getRead for why the word
	// alone can be two epochs stale.
	b.fSeedOK = b.fList != nil && !g.cfg.NoFingers && g.collector.Epoch() == b.fEra
	if !b.fSeedOK && b.fList != nil {
		// The era moved on: the remembered nodes may have been recycled,
		// so their fields must not be read again. Drop the references.
		b.fList = nil
		for i := range b.fpa {
			b.fpa[i] = nil
		}
	}
	return b
}

// saveBatchFinger records the just-published batch's last entry as the
// cross-batch write finger: the entry's per-level search predecessors,
// topped (at the levels it spans) by the node now owning the entry's
// range — the last replacement piece, or the node itself for a read-only
// entry. The next batch on this scratch seeds its first descent into the
// same list from these, provided the epoch era has not moved (getBatch).
func (g *Group[V]) saveBatchFinger(b *txState[V]) {
	if g.cfg.NoFingers || b.nEnt == 0 {
		return
	}
	e := b.entries[b.nEnt-1]
	maxLevel := g.cfg.MaxLevel
	if len(e.pa) < maxLevel {
		return // pooled entry never searched (defensive; cannot happen)
	}
	// Steal the entry's pa array wholesale instead of copying it: the
	// entry is about to be cleared by putBatch anyway, and handing it our
	// previous fpa to clear avoids ten pointer stores (and their write
	// barriers) on every commit.
	b.fpa, e.pa = e.pa, b.fpa
	if e.pa == nil {
		e.pa = make([]*node[V], maxLevel)
	}
	top := e.n
	if e.write && len(e.pieces) > 0 {
		top = e.pieces[len(e.pieces)-1]
	}
	if top != nil {
		for i := 0; i < top.level && i < maxLevel; i++ {
			b.fpa[i] = top
		}
	}
	b.fList = e.l
	b.fEra = b.part.Era()
}

// putBatch unpins and clears node and value references so the pooled
// state does not pin dead nodes or values, then returns it to the pool.
// Only the entries this batch touched (the high-water mark across
// retries) need clearing; the rest were already cleared when their batch
// finished.
func (g *Group[V]) putBatch(b *txState[V]) {
	for _, e := range b.entries[:b.used] {
		e.n, e.old1, e.runEnd = nil, nil, nil
		for i := range e.pa {
			e.pa[i], e.na[i] = nil, nil
		}
		for i := range e.runSucc {
			e.runSucc[i] = nil
		}
		for i := range e.pieces {
			e.pieces[i] = nil
		}
		e.pieces = e.pieces[:0]
		e.rops = e.rops[:0]
		e.l = nil
	}
	for i := range b.lists {
		b.lists[i] = nil
	}
	b.lists = b.lists[:0]
	b.rorder = b.rorder[:0]
	b.active = b.active[:0]
	// clear before truncating: a prepare retry that marked fewer nodes
	// than an earlier attempt leaves stale TaggedPtr pointers beyond len,
	// and this len-bounded path is the only one that ever touches them —
	// a bare [:0] would pin those nodes for the pooled txState's lifetime.
	clear(b.marked)
	b.marked = b.marked[:0]
	// Retain the dedup map cleared (emptying drops its node pins) so a
	// wide-batch domain — a DeleteRange splicing long runs every commit —
	// builds it once instead of reallocating per transaction; an outsized
	// one is dropped, matching the slice-shrink discipline above.
	if len(b.markedMap) > markedMapKeepCap {
		b.markedMap = nil
	} else {
		clear(b.markedMap)
	}
	b.readMarkFrom = 0
	b.rwRead = false
	b.spinBudget = 0
	b.nEnt, b.used = 0, 0
	b.ovIdx = b.ovIdx[:0]
	clear(b.ovVal)
	b.ovVal = b.ovVal[:0]
	// clear before truncating, as for marked: pooled record pointers
	// beyond len would pin recycled bundle records indefinitely.
	clear(b.bunFills)
	b.bunFills = b.bunFills[:0]
	b.part.Unpin()
	g.pool.Put(b)
}

// nextEntry hands out the next pooled entry, sized for maxLevel.
func (b *txState[V]) nextEntry(maxLevel int) *txEntry[V] {
	if b.nEnt == len(b.entries) {
		b.entries = append(b.entries, &txEntry[V]{})
	}
	e := b.entries[b.nEnt]
	b.nEnt++
	if b.nEnt > b.used {
		b.used = b.nEnt
	}
	if len(e.pa) < maxLevel {
		e.pa = make([]*node[V], maxLevel)
		e.na = make([]*node[V], maxLevel)
	}
	e.n, e.old1, e.runEnd = nil, nil, nil
	e.merge, e.write = false, false
	// clear before truncating: on a replan this entry may carry pieces
	// from a longer earlier attempt, and putBatch's clearing loop only
	// ranges over the final len — stale node pointers beyond it would
	// survive pooling.
	clear(e.pieces)
	e.pieces = e.pieces[:0]
	e.rops = e.rops[:0]
	e.maxH = 0
	return e
}

// sortOps fills b.order with the point-op indexes and b.rorder with the
// range-op indexes, each sorted by (list id, key, staging order) — for a
// range op the sort key is its lo bound. Stability in staging order is
// what gives same-key ops their last-write-wins and read-your-own-writes
// semantics.
func (b *txState[V]) sortOps(ops []Op[V]) {
	b.order = b.order[:0]
	b.rorder = b.rorder[:0]
	for i := range ops {
		if ops[i].Kind.isRange() {
			b.rorder = append(b.rorder, i)
		} else {
			b.order = append(b.order, i)
		}
	}
	sortOpIdx(ops, b.order)
	sortOpIdx(ops, b.rorder)
}

// sortOpIdx sorts one op-index slice by (list id, key, staging order).
func sortOpIdx[V any](ops []Op[V], ord []int) {
	less := func(x, y int) bool {
		ox, oy := &ops[x], &ops[y]
		if ox.List != oy.List {
			return ox.List.id < oy.List.id
		}
		if ox.Key != oy.Key {
			return ox.Key < oy.Key
		}
		return x < y
	}
	if len(ord) <= 24 {
		// Insertion sort: the common batch is a handful of ops and must
		// not allocate.
		for i := 1; i < len(ord); i++ {
			for j := i; j > 0 && less(ord[j], ord[j-1]); j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		return
	}
	sort.Slice(ord, func(i, j int) bool { return less(ord[i], ord[j]) })
}

// insertOpIndex inserts x into the ascending op-index slice s, keeping it
// sorted (entries' rops interleave with point runs by staging order).
func insertOpIndex(s []int, x int) []int {
	i := len(s)
	for i > 0 && s[i-1] > x {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// headList returns the lower-id list heading the two sorted streams at
// cursors pi/ri, or nil when both are exhausted — the shared "next list
// to plan" rule of collectLists and planGroups.
func (b *txState[V]) headList(ops []Op[V], pi, ri int) *List[V] {
	var l *List[V]
	if pi < len(b.order) {
		l = ops[b.order[pi]].List
	}
	if ri < len(b.rorder) {
		if rl := ops[b.rorder[ri]].List; l == nil || rl.id < l.id {
			l = rl
		}
	}
	return l
}

// headKey returns the smallest internal key heading the two streams
// within their current list's bounds, or posInf when both are exhausted
// — the shared "next key to plan" rule of planGroups.
func (b *txState[V]) headKey(ops []Op[V], pi, pEnd, ri, rEnd int) uint64 {
	k := posInf
	if pi < pEnd {
		k = toInternal(ops[b.order[pi]].Key)
	}
	if ri < rEnd {
		if rk := toInternal(ops[b.rorder[ri]].Key); rk < k {
			k = rk
		}
	}
	return k
}

// collectLists fills b.lists with the batch's distinct lists in ascending
// id order, merging the point and range streams (both already sorted by
// list id).
func (b *txState[V]) collectLists(ops []Op[V]) {
	// clear before truncating: a replan after a shorter earlier pass
	// would otherwise leave stale *List pointers beyond len, invisible to
	// putBatch's len-bounded clearing loop.
	clear(b.lists)
	b.lists = b.lists[:0]
	pi, ri := 0, 0
	var prev *List[V]
	for pi < len(b.order) || ri < len(b.rorder) {
		l := b.headList(ops, pi, ri)
		if l != prev {
			b.lists = append(b.lists, l)
			prev = l
		}
		for pi < len(b.order) && ops[b.order[pi]].List == l {
			pi++
		}
		for ri < len(b.rorder) && ops[b.rorder[ri]].List == l {
			ri++
		}
	}
}

// nextPiece returns the first piece at index >= from with level > i, or
// nil. Pieces are ordered left to right, so this is the node that heads
// (or continues) the level-i chain through the replacement.
func nextPiece[V any](pieces []*node[V], from, i int) *node[V] {
	for ; from < len(pieces); from++ {
		if pieces[from].level > i {
			return pieces[from]
		}
	}
	return nil
}

// succAt resolves the successor of entry t's pieces at level i >= n.level,
// where the search-time successor na[i] may be preceded (or replaced) by
// pieces of other entries of the same batch between n and na[i]. Entries
// are ordered by position within a list, so the first batch piece tall
// enough to appear at level i before na[i] is the true successor; if
// na[i] itself is replaced (as another entry's node or merge partner),
// its replacement stands in.
func (b *txState[V]) succAt(t, i int) *node[V] {
	return b.succTarget(t, i, b.entries[t].na[i])
}

// succTarget resolves a plan-time level-i successor candidate of entry t
// against the later entries of the same batch (the body of succAt,
// parameterized over the starting target): a target replaced by a later
// entry resolves to that entry's first tall-enough piece, a target
// spliced out inside a later entry's run resolves to the run's own
// level-i successor and keeps resolving, and a nearer tall piece of an
// intermediate entry preempts the target entirely. Splice-run entries
// use it at publish time to re-resolve their plan-time runSucc targets.
func (b *txState[V]) succTarget(t, i int, target *node[V]) *node[V] {
	e := b.entries[t]
	for u := t + 1; u < b.nEnt; u++ {
		f := b.entries[u]
		if f.l != e.l {
			break
		}
		if f.runEnd != nil {
			// A splice run contributes no pieces; a target inside it
			// vanishes with it, so the run's own level-i successor (tall
			// enough by construction: the target's level exceeds i and it
			// is one of the run's nodes) stands in and resolution
			// continues — it may itself be a later entry's node.
			if f.n.high > target.high {
				break // run starts past the target
			}
			if target.high <= f.runEnd.high {
				target = f.runSucc[i]
			}
			continue
		}
		if f.n == target {
			if !f.write {
				break // target survives untouched
			}
			return nextPiece(f.pieces, 0, i)
		}
		if f.n.high >= target.high {
			break // past the search successor
		}
		if f.write {
			if p := nextPiece(f.pieces, 0, i); p != nil {
				return p
			}
		}
	}
	return target
}

// Plan modes: how buildEntry reads the merge partner and reports
// staleness.
const (
	planNakedMode = iota // LT/COP setup: naked peeks, spin through marks
	planRWMode           // under the list write lock: plain peeks
	planTxMode           // TM: transactional loads inside tx
)

// buildEntry resolves entry e's ops against node n and constructs the
// replacement plan: staged Gets, GetRange snapshots and Delete(Range)
// presence counts are written into the ops (observing earlier staged
// writes on the same key), the node's surviving pairs are merged with
// the batch's final per-key values, and the result is cut into
// replacement pieces (splitting when it outgrows NodeSize, absorbing the
// successor when a net shrink leaves room). hasNext/nextKey describe the
// next op beyond this entry in the same list; a merge is vetoed when the
// successor is itself a batch target (including the next node of a range
// op's run, for which planGroups forces nextKey = n.high+1).
//
// In planNakedMode a false return means the plan went stale (a node died
// mid-read) and the whole attempt must restart. In planTxMode a non-nil
// error aborts the enclosing transaction.
func (g *Group[V]) buildEntry(tx *stm.Tx, mode int, ops []Op[V], b *txState[V], e *txEntry[V], hasNext bool, nextKey uint64) (bool, error) {
	n := e.n

	// Pre-scan: a read-only entry (Gets and GetRanges) resolves straight
	// off the immutable node and builds nothing.
	sets := 0
	hasWriteOps := false
	for q := e.lo; q < e.hi; q++ {
		switch ops[b.order[q]].Kind {
		case OpSet, OpSetIf:
			sets++
			hasWriteOps = true
		case OpDelete:
			hasWriteOps = true
		}
	}
	for _, oi := range e.rops {
		if ops[oi].Kind == OpDeleteRange {
			hasWriteOps = true
		}
	}
	if !hasWriteOps {
		g.resolveEntryReads(ops, b, e)
		e.write = false
		return true, nil
	}

	if len(e.rops) == 0 {
		// Value-only fast path: when every write lands as an overwrite of
		// a key already present (no insert, no net delete), the
		// replacement has the same keys, bounds and count as n — so it can
		// share n's keys array and sealed trie outright, copying only the
		// values. No trie rebuild, no keys copy, no split, no merge.
		if done, ok := g.buildValueOnly(mode, ops, b, e); done {
			if !ok {
				return false, nil // stale: node died under us
			}
			return true, nil
		}
	}

	// Merge the node's pairs with the batch's per-key outcomes. The
	// buffer becomes the replacement nodes' backing storage (recycled
	// from retired nodes when possible).
	newKeys := g.getKeysBuf(n.count() + sets)
	newVals := g.getValsBuf(n.count() + sets)
	write := false
	// valueOnly tracks whether every write of the range-aware merge landed
	// as an overwrite of a present key; the point-only branch already
	// exhausted its own fast path, so it can never reclaim one here.
	valueOnly := false
	src := 0
	run := e.lo

	if len(e.rops) == 0 {
		// Point-only merge: copy untouched segments wholesale.
		for run < e.hi {
			k := toInternal(ops[b.order[run]].Key)
			runEnd := run
			for runEnd < e.hi && toInternal(ops[b.order[runEnd]].Key) == k {
				runEnd++
			}
			pos := lowerBound(n.keys, src, k)
			newKeys = append(newKeys, n.keys[src:pos]...)
			newVals = append(newVals, n.vals[src:pos]...)
			src = pos
			basePresent := src < len(n.keys) && n.keys[src] == k
			var baseV V
			if basePresent {
				baseV = n.vals[src]
			}
			cur, curV, sawWrite := foldRun(ops, b.order, run, runEnd, basePresent, baseV)
			if sawWrite {
				if cur {
					newKeys = append(newKeys, k)
					newVals = append(newVals, curV)
					write = true // a Set landed; values always replace
				} else if basePresent {
					write = true // net delete of a present key
				}
				if basePresent {
					src++
				}
			} else if basePresent {
				newKeys = append(newKeys, k)
				newVals = append(newVals, curV)
				src++
			}
			run = runEnd
		}
		newKeys = append(newKeys, n.keys[src:]...)
		newVals = append(newVals, n.vals[src:]...)
	} else {
		// Range-aware merge: walk the union of the node's keys and the
		// entry's point-op keys, folding point ops and overlapping range
		// ops per key in staging order. Base segments outside every
		// interval's covered span and below the next point key cannot be
		// touched by any staged op, so they copy wholesale like the
		// point-only path's untouched segments.
		valueOnly = true
		rlo, rhi := posInf, negInf
		for _, oi := range e.rops {
			if il := toInternal(ops[oi].Key); il < rlo {
				rlo = il
			}
			if ih := toInternal(ops[oi].KeyHi); ih > rhi {
				rhi = ih
			}
		}
		for src < len(n.keys) || run < e.hi {
			if src < len(n.keys) {
				bk := n.keys[src]
				nextPoint := posInf
				havePoint := run < e.hi
				if havePoint {
					nextPoint = toInternal(ops[b.order[run]].Key)
				}
				if bk < nextPoint && (bk < rlo || bk > rhi) {
					var pos int
					switch {
					case bk > rhi && !havePoint:
						pos = len(n.keys) // past every staged op: copy the rest
					case bk > rhi:
						pos = lowerBound(n.keys, src, nextPoint)
					default:
						stop := rlo
						if nextPoint < stop {
							stop = nextPoint
						}
						pos = lowerBound(n.keys, src, stop)
					}
					newKeys = append(newKeys, n.keys[src:pos]...)
					newVals = append(newVals, n.vals[src:pos]...)
					src = pos
					continue
				}
			}
			var k uint64
			if src < len(n.keys) && (run >= e.hi || n.keys[src] <= toInternal(ops[b.order[run]].Key)) {
				k = n.keys[src]
			} else {
				k = toInternal(ops[b.order[run]].Key)
			}
			basePresent := src < len(n.keys) && n.keys[src] == k
			var baseV V
			if basePresent {
				baseV = n.vals[src]
			}
			runEnd := run
			for runEnd < e.hi && toInternal(ops[b.order[runEnd]].Key) == k {
				runEnd++
			}
			cur, curV, sawWrite := foldKeyRanged(ops, b.order, run, runEnd, e.rops, k, basePresent, baseV)
			if sawWrite {
				if cur {
					newKeys = append(newKeys, k)
					newVals = append(newVals, curV)
					write = true
					if !basePresent {
						valueOnly = false // insert of an absent key
					}
				} else if basePresent {
					write = true
					valueOnly = false // net delete of a present key
				}
			} else if basePresent {
				newKeys = append(newKeys, k)
				newVals = append(newVals, curV)
			}
			if basePresent {
				src++
			}
			run = runEnd
		}
	}

	e.write = write
	if !write {
		// The staged buffers never became node backing; hand them back.
		g.putKeysBuf(newKeys)
		g.putValsBuf(newVals)
		return true, nil
	}

	if valueOnly {
		// Every write of the range-aware merge overwrote a present key:
		// the replacement has the same keys, bounds and count as n, so —
		// exactly like buildValueOnly — it borrows n's keys array and
		// sealed trie, keeping only the merged values buffer. The staged
		// keys buffer never becomes node backing.
		g.putKeysBuf(newKeys)
		if mode == planNakedMode && n.live.Peek() == 0 {
			g.putValsBuf(newVals)
			return false, nil // stale: node died under us
		}
		p := g.newShell(n.level)
		p.keys, p.vals, p.tr = n.keys, newVals, n.tr
		p.high = n.high
		p.lid = e.l.id
		p.ownsKV = false
		n.lent.Store(true)
		e.pieces = append(e.pieces, p)
		e.maxH = p.level
		return true, nil
	}

	// Merge decision: a net shrink may absorb the successor, exactly the
	// legacy Remove rule (counts before the removal), unless the successor
	// is itself addressed by this batch (the next group replaces it).
	newCount := len(newKeys)
	if newCount < n.count() && n.high != posInf {
		var old1 *node[V]
		switch mode {
		case planNakedMode:
			// Read the successor through any in-flight mark; the postfix
			// holding it is bounded, so spin briefly (paper lines 159-162).
			// A bounded prepare (spinBudget > 0) may instead be waiting
			// behind another prepare's held marks: give up as stale so
			// the attempt counter advances.
			for spin := 0; ; spin++ {
				succ, tag := n.next[0].Peek()
				if tag != stm.TagMarked {
					old1 = succ
					break
				}
				if n.live.Peek() == 0 || (b.spinBudget > 0 && spin >= b.spinBudget) {
					// Stale: node died under us (or the wait budget ran
					// out). The staged buffers never became node backing;
					// hand them back before the restart abandons them.
					g.putKeysBuf(newKeys)
					g.putValsBuf(newVals)
					return false, nil
				}
				stmBackoff(spin)
			}
		case planRWMode:
			old1 = n.next[0].PeekPtr()
		case planTxMode:
			var err error
			old1, _, err = n.next[0].Load(tx)
			if err != nil {
				g.putKeysBuf(newKeys)
				g.putValsBuf(newVals)
				return false, err
			}
		}
		if old1 != nil && n.count()+old1.count() <= g.cfg.NodeSize &&
			!(hasNext && nextKey <= old1.high) {
			e.merge, e.old1 = true, old1
		}
	}

	// Opportunistic compaction: a successor left empty (a DeleteRange
	// replacement that kept no keys) is absorbed into any rewrite of its
	// predecessor with room, even without a net shrink, so emptied nodes
	// disappear on the next write touching their left neighbor instead of
	// lingering as permanent hops. The probe never blocks — a marked or
	// locked successor just skips the splice (it is being replaced anyway)
	// — and a hit rides the entry's normal merge machinery, including the
	// prepare-phase re-validation every variant already does for merges.
	if !e.merge && newCount <= g.cfg.NodeSize && n.high != posInf {
		var succ *node[V]
		switch mode {
		case planNakedMode:
			if sc, tag := n.next[0].Peek(); tag != stm.TagMarked {
				succ = sc
			}
		case planRWMode:
			succ = n.next[0].PeekPtr()
		case planTxMode:
			// Peek first so only an actual empty successor costs a
			// transactional read (and its validation footprint).
			if sc, _ := n.next[0].Peek(); sc != nil && sc.count() == 0 {
				var err error
				succ, _, err = n.next[0].Load(tx)
				if err != nil {
					g.putKeysBuf(newKeys)
					g.putValsBuf(newVals)
					return false, err
				}
			}
		}
		if succ != nil && succ.count() == 0 && succ.high != posInf &&
			!(hasNext && nextKey <= succ.high) {
			e.merge, e.old1 = true, succ
		}
	}

	if mode == planNakedMode {
		// Late liveness checks cut doomed lock attempts short (the plan is
		// still fully validated transactionally before committing).
		if n.live.Peek() == 0 || (e.merge && e.old1.live.Peek() == 0) {
			g.putKeysBuf(newKeys)
			g.putValsBuf(newVals)
			e.merge, e.old1 = false, nil
			return false, nil
		}
	}

	g.buildPieces(b, e, newKeys, newVals)
	return true, nil
}

// resolveEntryReads resolves a read-only entry (point Gets and GetRange
// clips, no writes anywhere in the entry) straight off the immutable
// node. With no staged writes landing in the node, staging order cannot
// matter: every read observes the node's committed pairs.
func (g *Group[V]) resolveEntryReads(ops []Op[V], b *txState[V], e *txEntry[V]) {
	n := e.n
	for q := e.lo; q < e.hi; q++ {
		op := &ops[b.order[q]]
		var zero V
		op.Found, op.Out = false, zero
		if i := n.find(toInternal(op.Key)); i >= 0 {
			op.Found, op.Out = true, n.vals[i]
		}
	}
	for _, oi := range e.rops {
		op := &ops[oi]
		ks, vs := clipRange(n.keys, n.vals, toInternal(op.Key), toInternal(op.KeyHi))
		for i, k := range ks {
			op.Range = append(op.Range, KV[V]{Key: toPublic(k), Value: vs[i]})
		}
		op.N += len(ks)
	}
}

// buildValueOnly attempts the structure-sharing fast path for entry e:
// it resolves every run against node n without staging a keys buffer and,
// if every write turns out to be an overwrite of a present key (no
// insert, no net delete of a present key), builds the single replacement
// piece by borrowing n's keys array and sealed trie, copying only the
// values. It reports done = false when the entry has a structural outcome
// and the general path must run; when done, ok = false means the plan
// went stale (planNakedMode only). Staged Get and Delete results are
// written as a side effect either way (the general path recomputes them
// identically on a bail-out).
func (g *Group[V]) buildValueOnly(mode int, ops []Op[V], b *txState[V], e *txEntry[V]) (done, ok bool) {
	n := e.n
	b.ovIdx = b.ovIdx[:0]
	clear(b.ovVal)
	b.ovVal = b.ovVal[:0]

	run := e.lo
	for run < e.hi {
		k := toInternal(ops[b.order[run]].Key)
		runEnd := run
		for runEnd < e.hi && toInternal(ops[b.order[runEnd]].Key) == k {
			runEnd++
		}
		i := n.find(k)
		var baseV V
		if i >= 0 {
			baseV = n.vals[i]
		}
		cur, curV, sawWrite := foldRun(ops, b.order, run, runEnd, i >= 0, baseV)
		if sawWrite {
			if cur {
				if i < 0 {
					return false, false // insert of an absent key: structural
				}
				b.ovIdx = append(b.ovIdx, i)
				b.ovVal = append(b.ovVal, curV)
			} else if i >= 0 {
				return false, false // net delete of a present key: structural
			}
		}
		run = runEnd
	}

	if len(b.ovIdx) == 0 {
		// Every write was a no-op (deletes of absent keys); nothing to
		// replace.
		e.write = false
		return true, true
	}

	e.write = true
	if mode == planNakedMode && n.live.Peek() == 0 {
		return true, false
	}

	vals := g.getValsBuf(n.count())
	vals = append(vals, n.vals...)
	for j, i := range b.ovIdx {
		vals[i] = b.ovVal[j]
	}
	p := g.newShell(n.level)
	p.keys, p.vals, p.tr = n.keys, vals, n.tr
	p.high = n.high
	p.lid = e.l.id
	p.ownsKV = false
	n.lent.Store(true)
	e.pieces = append(e.pieces, p)
	e.maxH = p.level
	return true, true
}

// foldRun applies the staged point ops of one (list, key) run —
// ops[order[lo:hi]], all on the same key — to the pre-state (present,
// presentV). It is foldKeyRanged with no overlapping range ops, kept as
// the entry point of the point-only paths (the general merge loop and
// the value-only fast path).
func foldRun[V any](ops []Op[V], order []int, lo, hi int, present bool, presentV V) (cur bool, curV V, sawWrite bool) {
	return foldKeyRanged(ops, order, lo, hi, nil, 0, present, presentV)
}

// foldKeyRanged applies every staged op touching internal key k — the
// point-op run ops[order[lo:hi]] interleaved, by staging (op index)
// order, with the range ops rops whose interval covers k — to the
// pre-state (present, presentV), writing Get results, GetRange pairs and
// Delete(Range) presence counts into the ops as it goes. It returns the
// key's final state and whether any write (Set, Delete or a covering
// DeleteRange) landed. This fold is the single definition of per-key op
// semantics (last-write-wins, read-your-own-writes), shared by every
// merge path so they can never diverge.
func foldKeyRanged[V any](ops []Op[V], order []int, lo, hi int, rops []int, k uint64, present bool, presentV V) (cur bool, curV V, sawWrite bool) {
	cur, curV = present, presentV
	q, ri := lo, 0
	for q < hi || ri < len(rops) {
		var op *Op[V]
		if q < hi && (ri >= len(rops) || order[q] < rops[ri]) {
			op = &ops[order[q]]
			q++
		} else {
			op = &ops[rops[ri]]
			ri++
			if pk := toPublic(k); pk < op.Key || pk > op.KeyHi {
				continue // interval does not cover this key
			}
		}
		switch op.Kind {
		case OpGet:
			op.Found, op.Out = cur, curV
		case OpSet:
			cur, curV = true, op.Val
			sawWrite = true
		case OpSetIf:
			applied := op.If(curV, cur)
			op.Found = applied
			if applied {
				cur, curV = true, op.Val
				sawWrite = true
			}
		case OpDelete:
			op.Found = cur
			var zero V
			cur, curV = false, zero
			sawWrite = true
		case OpGetRange:
			if cur {
				op.Range = append(op.Range, KV[V]{Key: toPublic(k), Value: curV})
				op.N++
			}
		case OpDeleteRange:
			if cur {
				op.N++
				var zero V
				cur, curV = false, zero
			}
			sawWrite = true
		}
	}
	return cur, curV, sawWrite
}

// lowerBound returns the first index i >= from with keys[i] >= k.
func lowerBound(keys []uint64, from int, k uint64) int {
	lo, hi := from, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// buildPieces cuts the entry's final content into sealed, not-yet-live
// replacement nodes, taking ownership of the buffers. The rightmost piece
// inherits the replaced region's level and high bound (so the terminal
// node stays terminal and every level the old node occupied stays
// occupied); earlier pieces draw random levels like fresh inserts. Shells
// and trie storage come from the group's recycler.
func (g *Group[V]) buildPieces(b *txState[V], e *txEntry[V], keysBuf []uint64, valsBuf []V) {
	n := e.n

	if e.merge {
		keysBuf = append(keysBuf, e.old1.keys...)
		valsBuf = append(valsBuf, e.old1.vals...)
		repl := g.newShell(max(n.level, e.old1.level))
		repl.keys, repl.vals = keysBuf, valsBuf
		repl.high = e.old1.high
		repl.lid = e.l.id
		repl.tr = g.buildTrie(repl.keys)
		e.pieces = append(e.pieces, repl)
		e.maxH = repl.level
		return
	}

	total := len(keysBuf)
	k := g.cfg.NodeSize
	if total <= k {
		p := g.newShell(n.level)
		p.keys, p.vals = keysBuf, valsBuf
		p.high = n.high
		p.lid = e.l.id
		p.tr = g.buildTrie(p.keys)
		e.pieces = append(e.pieces, p)
		e.maxH = p.level
		return
	}
	// Split into pieces of roughly 3K/4 so coalesced bulk inserts leave
	// room to grow; for the classic one-over split (total = K+1) this
	// reproduces the legacy halving exactly. The pieces slice one shared
	// backing pair with non-overlapping three-index sections; each
	// section recycles independently (appends cannot cross its cap).
	target := 3 * k / 4
	if target < 1 {
		target = 1
	}
	m := (total + target - 1) / target
	base, rem := total/m, total%m
	e.maxH = 0
	start := 0
	for pi := 0; pi < m; pi++ {
		size := base
		if pi >= m-rem {
			size++
		}
		end := start + size
		var p *node[V]
		if pi == m-1 {
			p = g.newShell(n.level)
			p.high = n.high
		} else {
			p = g.newShell(g.pickLevel())
			p.high = keysBuf[end-1]
		}
		p.lid = e.l.id
		p.keys = keysBuf[start:end:end]
		p.vals = valsBuf[start:end:end]
		p.tr = g.buildTrie(p.keys)
		e.pieces = append(e.pieces, p)
		if p.level > e.maxH {
			e.maxH = p.level
		}
		start = end
	}
}

// errStalePlan aborts a naked planning pass when a node died mid-read;
// the whole attempt restarts from fresh searches.
var errStalePlan = errors.New("core: stale plan")

// planGroups is the shared grouping walk of every variant: ops are
// visited in sorted order, one search per node group, consecutive keys
// coalescing into the group while they fall under the found node's high
// bound; each group is built (buildEntry) and then handed to emit.
// search positions e.pa/e.na for the group's first key, optionally
// seeding each level of its descent from seed (the previous group's
// predecessors for every group after a list's first — ops are sorted, so
// the next key is always ahead — or the cross-batch finger for the
// batch's first group into the fingered list); emit (optional)
// applies the completed entry b.entries[t] — for the sequential variants
// (TM, RW) this happens before the next group's search, so that search
// observes the already-applied splices. Returns errStalePlan in naked
// mode when a node died mid-plan, or the first search/build/emit error.
//
// A range op expands into the run of adjacent nodes its interval covers:
// the op activates at the node containing its lo bound and, while any
// active interval extends past the planned node's high bound, the walk
// continues at the successor with a fresh entry, until the node covering
// hi. A read-only continuation (active intervals all GetRange, nothing
// writing into the next node) reaches the successor by stepping next[0]
// — exactly the level-0 walk of RangeQuery, since read-only entries
// never use pa/na; a continuation that writes re-searches as high+1
// (against the already-applied splices in the sequential variants) to
// position the predecessors its swings and validation need. Every run
// node gets an entry either way, which is what makes commit-time
// validation cover the whole interval: nodes are immutable, so a pair
// appearing or vanishing inside the interval between plan and commit
// implies some run node died, which validation (liveness of every
// entry's node at the single commit instant) turns into a retry.
func (g *Group[V]) planGroups(ops []Op[V], b *txState[V], mode int, tx *stm.Tx,
	search func(l *List[V], k uint64, e *txEntry[V], seed []*node[V]) error,
	emit func(t int) error) error {
	maxLevel := g.cfg.MaxLevel
	b.nEnt = 0
	// Range-op results are side effects of planning; reset them so a
	// retried plan (stale LT/COP setup, re-executed TM transaction) does
	// not accumulate duplicates. Clear before truncating so pairs from an
	// earlier commit of a reused ops slice (pointerful values included)
	// do not stay live in the slice capacity.
	for _, oi := range b.rorder {
		op := &ops[oi]
		clear(op.Range)
		op.Range = op.Range[:0]
		op.N = 0
	}
	pi, ri := 0, 0 // cursors into the point and range streams
	for pi < len(b.order) || ri < len(b.rorder) {
		l := b.headList(ops, pi, ri)
		pEnd := pi
		for pEnd < len(b.order) && ops[b.order[pEnd]].List == l {
			pEnd++
		}
		rEnd := ri
		for rEnd < len(b.rorder) && ops[b.rorder[rEnd]].List == l {
			rEnd++
		}
		b.active = b.active[:0]
		var prevHigh uint64
		for pi < pEnd || ri < rEnd || len(b.active) > 0 {
			var k uint64
			if len(b.active) > 0 {
				// An interval extends past the previous node: continue the
				// run at its successor (prevHigh < posInf, or the terminal
				// node would have completed every interval).
				k = prevHigh + 1
			} else {
				k = b.headKey(ops, pi, pEnd, ri, rEnd)
			}
			e := b.nextEntry(maxLevel)
			t := b.nEnt - 1
			searched := true
			if len(b.active) > 0 && t > 0 {
				n, ok, err := g.stepRun(tx, mode, ops, b, b.entries[t-1].n, pi, pEnd, ri, rEnd)
				if err != nil {
					return err
				}
				if !ok {
					return errStalePlan
				}
				if n != nil {
					e.l, e.n = l, n
					searched = false
				}
			}
			if searched && g.hashIndex() && len(b.active) == 0 {
				// Hash-index fast path: a provably read-only point group —
				// no active interval, the next range op (if any) starting
				// past the candidate node, every point op landing in it an
				// OpGet — needs no pa/na (read-only entries never swing or
				// validate predecessors), so an index hit on the group's
				// first key can stand in for the whole descent. Liveness is
				// checked in-mode: the TM arm reads through the batch's own
				// transaction, so a node this batch already buffered dead
				// falls back cleanly to the search.
				if c := l.idxProbe(k); c != nil {
					if hit, _ := fingerUsable(l, k, c); hit &&
						b.readOnlyRunWithin(ops, pi, pEnd, ri, rEnd, c.high) {
						live := false
						switch mode {
						case planNakedMode, planRWMode:
							live = c.live.Peek() == 1
						case planTxMode:
							lv, err := c.live.Load(tx)
							if err != nil {
								return err
							}
							live = lv == 1
						}
						if live {
							e.l, e.n = l, c
							searched = false
						}
					}
				}
			}
			if searched {
				// Seed the descent: within a list, every group after the
				// first reuses the previous group's predecessors (sorted
				// ops make the next key always ahead); the first group of
				// the batch's fingered list reuses the last batch's saved
				// predecessors when the era guard passed.
				var seed []*node[V]
				if g.fingers() {
					if t > 0 && b.entries[t-1].l == l {
						seed = b.entries[t-1].pa
					} else if b.fSeedOK && b.fList == l {
						seed = b.fpa
					}
				}
				if err := search(l, k, e, seed); err != nil {
					return err
				}
				e.l, e.n = l, e.na[0]
			}
			if searched && len(b.active) == 1 && ops[b.active[0]].Kind == OpDeleteRange {
				// A lone deleting interval continuing into freshly searched
				// territory: try to splice out the whole run of fully
				// covered nodes with one entry instead of one replacement
				// per node. The first covered node (where the interval
				// activated) always planned as a normal boundary entry, so
				// a splice only ever starts at a continuation step.
				planned, ok, err := g.planRun(tx, mode, ops, b, t, b.headKey(ops, pi, pEnd, ri, rEnd))
				if err != nil {
					return err
				}
				if !ok {
					return errStalePlan
				}
				if planned {
					op := &ops[b.active[0]]
					op.N += e.runCnt
					e.lo, e.hi = pi, pi
					oi := b.active[0]
					b.active = b.active[:0]
					if toInternal(op.KeyHi) > e.runEnd.high {
						// The interval outlives the run: the next iteration
						// continues at the first ineligible node.
						b.active = append(b.active, oi)
					}
					if emit != nil {
						if err := emit(t); err != nil {
							return err
						}
					}
					prevHigh = e.runEnd.high
					continue
				}
			}
			e.lo = pi
			for pi < pEnd && toInternal(ops[b.order[pi]].Key) <= e.n.high {
				pi++
			}
			e.hi = pi
			// Ranges overlapping this node: every still-active interval
			// continues into it, plus every interval starting at or below
			// its high bound. rops stays sorted by op index so the per-key
			// fold interleaves point and range ops in staging order.
			e.rops = append(e.rops, b.active...)
			for ri < rEnd && toInternal(ops[b.rorder[ri]].Key) <= e.n.high {
				e.rops = insertOpIndex(e.rops, b.rorder[ri])
				ri++
			}
			b.active = b.active[:0]
			runContinues := false
			for _, oi := range e.rops {
				if toInternal(ops[oi].KeyHi) > e.n.high {
					b.active = append(b.active, oi)
					runContinues = true
				}
			}
			hasNext := pi < pEnd || ri < rEnd
			var nextKey uint64
			if hasNext {
				nextKey = b.headKey(ops, pi, pEnd, ri, rEnd)
			}
			if runContinues {
				// The successor node is the run's next entry: a merge into
				// it must always be vetoed.
				hasNext, nextKey = true, e.n.high+1
			}
			ok, err := g.buildEntry(tx, mode, ops, b, e, hasNext, nextKey)
			if err != nil {
				return err
			}
			if !ok {
				return errStalePlan
			}
			if emit != nil {
				if err := emit(t); err != nil {
					return err
				}
			}
			prevHigh = e.n.high
		}
		// Scheduled absorb (see List.absorbHint): when this batch already
		// writes into l, one extra splice-run entry unlinks the run of
		// consecutive empty nodes a snapshot reader reported. The run
		// must lie strictly past everything planned above — entries stay
		// in ascending position, which succTarget and the sequential
		// emits rely on; a hint at or below prevHigh is dropped instead,
		// since the batch just re-planned that region and its own absorb
		// machinery dealt with whatever lingered there. Read-only batches
		// never consume the hint (their prepare takes no write locks),
		// and the CompareAndSwap consumes it exactly once even across
		// plan retries — a retry that lost the hint simply plans without
		// the injection, and a later snapshot re-detects.
		if h := l.absorbHint.Load(); h != 0 && b.listWrites(l) {
			// The planned span extends past prevHigh when the list's last
			// entry absorbs its successor: only a list's final entry can
			// merge (buildEntry vetoes a merge reaching the next staged
			// key), and injecting a run that starts at the merge partner
			// would have two entries retire the same node — the merge
			// replacement would then copy the spliced node's frozen links
			// and wire itself to a dead successor.
			if last := b.entries[b.nEnt-1]; last.l == l && last.merge && last.old1.high > prevHigh {
				prevHigh = last.old1.high
			}
			if h <= prevHigh {
				l.absorbHint.CompareAndSwap(h, 0)
			} else if l.absorbHint.CompareAndSwap(h, 0) {
				e := b.nextEntry(maxLevel)
				t := b.nEnt - 1
				var seed []*node[V]
				if g.fingers() {
					seed = b.entries[t-1].pa
				}
				if err := search(l, h, e, seed); err != nil {
					return err
				}
				e.l, e.n = l, e.na[0]
				planned, ok, err := g.planAbsorbRun(tx, mode, b, t)
				if err != nil {
					return err
				}
				if !ok {
					return errStalePlan
				}
				if planned {
					e.lo, e.hi = pi, pi
					if emit != nil {
						if err := emit(t); err != nil {
							return err
						}
					}
				} else {
					// The hinted region changed under the hint (already
					// absorbed, or refilled): nothing to splice.
					b.nEnt--
				}
			}
		}
		pi, ri = pEnd, rEnd
	}
	return nil
}

// listWrites reports whether any entry planned for l — entries for one
// list are contiguous at the tail while its section is being planned —
// changes the structure. The scheduled-absorb injection requires one:
// it guarantees the prepare phase holds write-side locks (VariantRW
// read-locks an all-read batch) and keeps pure readers from turning
// into writers.
func (b *txState[V]) listWrites(l *List[V]) bool {
	for t := b.nEnt - 1; t >= 0 && b.entries[t].l == l; t-- {
		if b.entries[t].write {
			return true
		}
	}
	return false
}

// readOnlyRunWithin reports whether the ops a node with the given high
// bound would absorb — every point op at the cursors with key <= high,
// and the next range op when it starts at or below high — are all reads
// (OpGet only). True means the group's entry is provably read-only, so
// an index-supplied node can stand in for the search (read-only entries
// never touch pa/na).
func (b *txState[V]) readOnlyRunWithin(ops []Op[V], pi, pEnd, ri, rEnd int, high uint64) bool {
	if ri < rEnd && toInternal(ops[b.rorder[ri]].Key) <= high {
		return false
	}
	for q := pi; q < pEnd; q++ {
		op := &ops[b.order[q]]
		if toInternal(op.Key) > high {
			break
		}
		if op.Kind != OpGet {
			return false
		}
	}
	return true
}

// stepRun resolves the continuation node of a read-only run by stepping
// the previous run node's level-0 successor — the RangeQuery walk —
// instead of a full top-down search. Only a continuation that stays
// read-only may skip the search: a read-only entry never uses pa/na, but
// an entry that writes needs them for validation and pointer swings. It
// returns (nil, true, nil) when the caller must search after all (an
// active interval deletes, or an op writing into the stepped node), and
// ok = false when the naked walk found the successor dead (stale plan).
//
// Reading the slot through a mark is safe for the same reason it is in
// RangeQuery: the pointer is the last committed successor, and the
// commit-time liveness validation of every run node catches any change.
// In the sequential modes the previous run node may already have been
// replaced by its own entry's emit; its frozen level-0 slot still holds
// the right successor (replacements preserve the high bound, and neither
// applyEntryTx nor releaseEntry rewires a dying node's own slot 0 away
// from it).
func (g *Group[V]) stepRun(tx *stm.Tx, mode int, ops []Op[V], b *txState[V], prev *node[V], pi, pEnd, ri, rEnd int) (*node[V], bool, error) {
	for _, oi := range b.active {
		if ops[oi].Kind != OpGetRange {
			return nil, true, nil // a deleting interval continues: must search
		}
	}
	var n *node[V]
	switch mode {
	case planNakedMode:
		n, _ = prev.next[0].Peek()
		if n == nil || n.live.Peek() == 0 {
			return nil, false, nil // stale: restart the attempt
		}
	case planRWMode:
		n = prev.next[0].PeekPtr()
	case planTxMode:
		var err error
		n, _, err = prev.next[0].Load(tx)
		if err != nil {
			return nil, false, err
		}
	}
	if n == nil {
		return nil, true, nil
	}
	// Any write landing in the stepped node turns the entry structural.
	for q := pi; q < pEnd; q++ {
		op := &ops[b.order[q]]
		if toInternal(op.Key) > n.high {
			break
		}
		if op.Kind != OpGet {
			return nil, true, nil
		}
	}
	for q := ri; q < rEnd; q++ {
		op := &ops[b.rorder[q]]
		if toInternal(op.Key) > n.high {
			break
		}
		if op.Kind != OpGetRange {
			return nil, true, nil
		}
	}
	return n, true, nil
}

// planRun attempts to turn continuation entry t — whose search just
// positioned pa/na at the deleting interval's resume key — into a
// splice-run entry: the maximal run of consecutive level-0 nodes
// starting at e.n that are each fully covered by the interval, absorb no
// other staged op, and are not the terminal node, is unlinked wholesale
// by one predecessor swing per level instead of one empty replacement
// per node. It records the run's end, pair count and max level on the
// entry, resolves the plan-time per-level successors (the first node
// past the run at each level the run occupies), and reports planned =
// false when not even e.n qualifies (the normal per-node path takes
// over). ok = false restarts a naked attempt whose run died mid-walk.
//
// For i < e.maxH the search successor na[i] is itself a run node (some
// run node occupies level i, run nodes are consecutive from na[0], and
// na[i] is the first level-i node past the resume key), so swinging
// pa[i] to the run's level-i successor removes every run node from the
// level-i chain — commit-time validation re-walks exactly these chains.
func (g *Group[V]) planRun(tx *stm.Tx, mode int, ops []Op[V], b *txState[V], t int, nextOp uint64) (bool, bool, error) {
	op := &ops[b.active[0]]
	hi := toInternal(op.KeyHi)
	return g.planRunWhile(tx, mode, b, t, func(x *node[V]) bool {
		return x.high <= hi && x.high < nextOp
	})
}

// planAbsorbRun is planRun's covered rule for a scheduled absorb (a
// consumed absorbHint): the run is the consecutive empty nodes at the
// injected entry's position. A hinted region that changed — the first
// node is no longer empty — plans nothing and the injection is
// discarded.
func (g *Group[V]) planAbsorbRun(tx *stm.Tx, mode int, b *txState[V], t int) (bool, bool, error) {
	return g.planRunWhile(tx, mode, b, t, func(x *node[V]) bool {
		return x.count() == 0
	})
}

// planRunWhile is the shared splice-run planner of planRun and
// planAbsorbRun: starting at entry t's node it extends the run while
// covered approves each consecutive level-0 node, then resolves the
// per-level successors. See planRun for the contract.
func (g *Group[V]) planRunWhile(tx *stm.Tx, mode int, b *txState[V], t int, covered func(*node[V]) bool) (bool, bool, error) {
	e := b.entries[t]
	cnt, maxH := 0, 0
	var end *node[V]
	for x := e.n; x != nil && x.high != posInf && covered(x); {
		if mode == planNakedMode && x.live.Peek() == 0 {
			return false, false, nil // stale: run node died under us
		}
		cnt += x.count()
		if x.level > maxH {
			maxH = x.level
		}
		end = x
		var err error
		if x, err = g.runNext(tx, mode, x, 0); err != nil {
			return false, false, err
		}
	}
	if end == nil {
		return false, true, nil // e.n is a boundary (or terminal) node
	}
	e.write, e.merge = true, false
	e.runEnd, e.runCnt, e.maxH = end, cnt, maxH
	if len(e.runSucc) < len(e.pa) {
		e.runSucc = make([]*node[V], len(e.pa))
	}
	for i := 0; i < maxH; i++ {
		y := e.na[i]
		for y != nil && y.high <= end.high {
			var err error
			if y, err = g.runNext(tx, mode, y, i); err != nil {
				return false, false, err
			}
		}
		if y == nil {
			return false, false, nil // torn naked walk; validation would
			// conflict anyway, restart now
		}
		e.runSucc[i] = y
	}
	return true, true, nil
}

// runNext reads x's level-i successor in the planning mode's read
// discipline (naked peeks read the committed pointer half through any
// held mark, exactly as stepRun's; TM loads join the transaction's read
// set).
func (g *Group[V]) runNext(tx *stm.Tx, mode int, x *node[V], i int) (*node[V], error) {
	switch mode {
	case planTxMode:
		n, _, err := x.next[i].Load(tx)
		return n, err
	default:
		return x.next[i].PeekPtr(), nil
	}
}

// releasePlan returns the replacement pieces of an abandoned plan — a
// stale naked setup, or a validation conflict restarting the attempt —
// to the group's recycler instead of dropping them to the GC (the
// ROADMAP's "unpublished-piece reclamation on retry"). The pieces were
// never published (no live flag a reader could observe, no reachable
// pointer), so they can be recycled immediately, without an epoch grace
// period: recycleNode donates each piece's shell, its values array, and
// — when the piece owned them rather than borrowing from the node it was
// to replace — its keys array and trie. A lender's lent flag stays set:
// the flag is deliberately conservative (another planner may have
// borrowed the same backing concurrently).
func (g *Group[V]) releasePlan(b *txState[V]) {
	for _, e := range b.entries[:b.nEnt] {
		for i, p := range e.pieces {
			e.pieces[i] = nil
			g.recycleNode(p)
		}
		e.pieces = e.pieces[:0]
	}
	// The recycled pieces' birth records went back to the pool with them
	// (recycleNode walks each bundle chain); drop the stale fill
	// obligations so a later publish cannot stamp a recycled record.
	clear(b.bunFills)
	b.bunFills = b.bunFills[:0]
}

// planNaked builds the full batch plan against naked searches (the COP
// read phase shared by LT and COP). Returns false when a node died
// mid-plan — or, for a bounded prepare, when a search exhausted the
// spin budget waiting behind held marks — and the attempt must restart.
func (g *Group[V]) planNaked(ops []Op[V], b *txState[V]) bool {
	err := g.planGroups(ops, b, planNakedMode, nil,
		func(l *List[V], k uint64, e *txEntry[V], seed []*node[V]) error {
			if !searchNakedSeeded(l, k, e.pa, e.na, seed, l.id, b.spinBudget) {
				return errStalePlan
			}
			return nil
		}, nil)
	return err == nil
}
