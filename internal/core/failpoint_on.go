//go:build failpoint

package core

import "leaplist/internal/failpoint"

// fpEval evaluates a failpoint site whose injected error the caller
// propagates (prepare-style sites).
func fpEval(site string) error { return failpoint.Eval(site) }

// fpHit evaluates a failpoint site on a path with no error return
// (publish/abort-style sites): pause, panic, and yield actions still
// apply; an armed error is swallowed.
func fpHit(site string) { _ = failpoint.Eval(site) }
