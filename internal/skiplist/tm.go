package skiplist

import (
	"leaplist/internal/stm"
)

// TM is the paper's Skip-tm baseline: a plain skip-list whose every
// operation runs inside one STM transaction. Nodes hold a single key and a
// transactionally mutable value. The head and tail sentinels are compared
// by identity, so the full key domain up to MaxKey is available.
type TM[V any] struct {
	s        *stm.STM
	maxLevel int
	head     *tmNode[V]
	tail     *tmNode[V]
}

type tmNode[V any] struct {
	key   uint64 // immutable
	level int
	val   stm.TaggedPtr[V] // mutable in place, unlike Leap-List pairs
	next  []stm.TaggedPtr[tmNode[V]]
}

func newTMNode[V any](key uint64, level int) *tmNode[V] {
	return &tmNode[V]{
		key:   key,
		level: level,
		next:  make([]stm.TaggedPtr[tmNode[V]], level),
	}
}

// NewTM creates an empty Skip-tm list over the given STM domain (a nil
// domain allocates a private one).
func NewTM[V any](domain *stm.STM, maxLevel int) *TM[V] {
	if domain == nil {
		domain = stm.New()
	}
	if maxLevel <= 0 {
		maxLevel = 10
	}
	head := newTMNode[V](0, maxLevel)
	tail := newTMNode[V](^uint64(0), maxLevel)
	for i := 0; i < maxLevel; i++ {
		head.next[i].Init(tail, stm.TagNone)
	}
	return &TM[V]{s: domain, maxLevel: maxLevel, head: head, tail: tail}
}

// stops reports whether the traversal must stop at node xn when searching
// for key k: at the tail, or at the first node with key >= k.
func (sl *TM[V]) stops(xn *tmNode[V], k uint64) bool {
	return xn == sl.tail || xn.key >= k
}

// findTx fills preds and succs with the per-level neighbors of key k, all
// reads instrumented.
func (sl *TM[V]) findTx(tx *stm.Tx, k uint64, preds, succs []*tmNode[V]) error {
	x := sl.head
	for i := sl.maxLevel - 1; i >= 0; i-- {
		for {
			xn, _, err := x.next[i].Load(tx)
			if err != nil {
				return err
			}
			if sl.stops(xn, k) {
				preds[i] = x
				succs[i] = xn
				break
			}
			x = xn
		}
	}
	return nil
}

// Lookup returns the value stored under k.
func (sl *TM[V]) Lookup(k uint64) (V, bool) {
	var zero V
	if k > MaxKey {
		return zero, false
	}
	preds := make([]*tmNode[V], sl.maxLevel)
	succs := make([]*tmNode[V], sl.maxLevel)
	var out V
	var ok bool
	err := sl.s.Atomically(func(tx *stm.Tx) error {
		out, ok = zero, false
		if err := sl.findTx(tx, k, preds, succs); err != nil {
			return err
		}
		if succs[0] == sl.tail || succs[0].key != k {
			return nil
		}
		vp, _, err := succs[0].val.Load(tx)
		if err != nil {
			return err
		}
		out, ok = *vp, true
		return nil
	})
	if err != nil {
		panic("skiplist: unreachable TM Lookup error: " + err.Error())
	}
	return out, ok
}

// Update inserts k with value v, or replaces the value if k is present.
func (sl *TM[V]) Update(k uint64, v V) error {
	if k > MaxKey {
		return errKeyRange
	}
	preds := make([]*tmNode[V], sl.maxLevel)
	succs := make([]*tmNode[V], sl.maxLevel)
	return sl.s.Atomically(func(tx *stm.Tx) error {
		if err := sl.findTx(tx, k, preds, succs); err != nil {
			return err
		}
		if succs[0] != sl.tail && succs[0].key == k {
			return succs[0].val.Store(tx, &v, stm.TagNone)
		}
		n := newTMNode[V](k, pickLevel(sl.maxLevel))
		n.val.Init(&v, stm.TagNone)
		for i := 0; i < n.level; i++ {
			n.next[i].Init(succs[i], stm.TagNone)
			if err := preds[i].next[i].Store(tx, n, stm.TagNone); err != nil {
				return err
			}
		}
		return nil
	})
}

// Remove deletes k, reporting whether it was present.
func (sl *TM[V]) Remove(k uint64) (bool, error) {
	if k > MaxKey {
		return false, errKeyRange
	}
	preds := make([]*tmNode[V], sl.maxLevel)
	succs := make([]*tmNode[V], sl.maxLevel)
	var removed bool
	err := sl.s.Atomically(func(tx *stm.Tx) error {
		removed = false
		if err := sl.findTx(tx, k, preds, succs); err != nil {
			return err
		}
		victim := succs[0]
		if victim == sl.tail || victim.key != k {
			return nil
		}
		for i := 0; i < victim.level; i++ {
			succ, _, err := victim.next[i].Load(tx)
			if err != nil {
				return err
			}
			if err := preds[i].next[i].Store(tx, succ, stm.TagNone); err != nil {
				return err
			}
		}
		removed = true
		return nil
	})
	return removed, err
}

// RangeQuery streams every pair with key in [lo, hi] in ascending order and
// returns the pair count. The whole collection runs inside one transaction,
// so the result is a linearizable snapshot — at the cost of one
// instrumented access per key, the overhead Figure 17(d) quantifies.
func (sl *TM[V]) RangeQuery(lo, hi uint64, emit func(k uint64, v V)) int {
	if lo > hi || lo > MaxKey {
		return 0
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	preds := make([]*tmNode[V], sl.maxLevel)
	succs := make([]*tmNode[V], sl.maxLevel)
	var keys []uint64
	var vals []V
	err := sl.s.Atomically(func(tx *stm.Tx) error {
		keys = keys[:0]
		// clear before truncating: a shorter retry would keep the longer
		// attempt's (possibly pointerful) values alive in the capacity
		// for the rest of the query.
		clear(vals)
		vals = vals[:0]
		if err := sl.findTx(tx, lo, preds, succs); err != nil {
			return err
		}
		n := succs[0]
		for n != sl.tail && n.key <= hi {
			vp, _, err := n.val.Load(tx)
			if err != nil {
				return err
			}
			keys = append(keys, n.key)
			vals = append(vals, *vp)
			succ, _, err := n.next[0].Load(tx)
			if err != nil {
				return err
			}
			n = succ
		}
		return nil
	})
	if err != nil {
		panic("skiplist: unreachable TM RangeQuery error: " + err.Error())
	}
	if emit != nil {
		for i := range keys {
			emit(keys[i], vals[i])
		}
	}
	return len(keys)
}

// Len counts the keys; quiescent-state helper for tests.
func (sl *TM[V]) Len() int {
	count := 0
	for n := sl.head.next[0].PeekPtr(); n != nil && n != sl.tail; n = n.next[0].PeekPtr() {
		count++
	}
	return count
}
