package skiplist

import (
	"errors"
	"sync/atomic"
)

var errKeyRange = errors.New("skiplist: key out of range (2^64-1 is reserved)")

// CAS is the paper's Skip-cas baseline: the lock-free skip-list of
// Fraser's dissertation in the Herlihy–Shavit formulation. Deleted nodes
// are first marked logically (a mark bit on each of their forward
// references, set top-down), then unlinked cooperatively by any traversal
// that encounters them. Go's garbage collector stands in for Fraser's
// epoch allocator; the mark bit lives in an immutable successor cell
// because Go pointers cannot carry stolen bits, and compare-and-swap on
// the cell pointer is equivalent to AtomicMarkableReference. The head and
// tail sentinels are compared by identity.
type CAS[V any] struct {
	maxLevel int
	head     *casNode[V]
	tail     *casNode[V]
}

type casSucc[V any] struct {
	n      *casNode[V]
	marked bool
}

type casNode[V any] struct {
	key   uint64 // immutable
	level int
	val   atomic.Pointer[V] // mutable in place
	next  []atomic.Pointer[casSucc[V]]
}

func newCASNode[V any](key uint64, level int) *casNode[V] {
	return &casNode[V]{
		key:   key,
		level: level,
		next:  make([]atomic.Pointer[casSucc[V]], level),
	}
}

// NewCAS creates an empty Skip-cas list.
func NewCAS[V any](maxLevel int) *CAS[V] {
	if maxLevel <= 0 {
		maxLevel = 10
	}
	head := newCASNode[V](0, maxLevel)
	tail := newCASNode[V](^uint64(0), maxLevel)
	for i := 0; i < maxLevel; i++ {
		head.next[i].Store(&casSucc[V]{n: tail})
		tail.next[i].Store(&casSucc[V]{n: nil})
	}
	return &CAS[V]{maxLevel: maxLevel, head: head, tail: tail}
}

// before reports whether node n sorts strictly before key k (the tail
// sorts after everything).
func (sl *CAS[V]) before(n *casNode[V], k uint64) bool {
	return n != sl.tail && n.key < k
}

// isKey reports whether node n holds exactly key k.
func (sl *CAS[V]) isKey(n *casNode[V], k uint64) bool {
	return n != sl.tail && n.key == k
}

// find locates k's per-level neighborhood, unlinking any marked nodes it
// passes (the helping protocol). preds[i].next[i] held predRefs[i] with
// predRefs[i].n == succs[i] at observation time; insert and remove CAS
// against those exact cells.
func (sl *CAS[V]) find(k uint64, preds, succs []*casNode[V], predRefs []*casSucc[V]) (found bool) {
retry:
	for {
		pred := sl.head
		for i := sl.maxLevel - 1; i >= 0; i-- {
			curRef := pred.next[i].Load()
			if curRef.marked {
				// pred itself was deleted under us; restart from the head
				// (the Herlihy–Shavit compareAndSet(.., false, false) fails
				// here; with identity CAS the mark must be checked first).
				continue retry
			}
			cur := curRef.n
			for {
				succRef := cur.next[i].Load()
				for succRef != nil && succRef.marked {
					// cur is logically deleted: splice it out.
					if !pred.next[i].CompareAndSwap(curRef, &casSucc[V]{n: succRef.n}) {
						continue retry
					}
					curRef = pred.next[i].Load()
					if curRef.marked {
						continue retry
					}
					cur = curRef.n
					succRef = cur.next[i].Load()
				}
				if sl.before(cur, k) {
					pred = cur
					curRef = succRef
					cur = succRef.n
				} else {
					break
				}
			}
			preds[i] = pred
			succs[i] = cur
			predRefs[i] = curRef
		}
		return sl.isKey(succs[0], k)
	}
}

// Lookup returns the value stored under k without helping (wait-free per
// traversal step).
func (sl *CAS[V]) Lookup(k uint64) (V, bool) {
	var zero V
	if k > MaxKey {
		return zero, false
	}
	pred := sl.head
	var cur *casNode[V]
	for i := sl.maxLevel - 1; i >= 0; i-- {
		cur = pred.next[i].Load().n
		for {
			succRef := cur.next[i].Load()
			for succRef != nil && succRef.marked {
				cur = succRef.n
				succRef = cur.next[i].Load()
			}
			if sl.before(cur, k) {
				pred = cur
				cur = succRef.n
			} else {
				break
			}
		}
	}
	if !sl.isKey(cur, k) {
		return zero, false
	}
	// The node may be marked (mid-removal); the unsynchronized skip-list
	// answers from the node regardless, as Fraser's does.
	vp := cur.val.Load()
	if vp == nil {
		return zero, false
	}
	return *vp, true
}

// Update inserts k with value v, or replaces the value in place.
func (sl *CAS[V]) Update(k uint64, v V) error {
	if k > MaxKey {
		return errKeyRange
	}
	preds := make([]*casNode[V], sl.maxLevel)
	succs := make([]*casNode[V], sl.maxLevel)
	predRefs := make([]*casSucc[V], sl.maxLevel)
	for {
		if sl.find(k, preds, succs, predRefs) {
			succs[0].val.Store(&v)
			return nil
		}
		level := pickLevel(sl.maxLevel)
		n := newCASNode[V](k, level)
		n.val.Store(&v)
		for i := 0; i < level; i++ {
			n.next[i].Store(&casSucc[V]{n: succs[i]})
		}
		// Linearization point: splice at level 0.
		if !preds[0].next[0].CompareAndSwap(predRefs[0], &casSucc[V]{n: n}) {
			continue // neighborhood changed; retry from scratch
		}
		// Link the upper levels, refreshing the neighborhood as needed.
		for i := 1; i < level; i++ {
			for {
				if preds[i].next[i].CompareAndSwap(predRefs[i], &casSucc[V]{n: n}) {
					break
				}
				sl.find(k, preds, succs, predRefs)
				if succs[i] != n {
					// Our node's upper-level successor moved; rewire our
					// forward pointer unless we have been deleted already.
					ref := n.next[i].Load()
					if ref.marked {
						return nil
					}
					if !n.next[i].CompareAndSwap(ref, &casSucc[V]{n: succs[i]}) {
						return nil // concurrently marked
					}
				}
			}
		}
		return nil
	}
}

// Remove deletes k, reporting whether this call removed it.
func (sl *CAS[V]) Remove(k uint64) (bool, error) {
	if k > MaxKey {
		return false, errKeyRange
	}
	preds := make([]*casNode[V], sl.maxLevel)
	succs := make([]*casNode[V], sl.maxLevel)
	predRefs := make([]*casSucc[V], sl.maxLevel)
	if !sl.find(k, preds, succs, predRefs) {
		return false, nil
	}
	victim := succs[0]
	// Mark the upper levels top-down.
	for i := victim.level - 1; i >= 1; i-- {
		for {
			ref := victim.next[i].Load()
			if ref.marked {
				break
			}
			if victim.next[i].CompareAndSwap(ref, &casSucc[V]{n: ref.n, marked: true}) {
				break
			}
		}
	}
	// Level 0 decides who performed the remove.
	for {
		ref := victim.next[0].Load()
		if ref.marked {
			return false, nil // another remover won
		}
		if victim.next[0].CompareAndSwap(ref, &casSucc[V]{n: ref.n, marked: true}) {
			sl.find(k, preds, succs, predRefs) // physically unlink
			return true, nil
		}
	}
}

// RangeQuery scans level 0 over [lo, hi], skipping marked nodes, and
// streams the pairs. As in the paper's Skip-cas, the result is NOT a
// consistent snapshot: pairs are read one CAS-word at a time while
// concurrent updates proceed, so the set may mix states (the paper's §3.1
// "may return an inconsistent result"). Returns the pair count.
func (sl *CAS[V]) RangeQuery(lo, hi uint64, emit func(k uint64, v V)) int {
	if lo > hi || lo > MaxKey {
		return 0
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	pred := sl.head
	var cur *casNode[V]
	for i := sl.maxLevel - 1; i >= 0; i-- {
		cur = pred.next[i].Load().n
		for {
			succRef := cur.next[i].Load()
			for succRef != nil && succRef.marked {
				cur = succRef.n
				succRef = cur.next[i].Load()
			}
			if sl.before(cur, lo) {
				pred = cur
				cur = succRef.n
			} else {
				break
			}
		}
	}
	count := 0
	for cur != nil && cur != sl.tail && cur.key <= hi {
		ref := cur.next[0].Load()
		if ref == nil {
			break
		}
		if !ref.marked {
			if vp := cur.val.Load(); vp != nil {
				if emit != nil {
					emit(cur.key, *vp)
				}
				count++
			}
		}
		cur = ref.n
	}
	return count
}

// Len counts unmarked keys; quiescent-state helper for tests.
func (sl *CAS[V]) Len() int {
	count := 0
	cur := sl.head.next[0].Load().n
	for cur != nil && cur != sl.tail {
		ref := cur.next[0].Load()
		if !ref.marked {
			count++
		}
		cur = ref.n
	}
	return count
}
