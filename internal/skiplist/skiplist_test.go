package skiplist

import (
	"errors"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

// target abstracts the two baselines so every semantic test runs on both.
type target interface {
	Lookup(k uint64) (uint64, bool)
	Update(k, v uint64) error
	Remove(k uint64) (bool, error)
	RangeQuery(lo, hi uint64, emit func(k, v uint64)) int
	Len() int
}

func forEach(t *testing.T, fn func(t *testing.T, sl target)) {
	t.Run("Skip-tm", func(t *testing.T) { fn(t, NewTM[uint64](nil, 8)) })
	t.Run("Skip-cas", func(t *testing.T) { fn(t, NewCAS[uint64](8)) })
}

func TestEmpty(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		if _, ok := sl.Lookup(1); ok {
			t.Fatal("Lookup on empty returned ok")
		}
		if n := sl.Len(); n != 0 {
			t.Fatalf("Len = %d, want 0", n)
		}
		if removed, err := sl.Remove(1); err != nil || removed {
			t.Fatalf("Remove on empty = (%v, %v)", removed, err)
		}
	})
}

func TestInsertLookupRemove(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		for i := uint64(0); i < 100; i++ {
			if err := sl.Update(i*3, i); err != nil {
				t.Fatalf("Update: %v", err)
			}
		}
		if n := sl.Len(); n != 100 {
			t.Fatalf("Len = %d, want 100", n)
		}
		for i := uint64(0); i < 100; i++ {
			v, ok := sl.Lookup(i * 3)
			if !ok || v != i {
				t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", i*3, v, ok, i)
			}
			if _, ok := sl.Lookup(i*3 + 1); ok {
				t.Fatalf("Lookup(%d) found absent key", i*3+1)
			}
		}
		for i := uint64(0); i < 100; i += 2 {
			removed, err := sl.Remove(i * 3)
			if err != nil || !removed {
				t.Fatalf("Remove(%d) = (%v, %v)", i*3, removed, err)
			}
		}
		if n := sl.Len(); n != 50 {
			t.Fatalf("Len = %d, want 50", n)
		}
	})
}

func TestUpdateInPlace(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		for i := uint64(0); i < 5; i++ {
			if err := sl.Update(42, i); err != nil {
				t.Fatalf("Update: %v", err)
			}
			v, ok := sl.Lookup(42)
			if !ok || v != i {
				t.Fatalf("Lookup = (%d, %v), want (%d, true)", v, ok, i)
			}
		}
		if n := sl.Len(); n != 1 {
			t.Fatalf("Len = %d, want 1", n)
		}
	})
}

func TestKeyRangeRejected(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		if err := sl.Update(^uint64(0), 1); !errors.Is(err, errKeyRange) {
			t.Fatalf("Update(2^64-1) = %v, want errKeyRange", err)
		}
		if _, err := sl.Remove(^uint64(0)); !errors.Is(err, errKeyRange) {
			t.Fatalf("Remove(2^64-1) = %v, want errKeyRange", err)
		}
		if _, ok := sl.Lookup(^uint64(0)); ok {
			t.Fatal("Lookup(2^64-1) returned ok")
		}
	})
}

func TestBoundaryKeys(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		if err := sl.Update(0, 10); err != nil {
			t.Fatalf("Update(0): %v", err)
		}
		if err := sl.Update(MaxKey, 20); err != nil {
			t.Fatalf("Update(MaxKey): %v", err)
		}
		if v, ok := sl.Lookup(0); !ok || v != 10 {
			t.Fatalf("Lookup(0) = (%d, %v)", v, ok)
		}
		if v, ok := sl.Lookup(MaxKey); !ok || v != 20 {
			t.Fatalf("Lookup(MaxKey) = (%d, %v)", v, ok)
		}
	})
}

func TestRangeQuery(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		for i := uint64(0); i < 50; i += 2 {
			if err := sl.Update(i, i+1); err != nil {
				t.Fatalf("Update: %v", err)
			}
		}
		var got []uint64
		count := sl.RangeQuery(9, 15, func(k, v uint64) {
			if v != k+1 {
				t.Errorf("value for %d = %d", k, v)
			}
			got = append(got, k)
		})
		want := []uint64{10, 12, 14}
		if count != len(want) || len(got) != len(want) {
			t.Fatalf("RangeQuery = %v (count %d), want %v", got, count, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RangeQuery = %v, want %v", got, want)
			}
		}
		if n := sl.RangeQuery(30, 20, nil); n != 0 {
			t.Fatalf("inverted range = %d, want 0", n)
		}
		if n := sl.RangeQuery(100, 200, nil); n != 0 {
			t.Fatalf("beyond range = %d, want 0", n)
		}
	})
}

func TestRandomizedAgainstModel(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		model := make(map[uint64]uint64)
		r := rand.New(rand.NewPCG(7, 13))
		iters := 5000
		if testing.Short() {
			iters = 800
		}
		const keySpace = 300
		for i := 0; i < iters; i++ {
			k := r.Uint64N(keySpace)
			switch r.IntN(10) {
			case 0, 1, 2, 3:
				v := r.Uint64()
				if err := sl.Update(k, v); err != nil {
					t.Fatalf("Update: %v", err)
				}
				model[k] = v
			case 4, 5, 6:
				removed, err := sl.Remove(k)
				if err != nil {
					t.Fatalf("Remove: %v", err)
				}
				if _, inModel := model[k]; removed != inModel {
					t.Fatalf("Remove(%d) = %v, model has = %v", k, removed, inModel)
				}
				delete(model, k)
			case 7, 8:
				v, ok := sl.Lookup(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("Lookup(%d) = (%d,%v), model (%d,%v)", k, v, ok, mv, mok)
				}
			case 9:
				lo := r.Uint64N(keySpace)
				hi := lo + r.Uint64N(keySpace/4)
				var got []uint64
				sl.RangeQuery(lo, hi, func(k, v uint64) { got = append(got, k) })
				var want []uint64
				for mk := range model {
					if mk >= lo && mk <= hi {
						want = append(want, mk)
					}
				}
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				if len(got) != len(want) {
					t.Fatalf("range [%d,%d]: got %v, want %v", lo, hi, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("range [%d,%d]: got %v, want %v", lo, hi, got, want)
					}
				}
			}
		}
		if got, want := sl.Len(), len(model); got != want {
			t.Fatalf("Len = %d, want %d", got, want)
		}
	})
}

func TestConcurrentStress(t *testing.T) {
	forEach(t, func(t *testing.T, sl target) {
		const workers = 8
		const keySpace = 128
		iters := 3000
		if testing.Short() {
			iters = 300
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 5))
				for i := 0; i < iters; i++ {
					k := r.Uint64N(keySpace)
					switch r.IntN(10) {
					case 0, 1, 2, 3:
						if err := sl.Update(k, k*7); err != nil {
							t.Errorf("Update: %v", err)
							return
						}
					case 4, 5, 6:
						if _, err := sl.Remove(k); err != nil {
							t.Errorf("Remove: %v", err)
							return
						}
					case 7, 8:
						if v, ok := sl.Lookup(k); ok && v != k*7 {
							t.Errorf("Lookup(%d) = %d, want %d", k, v, k*7)
							return
						}
					default:
						lo := r.Uint64N(keySpace)
						sl.RangeQuery(lo, lo+16, func(k, v uint64) {
							if v != k*7 {
								t.Errorf("range value for %d = %d", k, v)
							}
						})
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		// Quiescent sanity: every remaining key resolves and the level-0
		// order is strictly ascending.
		var prev uint64
		first := true
		sl.RangeQuery(0, MaxKey, func(k, v uint64) {
			if !first && k <= prev {
				t.Errorf("keys out of order: %d after %d", k, prev)
			}
			prev, first = k, false
			if v != k*7 {
				t.Errorf("final value for %d = %d", k, v)
			}
		})
	})
}

// TestCASDuelingRemovers checks that exactly one of many concurrent
// removers of the same key wins.
func TestCASDuelingRemovers(t *testing.T) {
	sl := NewCAS[uint64](8)
	iters := 500
	if testing.Short() {
		iters = 100
	}
	for i := 0; i < iters; i++ {
		if err := sl.Update(7, 7); err != nil {
			t.Fatalf("Update: %v", err)
		}
		const removers = 4
		wins := make(chan bool, removers)
		var wg sync.WaitGroup
		for w := 0; w < removers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				removed, err := sl.Remove(7)
				if err != nil {
					t.Errorf("Remove: %v", err)
				}
				wins <- removed
			}()
		}
		wg.Wait()
		close(wins)
		won := 0
		for r := range wins {
			if r {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("iteration %d: %d removers won, want exactly 1", i, won)
		}
		if _, ok := sl.Lookup(7); ok {
			t.Fatalf("iteration %d: key survived removal", i)
		}
	}
}
