// Package skiplist provides the two skip-list baselines the Leap-List
// paper compares against in §3.1:
//
//   - TM ("Skip-tm"): one key per node, every operation — traversal
//     included — wrapped in an STM transaction over the same STM domain the
//     Leap-List uses. Its range query is linearizable but pays one
//     instrumented access per key.
//   - CAS ("Skip-cas"): the lock-free skip-list of Fraser's dissertation
//     (the paper's reference [8]) in its Herlihy–Shavit formulation, built
//     on CAS with logical-deletion marks and cooperative unlinking. Its
//     range query is a plain level-0 scan and is deliberately NOT
//     linearizable — the paper stresses that Leap-List beats it by an order
//     of magnitude while also giving consistent results.
//
// Both store one key-value pair per node and mutate values in place, which
// is what makes their modifications cheaper than the Leap-List's
// copy-the-node updates (paper Figure 17(a)) and their range collection K
// times more expensive (Figure 17(d)).
package skiplist

import (
	"math/bits"
	"math/rand/v2"
)

// MaxKey is the largest storable key, aligned with the Leap-List core's
// domain (2^64-1 rejected) so the benchmark harness can drive both through
// one adapter. The sentinels here are compared by identity, not key, so
// the restriction is purely for API symmetry.
const MaxKey = ^uint64(0) - 1

// pickLevel draws a level in [1, maxLevel], geometric with p = 1/2.
func pickLevel(maxLevel int) int {
	lvl := 1 + bits.TrailingZeros64(rand.Uint64()|1<<uint(maxLevel-1))
	if lvl > maxLevel {
		lvl = maxLevel
	}
	return lvl
}

// KV is one key-value pair returned by range queries.
type KV[V any] struct {
	Key   uint64
	Value V
}
