package leaplist

import (
	"sync"
	"testing"
)

func TestIteratorBasics(t *testing.T) {
	m := New[uint64](WithNodeSize(4)) // chunk = 8, forces many refills
	const n = 100
	for i := uint64(0); i < n; i++ {
		if err := m.Set(i*2, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	it := m.Iter(0, MaxKey)
	var got []uint64
	for {
		kv, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, kv.Key)
		if kv.Value != kv.Key/2 {
			t.Fatalf("value for %d = %d", kv.Key, kv.Value)
		}
	}
	if len(got) != n {
		t.Fatalf("iterated %d keys, want %d", len(got), n)
	}
	for i, k := range got {
		if k != uint64(i*2) {
			t.Fatalf("got[%d] = %d, want %d", i, k, i*2)
		}
	}
}

func TestIteratorBounds(t *testing.T) {
	m := New[int](WithNodeSize(4))
	for i := uint64(10); i <= 50; i += 10 {
		if err := m.Set(i, int(i)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	tests := []struct {
		name   string
		lo, hi uint64
		want   int
	}{
		{"interior", 15, 45, 3},
		{"exact", 10, 50, 5},
		{"empty", 51, 100, 0},
		{"inverted", 40, 20, 0},
		{"single", 30, 30, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(m.Iter(tc.lo, tc.hi).Collect()); got != tc.want {
				t.Fatalf("Collect [%d,%d] = %d pairs, want %d", tc.lo, tc.hi, got, tc.want)
			}
		})
	}
}

func TestIteratorEmptyMap(t *testing.T) {
	m := New[int]()
	if _, ok := m.Iter(0, MaxKey).Next(); ok {
		t.Fatal("Next on empty map returned ok")
	}
}

func TestIteratorMaxKeyBoundary(t *testing.T) {
	m := New[int]()
	if err := m.Set(MaxKey, 1); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got := m.Iter(MaxKey, MaxKey).Collect()
	if len(got) != 1 || got[0].Key != MaxKey {
		t.Fatalf("Collect = %v", got)
	}
	// An iterator starting beyond MaxKey terminates immediately.
	if _, ok := m.Iter(MaxKey+1, MaxKey+1).Next(); ok {
		t.Fatal("iterator beyond MaxKey returned a pair")
	}
}

// TestIteratorReleasesChunk is the regression for the buffer pin: refill
// used to truncate with buf[:0], leaving the previous chunk's KVs —
// including pointerful values — live in the slice capacity for the
// iterator's lifetime. After a refill, every slot of the released tail
// must be zero.
func TestIteratorReleasesChunk(t *testing.T) {
	m := New[*int](WithNodeSize(4)) // chunk = 8
	const n = 10                    // first chunk 8 pairs, second chunk 2
	for i := uint64(0); i < n; i++ {
		v := int(i)
		if err := m.Set(i, &v); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	it := m.Iter(0, MaxKey)
	seen := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		seen++
	}
	if seen != n {
		t.Fatalf("iterated %d pairs, want %d", seen, n)
	}
	// The final refill drained 2 pairs into a buffer whose capacity held
	// 8; the tail beyond len must not pin the first chunk's values.
	for i := len(it.buf); i < cap(it.buf); i++ {
		if kv := it.buf[:cap(it.buf)][i]; kv.Value != nil || kv.Key != 0 {
			t.Fatalf("released buffer slot %d still pins %+v", i, kv)
		}
	}
}

// TestIteratorUnderConcurrentWrites checks the documented fuzziness
// contract: keys present for the whole iteration must appear exactly once,
// in order.
func TestIteratorUnderConcurrentWrites(t *testing.T) {
	m := New[uint64](WithNodeSize(8))
	// Stable keys: even numbers; churn keys: odd numbers.
	const n = 2000
	for i := uint64(0); i < n; i += 2 {
		if err := m.Set(i, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.Set(k, k)
			_, _ = m.Delete(k)
			k = (k + 2) % n
		}
	}()
	for round := 0; round < 20; round++ {
		var prev uint64
		first := true
		evens := 0
		it := m.Iter(0, n)
		for {
			kv, ok := it.Next()
			if !ok {
				break
			}
			if !first && kv.Key <= prev {
				t.Fatalf("iteration out of order: %d after %d", kv.Key, prev)
			}
			prev, first = kv.Key, false
			if kv.Key%2 == 0 {
				evens++
			}
		}
		if evens != n/2 {
			t.Fatalf("round %d: saw %d stable keys, want %d", round, evens, n/2)
		}
	}
	close(stop)
	wg.Wait()
}
