package leaplist

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"leaplist/internal/epoch"
)

func TestMapBasics(t *testing.T) {
	for _, v := range []Variant{LT, TM, COP, RWLock} {
		t.Run(v.String(), func(t *testing.T) {
			m := New[string](WithVariant(v), WithNodeSize(8), WithMaxLevel(6))
			if err := m.Set(1, "one"); err != nil {
				t.Fatalf("Set: %v", err)
			}
			if got, ok := m.Get(1); !ok || got != "one" {
				t.Fatalf("Get = (%q, %v)", got, ok)
			}
			if _, ok := m.Get(2); ok {
				t.Fatal("Get(2) on absent key")
			}
			if changed, err := m.Delete(1); err != nil || !changed {
				t.Fatalf("Delete = (%v, %v)", changed, err)
			}
			if m.Len() != 0 {
				t.Fatalf("Len = %d", m.Len())
			}
		})
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := New[uint64](WithNodeSize(4))
	for i := uint64(0); i < 20; i++ {
		if err := m.Set(i, i); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	var seen []uint64
	m.Range(0, 19, func(k uint64, v uint64) bool {
		seen = append(seen, k)
		return len(seen) < 5
	})
	if len(seen) != 5 {
		t.Fatalf("early stop saw %d keys, want 5", len(seen))
	}
	for i, k := range seen {
		if k != uint64(i) {
			t.Fatalf("seen[%d] = %d", i, k)
		}
	}
}

func TestCollectAndCount(t *testing.T) {
	m := New[int](WithNodeSize(4))
	for i := uint64(10); i <= 30; i += 10 {
		if err := m.Set(i, int(i)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	got := m.Collect(0, 100)
	if len(got) != 3 || got[0].Key != 10 || got[2].Value != 30 {
		t.Fatalf("Collect = %v", got)
	}
	if n := m.Count(15, 100); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
}

func TestGroupSetManyAtomic(t *testing.T) {
	g := NewGroup[uint64](WithNodeSize(16))
	m1, m2 := g.NewMap(), g.NewMap()
	ms := []*Map[uint64]{m1, m2}

	if err := g.SetMany(ms, []uint64{1, 2}, []uint64{10, 20}); err != nil {
		t.Fatalf("SetMany: %v", err)
	}
	if v, ok := m1.Get(1); !ok || v != 10 {
		t.Fatalf("m1.Get(1) = (%d, %v)", v, ok)
	}
	if v, ok := m2.Get(2); !ok || v != 20 {
		t.Fatalf("m2.Get(2) = (%d, %v)", v, ok)
	}
	changed, err := g.DeleteMany(ms, []uint64{1, 2})
	if err != nil || !changed[0] || !changed[1] {
		t.Fatalf("DeleteMany = (%v, %v)", changed, err)
	}
}

func TestGroupRejectsForeignMap(t *testing.T) {
	g1 := NewGroup[uint64]()
	g2 := NewGroup[uint64]()
	m1, m2 := g1.NewMap(), g2.NewMap()
	err := g1.SetMany([]*Map[uint64]{m1, m2}, []uint64{1, 2}, []uint64{1, 2})
	if !errors.Is(err, ErrForeignMap) {
		t.Fatalf("SetMany = %v, want ErrForeignMap", err)
	}
	if _, err := g1.DeleteMany([]*Map[uint64]{nil}, []uint64{1}); !errors.Is(err, ErrForeignMap) {
		t.Fatalf("DeleteMany = %v, want ErrForeignMap", err)
	}
}

func TestKeyRangeError(t *testing.T) {
	m := New[int]()
	if err := m.Set(MaxKey+1, 1); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("Set = %v, want ErrKeyRange", err)
	}
}

func TestSTMStatsExposed(t *testing.T) {
	g := NewGroup[int](WithSTMStats(true), WithVariant(TM))
	m := g.NewMap()
	if err := m.Set(1, 1); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if st := g.STMStats(); st.Commits == 0 {
		t.Fatalf("stats = %+v, want commits > 0", st)
	}
}

func TestCollectorIntegration(t *testing.T) {
	c := epoch.NewCollector()
	m := New[int](WithCollector(c), WithNodeSize(4))
	for i := uint64(0); i < 10; i++ {
		if err := m.Set(i, int(i)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	retired, _ := c.Counters()
	if retired == 0 {
		t.Fatal("no nodes retired through the collector")
	}
}

func TestBulkLoadFacade(t *testing.T) {
	m := New[uint64](WithNodeSize(8))
	keys := make([]uint64, 100)
	vals := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i * 2)
		vals[i] = uint64(i)
	}
	if err := m.BulkLoad(keys, vals); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.Get(50); !ok || v != 25 {
		t.Fatalf("Get(50) = (%d, %v)", v, ok)
	}
}

func TestConcurrentFacadeUse(t *testing.T) {
	m := New[uint64](WithNodeSize(32))
	const workers = 8
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, 1))
			for i := 0; i < iters; i++ {
				k := r.Uint64N(500)
				switch r.IntN(4) {
				case 0:
					if err := m.Set(k, k); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
				case 1:
					if _, err := m.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				case 2:
					if v, ok := m.Get(k); ok && v != k {
						t.Errorf("Get(%d) = %d", k, v)
						return
					}
				default:
					m.Range(k, k+50, func(k, v uint64) bool { return v == k })
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}

func ExampleMap() {
	m := New[string]()
	_ = m.Set(3, "three")
	_ = m.Set(1, "one")
	_ = m.Set(2, "two")
	m.Range(1, 2, func(k uint64, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 1 one
	// 2 two
}

func ExampleGroup_SetMany() {
	g := NewGroup[string]()
	byID := g.NewMap()
	byTime := g.NewMap()
	// One atomic operation maintains both indexes.
	_ = g.SetMany(
		[]*Map[string]{byID, byTime},
		[]uint64{7, 1700000000},
		[]string{"order-7", "order-7"},
	)
	v, _ := byTime.Get(1700000000)
	fmt.Println(v)
	// Output:
	// order-7
}
