package leaplist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"leaplist/internal/core"
	"leaplist/internal/stm"
)

// Sharded is one logical ordered uint64 → V map partitioned by key range
// over N independent Groups. Each shard is a full Group (its own STM
// domain, epoch collector and recycler), so single-shard operations
// scale with no cross-shard coordination at all; the keyspace
// [0, MaxKey] is split into N equal contiguous segments, shard i owning
// [i*span, (i+1)*span-1] (the last shard absorbing the remainder).
//
// Point operations (Set, Get, Delete) route to the owning shard and are
// exactly as cheap as on a plain Map. Sharded.Txn builds a cross-shard
// transaction: staged ops are routed to per-shard sub-batches, ranges
// split at shard boundaries and their results stitched back in key
// order, and Commit runs a deterministic two-phase protocol — prepare
// every involved shard in ascending shard order (the global acquisition
// order that excludes deadlock), then publish them all; a prepare
// failure aborts the already-prepared prefix and retries with backoff.
// Prepared shards hold their whole footprint (reads included) until
// publish, so a committed ShardedTx is all-or-none even against
// concurrent ShardedTx readers on every shard.
//
// The shards share one global timestamp clock. With bundles on (the
// default, see WithBundles), reads spanning shards — Range, Collect,
// Count, a read-only Txn — freeze one clock instant and resolve every
// shard's segment as of it: one consistent cross-shard snapshot with no
// locks, no prepare phase and no aborts, concurrent writers never
// blocked. A read-only Txn.Commit therefore skips the two-phase
// protocol entirely. With WithBundles(false), stitched reads revert to
// per-shard instants (each segment consistent on its own; Len is always
// per-shard) and only Txn + GetRange gives an atomic cross-shard
// snapshot, through the 2PC read-lock path.
//
// Search fingers (WithFingers) stay per shard: each shard's group keeps
// its own pooled read and commit fingers, so a cross-shard transaction's
// per-shard sub-batches seed their descents independently and key
// locality within any one shard is preserved across transactions.
//
// The hash index (WithHashIndex) likewise composes per shard: each
// shard's list maintains its own key->node table, updated at that
// shard's publish — including the publish leg of a cross-shard 2PC
// commit — so point reads and read-only point sub-batches take the
// index fast path on whichever shard owns the key.
type Sharded[V any] struct {
	groups []*Group[V]
	maps   []*Map[V]
	span   uint64 // keys per shard; the last shard also owns the remainder

	// clock is the global timestamp clock shared by every shard's STM
	// domain. With bundles on (the default) one Now() read freezes a cut
	// of all shards at once: the timestamped read paths resolve every
	// shard as of that instant, which is what makes stitched reads and
	// read-only cross-shard transactions consistent without two-phase
	// coordination.
	clock *stm.Clock

	// commitDeadline / commitAttempts bound the two-phase commit (see
	// WithCommitDeadline / WithCommitAttempts); zero means "default".
	commitDeadline time.Duration
	commitAttempts int

	txPool  sync.Pool // released *ShardedTx[V] builders
	pinPool sync.Pool // *[]core.ReadPin[V] scratch for stitched reads
}

// NewSharded creates an empty sharded map with n shards (n < 1 is
// treated as 1). Options apply to every shard's group; the shards share
// one global clock, so snapshot timestamps are comparable across them.
func NewSharded[V any](n int, opts ...Option) *Sharded[V] {
	if n < 1 {
		n = 1
	}
	s := &Sharded[V]{
		groups: make([]*Group[V], n),
		maps:   make([]*Map[V], n),
		span:   MaxKey/uint64(n) + 1,
		clock:  stm.NewClock(),
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	s.commitDeadline = o.commitDeadline
	s.commitAttempts = o.commitAttempts
	shardOpts := append(append(make([]Option, 0, len(opts)+1), opts...), withClock(s.clock))
	for i := range s.groups {
		g := NewGroup[V](shardOpts...)
		s.groups[i] = g
		s.maps[i] = g.NewMap()
	}
	return s
}

// bundled reports whether the shards run with versioned links (every
// shard gets the same options, so checking one is checking all).
func (s *Sharded[V]) bundled() bool {
	return s.groups[0].inner.Bundles()
}

// pinShards pins shards [from, to] for a stitched as-of read. The pins
// must all be in place before the snapshot timestamp is drawn (pin
// before timestamp; see core.ReadPin) — they are what keep the records
// the frozen cut needs alive on every shard, including the ones read
// last. Release with unpinShards.
func (s *Sharded[V]) pinShards(from, to int) []core.ReadPin[V] {
	var pins []core.ReadPin[V]
	if p, _ := s.pinPool.Get().(*[]core.ReadPin[V]); p != nil {
		pins = (*p)[:0]
	}
	for sh := from; sh <= to; sh++ {
		pins = append(pins, s.groups[sh].inner.PinReads())
	}
	return pins
}

// unpinShards releases every pin and recycles the slice.
func (s *Sharded[V]) unpinShards(pins []core.ReadPin[V]) {
	for i := range pins {
		pins[i].Unpin()
		pins[i] = core.ReadPin[V]{}
	}
	pins = pins[:0]
	s.pinPool.Put(&pins)
}

// Shards returns the number of shards.
func (s *Sharded[V]) Shards() int {
	return len(s.maps)
}

// ShardOf returns the index of the shard owning key k.
func (s *Sharded[V]) ShardOf(k uint64) int {
	if k > MaxKey {
		k = MaxKey
	}
	i := int(k / s.span)
	if i >= len(s.maps) {
		i = len(s.maps) - 1
	}
	return i
}

// ShardRange returns the inclusive key range shard i owns.
func (s *Sharded[V]) ShardRange(i int) (lo, hi uint64) {
	lo = uint64(i) * s.span
	hi = lo + s.span - 1
	if i == len(s.maps)-1 || hi > MaxKey {
		hi = MaxKey
	}
	return lo, hi
}

// STMStats returns the field-wise sum of every shard's STM counters
// (zero unless the shards were built WithSTMStats). The aggregate is
// racy — shards are snapshotted one after another while transactions
// keep running — but each addend keeps Commits+Aborts <= Starts, so the
// sum does too.
func (s *Sharded[V]) STMStats() stm.StatsSnapshot {
	var sum stm.StatsSnapshot
	for _, g := range s.groups {
		sum = sum.Add(g.STMStats())
	}
	return sum
}

// Set inserts or overwrites key k with value v in its owning shard.
func (s *Sharded[V]) Set(k uint64, v V) error {
	return s.maps[s.ShardOf(k)].Set(k, v)
}

// Get returns the value stored under k.
func (s *Sharded[V]) Get(k uint64) (V, bool) {
	return s.maps[s.ShardOf(k)].Get(k)
}

// Delete removes k, reporting whether it was present.
func (s *Sharded[V]) Delete(k uint64) (bool, error) {
	return s.maps[s.ShardOf(k)].Delete(k)
}

// Range streams every pair with key in [lo, hi] in ascending key order,
// stopping early if fn returns false. With bundles on (the default) the
// whole stream is one consistent cross-shard snapshot: a single clock
// read freezes the cut and every shard's segment resolves as of that
// instant. With WithBundles(false) each shard's segment is consistent
// on its own but the segments are snapshotted at different instants
// (use Txn + GetRange for an atomic cross-shard snapshot there).
func (s *Sharded[V]) Range(lo, hi uint64, fn func(k uint64, v V) bool) {
	if lo > hi || lo > MaxKey {
		return
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	if s.bundled() {
		from, to := s.ShardOf(lo), s.ShardOf(hi)
		pins := s.pinShards(from, to)
		defer s.unpinShards(pins)
		at := s.clock.Now()
		for sh := from; sh <= to; sh++ {
			stopped := false
			pins[sh-from].RangeQueryAsOf(s.maps[sh].list, lo, hi, at, func(k uint64, v V) bool {
				if fn != nil && !fn(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
		}
		return
	}
	stopped := false
	for sh := s.ShardOf(lo); sh <= s.ShardOf(hi) && !stopped; sh++ {
		s.maps[sh].Range(lo, hi, func(k uint64, v V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// Count returns the number of keys in [lo, hi]: one frozen cross-shard
// cut with bundles on, the sum of per-shard snapshots otherwise.
func (s *Sharded[V]) Count(lo, hi uint64) int {
	if lo > hi || lo > MaxKey {
		return 0
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	total := 0
	if s.bundled() {
		from, to := s.ShardOf(lo), s.ShardOf(hi)
		pins := s.pinShards(from, to)
		defer s.unpinShards(pins)
		at := s.clock.Now()
		for sh := from; sh <= to; sh++ {
			total += pins[sh-from].RangeQueryAsOf(s.maps[sh].list, lo, hi, at, nil)
		}
		return total
	}
	for sh := s.ShardOf(lo); sh <= s.ShardOf(hi); sh++ {
		total += s.maps[sh].Count(lo, hi)
	}
	return total
}

// Collect returns the stitched per-shard snapshots of [lo, hi] as one
// ascending slice.
func (s *Sharded[V]) Collect(lo, hi uint64) []KV[V] {
	return s.CollectInto(lo, hi, nil)
}

// CollectInto appends the stitched per-shard snapshots of [lo, hi] to
// buf in ascending key order and returns the extended slice; the
// caller-supplied-buffer form of Collect (see Map.CollectInto). With
// bundles on the stitched result is one consistent cross-shard snapshot
// (see Range).
func (s *Sharded[V]) CollectInto(lo, hi uint64, buf []KV[V]) []KV[V] {
	if lo > hi || lo > MaxKey {
		return buf
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	if s.bundled() {
		from, to := s.ShardOf(lo), s.ShardOf(hi)
		pins := s.pinShards(from, to)
		defer s.unpinShards(pins)
		at := s.clock.Now()
		for sh := from; sh <= to; sh++ {
			buf = pins[sh-from].CollectRangeIntoAsOf(s.maps[sh].list, lo, hi, at, buf)
		}
		return buf
	}
	for sh := s.ShardOf(lo); sh <= s.ShardOf(hi); sh++ {
		buf = s.maps[sh].CollectInto(lo, hi, buf)
	}
	return buf
}

// BulkLoad fills an empty, unshared sharded map from sorted, strictly
// increasing keys, routing each contiguous segment to its owning
// shard's BulkLoad (the half-full-node fast path). Only safe before the
// map is shared.
func (s *Sharded[V]) BulkLoad(keys []uint64, vals []V) error {
	if len(keys) != len(vals) {
		return ErrBatchMismatch
	}
	start := 0
	for start < len(keys) {
		sh := s.ShardOf(keys[start])
		_, hi := s.ShardRange(sh)
		end := start
		for end < len(keys) && keys[end] <= hi {
			end++
		}
		if err := s.maps[sh].BulkLoad(keys[start:end], vals[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Len returns the total number of keys, summed over shard-by-shard
// traversals; like Map.Len it is not linearizable with concurrent
// writers.
func (s *Sharded[V]) Len() int {
	total := 0
	for _, m := range s.maps {
		total += m.Len()
	}
	return total
}

// shardRef locates one staged sub-op: the part of a (possibly split)
// logical op that landed in shard sh at index i of its sub-batch.
type shardRef struct {
	sh, i int
}

// ShardedTx is the cross-shard transaction builder: stage any mix of
// Set, Delete, Get, GetRange and DeleteRange against the logical key
// space, then Commit them as one atomic operation. Ops route to the
// owning shard's sub-batch; a range op splits at shard boundaries into
// one sub-op per covered shard, its results stitched back in key order
// by the handle. Per-key semantics are Tx's exactly (staging order,
// last-write-wins, read-your-own-writes): a key's ops all land in one
// shard, in staging order.
//
// Commit is a deterministic two-phase commit over the involved shards
// (see the Sharded type docs); a transaction touching a single shard
// commits directly through that shard with no coordination overhead. A
// ShardedTx is not safe for concurrent use and must be committed at
// most once; staging errors are sticky, exactly as on Tx.
type ShardedTx[V any] struct {
	s     *Sharded[V]
	per   [][]core.Op[V] // per-shard sub-batches, staged in tx order
	parts []shardRef     // flattened range-op parts, grouped per handle
	err   error
	done  bool

	prepared []*core.PreparedOps[V] // commit scratch: the prepared prefix
	pins     []core.ReadPin[V]      // commit scratch: read-only fast-path pins
}

// Txn starts an empty cross-shard transaction, reusing a released
// builder when one is pooled.
func (s *Sharded[V]) Txn() *ShardedTx[V] {
	if t, _ := s.txPool.Get().(*ShardedTx[V]); t != nil {
		t.s = s
		return t
	}
	return &ShardedTx[V]{s: s, per: make([][]core.Op[V], s.Shards())}
}

// Release returns the builder to the pool. After Release the ShardedTx
// and every handle obtained from it are invalid; see Tx.Release for the
// full contract (this is the same discipline).
func (t *ShardedTx[V]) Release() {
	s := t.s
	if s == nil {
		return // already released
	}
	const keepCap = 1 << 12
	for sh := range t.per {
		clear(t.per[sh]) // drop list pointers and values before pooling
		if cap(t.per[sh]) > keepCap {
			t.per[sh] = nil
		} else {
			t.per[sh] = t.per[sh][:0]
		}
	}
	t.parts = t.parts[:0]
	if cap(t.parts) > keepCap {
		t.parts = nil
	}
	t.s, t.err, t.done = nil, nil, false
	s.txPool.Put(t)
}

// stage appends one point op to the owning shard's sub-batch.
func (t *ShardedTx[V]) stage(kind core.OpKind, k uint64, v V) shardRef {
	if t.err != nil {
		return shardRef{-1, -1}
	}
	if t.done {
		t.err = ErrTxCommitted
		return shardRef{-1, -1}
	}
	if k > MaxKey {
		t.err = ErrKeyRange
		return shardRef{-1, -1}
	}
	sh := t.s.ShardOf(k)
	t.per[sh] = append(t.per[sh], core.Op[V]{List: t.s.maps[sh].list, Kind: kind, Key: k, Val: v})
	return shardRef{sh, len(t.per[sh]) - 1}
}

// stageRange splits one interval op at shard boundaries, staging one
// sub-op per covered shard; it returns the half-open parts interval
// [from, to) in t.parts. Bounds normalize the way Tx.stageRange does:
// hi clamps to MaxKey and an inverted interval stages nothing.
func (t *ShardedTx[V]) stageRange(kind core.OpKind, lo, hi uint64) (from, to int) {
	if t.err != nil {
		return -1, -1
	}
	if t.done {
		t.err = ErrTxCommitted
		return -1, -1
	}
	if hi > MaxKey {
		hi = MaxKey
	}
	if lo > hi {
		return -1, -1 // empty interval: a staged no-op
	}
	from = len(t.parts)
	for sh := t.s.ShardOf(lo); sh <= t.s.ShardOf(hi); sh++ {
		slo, shi := t.s.ShardRange(sh)
		if slo < lo {
			slo = lo
		}
		if shi > hi {
			shi = hi
		}
		t.per[sh] = append(t.per[sh], core.Op[V]{List: t.s.maps[sh].list, Kind: kind, Key: slo, KeyHi: shi})
		t.parts = append(t.parts, shardRef{sh, len(t.per[sh]) - 1})
	}
	return from, len(t.parts)
}

// Set stages s[k] = v, returning the ShardedTx for chaining.
func (t *ShardedTx[V]) Set(k uint64, v V) *ShardedTx[V] {
	t.stage(core.OpSet, k, v)
	return t
}

// Delete stages the removal of k. The handle reports, after a
// successful Commit, whether the key was present as observed by this op
// (a key Set earlier in the same transaction counts as present).
func (t *ShardedTx[V]) Delete(k uint64) ShardedDelete[V] {
	var zero V
	return ShardedDelete[V]{t: t, ref: t.stage(core.OpDelete, k, zero)}
}

// Get stages an atomic read of k at the transaction's atomicity point,
// observing writes staged earlier in the same transaction.
func (t *ShardedTx[V]) Get(k uint64) ShardedGet[V] {
	var zero V
	return ShardedGet[V]{t: t, ref: t.stage(core.OpGet, k, zero)}
}

// GetRange stages an atomic read of every pair with key in [lo, hi]:
// one consistent snapshot across every shard the interval covers, taken
// at the transaction's atomicity point, in ascending key order,
// reflecting writes staged earlier in the same transaction.
func (t *ShardedTx[V]) GetRange(lo, hi uint64) ShardedRange[V] {
	from, to := t.stageRange(core.OpGetRange, lo, hi)
	return ShardedRange[V]{t: t, from: from, to: to}
}

// DeleteRange stages the atomic removal of every pair with key in
// [lo, hi], across every shard the interval covers. The handle reports
// how many pairs the removal observed at its staged position.
func (t *ShardedTx[V]) DeleteRange(lo, hi uint64) ShardedDeleteRange[V] {
	from, to := t.stageRange(core.OpDeleteRange, lo, hi)
	return ShardedDeleteRange[V]{t: t, from: from, to: to}
}

// Len returns the number of staged sub-ops (a range op counts once per
// shard it covers).
func (t *ShardedTx[V]) Len() int {
	n := 0
	for sh := range t.per {
		n += len(t.per[sh])
	}
	return n
}

// Err returns the first staging or commit error, if any, without
// committing.
func (t *ShardedTx[V]) Err() error {
	return t.err
}

// readOnly reports whether every staged sub-op is a pure read (Get or
// GetRange): eligible, with bundles on, for the timestamped commit fast
// path that needs no two-phase coordination.
func (t *ShardedTx[V]) readOnly() bool {
	for sh := range t.per {
		for i := range t.per[sh] {
			if k := t.per[sh][i].Kind; k != core.OpGet && k != core.OpGetRange {
				return false
			}
		}
	}
	return true
}

// shardPrepareAttempts bounds one shard's conflict retries inside the
// two-phase commit before the coordinator gives the prepared prefix
// back: spinning against a competitor that already holds a later shard
// would otherwise stall both, while abort-and-retry with randomized
// backoff lets one of them through.
const shardPrepareAttempts = 8

// DefaultCommitAttempts is the ceiling on whole prepare-all rounds of
// one cross-shard Commit when WithCommitAttempts is not given. Each
// round is shardPrepareAttempts conflict retries per shard plus an
// escalating backoff, so the default is hours of sustained total
// conflict — unreachable except under pathological overload, where
// failing with ErrTxTimeout (after a clean prefix abort) beats
// spinning forever. It exists so the retry loop is bounded even for
// callers that never pass a context.
const DefaultCommitAttempts = 1 << 16

// Commit applies every staged operation as one atomic cross-shard
// operation: prepare every involved shard in ascending shard order,
// then publish them all. Once every shard is prepared, each shard's
// whole footprint — written nodes and read nodes alike — is locked
// against competitors, so no other transaction (sharded or per-shard)
// can slip between the publishes: concurrent ShardedTx observers see
// all of this transaction's effects or none.
//
// Commit returns nil on success (including for an empty transaction),
// ErrKeyRange if a stage call was invalid, and ErrTxCommitted if the
// transaction was already committed. Contention never surfaces as an
// error; a failed prepare aborts the prepared prefix — restoring every
// shard exactly and recycling the never-published pieces — and retries.
func (t *ShardedTx[V]) Commit() error {
	return t.commit(core.PrepareOpts{}, nil)
}

// CommitContext is Commit bounded by ctx: when the context is canceled
// or its deadline passes before every shard is prepared, the attempt is
// abandoned with a clean prefix abort — every already-prepared shard
// released exactly, nothing published anywhere — and CommitContext
// returns an error wrapping ErrTxTimeout and ctx's cause. A Sharded
// deadline from WithCommitDeadline applies in addition (the earlier
// bound wins), and the WithCommitAttempts ceiling still caps the retry
// rounds. The timeout is recorded in the transaction like any commit
// error; the caller may retry with a fresh transaction or degrade to
// single-shard operations (see examples/bank).
func (t *ShardedTx[V]) CommitContext(ctx context.Context) error {
	opt := core.PrepareOpts{Done: ctx.Done()}
	if d, ok := ctx.Deadline(); ok {
		opt.Deadline = d
	}
	return t.commit(opt, ctx)
}

func (t *ShardedTx[V]) commit(opt core.PrepareOpts, ctx context.Context) error {
	if t.err != nil {
		return t.err
	}
	if t.done {
		return ErrTxCommitted
	}
	t.done = true
	if d := t.s.commitDeadline; d > 0 {
		if dl := time.Now().Add(d); opt.Deadline.IsZero() || dl.Before(opt.Deadline) {
			opt.Deadline = dl
		}
	}
	staged, only, first := 0, -1, -1
	for sh := range t.per {
		if len(t.per[sh]) > 0 {
			staged++
			only = sh
			if first < 0 {
				first = sh
			}
		}
	}
	if staged == 0 {
		return nil
	}
	if staged == 1 {
		// Single-shard transaction: that shard's own commit is the
		// atomicity point; no coordination needed.
		if err := t.s.groups[only].inner.CommitOpsOpt(t.per[only], opt); err != nil {
			if errors.Is(err, core.ErrCanceled) {
				err = txTimeoutErr(ctx)
			}
			t.err = err
			return err
		}
		return nil
	}
	if t.s.bundled() && t.readOnly() {
		// Read-only cross-shard transaction: one clock read freezes a cut
		// of every shard — the transaction's atomicity point — and each
		// shard resolves its sub-batch against that instant's chain. No
		// prepare phase, no read locks, no aborts: concurrent writers
		// commit freely on every shard and this transaction still observes
		// all-or-none of each of them. Every involved shard is pinned
		// BEFORE the timestamp is drawn — the pins are what keep the
		// records the frozen cut needs from being truncated while later
		// shards are still being read.
		t.pins = t.pins[:0]
		for sh := range t.per {
			if len(t.per[sh]) > 0 {
				t.pins = append(t.pins, t.s.groups[sh].inner.PinReads())
			}
		}
		at := t.s.clock.Now()
		i := 0
		for sh := range t.per {
			if len(t.per[sh]) == 0 {
				continue
			}
			if err := t.pins[i].ReadOps(t.per[sh], at); err != nil && t.err == nil {
				// Unreachable: staging validated every op and the path is
				// gated on bundled() && readOnly(). Finish the unpins.
				t.err = err
			}
			i++
		}
		for j := range t.pins {
			t.pins[j].Unpin()
			t.pins[j] = core.ReadPin[V]{}
		}
		t.pins = t.pins[:0]
		return t.err
	}
	maxAttempts := t.s.commitAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultCommitAttempts
	}
	legOpt := opt
	legOpt.LockReads = true
	legOpt.MaxAttempts = shardPrepareAttempts
	statSTM := t.s.groups[first].stm
	for attempt := 0; ; attempt++ {
		// The coordinator observes cancellation between rounds itself:
		// a round can fail before any prepare leg runs its own deadline
		// check (an injected leg fault, an empty prefix), and an already
		// expired context must fail fast without touching a shard. Every
		// prior round ended in a full prefix abort, so returning here
		// leaves nothing prepared anywhere.
		if commitCanceled(opt) {
			statSTM.NoteTimeoutAbort()
			if attempt > 0 {
				statSTM.NoteRetries(uint64(attempt))
			}
			err := txTimeoutErr(ctx)
			t.err = err
			return err
		}
		if attempt >= maxAttempts {
			// Retry ceiling (WithCommitAttempts / DefaultCommitAttempts):
			// the last round's prefix was aborted below, so every shard is
			// released and untouched. This replaces the old unbounded loop
			// — before the cap, the only way out of sustained conflict was
			// to keep spinning.
			statSTM.NoteTimeoutAbort()
			statSTM.NoteRetries(uint64(attempt))
			err := fmt.Errorf("%w after %d attempts", ErrTxTimeout, attempt)
			t.err = err
			return err
		}
		failed := t.prepareShards(legOpt)
		if failed == nil {
			t.publishShards()
			if attempt > 0 {
				statSTM.NoteRetries(uint64(attempt))
			}
			return nil
		}
		t.abortPrepared()
		if errors.Is(failed, core.ErrCanceled) {
			// Deadline/cancel fired inside a prepare leg (which already
			// counted the TimeoutAbort); the prefix abort above restored
			// every prepared shard exactly.
			err := txTimeoutErr(ctx)
			t.err = err
			return err
		}
		if !errors.Is(failed, core.ErrPrepareConflict) {
			// Reachable only through fault injection (an armed failpoint
			// error on a prepare leg) — staging validated every key and
			// interval, so real prepares only fail on contention or
			// cancellation. Surfaced, not swallowed, so injected faults
			// and future bugs land here instead of looping.
			t.err = failed
			return failed
		}
		// Escalating spin → yield → brief sleep, shared with the naked
		// search's restart pacing: a conflicting coordinator that already
		// holds later shards publishes in nanoseconds (stay hot), while a
		// sustained pile-up of prepare windows stops burning cores.
		stm.RestartBackoff(attempt)
	}
}

// commitCanceled reports whether opt's Done channel or Deadline has
// fired — the coordinator-level mirror of the check each core prepare
// runs at its own retry-loop top.
func commitCanceled(opt core.PrepareOpts) bool {
	if opt.Done != nil {
		select {
		case <-opt.Done:
			return true
		default:
		}
	}
	return !opt.Deadline.IsZero() && !time.Now().Before(opt.Deadline)
}

// prepareShards runs one prepare-all round in ascending shard order
// (deadlock-free), leaving the prepared descriptors in t.prepared. On
// error the prefix prepared so far stays in t.prepared for the caller
// to abort. A panic in a leg (an armed failpoint's ActPanic standing in
// for a crash) aborts the prefix before re-panicking: no shard stays
// locked behind a recovered coordinator.
func (t *ShardedTx[V]) prepareShards(opt core.PrepareOpts) (failed error) {
	t.clearPrepared()
	defer func() {
		if r := recover(); r != nil {
			t.abortPrepared()
			panic(r)
		}
	}()
	for sh := range t.per { // ascending shard order: deadlock-free
		if len(t.per[sh]) == 0 {
			continue
		}
		if err := fpEval(fpShardPrepareLeg); err != nil {
			return err
		}
		p, err := t.s.groups[sh].inner.PrepareOps(t.per[sh], opt)
		if err != nil {
			return err
		}
		t.prepared = append(t.prepared, p)
	}
	return nil
}

// publishShards publishes every prepared leg and clears t.prepared.
//
// Crash-consistency (chaos suite, ActPanic at a leg): before the first
// PublishStart/Publish completes, nothing is visible anywhere and a
// panic aborts all legs — the transaction happened nowhere. From the
// first completed leg on, the only legal continuation is roll-forward
// (with bundles, pended records are live and an abort would strand
// them; without, one shard already linearized), so the recovery path
// finishes the remaining legs before re-panicking — the transaction
// happened everywhere. Either way no shard is left half-published or
// locked. (Panics from inside core's publish itself — "publish cannot
// fail" — are out of scope: the recovery here brackets the legs, where
// the injection sites sit.)
func (t *ShardedTx[V]) publishShards() {
	if t.s.bundled() {
		// Coordinated publish: pend every shard's bundle records while
		// all shards' prepare locks are still held, then draw ONE
		// timestamp and publish every leg at it. Timestamped readers
		// holding a snapshot at or past wv block on the pended links of
		// every shard until the owning leg fills them, so the cross-shard
		// commit is a single instant to them — no leg can be observed
		// without the others.
		started, filled := 0, 0
		var wv uint64
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if started == 0 {
				t.abortPrepared()
				panic(r)
			}
			for _, p := range t.prepared[started:] {
				p.PublishStart()
			}
			if wv == 0 {
				wv = t.s.clock.Tick()
			}
			for _, p := range t.prepared[filled:] {
				p.PublishAt(wv)
			}
			t.clearPrepared()
			panic(r)
		}()
		for _, p := range t.prepared {
			fpHit(fpShardPublishStartLeg)
			p.PublishStart()
			started++
		}
		wv = t.s.clock.Tick()
		for _, p := range t.prepared {
			fpHit(fpShardPublishAtLeg)
			p.PublishAt(wv)
			filled++
		}
		t.clearPrepared()
		return
	}
	published := 0
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if published == 0 {
			t.abortPrepared()
			panic(r)
		}
		for _, p := range t.prepared[published:] {
			p.Publish()
		}
		t.clearPrepared()
		panic(r)
	}()
	for _, p := range t.prepared {
		fpHit(fpShardPublishLeg)
		p.Publish()
		published++
	}
	t.clearPrepared()
}

// abortPrepared aborts the prepared prefix in reverse order, restoring
// every shard exactly and recycling the never-published pieces. A panic
// at one leg (an armed failpoint) does not stop the release: the
// remaining legs are aborted first and the panic re-raised after — a
// recovered coordinator must never leave a shard locked.
func (t *ShardedTx[V]) abortPrepared() {
	var rec any
	recovered := false
	for i := len(t.prepared) - 1; i >= 0; i-- {
		func() {
			defer func() {
				if r := recover(); r != nil && !recovered {
					rec, recovered = r, true
				}
			}()
			t.prepared[i].Abort()
			// After the Abort: an injected panic here models a crash
			// between released legs, which must not stop the sweep.
			fpHit(fpShardAbortLeg)
		}()
		t.prepared[i] = nil
	}
	t.prepared = t.prepared[:0]
	if recovered {
		panic(rec)
	}
}

// clearPrepared drops the published descriptors (already recycled by
// their Publish/PublishAt) without aborting anything.
func (t *ShardedTx[V]) clearPrepared() {
	for i := range t.prepared {
		t.prepared[i] = nil
	}
	t.prepared = t.prepared[:0]
}

// ShardedGet is the handle of a staged Get; valid after its transaction
// commits.
type ShardedGet[V any] struct {
	t   *ShardedTx[V]
	ref shardRef
}

// Value returns the read result. Before a successful Commit (or when
// the stage itself failed) it returns the zero value and false.
func (h ShardedGet[V]) Value() (V, bool) {
	if h.t == nil || h.ref.i < 0 || !h.t.done || h.t.err != nil {
		var zero V
		return zero, false
	}
	op := &h.t.per[h.ref.sh][h.ref.i]
	return op.Out, op.Found
}

// ShardedDelete is the handle of a staged Delete; valid after its
// transaction commits.
type ShardedDelete[V any] struct {
	t   *ShardedTx[V]
	ref shardRef
}

// Present reports whether the key was present when the delete applied.
func (h ShardedDelete[V]) Present() bool {
	if h.t == nil || h.ref.i < 0 || !h.t.done || h.t.err != nil {
		return false
	}
	return h.t.per[h.ref.sh][h.ref.i].Found
}

// ShardedRange is the handle of a staged GetRange; valid after its
// transaction commits.
type ShardedRange[V any] struct {
	t        *ShardedTx[V]
	from, to int
}

// Pairs returns the snapshot: every pair in [lo, hi] at the
// transaction's atomicity point, ascending by key, stitched across
// shard boundaries. Before a successful Commit it returns nil. When the
// interval fits one shard the sub-batch's slice is returned directly
// (owned by the transaction, valid until Release, must not be appended
// to); a multi-shard snapshot is stitched into a fresh slice.
func (h ShardedRange[V]) Pairs() []KV[V] {
	if h.t == nil || h.from < 0 || !h.t.done || h.t.err != nil {
		return nil
	}
	if h.to-h.from == 1 {
		ref := h.t.parts[h.from]
		return h.t.per[ref.sh][ref.i].Range
	}
	total := 0
	for _, ref := range h.t.parts[h.from:h.to] {
		total += h.t.per[ref.sh][ref.i].N
	}
	out := make([]KV[V], 0, total)
	for _, ref := range h.t.parts[h.from:h.to] {
		out = append(out, h.t.per[ref.sh][ref.i].Range...)
	}
	return out
}

// Count returns the number of pairs in the snapshot (0 before a
// successful Commit).
func (h ShardedRange[V]) Count() int {
	if h.t == nil || h.from < 0 || !h.t.done || h.t.err != nil {
		return 0
	}
	n := 0
	for _, ref := range h.t.parts[h.from:h.to] {
		n += h.t.per[ref.sh][ref.i].N
	}
	return n
}

// ShardedDeleteRange is the handle of a staged DeleteRange; valid after
// its transaction commits.
type ShardedDeleteRange[V any] struct {
	t        *ShardedTx[V]
	from, to int
}

// Count returns how many pairs the removal deleted across every covered
// shard (0 before a successful Commit).
func (h ShardedDeleteRange[V]) Count() int {
	if h.t == nil || h.from < 0 || !h.t.done || h.t.err != nil {
		return 0
	}
	n := 0
	for _, ref := range h.t.parts[h.from:h.to] {
		n += h.t.per[ref.sh][ref.i].N
	}
	return n
}
