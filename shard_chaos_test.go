//go:build failpoint

package leaplist

// Chaos suite for the cross-shard two-phase commit, built only with
// -tags failpoint. The scenarios arm the coordinator's leg sites (see
// failpoints.go) and prove the 2PC contract under injected faults:
// a failed prepare at every shard position aborts the prefix exactly,
// a crash-panic at any leg leaves no shard half-published or locked,
// and bounded commits (CommitContext, WithCommitAttempts) fail fast
// with ErrTxTimeout while leaking nothing.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"leaplist/internal/core"
	"leaplist/internal/failpoint"
)

// chaosSlots holds one slot per shard of a 4-shard map: slot s*16 lands
// on shard s (shardSlots = 64 spreads slots evenly over the keyspace).
var chaosSlots = [4]uint64{1, 17, 33, 49}

// newChaosSharded builds a 4-shard map with one seeded key per shard.
func newChaosSharded(t *testing.T, opts ...Option) *Sharded[uint64] {
	t.Helper()
	s := NewSharded[uint64](4, append([]Option{WithSTMStats(true)}, opts...)...)
	for _, slot := range chaosSlots {
		if err := s.Set(slotKey(slot), slot); err != nil {
			t.Fatalf("seed Set: %v", err)
		}
	}
	return s
}

// stageAll stages one write per shard, value val.
func stageAll(s *Sharded[uint64], val uint64) *ShardedTx[uint64] {
	tx := s.Txn()
	for _, slot := range chaosSlots {
		tx.Set(slotKey(slot), val)
	}
	return tx
}

// checkAllOrNone verifies every shard either carries val (applied) or
// prev, the last value known committed everywhere (not applied) — never
// a mix — and returns whether the transaction landed.
func checkAllOrNone(t *testing.T, s *Sharded[uint64], prev, val uint64) bool {
	t.Helper()
	applied := 0
	for _, slot := range chaosSlots {
		got, ok := s.Get(slotKey(slot))
		if !ok {
			t.Fatalf("Get(slot %d): key missing", slot)
		}
		switch got {
		case val:
			applied++
		case prevValue(prev, slot):
		default:
			t.Fatalf("slot %d = %d, want previous %d or committed %d", slot, got, prevValue(prev, slot), val)
		}
	}
	if applied != 0 && applied != len(chaosSlots) {
		t.Fatalf("half-published transaction: %d of %d shards carry %d", applied, len(chaosSlots), val)
	}
	return applied == len(chaosSlots)
}

// prevValue maps prev==0 to the per-slot seed value (each slot was
// seeded with its own number).
func prevValue(prev, slot uint64) uint64 {
	if prev == 0 {
		return slot
	}
	return prev
}

// checkUnlocked proves no shard kept a prepared footprint: a fresh
// cross-shard transaction over every slot must commit.
func checkUnlocked(t *testing.T, s *Sharded[uint64], val uint64) {
	t.Helper()
	tx := stageAll(s, val)
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-fault Commit: %v", err)
	}
	tx.Release()
	for _, slot := range chaosSlots {
		if got, _ := s.Get(slotKey(slot)); got != val {
			t.Fatalf("slot %d = %d after post-fault commit, want %d", slot, got, val)
		}
	}
}

// TestShardChaosPrefixAbortEveryPosition injects a prepare failure at
// every shard position k of N, on every variant. A retryable conflict
// must be absorbed (the prefix aborted, the round retried, the commit
// landing); a hard error must surface with every shard untouched and
// unlocked. Spec.After counts evaluations, so After:k fires the fault
// exactly at leg k.
func TestShardChaosPrefixAbortEveryPosition(t *testing.T) {
	for _, v := range []Variant{LT, TM, COP, RWLock} {
		t.Run(v.String(), func(t *testing.T) {
			failpoint.Reset()
			t.Cleanup(failpoint.Reset)
			s := newChaosSharded(t, WithVariant(v))
			last, val := uint64(0), uint64(1000)
			for k := uint64(0); k < 4; k++ {
				// Retryable: an injected conflict at leg k aborts legs
				// [0, k) and the next round commits.
				val++
				failpoint.Arm(fpShardPrepareLeg, failpoint.Spec{
					Action: failpoint.ActError, Err: core.ErrPrepareConflict,
					After: k, Count: 1,
				})
				tx := stageAll(s, val)
				if err := tx.Commit(); err != nil {
					t.Fatalf("k=%d: Commit with retryable fault: %v", k, err)
				}
				tx.Release()
				if !checkAllOrNone(t, s, last, val) {
					t.Fatalf("k=%d: retried commit did not land", k)
				}
				last = val

				// Hard error: surfaces, nothing lands, nothing stays
				// locked.
				val++
				failpoint.Arm(fpShardPrepareLeg, failpoint.Spec{
					Action: failpoint.ActError, After: k, Count: 1,
				})
				tx = stageAll(s, val)
				err := tx.Commit()
				if !errors.Is(err, failpoint.ErrInjected) {
					t.Fatalf("k=%d: Commit with hard fault = %v, want ErrInjected", k, err)
				}
				if checkAllOrNone(t, s, last, val) {
					t.Fatalf("k=%d: failed commit landed", k)
				}
				failpoint.Disarm(fpShardPrepareLeg)
				val++
				checkUnlocked(t, s, val)
				last = val
			}
			if failpoint.Hits(fpShardPrepareLeg) == 0 {
				t.Fatal("prepare-leg site never evaluated")
			}
		})
	}
}

// TestShardChaosPanicLegAllOrNone crash-panics the coordinator at every
// leg of both publish protocols and the prepare phase, and proves the
// recovery contract: before the first completed publish leg the
// transaction happened nowhere; from the first completed leg on it
// happened everywhere (roll-forward); and in every case all shards end
// unlocked.
func TestShardChaosPanicLegAllOrNone(t *testing.T) {
	type scenario struct {
		name      string
		site      string
		after     uint64
		bundles   bool
		wantLand  bool
		wantPanic string
	}
	var scenarios []scenario
	for k := uint64(0); k < 4; k++ {
		scenarios = append(scenarios,
			scenario{"prepare-leg", fpShardPrepareLeg, k, true, false, "failpoint: " + fpShardPrepareLeg},
			// publish-start leg 0 panics before anything is visible:
			// abort-all. Legs 1..3 panic after a completed leg: the
			// recovery must roll the remaining legs forward.
			scenario{"publish-start-leg", fpShardPublishStartLeg, k, true, k > 0, "failpoint: " + fpShardPublishStartLeg},
			scenario{"publish-at-leg", fpShardPublishAtLeg, k, true, true, "failpoint: " + fpShardPublishAtLeg},
			scenario{"publish-leg", fpShardPublishLeg, k, false, k > 0, "failpoint: " + fpShardPublishLeg},
		)
	}
	for _, sc := range scenarios {
		t.Run(sc.name+"/"+string('0'+rune(sc.after)), func(t *testing.T) {
			failpoint.Reset()
			t.Cleanup(failpoint.Reset)
			s := newChaosSharded(t, WithBundles(sc.bundles))
			failpoint.Arm(sc.site, failpoint.Spec{
				Action: failpoint.ActPanic, After: sc.after, Count: 1,
			})
			const val = uint64(7777)
			tx := stageAll(s, val)
			panicked := func() (msg string) {
				defer func() {
					if r := recover(); r != nil {
						msg, _ = r.(string)
					}
				}()
				_ = tx.Commit()
				return ""
			}()
			if panicked != sc.wantPanic {
				t.Fatalf("panic = %q, want %q", panicked, sc.wantPanic)
			}
			if landed := checkAllOrNone(t, s, 0, val); landed != sc.wantLand {
				t.Fatalf("transaction landed = %v, want %v", landed, sc.wantLand)
			}
			checkUnlocked(t, s, val+1)
		})
	}
}

// TestShardChaosAbortLegPanicStillReleases panics between abort legs of
// a prefix abort (a hard prepare fault at leg 2 leaves legs 0 and 1 to
// release) and proves the sweep finishes: the panic surfaces, yet every
// shard is unlocked and untouched.
func TestShardChaosAbortLegPanicStillReleases(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	s := newChaosSharded(t)
	failpoint.Arm(fpShardPrepareLeg, failpoint.Spec{
		Action: failpoint.ActError, After: 2, Count: 1,
	})
	failpoint.Arm(fpShardAbortLeg, failpoint.Spec{
		Action: failpoint.ActPanic, Count: 1,
	})
	const val = uint64(8888)
	tx := stageAll(s, val)
	panicked := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg, _ = r.(string)
			}
		}()
		_ = tx.Commit()
		return ""
	}()
	if want := "failpoint: " + fpShardAbortLeg; panicked != want {
		t.Fatalf("panic = %q, want %q", panicked, want)
	}
	if checkAllOrNone(t, s, 0, val) {
		t.Fatal("aborted transaction landed")
	}
	failpoint.Disarm(fpShardPrepareLeg)
	failpoint.Disarm(fpShardAbortLeg)
	checkUnlocked(t, s, val+1)
}

// TestShardChaosCommitContextTimeout holds the prepare path in
// sustained injected conflict and proves CommitContext gives up in
// bounded time with ErrTxTimeout, counts the timeout in STMStats, and
// leaks no prepared shard.
func TestShardChaosCommitContextTimeout(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	s := newChaosSharded(t)
	// Unlimited Count: every prepare round conflicts at leg 0.
	failpoint.Arm(fpShardPrepareLeg, failpoint.Spec{
		Action: failpoint.ActError, Err: core.ErrPrepareConflict,
	})
	before := s.STMStats()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	const val = uint64(9999)
	tx := stageAll(s, val)
	start := time.Now()
	err := tx.CommitContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("CommitContext under sustained conflict = %v, want ErrTxTimeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("CommitContext took %v, want bounded by the 100ms deadline", elapsed)
	}
	if checkAllOrNone(t, s, 0, val) {
		t.Fatal("timed-out commit landed")
	}
	after := s.STMStats()
	if after.TimeoutAborts <= before.TimeoutAborts {
		t.Fatalf("TimeoutAborts did not advance: %d -> %d", before.TimeoutAborts, after.TimeoutAborts)
	}
	// Zero leaked prepared shards: with the fault gone the same
	// footprint commits immediately.
	failpoint.Disarm(fpShardPrepareLeg)
	checkUnlocked(t, s, val+1)
}

// TestShardChaosCommitAttemptsCap proves the configurable retry ceiling
// replaces the old unbounded loop: under sustained conflict a plain
// Commit fails after exactly the configured number of rounds with
// ErrTxTimeout, records the retries in the max-retry gauge, and leaves
// every shard clean.
func TestShardChaosCommitAttemptsCap(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	s := newChaosSharded(t, WithCommitAttempts(3))
	failpoint.Arm(fpShardPrepareLeg, failpoint.Spec{
		Action: failpoint.ActError, Err: core.ErrPrepareConflict,
	})
	const val = uint64(4444)
	tx := stageAll(s, val)
	err := tx.Commit()
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("capped Commit = %v, want ErrTxTimeout", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("capped Commit error = %q, want attempt count", err)
	}
	if checkAllOrNone(t, s, 0, val) {
		t.Fatal("capped commit landed")
	}
	st := s.STMStats()
	if st.MaxRetry < 3 {
		t.Fatalf("MaxRetry = %d, want >= 3", st.MaxRetry)
	}
	if st.TimeoutAborts == 0 {
		t.Fatal("TimeoutAborts = 0 after attempt-cap exhaustion")
	}
	failpoint.Disarm(fpShardPrepareLeg)
	checkUnlocked(t, s, val+1)
}
