module leaplist

go 1.24
